// Package jxplain is a JSON schema discovery library implementing JXPLAIN
// (Spoth et al., "Reducing Ambiguity in Json Schema Discovery", SIGMOD
// 2021): given a collection of JSON records, it infers a precise,
// high-recall collection-level schema by resolving two ambiguities that
// data-independent extractors (Spark's JSON source, Oracle Data Guides,
// Baazizi et al.'s K-reduction) get wrong:
//
//   - whether a JSON object or array encodes a fixed-shape *tuple* or a
//     variable-key *collection* (decided per path by key-space entropy and
//     a type-similarity constraint, Section 5 of the paper), and
//   - how many distinct *entities* a bag of tuple-like records mixes
//     (recovered by Bimax bi-clustering with greedy set-cover merging,
//     Section 6).
//
// Basic use:
//
//	s, err := jxplain.DiscoverJSON(file, jxplain.DefaultConfig())
//	ok := jxplain.Validate(s, []byte(`{"ts":1,"event":"login"}`))
//	doc, _ := jxplain.ToJSONSchema(s) // json-schema.org export
//
// The facade re-exports the pieces most applications need; the full
// machinery (baselines, staged pipeline, experiment harness, synthetic
// datasets) lives in the internal packages and the cmd/ tools.
package jxplain

import (
	"context"
	"io"
	"math/rand"

	"jxplain/internal/core"
	"jxplain/internal/drift"
	"jxplain/internal/jsontype"
	"jxplain/internal/metrics"
	"jxplain/internal/schema"
)

// Type is the structural type of one JSON value.
type Type = jsontype.Type

// Schema denotes a set of admitted structural types.
type Schema = schema.Schema

// Config parameterizes discovery; zero value is not valid, start from
// DefaultConfig.
type Config = core.Config

// DefaultConfig returns the full JXPLAIN configuration (entropy threshold
// 1, collection detection for objects and arrays, Bimax-Merge entity
// discovery).
func DefaultConfig() Config { return core.Default() }

// KReduceConfig reproduces the K-reduction baseline (arrays are always
// collections, objects always single-entity tuples) — the behavior of
// production systems like Spark's JSON data source.
func KReduceConfig() Config { return core.KReduceConfig() }

// TypeOf parses one JSON document into its structural type.
func TypeOf(doc []byte) (*Type, error) { return jsontype.FromJSON(doc) }

// TypeOfValue derives the structural type of a decoded JSON value
// (as produced by encoding/json: nil, bool, float64, string, []any,
// map[string]any).
func TypeOfValue(v any) (*Type, error) { return jsontype.FromValue(v) }

// Discover infers a schema from structural types using the staged
// three-pass JXPLAIN pipeline and simplifies the result.
func Discover(types []*Type, cfg Config) Schema {
	return schema.Simplify(core.PipelineTypes(types, cfg))
}

// DiscoverJSON reads a stream of JSON documents (JSONL or concatenated)
// and infers their collection schema. It streams: records are decoded in
// bounded chunks and folded into mergeable sketches, so memory tracks the
// stream's distinct structure rather than its record count.
func DiscoverJSON(r io.Reader, cfg Config) (Schema, error) {
	return DiscoverStream(context.Background(), r, cfg)
}

// DiscoverValues infers a schema from decoded JSON values.
func DiscoverValues(values []any, cfg Config) (Schema, error) {
	types := make([]*Type, len(values))
	for i, v := range values {
		t, err := jsontype.FromValue(v)
		if err != nil {
			return nil, err
		}
		types[i] = t
	}
	return Discover(types, cfg), nil
}

// IterativeDiscover derives a schema from a small seed sample and grows
// the sample with validation failures until the schema covers every
// record (§4.2 of the paper) — the economical way to run JXPLAIN on large
// collections.
func IterativeDiscover(types []*Type, cfg Config, seedFraction float64, maxRounds int, seed int64) (Schema, core.IterativeReport) {
	s, report := core.IterativeDiscover(types, cfg, seedFraction, maxRounds, seed)
	return schema.Simplify(s), report
}

// Validate reports whether a JSON document conforms to the schema.
// Malformed JSON is reported as non-conforming with the error.
func Validate(s Schema, doc []byte) (bool, error) {
	t, err := jsontype.FromJSON(doc)
	if err != nil {
		return false, err
	}
	return s.Accepts(t), nil
}

// ValidateType reports whether a structural type conforms to the schema.
func ValidateType(s Schema, t *Type) bool { return s.Accepts(t) }

// Recall returns the fraction of the given types admitted by the schema.
func Recall(s Schema, types []*Type) float64 { return metrics.Recall(s, types) }

// SchemaEntropy returns the log2 number of structural types the schema
// admits — the paper's precision proxy (lower, with equal recall, means a
// more precise schema).
func SchemaEntropy(s Schema) float64 { return metrics.SchemaEntropy(s) }

// Entities returns the number of tuple nodes (distinct record layouts) in
// the schema — the paper's entity count.
func Entities(s Schema) int { return schema.Entities(s) }

// ToJSONSchema exports the schema as a json-schema.org (draft-07) document.
func ToJSONSchema(s Schema) ([]byte, error) { return schema.MarshalJSONSchema(s) }

// MarshalSchema serializes the schema in the native round-trip encoding.
func MarshalSchema(s Schema) ([]byte, error) { return schema.Marshal(s) }

// UnmarshalSchema parses the native encoding produced by MarshalSchema.
func UnmarshalSchema(data []byte) (Schema, error) { return schema.Unmarshal(data) }

// EditsToFullRecall returns the greedy upper bound on the number of schema
// edits needed for s to accept every given type (§7.5), with the edits.
func EditsToFullRecall(s Schema, types []*Type) (int, []metrics.Edit) {
	return metrics.EditsToFullRecall(s, types)
}

// Bounds caps a stream discoverer's memory over unbounded streams: a
// weighted reservoir over distinct record types, a ring of windowed
// pass-① statistics, and exponential decay of retained counters. Set it
// on Config.Bounds (or via StreamOptions). The zero value is fully exact.
type Bounds = core.Bounds

// WindowDriftMonitor diffs the pass-① statistics of consecutive stream
// windows and reports structural movement (paths added or retired,
// tuple/collection rulings flipped) — the shape-level complement of
// DriftMonitor for bounded streams. See also Discoverer.OnWindowDrift.
type WindowDriftMonitor = drift.WindowMonitor

// WindowDriftEvent describes structural movement at one closed window.
type WindowDriftEvent = drift.WindowEvent

// NewWindowDriftMonitor returns a monitor deriving window statistics
// under cfg.
func NewWindowDriftMonitor(cfg Config) *WindowDriftMonitor {
	return drift.NewWindowMonitor(cfg)
}

// DriftMonitor validates a record stream against a baseline schema in
// windows and raises alerts when the structure of arriving data changes —
// the paper's §1 monitoring scenario.
type DriftMonitor = drift.Monitor

// DriftConfig parameterizes a DriftMonitor.
type DriftConfig = drift.Config

// DriftAlert describes detected structural drift.
type DriftAlert = drift.Alert

// NewDriftMonitor returns a monitor enforcing the baseline schema.
func NewDriftMonitor(baseline Schema, cfg DriftConfig) *DriftMonitor {
	return drift.NewMonitor(baseline, cfg)
}

// DiffSchemas reports the field paths added and removed between two
// schemas (e.g. a stale baseline and a re-learned one).
func DiffSchemas(old, new Schema) []drift.Change { return drift.Diff(old, new) }

// FuseSchemas combines two schemas into one admitting everything either
// admits, without re-reading data — the incremental-maintenance
// counterpart to full rediscovery. Same-key-set entities merge fieldwise;
// distinct entities stay partitioned.
func FuseSchemas(a, b Schema) Schema { return schema.Fuse(a, b) }

// SampleValue draws a random decoded JSON value conforming to the schema
// (placeholder leaf values) — synthetic test data for a discovered
// schema. ok is false when the schema admits no types.
func SampleValue(s Schema, seed int64) (v any, ok bool) {
	return schema.SampleValue(s, rand.New(rand.NewSource(seed)))
}
