GO ?= go

.PHONY: all build vet test test-short check cover fuzz bench bench-stream experiments clean

all: build vet test

# CI gate: static checks plus the full suite under the race detector (the
# ingest worker pool and the parallel stats folds must stay race-clean).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

cover:
	$(GO) test ./... -coverprofile=cover.out
	$(GO) tool cover -func=cover.out | tail -1

fuzz:
	$(GO) test -fuzz FuzzFromJSON -fuzztime 30s ./internal/jsontype/
	$(GO) test -fuzz FuzzDecodeAll -fuzztime 30s ./internal/jsontype/
	$(GO) test -fuzz FuzzUnmarshal -fuzztime 30s ./internal/schema/

bench:
	$(GO) test -bench=. -benchmem ./...

# Streaming vs materialized ingestion comparison (throughput and peak
# heap), written to BENCH_stream.json.
bench-stream:
	$(GO) run ./cmd/jxbench -table stream -json-out BENCH_stream.json

# Regenerates every table and figure of the paper's evaluation into
# results/jxbench_full.txt (about a minute at scale 0.5).
experiments:
	mkdir -p results
	$(GO) run ./cmd/jxbench -all -scale 0.5 -trials 3 > results/jxbench_full.txt
	@echo "wrote results/jxbench_full.txt"

clean:
	rm -f cover.out
