GO ?= go

.PHONY: all build vet test test-short check lint lint-sarif lint-fix-dryrun cover fuzz bench bench-stream bench-window bench-hotpath bench-entity bench-shard bench-reduce experiments clean

all: build vet test

# CI gate: static checks (including the jxlint invariant analyzers) plus
# the full suite under the race detector (the ingest worker pool and the
# parallel stats folds must stay race-clean).
check: lint
	$(GO) vet ./...
	$(GO) test -race ./...

# jxlint mechanically enforces the interner, hot-path, and determinism
# invariants (see DESIGN.md "Enforced invariants"). It runs through the
# go vet driver, so it sees every package — test-augmented — exactly as
# vet does. Suppressions require //jx:lint-ignore <analyzer> <reason>.
lint:
	$(GO) install ./cmd/jxlint
	$(GO) vet -vettool=$$($(GO) env GOPATH)/bin/jxlint ./...

# Same run, but also merges every unit's findings into a SARIF 2.1.0 log
# (results/jxlint.sarif) for GitHub code scanning. Exit status still
# reflects pass/fail, so this can replace `make lint` in CI.
lint-sarif:
	$(GO) install ./cmd/jxlint
	mkdir -p results
	$$($(GO) env GOPATH)/bin/jxlint -sarif -o results/jxlint.sarif ./...

# Dry run of the mechanical-fix engine: renders every suggested fix as a
# diff (results/jxlint-fix.diff) without applying anything, and fails if
# the diff is non-empty — a committed file carrying an unapplied fix
# (stale //jx:lint-ignore, untagged monoid merge, unclamped wire-derived
# bound) means `jxlint -fix` and the tree have drifted apart. jxlint's
# own exit status is ignored here: `make lint` is the findings gate,
# this target gates only the pending-fix diff.
lint-fix-dryrun:
	$(GO) install ./cmd/jxlint
	mkdir -p results
	-$$($(GO) env GOPATH)/bin/jxlint -fixdiff -o results/jxlint-fix.diff ./...
	@if [ -s results/jxlint-fix.diff ]; then \
		echo "jxlint -fix would modify the tree:"; \
		cat results/jxlint-fix.diff; \
		exit 1; \
	else \
		echo "no pending mechanical fixes"; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

cover:
	$(GO) test ./... -coverprofile=cover.out
	$(GO) tool cover -func=cover.out | tail -1

fuzz:
	$(GO) test -fuzz FuzzFromJSON -fuzztime 30s ./internal/jsontype/
	$(GO) test -fuzz FuzzDecodeAll -fuzztime 30s ./internal/jsontype/
	$(GO) test -fuzz FuzzScan -fuzztime 30s ./internal/jsontype/
	$(GO) test -fuzz FuzzKeySet -fuzztime 30s ./internal/entity/
	$(GO) test -fuzz FuzzUnmarshal -fuzztime 30s ./internal/schema/
	$(GO) test -fuzz FuzzSketchDecode -fuzztime 30s ./internal/core/
	$(GO) test -fuzz FuzzSketchMerge -fuzztime 30s ./internal/core/
	$(GO) test -fuzz FuzzReservoirVsExact -fuzztime 30s ./internal/core/

# Go benchmarks in benchstat-compatible format (-count=10 gives benchstat
# enough samples for a significance test). To compare against a baseline:
# run `make bench > old.txt` on the base commit, re-run on your branch as
# new.txt, then `benchstat old.txt new.txt`. The committed JSON baselines
# (results/BENCH_hotpath_pr1.json, results/BENCH_hotpath.json) track the
# end-to-end pipeline op instead — regenerate with `make bench-hotpath`
# and compare the allocs_per_op / ns_per_op columns directly.
bench:
	$(GO) test -run=^$$ -bench=. -benchmem -count=10 ./...
	$(GO) run ./cmd/jxbench -table entity -trials 3

# Streaming vs materialized ingestion comparison (throughput and peak
# heap), written to results/BENCH_stream.json.
bench-stream:
	$(GO) run ./cmd/jxbench -table stream -json-out results/BENCH_stream.json

# Bounded-stream grid: churn streams at 1/2/5/10× the memory budget,
# exact vs reservoir+ring+decay, with hard flat-state checks, plus the
# per-dataset bounded-vs-exact decision tolerance. Written to
# results/BENCH_window.json.
bench-window:
	$(GO) run ./cmd/jxbench -table window -json-out results/BENCH_window.json

# Allocation/hot-path benchmark (interning + bitsets + parallel synthesis)
# with ratios against the committed PR-1 baseline, written to
# results/BENCH_hotpath.json.
bench-hotpath:
	$(GO) run ./cmd/jxbench -table hotpath -json-out results/BENCH_hotpath.json

# Entity-discovery scaling grid (weighted dedup + posting-index Bimax and
# GreedyMerge vs the quadratic reference) over the wide synthetic
# datasets, written to results/BENCH_entity.json.
bench-entity:
	$(GO) run ./cmd/jxbench -table entity -trials 3 -json-out results/BENCH_entity.json

# Sharded map/reduce discovery over the 1/2/4/8-worker grid: contiguous
# split, parallel shard folds through the sketch wire format, in-order
# reduce, with byte-equivalence against single-process discovery checked
# on every cell. Written to results/BENCH_shard.json.
bench-shard:
	$(GO) run ./cmd/jxbench -table shard -json-out results/BENCH_shard.json

# Parallel tree reduce over the 1..32-shard × 1..8-reduce-worker grid:
# wall time and allocs for the merge-into decoder, the materialize
# baseline on the sequential rows, with byte-equivalence against
# single-process discovery checked before any cell is timed. Written to
# results/BENCH_reduce.json.
bench-reduce:
	$(GO) run ./cmd/jxbench -table reduce -json-out results/BENCH_reduce.json

# Regenerates every table and figure of the paper's evaluation into
# results/jxbench_full.txt (about a minute at scale 0.5).
experiments:
	mkdir -p results
	$(GO) run ./cmd/jxbench -all -scale 0.5 -trials 3 > results/jxbench_full.txt
	@echo "wrote results/jxbench_full.txt"

clean:
	rm -f cover.out results/jxlint.sarif results/jxlint-fix.diff
