package jxplain

import (
	"strings"
	"testing"
)

const figure1 = `
{"ts":7,"event":"login","user":{"name":"bob","geo":[1.1,2.2]}}
{"ts":8,"event":"serve","files":["a.txt","b.txt"]}
`

func TestDiscoverJSONFigure1(t *testing.T) {
	s, err := DiscoverJSON(strings.NewReader(figure1), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, good := range []string{
		`{"ts":7,"event":"login","user":{"name":"bob","geo":[1.1,2.2]}}`,
		`{"ts":8,"event":"serve","files":["a.txt","b.txt"]}`,
	} {
		ok, err := Validate(s, []byte(good))
		if err != nil || !ok {
			t.Errorf("should validate %s (%v)", good, err)
		}
	}
	for _, bad := range []string{
		`{"ts":9,"event":"huh","user":{"name":"x","geo":[0,0]},"files":["f"]}`,
		`{"ts":10,"event":"wat"}`,
	} {
		ok, _ := Validate(s, []byte(bad))
		if ok {
			t.Errorf("should reject %s", bad)
		}
	}
}

func TestValidateMalformed(t *testing.T) {
	s, _ := DiscoverJSON(strings.NewReader(`{"a":1}`), DefaultConfig())
	if ok, err := Validate(s, []byte(`{"a":`)); ok || err == nil {
		t.Error("malformed JSON must fail with error")
	}
}

func TestDiscoverJSONDecodingError(t *testing.T) {
	if _, err := DiscoverJSON(strings.NewReader(`{"a":1} {broken`), DefaultConfig()); err == nil {
		t.Error("decode error should propagate")
	}
}

func TestDiscoverValues(t *testing.T) {
	s, err := DiscoverValues([]any{
		map[string]any{"k": 1.0},
		map[string]any{"k": 2.0},
	}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ty, _ := TypeOfValue(map[string]any{"k": 3.0})
	if !ValidateType(s, ty) {
		t.Error("value round trip broken")
	}
	if _, err := DiscoverValues([]any{struct{}{}}, DefaultConfig()); err == nil {
		t.Error("unsupported value should error")
	}
}

func TestKReduceConfigDiffers(t *testing.T) {
	records := strings.NewReader(figure1)
	k, err := DiscoverJSON(records, KReduceConfig())
	if err != nil {
		t.Fatal(err)
	}
	mixed := []byte(`{"ts":9,"event":"x","user":{"name":"y","geo":[1,2]},"files":["f"]}`)
	if ok, _ := Validate(k, mixed); !ok {
		t.Error("K-reduce admits the mixed record")
	}
}

func TestSchemaSerializationRoundTrip(t *testing.T) {
	s, _ := DiscoverJSON(strings.NewReader(figure1), DefaultConfig())
	data, err := MarshalSchema(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSchema(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Canon() != s.Canon() {
		t.Error("round trip changed the schema")
	}
	jsDoc, err := ToJSONSchema(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(jsDoc), "json-schema.org") {
		t.Error("JSON Schema export missing header")
	}
}

func TestRecallAndEntropy(t *testing.T) {
	s, _ := DiscoverJSON(strings.NewReader(figure1), DefaultConfig())
	ty, _ := TypeOf([]byte(`{"ts":1,"event":"login","user":{"name":"x","geo":[0,1]}}`))
	bad, _ := TypeOf([]byte(`{"nope":true}`))
	if got := Recall(s, []*Type{ty, bad}); got != 0.5 {
		t.Errorf("recall = %v", got)
	}
	if SchemaEntropy(s) < 0 {
		t.Error("entropy should be non-negative here")
	}
}

func TestIterativeDiscoverFacade(t *testing.T) {
	var types []*Type
	for i := 0; i < 200; i++ {
		ty, _ := TypeOf([]byte(`{"a":1,"b":"x"}`))
		types = append(types, ty)
	}
	rare, _ := TypeOf([]byte(`{"a":1,"b":"x","rare":true}`))
	types = append(types, rare)
	s, report := IterativeDiscover(types, DefaultConfig(), 0.02, 5, 1)
	if !report.Converged {
		t.Fatal("should converge")
	}
	if !ValidateType(s, rare) {
		t.Error("rare record must be covered")
	}
}

func TestDriftFacade(t *testing.T) {
	s, _ := DiscoverJSON(strings.NewReader(`{"a":1}`+"\n"+`{"a":2}`), DefaultConfig())
	m := NewDriftMonitor(s, DriftConfig{Window: 5})
	var alert *DriftAlert
	for i := 0; i < 5; i++ {
		ty, _ := TypeOf([]byte(`{"a":1,"surprise":"x"}`))
		if a := m.Observe(ty); a != nil {
			alert = a
		}
	}
	if alert == nil || alert.Rejected != 5 {
		t.Fatalf("alert = %+v", alert)
	}
	newSchema, _ := DiscoverJSON(strings.NewReader(`{"a":1,"surprise":"x"}`), DefaultConfig())
	changes := DiffSchemas(s, newSchema)
	if len(changes) != 1 || changes[0].Path != "surprise" {
		t.Errorf("changes = %v", changes)
	}
}

func TestFuseSchemasFacade(t *testing.T) {
	old, _ := DiscoverJSON(strings.NewReader(`{"a":1}`+"\n"+`{"a":2}`), DefaultConfig())
	delta, _ := DiscoverJSON(strings.NewReader(`{"a":1,"b":"x"}`), DefaultConfig())
	fused := FuseSchemas(old, delta)
	for _, good := range []string{`{"a":9}`, `{"a":9,"b":"y"}`} {
		if ok, _ := Validate(fused, []byte(good)); !ok {
			t.Errorf("fused schema should accept %s", good)
		}
	}
}

func TestSampleValueFacade(t *testing.T) {
	s, _ := DiscoverJSON(strings.NewReader(figure1), DefaultConfig())
	v, ok := SampleValue(s, 7)
	if !ok {
		t.Fatal("inhabited schema must sample")
	}
	ty, err := TypeOfValue(v)
	if err != nil {
		t.Fatal(err)
	}
	if !ValidateType(s, ty) {
		t.Errorf("sampled value %v does not conform to its schema", v)
	}
	if _, ok := SampleValue(schemaEmptyForTest(), 1); ok {
		t.Error("empty schema is uninhabited")
	}
}

func schemaEmptyForTest() Schema {
	s, _ := UnmarshalSchema([]byte(`{"node":"union"}`))
	return s
}

func TestEditsToFullRecallFacade(t *testing.T) {
	s, _ := DiscoverJSON(strings.NewReader(`{"a":1}`), DefaultConfig())
	ty, _ := TypeOf([]byte(`{"a":1,"extra":"x"}`))
	n, edits := EditsToFullRecall(s, []*Type{ty})
	if n != 1 || len(edits) != 1 {
		t.Errorf("edits = %v", edits)
	}
}
