module jxplain

go 1.22
