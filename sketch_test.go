package jxplain

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"jxplain/internal/core"
	"jxplain/internal/dataset"
)

// splitJSONLContiguous splits JSONL bytes into n contiguous, deliberately
// uneven shards (line counts roughly 1:2:…:n).
func splitJSONLContiguous(input []byte, n int) [][]byte {
	lines := strings.SplitAfter(string(input), "\n")
	if len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	weights := 0
	for i := 1; i <= n; i++ {
		weights += i
	}
	shards := make([][]byte, 0, n)
	start := 0
	for i := 1; i <= n; i++ {
		end := start + len(lines)*i/weights
		if i == n {
			end = len(lines)
		}
		shards = append(shards, []byte(strings.Join(lines[start:end], "")))
		start = end
	}
	return shards
}

// TestDiscovererSketchShardEquivalence is the facade-level map/reduce
// check: shard a stream contiguously, fold each shard in its own
// Discoverer (a map worker), ship each sketch through MarshalSketch, and
// reduce by merging in shard order. The reduced schema must be
// byte-identical to single-stream discovery — shard boundaries and the
// wire crossing leave no trace.
func TestDiscovererSketchShardEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	ctx := context.Background()
	for _, g := range dataset.Registry() {
		input := datasetJSONL(t, g, 200)

		single := NewDiscoverer(cfg)
		if _, err := single.AddStream(ctx, bytes.NewReader(input), StreamOptions{JSONL: true}); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		want, err := MarshalSchema(single.Finish())
		if err != nil {
			t.Fatal(err)
		}

		reducer := NewDiscoverer(cfg)
		records := 0
		for si, shard := range splitJSONLContiguous(input, 3) {
			mapper := NewDiscoverer(cfg)
			n, err := mapper.AddStream(ctx, bytes.NewReader(shard), StreamOptions{JSONL: true})
			if err != nil {
				t.Fatalf("%s shard %d: %v", g.Name, si, err)
			}
			records += n
			sketch, err := mapper.MarshalSketch()
			if err != nil {
				t.Fatalf("%s shard %d: %v", g.Name, si, err)
			}
			if err := reducer.MergeSketch(sketch); err != nil {
				t.Fatalf("%s shard %d: %v", g.Name, si, err)
			}
		}
		if records != single.Records() || reducer.Records() != single.Records() {
			t.Fatalf("%s: record counts diverge: shards %d, reduced %d, single %d",
				g.Name, records, reducer.Records(), single.Records())
		}
		got, err := MarshalSchema(reducer.Finish())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: sharded schema diverges from single-stream\ngot:  %s\nwant: %s", g.Name, got, want)
		}
	}
}

// TestDiscovererMergeSketchesTree checks the parallel facade reduce:
// tree-merging the shard sketches with MergeSketches must match the
// sequential MergeSketch fold byte for byte, at several worker counts.
func TestDiscovererMergeSketchesTree(t *testing.T) {
	cfg := DefaultConfig()
	ctx := context.Background()
	g, ok := dataset.ByName("github")
	if !ok {
		t.Fatal("github dataset missing")
	}
	input := datasetJSONL(t, g, 200)

	var sketches [][]byte
	for si, shard := range splitJSONLContiguous(input, 5) {
		mapper := NewDiscoverer(cfg)
		if _, err := mapper.AddStream(ctx, bytes.NewReader(shard), StreamOptions{JSONL: true}); err != nil {
			t.Fatalf("shard %d: %v", si, err)
		}
		sketch, err := mapper.MarshalSketch()
		if err != nil {
			t.Fatal(err)
		}
		sketches = append(sketches, sketch)
	}

	seq := NewDiscoverer(cfg)
	for _, sketch := range sketches {
		if err := seq.MergeSketch(sketch); err != nil {
			t.Fatal(err)
		}
	}
	want, err := MarshalSchema(seq.Finish())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3} {
		tree := NewDiscoverer(cfg)
		if err := tree.MergeSketches(sketches, workers); err != nil {
			t.Fatalf("w%d: %v", workers, err)
		}
		if tree.Records() != seq.Records() {
			t.Fatalf("w%d: record counts diverge: %d vs %d", workers, tree.Records(), seq.Records())
		}
		got, err := MarshalSchema(tree.Finish())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("w%d: tree-reduced schema diverges from sequential\ngot:  %s\nwant: %s", workers, got, want)
		}
	}

	// A corrupt file surfaces the typed error and its index.
	bad := append([][]byte(nil), sketches...)
	bad[2] = bad[2][:7]
	err = NewDiscoverer(cfg).MergeSketches(bad, 2)
	var merr *core.SketchMergeError
	if !errors.As(err, &merr) || merr.Index != 2 {
		t.Errorf("corrupt shard: got %v, want *core.SketchMergeError with Index 2", err)
	}
}

// TestDiscovererFromSketchResumes checks the save/resume workflow: marshal
// mid-stream, resume in a fresh Discoverer, keep adding, and match an
// uninterrupted run.
func TestDiscovererFromSketchResumes(t *testing.T) {
	cfg := DefaultConfig()
	ctx := context.Background()
	g, _ := dataset.ByName("nyt")
	input := datasetJSONL(t, g, 150)
	shards := splitJSONLContiguous(input, 2)

	d := NewDiscoverer(cfg)
	if _, err := d.AddStream(ctx, bytes.NewReader(shards[0]), StreamOptions{JSONL: true}); err != nil {
		t.Fatal(err)
	}
	saved, err := d.MarshalSketch()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := NewDiscovererFromSketch(saved, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.AddStream(ctx, bytes.NewReader(shards[1]), StreamOptions{JSONL: true}); err != nil {
		t.Fatal(err)
	}

	full := NewDiscoverer(cfg)
	if _, err := full.AddStream(ctx, bytes.NewReader(input), StreamOptions{JSONL: true}); err != nil {
		t.Fatal(err)
	}
	got, err := MarshalSchema(resumed.Finish())
	if err != nil {
		t.Fatal(err)
	}
	want, err := MarshalSchema(full.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed schema diverges from uninterrupted run\ngot:  %s\nwant: %s", got, want)
	}
}

// TestDiscovererSketchErrors pins the typed errors crossing the facade.
func TestDiscovererSketchErrors(t *testing.T) {
	if _, err := NewDiscovererFromSketch([]byte("not a sketch"), DefaultConfig()); err == nil {
		t.Error("garbage accepted")
	} else {
		var ferr *core.SketchFormatError
		if !errors.As(err, &ferr) {
			t.Errorf("got %T, want *core.SketchFormatError", err)
		}
	}
	d := NewDiscoverer(DefaultConfig())
	data, err := d.MarshalSketch()
	if err != nil {
		t.Fatal(err)
	}
	data[4] = 99
	var verr *core.SketchVersionError
	if err := d.MergeSketch(data); !errors.As(err, &verr) {
		t.Errorf("got %v, want *core.SketchVersionError", err)
	}
}
