package jxplain_test

import (
	"fmt"
	"strings"

	"jxplain"
)

// The paper's Figure 1: a login event and a serve event.
const figure1Records = `{"ts":7,"event":"login","user":{"name":"bob","geo":[1.1,2.2]}}
{"ts":8,"event":"serve","files":["a.txt","b.txt"]}`

func ExampleDiscoverJSON() {
	s, err := jxplain.DiscoverJSON(strings.NewReader(figure1Records), jxplain.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Println(s)
	// Output:
	// ({event: 𝕊, ts: ℝ, user: {geo: [ℝ, ℝ], name: 𝕊}} | {event: 𝕊, files: [𝕊, 𝕊], ts: ℝ})
}

func ExampleValidate() {
	s, _ := jxplain.DiscoverJSON(strings.NewReader(figure1Records), jxplain.DefaultConfig())
	// A record mixing login and serve fields — Example 1's false positive
	// under data-independent discovery — is rejected by JXPLAIN.
	ok, _ := jxplain.Validate(s, []byte(`{"ts":9,"event":"huh","user":{"name":"x","geo":[0,0]},"files":["f"]}`))
	fmt.Println(ok)
	// Output:
	// false
}

func ExampleSchemaEntropy() {
	jx, _ := jxplain.DiscoverJSON(strings.NewReader(figure1Records), jxplain.DefaultConfig())
	kr, _ := jxplain.DiscoverJSON(strings.NewReader(figure1Records), jxplain.KReduceConfig())
	// JXPLAIN's two entities admit exactly the 2 observed types; K-reduce's
	// single entity admits 16: user and files are independently optional,
	// and each collapses to a length-unbounded collection admitting three
	// observed lengths.
	fmt.Printf("jxplain: 2^%.0f types, k-reduce: 2^%.0f types\n",
		jxplain.SchemaEntropy(jx), jxplain.SchemaEntropy(kr))
	// Output:
	// jxplain: 2^1 types, k-reduce: 2^4 types
}

func ExampleFuseSchemas() {
	old, _ := jxplain.DiscoverJSON(strings.NewReader(`{"a":1}`), jxplain.DefaultConfig())
	delta, _ := jxplain.DiscoverJSON(strings.NewReader(`{"a":2,"b":"x"}`), jxplain.DefaultConfig())
	fused := jxplain.FuseSchemas(old, delta)
	ok1, _ := jxplain.Validate(fused, []byte(`{"a":9}`))
	ok2, _ := jxplain.Validate(fused, []byte(`{"a":9,"b":"y"}`))
	fmt.Println(ok1, ok2)
	// Output:
	// true true
}
