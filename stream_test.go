package jxplain

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"jxplain/internal/dataset"
	"jxplain/internal/jsontype"
)

// datasetJSONL renders a generator's records as JSONL bytes.
func datasetJSONL(t *testing.T, g *dataset.Generator, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, rec := range g.Generate(n, 1) {
		data, err := json.Marshal(rec.Value)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestDiscoverStreamEquivalence asserts that streaming discovery produces
// byte-identical schemas to slice-based discovery across every synthetic
// dataset generator, for a grid of chunk sizes and worker counts — the
// guarantee that the chunked mergeable-sketch pipeline is a pure
// restructuring, not a new algorithm.
func TestDiscoverStreamEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	for _, g := range dataset.Registry() {
		input := datasetJSONL(t, g, 300)

		types, err := jsontype.DecodeAll(bytes.NewReader(input))
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		want, err := MarshalSchema(Discover(types, cfg))
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}

		for _, opts := range []StreamOptions{
			{ChunkSize: 1, Workers: 1},
			{ChunkSize: 17, Workers: 4},
			{ChunkSize: 64, Workers: 2, JSONL: true},
			{ChunkSize: 100000, Workers: 8},
			{}, // defaults
		} {
			s, err := DiscoverStreamOpts(context.Background(), bytes.NewReader(input), cfg, opts)
			if err != nil {
				t.Fatalf("%s %+v: %v", g.Name, opts, err)
			}
			got, err := MarshalSchema(s)
			if err != nil {
				t.Fatalf("%s: %v", g.Name, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: DiscoverStream with %+v diverges from Discover:\n%s\n%s",
					g.Name, opts, got, want)
			}
		}
	}
}

// TestDiscovererEquivalence feeds records one at a time through every
// Discoverer entry point and checks byte-identity with batch discovery.
func TestDiscovererEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	for _, g := range dataset.Registry()[:4] {
		records := g.Generate(200, 1)
		types := dataset.Types(records)
		want, err := MarshalSchema(Discover(types, cfg))
		if err != nil {
			t.Fatal(err)
		}

		byValue := NewDiscoverer(cfg)
		byDoc := NewDiscoverer(cfg)
		byType := NewDiscoverer(cfg)
		for _, rec := range records {
			if err := byValue.AddValue(rec.Value); err != nil {
				t.Fatalf("%s: %v", g.Name, err)
			}
			doc, err := json.Marshal(rec.Value)
			if err != nil {
				t.Fatal(err)
			}
			if err := byDoc.Add(doc); err != nil {
				t.Fatalf("%s: %v", g.Name, err)
			}
			byType.AddType(rec.Type)
		}
		for name, d := range map[string]*Discoverer{"AddValue": byValue, "Add": byDoc, "AddType": byType} {
			if d.Records() != len(records) {
				t.Errorf("%s %s: Records() = %d, want %d", g.Name, name, d.Records(), len(records))
			}
			got, err := MarshalSchema(d.Finish())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: %s-fed Discoverer diverges from Discover", g.Name, name)
			}
		}
	}
}

// TestDiscovererIncrementalFinish checks that Finish is a snapshot, not a
// terminal operation: more records may arrive afterwards.
func TestDiscovererIncrementalFinish(t *testing.T) {
	d := NewDiscoverer(DefaultConfig())
	if err := d.Add([]byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	first := d.Finish()
	if ok, _ := Validate(first, []byte(`{"a":2}`)); !ok {
		t.Error("snapshot schema should admit the seen shape")
	}
	if err := d.Add([]byte(`{"a":1,"b":"x"}`)); err != nil {
		t.Fatal(err)
	}
	second := d.Finish()
	if ok, _ := Validate(second, []byte(`{"a":3,"b":"y"}`)); !ok {
		t.Error("second snapshot should admit the new shape")
	}
	if d.Records() != 2 {
		t.Errorf("Records() = %d", d.Records())
	}
}

func TestDiscovererErrors(t *testing.T) {
	d := NewDiscoverer(DefaultConfig())
	if err := d.Add([]byte(`{"broken`)); err == nil {
		t.Error("malformed JSON should fail")
	}
	if err := d.AddValue(struct{}{}); err == nil {
		t.Error("unsupported value should fail")
	}
	if d.Records() != 0 {
		t.Error("failed adds must not count")
	}
}

func TestDiscoverStreamErrors(t *testing.T) {
	if _, err := DiscoverStream(context.Background(), strings.NewReader(`{"a":1} {nope`), DefaultConfig()); err == nil {
		t.Error("malformed stream should fail")
	}
}

// slowEndlessReader yields records forever.
type slowEndlessReader struct{ i int }

func (s *slowEndlessReader) Read(p []byte) (int, error) {
	s.i++
	return copy(p, []byte(fmt.Sprintf(`{"id":%d}`+"\n", s.i))), nil
}

// TestDiscoverStreamCancellation: a cancelled context aborts ingestion of
// an unbounded stream promptly.
func TestDiscoverStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := DiscoverStream(ctx, &slowEndlessReader{}, DefaultConfig())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not abort DiscoverStream promptly")
	}
}

// TestDiscoverJSONStreamsLargeInput sanity-checks the facade's default
// entry point on a large low-cardinality stream: a million records with a
// handful of distinct shapes must discover fine (and fast) because only
// distinct structure is retained.
func TestDiscoverJSONStreamsLargeInput(t *testing.T) {
	if testing.Short() {
		t.Skip("large stream")
	}
	var buf bytes.Buffer
	for i := 0; i < 1_000_000; i++ {
		fmt.Fprintf(&buf, `{"ts":%d,"event":"e%d"}`+"\n", i, i%3)
	}
	s, err := DiscoverJSON(&buf, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := Validate(s, []byte(`{"ts":1,"event":"x"}`)); !ok {
		t.Errorf("schema should admit the record shape: %s", s)
	}
}

// TestBoundedStreamDiscovery exercises the sublinear-memory stream
// options through the facade: a churn stream under reservoir + ring +
// decay bounds stays capped, raises windowed drift events, and still
// synthesizes a schema; bounds set after records are rejected.
func TestBoundedStreamDiscovery(t *testing.T) {
	// Two phases: the stream's shape moves halfway through, and each
	// record also carries a churn key so the reservoir sees eviction.
	var churn bytes.Buffer
	for i := 0; i < 600; i++ {
		shape := "user"
		if i >= 300 {
			shape = "account"
		}
		fmt.Fprintf(&churn, "{\"%s\":{\"id\":%d},\"k%03d\":%d}\n", shape, i, i, i)
	}

	d := NewDiscoverer(DefaultConfig())
	var events []*WindowDriftEvent
	d.OnWindowDrift(func(ev *WindowDriftEvent) { events = append(events, ev) })
	n, err := d.AddStream(context.Background(), bytes.NewReader(churn.Bytes()), StreamOptions{
		JSONL: true, ChunkSize: 25,
		Capacity: 16, WindowRecords: 100, WindowCount: 2, Decay: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 600 || d.Records() != 600 {
		t.Fatalf("records: ingested %d, accounted %d", n, d.Records())
	}
	if len(events) == 0 {
		t.Fatal("pure churn raised no windowed drift events")
	}
	if data, err := MarshalSchema(d.Finish()); err != nil || len(data) == 0 {
		t.Fatalf("bounded Finish: %v", err)
	}

	// Bounds arriving after records must be refused.
	late := NewDiscoverer(DefaultConfig())
	if _, err := late.AddStream(context.Background(), strings.NewReader("{\"a\":1}\n"), StreamOptions{JSONL: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := late.AddStream(context.Background(), strings.NewReader("{\"b\":2}\n"), StreamOptions{JSONL: true, Capacity: 8}); err == nil {
		t.Fatal("late bounds accepted")
	}

	// Bounds via Config work identically (alias check).
	cfg := DefaultConfig()
	cfg.Bounds = Bounds{ReservoirCapacity: 8}
	s, err := DiscoverStreamOpts(context.Background(), bytes.NewReader(churn.Bytes()), cfg, StreamOptions{JSONL: true})
	if err != nil {
		t.Fatal(err)
	}
	if data, err := MarshalSchema(s); err != nil || len(data) == 0 {
		t.Fatalf("config-bounded schema: %v", err)
	}
}
