// Geopoints: tuple-like arrays (§3.1 / §5.4). GeoJSON encodes coordinates
// as 2-element [longitude, latitude] arrays. Data-independent extractors
// read them as unbounded numeric collections ([ℝ]*), admitting 1- and
// 17-element "coordinates"; JXPLAIN's length-entropy heuristic recovers
// the [ℝ, ℝ] tuple.
//
//	go run ./examples/geopoints
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"jxplain"
)

func main() {
	r := rand.New(rand.NewSource(7))
	var b strings.Builder
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&b, `{"type":"Feature","geometry":{"type":"Point","coordinates":[%.5f,%.5f]},`+
			`"properties":{"name":"poi-%d","score":%d}}`+"\n",
			r.Float64()*360-180, r.Float64()*180-90, i, r.Intn(100))
	}

	jx, err := jxplain.DiscoverJSON(strings.NewReader(b.String()), jxplain.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	kr, _ := jxplain.DiscoverJSON(strings.NewReader(b.String()), jxplain.KReduceConfig())

	fmt.Println("JXPLAIN :", jx)
	fmt.Println("K-reduce:", kr)
	fmt.Println()

	bad := []byte(`{"type":"Feature","geometry":{"type":"Point","coordinates":[1.0,2.0,3.0]},` +
		`"properties":{"name":"broken","score":1}}`)
	good := []byte(`{"type":"Feature","geometry":{"type":"Point","coordinates":[9.9,-8.8]},` +
		`"properties":{"name":"ok","score":5}}`)

	jxBad, _ := jxplain.Validate(jx, bad)
	krBad, _ := jxplain.Validate(kr, bad)
	jxGood, _ := jxplain.Validate(jx, good)
	fmt.Printf("3-element coordinates: JXPLAIN accepted=%v, K-reduce accepted=%v\n", jxBad, krBad)
	fmt.Printf("valid 2-element point: JXPLAIN accepted=%v\n", jxGood)
}
