// Iterative: the §4.2 sampling loop. JXPLAIN's multi-pass discovery is
// more expensive than a fold, so it is run on a small seed sample; records
// that fail validation are folded back in and discovery repeats. A few
// rounds reach full coverage while touching a fraction of the data.
//
//	go run ./examples/iterative
package main

import (
	"fmt"

	"jxplain"
	"jxplain/internal/dataset"
)

func main() {
	gen, _ := dataset.ByName("synapse")
	records := gen.Generate(4000, 11)
	types := make([]*jxplain.Type, len(records))
	for i := range records {
		types[i] = records[i].Type
	}

	s, report := jxplain.IterativeDiscover(types, jxplain.DefaultConfig(), 0.01, 10, 5)

	fmt.Printf("records: %d\n", len(types))
	fmt.Printf("converged: %v in %d rounds\n\n", report.Converged, report.Rounds)
	fmt.Println("round  sample size  validation failures")
	for i := range report.SampleSizes {
		fmt.Printf("%5d  %11d  %19d\n", i+1, report.SampleSizes[i], report.FailuresPerRound[i])
	}

	final := report.SampleSizes[len(report.SampleSizes)-1]
	fmt.Printf("\nfull coverage from %d of %d records (%.1f%%)\n",
		final, len(types), 100*float64(final)/float64(len(types)))
	fmt.Printf("final schema admits 2^%.1f types across %d entities\n",
		jxplain.SchemaEntropy(s), jxplain.Entities(s))
}
