// Testdata: generate conforming synthetic records from a discovered
// schema. Discovery runs on a handful of real-looking events; the schema
// then drives a generator whose output always validates — fixture data for
// integration tests without shipping production records.
//
//	go run ./examples/testdata
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"strings"

	"jxplain"
)

const seedRecords = `
{"ts":1,"event":"login","user":{"name":"ada","geo":[51.5,-0.1]}}
{"ts":2,"event":"serve","files":["index.html","app.js"]}
{"ts":3,"event":"login","user":{"name":"bob","geo":[40.7,-74.0]}}
{"ts":4,"event":"serve","files":["style.css"]}
`

func main() {
	s, err := jxplain.DiscoverJSON(strings.NewReader(seedRecords), jxplain.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("discovered schema:", s)
	fmt.Println("\nsynthetic records conforming to it:")

	valid := 0
	for seed := int64(0); seed < 8; seed++ {
		v, ok := jxplain.SampleValue(s, seed)
		if !ok {
			log.Fatal("schema is uninhabited")
		}
		data, err := json.Marshal(v)
		if err != nil {
			log.Fatal(err)
		}
		ok, err = jxplain.Validate(s, data)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			valid++
		}
		fmt.Printf("  %s  (validates: %v)\n", data, ok)
	}
	fmt.Printf("\n%d/8 generated records validate against the schema\n", valid)
}
