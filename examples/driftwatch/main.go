// Driftwatch: the paper's §1 monitoring scenario. A schema is learned
// from a week of "normal" event logs; the monitor then validates the live
// stream in windows. When the application starts emitting a new event
// revision (a renamed field plus a new payload field), the precise JXPLAIN
// schema flags the drift immediately and names the changed paths; the
// schema is re-learned and monitoring continues clean.
//
//	go run ./examples/driftwatch
package main

import (
	"fmt"
	"log"
	"math/rand"

	"jxplain"
)

func main() {
	r := rand.New(rand.NewSource(4))

	// Week 1: learn the baseline from normal logs.
	var history []*jxplain.Type
	for i := 0; i < 2000; i++ {
		history = append(history, v1Event(r))
	}
	baseline := jxplain.Discover(history, jxplain.DefaultConfig())
	fmt.Println("baseline schema:", baseline)

	monitor := jxplain.NewDriftMonitor(baseline, jxplain.DriftConfig{
		Window:          200,
		RejectThreshold: 0.02,
	})

	// Live stream: 3 clean windows, then a deploy switches 40% of traffic
	// to the v2 event format.
	var firstAlert *jxplain.DriftAlert
	var retained []*jxplain.Type
	for i := 0; i < 1200 && firstAlert == nil; i++ {
		var rec *jxplain.Type
		if i >= 600 && r.Float64() < 0.4 {
			rec = v2Event(r)
		} else {
			rec = v1Event(r)
		}
		retained = append(retained, rec)
		if alert := monitor.Observe(rec); alert != nil {
			firstAlert = alert
		}
	}
	if firstAlert == nil {
		log.Fatal("expected a drift alert")
	}
	fmt.Println()
	fmt.Println(firstAlert)

	// Re-learn over the retained stream and diff the schemas.
	relearned := jxplain.Discover(retained, jxplain.DefaultConfig())
	fmt.Println("\nschema diff after re-learning:")
	for _, change := range jxplain.DiffSchemas(baseline, relearned) {
		fmt.Println(" ", change)
	}

	monitor.SetBaseline(relearned)
	clean := 0
	for i := 0; i < 600; i++ {
		rec := v1Event(r)
		if r.Float64() < 0.4 {
			rec = v2Event(r)
		}
		if alert := monitor.Observe(rec); alert == nil {
			clean++
		}
	}
	seen, rejected, alerts := monitor.Totals()
	fmt.Printf("\nafter re-learning: %d records observed, %d rejected, %d alerts total\n",
		seen, rejected, alerts)
}

func v1Event(r *rand.Rand) *jxplain.Type {
	rec := map[string]any{
		"ts":      float64(r.Intn(1_000_000)),
		"level":   []string{"info", "warn", "error"}[r.Intn(3)],
		"service": "api",
		"msg":     "handled request",
	}
	if r.Float64() < 0.3 {
		rec["request_id"] = "r-123"
	}
	t, err := jxplain.TypeOfValue(rec)
	if err != nil {
		log.Fatal(err)
	}
	return t
}

func v2Event(r *rand.Rand) *jxplain.Type {
	rec := map[string]any{
		"ts":       float64(r.Intn(1_000_000)),
		"severity": []string{"info", "warn", "error"}[r.Intn(3)], // renamed
		"service":  "api",
		"msg":      "handled request",
		"trace": map[string]any{ // new structured field
			"span_id":   "s-1",
			"parent_id": "s-0",
		},
	}
	t, err := jxplain.TypeOfValue(rec)
	if err != nil {
		log.Fatal(err)
	}
	return t
}
