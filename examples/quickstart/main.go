// Quickstart: discover a schema from the paper's Figure 1 records, print
// it in the paper's notation and as a json-schema.org document, and
// validate new records against it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"jxplain"
)

const records = `
{"ts":7,"event":"login","user":{"name":"bob","geo":[1.1,2.2]}}
{"ts":8,"event":"serve","files":["a.txt","b.txt"]}
{"ts":9,"event":"login","user":{"name":"eve","geo":[3.0,4.5]}}
{"ts":11,"event":"serve","files":["index.html"]}
`

func main() {
	s, err := jxplain.DiscoverJSON(strings.NewReader(records), jxplain.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Discovered schema (paper notation):")
	fmt.Println(" ", s)
	fmt.Printf("\nSchema entropy: 2^%.2f admitted types\n\n", jxplain.SchemaEntropy(s))

	tests := []string{
		`{"ts":12,"event":"login","user":{"name":"mallory","geo":[0.0,0.0]}}`,
		`{"ts":13,"event":"serve","files":["app.css","app.js"]}`,
		`{"ts":14,"event":"huh","user":{"name":"x","geo":[1,2]},"files":["f"]}`,
		`{"ts":15,"event":"wat"}`,
	}
	fmt.Println("Validation:")
	for _, rec := range tests {
		ok, err := jxplain.Validate(s, []byte(rec))
		if err != nil {
			log.Fatal(err)
		}
		verdict := "REJECT"
		if ok {
			verdict = "ACCEPT"
		}
		fmt.Printf("  %s  %s\n", verdict, rec)
	}

	doc, err := jxplain.ToJSONSchema(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\njson-schema.org export:")
	fmt.Println(string(doc))
}
