// Eventlog: multi-entity discovery on a GitHub-style event stream — the
// paper's Section 6 scenario. A single K-reduction entity admits
// nonsensical field mixtures; JXPLAIN's Bimax-Merge recovers the event
// types as separate entities and rejects the mixtures.
//
//	go run ./examples/eventlog
package main

import (
	"fmt"
	"log"

	"jxplain"
	"jxplain/internal/dataset"
)

func main() {
	gen, _ := dataset.ByName("github")
	records := gen.Generate(2000, 42)
	types := make([]*jxplain.Type, len(records))
	for i := range records {
		types[i] = records[i].Type
	}

	jx := jxplain.Discover(types, jxplain.DefaultConfig())
	kr := jxplain.Discover(types, jxplain.KReduceConfig())

	fmt.Printf("records: %d (event types: %d)\n", len(records), len(gen.Entities))
	fmt.Printf("JXPLAIN   schema entropy: 2^%.1f admitted types\n", jxplain.SchemaEntropy(jx))
	fmt.Printf("K-reduce  schema entropy: 2^%.1f admitted types\n\n", jxplain.SchemaEntropy(kr))

	// A record mixing an IssuesEvent payload with PushEvent fields.
	mixed := []byte(`{
	  "id":"evt_x","type":"IssuesEvent","public":true,"created_at":"2020-01-01T00:00:00Z",
	  "actor":{"id":1,"login":"u","url":"https://api.github.example/users/u","avatar_url":"a"},
	  "repo":{"id":2,"name":"o/r","url":"https://api.github.example/repos/r"},
	  "payload":{"action":"opened","ref":"main","head":"sha","before":"sha",
	             "push_id":9,"size":1,"distinct_size":1,"commits":[]}
	}`)
	jxOK, err := jxplain.Validate(jx, mixed)
	if err != nil {
		log.Fatal(err)
	}
	krOK, _ := jxplain.Validate(kr, mixed)
	fmt.Println("record mixing IssuesEvent and PushEvent payload fields:")
	fmt.Printf("  JXPLAIN:  accepted=%v   (entity partitioning rejects the mixture)\n", jxOK)
	fmt.Printf("  K-reduce: accepted=%v   (optional-field union admits it)\n\n", krOK)

	// Both validate the real stream equally well.
	fmt.Printf("recall on 2000 real events: JXPLAIN %.4f, K-reduce %.4f\n",
		jxplain.Recall(jx, types), jxplain.Recall(kr, types))
}
