// Prescriptions: collection-like objects (§3.2). The pharmaceutical
// dataset maps drug names to counts inside one object; treating it as a
// tuple makes every drug an optional field, so records mentioning unseen
// drugs fail validation. JXPLAIN's key-space entropy detects the
// collection and generalizes.
//
//	go run ./examples/prescriptions
package main

import (
	"fmt"
	"log"

	"jxplain"
	"jxplain/internal/dataset"
)

func main() {
	gen, _ := dataset.ByName("pharma")
	train := gen.Generate(800, 3)
	types := make([]*jxplain.Type, len(train))
	for i := range train {
		types[i] = train[i].Type
	}

	jx := jxplain.Discover(types, jxplain.DefaultConfig())
	kr := jxplain.Discover(types, jxplain.KReduceConfig())

	fmt.Println("JXPLAIN schema:")
	fmt.Println(" ", jx)
	fmt.Printf("\nschema entropy: JXPLAIN 2^%.0f vs K-reduce 2^%.0f\n",
		jxplain.SchemaEntropy(jx), jxplain.SchemaEntropy(kr))

	// A provider prescribing a drug never seen in training.
	unseen := []byte(`{
	  "npi": 1999999999,
	  "provider_variables": {"brand_name_rx_count": 4, "generic_rx_count": 9,
	    "gender": "F", "region": "West", "settlement_type": "urban",
	    "specialty": "Oncology", "years_practicing": 12},
	  "cms_prescription_counts": {"NEWLY_APPROVED_DRUG": 18}
	}`)
	jxOK, err := jxplain.Validate(jx, unseen)
	if err != nil {
		log.Fatal(err)
	}
	krOK, _ := jxplain.Validate(kr, unseen)
	fmt.Println("\nrecord with an unseen drug:")
	fmt.Printf("  JXPLAIN:  accepted=%v   ({*: ℝ}* generalizes to new keys)\n", jxOK)
	fmt.Printf("  K-reduce: accepted=%v   (unknown optional field)\n", krOK)

	// Held-out recall.
	test := gen.Generate(200, 99)
	testTypes := make([]*jxplain.Type, len(test))
	for i := range test {
		testTypes[i] = test[i].Type
	}
	fmt.Printf("\nrecall on 200 unseen providers: JXPLAIN %.4f, K-reduce %.4f\n",
		jxplain.Recall(jx, testTypes), jxplain.Recall(kr, testTypes))
}
