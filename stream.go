package jxplain

import (
	"context"
	"fmt"
	"io"

	"jxplain/internal/core"
	"jxplain/internal/drift"
	"jxplain/internal/ingest"
	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
)

// StreamOptions bounds streaming ingestion: records per chunk, decode
// worker count, input framing, and — for unbounded streams — the
// sublinear-memory state caps. The zero value picks sensible defaults
// (2048-record chunks, one worker per core, concatenated-JSON framing,
// exact state).
type StreamOptions struct {
	// ChunkSize is the number of records per chunk (default 2048).
	ChunkSize int
	// Workers is the decode worker count (default one per core).
	Workers int
	// JSONL frames records as non-blank lines (strict JSONL) instead of
	// scanning concatenated JSON values; errors then carry line numbers.
	JSONL bool
	// MaxRecordBytes caps a single record's size in JSONL mode
	// (default 64 MiB).
	MaxRecordBytes int

	// Capacity bounds the distinct-type state to a weighted reservoir of
	// this many types (core.Bounds.ReservoirCapacity). 0 keeps the exact
	// union bag.
	Capacity int
	// WindowRecords closes a pass-① statistics window every this many
	// records (core.Bounds.WindowRecords). 0 keeps one cumulative window.
	WindowRecords int
	// WindowCount retains this many closed windows in a ring for
	// decisions (core.Bounds.WindowCount). 0 means no ring.
	WindowCount int
	// Decay, when in (0, 1), exponentially ages the retained counters at
	// every window rotation (core.Bounds.DecayFactor).
	Decay float64
}

// ingestOptions projects the decode-pipeline half of the options.
func (o StreamOptions) ingestOptions() ingest.Options {
	return ingest.Options{
		ChunkSize:      o.ChunkSize,
		Workers:        o.Workers,
		JSONL:          o.JSONL,
		MaxRecordBytes: o.MaxRecordBytes,
	}
}

// boundedIngestOptions is ingestOptions with the default chunk size
// capped at the window cadence: an add is atomic with respect to windows
// (a chunk larger than WindowRecords closes one oversized window per
// chunk), so with a ring configured the rotation granularity must track
// the configured cadence, not the decode chunking. An explicit ChunkSize
// is respected as given.
func boundedIngestOptions(o StreamOptions, b core.Bounds) ingest.Options {
	opts := o.ingestOptions()
	if opts.ChunkSize == 0 && b.WindowRecords > 0 && b.WindowRecords < 2048 {
		opts.ChunkSize = b.WindowRecords
	}
	return opts
}

// bounds projects the stream-cap half of the options.
func (o StreamOptions) bounds() core.Bounds {
	return core.Bounds{
		ReservoirCapacity: o.Capacity,
		WindowRecords:     o.WindowRecords,
		WindowCount:       o.WindowCount,
		DecayFactor:       o.Decay,
	}
}

// Discoverer accumulates records incrementally and derives their schema on
// demand, without ever materializing the collection: memory tracks the
// stream's distinct structure (distinct record types and paths), not its
// record count. Records arrive via Add (raw JSON), AddValue (decoded
// values) or AddType; Finish returns the schema over everything seen so
// far and does not consume the accumulator, so it can be called
// periodically over a live stream.
//
// A Discoverer is not safe for concurrent use. The zero value is not
// valid; use NewDiscoverer.
type Discoverer struct {
	acc      *core.Accumulator
	cfg      Config
	windowFn func(*drift.WindowEvent)
}

// NewDiscoverer returns an empty Discoverer for the configuration. Set
// Config.Bounds (or the StreamOptions caps on the first AddStream) to run
// with sublinear-memory state over an unbounded stream.
func NewDiscoverer(cfg Config) *Discoverer {
	return &Discoverer{acc: core.NewAccumulator(cfg), cfg: cfg}
}

// Add folds one raw JSON document into the discoverer.
func (d *Discoverer) Add(doc []byte) error {
	t, err := jsontype.FromJSON(doc)
	if err != nil {
		return err
	}
	d.acc.Add(t)
	return nil
}

// AddValue folds one decoded JSON value (nil, bool, float64, string,
// []any, map[string]any) into the discoverer.
func (d *Discoverer) AddValue(v any) error {
	t, err := jsontype.FromValue(v)
	if err != nil {
		return err
	}
	d.acc.Add(t)
	return nil
}

// AddType folds one structural type into the discoverer.
func (d *Discoverer) AddType(t *Type) { d.acc.Add(t) }

// AddStream folds a whole stream of JSON documents (JSONL or concatenated)
// into the discoverer through the chunked decode pipeline, returning the
// number of records ingested. The context cancels ingestion mid-stream.
//
// The options' stream caps (Capacity, WindowRecords, WindowCount, Decay),
// when set, configure the accumulator's core.Bounds. Bounds shape the
// state itself, so they must be established before any records are
// folded in; setting them on a non-empty discoverer (or changing them
// between calls) is an error.
func (d *Discoverer) AddStream(ctx context.Context, r io.Reader, opts StreamOptions) (int, error) {
	if b := opts.bounds(); b != (core.Bounds{}) && b != d.cfg.Bounds {
		if d.acc.Records() != 0 {
			return 0, fmt.Errorf("jxplain: stream bounds must be set before any records are added")
		}
		d.cfg.Bounds = b
		d.acc = core.NewAccumulator(d.cfg)
		d.bindWindowDrift()
	}
	n, err := ingest.Fold(ctx, r, boundedIngestOptions(opts, d.cfg.Bounds), d.acc)
	if err != nil {
		return n, fmt.Errorf("jxplain: decoding records: %w", err)
	}
	return n, nil
}

// OnWindowDrift registers fn to receive windowed structural-drift events:
// whenever a statistics window closes (Bounds.WindowRecords with a
// WindowCount ring) and its shape moved against the previous window —
// paths appeared, paths retired, or a tuple/collection ruling flipped —
// fn is called with the event. The first window primes silently. A nil fn
// unregisters.
func (d *Discoverer) OnWindowDrift(fn func(*drift.WindowEvent)) {
	d.windowFn = fn
	d.bindWindowDrift()
}

func (d *Discoverer) bindWindowDrift() {
	if d.windowFn == nil {
		d.acc.OnWindowClose(nil)
		return
	}
	drift.NewWindowMonitor(d.cfg).Bind(d.acc, d.windowFn)
}

// MarshalSketch serializes the discoverer's accumulated state — the
// deduplicated type bag and the pass-① path statistics — in the versioned
// sketch wire format. The discoverer is not consumed. Sketches produced
// on different machines (or processes) over disjoint shards of a
// collection can be merged with MergeSketch to continue discovery exactly
// where the combined streams left off.
func (d *Discoverer) MarshalSketch() ([]byte, error) { return d.acc.Marshal() }

// MergeSketch folds a serialized sketch into the discoverer, as if every
// record behind the sketch had been added directly. It returns a typed
// error (core.SketchVersionError, core.SketchFormatError) on input this
// build cannot read.
func (d *Discoverer) MergeSketch(data []byte) error { return d.acc.MergeSketch(data) }

// MergeSketches folds the serialized sketches into the discoverer in
// order, merging them as a balanced binary tree over at most workers
// concurrent goroutines (0 = one per core). The result is byte-identical
// to calling MergeSketch on each file in sequence — adjacent-pair merging
// preserves first-seen type order — while the decode work scales with the
// worker count. On error (a *core.SketchMergeError naming the failing
// file's index) the discoverer must be discarded.
func (d *Discoverer) MergeSketches(sketches [][]byte, workers int) error {
	return d.acc.MergeSketches(sketches, workers)
}

// NewDiscovererFromSketch resumes discovery from a serialized sketch
// under the given configuration.
func NewDiscovererFromSketch(data []byte, cfg Config) (*Discoverer, error) {
	acc, err := core.UnmarshalAccumulator(data, cfg)
	if err != nil {
		return nil, err
	}
	return &Discoverer{acc: acc, cfg: cfg}, nil
}

// Records returns the number of records folded in so far.
func (d *Discoverer) Records() int { return d.acc.Records() }

// Finish derives and simplifies the schema of everything added so far.
// More records may be added afterwards and Finish called again.
func (d *Discoverer) Finish() Schema { return schema.Simplify(d.acc.Finish()) }

// DiscoverStream reads a stream of JSON documents (JSONL or concatenated)
// in bounded chunks through a decode worker pool and infers their
// collection schema, holding only the stream's distinct structure in
// memory. It produces exactly the schema Discover produces on the same
// records. The context cancels ingestion mid-stream.
func DiscoverStream(ctx context.Context, r io.Reader, cfg Config) (Schema, error) {
	return DiscoverStreamOpts(ctx, r, cfg, StreamOptions{})
}

// DiscoverStreamOpts is DiscoverStream with explicit chunking, worker and
// framing options.
func DiscoverStreamOpts(ctx context.Context, r io.Reader, cfg Config, opts StreamOptions) (Schema, error) {
	if b := opts.bounds(); b != (core.Bounds{}) {
		cfg.Bounds = b
	}
	acc := core.NewAccumulator(cfg)
	if _, err := ingest.Fold(ctx, r, boundedIngestOptions(opts, cfg.Bounds), acc); err != nil {
		return nil, fmt.Errorf("jxplain: decoding records: %w", err)
	}
	return schema.Simplify(acc.Finish()), nil
}
