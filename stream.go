package jxplain

import (
	"context"
	"fmt"
	"io"

	"jxplain/internal/core"
	"jxplain/internal/ingest"
	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
)

// StreamOptions bounds streaming ingestion: records per chunk, decode
// worker count, and input framing. The zero value picks sensible defaults
// (2048-record chunks, one worker per core, concatenated-JSON framing).
type StreamOptions = ingest.Options

// Discoverer accumulates records incrementally and derives their schema on
// demand, without ever materializing the collection: memory tracks the
// stream's distinct structure (distinct record types and paths), not its
// record count. Records arrive via Add (raw JSON), AddValue (decoded
// values) or AddType; Finish returns the schema over everything seen so
// far and does not consume the accumulator, so it can be called
// periodically over a live stream.
//
// A Discoverer is not safe for concurrent use. The zero value is not
// valid; use NewDiscoverer.
type Discoverer struct {
	acc *core.Accumulator
}

// NewDiscoverer returns an empty Discoverer for the configuration.
func NewDiscoverer(cfg Config) *Discoverer {
	return &Discoverer{acc: core.NewAccumulator(cfg)}
}

// Add folds one raw JSON document into the discoverer.
func (d *Discoverer) Add(doc []byte) error {
	t, err := jsontype.FromJSON(doc)
	if err != nil {
		return err
	}
	d.acc.Add(t)
	return nil
}

// AddValue folds one decoded JSON value (nil, bool, float64, string,
// []any, map[string]any) into the discoverer.
func (d *Discoverer) AddValue(v any) error {
	t, err := jsontype.FromValue(v)
	if err != nil {
		return err
	}
	d.acc.Add(t)
	return nil
}

// AddType folds one structural type into the discoverer.
func (d *Discoverer) AddType(t *Type) { d.acc.Add(t) }

// AddStream folds a whole stream of JSON documents (JSONL or concatenated)
// into the discoverer through the chunked decode pipeline, returning the
// number of records ingested. The context cancels ingestion mid-stream.
func (d *Discoverer) AddStream(ctx context.Context, r io.Reader, opts StreamOptions) (int, error) {
	n, err := ingest.Fold(ctx, r, opts, d.acc)
	if err != nil {
		return n, fmt.Errorf("jxplain: decoding records: %w", err)
	}
	return n, nil
}

// MarshalSketch serializes the discoverer's accumulated state — the
// deduplicated type bag and the pass-① path statistics — in the versioned
// sketch wire format. The discoverer is not consumed. Sketches produced
// on different machines (or processes) over disjoint shards of a
// collection can be merged with MergeSketch to continue discovery exactly
// where the combined streams left off.
func (d *Discoverer) MarshalSketch() ([]byte, error) { return d.acc.Marshal() }

// MergeSketch folds a serialized sketch into the discoverer, as if every
// record behind the sketch had been added directly. It returns a typed
// error (core.SketchVersionError, core.SketchFormatError) on input this
// build cannot read.
func (d *Discoverer) MergeSketch(data []byte) error { return d.acc.MergeSketch(data) }

// MergeSketches folds the serialized sketches into the discoverer in
// order, merging them as a balanced binary tree over at most workers
// concurrent goroutines (0 = one per core). The result is byte-identical
// to calling MergeSketch on each file in sequence — adjacent-pair merging
// preserves first-seen type order — while the decode work scales with the
// worker count. On error (a *core.SketchMergeError naming the failing
// file's index) the discoverer must be discarded.
func (d *Discoverer) MergeSketches(sketches [][]byte, workers int) error {
	return d.acc.MergeSketches(sketches, workers)
}

// NewDiscovererFromSketch resumes discovery from a serialized sketch
// under the given configuration.
func NewDiscovererFromSketch(data []byte, cfg Config) (*Discoverer, error) {
	acc, err := core.UnmarshalAccumulator(data, cfg)
	if err != nil {
		return nil, err
	}
	return &Discoverer{acc: acc}, nil
}

// Records returns the number of records folded in so far.
func (d *Discoverer) Records() int { return d.acc.Records() }

// Finish derives and simplifies the schema of everything added so far.
// More records may be added afterwards and Finish called again.
func (d *Discoverer) Finish() Schema { return schema.Simplify(d.acc.Finish()) }

// DiscoverStream reads a stream of JSON documents (JSONL or concatenated)
// in bounded chunks through a decode worker pool and infers their
// collection schema, holding only the stream's distinct structure in
// memory. It produces exactly the schema Discover produces on the same
// records. The context cancels ingestion mid-stream.
func DiscoverStream(ctx context.Context, r io.Reader, cfg Config) (Schema, error) {
	return DiscoverStreamOpts(ctx, r, cfg, StreamOptions{})
}

// DiscoverStreamOpts is DiscoverStream with explicit chunking, worker and
// framing options.
func DiscoverStreamOpts(ctx context.Context, r io.Reader, cfg Config, opts StreamOptions) (Schema, error) {
	acc := core.NewAccumulator(cfg)
	if _, err := ingest.Fold(ctx, r, opts, acc); err != nil {
		return nil, fmt.Errorf("jxplain: decoding records: %w", err)
	}
	return schema.Simplify(acc.Finish()), nil
}
