package jxplain

// One testing.B benchmark per table and figure of the paper's evaluation,
// plus micro-benchmarks of the extraction kernels and an ablation bench
// for the two execution strategies. The table/figure benches run the same
// harness as cmd/jxbench at reduced scale and report the headline numbers
// as custom metrics, so `go test -bench=. -benchmem` regenerates every
// experiment; run `go run ./cmd/jxbench -all` for the full-size tables.

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"jxplain/internal/core"
	"jxplain/internal/dataset"
	"jxplain/internal/entity"
	"jxplain/internal/entropy"
	"jxplain/internal/experiments"
	"jxplain/internal/jsontype"
	"jxplain/internal/merge"
	"jxplain/internal/metrics"
)

func benchOpts(scale float64) experiments.Options {
	return experiments.Options{Trials: 2, Scale: scale, Seed: 1}
}

// BenchmarkTable1Recall regenerates the recall comparison (Table 1) and
// reports mean recall per algorithm at the 10% training fraction.
func BenchmarkTable1Recall(b *testing.B) {
	o := benchOpts(0.15)
	o.Fractions = []float64{0.10}
	o.Datasets = []string{"pharma", "synapse", "yelp-merged"}
	var res *experiments.Table1Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunTable1(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	var kSum, mSum, lSum float64
	for _, ds := range res.Datasets {
		cell := res.Cells[ds][0.10]
		kSum += cell[experiments.KReduce].Mean
		mSum += cell[experiments.BimaxMerge].Mean
		lSum += cell[experiments.LReduce].Mean
	}
	n := float64(len(res.Datasets))
	b.ReportMetric(kSum/n, "recall-kreduce")
	b.ReportMetric(mSum/n, "recall-bimaxmerge")
	b.ReportMetric(lSum/n, "recall-lreduce")
}

// BenchmarkTable2SchemaEntropy regenerates the precision comparison
// (Table 2) and reports mean schema entropy per algorithm.
func BenchmarkTable2SchemaEntropy(b *testing.B) {
	o := benchOpts(0.15)
	o.Fractions = []float64{0.50}
	o.Datasets = []string{"github", "yelp-merged", "twitter"}
	var res *experiments.Table2Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunTable2(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	var kSum, mSum float64
	for _, ds := range res.Datasets {
		cell := res.Cells[ds][0.50]
		kSum += cell[experiments.KReduce].Mean
		mSum += cell[experiments.BimaxMerge].Mean
	}
	n := float64(len(res.Datasets))
	b.ReportMetric(kSum/n, "entropy-kreduce")
	b.ReportMetric(mSum/n, "entropy-bimaxmerge")
}

// BenchmarkTable3EntityDetection regenerates the clustering-accuracy
// comparison (Table 3) and reports the total symmetric difference per
// approach over the Yelp-Merged ground truth.
func BenchmarkTable3EntityDetection(b *testing.B) {
	o := benchOpts(0.3)
	o.Datasets = []string{"yelp-merged"}
	var res *experiments.Table3Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunTable3(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	var k, m, km int
	for _, row := range res.Rows {
		k += row.KReduce
		m += row.Bimax
		km += row.KMeans
	}
	b.ReportMetric(float64(k), "symdiff-kreduce")
	b.ReportMetric(float64(m), "symdiff-bimaxmerge")
	b.ReportMetric(float64(km), "symdiff-kmeans")
}

// BenchmarkTable4Conciseness regenerates the entity-count comparison
// (Table 4) and reports Bimax-Naive vs Bimax-Merge entity counts on
// Yelp-Merged.
func BenchmarkTable4Conciseness(b *testing.B) {
	o := benchOpts(0.25)
	o.Trials = 1
	o.Datasets = []string{"yelp-merged", "yelp-business"}
	var res *experiments.Table4Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunTable4(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		if row.Dataset == "yelp-merged" {
			b.ReportMetric(row.BimaxNaiveMean, "entities-naive")
			b.ReportMetric(row.BimaxMergeMean, "entities-merge")
		}
	}
}

// BenchmarkTable5Runtime regenerates the runtime comparison (Table 5) and
// reports the JXPLAIN/K-reduce slowdown factor.
func BenchmarkTable5Runtime(b *testing.B) {
	o := benchOpts(0.2)
	o.Fractions = []float64{0.50}
	o.Datasets = []string{"twitter", "nyt", "yelp-merged"}
	var res *experiments.Table5Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunTable5(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	var ratio float64
	for _, ds := range res.Datasets {
		cell := res.Cells[ds][0.50]
		ratio += cell[experiments.BimaxMerge].Mean / cell[experiments.KReduce].Mean
	}
	b.ReportMetric(ratio/float64(len(res.Datasets)), "slowdown-x")
}

// BenchmarkFigure4EntropyHistogram regenerates the key-space entropy
// distribution (Figure 4) and reports how bimodal it is.
func BenchmarkFigure4EntropyHistogram(b *testing.B) {
	o := benchOpts(0.2)
	var res *experiments.Figure4Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunFigure4(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Points)), "paths")
	b.ReportMetric(float64(res.GrayZone), "gray-zone-paths")
}

// BenchmarkFigure5FeatureMemory regenerates the feature-vector memory
// comparison (Figure 5) and reports the sparse-encoding savings of
// nested-collection pruning on Yelp-Merged.
func BenchmarkFigure5FeatureMemory(b *testing.B) {
	o := benchOpts(0.2)
	var res *experiments.Figure5Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunFigure5(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	var pruned, unpruned float64
	for _, row := range res.Rows {
		if row.Dataset == "yelp-merged" && row.Encoding == 0 { // sparse
			if row.PruneNested {
				pruned = float64(row.Bytes)
			} else {
				unpruned = float64(row.Bytes)
			}
		}
	}
	b.ReportMetric(unpruned/pruned, "memory-savings-x")
}

// BenchmarkAblationPipeline compares the recursive §4.1 implementation
// with the staged Figure-3 pipeline.
func BenchmarkAblationPipeline(b *testing.B) {
	g, _ := dataset.ByName("yelp-merged")
	types := dataset.Types(g.Generate(1200, 1))
	b.Run("recursive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.DiscoverTypes(types, core.Default())
		}
	})
	b.Run("pipeline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.PipelineTypes(types, core.Default())
		}
	})
}

// --- extraction kernel micro-benchmarks ---

func benchTypes(b *testing.B, name string, n int) []*jsontype.Type {
	b.Helper()
	g, ok := dataset.ByName(name)
	if !ok {
		b.Fatalf("unknown dataset %s", name)
	}
	return dataset.Types(g.Generate(n, 1))
}

// BenchmarkKReduceFold measures the distributable K-reduction fold.
func BenchmarkKReduceFold(b *testing.B) {
	types := benchTypes(b, "twitter", 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merge.FoldK(types, 0)
	}
}

// BenchmarkJxplainPipeline measures the full JXPLAIN pipeline.
func BenchmarkJxplainPipeline(b *testing.B) {
	types := benchTypes(b, "twitter", 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.PipelineTypes(types, core.Default())
	}
}

// BenchmarkTypeExtraction measures JSON → structural-type decoding.
func BenchmarkTypeExtraction(b *testing.B) {
	doc := []byte(`{"ts":7,"event":"login","user":{"name":"bob","geo":[1.1,2.2]},` +
		`"tags":["a","b","c"],"meta":{"k1":1,"k2":2,"k3":3}}`)
	b.SetBytes(int64(len(doc)))
	for i := 0; i < b.N; i++ {
		if _, err := jsontype.FromJSON(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidation measures schema membership testing.
func BenchmarkValidation(b *testing.B) {
	types := benchTypes(b, "github", 1500)
	s := core.PipelineTypes(types, core.Default())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Accepts(types[i%len(types)]) {
			b.Fatal("training record rejected")
		}
	}
}

// BenchmarkSchemaEntropy measures admitted-type counting.
func BenchmarkSchemaEntropy(b *testing.B) {
	types := benchTypes(b, "yelp-merged", 1500)
	s := core.PipelineTypes(types, core.Default())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.SchemaEntropy(s)
	}
}

// BenchmarkDecodeLines compares the streaming decoder with the parallel
// JSONL line decoder.
func BenchmarkDecodeLines(b *testing.B) {
	g, _ := dataset.ByName("twitter")
	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	for _, rec := range g.Generate(1000, 1) {
		if err := enc.Encode(rec.Value); err != nil {
			b.Fatal(err)
		}
	}
	data := buf.String()
	b.SetBytes(int64(len(data)))
	b.Run("stream", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := jsontype.DecodeAll(strings.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lines-parallel", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := jsontype.DecodeLines(strings.NewReader(data), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCollectionDetection measures Algorithm 5 over a pharma-style
// wide-domain bag.
func BenchmarkCollectionDetection(b *testing.B) {
	types := benchTypes(b, "pharma", 1000)
	bag := &jsontype.Bag{}
	for _, t := range types {
		bag.Add(t)
	}
	keys, groups, _ := bag.GroupByKey()
	var inner *jsontype.Bag
	for i, k := range keys {
		if k == "cms_prescription_counts" {
			inner = groups[i]
		}
	}
	if inner == nil {
		b.Fatal("prescription counts missing")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entropy.DetectObjects(inner, entropy.DefaultConfig())
	}
}

// BenchmarkBimaxClustering measures Algorithms 6–8 over the Yelp-Merged
// key sets.
func BenchmarkBimaxClustering(b *testing.B) {
	types := benchTypes(b, "yelp-merged", 3000)
	dict := entity.NewDict()
	var sets []entity.KeySet
	for _, t := range types {
		sets = append(sets, entity.KeySetOf(dict, t.Keys()...))
	}
	b.Run("bimax-naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			entity.BimaxNaive(sets)
		}
	})
	b.Run("greedy-merge", func(b *testing.B) {
		naive := entity.BimaxNaive(sets)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			entity.GreedyMerge(naive)
		}
	})
}

// BenchmarkParallelPathStats compares the sequential pass ① with the
// partitioned-fold version across worker counts.
func BenchmarkParallelPathStats(b *testing.B) {
	types := benchTypes(b, "twitter", 2000)
	bag := &jsontype.Bag{}
	for _, t := range types {
		bag.Add(t)
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.CollectPathStats(bag, core.Default())
		}
	})
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("fold-%dw", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ParallelCollectPathStats(types, workers, core.Default())
			}
		})
	}
}
