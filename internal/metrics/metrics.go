// Package metrics implements the evaluation measures of Section 7:
// recall (Table 1), schema entropy (Table 2), the symmetric difference
// between discovered and ground-truth entity schemas (Table 3), and the
// greedy upper bound on schema edits needed for full recall (§7.5).
package metrics

import (
	"jxplain/internal/dist"
	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
)

// Recall returns the fraction of test types admitted by the schema —
// Table 1's measure. Validation runs in parallel. An empty test set has
// recall 1.
func Recall(s schema.Schema, test []*jsontype.Type) float64 {
	if len(test) == 0 {
		return 1
	}
	accepted := dist.Fold(test, 0,
		func() int { return 0 },
		func(acc int, t *jsontype.Type) int {
			if s.Accepts(t) {
				acc++
			}
			return acc
		},
		func(a, b int) int { return a + b })
	return float64(accepted) / float64(len(test))
}

// SchemaEntropy returns the log2 number of types admitted by the schema —
// Table 2's measure (−Inf for the empty schema).
func SchemaEntropy(s schema.Schema) float64 { return s.LogTypeCount() }

// SymmetricDiff returns |paths(a) − paths(b)| + |paths(b) − paths(a)| over
// the schemas' field-path sets — the Table 3 distance between a discovered
// entity schema and a ground-truth entity schema.
func SymmetricDiff(a, b schema.Schema) int {
	pa := schema.FieldPaths(a)
	pb := schema.FieldPaths(b)
	d := 0
	for p := range pa {
		if !pb[p] {
			d++
		}
	}
	for p := range pb {
		if !pa[p] {
			d++
		}
	}
	return d
}

// MinSymmetricDiff returns, for a ground-truth entity schema, the distance
// to the most similar discovered cluster (Table 3 reports this per
// ground-truth entity; smaller is better). With no clusters it returns the
// size of the truth's path set.
func MinSymmetricDiff(clusters []schema.Schema, truth schema.Schema) int {
	if len(clusters) == 0 {
		return len(schema.FieldPaths(truth))
	}
	best := -1
	for _, c := range clusters {
		if d := SymmetricDiff(c, truth); best < 0 || d < best {
			best = d
		}
	}
	return best
}

// RootEntitySchemas splits a discovered schema into its root-level entity
// alternatives: tuple nodes reachable through top-level unions. Collection
// and primitive alternatives are returned under the second value.
func RootEntitySchemas(s schema.Schema) (entities []schema.Schema, other []schema.Schema) {
	switch n := s.(type) {
	case *schema.Union:
		for _, a := range n.Alts {
			e, o := RootEntitySchemas(a)
			entities = append(entities, e...)
			other = append(other, o...)
		}
	case *schema.ObjectTuple, *schema.ArrayTuple:
		entities = append(entities, n)
	default:
		other = append(other, n)
	}
	return entities, other
}
