package metrics

import (
	"sort"
	"strconv"

	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
)

// Schema-edit upper bound (§7.5). Row rejection is diagnosed into a set of
// canonical *edits* — "make key k optional at path p", "add optional key k
// at p", "widen the type at p", "extend the tuple length at p" — and the
// greedy bound is the number of distinct edits accumulated over all
// rejected records. Each edit would individually repair every record it
// was emitted for, so applying all of them yields 100% recall; the count
// is an upper bound on the minimal repair.

// Edit is one canonical schema repair.
type Edit struct {
	// Path locates the repair.
	Path string
	// Op is the repair kind: "add-optional", "make-optional", "widen",
	// "resize", "add-alternative".
	Op string
	// Detail carries the key or kind involved.
	Detail string
}

func (e Edit) key() string { return e.Op + "\x00" + e.Path + "\x00" + e.Detail }

// EditsToFullRecall returns the greedy upper bound on the number of schema
// edits needed for s to accept every test record, along with the distinct
// edits themselves (sorted for determinism).
func EditsToFullRecall(s schema.Schema, test []*jsontype.Type) (int, []Edit) {
	seen := map[string]Edit{}
	for _, t := range test {
		if s.Accepts(t) {
			continue
		}
		for _, e := range violations(s, t, "$") {
			seen[e.key()] = e
		}
	}
	edits := make([]Edit, 0, len(seen))
	for _, e := range seen {
		edits = append(edits, e)
	}
	sort.Slice(edits, func(i, j int) bool { return edits[i].key() < edits[j].key() })
	return len(edits), edits
}

// violations diagnoses why t is rejected by s into a small set of edits.
// For unions it follows the alternative with the fewest violations (the
// greedy choice).
func violations(s schema.Schema, t *jsontype.Type, path string) []Edit {
	if s.Accepts(t) {
		return nil
	}
	switch n := s.(type) {
	case *schema.Primitive:
		return []Edit{{Path: path, Op: "widen", Detail: t.Kind().String()}}
	case *schema.Union:
		if len(n.Alts) == 0 {
			return []Edit{{Path: path, Op: "add-alternative", Detail: t.Kind().String()}}
		}
		var best []Edit
		for _, a := range n.Alts {
			v := violations(a, t, path)
			if len(v) == 0 {
				return nil // some alternative accepts after all
			}
			if best == nil || len(v) < len(best) {
				best = v
			}
		}
		return best
	case *schema.ObjectTuple:
		if t.Kind() != jsontype.KindObject {
			return []Edit{{Path: path, Op: "add-alternative", Detail: t.Kind().String()}}
		}
		var out []Edit
		present := map[string]bool{}
		for _, f := range t.Fields() {
			present[f.Key] = true
			fs, _ := n.Field(f.Key)
			if fs == nil {
				out = append(out, Edit{Path: path, Op: "add-optional", Detail: f.Key})
				continue
			}
			out = append(out, violations(fs, f.Type, path+"."+f.Key)...)
		}
		for _, f := range n.Required {
			if !present[f.Key] {
				out = append(out, Edit{Path: path, Op: "make-optional", Detail: f.Key})
			}
		}
		return out
	case *schema.ArrayTuple:
		if t.Kind() != jsontype.KindArray {
			return []Edit{{Path: path, Op: "add-alternative", Detail: t.Kind().String()}}
		}
		var out []Edit
		if t.Len() > len(n.Elems) || t.Len() < n.MinLen {
			out = append(out, Edit{Path: path, Op: "resize", Detail: strconv.Itoa(t.Len())})
		}
		for i, e := range t.Elems() {
			if i >= len(n.Elems) {
				break
			}
			out = append(out, violations(n.Elems[i], e, path+"["+strconv.Itoa(i)+"]")...)
		}
		return out
	case *schema.ArrayCollection:
		if t.Kind() != jsontype.KindArray {
			return []Edit{{Path: path, Op: "add-alternative", Detail: t.Kind().String()}}
		}
		var out []Edit
		for _, e := range t.Elems() {
			out = append(out, violations(n.Elem, e, path+"[*]")...)
		}
		return out
	case *schema.ObjectCollection:
		if t.Kind() != jsontype.KindObject {
			return []Edit{{Path: path, Op: "add-alternative", Detail: t.Kind().String()}}
		}
		var out []Edit
		for _, f := range t.Fields() {
			out = append(out, violations(n.Value, f.Type, path+".{*}")...)
		}
		return out
	}
	return []Edit{{Path: path, Op: "add-alternative", Detail: t.Kind().String()}}
}
