package metrics

import (
	"testing"

	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
)

func ty(t *testing.T, src string) *jsontype.Type {
	t.Helper()
	typ, err := jsontype.FromJSON([]byte(src))
	if err != nil {
		t.Fatalf("FromJSON(%q): %v", src, err)
	}
	return typ
}

func fs(key string, s schema.Schema) schema.FieldSchema {
	return schema.FieldSchema{Key: key, Schema: s}
}

func TestRecall(t *testing.T) {
	s := schema.NewObjectTuple(
		[]schema.FieldSchema{fs("a", schema.Number)},
		[]schema.FieldSchema{fs("b", schema.String)},
	)
	test := []*jsontype.Type{
		ty(t, `{"a":1}`),
		ty(t, `{"a":2,"b":"x"}`),
		ty(t, `{"a":"wrong"}`),
		ty(t, `{"b":"x"}`),
	}
	if got := Recall(s, test); got != 0.5 {
		t.Errorf("recall = %v, want 0.5", got)
	}
	if Recall(s, nil) != 1 {
		t.Error("empty test set has recall 1")
	}
}

func TestRecallParallelMatchesSerial(t *testing.T) {
	s := schema.NewObjectTuple([]schema.FieldSchema{fs("k", schema.Number)}, nil)
	var test []*jsontype.Type
	for i := 0; i < 1000; i++ {
		if i%3 == 0 {
			test = append(test, ty(t, `{"k":"s"}`))
		} else {
			test = append(test, ty(t, `{"k":1}`))
		}
	}
	serial := 0
	for _, typ := range test {
		if s.Accepts(typ) {
			serial++
		}
	}
	if got := Recall(s, test); got != float64(serial)/float64(len(test)) {
		t.Errorf("parallel recall %v != serial %v", got, float64(serial)/float64(len(test)))
	}
}

func TestSchemaEntropyDelegates(t *testing.T) {
	s := schema.NewObjectTuple(nil, []schema.FieldSchema{fs("a", schema.Number)})
	if SchemaEntropy(s) != s.LogTypeCount() {
		t.Error("SchemaEntropy should delegate to LogTypeCount")
	}
}

func TestSymmetricDiff(t *testing.T) {
	a := schema.NewObjectTuple([]schema.FieldSchema{
		fs("shared", schema.Number), fs("onlyA", schema.String),
	}, nil)
	b := schema.NewObjectTuple([]schema.FieldSchema{
		fs("shared", schema.Number), fs("onlyB1", schema.String), fs("onlyB2", schema.Bool),
	}, nil)
	if got := SymmetricDiff(a, b); got != 3 {
		t.Errorf("SymmetricDiff = %d, want 3", got)
	}
	if SymmetricDiff(a, a) != 0 {
		t.Error("self-diff must be 0")
	}
	// Nested paths count individually.
	c := schema.NewObjectTuple([]schema.FieldSchema{
		fs("u", schema.NewObjectTuple([]schema.FieldSchema{fs("x", schema.Number)}, nil)),
	}, nil)
	d := schema.NewObjectTuple([]schema.FieldSchema{fs("u", schema.Number)}, nil)
	if got := SymmetricDiff(c, d); got != 1 { // u matches, u.x only in c
		t.Errorf("nested diff = %d, want 1", got)
	}
}

func TestMinSymmetricDiff(t *testing.T) {
	truth := schema.NewObjectTuple([]schema.FieldSchema{
		fs("a", schema.Number), fs("b", schema.Number),
	}, nil)
	far := schema.NewObjectTuple([]schema.FieldSchema{
		fs("x", schema.Number), fs("y", schema.Number), fs("z", schema.Number),
	}, nil)
	near := schema.NewObjectTuple([]schema.FieldSchema{
		fs("a", schema.Number), fs("b", schema.Number), fs("c", schema.Number),
	}, nil)
	if got := MinSymmetricDiff([]schema.Schema{far, near}, truth); got != 1 {
		t.Errorf("MinSymmetricDiff = %d, want 1", got)
	}
	if got := MinSymmetricDiff(nil, truth); got != 2 {
		t.Errorf("no clusters: %d, want |paths|=2", got)
	}
}

func TestRootEntitySchemas(t *testing.T) {
	e1 := schema.NewObjectTuple([]schema.FieldSchema{fs("a", schema.Number)}, nil)
	e2 := schema.NewObjectTuple([]schema.FieldSchema{fs("b", schema.Number)}, nil)
	s := schema.NewUnion(e1, schema.NewUnion(e2, schema.Number),
		&schema.ArrayCollection{Elem: schema.String})
	entities, other := RootEntitySchemas(s)
	if len(entities) != 2 || len(other) != 2 {
		t.Errorf("entities=%d other=%d", len(entities), len(other))
	}
}

func TestEditsToFullRecallAccepted(t *testing.T) {
	s := schema.NewObjectTuple([]schema.FieldSchema{fs("a", schema.Number)}, nil)
	n, edits := EditsToFullRecall(s, []*jsontype.Type{ty(t, `{"a":1}`)})
	if n != 0 || len(edits) != 0 {
		t.Errorf("accepted records need no edits: %d %v", n, edits)
	}
}

func TestEditsMissingAttribute(t *testing.T) {
	s := schema.NewObjectTuple([]schema.FieldSchema{
		fs("a", schema.Number), fs("b", schema.String),
	}, nil)
	// Two records missing b, one with an extra key: 2 distinct edits.
	test := []*jsontype.Type{
		ty(t, `{"a":1}`),
		ty(t, `{"a":2}`),
		ty(t, `{"a":3,"b":"x","extra":true}`),
	}
	n, edits := EditsToFullRecall(s, test)
	if n != 2 {
		t.Fatalf("want 2 distinct edits, got %d: %v", n, edits)
	}
	ops := map[string]bool{}
	for _, e := range edits {
		ops[e.Op+":"+e.Detail] = true
	}
	if !ops["make-optional:b"] || !ops["add-optional:extra"] {
		t.Errorf("edits = %v", edits)
	}
}

func TestEditsWidenAndResize(t *testing.T) {
	s := schema.NewObjectTuple([]schema.FieldSchema{
		fs("n", schema.Number),
		fs("geo", schema.NewArrayTuple(schema.Number, schema.Number)),
	}, nil)
	test := []*jsontype.Type{
		ty(t, `{"n":"string-not-number","geo":[1,2]}`),
		ty(t, `{"n":1,"geo":[1,2,3]}`),
	}
	n, edits := EditsToFullRecall(s, test)
	if n != 2 {
		t.Fatalf("want 2 edits, got %d: %v", n, edits)
	}
	var widen, resize bool
	for _, e := range edits {
		if e.Op == "widen" {
			widen = true
		}
		if e.Op == "resize" {
			resize = true
		}
	}
	if !widen || !resize {
		t.Errorf("edits = %v", edits)
	}
}

func TestEditsUnionPicksCheapestAlternative(t *testing.T) {
	// One alternative needs 1 edit, the other needs 2: greedy follows the
	// cheaper diagnosis.
	close1 := schema.NewObjectTuple([]schema.FieldSchema{
		fs("a", schema.Number), fs("b", schema.Number),
	}, nil)
	far := schema.NewObjectTuple([]schema.FieldSchema{
		fs("x", schema.Number), fs("y", schema.Number), fs("z", schema.Number),
	}, nil)
	s := schema.NewUnion(close1, far)
	n, _ := EditsToFullRecall(s, []*jsontype.Type{ty(t, `{"a":1}`)})
	if n != 1 {
		t.Errorf("greedy union diagnosis should need 1 edit, got %d", n)
	}
}

func TestEditsCollectionLeaves(t *testing.T) {
	s := &schema.ObjectCollection{Value: schema.Number, Domain: 3}
	n, edits := EditsToFullRecall(s, []*jsontype.Type{ty(t, `{"k":"string"}`)})
	if n != 1 || edits[0].Op != "widen" {
		t.Errorf("collection leaf widening: %v", edits)
	}
	arr := &schema.ArrayCollection{Elem: schema.Number, MaxLen: 2}
	n2, edits2 := EditsToFullRecall(arr, []*jsontype.Type{ty(t, `[1,"x"]`)})
	if n2 != 1 || edits2[0].Op != "widen" {
		t.Errorf("array collection widening: %v", edits2)
	}
}

func TestEditsKindMismatch(t *testing.T) {
	s := schema.NewObjectTuple([]schema.FieldSchema{fs("a", schema.Number)}, nil)
	n, edits := EditsToFullRecall(s, []*jsontype.Type{ty(t, `[1,2]`)})
	if n != 1 || edits[0].Op != "add-alternative" {
		t.Errorf("kind mismatch should be add-alternative: %v", edits)
	}
	n2, _ := EditsToFullRecall(schema.Empty(), []*jsontype.Type{ty(t, `{"a":1}`)})
	if n2 != 1 {
		t.Errorf("empty schema needs one alternative, got %d", n2)
	}
}

func TestEditsDeduplicateAcrossRecords(t *testing.T) {
	s := schema.NewObjectTuple([]schema.FieldSchema{fs("a", schema.Number)}, nil)
	var test []*jsontype.Type
	for i := 0; i < 50; i++ {
		test = append(test, ty(t, `{"a":1,"extra":2}`))
	}
	n, _ := EditsToFullRecall(s, test)
	if n != 1 {
		t.Errorf("identical failures should dedup to 1 edit, got %d", n)
	}
}
