// Package stats provides the small descriptive-statistics toolkit used by
// the experiment harness: streaming mean/variance (Welford), min/max,
// histograms for the Figure 4 entropy distribution, and log-space
// arithmetic helpers for schema-entropy computation.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates a stream of float64 observations and reports mean,
// sample standard deviation, min and max. The zero value is ready to use.
type Summary struct {
	n            int
	mean, m2     float64
	minV, maxV   float64
	haveExtremes bool
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if !s.haveExtremes || x < s.minV {
		s.minV = x
	}
	if !s.haveExtremes || x > s.maxV {
		s.maxV = x
	}
	s.haveExtremes = true
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Std returns the population standard deviation, matching the paper's
// reported "std" columns (0 for fewer than 2 observations).
func (s *Summary) Std() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n))
}

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.minV }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.maxV }

// Summarize builds a Summary over a slice.
func Summarize(xs []float64) *Summary {
	var s Summary
	for _, x := range xs {
		s.Add(x)
	}
	return &s
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi); observations
// outside the range are clamped into the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram returns a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Render draws an ASCII bar chart, used by cmd/jxbench for Figure 4.
func (h *Histogram) Render(width int) string {
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&b, "%8.3f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Percentile returns the p-th percentile (0..100) of xs using the
// nearest-rank method. It sorts a copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	rank := int(math.Ceil(p / 100 * float64(len(cp))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(cp) {
		rank = len(cp)
	}
	return cp[rank-1]
}

// Log2SumExp2 returns log2(Σ 2^xᵢ) computed stably. It is the workhorse of
// schema entropy: admitted-type counts live in log2 space because they
// routinely exceed 2^2000.
func Log2SumExp2(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	maxX := xs[0]
	for _, x := range xs[1:] {
		if x > maxX {
			maxX = x
		}
	}
	if math.IsInf(maxX, -1) {
		return maxX
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Exp2(x - maxX)
	}
	return maxX + math.Log2(sum)
}

// Log2Add returns log2(2^a + 2^b).
func Log2Add(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log2(1+math.Exp2(b-a))
}

// Log2GeometricSeries returns log2(Σ_{ℓ=0..n} (2^logC)^ℓ): the log2 count of
// sequences of length up to n over an alphabet of 2^logC element types.
// Used for ArrayCollection entropy.
func Log2GeometricSeries(logC float64, n int) float64 {
	if n < 0 {
		return math.Inf(-1)
	}
	if math.IsInf(logC, -1) {
		// Only the empty sequence (ℓ=0 contributes 1; ℓ>0 contribute 0).
		return 0
	}
	// Sum has n+1 terms: ℓ*logC for ℓ=0..n. The sum is dominated by the
	// largest term; closed form avoids materializing huge slices.
	if logC == 0 {
		return math.Log2(float64(n + 1))
	}
	// Σ 2^{ℓ·logC} = (2^{(n+1)·logC} − 1) / (2^{logC} − 1).
	top := float64(n+1) * logC
	if logC > 0 {
		// log2(2^top − 1) ≈ top for large top; compute stably.
		num := top + math.Log2(1-math.Exp2(-top))
		den := logC + math.Log2(1-math.Exp2(-logC))
		return num - den
	}
	// logC < 0: series converges toward 1/(1−2^logC).
	num := math.Log2(1 - math.Exp2(top))
	den := math.Log2(1 - math.Exp2(logC))
	return num - den
}

// Entropy returns the Shannon entropy −Σ p ln p (natural log, matching the
// paper's key-space entropy examples) of an arbitrary non-negative weight
// vector; weights are normalized by norm, not by their own sum, because
// key-space entropy divides by the record count rather than the total key
// count (the Pₖ need not sum to 1).
func Entropy(weights []float64, norm float64) float64 {
	if norm <= 0 {
		return 0
	}
	e := 0.0
	for _, w := range weights {
		if w <= 0 {
			continue
		}
		p := w / norm
		e -= p * math.Log(p)
	}
	return e
}
