package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummaryBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almost(s.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	if !almost(s.Std(), 2, 1e-12) { // population std of the classic example
		t.Errorf("std = %v, want 2", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 || s.N() != 8 {
		t.Errorf("min/max/n = %v/%v/%v", s.Min(), s.Max(), s.N())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.N() != 0 {
		t.Error("empty summary should be zero")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Std() != 0 || s.Min() != 3 || s.Max() != 3 {
		t.Error("single-observation summary wrong")
	}
}

func TestSummaryMatchesDirectComputationProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				xs[i] = float64(i % 100)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		varSum := 0.0
		for _, x := range xs {
			varSum += (x - mean) * (x - mean)
		}
		std := 0.0
		if len(xs) >= 2 {
			std = math.Sqrt(varSum / float64(len(xs)))
		}
		return almost(s.Mean(), mean, 1e-6) && almost(s.Std(), std, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	// -3 clamps to bin 0, 42 clamps to bin 4.
	if h.Counts[0] != 3 { // 0, 1.9, -3
		t.Errorf("bin 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[4] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	if !almost(h.BinCenter(0), 1, 1e-12) || !almost(h.BinCenter(4), 9, 1e-12) {
		t.Error("BinCenter wrong")
	}
	if !strings.Contains(h.Render(10), "#") {
		t.Error("Render should draw bars")
	}
}

func TestNewHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid params should panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 50) != 3 {
		t.Errorf("p50 = %v", Percentile(xs, 50))
	}
	if Percentile(xs, 100) != 5 || Percentile(xs, 0) != 1 {
		t.Error("extreme percentiles wrong")
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	// xs must be unchanged (sorted copy).
	if xs[0] != 5 {
		t.Error("Percentile mutated input")
	}
}

func TestLog2SumExp2(t *testing.T) {
	// log2(2^3 + 2^3) = 4.
	if got := Log2SumExp2([]float64{3, 3}); !almost(got, 4, 1e-12) {
		t.Errorf("got %v, want 4", got)
	}
	// Huge exponents must not overflow: log2(2^5000 + 2^4999) = 5000 + log2(1.5).
	got := Log2SumExp2([]float64{5000, 4999})
	if !almost(got, 5000+math.Log2(1.5), 1e-9) {
		t.Errorf("got %v", got)
	}
	if !math.IsInf(Log2SumExp2(nil), -1) {
		t.Error("empty sum should be -inf")
	}
	if !math.IsInf(Log2SumExp2([]float64{math.Inf(-1)}), -1) {
		t.Error("sum of zeros should be -inf")
	}
}

func TestLog2Add(t *testing.T) {
	if got := Log2Add(3, 3); !almost(got, 4, 1e-12) {
		t.Errorf("Log2Add(3,3) = %v", got)
	}
	if got := Log2Add(math.Inf(-1), 7); got != 7 {
		t.Errorf("Log2Add(-inf,7) = %v", got)
	}
	if got := Log2Add(7, math.Inf(-1)); got != 7 {
		t.Errorf("Log2Add(7,-inf) = %v", got)
	}
	if got := Log2Add(0, 10); !almost(got, 10+math.Log2(1+math.Exp2(-10)), 1e-12) {
		t.Errorf("Log2Add(0,10) = %v", got)
	}
}

func TestLog2GeometricSeries(t *testing.T) {
	// c = 2 (logC = 1), n = 3: 1 + 2 + 4 + 8 = 15.
	if got := Log2GeometricSeries(1, 3); !almost(got, math.Log2(15), 1e-9) {
		t.Errorf("got %v, want log2(15)", got)
	}
	// c = 1 (logC = 0), n = 9: 10 terms of 1.
	if got := Log2GeometricSeries(0, 9); !almost(got, math.Log2(10), 1e-12) {
		t.Errorf("got %v, want log2(10)", got)
	}
	// n = 0: only the empty sequence.
	if got := Log2GeometricSeries(5, 0); !almost(got, 0, 1e-9) {
		t.Errorf("n=0: got %v, want 0", got)
	}
	// n < 0: empty sum.
	if !math.IsInf(Log2GeometricSeries(1, -1), -1) {
		t.Error("n<0 should be -inf")
	}
	// logC = -inf: alphabet of zero types, only empty sequence counts.
	if got := Log2GeometricSeries(math.Inf(-1), 5); got != 0 {
		t.Errorf("zero alphabet: got %v, want 0", got)
	}
	// Convergent case logC < 0: c=0.5, n large → sum → 2.
	if got := Log2GeometricSeries(-1, 1000); !almost(got, 1, 1e-9) {
		t.Errorf("convergent: got %v, want 1", got)
	}
	// Huge n must not overflow: c=2, n=10000 → ≈ 10001.
	if got := Log2GeometricSeries(1, 10000); !almost(got, 10001, 1e-6) {
		t.Errorf("huge n: got %v", got)
	}
}

func TestLog2GeometricSeriesMatchesBruteForceProperty(t *testing.T) {
	f := func(logCRaw int8, nRaw uint8) bool {
		logC := float64(logCRaw%8) / 2 // -3.5 .. 3.5
		n := int(nRaw % 20)
		want := math.Inf(-1)
		for l := 0; l <= n; l++ {
			want = Log2Add(want, float64(l)*logC)
		}
		got := Log2GeometricSeries(logC, n)
		return almost(got, want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEntropy(t *testing.T) {
	// Example 7 from the paper: keys with P=1,1,0.5,0.5 give 0.6931 nats.
	got := Entropy([]float64{2, 2, 1, 1}, 2)
	if !almost(got, 2*0.5*math.Log(2), 1e-9) {
		t.Errorf("entropy = %v, want %v", got, math.Log(2))
	}
	if Entropy(nil, 10) != 0 || Entropy([]float64{1}, 0) != 0 {
		t.Error("degenerate entropy should be 0")
	}
	// Uniform distribution over k outcomes (weights sum to norm): ln k.
	if got := Entropy([]float64{1, 1, 1, 1}, 4); !almost(got, math.Log(4), 1e-9) {
		t.Errorf("uniform entropy = %v", got)
	}
	// Zero weights contribute nothing.
	if got := Entropy([]float64{4, 0, 0}, 4); got != 0 {
		t.Errorf("certain outcome entropy = %v", got)
	}
}
