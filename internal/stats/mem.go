package stats

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// MemSampler polls the Go heap in a background goroutine and records the
// high-water mark of in-use bytes. It is the peak-memory probe behind the
// streaming-vs-materialized comparisons: Go exposes no per-phase RSS
// counter, and the process-lifetime VmHWM cannot be reset between phases,
// so a high-frequency HeapAlloc watermark is the honest per-phase proxy.
type MemSampler struct {
	peak atomic.Uint64
	stop chan struct{}
	once sync.Once
	done sync.WaitGroup
}

// StartMemSampler garbage-collects to a clean baseline, then samples
// HeapAlloc at the given interval (<= 0 means 200µs) until Stop.
//
//jx:pool the sampler goroutine publishes only through an atomic peak and exits on the stop channel
func StartMemSampler(interval time.Duration) *MemSampler {
	if interval <= 0 {
		interval = 200 * time.Microsecond
	}
	runtime.GC()
	s := &MemSampler{stop: make(chan struct{})}
	s.sample()
	s.done.Add(1)
	go func() {
		defer s.done.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s.sample()
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

func (s *MemSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for {
		old := s.peak.Load()
		if ms.HeapAlloc <= old || s.peak.CompareAndSwap(old, ms.HeapAlloc) {
			return
		}
	}
}

// Stop halts sampling, takes one final sample, and returns the observed
// peak of in-use heap bytes. Stop is idempotent.
func (s *MemSampler) Stop() uint64 {
	s.once.Do(func() {
		close(s.stop)
		s.done.Wait()
		s.sample()
	})
	return s.peak.Load()
}
