package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestBinomialEdgeCases(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if got := Binomial(r, 0, 0.5); got != 0 {
		t.Errorf("n=0: %d", got)
	}
	if got := Binomial(r, 100, 0); got != 0 {
		t.Errorf("p=0: %d", got)
	}
	if got := Binomial(r, 100, -0.5); got != 0 {
		t.Errorf("p<0: %d", got)
	}
	if got := Binomial(r, 100, 1); got != 100 {
		t.Errorf("p=1: %d", got)
	}
	if got := Binomial(r, 100, 1.5); got != 100 {
		t.Errorf("p>1: %d", got)
	}
}

func TestBinomialSupport(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 3, 17, 500, 100000} {
		for _, p := range []float64{1e-6, 0.01, 0.3, 0.5, 0.7, 0.999} {
			for i := 0; i < 200; i++ {
				k := Binomial(r, n, p)
				if k < 0 || k > n {
					t.Fatalf("Binomial(%d, %g) = %d outside [0, n]", n, p, k)
				}
			}
		}
	}
}

// TestBinomialMoments checks empirical mean and variance against n·p and
// n·p·q on both the BINV (small mean) and BTRS (large mean) regimes.
func TestBinomialMoments(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	cases := []struct {
		n int
		p float64
	}{
		{50, 0.05},     // BINV
		{2000, 0.002},  // BINV, large n
		{200, 0.3},     // BTRS
		{10000, 0.5},   // BTRS, worst-case p
		{100000, 0.01}, // BTRS after symmetry-free path
		{1000, 0.9},    // symmetry (p > 1/2)
	}
	const trials = 20000
	for _, c := range cases {
		var sum Summary
		for i := 0; i < trials; i++ {
			sum.Add(float64(Binomial(r, c.n, c.p)))
		}
		mean := float64(c.n) * c.p
		sd := math.Sqrt(mean * (1 - c.p))
		// The sample mean of `trials` draws has std sd/√trials; 6 of those
		// make a practically flake-free bound.
		if tol := 6 * sd / math.Sqrt(trials); math.Abs(sum.Mean()-mean) > tol {
			t.Errorf("Binomial(%d, %g): mean %.2f, want %.2f ± %.2f",
				c.n, c.p, sum.Mean(), mean, tol)
		}
		if sd > 0 && (sum.Std() < 0.9*sd || sum.Std() > 1.1*sd) {
			t.Errorf("Binomial(%d, %g): std %.2f, want ≈%.2f", c.n, c.p, sum.Std(), sd)
		}
	}
}

// TestBinomialDeterminism pins the seeded sequence: identical generator
// states must yield identical draws, the contract Config.Seed relies on.
func TestBinomialDeterminism(t *testing.T) {
	draw := func() []int {
		r := rand.New(rand.NewSource(42))
		out := make([]int, 0, 12)
		for _, c := range []struct {
			n int
			p float64
		}{{10, 0.3}, {1000, 0.5}, {1000, 0.01}, {50, 0.9}} {
			for i := 0; i < 3; i++ {
				out = append(out, Binomial(r, c.n, c.p))
			}
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %d vs %d — not deterministic per seed", i, a[i], b[i])
		}
	}
}
