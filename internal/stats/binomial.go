package stats

import (
	"math"
	"math/rand"
)

// Binomial draws one variate from Binomial(n, p) using r, in expected O(1)
// time for large n·p and O(n·p) for small — never the O(n) per-trial
// Bernoulli loop. Draws are deterministic for a given generator state.
//
// Small means (n·min(p,1−p) < 10) use the BINV inversion of the CDF;
// larger means use Hörmann's BTRS transformed-rejection algorithm
// (W. Hörmann, "The generation of binomial random variates", JSCS 1993),
// the sampler behind numpy's and TensorFlow's binomial. Both are exact.
func Binomial(r *rand.Rand, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Exploit Binomial(n, p) = n − Binomial(n, 1−p) so the workhorses only
	// see p ≤ 1/2, keeping BINV's expected iteration count at n·p and
	// BTRS's constants in their derived range.
	if p > 0.5 {
		return n - Binomial(r, n, 1-p)
	}
	if float64(n)*p < 10 {
		return binv(r, n, p)
	}
	return btrs(r, n, p)
}

// binv inverts the binomial CDF by walking the probability mass from k=0,
// using the recurrence pmf(k+1) = pmf(k)·(n−k)/(k+1)·(p/q). Expected
// iterations ≈ n·p + O(√(n·p)).
func binv(r *rand.Rand, n int, p float64) int {
	q := 1 - p
	s := p / q
	a := float64(n+1) * s
	pmf := math.Pow(q, float64(n)) // no underflow: callers keep n·p < 10
	u := r.Float64()
	k := 0
	for u > pmf {
		u -= pmf
		k++
		if k > n {
			// Float round-off exhausted the mass; clamp to the support.
			return n
		}
		pmf *= a/float64(k) - s
	}
	return k
}

// btrs is Hörmann's transformed-rejection sampler for p ≤ 1/2, n·p ≥ 10:
// a triangular-tailed hat over the transformed binomial with an inner
// squeeze that accepts ~86% of proposals without evaluating the mass
// function; the remainder are decided exactly via log-gamma.
func btrs(r *rand.Rand, n int, p float64) int {
	q := 1 - p
	fn := float64(n)
	spq := math.Sqrt(fn * p * q)

	b := 1.15 + 2.53*spq
	a := -0.0873 + 0.0248*b + 0.01*p
	c := fn*p + 0.5
	vr := 0.92 - 4.2/b
	alpha := (2.83 + 5.1/b) * spq
	lpq := math.Log(p / q)
	m := math.Floor(float64(n+1) * p) // the mode
	lgM, _ := math.Lgamma(m + 1)
	lgNM, _ := math.Lgamma(fn - m + 1)
	h := lgM + lgNM

	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + c)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || k > fn {
			continue
		}
		lgK, _ := math.Lgamma(k + 1)
		lgNK, _ := math.Lgamma(fn - k + 1)
		if math.Log(v*alpha/(a/(us*us)+b)) <= h-lgK-lgNK+(k-m)*lpq {
			return int(k)
		}
	}
}
