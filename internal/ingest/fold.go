package ingest

import (
	"context"
	"io"

	"jxplain/internal/jsontype"
)

// BagFolder consumes deduplicated chunks of a stream. core.Accumulator is
// the canonical implementation; anything that can fold a bag — a sketch,
// a counter, a tee — satisfies it.
type BagFolder interface {
	AddBag(*jsontype.Bag)
}

// Fold streams r through the chunked decode pipeline and folds every
// chunk into the folder, in input order. It returns the total record
// count. Fold is the ingestion step shared by the one-shot facade, the
// streaming facade, and the jxshard map worker: each differs only in what
// it folds into and what it does with the accumulated state afterwards
// (synthesize a schema, or marshal a sketch).
func Fold(ctx context.Context, r io.Reader, opts Options, into BagFolder) (int, error) {
	return Each(ctx, r, opts, func(c Chunk) error {
		into.AddBag(c.Bag)
		return nil
	})
}
