package ingest

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"jxplain/internal/jsontype"
)

func jsonl(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `{"id":%d,"tag":"t%d"}`+"\n", i, i%3)
	}
	return b.String()
}

func TestEachChunksInOrder(t *testing.T) {
	for _, opts := range []Options{
		{ChunkSize: 1, Workers: 4},
		{ChunkSize: 7, Workers: 3},
		{ChunkSize: 7, Workers: 3, JSONL: true},
		{ChunkSize: 1000, Workers: 2},
		{}, // defaults
	} {
		var indices []int
		total := 0
		n, err := Each(context.Background(), strings.NewReader(jsonl(50)), opts, func(c Chunk) error {
			indices = append(indices, c.Index)
			total += c.Records
			if c.Records != c.Bag.Len() {
				t.Errorf("Records %d != Bag.Len %d", c.Records, c.Bag.Len())
			}
			return nil
		})
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if n != 50 || total != 50 {
			t.Errorf("opts %+v: n=%d total=%d", opts, n, total)
		}
		for i, idx := range indices {
			if idx != i {
				t.Errorf("opts %+v: chunk %d delivered at position %d", opts, idx, i)
			}
		}
	}
}

func TestEachDeduplicatesWithinChunk(t *testing.T) {
	input := strings.Repeat(`{"a":1}`+"\n", 40)
	_, err := Each(context.Background(), strings.NewReader(input), Options{ChunkSize: 40, Workers: 2}, func(c Chunk) error {
		if c.Bag.Distinct() != 1 || c.Bag.Len() != 40 {
			t.Errorf("distinct=%d len=%d", c.Bag.Distinct(), c.Bag.Len())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEachConcatenatedAndBlankLines(t *testing.T) {
	input := "{\"a\":1} {\"a\":2}\n\n  \n[1,2] \"s\" 3 true null"
	total, err := Each(context.Background(), strings.NewReader(input), Options{ChunkSize: 2, Workers: 2}, func(Chunk) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if total != 7 {
		t.Errorf("total = %d, want 7", total)
	}
}

func TestEachDecodeErrors(t *testing.T) {
	// JSONL errors carry line numbers.
	_, err := Each(context.Background(), strings.NewReader("{\"a\":1}\n{bad\n"), Options{JSONL: true}, func(Chunk) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v", err)
	}
	// Concatenated truncation fails too.
	_, err = Each(context.Background(), strings.NewReader(`{"a":`), Options{}, func(Chunk) error { return nil })
	if err == nil {
		t.Error("truncated input should fail")
	}
}

func TestEachCallbackError(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	_, err := Each(context.Background(), strings.NewReader(jsonl(100)), Options{ChunkSize: 5, Workers: 4}, func(Chunk) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if calls != 1 {
		t.Errorf("callback called %d times after error", calls)
	}
}

// endlessReader yields records forever, so only cancellation can stop
// ingestion.
type endlessReader struct{ i int }

func (e *endlessReader) Read(p []byte) (int, error) {
	rec := []byte(fmt.Sprintf(`{"id":%d}`+"\n", e.i))
	e.i++
	n := copy(p, rec)
	return n, nil
}

func TestEachCancellationStopsPromptlyWithoutLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Each(ctx, &endlessReader{}, Options{ChunkSize: 64, Workers: 4}, func(Chunk) error { return nil })
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not abort ingestion promptly")
	}

	// Goroutines wind down after Each returns.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestEachPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Each(ctx, strings.NewReader(jsonl(10)), Options{}, func(Chunk) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestEachEmptyInput(t *testing.T) {
	n, err := Each(context.Background(), strings.NewReader(""), Options{}, func(Chunk) error {
		t.Error("no chunks expected")
		return nil
	})
	if err != nil || n != 0 {
		t.Errorf("n=%d err=%v", n, err)
	}
}

func TestEachMatchesDecodeAll(t *testing.T) {
	input := jsonl(137)
	want, err := jsontype.DecodeAll(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	wantBag := jsontype.NewBag(want...)

	got := &jsontype.Bag{}
	_, err = Each(context.Background(), strings.NewReader(input), Options{ChunkSize: 10, Workers: 4}, func(c Chunk) error {
		got.Merge(c.Bag)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != wantBag.Len() || got.Distinct() != wantBag.Distinct() {
		t.Fatalf("merged bag %d/%d, want %d/%d", got.Len(), got.Distinct(), wantBag.Len(), wantBag.Distinct())
	}
	// Insertion order of distinct types must match the sequential decode,
	// the property downstream determinism rests on.
	for i, ty := range wantBag.Types() {
		if got.Types()[i].Canon() != ty.Canon() {
			t.Fatalf("distinct type %d out of order", i)
		}
	}
}
