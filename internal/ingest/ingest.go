// Package ingest reads a stream of JSON records (JSONL or concatenated
// JSON) in bounded chunks and turns each chunk into a deduplicated
// jsontype.Bag through a decode worker pool.
//
// This is the streaming front half of discovery. A single splitter
// goroutine frames raw records (a cheap byte scan for JSONL, a value-level
// token scan for concatenated JSON), batches them into chunks of
// Options.ChunkSize records, and hands the chunks to Options.Workers
// decoding goroutines; decoded chunks are re-sequenced and delivered to
// the caller strictly in input order, so downstream accumulation is
// deterministic regardless of worker scheduling. Memory is bounded by
// O(ChunkSize · Workers) raw records in flight — never by the length of
// the stream — which is what lets the pipeline discover collections far
// larger than RAM.
//
// Cancellation: every stage watches the caller's context; on cancellation
// Each tears the stages down, waits for all goroutines to exit, and
// returns ctx.Err(). Each never leaks goroutines, also on decode errors
// and on callback errors.
package ingest

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"

	"jxplain/internal/jsontype"
)

// Options bounds the chunked decode.
type Options struct {
	// ChunkSize is the number of records per chunk (default 2048).
	ChunkSize int
	// Workers is the decode worker count (default GOMAXPROCS).
	Workers int
	// JSONL frames records as non-blank lines (strict JSONL) instead of
	// scanning concatenated JSON values; errors then carry line numbers.
	JSONL bool
	// MaxRecordBytes caps a single record's size in JSONL mode
	// (default 64 MiB).
	MaxRecordBytes int
}

func (o Options) withDefaults() Options {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 2048
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = 1 << 26
	}
	return o
}

// Chunk is one decoded, deduplicated chunk of the stream.
type Chunk struct {
	// Bag holds the chunk's record types with multiplicities.
	Bag *jsontype.Bag
	// Records is the number of record occurrences in the chunk
	// (Bag.Len()).
	Records int
	// Index is the chunk's 0-based position in the stream.
	Index int
}

// rawChunk is a batch of framed-but-undecoded records.
type rawChunk struct {
	index     int
	firstLine int // 1-based line of the first record (JSONL), else ordinal
	records   [][]byte
}

// Each streams r as bounded chunks, calling fn once per chunk, in input
// order, from the calling goroutine's ordering domain (fn calls never
// overlap). It returns the total record count. A non-nil error from fn
// stops ingestion and is returned as-is; decode errors and context
// cancellation abort likewise. All internal goroutines have exited by the
// time Each returns.
//
//jx:pool splitter/decoder fan-out communicates through channels only; re-sequencing is single-goroutine
func Each(ctx context.Context, r io.Reader, opts Options, fn func(Chunk) error) (int, error) {
	opts = opts.withDefaults()

	// An internal context lets fn errors and decode errors tear down the
	// splitter and workers without requiring the caller to cancel.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	raws := make(chan rawChunk, opts.Workers)
	type decoded struct {
		chunk Chunk
		err   error
	}
	results := make(chan decoded, opts.Workers)

	// Splitter: frame records and batch them into raw chunks.
	splitErr := make(chan error, 1)
	go func() {
		defer close(raws)
		splitErr <- split(ctx, r, opts, raws)
	}()

	// Decode workers: parse each record of a chunk and fold it into a bag.
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for raw := range raws {
				out := decoded{chunk: Chunk{Bag: &jsontype.Bag{}, Index: raw.index}}
				for i, rec := range raw.records {
					t, err := jsontype.FromJSON(rec)
					if err != nil {
						if opts.JSONL {
							err = fmt.Errorf("line %d: %w", raw.firstLine+i, err)
						} else {
							err = fmt.Errorf("record %d: %w", raw.firstLine+i, err)
						}
						out.err = err
						break
					}
					out.chunk.Bag.Add(t)
				}
				out.chunk.Records = out.chunk.Bag.Len()
				select {
				case results <- out:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Re-sequence: deliver chunks to fn strictly in stream order.
	total := 0
	pending := map[int]Chunk{}
	next := 0
	var firstErr error
	for res := range results {
		if firstErr != nil {
			continue // draining after failure
		}
		if res.err != nil {
			firstErr = res.err
			cancel()
			continue
		}
		pending[res.chunk.Index] = res.chunk
		for {
			chunk, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			total += chunk.Records
			if err := fn(chunk); err != nil {
				firstErr = err
				cancel()
				break
			}
		}
	}
	serr := <-splitErr
	if firstErr != nil {
		return total, firstErr
	}
	if serr != nil {
		return total, serr
	}
	if err := ctx.Err(); err != nil {
		return total, err
	}
	return total, nil
}

// Records frames the stream record by record without decoding: each call
// to fn receives the raw bytes of one JSON record, newline excluded, in
// stream order. Only Options.JSONL and Options.MaxRecordBytes apply.
// Memory is bounded by the largest single record, never by the stream
// length, which is what lets a sharding driver cut a corpus into
// contiguous ranges while holding O(record) bytes.
//
// The slice passed to fn aliases an internal buffer and is only valid for
// the duration of the call; fn must copy it if it needs to keep it. A
// non-nil error from fn stops the scan and is returned as-is.
func Records(r io.Reader, opts Options, fn func(rec []byte) error) error {
	opts = opts.withDefaults()
	if opts.JSONL {
		scanner := bufio.NewScanner(r)
		scanner.Buffer(make([]byte, 0, 1<<16), opts.MaxRecordBytes)
		for scanner.Scan() {
			data := scanner.Bytes()
			if len(bytes.TrimSpace(data)) == 0 {
				continue
			}
			if err := fn(data); err != nil {
				return err
			}
		}
		return scanner.Err()
	}
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<16))
	record := 0
	for dec.More() {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return fmt.Errorf("record %d: %w", record+1, err)
		}
		record++
		if err := fn(raw); err != nil {
			return err
		}
	}
	return nil
}

// split frames the stream into raw chunks. It returns nil at EOF and
// ctx.Err() when cancelled mid-stream.
func split(ctx context.Context, r io.Reader, opts Options, out chan<- rawChunk) error {
	send := func(c rawChunk) error {
		select {
		case out <- c:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	index := 0
	if opts.JSONL {
		scanner := bufio.NewScanner(r)
		scanner.Buffer(make([]byte, 0, 1<<16), opts.MaxRecordBytes)
		var batch [][]byte
		line, firstLine := 0, 0
		for scanner.Scan() {
			line++
			data := scanner.Bytes()
			if len(bytes.TrimSpace(data)) == 0 {
				continue
			}
			if len(batch) == 0 {
				firstLine = line
			}
			batch = append(batch, append([]byte(nil), data...))
			if len(batch) >= opts.ChunkSize {
				if err := send(rawChunk{index: index, firstLine: firstLine, records: batch}); err != nil {
					return err
				}
				index++
				batch = nil
			}
		}
		if err := scanner.Err(); err != nil {
			return err
		}
		if len(batch) > 0 {
			return send(rawChunk{index: index, firstLine: firstLine, records: batch})
		}
		return nil
	}

	// Concatenated JSON: frame whole values with a RawMessage scan. The
	// bytes are re-parsed by the workers; framing is the cheap part and
	// stays sequential because value boundaries require a token scan.
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<16))
	var batch [][]byte
	record, firstRecord := 0, 0
	for dec.More() {
		if err := ctx.Err(); err != nil {
			return err
		}
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return fmt.Errorf("record %d: %w", record+1, err)
		}
		record++
		if len(batch) == 0 {
			firstRecord = record
		}
		batch = append(batch, []byte(raw))
		if len(batch) >= opts.ChunkSize {
			if err := send(rawChunk{index: index, firstLine: firstRecord, records: batch}); err != nil {
				return err
			}
			index++
			batch = nil
		}
	}
	if len(batch) > 0 {
		return send(rawChunk{index: index, firstLine: firstRecord, records: batch})
	}
	return nil
}
