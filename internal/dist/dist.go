// Package dist is a miniature data-parallel execution framework standing in
// for the Apache Spark substrate of the paper's implementation. It provides
// partitioned map and fold (fan-in aggregation) over in-memory slices.
//
// The paper's key observation about K-reduction is that its merge operator
// is commutative and associative, so schema extraction can run as a
// partitioned fold followed by a combine tree — exactly the shape Fold
// implements. JXPLAIN's global heuristics break this property, which is why
// core.Pipeline instead runs as a sequence of whole-collection passes
// (each of which is itself parallelized with Map/Fold here).
package dist

import (
	"runtime"
	"sync"
)

// DefaultWorkers is the worker count used when a caller passes workers <= 0.
func DefaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// split partitions n items into at most workers contiguous ranges.
func split(n, workers int) [][2]int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 0 {
		return nil
	}
	per := n / workers
	rem := n % workers
	parts := make([][2]int, 0, workers)
	start := 0
	for i := 0; i < workers; i++ {
		size := per
		if i < rem {
			size++
		}
		parts = append(parts, [2]int{start, start + size})
		start += size
	}
	return parts
}

// Map applies fn to every item in parallel and returns the results in input
// order.
//
//jx:pool workers write disjoint ranges of the pre-sized out slice
func Map[T, U any](items []T, workers int, fn func(T) U) []U {
	out := make([]U, len(items))
	parts := split(len(items), workers)
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = fn(items[i])
			}
		}(p[0], p[1])
	}
	wg.Wait()
	return out
}

// Fold reduces items with a partitioned fold: each worker folds its range
// into a fresh accumulator with add, then the per-worker accumulators are
// combined left-to-right. combine must be associative for the result to be
// independent of the partitioning; add(acc, item) may mutate and return acc.
//
//jx:pool each worker folds into its own accumulator, stored at accs[pi]; combine runs after Wait
func Fold[T, A any](items []T, workers int, newAcc func() A, add func(A, T) A, combine func(A, A) A) A {
	parts := split(len(items), workers)
	if len(parts) == 0 {
		return newAcc()
	}
	accs := make([]A, len(parts))
	var wg sync.WaitGroup
	for pi, p := range parts {
		wg.Add(1)
		go func(pi, lo, hi int) {
			defer wg.Done()
			acc := newAcc()
			for i := lo; i < hi; i++ {
				acc = add(acc, items[i])
			}
			accs[pi] = acc
		}(pi, p[0], p[1])
	}
	wg.Wait()
	result := accs[0]
	for _, a := range accs[1:] {
		result = combine(result, a)
	}
	return result
}

// ForEach runs fn over every index in parallel; use when results are
// written into caller-owned structures indexed by i.
//
//jx:pool workers cover disjoint index ranges; the write-by-index contract is the caller's
func ForEach(n, workers int, fn func(i int)) {
	parts := split(n, workers)
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(p[0], p[1])
	}
	wg.Wait()
}
