package dist

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSplitCoversAllIndices(t *testing.T) {
	f := func(nRaw, wRaw uint16) bool {
		n := int(nRaw % 1000)
		w := int(wRaw%16) + 1
		parts := split(n, w)
		covered := 0
		prev := 0
		for _, p := range parts {
			if p[0] != prev || p[1] < p[0] {
				return false
			}
			covered += p[1] - p[0]
			prev = p[1]
		}
		return covered == n && prev == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitZeroWorkersDefaults(t *testing.T) {
	parts := split(10, 0)
	if len(parts) == 0 {
		t.Fatal("split(10, 0) should use default workers")
	}
	total := 0
	for _, p := range parts {
		total += p[1] - p[0]
	}
	if total != 10 {
		t.Errorf("covered %d, want 10", total)
	}
}

func TestMapOrderAndValues(t *testing.T) {
	in := make([]int, 500)
	for i := range in {
		in[i] = i
	}
	out := Map(in, 4, func(x int) int { return x * x })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out := Map(nil, 4, func(x int) int { return x })
	if len(out) != 0 {
		t.Error("map over nil should be empty")
	}
}

func TestFoldSum(t *testing.T) {
	in := make([]int, 1000)
	for i := range in {
		in[i] = i + 1
	}
	got := Fold(in, 7,
		func() int { return 0 },
		func(a, x int) int { return a + x },
		func(a, b int) int { return a + b })
	if got != 1000*1001/2 {
		t.Errorf("fold sum = %d", got)
	}
}

func TestFoldEmpty(t *testing.T) {
	got := Fold(nil, 3,
		func() int { return 42 },
		func(a, x int) int { return a + x },
		func(a, b int) int { return a + b })
	if got != 42 {
		t.Errorf("empty fold should return fresh accumulator, got %d", got)
	}
}

func TestFoldWorkerCountIndependentProperty(t *testing.T) {
	// An associative/commutative fold must give the same result for any
	// worker count — the algebraic property K-reduction relies on.
	f := func(xs []int32, wRaw uint8) bool {
		w := int(wRaw%8) + 1
		sum := func(items []int32, workers int) int64 {
			return Fold(items, workers,
				func() int64 { return 0 },
				func(a int64, x int32) int64 { return a + int64(x) },
				func(a, b int64) int64 { return a + b })
		}
		return sum(xs, 1) == sum(xs, w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	n := 777
	visits := make([]int32, n)
	ForEach(n, 5, func(i int) { atomic.AddInt32(&visits[i], 1) })
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Error("DefaultWorkers must be >= 1")
	}
}
