package entropy

import (
	"fmt"
	"math"
	"testing"

	"jxplain/internal/jsontype"
)

func ty(t *testing.T, src string) *jsontype.Type {
	t.Helper()
	typ, err := jsontype.FromJSON([]byte(src))
	if err != nil {
		t.Fatalf("FromJSON(%q): %v", src, err)
	}
	return typ
}

func bagOf(t *testing.T, srcs ...string) *jsontype.Bag {
	t.Helper()
	b := &jsontype.Bag{}
	for _, s := range srcs {
		b.Add(ty(t, s))
	}
	return b
}

func TestDecisionString(t *testing.T) {
	if Tuple.String() != "tuple" || Collection.String() != "collection" {
		t.Error("Decision.String broken")
	}
}

func TestExample7KeySpaceEntropy(t *testing.T) {
	// Paper Example 7: records of Figure 1 have E_K = 0.70
	// (= 2·0 + 2·(−½ ln ½)).
	bag := bagOf(t,
		`{"ts":7,"event":"login","user":{"name":"b","geo":[1,2]}}`,
		`{"ts":8,"event":"serve","files":["a","b"]}`,
	)
	_, ev := DetectObjects(bag, DefaultConfig())
	want := 2 * 0.5 * math.Log(2)
	if math.Abs(ev.KeyEntropy-want) > 1e-9 {
		t.Errorf("E_K = %.4f, want %.4f", ev.KeyEntropy, want)
	}
	if ev.DistinctKeys != 4 || ev.Records != 2 {
		t.Errorf("evidence = %+v", ev)
	}
}

func TestStableKeysAreTuples(t *testing.T) {
	bag := bagOf(t,
		`{"a":1,"b":"x"}`,
		`{"a":2,"b":"y"}`,
		`{"a":3,"b":"z"}`,
	)
	d, ev := DetectObjects(bag, DefaultConfig())
	if d != Tuple {
		t.Errorf("stable keys should be Tuple, got %v (E_K=%v)", d, ev.KeyEntropy)
	}
	if ev.KeyEntropy != 0 {
		t.Errorf("mandatory keys have zero entropy, got %v", ev.KeyEntropy)
	}
}

func TestCollectionLikeObjectDetected(t *testing.T) {
	// Pharma-style: each record maps a different subset of a large drug
	// domain to numbers.
	bag := &jsontype.Bag{}
	for i := 0; i < 50; i++ {
		fields := make([]jsontype.Field, 0, 4)
		for j := 0; j < 4; j++ {
			key := fmt.Sprintf("DRUG_%d", (i*7+j*13)%60)
			if hasKey(fields, key) {
				continue
			}
			fields = append(fields, jsontype.Field{Key: key, Type: jsontype.Number})
		}
		bag.Add(jsontype.NewObject(fields))
	}
	d, ev := DetectObjects(bag, DefaultConfig())
	if d != Collection {
		t.Errorf("drug map should be Collection (E_K=%.3f, similar=%v)", ev.KeyEntropy, ev.Similar)
	}
	if !ev.Similar {
		t.Error("all values are numbers: similar must hold")
	}
	if ev.KeyEntropy <= 1 {
		t.Errorf("expected high entropy, got %v", ev.KeyEntropy)
	}
}

func hasKey(fields []jsontype.Field, key string) bool {
	for _, f := range fields {
		if f.Key == key {
			return true
		}
	}
	return false
}

func TestDissimilarValuesForceTuple(t *testing.T) {
	// High key variation but values of mixed primitive types: the
	// similar-types constraint forces Tuple.
	bag := &jsontype.Bag{}
	for i := 0; i < 40; i++ {
		valTy := jsontype.Number
		if i%2 == 1 {
			valTy = jsontype.String
		}
		bag.Add(jsontype.NewObject([]jsontype.Field{
			{Key: fmt.Sprintf("k%d", i), Type: valTy},
		}))
	}
	d, ev := DetectObjects(bag, DefaultConfig())
	if ev.Similar {
		t.Error("mixed ℝ/𝕊 values must be dissimilar")
	}
	if d != Tuple {
		t.Errorf("dissimilar values should force Tuple, got %v", d)
	}
}

func TestNullValuesDoNotBreakSimilarity(t *testing.T) {
	bag := &jsontype.Bag{}
	for i := 0; i < 30; i++ {
		valTy := jsontype.Number
		if i%5 == 0 {
			valTy = jsontype.Null
		}
		bag.Add(jsontype.NewObject([]jsontype.Field{
			{Key: fmt.Sprintf("u%d", i), Type: valTy},
		}))
	}
	d, ev := DetectObjects(bag, DefaultConfig())
	if !ev.Similar {
		t.Error("null is a similarity wildcard")
	}
	if d != Collection {
		t.Errorf("got %v", d)
	}
}

func TestMinRecordsGuard(t *testing.T) {
	bag := bagOf(t, `{"a":1,"b":2,"c":3}`)
	d, _ := DetectObjects(bag, DefaultConfig())
	if d != Tuple {
		t.Error("a single record has no variation signal: Tuple")
	}
	cfg := DefaultConfig()
	cfg.MinRecords = 0
	d2, _ := DetectObjects(bag, cfg)
	if d2 != Tuple { // entropy is still 0
		t.Error("single record entropy is zero: Tuple")
	}
}

func TestThresholdBoundary(t *testing.T) {
	// Two disjoint singleton keys over 2 records: E_K = 2·(−½ln½) = ln 2 ≈ 0.693.
	bag := bagOf(t, `{"p":1}`, `{"q":2}`)
	d, ev := DetectObjects(bag, Config{Threshold: 1.0, MinRecords: 2})
	if d != Tuple {
		t.Errorf("0.693 ≤ 1 → Tuple, got %v (E_K=%v)", d, ev.KeyEntropy)
	}
	d2, _ := DetectObjects(bag, Config{Threshold: 0.5, MinRecords: 2})
	if d2 != Collection {
		t.Error("0.693 > 0.5 → Collection")
	}
	// Exactly at the threshold: ≤ means Tuple.
	d3, _ := DetectObjects(bag, Config{Threshold: ev.KeyEntropy, MinRecords: 2})
	if d3 != Tuple {
		t.Error("E_K == threshold → Tuple")
	}
}

func TestDetectObjectsPanicsOnArrays(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("should panic on array input")
		}
	}()
	DetectObjects(bagOf(t, `[1]`), DefaultConfig())
}

func TestGeoArraysAreTuples(t *testing.T) {
	// GeoJSON coordinates: constant length 2, all numbers.
	bag := &jsontype.Bag{}
	for i := 0; i < 100; i++ {
		bag.Add(ty(t, `[1.5,-2.5]`))
	}
	d, ev := DetectArrays(bag, DefaultConfig())
	if d != Tuple {
		t.Errorf("geo arrays should be Tuple, got %v (%+v)", d, ev)
	}
	if ev.KeyEntropy != 0 || ev.DistinctKeys != 1 {
		t.Errorf("constant length: %+v", ev)
	}
}

func TestVaryingLengthArraysAreCollections(t *testing.T) {
	bag := &jsontype.Bag{}
	for l := 0; l < 12; l++ {
		elems := make([]*jsontype.Type, l)
		for i := range elems {
			elems[i] = jsontype.String
		}
		bag.Add(jsontype.NewArray(elems))
	}
	d, ev := DetectArrays(bag, DefaultConfig())
	if d != Collection {
		t.Errorf("12 distinct lengths should be Collection (E=%v)", ev.KeyEntropy)
	}
	if math.Abs(ev.KeyEntropy-math.Log(12)) > 1e-9 {
		t.Errorf("uniform lengths: E = %v, want ln 12", ev.KeyEntropy)
	}
}

func TestMixedElementArraysAreTuples(t *testing.T) {
	// CSV-row-style arrays: [𝕊, ℝ, 𝔹] — dissimilar elements force Tuple
	// even with varying lengths.
	bag := &jsontype.Bag{}
	for i := 0; i < 30; i++ {
		elems := []*jsontype.Type{jsontype.String, jsontype.Number, jsontype.Bool}
		bag.Add(jsontype.NewArray(elems[:1+i%3]))
	}
	d, ev := DetectArrays(bag, DefaultConfig())
	if ev.Similar {
		t.Error("mixed element kinds must be dissimilar")
	}
	if d != Tuple {
		t.Errorf("got %v", d)
	}
}

func TestDetectArraysPanicsOnObjects(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("should panic on object input")
		}
	}()
	DetectArrays(bagOf(t, `{"a":1}`), DefaultConfig())
}

func TestDecideMatchesDetect(t *testing.T) {
	bags := []*jsontype.Bag{
		bagOf(t, `{"a":1,"b":"x"}`, `{"a":2,"b":"y"}`),
		bagOf(t, `{"k1":1}`, `{"k2":2}`, `{"k3":3}`, `{"k4":4}`),
	}
	cfg := DefaultConfig()
	for _, bag := range bags {
		d, ev := DetectObjects(bag, cfg)
		if Decide(ev, cfg) != d {
			t.Errorf("Decide diverges from DetectObjects for %v", bag.Types())
		}
	}
	arrBag := bagOf(t, `[1,2]`, `[1,2]`)
	d, ev := DetectArrays(arrBag, cfg)
	if Decide(ev, cfg) != d {
		t.Error("Decide diverges from DetectArrays")
	}
}

func TestObjectArrayElementsSimilarAcrossRecords(t *testing.T) {
	// Arrays of similar objects (optional fields) stay a collection.
	bag := &jsontype.Bag{}
	lengths := []int{1, 2, 3, 5, 8, 13, 21, 4, 9, 11, 6, 7}
	for _, l := range lengths {
		elems := make([]*jsontype.Type, l)
		for i := range elems {
			if i%2 == 0 {
				elems[i] = jsontype.MustFromValue(map[string]any{"id": 1.0})
			} else {
				elems[i] = jsontype.MustFromValue(map[string]any{"id": 1.0, "tag": "x"})
			}
		}
		bag.Add(jsontype.NewArray(elems))
	}
	d, ev := DetectArrays(bag, DefaultConfig())
	if !ev.Similar {
		t.Error("objects with optional fields are similar")
	}
	if d != Collection {
		t.Errorf("got %v (E=%v, distinct=%d)", d, ev.KeyEntropy, ev.DistinctKeys)
	}
}
