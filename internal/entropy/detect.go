// Package entropy implements JXPLAIN's collection-detection heuristic
// (Section 5, Algorithm 5): deciding whether a bag of object-kinded (or
// array-kinded) types encodes tuple-like structures or a nested collection.
//
// The decision combines two signals:
//
//  1. The similar-types constraint (§5.2): all nested values across the bag
//     must be pairwise similar (nulls are wildcards; primitives must match
//     exactly; like-kinded complex values must be similar at shared keys).
//     Any dissimilarity marks the bag as tuples. Subsumption lets a single
//     linear scan check this against a running maximal type.
//  2. Key-space entropy (§5.1): E_K = −Σ_k P_k ln P_k, where P_k is the
//     fraction of objects containing key k. Low entropy (stable keys)
//     marks tuples; high entropy (varying keys) marks collections. For
//     arrays (§5.4), E_K is the entropy of the length distribution.
//
// The paper observes the distribution of E_K in the wild is strongly
// bimodal (Figure 4), so the threshold (1, natural log) is not sensitive.
package entropy

import (
	"sort"

	"jxplain/internal/jsontype"
	"jxplain/internal/stats"
)

// Decision is the outcome of collection detection.
type Decision uint8

// The two interpretations of a bag of complex-kinded types.
const (
	Tuple Decision = iota
	Collection
)

func (d Decision) String() string {
	if d == Collection {
		return "collection"
	}
	return "tuple"
}

// Config parameterizes the heuristic.
type Config struct {
	// Threshold is the key-space entropy (natural log) above which
	// self-similar bags are marked collections. The paper uses 1.
	Threshold float64
	// MinRecords suppresses collection detection for bags with fewer
	// records: with a single observed object there is no key variation
	// signal at all. The paper's formulation implies at least 2.
	MinRecords int
}

// DefaultConfig mirrors the paper's experimental setup.
func DefaultConfig() Config { return Config{Threshold: 1.0, MinRecords: 2} }

// Evidence reports the measurements behind a decision, for diagnostics and
// for the Figure 4 histogram.
type Evidence struct {
	// KeyEntropy is E_K: key-presence entropy for objects, length entropy
	// for arrays (natural log).
	KeyEntropy float64
	// Similar reports whether the similar-types constraint held.
	Similar bool
	// Records is the number of types inspected (with multiplicity).
	Records int
	// DistinctKeys is the number of distinct keys (objects) or distinct
	// lengths (arrays) observed.
	DistinctKeys int
}

// DetectObjects classifies a bag of object-kinded types as Tuple or
// Collection (Algorithm 5). Non-object types in the bag are a programming
// error and panic.
func DetectObjects(bag *jsontype.Bag, cfg Config) (Decision, Evidence) {
	var ev Evidence
	ev.Records = bag.Len()

	var sim jsontype.SimilarityAccumulator
	keyCounts := map[string]int{}
	for i, t := range bag.Types() {
		if t.Kind() != jsontype.KindObject {
			panic("entropy: DetectObjects on non-object type " + t.Kind().String())
		}
		n := bag.Count(i)
		for _, f := range t.Fields() {
			keyCounts[f.Key] += n
			sim.Add(f.Type)
		}
	}
	ev.Similar = sim.Similar()
	ev.DistinctKeys = len(keyCounts)

	// Pin key order before summing: FP addition is not associative, so map
	// iteration order would otherwise leak into the entropy bits (and into
	// any output derived from them).
	keys := make([]string, 0, len(keyCounts))
	for k := range keyCounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	weights := make([]float64, 0, len(keys))
	for _, k := range keys {
		weights = append(weights, float64(keyCounts[k]))
	}
	ev.KeyEntropy = stats.Entropy(weights, float64(bag.Len()))

	return decide(ev, cfg, bag.Len()), ev
}

// DetectArrays classifies a bag of array-kinded types as Tuple or
// Collection (§5.4): the similar-types constraint applies to elements, and
// key-space entropy is computed over the distribution of array lengths.
func DetectArrays(bag *jsontype.Bag, cfg Config) (Decision, Evidence) {
	var ev Evidence
	ev.Records = bag.Len()

	var sim jsontype.SimilarityAccumulator
	lengthCounts := map[int]int{}
	for i, t := range bag.Types() {
		if t.Kind() != jsontype.KindArray {
			panic("entropy: DetectArrays on non-array type " + t.Kind().String())
		}
		n := bag.Count(i)
		lengthCounts[t.Len()] += n
		for _, e := range t.Elems() {
			sim.Add(e)
		}
	}
	ev.Similar = sim.Similar()
	ev.DistinctKeys = len(lengthCounts)

	lengths := make([]int, 0, len(lengthCounts))
	for l := range lengthCounts {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	weights := make([]float64, 0, len(lengths))
	for _, l := range lengths {
		weights = append(weights, float64(lengthCounts[l]))
	}
	// Length probabilities form a true distribution (they sum to 1).
	ev.KeyEntropy = stats.Entropy(weights, float64(bag.Len()))

	return decide(ev, cfg, bag.Len()), ev
}

// Decide applies the threshold logic of Algorithm 5 to already-computed
// evidence. Exposed so alternative statistics collectors (e.g. the
// parallel fold of core.ParallelCollectPathStats) reach exactly the same
// decisions as DetectObjects / DetectArrays.
func Decide(ev Evidence, cfg Config) Decision {
	return decide(ev, cfg, ev.Records)
}

func decide(ev Evidence, cfg Config, records int) Decision {
	if records < cfg.MinRecords {
		return Tuple
	}
	if !ev.Similar {
		return Tuple
	}
	if ev.KeyEntropy <= cfg.Threshold {
		return Tuple
	}
	return Collection
}
