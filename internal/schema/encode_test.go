package schema

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleSchema() Schema {
	return NewUnion(
		tuple(
			[]FieldSchema{req("ts", Number), req("event", String)},
			[]FieldSchema{req("user", tuple([]FieldSchema{req("name", String)}, nil))},
		),
		&ArrayCollection{Elem: NewUnion(Number, Null), MaxLen: 7},
		&ObjectCollection{Value: String, Domain: 12},
		&ArrayTuple{Elems: []Schema{Number, Number, String}, MinLen: 2},
		Bool,
	)
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	orig := sampleSchema()
	data, err := Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(orig, back) {
		t.Errorf("round trip mismatch:\n%s\n%s", orig, back)
	}
}

func TestRoundTripPreservesStats(t *testing.T) {
	orig := &ArrayCollection{Elem: Number, MaxLen: 42}
	data, _ := Marshal(orig)
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.(*ArrayCollection).MaxLen != 42 {
		t.Error("MaxLen lost in round trip")
	}
	orig2 := &ObjectCollection{Value: Number, Domain: 17}
	data2, _ := Marshal(orig2)
	back2, _ := Unmarshal(data2)
	if back2.(*ObjectCollection).Domain != 17 {
		t.Error("Domain lost in round trip")
	}
}

func TestRoundTripEmptySchemas(t *testing.T) {
	for _, s := range []Schema{Empty(), tuple(nil, nil), NewArrayTuple()} {
		data, err := Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !Equal(s, back) {
			t.Errorf("round trip mismatch for %s", s)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	bad := []string{
		`{`,
		`{"node":"bogus"}`,
		`{"node":"primitive","kind":"frob"}`,
		`{"node":"arrayCollection"}`,
		`{"node":"objectCollection"}`,
		`{"node":"arrayTuple","minLen":5,"elems":[{"node":"primitive","kind":"number"}]}`,
		`{"node":"union","alts":[{"node":"bogus"}]}`,
		`{"node":"objectTuple","required":[{"key":"a","schema":{"node":"bogus"}}]}`,
		`{"node":"objectTuple","optional":[{"key":"a","schema":{"node":"bogus"}}]}`,
		`{"node":"arrayTuple","elems":[{"node":"bogus"}]}`,
		`{"node":"arrayCollection","elem":{"node":"bogus"}}`,
		`{"node":"objectCollection","value":{"node":"bogus"}}`,
	}
	for _, src := range bad {
		if _, err := Unmarshal([]byte(src)); err == nil {
			t.Errorf("Unmarshal(%s) should fail", src)
		}
	}
}

func TestToJSONSchemaShape(t *testing.T) {
	doc := ToJSONSchema(sampleSchema())
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{
		`"anyOf"`, `"properties"`, `"required"`, `"additionalProperties":false`,
		`"type":"array"`, `"type":"boolean"`, `"minItems":2`, `"maxItems":3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON Schema missing %s in %s", want, out)
		}
	}
}

func TestToJSONSchemaPrimitives(t *testing.T) {
	cases := map[Schema]string{
		Null:   "null",
		Bool:   "boolean",
		Number: "number",
		String: "string",
	}
	for s, want := range cases {
		doc := ToJSONSchema(s)
		if doc["type"] != want {
			t.Errorf("ToJSONSchema(%v) type = %v", s, doc["type"])
		}
	}
}

func TestToJSONSchemaEmpty(t *testing.T) {
	doc := ToJSONSchema(Empty())
	if _, ok := doc["not"]; !ok {
		t.Error("empty schema should export as {\"not\": {}}")
	}
}

func TestMarshalJSONSchemaHeader(t *testing.T) {
	data, err := MarshalJSONSchema(Number)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "json-schema.org/draft-07") {
		t.Error("missing $schema header")
	}
}

func TestToJSONSchemaCollections(t *testing.T) {
	coll := ToJSONSchema(&ObjectCollection{Value: Number, Domain: 5})
	ap, ok := coll["additionalProperties"].(map[string]any)
	if !ok || ap["type"] != "number" {
		t.Errorf("object collection export wrong: %v", coll)
	}
	arr := ToJSONSchema(&ArrayCollection{Elem: String, MaxLen: 5})
	items, ok := arr["items"].(map[string]any)
	if !ok || items["type"] != "string" {
		t.Errorf("array collection export wrong: %v", arr)
	}
}
