package schema

// Simplify reduces redundancy in a schema without changing the set of
// admitted types (up to the bounded-domain statistics, which are merged
// conservatively):
//
//   - nested unions are flattened,
//   - structurally identical union alternatives are deduplicated,
//   - single-alternative unions are unwrapped,
//   - children are simplified recursively.
//
// This mirrors the post-processing step the paper applied to the binary
// K-reduction release, which "produced schemas with some redundant union
// types" (§7).
func Simplify(s Schema) Schema {
	switch n := s.(type) {
	case *Primitive:
		return n
	case *ArrayTuple:
		elems := make([]Schema, len(n.Elems))
		for i, e := range n.Elems {
			elems[i] = Simplify(e)
		}
		return &ArrayTuple{Elems: elems, MinLen: n.MinLen}
	case *ObjectTuple:
		required := make([]FieldSchema, len(n.Required))
		for i, f := range n.Required {
			required[i] = FieldSchema{Key: f.Key, Schema: Simplify(f.Schema)}
		}
		optional := make([]FieldSchema, len(n.Optional))
		for i, f := range n.Optional {
			optional[i] = FieldSchema{Key: f.Key, Schema: Simplify(f.Schema)}
		}
		return &ObjectTuple{Required: required, Optional: optional}
	case *ArrayCollection:
		return &ArrayCollection{Elem: Simplify(n.Elem), MaxLen: n.MaxLen}
	case *ObjectCollection:
		return &ObjectCollection{Value: Simplify(n.Value), Domain: n.Domain}
	case *Union:
		flat := make([]Schema, 0, len(n.Alts))
		seen := map[string]bool{}
		var addAlt func(a Schema)
		addAlt = func(a Schema) {
			a = Simplify(a)
			if inner, ok := a.(*Union); ok {
				for _, x := range inner.Alts {
					addAlt(x)
				}
				return
			}
			c := a.Canon()
			if seen[c] {
				return
			}
			seen[c] = true
			flat = append(flat, a)
		}
		for _, a := range n.Alts {
			addAlt(a)
		}
		if len(flat) == 1 {
			return flat[0]
		}
		return &Union{Alts: flat}
	}
	mustSchema(false, "unknown schema node %T", s)
	return nil
}
