package schema

import "testing"

// FuzzUnmarshal exercises the native schema decoder against arbitrary
// bytes: never panic; on success the schema must render, re-encode and
// round-trip.
func FuzzUnmarshal(f *testing.F) {
	for _, s := range []Schema{
		Number, Empty(),
		NewObjectTuple([]FieldSchema{{Key: "a", Schema: Number}},
			[]FieldSchema{{Key: "b", Schema: String}}),
		&ArrayCollection{Elem: NewUnion(Number, Null), MaxLen: 3},
		&ObjectCollection{Value: Bool, Domain: 7},
		&ArrayTuple{Elems: []Schema{Number, String}, MinLen: 1},
	} {
		data, err := Marshal(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"node":"bogus"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"node":"arrayTuple","minLen":-1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Unmarshal(data)
		if err != nil {
			return
		}
		if s.String() == "" && !IsEmpty(s) {
			// The empty union renders as (⊥); everything renders non-empty.
			t.Fatalf("empty rendering for %#v", s)
		}
		re, err := Marshal(s)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		back, err := Unmarshal(re)
		if err != nil || !Equal(s, back) {
			t.Fatalf("round trip diverged: %v vs %v (%v)", s, back, err)
		}
		_ = s.LogTypeCount() // must not panic
	})
}
