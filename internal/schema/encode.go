package schema

import (
	"encoding/json"
	"fmt"
)

// Native JSON encoding for schemas, so discovered schemas can be saved by
// cmd/jxplain and reloaded by cmd/jxvalidate. The encoding is a tagged
// tree: {"node": "...", ...}. It round-trips exactly (including Domain and
// MaxLen statistics, which JSON-Schema export does not carry).

type encodedSchema struct {
	Node     string          `json:"node"`
	Kind     string          `json:"kind,omitempty"`     // primitive
	Elems    []encodedSchema `json:"elems,omitempty"`    // array tuple
	MinLen   *int            `json:"minLen,omitempty"`   // array tuple
	Required []encodedField  `json:"required,omitempty"` // object tuple
	Optional []encodedField  `json:"optional,omitempty"` // object tuple
	Elem     *encodedSchema  `json:"elem,omitempty"`     // array collection
	MaxLen   int             `json:"maxLen,omitempty"`   // array collection
	Value    *encodedSchema  `json:"value,omitempty"`    // object collection
	Domain   int             `json:"domain,omitempty"`   // object collection
	Alts     []encodedSchema `json:"alts,omitempty"`     // union
}

type encodedField struct {
	Key    string        `json:"key"`
	Schema encodedSchema `json:"schema"`
}

func encode(s Schema) encodedSchema {
	switch n := s.(type) {
	case *Primitive:
		return encodedSchema{Node: "primitive", Kind: n.K.String()}
	case *ArrayTuple:
		elems := make([]encodedSchema, len(n.Elems))
		for i, e := range n.Elems {
			elems[i] = encode(e)
		}
		minLen := n.MinLen
		enc := encodedSchema{Node: "arrayTuple", MinLen: &minLen}
		if len(elems) > 0 {
			enc.Elems = elems
		}
		return enc
	case *ObjectTuple:
		enc := encodedSchema{Node: "objectTuple"}
		for _, f := range n.Required {
			enc.Required = append(enc.Required, encodedField{Key: f.Key, Schema: encode(f.Schema)})
		}
		for _, f := range n.Optional {
			enc.Optional = append(enc.Optional, encodedField{Key: f.Key, Schema: encode(f.Schema)})
		}
		return enc
	case *ArrayCollection:
		elem := encode(n.Elem)
		return encodedSchema{Node: "arrayCollection", Elem: &elem, MaxLen: n.MaxLen}
	case *ObjectCollection:
		value := encode(n.Value)
		return encodedSchema{Node: "objectCollection", Value: &value, Domain: n.Domain}
	case *Union:
		alts := make([]encodedSchema, len(n.Alts))
		for i, a := range n.Alts {
			alts[i] = encode(a)
		}
		enc := encodedSchema{Node: "union"}
		if len(alts) > 0 {
			enc.Alts = alts
		}
		return enc
	}
	mustSchema(false, "unknown schema node %T", s)
	return encodedSchema{}
}

func decode(e encodedSchema) (Schema, error) {
	switch e.Node {
	case "primitive":
		switch e.Kind {
		case "null":
			return Null, nil
		case "bool":
			return Bool, nil
		case "number":
			return Number, nil
		case "string":
			return String, nil
		}
		return nil, fmt.Errorf("schema: unknown primitive kind %q", e.Kind)
	case "arrayTuple":
		elems := make([]Schema, len(e.Elems))
		for i, enc := range e.Elems {
			var err error
			if elems[i], err = decode(enc); err != nil {
				return nil, err
			}
		}
		minLen := len(elems)
		if e.MinLen != nil {
			minLen = *e.MinLen
		}
		if minLen < 0 || minLen > len(elems) {
			return nil, fmt.Errorf("schema: invalid arrayTuple minLen %d for %d elems", minLen, len(elems))
		}
		return &ArrayTuple{Elems: elems, MinLen: minLen}, nil
	case "objectTuple":
		required := make([]FieldSchema, 0, len(e.Required))
		for _, f := range e.Required {
			s, err := decode(f.Schema)
			if err != nil {
				return nil, err
			}
			required = append(required, FieldSchema{Key: f.Key, Schema: s})
		}
		optional := make([]FieldSchema, 0, len(e.Optional))
		for _, f := range e.Optional {
			s, err := decode(f.Schema)
			if err != nil {
				return nil, err
			}
			optional = append(optional, FieldSchema{Key: f.Key, Schema: s})
		}
		return NewObjectTuple(required, optional), nil
	case "arrayCollection":
		if e.Elem == nil {
			return nil, fmt.Errorf("schema: arrayCollection missing elem")
		}
		elem, err := decode(*e.Elem)
		if err != nil {
			return nil, err
		}
		return &ArrayCollection{Elem: elem, MaxLen: e.MaxLen}, nil
	case "objectCollection":
		if e.Value == nil {
			return nil, fmt.Errorf("schema: objectCollection missing value")
		}
		value, err := decode(*e.Value)
		if err != nil {
			return nil, err
		}
		return &ObjectCollection{Value: value, Domain: e.Domain}, nil
	case "union":
		alts := make([]Schema, len(e.Alts))
		for i, enc := range e.Alts {
			var err error
			if alts[i], err = decode(enc); err != nil {
				return nil, err
			}
		}
		return &Union{Alts: alts}, nil
	}
	return nil, fmt.Errorf("schema: unknown node %q", e.Node)
}

// Marshal renders s in the native JSON encoding.
func Marshal(s Schema) ([]byte, error) {
	return json.MarshalIndent(encode(s), "", "  ")
}

// Unmarshal parses the native JSON encoding produced by Marshal.
func Unmarshal(data []byte) (Schema, error) {
	var e encodedSchema
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, err
	}
	return decode(e)
}
