package schema

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jxplain/internal/jsontype"
)

func TestSimplifyFlattensNestedUnions(t *testing.T) {
	s := &Union{Alts: []Schema{
		&Union{Alts: []Schema{Number, &Union{Alts: []Schema{String}}}},
		Bool,
	}}
	got := Simplify(s)
	u, ok := got.(*Union)
	if !ok || len(u.Alts) != 3 {
		t.Fatalf("Simplify = %v", got)
	}
}

func TestSimplifyDeduplicates(t *testing.T) {
	s := &Union{Alts: []Schema{Number, Number, String, Number}}
	got := Simplify(s).(*Union)
	if len(got.Alts) != 2 {
		t.Errorf("dedup failed: %v", got)
	}
	// Structural duplicates, not just pointer duplicates.
	a := tuple([]FieldSchema{req("x", Number)}, nil)
	b := tuple([]FieldSchema{req("x", Number)}, nil)
	s2 := &Union{Alts: []Schema{a, b}}
	if got := Simplify(s2); got.Node() != NodeObjectTuple {
		t.Errorf("structural dedup + unwrap failed: %v", got)
	}
}

func TestSimplifyUnwrapsSingleton(t *testing.T) {
	s := &Union{Alts: []Schema{&Union{Alts: []Schema{Number}}}}
	if got := Simplify(s); got != Number {
		t.Errorf("Simplify = %v, want ℝ", got)
	}
}

func TestSimplifyRecursesIntoChildren(t *testing.T) {
	s := tuple([]FieldSchema{
		req("a", &Union{Alts: []Schema{&Union{Alts: []Schema{Number, Number}}}}),
	}, []FieldSchema{
		req("b", &ArrayCollection{Elem: &Union{Alts: []Schema{String, String}}, MaxLen: 1}),
	})
	got := Simplify(s).(*ObjectTuple)
	if fa, _ := got.Field("a"); fa != Number {
		t.Errorf("nested union under required field not simplified: %v", fa)
	}
	fb, _ := got.Field("b")
	if fb.(*ArrayCollection).Elem.(*Primitive).K != jsontype.KindString {
		t.Errorf("nested union under collection not simplified: %v", fb)
	}
}

func TestSimplifyPreservesEmpty(t *testing.T) {
	if !IsEmpty(Simplify(Empty())) {
		t.Error("empty schema should stay empty")
	}
}

func TestSimplifyPreservesAcceptanceProperty(t *testing.T) {
	// Simplify must never change which types a schema admits.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSchema(r, 3)
		simp := Simplify(s)
		for i := 0; i < 20; i++ {
			ty := randomTestType(r, 3)
			if s.Accepts(ty) != simp.Accepts(ty) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSimplifyIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := Simplify(randomSchema(r, 3))
		return Equal(s, Simplify(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripRandomSchemasProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSchema(r, 3)
		data, err := Marshal(s)
		if err != nil {
			return false
		}
		back, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return Equal(s, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomSchema builds a bounded random schema for property tests.
func randomSchema(r *rand.Rand, depth int) Schema {
	if depth <= 0 || r.Intn(3) == 0 {
		return []Schema{Null, Bool, Number, String}[r.Intn(4)]
	}
	keys := []string{"a", "b", "c", "d"}
	switch r.Intn(5) {
	case 0:
		n := r.Intn(3)
		elems := make([]Schema, n)
		for i := range elems {
			elems[i] = randomSchema(r, depth-1)
		}
		minLen := n
		if n > 0 {
			minLen = r.Intn(n + 1)
		}
		return &ArrayTuple{Elems: elems, MinLen: minLen}
	case 1:
		var required, optional []FieldSchema
		seen := map[string]bool{}
		for i := 0; i < r.Intn(4); i++ {
			k := keys[r.Intn(len(keys))]
			if seen[k] {
				continue
			}
			seen[k] = true
			f := FieldSchema{Key: k, Schema: randomSchema(r, depth-1)}
			if r.Intn(2) == 0 {
				required = append(required, f)
			} else {
				optional = append(optional, f)
			}
		}
		return NewObjectTuple(required, optional)
	case 2:
		return &ArrayCollection{Elem: randomSchema(r, depth-1), MaxLen: r.Intn(5)}
	case 3:
		return &ObjectCollection{Value: randomSchema(r, depth-1), Domain: r.Intn(5)}
	default:
		n := r.Intn(3)
		alts := make([]Schema, n)
		for i := range alts {
			alts[i] = randomSchema(r, depth-1)
		}
		return &Union{Alts: alts}
	}
}

// randomTestType builds a bounded random structural type.
func randomTestType(r *rand.Rand, depth int) *jsontype.Type {
	if depth <= 0 || r.Intn(3) == 0 {
		return jsontype.NewPrimitive(jsontype.Kind(r.Intn(4)))
	}
	if r.Intn(2) == 0 {
		n := r.Intn(3)
		elems := make([]*jsontype.Type, n)
		for i := range elems {
			elems[i] = randomTestType(r, depth-1)
		}
		return jsontype.NewArray(elems)
	}
	keys := []string{"a", "b", "c", "d"}
	var fields []jsontype.Field
	seen := map[string]bool{}
	for i := 0; i < r.Intn(4); i++ {
		k := keys[r.Intn(len(keys))]
		if seen[k] {
			continue
		}
		seen[k] = true
		fields = append(fields, jsontype.Field{Key: k, Type: randomTestType(r, depth-1)})
	}
	return jsontype.NewObject(fields)
}

func TestFieldPaths(t *testing.T) {
	s := NewUnion(
		tuple(
			[]FieldSchema{req("a", tuple([]FieldSchema{req("b", Number)}, nil))},
			[]FieldSchema{req("c", &ArrayCollection{Elem: tuple([]FieldSchema{req("d", String)}, nil)})},
		),
		&ObjectCollection{Value: Number},
		NewArrayTuple(Number, String),
	)
	got := SortedPaths(s)
	expect := map[string]bool{
		"a": true, "a.b": true, "c": true, "c[*]": true, "c[*].d": true,
		"{*}": true, "[0]": true, "[1]": true,
	}
	if len(got) != len(expect) {
		t.Fatalf("paths = %v", got)
	}
	for _, p := range got {
		if !expect[p] {
			t.Errorf("unexpected path %q", p)
		}
	}
}

func TestFieldPathsPrimitive(t *testing.T) {
	if len(FieldPaths(Number)) != 0 {
		t.Error("primitive has no field paths")
	}
}
