package schema

import "testing"

func TestDescribe(t *testing.T) {
	s := NewUnion(
		tuple(
			[]FieldSchema{req("a", Number), req("u", tuple([]FieldSchema{req("x", String)}, nil))},
			[]FieldSchema{req("b", Bool)},
		),
		&ArrayCollection{Elem: &ObjectCollection{Value: Number, Domain: 3}, MaxLen: 5},
	)
	st := Describe(s)
	if st.Entities != 2 {
		t.Errorf("Entities = %d", st.Entities)
	}
	if st.Collections != 2 {
		t.Errorf("Collections = %d", st.Collections)
	}
	if st.Unions != 1 {
		t.Errorf("Unions = %d", st.Unions)
	}
	if st.RequiredFields != 3 || st.OptionalFields != 1 {
		t.Errorf("fields = %d/%d", st.RequiredFields, st.OptionalFields)
	}
	if st.Nodes != Size(s) {
		t.Errorf("Nodes = %d, Size = %d", st.Nodes, Size(s))
	}
	if st.DescriptionLength != len(s.Canon()) {
		t.Error("DescriptionLength mismatch")
	}
	// Depth: union → tuple → tuple → primitive = 3 structural levels;
	// the collection chain is also 3 (coll → coll → prim).
	if st.Depth != 3 {
		t.Errorf("Depth = %d", st.Depth)
	}
}

func TestDescribeDepthPrimitive(t *testing.T) {
	if Describe(Number).Depth != 1 {
		t.Error("primitive depth is 1")
	}
	if Describe(Empty()).Depth != 0 {
		t.Error("empty schema depth is 0")
	}
	at := NewArrayTuple(Number, NewArrayTuple(Number))
	if Describe(at).Depth != 3 {
		t.Errorf("nested array tuple depth = %d", Describe(at).Depth)
	}
}

func TestDescribeConcisenessOrdering(t *testing.T) {
	// A collection description is more concise than the equivalent
	// 50-optional-field tuple — the paper's compactness motivation.
	coll := &ObjectCollection{Value: Number, Domain: 50}
	var opts []FieldSchema
	for i := 0; i < 50; i++ {
		opts = append(opts, req(string(rune('a'+i%26))+string(rune('a'+i/26)), Number))
	}
	tup := tuple(nil, opts)
	if Describe(coll).DescriptionLength >= Describe(tup).DescriptionLength {
		t.Error("collection should describe more concisely than optional-field tuple")
	}
}
