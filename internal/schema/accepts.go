package schema

import "jxplain/internal/jsontype"

// Accepts implements Schema.
func (p *Primitive) Accepts(t *jsontype.Type) bool { return p.AcceptsWith(t, DefaultOptions) }

// AcceptsWith implements Schema.
func (p *Primitive) AcceptsWith(t *jsontype.Type, opts Options) bool {
	if opts.NullIsWildcard && t.Kind() == jsontype.KindNull {
		return true
	}
	return t.Kind() == p.K
}

// Accepts implements Schema.
func (a *ArrayTuple) Accepts(t *jsontype.Type) bool { return a.AcceptsWith(t, DefaultOptions) }

// AcceptsWith implements Schema.
func (a *ArrayTuple) AcceptsWith(t *jsontype.Type, opts Options) bool {
	if opts.NullIsWildcard && t.Kind() == jsontype.KindNull {
		return true
	}
	if t.Kind() != jsontype.KindArray {
		return false
	}
	n := t.Len()
	if n < a.MinLen || n > len(a.Elems) {
		return false
	}
	for i := 0; i < n; i++ {
		if !a.Elems[i].AcceptsWith(t.Elem(i), opts) {
			return false
		}
	}
	return true
}

// Accepts implements Schema.
func (o *ObjectTuple) Accepts(t *jsontype.Type) bool { return o.AcceptsWith(t, DefaultOptions) }

// AcceptsWith implements Schema.
func (o *ObjectTuple) AcceptsWith(t *jsontype.Type, opts Options) bool {
	if opts.NullIsWildcard && t.Kind() == jsontype.KindNull {
		return true
	}
	if t.Kind() != jsontype.KindObject {
		return false
	}
	// Every required key must be present with an admitted value; every
	// present key must be known. Walk the key-sorted field list against the
	// key-sorted required/optional lists.
	required := 0
	for _, f := range t.Fields() {
		s, isReq := o.Field(f.Key)
		if s == nil {
			return false // unknown key
		}
		if !s.AcceptsWith(f.Type, opts) {
			return false
		}
		if isReq {
			required++
		}
	}
	return required == len(o.Required)
}

// Accepts implements Schema.
func (a *ArrayCollection) Accepts(t *jsontype.Type) bool { return a.AcceptsWith(t, DefaultOptions) }

// AcceptsWith implements Schema.
func (a *ArrayCollection) AcceptsWith(t *jsontype.Type, opts Options) bool {
	if opts.NullIsWildcard && t.Kind() == jsontype.KindNull {
		return true
	}
	if t.Kind() != jsontype.KindArray {
		return false
	}
	for _, e := range t.Elems() {
		if !a.Elem.AcceptsWith(e, opts) {
			return false
		}
	}
	return true
}

// Accepts implements Schema.
func (o *ObjectCollection) Accepts(t *jsontype.Type) bool { return o.AcceptsWith(t, DefaultOptions) }

// AcceptsWith implements Schema.
func (o *ObjectCollection) AcceptsWith(t *jsontype.Type, opts Options) bool {
	if opts.NullIsWildcard && t.Kind() == jsontype.KindNull {
		return true
	}
	if t.Kind() != jsontype.KindObject {
		return false
	}
	for _, f := range t.Fields() {
		if !o.Value.AcceptsWith(f.Type, opts) {
			return false
		}
	}
	return true
}

// Accepts implements Schema.
func (u *Union) Accepts(t *jsontype.Type) bool { return u.AcceptsWith(t, DefaultOptions) }

// AcceptsWith implements Schema. The null wildcard is applied by the
// alternatives themselves, so a union that is semantically empty (only
// empty alternatives) rejects null like the empty schema does.
func (u *Union) AcceptsWith(t *jsontype.Type, opts Options) bool {
	for _, a := range u.Alts {
		if a.AcceptsWith(t, opts) {
			return true
		}
	}
	return false
}
