package schema

// Describe summarizes a schema's shape. The paper's third quality axis —
// besides precision and recall — is a *concise description* (§2);
// Stats quantifies it.

// Stats is a structural summary of one schema.
type Stats struct {
	// Nodes is the total schema-node count.
	Nodes int
	// Entities is the number of tuple nodes (ObjectTuple / ArrayTuple).
	Entities int
	// Collections is the number of collection nodes.
	Collections int
	// Unions is the number of union nodes.
	Unions int
	// RequiredFields and OptionalFields count ObjectTuple fields.
	RequiredFields, OptionalFields int
	// Depth is the maximum nesting depth of the schema tree.
	Depth int
	// DescriptionLength is the length of the canonical rendering — a
	// concrete proxy for description size.
	DescriptionLength int
}

// Describe computes the Stats of s.
func Describe(s Schema) Stats {
	st := Stats{
		DescriptionLength: len(s.Canon()),
		Depth:             depth(s),
	}
	Walk(s, func(n Schema) {
		st.Nodes++
		switch node := n.(type) {
		case *ObjectTuple:
			st.Entities++
			st.RequiredFields += len(node.Required)
			st.OptionalFields += len(node.Optional)
		case *ArrayTuple:
			st.Entities++
		case *ArrayCollection, *ObjectCollection:
			st.Collections++
		case *Union:
			st.Unions++
		}
	})
	return st
}

func depth(s Schema) int {
	max := 0
	bump := func(d int) {
		if d > max {
			max = d
		}
	}
	switch n := s.(type) {
	case *Primitive:
		return 1
	case *ArrayTuple:
		for _, e := range n.Elems {
			bump(depth(e))
		}
	case *ObjectTuple:
		for _, f := range n.Required {
			bump(depth(f.Schema))
		}
		for _, f := range n.Optional {
			bump(depth(f.Schema))
		}
	case *ArrayCollection:
		bump(depth(n.Elem))
	case *ObjectCollection:
		bump(depth(n.Value))
	case *Union:
		for _, a := range n.Alts {
			bump(depth(a))
		}
		return max // unions do not add structural depth
	}
	return 1 + max
}
