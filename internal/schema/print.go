package schema

import (
	"strconv"
	"strings"

	"jxplain/internal/jsontype"
)

// String rendering uses the paper's notation:
//
//	ℝ 𝕊 𝔹 null              primitives
//	[S₁, S₂, S₃?]           ArrayTuple (optional suffix marked ?)
//	{k: S, k?: S}           ObjectTuple
//	[S]*                    ArrayCollection
//	{*: S}*                 ObjectCollection
//	(S | S | …)             Union; (⊥) is the empty schema
//
// Canon renders a canonical single-line form used for schema equality and
// deduplication; it coincides with String except that keys are escaped.

// String implements Schema.
func (p *Primitive) String() string { return render(p) }

// String implements Schema.
func (a *ArrayTuple) String() string { return render(a) }

// String implements Schema.
func (o *ObjectTuple) String() string { return render(o) }

// String implements Schema.
func (a *ArrayCollection) String() string { return render(a) }

// String implements Schema.
func (o *ObjectCollection) String() string { return render(o) }

// String implements Schema.
func (u *Union) String() string { return render(u) }

func render(s Schema) string {
	var b strings.Builder
	s.writeString(&b)
	return b.String()
}

// Canon implements Schema.
func (p *Primitive) Canon() string { return canon(p) }

// Canon implements Schema.
func (a *ArrayTuple) Canon() string { return canon(a) }

// Canon implements Schema.
func (o *ObjectTuple) Canon() string { return canon(o) }

// Canon implements Schema.
func (a *ArrayCollection) Canon() string { return canon(a) }

// Canon implements Schema.
func (o *ObjectCollection) Canon() string { return canon(o) }

// Canon implements Schema.
func (u *Union) Canon() string { return canon(u) }

func canon(s Schema) string {
	var b strings.Builder
	s.writeCanon(&b)
	return b.String()
}

func (p *Primitive) writeString(b *strings.Builder) {
	switch p.K {
	case jsontype.KindNull:
		b.WriteString("null")
	case jsontype.KindBool:
		b.WriteString("𝔹")
	case jsontype.KindNumber:
		b.WriteString("ℝ")
	case jsontype.KindString:
		b.WriteString("𝕊")
	default:
		// A Primitive only ever holds a primitive kind; writing nothing
		// here would silently corrupt the rendered form.
		mustSchema(false, "non-primitive kind %v in Primitive", p.K)
	}
}

func (p *Primitive) writeCanon(b *strings.Builder) {
	switch p.K {
	case jsontype.KindNull:
		b.WriteByte('n')
	case jsontype.KindBool:
		b.WriteByte('b')
	case jsontype.KindNumber:
		b.WriteByte('r')
	case jsontype.KindString:
		b.WriteByte('s')
	default:
		// The canonical form is the determinism contract's witness; a
		// silent no-op here would make two distinct schemas collide.
		mustSchema(false, "non-primitive kind %v in Primitive", p.K)
	}
}

func (a *ArrayTuple) writeString(b *strings.Builder) {
	b.WriteByte('[')
	for i, e := range a.Elems {
		if i > 0 {
			b.WriteString(", ")
		}
		e.writeString(b)
		if i >= a.MinLen {
			b.WriteByte('?')
		}
	}
	b.WriteByte(']')
}

func (a *ArrayTuple) writeCanon(b *strings.Builder) {
	b.WriteString("T[")
	b.WriteString(strconv.Itoa(a.MinLen))
	b.WriteByte(';')
	for i, e := range a.Elems {
		if i > 0 {
			b.WriteByte(',')
		}
		e.writeCanon(b)
	}
	b.WriteByte(']')
}

func (o *ObjectTuple) writeString(b *strings.Builder) {
	b.WriteByte('{')
	first := true
	writeFields := func(fields []FieldSchema, optional bool) {
		for _, f := range fields {
			if !first {
				b.WriteString(", ")
			}
			first = false
			b.WriteString(f.Key)
			if optional {
				b.WriteByte('?')
			}
			b.WriteString(": ")
			f.Schema.writeString(b)
		}
	}
	writeFields(o.Required, false)
	writeFields(o.Optional, true)
	b.WriteByte('}')
}

func (o *ObjectTuple) writeCanon(b *strings.Builder) {
	b.WriteString("T{")
	writeFields := func(fields []FieldSchema, marker byte) {
		for _, f := range fields {
			b.WriteByte(marker)
			writeEscapedKey(b, f.Key)
			b.WriteByte(':')
			f.Schema.writeCanon(b)
			b.WriteByte(',')
		}
	}
	writeFields(o.Required, '!')
	writeFields(o.Optional, '?')
	b.WriteByte('}')
}

func (a *ArrayCollection) writeString(b *strings.Builder) {
	b.WriteByte('[')
	a.Elem.writeString(b)
	b.WriteString("]*")
}

func (a *ArrayCollection) writeCanon(b *strings.Builder) {
	b.WriteString("C[")
	b.WriteString(strconv.Itoa(a.MaxLen))
	b.WriteByte(';')
	a.Elem.writeCanon(b)
	b.WriteByte(']')
}

func (o *ObjectCollection) writeString(b *strings.Builder) {
	b.WriteString("{*: ")
	o.Value.writeString(b)
	b.WriteString("}*")
}

func (o *ObjectCollection) writeCanon(b *strings.Builder) {
	b.WriteString("C{")
	b.WriteString(strconv.Itoa(o.Domain))
	b.WriteByte(';')
	o.Value.writeCanon(b)
	b.WriteByte('}')
}

func (u *Union) writeString(b *strings.Builder) {
	if len(u.Alts) == 0 {
		b.WriteString("(⊥)")
		return
	}
	b.WriteByte('(')
	for i, a := range u.Alts {
		if i > 0 {
			b.WriteString(" | ")
		}
		a.writeString(b)
	}
	b.WriteByte(')')
}

func (u *Union) writeCanon(b *strings.Builder) {
	b.WriteString("U(")
	for i, a := range u.Alts {
		if i > 0 {
			b.WriteByte('|')
		}
		a.writeCanon(b)
	}
	b.WriteByte(')')
}

func writeEscapedKey(b *strings.Builder, key string) {
	if !strings.ContainsAny(key, `\:,{}[]()|!?`) {
		b.WriteString(key)
		return
	}
	for i := 0; i < len(key); i++ {
		switch c := key[i]; c {
		case '\\', ':', ',', '{', '}', '[', ']', '(', ')', '|', '!', '?':
			b.WriteByte('\\')
			b.WriteByte(c)
		default:
			b.WriteByte(c)
		}
	}
}
