package schema

import (
	"strings"
	"testing"

	"jxplain/internal/jsontype"
)

// Test helpers shared by the schema package tests.

func ty(src string) *jsontype.Type {
	t, err := jsontype.FromJSON([]byte(src))
	if err != nil {
		panic(err)
	}
	return t
}

func req(key string, s Schema) FieldSchema { return FieldSchema{Key: key, Schema: s} }

func tuple(required []FieldSchema, optional []FieldSchema) *ObjectTuple {
	return NewObjectTuple(required, optional)
}

func TestNewPrimitivePanicsOnComplex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPrimitive(array) should panic")
		}
	}()
	NewPrimitive(jsontype.KindArray)
}

func TestNodeKinds(t *testing.T) {
	cases := []struct {
		s    Schema
		want NodeKind
		name string
	}{
		{Number, NodePrimitive, "primitive"},
		{NewArrayTuple(Number), NodeArrayTuple, "array-tuple"},
		{tuple(nil, nil), NodeObjectTuple, "object-tuple"},
		{&ArrayCollection{Elem: Number}, NodeArrayCollection, "array-collection"},
		{&ObjectCollection{Value: Number}, NodeObjectCollection, "object-collection"},
		{&Union{}, NodeUnion, "union"},
	}
	for _, c := range cases {
		if c.s.Node() != c.want {
			t.Errorf("%T.Node() = %v", c.s, c.s.Node())
		}
		if c.s.Node().String() != c.name {
			t.Errorf("NodeKind.String() = %q, want %q", c.s.Node().String(), c.name)
		}
	}
	if NodeKind(99).String() != "invalid" {
		t.Error("invalid NodeKind string")
	}
}

func TestObjectTupleDuplicateKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate key across required/optional should panic")
		}
	}()
	NewObjectTuple([]FieldSchema{req("a", Number)}, []FieldSchema{req("a", String)})
}

func TestObjectTupleFieldLookup(t *testing.T) {
	o := tuple(
		[]FieldSchema{req("b", Number), req("a", String)},
		[]FieldSchema{req("c", Bool)},
	)
	if s, isReq := o.Field("a"); s != String || !isReq {
		t.Error("required lookup broken")
	}
	if s, isReq := o.Field("c"); s != Bool || isReq {
		t.Error("optional lookup broken")
	}
	if s, _ := o.Field("zz"); s != nil {
		t.Error("unknown key should return nil")
	}
	keys := o.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Errorf("Keys = %v", keys)
	}
}

func TestNewUnionFlattening(t *testing.T) {
	if s := NewUnion(Number); s != Number {
		t.Error("single-alt union should unwrap")
	}
	if s := NewUnion(nil, Number, nil); s != Number {
		t.Error("nil alternatives should be dropped")
	}
	u := NewUnion(Number, String)
	if un, ok := u.(*Union); !ok || len(un.Alts) != 2 {
		t.Error("two-alt union should stay a union")
	}
	if !IsEmpty(NewUnion()) || !IsEmpty(Empty()) {
		t.Error("empty union detection broken")
	}
	if IsEmpty(Number) {
		t.Error("primitive is not empty")
	}
}

func TestEqualAndCanon(t *testing.T) {
	a := tuple([]FieldSchema{req("x", Number)}, []FieldSchema{req("y", String)})
	b := tuple([]FieldSchema{req("x", Number)}, []FieldSchema{req("y", String)})
	c := tuple([]FieldSchema{req("x", Number), req("y", String)}, nil)
	if !Equal(a, b) {
		t.Error("identical schemas should be Equal")
	}
	if Equal(a, c) {
		t.Error("required vs optional must differ in canon")
	}
	if !Equal(nil, nil) || Equal(a, nil) || Equal(nil, a) {
		t.Error("nil handling broken")
	}
}

func TestCanonDistinguishesCollectionStats(t *testing.T) {
	a := &ArrayCollection{Elem: Number, MaxLen: 5}
	b := &ArrayCollection{Elem: Number, MaxLen: 9}
	if Equal(a, b) {
		t.Error("MaxLen should be part of canon")
	}
	c := &ObjectCollection{Value: Number, Domain: 5}
	d := &ObjectCollection{Value: Number, Domain: 6}
	if Equal(c, d) {
		t.Error("Domain should be part of canon")
	}
}

func TestWalkAndCounts(t *testing.T) {
	s := NewUnion(
		tuple([]FieldSchema{req("a", Number)}, nil),
		&ArrayCollection{Elem: tuple(nil, []FieldSchema{req("b", String)}), MaxLen: 3},
		NewArrayTuple(Number, Number),
	)
	// union + objtuple + number + arraycoll + objtuple + string + arraytuple + 2 numbers = 9 nodes
	if got := Size(s); got != 9 {
		t.Errorf("Size = %d, want 9", got)
	}
	if got := Entities(s); got != 3 {
		t.Errorf("Entities = %d, want 3", got)
	}
}

func TestStringRendering(t *testing.T) {
	s := NewUnion(
		tuple([]FieldSchema{req("ts", Number)}, []FieldSchema{req("user", String)}),
		&ArrayCollection{Elem: String},
		&ObjectCollection{Value: Number},
		NewArrayTuple(Number, Number),
		Null,
	)
	out := s.String()
	for _, want := range []string{"ts: ℝ", "user?: 𝕊", "[𝕊]*", "{*: ℝ}*", "[ℝ, ℝ]", "null", " | "} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q missing %q", out, want)
		}
	}
	if Empty().String() != "(⊥)" {
		t.Errorf("empty schema renders as %q", Empty().String())
	}
}

func TestArrayTupleOptionalSuffixRendering(t *testing.T) {
	a := &ArrayTuple{Elems: []Schema{Number, Number, String}, MinLen: 2}
	if got := a.String(); got != "[ℝ, ℝ, 𝕊?]" {
		t.Errorf("optional suffix render = %q", got)
	}
}

func TestCanonKeyEscaping(t *testing.T) {
	a := tuple([]FieldSchema{req("x:y", Number)}, nil)
	b := tuple([]FieldSchema{req("x", &ObjectCollection{Value: Number})}, nil)
	if a.Canon() == b.Canon() {
		t.Error("key escaping failed")
	}
}
