package schema

import (
	"encoding/json"

	"jxplain/internal/jsontype"
)

// ToJSONSchema converts a Schema into the json-schema.org (draft-07 style)
// subset used by the paper: explicit primitive types, tuple arrays via the
// array form of "items" with bounded length, tuple objects via
// "properties"/"required" with "additionalProperties": false, collections
// via homogeneous "items"/"additionalProperties", and unions via "anyOf".
//
// The result is a plain map ready for json.Marshal.
func ToJSONSchema(s Schema) map[string]any {
	switch n := s.(type) {
	case *Primitive:
		switch n.K {
		case jsontype.KindNull:
			return map[string]any{"type": "null"}
		case jsontype.KindBool:
			return map[string]any{"type": "boolean"}
		case jsontype.KindNumber:
			return map[string]any{"type": "number"}
		case jsontype.KindString:
			return map[string]any{"type": "string"}
		}
	case *ArrayTuple:
		items := make([]any, len(n.Elems))
		for i, e := range n.Elems {
			items[i] = ToJSONSchema(e)
		}
		return map[string]any{
			"type":            "array",
			"items":           items,
			"minItems":        n.MinLen,
			"maxItems":        len(n.Elems),
			"additionalItems": false,
		}
	case *ObjectTuple:
		props := make(map[string]any, len(n.Required)+len(n.Optional))
		required := make([]string, 0, len(n.Required))
		for _, f := range n.Required {
			props[f.Key] = ToJSONSchema(f.Schema)
			required = append(required, f.Key)
		}
		for _, f := range n.Optional {
			props[f.Key] = ToJSONSchema(f.Schema)
		}
		out := map[string]any{
			"type":                 "object",
			"properties":           props,
			"additionalProperties": false,
		}
		if len(required) > 0 {
			out["required"] = required
		}
		return out
	case *ArrayCollection:
		return map[string]any{
			"type":  "array",
			"items": ToJSONSchema(n.Elem),
		}
	case *ObjectCollection:
		return map[string]any{
			"type":                 "object",
			"additionalProperties": ToJSONSchema(n.Value),
		}
	case *Union:
		if len(n.Alts) == 0 {
			return map[string]any{"not": map[string]any{}} // accepts nothing
		}
		alts := make([]any, len(n.Alts))
		for i, a := range n.Alts {
			alts[i] = ToJSONSchema(a)
		}
		return map[string]any{"anyOf": alts}
	}
	mustSchema(false, "unknown schema node %T", s)
	return nil
}

// MarshalJSONSchema renders s as an indented json-schema.org document with
// the standard $schema header.
func MarshalJSONSchema(s Schema) ([]byte, error) {
	doc := ToJSONSchema(s)
	doc["$schema"] = "http://json-schema.org/draft-07/schema#"
	return json.MarshalIndent(doc, "", "  ")
}
