package schema

import (
	"math"
	"testing"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPrimitiveLogTypeCount(t *testing.T) {
	for _, p := range []*Primitive{Null, Bool, Number, String} {
		if p.LogTypeCount() != 0 {
			t.Errorf("%v admits exactly one type", p)
		}
	}
}

func TestObjectTupleLogTypeCount(t *testing.T) {
	// Two required primitives: 1 type.
	s := tuple([]FieldSchema{req("a", Number), req("b", String)}, nil)
	if got := s.LogTypeCount(); got != 0 {
		t.Errorf("required-only tuple: %v, want 0", got)
	}
	// One optional primitive: 2 types (present/absent).
	s2 := tuple(nil, []FieldSchema{req("a", Number)})
	if got := s2.LogTypeCount(); !almost(got, 1, 1e-12) {
		t.Errorf("one optional: %v, want 1", got)
	}
	// k optional primitives: 2^k types.
	s3 := tuple(nil, []FieldSchema{req("a", Number), req("b", Number), req("c", Number)})
	if got := s3.LogTypeCount(); !almost(got, 3, 1e-12) {
		t.Errorf("three optionals: %v, want 3", got)
	}
	// Optional union of 3 primitives: 1 + 3 = 4 types.
	s4 := tuple(nil, []FieldSchema{req("a", NewUnion(Number, String, Bool))})
	if got := s4.LogTypeCount(); !almost(got, 2, 1e-12) {
		t.Errorf("optional 3-union: %v, want 2", got)
	}
}

func TestArrayTupleLogTypeCount(t *testing.T) {
	// Fixed [ℝ,ℝ]: 1 type.
	if got := NewArrayTuple(Number, Number).LogTypeCount(); got != 0 {
		t.Errorf("fixed tuple: %v", got)
	}
	// [U2, U2] where U2 has 2 alts: 4 types.
	u := NewUnion(Number, String)
	if got := NewArrayTuple(u, u).LogTypeCount(); !almost(got, 2, 1e-12) {
		t.Errorf("2x2 tuple: %v, want 2", got)
	}
	// Optional suffix: [ℝ, ℝ?, ℝ?] admits lengths 1..3 → 3 types.
	s := &ArrayTuple{Elems: []Schema{Number, Number, Number}, MinLen: 1}
	if got := s.LogTypeCount(); !almost(got, math.Log2(3), 1e-12) {
		t.Errorf("optional suffix: %v, want log2(3)", got)
	}
}

func TestArrayCollectionLogTypeCount(t *testing.T) {
	// [ℝ]* bounded at MaxLen 3: lengths 0,1,2,3 each with 1 element type = 4.
	s := &ArrayCollection{Elem: Number, MaxLen: 3}
	if got := s.LogTypeCount(); !almost(got, 2, 1e-12) {
		t.Errorf("[ℝ]* maxlen 3: %v, want 2", got)
	}
	// Elem with 2 types, MaxLen 2: 1 + 2 + 4 = 7.
	s2 := &ArrayCollection{Elem: NewUnion(Number, String), MaxLen: 2}
	if got := s2.LogTypeCount(); !almost(got, math.Log2(7), 1e-12) {
		t.Errorf("got %v, want log2(7)", got)
	}
	// MaxLen 0: only the empty array.
	s3 := &ArrayCollection{Elem: Number, MaxLen: 0}
	if got := s3.LogTypeCount(); !almost(got, 0, 1e-12) {
		t.Errorf("maxlen 0: %v, want 0", got)
	}
}

func TestObjectCollectionLogTypeCount(t *testing.T) {
	// {*: ℝ}* over domain of 4 keys: each key present or absent → 2^4.
	s := &ObjectCollection{Value: Number, Domain: 4}
	if got := s.LogTypeCount(); !almost(got, 4, 1e-12) {
		t.Errorf("domain 4: %v, want 4", got)
	}
	// Value with 3 types, domain 2: (1+3)^2 = 16.
	s2 := &ObjectCollection{Value: NewUnion(Number, String, Bool), Domain: 2}
	if got := s2.LogTypeCount(); !almost(got, 4, 1e-12) {
		t.Errorf("got %v, want 4", got)
	}
	// Pharma-scale: domain 2397 of numbers → 2397 bits, no overflow.
	s3 := &ObjectCollection{Value: Number, Domain: 2397}
	if got := s3.LogTypeCount(); !almost(got, 2397, 1e-9) {
		t.Errorf("pharma-scale: %v, want 2397", got)
	}
}

func TestUnionLogTypeCount(t *testing.T) {
	if !math.IsInf(Empty().LogTypeCount(), -1) {
		t.Error("empty schema admits zero types")
	}
	u := &Union{Alts: []Schema{Number, String, Bool, Null}}
	if got := u.LogTypeCount(); !almost(got, 2, 1e-12) {
		t.Errorf("4 primitives: %v, want 2", got)
	}
}

func TestEntityPartitioningReducesEntropy(t *testing.T) {
	// The core claim of Table 2: a union of two tight entities admits fewer
	// types than one entity with the symmetric fields optional.
	fieldsA := []FieldSchema{req("a1", Number), req("a2", Number), req("a3", Number)}
	fieldsB := []FieldSchema{req("b1", String), req("b2", String), req("b3", String)}
	shared := []FieldSchema{req("id", String)}

	twoEntities := NewUnion(
		tuple(append(append([]FieldSchema{}, shared...), fieldsA...), nil),
		tuple(append(append([]FieldSchema{}, shared...), fieldsB...), nil),
	)
	oneEntity := tuple(shared, append(append([]FieldSchema{}, fieldsA...), fieldsB...))

	if twoEntities.LogTypeCount() >= oneEntity.LogTypeCount() {
		t.Errorf("partitioned %v should admit fewer types than merged %v",
			twoEntities.LogTypeCount(), oneEntity.LogTypeCount())
	}
	if got := twoEntities.LogTypeCount(); !almost(got, 1, 1e-12) {
		t.Errorf("two exact entities = 2 types: %v", got)
	}
	if got := oneEntity.LogTypeCount(); !almost(got, 6, 1e-12) {
		t.Errorf("6 optional fields = 2^6 types: %v", got)
	}
}

func TestCollectionVsTupleEntropy(t *testing.T) {
	// A collection object over a huge domain admits far more types than the
	// tuple interpretation of the same few records, but far fewer than
	// exploding optionals would suggest when values share one type — and it
	// generalizes. Check magnitudes are sane.
	coll := &ObjectCollection{Value: Number, Domain: 100}
	if got := coll.LogTypeCount(); !almost(got, 100, 1e-9) {
		t.Errorf("collection: %v", got)
	}
	opts := make([]FieldSchema, 100)
	for i := range opts {
		opts[i] = req(string(rune('a'+i%26))+string(rune('0'+i/26)), Number)
	}
	tup := tuple(nil, opts)
	if got := tup.LogTypeCount(); !almost(got, 100, 1e-9) {
		t.Errorf("100 optionals: %v", got)
	}
}
