package schema

import (
	"math"

	"jxplain/internal/stats"
)

// Schema entropy (Section 7.2): the log2 number of distinct structural
// types admitted by a schema. Optional fields are binary decisions;
// collections range over the active key domain (ObjectCollection.Domain)
// or over lengths up to the longest observed array (ArrayCollection.
// MaxLen). Counts routinely exceed 2^2000, so all arithmetic is in log2
// space; an empty schema has -Inf entropy (it admits zero types).

// LogTypeCount implements Schema. A primitive admits exactly one type.
func (p *Primitive) LogTypeCount() float64 { return 0 }

// LogTypeCount implements Schema: the sum over admitted lengths ℓ of the
// product of per-position counts for positions < ℓ.
func (a *ArrayTuple) LogTypeCount() float64 {
	terms := make([]float64, 0, len(a.Elems)-a.MinLen+1)
	logProd := 0.0
	for i := 0; i <= len(a.Elems); i++ {
		if i >= a.MinLen {
			terms = append(terms, logProd)
		}
		if i < len(a.Elems) {
			logProd += a.Elems[i].LogTypeCount()
		}
	}
	return stats.Log2SumExp2(terms)
}

// LogTypeCount implements Schema: required fields multiply their counts;
// each optional field contributes a factor (1 + count).
func (o *ObjectTuple) LogTypeCount() float64 {
	total := 0.0
	for _, f := range o.Required {
		total += f.Schema.LogTypeCount()
	}
	for _, f := range o.Optional {
		total += stats.Log2Add(0, f.Schema.LogTypeCount())
	}
	return total
}

// LogTypeCount implements Schema: Σ_{ℓ=0..MaxLen} count(Elem)^ℓ.
func (a *ArrayCollection) LogTypeCount() float64 {
	return stats.Log2GeometricSeries(a.Elem.LogTypeCount(), a.MaxLen)
}

// LogTypeCount implements Schema: each of the Domain active keys is
// independently absent or present with any admitted value type, giving
// (1 + count(Value))^Domain.
func (o *ObjectCollection) LogTypeCount() float64 {
	return float64(o.Domain) * stats.Log2Add(0, o.Value.LogTypeCount())
}

// LogTypeCount implements Schema: alternatives are summed. Overlap between
// alternatives is ignored, making this an upper bound, consistent with the
// paper's binary-decision counting.
func (u *Union) LogTypeCount() float64 {
	if len(u.Alts) == 0 {
		return math.Inf(-1)
	}
	terms := make([]float64, len(u.Alts))
	for i, a := range u.Alts {
		terms[i] = a.LogTypeCount()
	}
	return stats.Log2SumExp2(terms)
}
