package schema

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFusePrimitives(t *testing.T) {
	s := Fuse(Number, String)
	if !s.Accepts(ty("1")) || !s.Accepts(ty(`"x"`)) || s.Accepts(ty("true")) {
		t.Errorf("Fuse(ℝ, 𝕊) = %v", s)
	}
	if !Equal(Fuse(Number, Number), Number) {
		t.Error("Fuse is idempotent on equal primitives")
	}
}

func TestFuseSameKeySetTuplesMerge(t *testing.T) {
	a := tuple([]FieldSchema{req("x", Number), req("y", Number)}, nil)
	b := tuple([]FieldSchema{req("x", Number)}, []FieldSchema{req("y", String)})
	s := Fuse(a, b)
	ot, ok := s.(*ObjectTuple)
	if !ok {
		t.Fatalf("same key sets should merge into one tuple: %v", s)
	}
	if _, isReq := ot.Field("x"); !isReq {
		t.Error("x required on both sides stays required")
	}
	if f, isReq := ot.Field("y"); f == nil || isReq {
		t.Error("y optional on one side becomes optional")
	}
	// y admits both ℝ and 𝕊 after fusing.
	if !s.Accepts(ty(`{"x":1,"y":2}`)) || !s.Accepts(ty(`{"x":1,"y":"s"}`)) {
		t.Error("fused field should admit both leaf types")
	}
}

func TestFuseDifferentKeySetTuplesStaySeparate(t *testing.T) {
	login := tuple([]FieldSchema{req("ts", Number), req("user", String)}, nil)
	serve := tuple([]FieldSchema{req("ts", Number), req("files", String)}, nil)
	s := Fuse(login, serve)
	if Entities(s) != 2 {
		t.Fatalf("entity partitioning must survive fusion: %v", s)
	}
	if s.Accepts(ty(`{"ts":1,"user":"u","files":"f"}`)) {
		t.Error("fusion must not blend entities")
	}
}

func TestFuseCollections(t *testing.T) {
	a := &ArrayCollection{Elem: Number, MaxLen: 3}
	b := &ArrayCollection{Elem: String, MaxLen: 7}
	s := Fuse(a, b).(*ArrayCollection)
	if s.MaxLen != 7 {
		t.Errorf("MaxLen = %d", s.MaxLen)
	}
	if !s.Accepts(ty(`[1,"x"]`)) {
		t.Error("fused element schema should admit both")
	}
	oc := Fuse(&ObjectCollection{Value: Number, Domain: 5},
		&ObjectCollection{Value: Bool, Domain: 2}).(*ObjectCollection)
	if oc.Domain != 5 || !oc.Accepts(ty(`{"k":true,"j":1}`)) {
		t.Errorf("object collection fusion broken: %v", oc)
	}
}

func TestFuseArrayTuples(t *testing.T) {
	a := NewArrayTuple(Number, Number)
	b := &ArrayTuple{Elems: []Schema{Number, Number, String}, MinLen: 2}
	s := Fuse(a, b).(*ArrayTuple)
	if s.MinLen != 2 || len(s.Elems) != 3 {
		t.Fatalf("fused tuple = %v", s)
	}
	for _, good := range []string{`[1,2]`, `[1,2,"x"]`} {
		if !s.Accepts(ty(good)) {
			t.Errorf("should accept %s", good)
		}
	}
	if s.Accepts(ty(`[1]`)) {
		t.Error("below both MinLens")
	}
}

func TestFuseMixedInterpretationsCoexist(t *testing.T) {
	coll := &ObjectCollection{Value: Number, Domain: 4}
	tup := tuple([]FieldSchema{req("fixed", String)}, nil)
	s := Fuse(coll, tup)
	if !s.Accepts(ty(`{"anything":1}`)) || !s.Accepts(ty(`{"fixed":"x"}`)) {
		t.Errorf("mixed interpretations should coexist: %v", s)
	}
}

func TestFuseEmpty(t *testing.T) {
	if !Equal(Fuse(Empty(), Number), Number) {
		t.Error("fusing with empty is identity")
	}
	if !IsEmpty(Fuse(Empty(), Empty())) {
		t.Error("empty ⊔ empty = empty")
	}
}

func TestFuseSupersetProperty(t *testing.T) {
	// Fuse(a, b) must accept everything a or b accepts.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSchema(r, 3), randomSchema(r, 3)
		fused := Fuse(a, b)
		for i := 0; i < 25; i++ {
			tt := randomTestType(r, 3)
			if (a.Accepts(tt) || b.Accepts(tt)) && !fused.Accepts(tt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFuseCommutativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSchema(r, 3), randomSchema(r, 3)
		ab, ba := Fuse(a, b), Fuse(b, a)
		for i := 0; i < 20; i++ {
			tt := randomTestType(r, 3)
			if ab.Accepts(tt) != ba.Accepts(tt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFuseIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSchema(r, 3)
		fused := Fuse(a, a)
		for i := 0; i < 20; i++ {
			tt := randomTestType(r, 3)
			if a.Accepts(tt) != fused.Accepts(tt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
