package schema

import "sort"

// Fuse combines two schemas into one admitting (at least) every type
// either admits, without access to the underlying data — the schema-level
// fusion in the style of Baazizi et al. that the paper's grammar builds
// on. It is the tool for incremental maintenance: re-learn a schema over
// the records a drift monitor flagged, then fuse it into the stale
// baseline instead of re-running discovery over the full history.
//
// Fusion respects JXPLAIN's semantics: object tuples merge *only* when
// their key sets coincide (they describe the same entity; fields required
// on both sides stay required, everything else becomes optional) — tuples
// with different key sets remain separate union alternatives, preserving
// entity partitioning. Collections of like kind always fuse. Without data
// the entropy heuristics cannot re-run, so fusion never converts between
// tuples and collections; mixed interpretations coexist in the union.
//
// Fuse is commutative and idempotent up to Simplify.
func Fuse(a, b Schema) Schema {
	return Simplify(fuseUnion(collectAlts(a), collectAlts(b)))
}

// collectAlts flattens a schema into its top-level alternatives.
func collectAlts(s Schema) []Schema {
	if u, ok := s.(*Union); ok {
		var out []Schema
		for _, alt := range u.Alts {
			out = append(out, collectAlts(alt)...)
		}
		return out
	}
	return []Schema{s}
}

func fuseUnion(as, bs []Schema) Schema {
	var prims []Schema
	var arrColls []*ArrayCollection
	var objColls []*ObjectCollection
	var arrTuples []*ArrayTuple
	objTuples := map[string][]*ObjectTuple{} // keyed by sorted key set
	var objTupleOrder []string

	addAlt := func(s Schema) {
		switch n := s.(type) {
		case *Primitive:
			prims = append(prims, n)
		case *ArrayCollection:
			arrColls = append(arrColls, n)
		case *ObjectCollection:
			objColls = append(objColls, n)
		case *ArrayTuple:
			arrTuples = append(arrTuples, n)
		case *ObjectTuple:
			k := keySetKey(n)
			if _, seen := objTuples[k]; !seen {
				objTupleOrder = append(objTupleOrder, k)
			}
			objTuples[k] = append(objTuples[k], n)
		}
	}
	for _, s := range as {
		addAlt(s)
	}
	for _, s := range bs {
		addAlt(s)
	}

	var alts []Schema
	alts = append(alts, prims...)
	if len(arrColls) > 0 {
		alts = append(alts, fuseArrayColls(arrColls))
	}
	if len(arrTuples) > 0 {
		alts = append(alts, fuseArrayTuples(arrTuples))
	}
	if len(objColls) > 0 {
		alts = append(alts, fuseObjectColls(objColls))
	}
	for _, k := range objTupleOrder {
		alts = append(alts, fuseObjectTuples(objTuples[k]))
	}
	return NewUnion(alts...)
}

func keySetKey(o *ObjectTuple) string {
	keys := o.Keys()
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k + "\x00"
	}
	return out
}

func fuseArrayColls(cs []*ArrayCollection) Schema {
	maxLen := 0
	elems := make([]Schema, 0, len(cs))
	for _, c := range cs {
		if c.MaxLen > maxLen {
			maxLen = c.MaxLen
		}
		if !IsEmpty(c.Elem) {
			elems = append(elems, c.Elem)
		}
	}
	elem := Empty()
	if len(elems) == 1 {
		elem = elems[0]
	} else if len(elems) > 1 {
		elem = Fuse(elems[0], NewUnion(elems[1:]...))
	}
	return &ArrayCollection{Elem: elem, MaxLen: maxLen}
}

func fuseObjectColls(cs []*ObjectCollection) Schema {
	domain := 0
	values := make([]Schema, 0, len(cs))
	for _, c := range cs {
		if c.Domain > domain {
			domain = c.Domain
		}
		if !IsEmpty(c.Value) {
			values = append(values, c.Value)
		}
	}
	value := Empty()
	if len(values) == 1 {
		value = values[0]
	} else if len(values) > 1 {
		value = Fuse(values[0], NewUnion(values[1:]...))
	}
	return &ObjectCollection{Value: value, Domain: domain}
}

func fuseArrayTuples(ts []*ArrayTuple) Schema {
	minLen := -1
	maxLen := 0
	for _, t := range ts {
		if minLen < 0 || t.MinLen < minLen {
			minLen = t.MinLen
		}
		if len(t.Elems) > maxLen {
			maxLen = len(t.Elems)
		}
	}
	elems := make([]Schema, maxLen)
	for i := range elems {
		var pos []Schema
		for _, t := range ts {
			if i < len(t.Elems) {
				pos = append(pos, t.Elems[i])
			}
		}
		if len(pos) == 1 {
			elems[i] = pos[0]
		} else {
			elems[i] = Fuse(pos[0], NewUnion(pos[1:]...))
		}
	}
	if minLen < 0 {
		minLen = 0
	}
	return &ArrayTuple{Elems: elems, MinLen: minLen}
}

func fuseObjectTuples(ts []*ObjectTuple) Schema {
	// All inputs share one key set; a key stays required iff required in
	// every input, and each field's schema is the fusion of the inputs'.
	type fieldInfo struct {
		schemas  []Schema
		required bool
	}
	fields := map[string]*fieldInfo{}
	var order []string
	record := func(key string, s Schema, required bool) {
		fi := fields[key]
		if fi == nil {
			fi = &fieldInfo{required: true}
			fields[key] = fi
			order = append(order, key)
		}
		fi.schemas = append(fi.schemas, s)
		if !required {
			fi.required = false
		}
	}
	for _, t := range ts {
		for _, f := range t.Required {
			record(f.Key, f.Schema, true)
		}
		for _, f := range t.Optional {
			record(f.Key, f.Schema, false)
		}
	}
	var required, optional []FieldSchema
	for _, key := range order {
		fi := fields[key]
		var fused Schema
		if len(fi.schemas) == 1 {
			fused = fi.schemas[0]
		} else {
			fused = Fuse(fi.schemas[0], NewUnion(fi.schemas[1:]...))
		}
		f := FieldSchema{Key: key, Schema: fused}
		if fi.required {
			required = append(required, f)
		} else {
			optional = append(optional, f)
		}
	}
	return NewObjectTuple(required, optional)
}
