package schema

import (
	"sort"
	"strconv"
)

// FieldPaths returns the set of key paths described by the schema, as
// dotted strings from the root: required and optional object-tuple keys
// descend by key, collections descend through a "[*]"/"{*}" step, and
// array tuples descend through their positions. The root contributes the
// empty path only implicitly — a primitive schema has no field paths.
//
// Path sets are the basis of the Table 3 symmetric-difference metric
// between discovered entity schemas and ground-truth entity schemas.
func FieldPaths(s Schema) map[string]bool {
	out := map[string]bool{}
	collectPaths(s, "", out)
	return out
}

func collectPaths(s Schema, prefix string, out map[string]bool) {
	switch n := s.(type) {
	case *Primitive:
	case *ArrayTuple:
		for i, e := range n.Elems {
			p := prefix + "[" + strconv.Itoa(i) + "]"
			out[p] = true
			collectPaths(e, p, out)
		}
	case *ObjectTuple:
		for _, f := range n.Required {
			p := join(prefix, f.Key)
			out[p] = true
			collectPaths(f.Schema, p, out)
		}
		for _, f := range n.Optional {
			p := join(prefix, f.Key)
			out[p] = true
			collectPaths(f.Schema, p, out)
		}
	case *ArrayCollection:
		p := prefix + "[*]"
		out[p] = true
		collectPaths(n.Elem, p, out)
	case *ObjectCollection:
		p := join(prefix, "{*}")
		out[p] = true
		collectPaths(n.Value, p, out)
	case *Union:
		for _, a := range n.Alts {
			collectPaths(a, prefix, out)
		}
	}
}

// SortedPaths returns FieldPaths as a sorted slice, convenient for tests
// and deterministic output.
func SortedPaths(s Schema) []string {
	set := FieldPaths(s)
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func join(prefix, key string) string {
	if prefix == "" {
		return key
	}
	return prefix + "." + key
}
