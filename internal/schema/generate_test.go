package schema

import (
	"math"
	"math/rand"
	"testing"

	"jxplain/internal/jsontype"
)

func TestSampleTypeAlwaysAccepted(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 400; trial++ {
		s := randomSchema(r, 3)
		ty, ok := SampleType(s, r)
		if !ok {
			continue // uninhabited schema
		}
		if !s.Accepts(ty) {
			t.Fatalf("schema %s rejects its own sample %s", s, ty)
		}
	}
}

func TestSampleTypeEmptySchema(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, ok := SampleType(Empty(), r); ok {
		t.Error("the empty schema is uninhabited")
	}
	// A tuple with an uninhabited required field is uninhabited too.
	s := tuple([]FieldSchema{req("a", Empty())}, nil)
	if _, ok := SampleType(s, r); ok {
		t.Error("required empty field makes the tuple uninhabited")
	}
	// An uninhabited optional field is simply omitted.
	s2 := tuple([]FieldSchema{req("a", Number)}, []FieldSchema{req("b", Empty())})
	ty, ok := SampleType(s2, r)
	if !ok || ty.HasField("b") {
		t.Errorf("optional empty field should be skipped: %v %v", ty, ok)
	}
}

func TestSampleValueConforms(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	s := NewUnion(
		tuple([]FieldSchema{req("id", Number)}, []FieldSchema{req("tag", String)}),
		&ArrayCollection{Elem: Bool, MaxLen: 3},
	)
	for i := 0; i < 50; i++ {
		v, ok := SampleValue(s, r)
		if !ok {
			t.Fatal("inhabited schema must sample")
		}
		ty, err := jsontype.FromValue(v)
		if err != nil {
			t.Fatalf("sampled value not JSON-representable: %v", err)
		}
		if !s.Accepts(ty) {
			t.Fatalf("sampled value %v does not conform", v)
		}
	}
}

func TestEnumerateSmallSchemas(t *testing.T) {
	cases := []struct {
		s    Schema
		want int
	}{
		{Number, 1},
		{Empty(), 0},
		{NewUnion(Number, String), 2},
		{tuple([]FieldSchema{req("a", Number)}, nil), 1},
		{tuple(nil, []FieldSchema{req("a", Number), req("b", String)}), 4},
		{NewArrayTuple(NewUnion(Number, String), Bool), 2},
		{&ArrayTuple{Elems: []Schema{Number, Number}, MinLen: 0}, 3},
		{&ArrayCollection{Elem: Number, MaxLen: 3}, 4},
		{&ArrayCollection{Elem: NewUnion(Number, String), MaxLen: 2}, 7},
		{&ObjectCollection{Value: Number, Domain: 3}, 8},
		{&ObjectCollection{Value: NewUnion(Number, Bool), Domain: 2}, 9},
		{&ArrayCollection{Elem: Empty(), MaxLen: 5}, 1}, // only []
	}
	for _, c := range cases {
		got := ExactTypeCount(c.s, 10000)
		if got != c.want {
			t.Errorf("ExactTypeCount(%s) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestEnumerateMatchesLogTypeCountProperty(t *testing.T) {
	// For randomly built *overlap-free* schemas (we just avoid unions of
	// same-kind alternatives by filtering via exact count ≤ limit), the
	// enumeration size must equal 2^LogTypeCount.
	r := rand.New(rand.NewSource(17))
	checked := 0
	for trial := 0; trial < 500 && checked < 120; trial++ {
		s := randomSchema(r, 2)
		n := ExactTypeCount(s, 3000)
		if n < 0 {
			continue
		}
		logCount := s.LogTypeCount()
		var want float64
		if math.IsInf(logCount, -1) {
			want = 0
		} else {
			want = math.Exp2(logCount)
		}
		// Unions may overlap: enumeration (deduplicated) ≤ the counted bound.
		if float64(n) > want+0.5 {
			t.Fatalf("schema %s enumerates %d types but LogTypeCount says %.3f",
				s, n, want)
		}
		// Without unions the count must be exact.
		if CountNodes(s, func(x Schema) bool { return x.Node() == NodeUnion }) == 0 {
			if math.Abs(float64(n)-want) > 0.5 {
				t.Fatalf("union-free schema %s: enumerated %d, counted %.3f", s, n, want)
			}
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("too few schemas checked: %d", checked)
	}
}

func TestEnumerateEveryTypeAccepted(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 150; trial++ {
		s := randomSchema(r, 2)
		types, _ := EnumerateTypes(s, 500)
		for _, ty := range types {
			if !s.AcceptsWith(ty, Options{NullIsWildcard: false}) && !s.Accepts(ty) {
				t.Fatalf("schema %s rejects enumerated type %s", s, ty)
			}
		}
	}
}

func TestEnumerateLimit(t *testing.T) {
	// 2^20 optional fields: enumeration must stop at the limit.
	var opts []FieldSchema
	for i := 0; i < 20; i++ {
		opts = append(opts, req(syntheticKey(i), Number))
	}
	s := tuple(nil, opts)
	types, complete := EnumerateTypes(s, 100)
	if complete {
		t.Error("enumeration should be truncated")
	}
	if len(types) < 100 {
		t.Errorf("got %d types before stopping", len(types))
	}
}
