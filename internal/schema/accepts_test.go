package schema

import "testing"

func TestPrimitiveAccepts(t *testing.T) {
	if !Number.Accepts(ty("1.5")) || Number.Accepts(ty(`"x"`)) {
		t.Error("number acceptance broken")
	}
	if !String.Accepts(ty(`"x"`)) || String.Accepts(ty("true")) {
		t.Error("string acceptance broken")
	}
	if !Bool.Accepts(ty("true")) || Bool.Accepts(ty("[]")) {
		t.Error("bool acceptance broken")
	}
	if !Null.Accepts(ty("null")) {
		t.Error("null schema should accept null")
	}
	// Null wildcard (default options).
	if !Number.Accepts(ty("null")) {
		t.Error("null should be wildcard by default")
	}
	strict := Options{NullIsWildcard: false}
	if Number.AcceptsWith(ty("null"), strict) {
		t.Error("strict options should reject null under ℝ")
	}
	if !Null.AcceptsWith(ty("null"), strict) {
		t.Error("null schema accepts null even in strict mode")
	}
}

func TestObjectTupleAccepts(t *testing.T) {
	s := tuple(
		[]FieldSchema{req("ts", Number), req("event", String)},
		[]FieldSchema{req("user", String)},
	)
	cases := []struct {
		src  string
		want bool
	}{
		{`{"ts":1,"event":"a"}`, true},
		{`{"ts":1,"event":"a","user":"bob"}`, true},
		{`{"ts":1}`, false},                        // missing required
		{`{"ts":1,"event":"a","extra":1}`, false},  // unknown key
		{`{"ts":"x","event":"a"}`, false},          // wrong type
		{`{"ts":null,"event":"a"}`, true},          // null wildcard
		{`{"ts":1,"event":"a","user":null}`, true}, // null optional
		{`[1]`, false},                             // wrong kind
		{`"str"`, false},                           // wrong kind
	}
	for _, c := range cases {
		if got := s.Accepts(ty(c.src)); got != c.want {
			t.Errorf("Accepts(%s) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestObjectTupleEmptyAccepts(t *testing.T) {
	empty := tuple(nil, nil)
	if !empty.Accepts(ty(`{}`)) {
		t.Error("empty tuple accepts empty object")
	}
	if empty.Accepts(ty(`{"a":1}`)) {
		t.Error("empty tuple rejects any key")
	}
}

func TestArrayTupleAccepts(t *testing.T) {
	geo := NewArrayTuple(Number, Number)
	if !geo.Accepts(ty("[1.0,2.0]")) {
		t.Error("geo tuple should accept [ℝ,ℝ]")
	}
	for _, bad := range []string{"[1.0]", "[1.0,2.0,3.0]", `[1.0,"x"]`, `{"a":1}`} {
		if geo.Accepts(ty(bad)) {
			t.Errorf("geo tuple should reject %s", bad)
		}
	}
	if !geo.Accepts(ty("[null,2.0]")) {
		t.Error("null element is wildcard")
	}
}

func TestArrayTupleOptionalSuffix(t *testing.T) {
	s := &ArrayTuple{Elems: []Schema{Number, Number, String}, MinLen: 1}
	for _, good := range []string{"[1]", "[1,2]", `[1,2,"x"]`} {
		if !s.Accepts(ty(good)) {
			t.Errorf("should accept %s", good)
		}
	}
	for _, bad := range []string{"[]", `[1,2,"x",4]`, `["a"]`} {
		if s.Accepts(ty(bad)) {
			t.Errorf("should reject %s", bad)
		}
	}
}

func TestArrayCollectionAccepts(t *testing.T) {
	s := &ArrayCollection{Elem: String, MaxLen: 2}
	// MaxLen bounds entropy, not validation.
	for _, good := range []string{"[]", `["a"]`, `["a","b","c","d"]`, `[null]`} {
		if !s.Accepts(ty(good)) {
			t.Errorf("should accept %s", good)
		}
	}
	for _, bad := range []string{"[1]", `["a",1]`, `{"a":"b"}`} {
		if s.Accepts(ty(bad)) {
			t.Errorf("should reject %s", bad)
		}
	}
}

func TestObjectCollectionAccepts(t *testing.T) {
	s := &ObjectCollection{Value: Number, Domain: 3}
	for _, good := range []string{"{}", `{"a":1}`, `{"x":1,"y":2,"z":3,"w":4}`} {
		if !s.Accepts(ty(good)) {
			t.Errorf("should accept %s", good)
		}
	}
	for _, bad := range []string{`{"a":"s"}`, `[1]`, `"x"`} {
		if s.Accepts(ty(bad)) {
			t.Errorf("should reject %s", bad)
		}
	}
}

func TestNestedCollectionAccepts(t *testing.T) {
	// Synapse signatures shape: {url: {key: sig}}.
	s := &ObjectCollection{Value: &ObjectCollection{Value: String, Domain: 2}, Domain: 2}
	if !s.Accepts(ty(`{"matrix.org":{"ed25519:1":"sig"},"other.org":{"k":"v","k2":"v2"}}`)) {
		t.Error("two-level collection should accept")
	}
	if s.Accepts(ty(`{"matrix.org":{"k":1}}`)) {
		t.Error("leaf type mismatch should reject")
	}
}

func TestUnionAccepts(t *testing.T) {
	s := NewUnion(Number, &ArrayCollection{Elem: String})
	if !s.Accepts(ty("3")) || !s.Accepts(ty(`["a"]`)) {
		t.Error("union should accept either alternative")
	}
	if s.Accepts(ty("true")) {
		t.Error("union should reject non-members")
	}
	if Empty().Accepts(ty("null")) {
		t.Error("empty schema accepts nothing, even null")
	}
	// Null wildcard applies to non-empty unions.
	u := NewUnion(Number, String).(*Union)
	if !u.Accepts(ty("null")) {
		t.Error("non-empty union should accept null under default options")
	}
}

func TestMultiEntityUnionPrecision(t *testing.T) {
	// The Example 1 scenario: S1 (two entities) rejects the mixed records
	// that S2 (single entity with optionals) admits.
	login := tuple(
		[]FieldSchema{req("ts", Number), req("event", String), req("user", tuple(
			[]FieldSchema{req("name", String), req("geo", NewArrayTuple(Number, Number))}, nil))},
		nil)
	serve := tuple(
		[]FieldSchema{req("ts", Number), req("event", String), req("files", &ArrayCollection{Elem: String, MaxLen: 2})},
		nil)
	s1 := NewUnion(login, serve)
	s2 := tuple(
		[]FieldSchema{req("ts", Number), req("event", String)},
		[]FieldSchema{
			req("user", tuple([]FieldSchema{req("name", String), req("geo", NewArrayTuple(Number, Number))}, nil)),
			req("files", &ArrayCollection{Elem: String, MaxLen: 2}),
		})

	loginRec := ty(`{"ts":7,"event":"login","user":{"name":"bob","geo":[1,2]}}`)
	serveRec := ty(`{"ts":8,"event":"serve","files":["a.txt","b.txt"]}`)
	both := ty(`{"ts":9,"event":"huh","user":{"name":"x","geo":[0,0]},"files":["f"]}`)
	neither := ty(`{"ts":10,"event":"wat"}`)

	if !s1.Accepts(loginRec) || !s1.Accepts(serveRec) {
		t.Error("S1 must accept both training records")
	}
	if !s2.Accepts(loginRec) || !s2.Accepts(serveRec) {
		t.Error("S2 must accept both training records")
	}
	if s1.Accepts(both) || s1.Accepts(neither) {
		t.Error("S1 (entity-partitioned) must reject the invalid mixtures")
	}
	if !s2.Accepts(both) || !s2.Accepts(neither) {
		t.Error("S2 (single entity) admits the mixtures — the imprecision JXPLAIN fixes")
	}
}
