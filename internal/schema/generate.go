package schema

import (
	"math/rand"

	"jxplain/internal/jsontype"
)

// Schema-driven generation: sample or enumerate the structural types a
// schema admits. Sampling yields synthetic test records conforming to a
// discovered schema; bounded enumeration cross-checks Accepts and the
// schema-entropy computation against ground truth (every enumerated type
// must validate, and for overlap-free schemas the count must equal
// 2^LogTypeCount).

// SampleType draws a uniform-ish random type admitted by the schema, or
// ok=false when the schema admits none (the empty schema, or a composite
// whose children admit none). Collections draw lengths up to MaxLen and
// synthetic keys within Domain, matching the entropy bounds.
func SampleType(s Schema, r *rand.Rand) (t *jsontype.Type, ok bool) {
	switch n := s.(type) {
	case *Primitive:
		return jsontype.NewPrimitive(n.K), true
	case *ArrayTuple:
		length := n.MinLen + r.Intn(len(n.Elems)-n.MinLen+1)
		elems := make([]*jsontype.Type, length)
		for i := 0; i < length; i++ {
			e, ok := SampleType(n.Elems[i], r)
			if !ok {
				return nil, false
			}
			elems[i] = e
		}
		return jsontype.NewArray(elems), true
	case *ObjectTuple:
		var fields []jsontype.Field
		for _, f := range n.Required {
			v, ok := SampleType(f.Schema, r)
			if !ok {
				return nil, false
			}
			fields = append(fields, jsontype.Field{Key: f.Key, Type: v})
		}
		for _, f := range n.Optional {
			if r.Intn(2) == 0 {
				continue
			}
			v, ok := SampleType(f.Schema, r)
			if !ok {
				continue // an uninhabited optional field is simply omitted
			}
			fields = append(fields, jsontype.Field{Key: f.Key, Type: v})
		}
		return jsontype.NewObject(fields), true
	case *ArrayCollection:
		maxLen := n.MaxLen
		if IsEmpty(n.Elem) {
			maxLen = 0
		}
		length := 0
		if maxLen > 0 {
			length = r.Intn(maxLen + 1)
		}
		elems := make([]*jsontype.Type, length)
		for i := range elems {
			e, ok := SampleType(n.Elem, r)
			if !ok {
				return nil, false
			}
			elems[i] = e
		}
		return jsontype.NewArray(elems), true
	case *ObjectCollection:
		domain := n.Domain
		if IsEmpty(n.Value) {
			domain = 0
		}
		var fields []jsontype.Field
		for i := 0; i < domain; i++ {
			if r.Intn(2) == 0 {
				continue
			}
			v, ok := SampleType(n.Value, r)
			if !ok {
				return nil, false
			}
			fields = append(fields, jsontype.Field{Key: syntheticKey(i), Type: v})
		}
		return jsontype.NewObject(fields), true
	case *Union:
		if len(n.Alts) == 0 {
			return nil, false
		}
		// Try alternatives in random order; some may be uninhabited.
		order := r.Perm(len(n.Alts))
		for _, i := range order {
			if t, ok := SampleType(n.Alts[i], r); ok {
				return t, true
			}
		}
		return nil, false
	}
	return nil, false
}

// SampleValue draws a decoded JSON value (map[string]any / []any /
// primitives) conforming to the schema, with placeholder leaf values —
// synthetic test data for a discovered schema.
func SampleValue(s Schema, r *rand.Rand) (any, bool) {
	t, ok := SampleType(s, r)
	if !ok {
		return nil, false
	}
	return valueOf(t, r), true
}

func valueOf(t *jsontype.Type, r *rand.Rand) any {
	switch t.Kind() {
	case jsontype.KindNull:
		return nil
	case jsontype.KindBool:
		return r.Intn(2) == 0
	case jsontype.KindNumber:
		return float64(r.Intn(1000))
	case jsontype.KindString:
		return syntheticKey(r.Intn(1000))
	case jsontype.KindArray:
		out := make([]any, t.Len())
		for i, e := range t.Elems() {
			out[i] = valueOf(e, r)
		}
		return out
	case jsontype.KindObject:
		out := make(map[string]any, t.Len())
		for _, f := range t.Fields() {
			out[f.Key] = valueOf(f.Type, r)
		}
		return out
	}
	return nil
}

func syntheticKey(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	out := []byte{'k'}
	for {
		out = append(out, letters[i%26])
		i /= 26
		if i == 0 {
			return string(out)
		}
	}
}

// EnumerateTypes lists the distinct structural types the schema admits,
// stopping once limit is exceeded (ok=false then; the slice holds the
// first ≥limit found). Collections enumerate within their recorded bounds
// (lengths ≤ MaxLen over the synthetic key domain), mirroring the Table 2
// counting semantics, so for schemas without union overlap
// len(EnumerateTypes) equals 2^LogTypeCount exactly.
func EnumerateTypes(s Schema, limit int) (types []*jsontype.Type, ok bool) {
	seen := map[string]bool{}
	var out []*jsontype.Type
	complete := enumerate(s, limit, func(t *jsontype.Type) bool {
		if seen[t.Canon()] {
			return true
		}
		seen[t.Canon()] = true
		out = append(out, t)
		return len(out) < limit
	})
	return out, complete
}

// enumerate invokes yield for every admitted type (possibly with
// duplicates across union alternatives); yield returns false to stop.
// enumerate reports whether the enumeration ran to completion.
func enumerate(s Schema, limit int, yield func(*jsontype.Type) bool) bool {
	switch n := s.(type) {
	case *Primitive:
		return yield(jsontype.NewPrimitive(n.K))
	case *Union:
		for _, a := range n.Alts {
			if !enumerate(a, limit, yield) {
				return false
			}
		}
		return true
	case *ArrayTuple:
		for length := n.MinLen; length <= len(n.Elems); length++ {
			if !enumerateSlots(n.Elems[:length], limit, func(elems []*jsontype.Type) bool {
				return yield(jsontype.NewArray(append([]*jsontype.Type(nil), elems...)))
			}) {
				return false
			}
		}
		return true
	case *ObjectTuple:
		return enumerateObject(n, limit, yield)
	case *ArrayCollection:
		var elemTypes []*jsontype.Type
		if !IsEmpty(n.Elem) {
			var complete bool
			elemTypes, complete = EnumerateTypes(n.Elem, limit)
			if !complete {
				return false
			}
		}
		return enumerateSequences(elemTypes, n.MaxLen, func(elems []*jsontype.Type) bool {
			return yield(jsontype.NewArray(append([]*jsontype.Type(nil), elems...)))
		})
	case *ObjectCollection:
		var valueTypes []*jsontype.Type
		if !IsEmpty(n.Value) {
			var complete bool
			valueTypes, complete = EnumerateTypes(n.Value, limit)
			if !complete {
				return false
			}
		}
		domain := n.Domain
		if len(valueTypes) == 0 {
			domain = 0
		}
		return enumerateKeySubsets(domain, valueTypes, nil, 0, yield)
	}
	return true
}

// enumerateSlots enumerates every combination of one admitted type per
// slot schema.
func enumerateSlots(slots []Schema, limit int, yield func([]*jsontype.Type) bool) bool {
	current := make([]*jsontype.Type, len(slots))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(slots) {
			return yield(current)
		}
		ok := true
		enumerate(slots[i], limit, func(t *jsontype.Type) bool {
			current[i] = t
			if !rec(i + 1) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	return rec(0)
}

func enumerateObject(o *ObjectTuple, limit int, yield func(*jsontype.Type) bool) bool {
	all := make([]FieldSchema, 0, len(o.Required)+len(o.Optional))
	all = append(all, o.Required...)
	all = append(all, o.Optional...)
	requiredCount := len(o.Required)
	fields := make([]jsontype.Field, 0, len(all))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(all) {
			cp := append([]jsontype.Field(nil), fields...)
			return yield(jsontype.NewObject(cp))
		}
		f := all[i]
		optional := i >= requiredCount
		if optional {
			if !rec(i + 1) { // absent branch
				return false
			}
		}
		ok := true
		enumerate(f.Schema, limit, func(t *jsontype.Type) bool {
			fields = append(fields, jsontype.Field{Key: f.Key, Type: t})
			if !rec(i + 1) {
				ok = false
			}
			fields = fields[:len(fields)-1]
			return ok
		})
		return ok
	}
	return rec(0)
}

// enumerateSequences yields every sequence of length 0..maxLen over the
// element types.
func enumerateSequences(elemTypes []*jsontype.Type, maxLen int, yield func([]*jsontype.Type) bool) bool {
	var current []*jsontype.Type
	var rec func(remaining int) bool
	rec = func(remaining int) bool {
		if !yield(current) {
			return false
		}
		if remaining == 0 {
			return true
		}
		for _, e := range elemTypes {
			current = append(current, e)
			ok := rec(remaining - 1)
			current = current[:len(current)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	return rec(maxLen)
}

// enumerateKeySubsets yields objects over every subset of the synthetic
// key domain with every assignment of value types.
func enumerateKeySubsets(domain int, valueTypes []*jsontype.Type, fields []jsontype.Field, i int, yield func(*jsontype.Type) bool) bool {
	if i == domain {
		cp := append([]jsontype.Field(nil), fields...)
		return yield(jsontype.NewObject(cp))
	}
	if !enumerateKeySubsets(domain, valueTypes, fields, i+1, yield) { // key absent
		return false
	}
	for _, v := range valueTypes {
		if !enumerateKeySubsets(domain, valueTypes,
			append(fields, jsontype.Field{Key: syntheticKey(i), Type: v}), i+1, yield) {
			return false
		}
	}
	return true
}

// ExactTypeCount returns the exact number of admitted types (within
// collection bounds), or -1 when it exceeds limit. It exists to
// cross-check LogTypeCount on small schemas.
func ExactTypeCount(s Schema, limit int) int {
	types, complete := EnumerateTypes(s, limit)
	if !complete {
		return -1
	}
	return len(types)
}
