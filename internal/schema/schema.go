// Package schema implements the generated-schema grammar of Section 4 of
// "Reducing Ambiguity in Json Schema Discovery" (SIGMOD 2021):
//
//	S := ℝ | 𝕊 | 𝔹 | null
//	   | ArrayTuple(S, S, …)
//	   | ObjectTuple(k:S, …, k?:S, …)
//	   | ArrayCollection(S) | ObjectCollection(S)
//	   | Union(S, S, …)
//
// A Schema denotes a set of structural JSON types (Definition 1). The
// package provides membership testing (validation), admitted-type counting
// in log2 space ("schema entropy", the Table 2 metric), pretty printing in
// the paper's notation, JSON-Schema export, a JSON round-trip encoding, and
// union-redundancy simplification.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"jxplain/internal/jsontype"
)

// NodeKind discriminates the grammar's productions.
type NodeKind uint8

// The grammar productions.
const (
	NodePrimitive NodeKind = iota
	NodeArrayTuple
	NodeObjectTuple
	NodeArrayCollection
	NodeObjectCollection
	NodeUnion
)

func (k NodeKind) String() string {
	switch k {
	case NodePrimitive:
		return "primitive"
	case NodeArrayTuple:
		return "array-tuple"
	case NodeObjectTuple:
		return "object-tuple"
	case NodeArrayCollection:
		return "array-collection"
	case NodeObjectCollection:
		return "object-collection"
	case NodeUnion:
		return "union"
	}
	return "invalid"
}

// Schema is one node of the generated-schema grammar. Implementations are
// the six node types in this package; the interface is sealed.
type Schema interface {
	// Node returns the production this node belongs to.
	Node() NodeKind
	// Accepts reports whether the structural type t is admitted by the
	// schema under the default validation options.
	Accepts(t *jsontype.Type) bool
	// AcceptsWith is Accepts with explicit options.
	AcceptsWith(t *jsontype.Type, opts Options) bool
	// LogTypeCount returns log2 of the number of types admitted by the
	// schema — the paper's "schema entropy" (Table 2). Collections are
	// bounded by the domain statistics observed at discovery time.
	LogTypeCount() float64
	// String renders the schema in the paper's notation.
	String() string
	// Canon returns a canonical string; equal canon ⇔ identical schema.
	Canon() string

	writeString(b *strings.Builder)
	writeCanon(b *strings.Builder)
}

// Options controls validation behavior.
type Options struct {
	// NullIsWildcard makes the null type admissible under any schema node,
	// mirroring the Section 5.2 similarity rule ("nulls are similar to
	// anything"). Enabled by default.
	NullIsWildcard bool
}

// DefaultOptions is used by the plain Accepts method.
var DefaultOptions = Options{NullIsWildcard: true}

// ----- Primitive -----

// Primitive admits exactly one primitive type.
type Primitive struct {
	K jsontype.Kind
}

// NewPrimitive returns the primitive schema for kind k; it panics for
// complex kinds.
func NewPrimitive(k jsontype.Kind) *Primitive {
	if !k.Primitive() {
		panic("schema: NewPrimitive with complex kind " + k.String())
	}
	return &Primitive{K: k}
}

// Convenience singletons for the four primitive schemas.
var (
	Null   = &Primitive{K: jsontype.KindNull}
	Bool   = &Primitive{K: jsontype.KindBool}
	Number = &Primitive{K: jsontype.KindNumber}
	String = &Primitive{K: jsontype.KindString}
)

// Node implements Schema.
func (p *Primitive) Node() NodeKind { return NodePrimitive }

// ----- ArrayTuple -----

// ArrayTuple admits fixed-shape arrays: position i must be admitted by
// Elems[i]. Positions from MinLen onward form an optional suffix: admitted
// arrays have length ℓ with MinLen ≤ ℓ ≤ len(Elems). (The paper's grammar
// writes ArrayTuple(S₁,…,Sₙ); the optional suffix is the array analog of
// ObjectTuple's optional fields, needed when tuple-like arrays of several
// lengths are merged into one entity.)
type ArrayTuple struct {
	Elems  []Schema
	MinLen int
}

// NewArrayTuple returns a fixed-length array tuple (MinLen = len(elems)).
func NewArrayTuple(elems ...Schema) *ArrayTuple {
	return &ArrayTuple{Elems: elems, MinLen: len(elems)}
}

// Node implements Schema.
func (a *ArrayTuple) Node() NodeKind { return NodeArrayTuple }

// ----- ObjectTuple -----

// FieldSchema is one key → schema mapping of an ObjectTuple.
type FieldSchema struct {
	Key    string
	Schema Schema
}

// ObjectTuple admits tuple-like objects: every Required key must be present
// (with an admitted type), any subset of Optional keys may be present, and
// no other keys are allowed. Field lists are key-sorted.
type ObjectTuple struct {
	Required []FieldSchema
	Optional []FieldSchema
}

// NewObjectTuple returns an ObjectTuple with the given fields, sorting both
// lists by key. It panics if a key appears twice (within or across lists).
func NewObjectTuple(required, optional []FieldSchema) *ObjectTuple {
	o := &ObjectTuple{Required: required, Optional: optional}
	sort.Slice(o.Required, func(i, j int) bool { return o.Required[i].Key < o.Required[j].Key })
	sort.Slice(o.Optional, func(i, j int) bool { return o.Optional[i].Key < o.Optional[j].Key })
	seen := map[string]bool{}
	for _, f := range o.Required {
		if seen[f.Key] {
			panic("schema: duplicate ObjectTuple key " + f.Key)
		}
		seen[f.Key] = true
	}
	for _, f := range o.Optional {
		if seen[f.Key] {
			panic("schema: duplicate ObjectTuple key " + f.Key)
		}
		seen[f.Key] = true
	}
	return o
}

// Node implements Schema.
func (o *ObjectTuple) Node() NodeKind { return NodeObjectTuple }

// Field returns the schema for key plus whether the key is required;
// (nil, false) if the key is unknown.
func (o *ObjectTuple) Field(key string) (s Schema, required bool) {
	if f := findField(o.Required, key); f != nil {
		return f.Schema, true
	}
	if f := findField(o.Optional, key); f != nil {
		return f.Schema, false
	}
	return nil, false
}

func findField(fields []FieldSchema, key string) *FieldSchema {
	i := sort.Search(len(fields), func(i int) bool { return fields[i].Key >= key })
	if i < len(fields) && fields[i].Key == key {
		return &fields[i]
	}
	return nil
}

// Keys returns all keys (required then optional), each sorted.
func (o *ObjectTuple) Keys() []string {
	keys := make([]string, 0, len(o.Required)+len(o.Optional))
	for _, f := range o.Required {
		keys = append(keys, f.Key)
	}
	for _, f := range o.Optional {
		keys = append(keys, f.Key)
	}
	return keys
}

// ----- ArrayCollection -----

// ArrayCollection admits arrays of any length whose elements are all
// admitted by Elem ([S]* in the paper). MaxLen records the longest array
// observed at discovery time and bounds the admitted-type count (§7.2);
// it does not constrain validation.
type ArrayCollection struct {
	Elem   Schema
	MaxLen int
}

// Node implements Schema.
func (a *ArrayCollection) Node() NodeKind { return NodeArrayCollection }

// ----- ObjectCollection -----

// ObjectCollection admits objects with arbitrary keys whose field values
// are all admitted by Value ({*: S}* in the paper). Domain records the
// active key-domain size observed at discovery time and bounds the
// admitted-type count (§7.2); it does not constrain validation.
type ObjectCollection struct {
	Value  Schema
	Domain int
}

// Node implements Schema.
func (o *ObjectCollection) Node() NodeKind { return NodeObjectCollection }

// ----- Union -----

// Union admits a type iff any alternative admits it. A Union with no
// alternatives admits nothing (the empty schema).
type Union struct {
	Alts []Schema
}

// NewUnion returns the union of alts, flattening single-element and nil
// cases: NewUnion() is the empty schema, NewUnion(s) is s itself.
func NewUnion(alts ...Schema) Schema {
	filtered := alts[:0:0]
	for _, a := range alts {
		if a != nil {
			filtered = append(filtered, a)
		}
	}
	if len(filtered) == 1 {
		return filtered[0]
	}
	return &Union{Alts: filtered}
}

// Empty is the schema admitting no types.
func Empty() Schema { return &Union{} }

// IsEmpty reports whether s is a union with no alternatives.
func IsEmpty(s Schema) bool {
	u, ok := s.(*Union)
	return ok && len(u.Alts) == 0
}

// Node implements Schema.
func (u *Union) Node() NodeKind { return NodeUnion }

// Equal reports whether two schemas are structurally identical.
func Equal(a, b Schema) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Canon() == b.Canon()
}

// Walk visits s and every descendant schema node in depth-first pre-order.
func Walk(s Schema, visit func(Schema)) {
	visit(s)
	switch n := s.(type) {
	case *ArrayTuple:
		for _, e := range n.Elems {
			Walk(e, visit)
		}
	case *ObjectTuple:
		for _, f := range n.Required {
			Walk(f.Schema, visit)
		}
		for _, f := range n.Optional {
			Walk(f.Schema, visit)
		}
	case *ArrayCollection:
		Walk(n.Elem, visit)
	case *ObjectCollection:
		Walk(n.Value, visit)
	case *Union:
		for _, a := range n.Alts {
			Walk(a, visit)
		}
	}
}

// CountNodes returns the number of schema nodes satisfying pred.
func CountNodes(s Schema, pred func(Schema) bool) int {
	n := 0
	Walk(s, func(node Schema) {
		if pred(node) {
			n++
		}
	})
	return n
}

// Size returns the total number of schema nodes.
func Size(s Schema) int { return CountNodes(s, func(Schema) bool { return true }) }

// Entities returns the number of tuple nodes (ObjectTuple or ArrayTuple) in
// the schema — the paper's "entity" count.
func Entities(s Schema) int {
	return CountNodes(s, func(n Schema) bool {
		k := n.Node()
		return k == NodeObjectTuple || k == NodeArrayTuple
	})
}

// mustSchema is a fmt helper for internal invariants.
func mustSchema(cond bool, format string, args ...any) {
	if !cond {
		panic("schema: " + fmt.Sprintf(format, args...))
	}
}
