package entity

// Weighted key sets — the §6.4 dedup contract made first-class. Most
// records of a collection share *identical* key sets, so entity discovery
// should never run over one set per record: clustering decisions depend
// only on the distinct sets and their first-appearance order (sizes,
// seeds, and tie-breaks are all multiplicity-blind), while per-entity
// statistics need the multiplicities back. Weighted carries both, so the
// expensive stage scales with distinct structure, not record count —
// the same fold-equivalent-before-merging idea Baazizi et al. apply to
// types, applied one level up to key sets.

// Weighted is a deduplicated multiset of key sets: Sets holds the
// distinct sets in first-appearance order and Weights their record
// multiplicities. len(Sets) == len(Weights) always; a nil Weights means
// every set counts once.
type Weighted struct {
	Sets    []KeySet
	Weights []int
}

// Records returns the total record multiplicity.
func (w Weighted) Records() int {
	if w.Weights == nil {
		return len(w.Sets)
	}
	n := 0
	for _, c := range w.Weights {
		n += c
	}
	return n
}

// DedupKeySets canonicalizes a replicated key-set slice into distinct
// (set, weight) pairs plus the mapping from each input position to its
// distinct id. Distinct sets keep first-appearance order, so running
// Bimax over w.Sets is position-for-position equivalent to running it
// over the replicated input (see BimaxNaiveWeighted).
func DedupKeySets(sets []KeySet) (w Weighted, toDistinct []int) {
	index := map[string]int{}
	toDistinct = make([]int, len(sets))
	for i, s := range sets {
		c := s.Canon()
		si, ok := index[c]
		if !ok {
			si = len(w.Sets)
			index[c] = si
			w.Sets = append(w.Sets, s)
			w.Weights = append(w.Weights, 0)
		}
		w.Weights[si]++
		toDistinct[i] = si
	}
	return w, toDistinct
}

// DiscoverEntities runs the configured JXPLAIN clustering (Algorithm 7,
// optionally coalesced by Algorithm 8) over weighted key sets. Cluster
// Members index into w.Sets; Weights aggregate into each cluster's Weight.
func DiscoverEntities(w Weighted, merge bool) []Cluster {
	clusters := BimaxNaiveWeighted(w.Sets, w.Weights)
	if merge {
		clusters = GreedyMerge(clusters)
	}
	return clusters
}
