package entity

// Dict interns key names to dense integer ids.
//
// A Dict is single-writer: ID mutates and must only be called from one
// goroutine at a time. The parallel pass ② of the discovery pipeline
// therefore builds one private Dict per partition point (never sharing a
// Dict across concurrent plan builds); code that wants to hand a
// dictionary to concurrent readers while continuing to intern should pass
// a Snapshot instead.
type Dict struct {
	ids   map[string]int
	names []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict { return &Dict{ids: map[string]int{}} }

// ID returns the id for name, assigning the next id on first use.
// Mutates: single-writer only.
func (d *Dict) ID(name string) int {
	if id, ok := d.ids[name]; ok {
		return id
	}
	id := len(d.names)
	d.ids[name] = id
	d.names = append(d.names, name)
	return id
}

// Lookup returns the id for name without assigning, with ok=false if absent.
func (d *Dict) Lookup(name string) (int, bool) {
	id, ok := d.ids[name]
	return id, ok
}

// Name returns the name for id.
func (d *Dict) Name(id int) string { return d.names[id] }

// Len returns the number of interned names.
func (d *Dict) Len() int { return len(d.names) }

// Snapshot returns an immutable copy of the dictionary's current state,
// safe for concurrent use by any number of readers regardless of what the
// writer does to d afterwards.
func (d *Dict) Snapshot() Snapshot {
	ids := make(map[string]int, len(d.ids))
	for k, v := range d.ids {
		ids[k] = v
	}
	return Snapshot{ids: ids, names: append([]string(nil), d.names...)}
}

// Snapshot is a read-only view of a Dict at one point in time.
type Snapshot struct {
	ids   map[string]int
	names []string
}

// Lookup returns the id for name, with ok=false if the name was not
// interned when the snapshot was taken.
func (s Snapshot) Lookup(name string) (int, bool) {
	id, ok := s.ids[name]
	return id, ok
}

// Name returns the name for id.
func (s Snapshot) Name(id int) string { return s.names[id] }

// Len returns the number of interned names in the snapshot.
func (s Snapshot) Len() int { return len(s.names) }
