package entity

// Inverted posting index over a fixed slice of key sets. Bimax and
// GreedyMerge are built on one question — "which other sets share a key
// with this one?" — and the naive implementations answer it by scanning
// every remaining set with word-level bitset operations, which is
// quadratic in the number of sets. The index answers it in time
// proportional to the posting lists actually touched: postings[k] lists
// the ids of the sets containing key k, so the sets intersecting a query
// are exactly the union of the query keys' posting lists, and sets
// disjoint from the query are never visited at all.
//
// Both consumers retire sets monotonically (Bimax finalizes positions,
// GreedyMerge deactivates clusters and never reactivates them), so the
// walks compact dead ids out of the posting lists in place, keeping
// repeated queries proportional to the *live* postings. The index holds
// only integer slices — no maps — so iteration order is deterministic by
// construction (the detorder invariant).

// Index is an inverted index over the key sets it was built from: for
// each key id, the ascending ids of the sets containing it. Empty sets
// appear in no posting list and are tracked separately, because the empty
// set is a subset of every set and therefore a candidate for every
// query. An Index is single-goroutine; build one per clustering run.
type Index struct {
	postings [][]int32
	empties  []int32

	// mark/epoch deduplicate ids within one Candidates walk without
	// clearing state between walks.
	mark  []int32
	epoch int32
}

// NewIndex builds the index for sets. The sets slice is not retained.
// Construction is two counting passes over the sets' bits into one flat
// posting arena (CSR layout), so the index costs O(Σ|set|) time and one
// allocation for all posting lists together.
func NewIndex(sets []KeySet) *Index {
	dim := 0
	for _, s := range sets {
		if n := len(s) * wordBits; n > dim {
			dim = n
		}
	}
	starts := make([]int32, dim+1)
	for _, s := range sets {
		s.Each(func(k int) { starts[k+1]++ })
	}
	for k := 0; k < dim; k++ {
		starts[k+1] += starts[k]
	}
	flat := make([]int32, starts[dim])
	fill := append([]int32(nil), starts[:dim]...)
	ix := &Index{postings: make([][]int32, dim), mark: make([]int32, len(sets))}
	for id, s := range sets {
		if s.Empty() {
			ix.empties = append(ix.empties, int32(id))
			continue
		}
		s.Each(func(k int) {
			flat[fill[k]] = int32(id)
			fill[k]++
		})
	}
	for k := 0; k < dim; k++ {
		ix.postings[k] = flat[starts[k]:fill[k]]
	}
	return ix
}

// Candidates appends to dst, each exactly once, the ids of live sets that
// could be non-disjoint from q: every live set sharing at least one key
// with q, plus every live empty set (⊆ everything). Ids for which
// live(id) is false are permanently compacted out of the walked posting
// lists — callers must guarantee a dead id never becomes live again.
// The returned ids are in no particular order.
//
//jx:hotpath
func (ix *Index) Candidates(q KeySet, live func(id int32) bool, dst []int32) []int32 {
	ix.epoch++
	q.Each(func(k int) {
		if k >= len(ix.postings) {
			return
		}
		pl := ix.postings[k]
		kept := pl[:0]
		for _, id := range pl {
			if !live(id) {
				continue
			}
			kept = append(kept, id)
			if ix.mark[id] != ix.epoch {
				ix.mark[id] = ix.epoch
				dst = append(dst, id)
			}
		}
		ix.postings[k] = kept
	})
	kept := ix.empties[:0]
	for _, id := range ix.empties {
		if !live(id) {
			continue
		}
		kept = append(kept, id)
		if ix.mark[id] != ix.epoch {
			ix.mark[id] = ix.epoch
			dst = append(dst, id)
		}
	}
	ix.empties = kept
	return dst
}

// Marked reports whether id was returned by the most recent Candidates
// walk. Valid until the next Candidates call.
//
//jx:hotpath
func (ix *Index) Marked(id int) bool { return ix.mark[id] == ix.epoch }

// AddGains adds delta to gains[id] once per (key of q, live set id
// containing the key) pair — after a walk with delta=+1 starting from
// zero, gains[id] = |sets[id] ∩ q| for every live id sharing a key with
// q. When dst is non-nil, ids touched for the first time in this walk are
// appended to it (first-touch detection uses the same epoch marks as
// Candidates, so interleaving AddGains(dst≠nil) and Candidates walks is
// not supported). Dead ids are compacted exactly as in Candidates.
//
//jx:hotpath
func (ix *Index) AddGains(q KeySet, live func(id int32) bool, delta int, gains []int, dst []int32) []int32 {
	if dst != nil {
		ix.epoch++
	}
	q.Each(func(k int) {
		if k >= len(ix.postings) {
			return
		}
		pl := ix.postings[k]
		kept := pl[:0]
		for _, id := range pl {
			if !live(id) {
				continue
			}
			kept = append(kept, id)
			gains[id] += delta
			if dst != nil && ix.mark[id] != ix.epoch {
				ix.mark[id] = ix.epoch
				dst = append(dst, id)
			}
		}
		ix.postings[k] = kept
	})
	return dst
}
