package entity

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"jxplain/internal/dataset"
)

// renderReplicated canonicalizes a clustering of replicated (one per
// record) key sets: per cluster, the Max, the record count, and the sorted
// distinct-set ids its members map to.
func renderReplicated(clusters []Cluster, toDistinct []int) string {
	var b strings.Builder
	for _, c := range clusters {
		ids := map[int]bool{}
		for _, m := range c.Members {
			ids[toDistinct[m]] = true
		}
		fmt.Fprintf(&b, "%x w=%d m=%v\n", string(c.Max.Canon()), len(c.Members), sortedKeys(ids))
	}
	return b.String()
}

// renderWeighted canonicalizes a clustering of deduplicated key sets in
// the same shape as renderReplicated.
func renderWeighted(clusters []Cluster) string {
	var b strings.Builder
	for _, c := range clusters {
		members := append([]int(nil), c.Members...)
		sort.Ints(members)
		fmt.Fprintf(&b, "%x w=%d m=%v\n", string(c.Max.Canon()), c.Weight, members)
	}
	return b.String()
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// checkWeightedEquivalence runs entity discovery over the replicated sets
// and over their weighted dedup and requires byte-identical canonical
// renderings — same clusters in the same order, with weights standing in
// for member multiplicity.
func checkWeightedEquivalence(t *testing.T, label string, sets []KeySet, merge bool) {
	t.Helper()
	w, toDistinct := DedupKeySets(sets)
	if got := w.Records(); got != len(sets) {
		t.Fatalf("%s: Records() = %d, want %d", label, got, len(sets))
	}

	replicated := BimaxNaive(sets)
	if merge {
		replicated = GreedyMerge(replicated)
	}
	weighted := DiscoverEntities(w, merge)

	repl := renderReplicated(replicated, toDistinct)
	wtd := renderWeighted(weighted)
	if repl != wtd {
		t.Fatalf("%s: weighted discovery diverges from replicated\nreplicated:\n%s\nweighted:\n%s", label, repl, wtd)
	}
}

// topLevelKeySets extracts each map-shaped record's top-level key set,
// interning names in sorted order for determinism.
func topLevelKeySets(records []dataset.Record, d *Dict) []KeySet {
	var sets []KeySet
	for _, rec := range records {
		obj, ok := rec.Value.(map[string]any)
		if !ok {
			continue
		}
		names := make([]string, 0, len(obj))
		for k := range obj {
			names = append(names, k)
		}
		sort.Strings(names)
		sets = append(sets, KeySetOf(d, names...))
	}
	return sets
}

// TestWeightedMatchesReplicatedOnDatasets pins the weighted-dedup contract
// on every registry dataset: entity discovery over distinct (set, weight)
// pairs is byte-equal to discovery over one key set per record, with and
// without GreedyMerge.
func TestWeightedMatchesReplicatedOnDatasets(t *testing.T) {
	for _, g := range dataset.Registry() {
		records := g.Generate(300, 1)
		d := NewDict()
		sets := topLevelKeySets(records, d)
		if len(sets) == 0 {
			t.Fatalf("%s: no map-shaped records", g.Name)
		}
		for _, merge := range []bool{false, true} {
			checkWeightedEquivalence(t, fmt.Sprintf("%s merge=%v", g.Name, merge), sets, merge)
		}
	}
}

// TestWeightedMatchesReplicatedRandom crosses the indexMinSets threshold
// with randomized bags so both the reference and indexed clustering paths
// are exercised under dedup.
func TestWeightedMatchesReplicatedRandom(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		sets := randomBag(r, r.Intn(250))
		for _, merge := range []bool{false, true} {
			checkWeightedEquivalence(t, fmt.Sprintf("trial %d merge=%v", trial, merge), sets, merge)
		}
	}
}

func TestDedupKeySets(t *testing.T) {
	a, b, c := ks(1), ks(2, 3), ks(1)
	w, toDistinct := DedupKeySets([]KeySet{a, b, c, b, KeySet{}, a})
	if len(w.Sets) != 3 {
		t.Fatalf("distinct = %d, want 3", len(w.Sets))
	}
	// First-appearance order: {1}, {2,3}, {}.
	if !w.Sets[0].Equal(a) || !w.Sets[1].Equal(b) || !w.Sets[2].Empty() {
		t.Fatalf("sets = %v", w.Sets)
	}
	wantW := []int{3, 2, 1}
	for i, want := range wantW {
		if w.Weights[i] != want {
			t.Fatalf("weights = %v, want %v", w.Weights, wantW)
		}
	}
	wantMap := []int{0, 1, 0, 1, 2, 0}
	for i, want := range wantMap {
		if toDistinct[i] != want {
			t.Fatalf("toDistinct = %v, want %v", toDistinct, wantMap)
		}
	}
	if w.Records() != 6 {
		t.Fatalf("Records() = %d", w.Records())
	}
}

func TestFeatureSetWeighted(t *testing.T) {
	fs := NewFeatureSet(Sparse)
	fs.AddNamesN([]string{"a", "b"}, 5)
	fs.AddNamesN([]string{"a"}, 2)
	fs.AddNames([]string{"a", "b"})
	w := fs.Weighted()
	if len(w.Sets) != 2 || w.Weights[0] != 6 || w.Weights[1] != 2 {
		t.Fatalf("weighted view = %+v", w)
	}
	if fs.Total() != 8 || fs.Distinct() != 2 {
		t.Fatalf("Total=%d Distinct=%d", fs.Total(), fs.Distinct())
	}
}
