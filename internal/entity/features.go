package entity

// Feature-vector encodings (§6.4). A feature vector records which paths
// appear in one record (or one unnested collection element). JXPLAIN
// defaults to a sparse encoding; a dense bitset encoding is faster and
// smaller when most fields are mandatory. FeatureSet deduplicates vectors
// — entity discovery only needs the distinct key sets with multiplicities —
// and accounts for memory so the Figure 5 experiment can compare encodings
// and the nested-collection pruning optimization.

// Encoding selects the feature-vector storage strategy.
type Encoding uint8

// The two feature-vector encodings.
const (
	Sparse Encoding = iota
	Dense
)

func (e Encoding) String() string {
	if e == Dense {
		return "dense"
	}
	return "sparse"
}

// FeatureSet is a deduplicated multiset of feature vectors over a shared
// dictionary.
type FeatureSet struct {
	Dict     *Dict
	Encoding Encoding

	sets   []KeySet
	counts []int
	index  map[string]int
}

// NewFeatureSet returns an empty feature set using the given encoding for
// memory accounting (the logical content is encoding-independent).
func NewFeatureSet(enc Encoding) *FeatureSet {
	return &FeatureSet{Dict: NewDict(), Encoding: enc, index: map[string]int{}}
}

// AddNames inserts the feature vector for a record's path names.
func (f *FeatureSet) AddNames(names []string) {
	f.Add(KeySetOf(f.Dict, names...))
}

// AddNamesN inserts n occurrences of the feature vector for a record
// type's path names — one canonicalization for the whole multiplicity, so
// folding a deduplicated bag costs O(distinct types), not O(records).
func (f *FeatureSet) AddNamesN(names []string, n int) {
	f.AddN(KeySetOf(f.Dict, names...), n)
}

// Add inserts one occurrence of the key set.
func (f *FeatureSet) Add(s KeySet) { f.AddN(s, 1) }

// AddN inserts n occurrences of the key set.
func (f *FeatureSet) AddN(s KeySet, n int) {
	c := s.Canon()
	if i, ok := f.index[c]; ok {
		f.counts[i] += n
		return
	}
	f.index[c] = len(f.sets)
	f.sets = append(f.sets, s)
	f.counts = append(f.counts, n)
}

// Distinct returns the number of distinct feature vectors.
func (f *FeatureSet) Distinct() int { return len(f.sets) }

// Total returns the number of records folded in.
func (f *FeatureSet) Total() int {
	n := 0
	for _, c := range f.counts {
		n += c
	}
	return n
}

// Sets returns the distinct key sets in insertion order.
func (f *FeatureSet) Sets() []KeySet { return f.sets }

// Weighted returns the deduplicated (set, weight) view of the feature
// set — the entity-discovery input. The returned slices share storage
// with the feature set; do not mutate them.
func (f *FeatureSet) Weighted() Weighted {
	return Weighted{Sets: f.sets, Weights: f.counts}
}

// Count returns the multiplicity of the i-th distinct vector.
func (f *FeatureSet) Count(i int) int { return f.counts[i] }

// IndexOf returns the position of the distinct vector equal to s, or -1.
func (f *FeatureSet) IndexOf(s KeySet) int {
	if i, ok := f.index[s.Canon()]; ok {
		return i
	}
	return -1
}

// MemoryBytes estimates the storage footprint of the distinct vectors
// under the configured encoding: sparse vectors cost one machine word per
// present feature; dense vectors cost one bit per dictionary feature,
// rounded up to words. Dictionary overhead is excluded (it is shared).
func (f *FeatureSet) MemoryBytes() int {
	const word = 8
	switch f.Encoding {
	case Dense:
		wordsPerVec := (f.Dict.Len() + 63) / 64
		return len(f.sets) * wordsPerVec * word
	default:
		total := 0
		for _, s := range f.sets {
			total += s.Len() * word
		}
		return total
	}
}

// SortBySizeDesc returns indices of the distinct vectors sorted by
// descending size (stable), the starting order of Bimax.
func (f *FeatureSet) SortBySizeDesc() []int {
	return sizeDescending(f.sets)
}
