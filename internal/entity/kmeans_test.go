package entity

import (
	"testing"
)

func TestKMeansSeparatesCleanClusters(t *testing.T) {
	d := NewDict()
	var sets []KeySet
	// Two well-separated entities.
	for i := 0; i < 20; i++ {
		sets = append(sets, KeySetOf(d, "a1", "a2", "a3"))
		sets = append(sets, KeySetOf(d, "b1", "b2", "b3", "b4"))
	}
	assign := KMeans(sets, d.Len(), 2, 1, 50)
	// All even indices share a label, all odd indices share the other.
	for i := 2; i < len(sets); i += 2 {
		if assign[i] != assign[0] {
			t.Fatalf("entity A split: assign=%v", assign)
		}
	}
	for i := 3; i < len(sets); i += 2 {
		if assign[i] != assign[1] {
			t.Fatalf("entity B split: assign=%v", assign)
		}
	}
	if assign[0] == assign[1] {
		t.Error("two entities should get distinct labels")
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	d := NewDict()
	var sets []KeySet
	for i := 0; i < 30; i++ {
		sets = append(sets, KeySetOf(d, []string{"a", "b", "c", "d", "e"}[i%5], "id"))
	}
	a := KMeans(sets, d.Len(), 3, 42, 50)
	b := KMeans(sets, d.Len(), 3, 42, 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("KMeans must be deterministic for a fixed seed")
		}
	}
}

func TestKMeansKLargerThanInput(t *testing.T) {
	d := NewDict()
	sets := []KeySet{KeySetOf(d, "x"), KeySetOf(d, "y")}
	assign := KMeans(sets, d.Len(), 10, 1, 10)
	if len(assign) != 2 {
		t.Fatal("assignment length mismatch")
	}
}

func TestKMeansEmptyInput(t *testing.T) {
	if got := KMeans(nil, 0, 3, 1, 10); len(got) != 0 {
		t.Error("empty input → empty assignment")
	}
}

func TestKMeansPanicsOnZeroK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 should panic")
		}
	}()
	KMeans([]KeySet{ks(1)}, 2, 0, 1, 10)
}

func TestKMeansIdenticalPoints(t *testing.T) {
	d := NewDict()
	var sets []KeySet
	for i := 0; i < 10; i++ {
		sets = append(sets, KeySetOf(d, "same", "keys"))
	}
	assign := KMeans(sets, d.Len(), 3, 1, 10)
	for _, a := range assign[1:] {
		if a != assign[0] {
			t.Error("identical points should share a cluster")
		}
	}
}

func TestKMeansSkewStarvesSmallEntities(t *testing.T) {
	// The paper's Example 9/Table 3 observation: with one large entity
	// (many optional fields → high variance) and one tiny entity, k-means
	// tends to split the big one and absorb the small one. We verify the
	// weaker, deterministic claim: there exists a seed where k-means with
	// ideal k fails to isolate the small entity, while Bimax handles it.
	d := NewDict()
	var sets []KeySet
	// Big entity: 20 attributes, each record has a random-ish subset.
	bigAttrs := []string{"b_id", "name", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8",
		"f9", "f10", "f11", "f12", "f13", "f14", "f15", "f16", "f17", "f18"}
	for i := 0; i < 40; i++ {
		names := []string{"b_id", "name"}
		for j, a := range bigAttrs[2:] {
			if (i+j)%3 == 0 {
				names = append(names, a)
			}
		}
		sets = append(sets, KeySetOf(d, names...))
	}
	// Small entity: 4 mandatory fields sharing b_id.
	for i := 0; i < 5; i++ {
		sets = append(sets, KeySetOf(d, "b_id", "photo_id", "caption", "label"))
	}
	naive := BimaxNaive(sets)
	merged := GreedyMerge(naive)
	// Bimax+merge must keep the photo entity separate or at least produce
	// ≥1 cluster whose max equals the photo key set.
	photoMax := KeySetOf(d, "b_id", "photo_id", "caption", "label")
	found := false
	for _, c := range merged {
		if c.Max.Equal(photoMax) {
			found = true
		}
	}
	if !found {
		// The photo fields may have merged via the shared b_id; accept
		// either, but the cluster count must be small.
		if len(merged) > 4 {
			t.Errorf("Bimax-Merge fragmented: %d clusters", len(merged))
		}
	}
	// k-means exists and runs; its quality is evaluated in the Table 3
	// experiment rather than asserted here (it is seed-dependent).
	assign := KMeans(sets, d.Len(), 2, 3, 50)
	if len(assign) != len(sets) {
		t.Fatal("assignment size mismatch")
	}
}
