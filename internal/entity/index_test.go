package entity

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomBag generates sets with clustered structure (a few "families"
// plus noise) so Bimax iterations see real sub/overlap/disjoint mixes,
// including duplicates and occasional empty sets.
func randomBag(r *rand.Rand, n int) []KeySet {
	families := 1 + r.Intn(4)
	sets := make([]KeySet, n)
	for i := range sets {
		if r.Intn(20) == 0 {
			sets[i] = KeySet{} // empty set: subset of everything
			continue
		}
		base := r.Intn(families) * 10
		var ids []int
		for b := 0; b < 10; b++ {
			if r.Intn(2) == 0 {
				ids = append(ids, base+b)
			}
		}
		if r.Intn(4) == 0 {
			ids = append(ids, 100+r.Intn(3)) // shared keys across families
		}
		if r.Intn(6) == 0 {
			ids = append(ids, 64*(1+r.Intn(3))) // cross word boundaries
		}
		sets[i] = NewKeySet(ids...)
	}
	return sets
}

func TestIndexPostings(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		sets := randomBag(r, 1+r.Intn(80))
		ix := NewIndex(sets)
		// Every posting entry's set contains the key; every set's keys
		// reach their posting lists; empties are tracked separately.
		counts := map[int]int{}
		for k, pl := range ix.postings {
			for _, id := range pl {
				if !sets[id].Contains(k) {
					t.Fatalf("posting[%d] holds set %d which lacks key %d", k, id, k)
				}
				counts[int(id)]++
			}
		}
		nEmpty := 0
		for id, s := range sets {
			if s.Empty() {
				nEmpty++
				continue
			}
			if counts[id] != s.Len() {
				t.Fatalf("set %d appears in %d posting lists, has %d keys", id, counts[id], s.Len())
			}
		}
		if len(ix.empties) != nEmpty {
			t.Fatalf("empties = %d, want %d", len(ix.empties), nEmpty)
		}
	}
}

func TestIndexCandidatesMatchIntersects(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		sets := randomBag(r, 1+r.Intn(60))
		ix := NewIndex(sets)
		dead := make([]bool, len(sets))
		for i := range dead {
			dead[i] = r.Intn(3) == 0
		}
		q := randomBag(r, 1)[0]
		got := ix.Candidates(q, func(id int32) bool { return !dead[id] }, nil)
		want := map[int]bool{}
		for id, s := range sets {
			if !dead[id] && (s.Intersects(q) || s.Empty()) {
				want[id] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("candidates %v, want %v (q=%v)", got, want, q.IDs())
		}
		for _, id := range got {
			if !want[int(id)] {
				t.Fatalf("unexpected candidate %d (q=%v)", id, q.IDs())
			}
			if !ix.Marked(int(id)) {
				t.Fatalf("candidate %d not marked", id)
			}
		}
	}
}

// clustersEqual compares cluster slices structurally, including order.
func clustersEqual(a, b []Cluster) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Max.Equal(b[i].Max) || len(a[i].Members) != len(b[i].Members) || a[i].Weight != b[i].Weight {
			return false
		}
		for j := range a[i].Members {
			if a[i].Members[j] != b[i].Members[j] {
				return false
			}
		}
	}
	return true
}

// TestBimaxIndexedMatchesRef pins the tentpole invariant: the posting-
// index Bimax loop is a pure reimplementation — order array and emitted
// clusters are identical to the quadratic reference on arbitrary input.
func TestBimaxIndexedMatchesRef(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sets := randomBag(r, r.Intn(200))

		refOrder := sizeDescending(sets)
		var refClusters []Cluster
		bimaxSortRef(sets, refOrder, &refClusters, nil)

		ixOrder := sizeDescending(sets)
		var ixClusters []Cluster
		bimaxSortIndexed(sets, ixOrder, &ixClusters, nil)

		for i := range refOrder {
			if refOrder[i] != ixOrder[i] {
				return false
			}
		}
		return clustersEqual(refClusters, ixClusters)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestGreedyMergeIndexedMatchesRef pins the indexed cover search to the
// rescanning reference across randomized clusterings.
func TestGreedyMergeIndexedMatchesRef(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sets := randomBag(r, r.Intn(150))
		naive := BimaxNaive(sets)

		ref := GreedyMergeRef(naive)
		cs := newCoverState(naive)
		indexed := greedyMerge(naive, cs.findCover)
		return clustersEqual(ref, indexed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFindCoverIndexedMatchesRef drives the two cover searches directly
// with adversarial active masks and repeated calls against the same state
// (exercising posting compaction and scratch reuse).
func TestFindCoverIndexedMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		sets := randomBag(r, 2+r.Intn(60))
		naive := BimaxNaive(sets)
		if len(naive) == 0 {
			continue
		}
		work := make([]Cluster, len(naive))
		copy(work, naive)
		active := make([]bool, len(naive))
		for i := range active {
			active[i] = r.Intn(4) != 0
		}
		cs := newCoverState(naive)
		for q := 0; q < 5; q++ {
			target := work[r.Intn(len(work))].Max
			if r.Intn(3) == 0 {
				target = target.Union(work[r.Intn(len(work))].Max)
			}
			refCover := findCoverRef(work, active, target)
			ixCover := cs.findCover(work, active, target)
			if len(refCover) != len(ixCover) {
				t.Fatalf("cover lengths differ: ref %v indexed %v", refCover, ixCover)
			}
			for i := range refCover {
				if refCover[i] != ixCover[i] {
					t.Fatalf("covers differ: ref %v indexed %v", refCover, ixCover)
				}
			}
			// Deactivate the cover like GreedyMerge would (monotone).
			for _, ci := range refCover {
				active[ci] = false
			}
		}
	}
}

func TestTransposeParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		sets := randomBag(r, r.Intn(300))
		dim := 0
		for _, s := range sets {
			if n := len(s) * wordBits; n > dim {
				dim = n
			}
		}
		dim += r.Intn(5) // some trailing never-present columns
		serial := Transpose(sets, dim)
		for _, workers := range []int{0, 1, 2, 4, 7} {
			par := TransposeParallel(sets, dim, workers)
			if len(par) != len(serial) {
				t.Fatalf("workers=%d: %d cols, want %d", workers, len(par), len(serial))
			}
			for c := range serial {
				if !serial[c].Equal(par[c]) {
					t.Fatalf("workers=%d col %d: %v != %v", workers, c, par[c], serial[c])
				}
			}
		}
	}
}

func TestTransposeStripesAligned(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		for _, w := range []int{1, 2, 3, 8} {
			stripes := transposeStripes(n, w)
			covered := 0
			for i, st := range stripes {
				if st[0]%wordBits != 0 {
					t.Fatalf("n=%d w=%d stripe %d starts at %d (unaligned)", n, w, i, st[0])
				}
				if st[0] != covered {
					t.Fatalf("n=%d w=%d stripe %d gap", n, w, i)
				}
				covered = st[1]
			}
			if n > 0 && covered != n {
				t.Fatalf("n=%d w=%d covered %d", n, w, covered)
			}
		}
	}
}

func BenchmarkBimaxNaive(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	sets := randomBag(r, 2000)
	b.Run("ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BimaxNaiveRef(sets)
		}
	})
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BimaxNaive(sets)
		}
	})
}
