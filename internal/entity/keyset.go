// Package entity implements JXPLAIN's multi-entity discovery (Section 6):
// the Bimax bi-clustering order (Algorithm 6), the naive Bimax clustering
// (Algorithm 7), the GreedyMerge coalescing step (Algorithm 8), a k-means
// baseline used in the Table 3 comparison, and the sparse/dense feature-
// vector encodings of §6.4.
//
// Entity discovery operates on key sets: the set of field names (or array
// indices) present in each tuple-like record at one path. Keys are
// interned into integer ids through a Dict, and key sets are stored as
// bitsets over those ids, so the set operations Bimax and GreedyMerge hammer
// (subset, intersect, union, minus) are word-parallel AND/OR/ANDNOT plus
// popcount instead of O(k) sorted-slice walks.
package entity

import (
	"math/bits"
	"sort"
)

// KeySet is a set of interned key ids stored as a bitset: word w bit b
// holds id w*64+b. The representation is normalized — no trailing zero
// words — so equal sets are equal slices and Canon is well-defined. The
// zero value (nil) is the empty set.
type KeySet []uint64

const wordBits = 64

// NewKeySet returns a KeySet from arbitrary ids (duplicates collapse).
// Negative ids panic.
func NewKeySet(ids ...int) KeySet {
	if len(ids) == 0 {
		return KeySet{}
	}
	max := 0
	for _, id := range ids {
		if id < 0 {
			panic("entity: negative key id")
		}
		if id > max {
			max = id
		}
	}
	s := make(KeySet, max/wordBits+1)
	for _, id := range ids {
		s[id/wordBits] |= 1 << (uint(id) % wordBits)
	}
	return s
}

// KeySetOf interns names into d and returns their KeySet.
func KeySetOf(d *Dict, names ...string) KeySet {
	ids := make([]int, len(names))
	for i, n := range names {
		ids[i] = d.ID(n)
	}
	return NewKeySet(ids...)
}

// trim drops trailing zero words, restoring the normalization invariant.
//
//jx:hotpath
func (s KeySet) trim() KeySet {
	n := len(s)
	for n > 0 && s[n-1] == 0 {
		n--
	}
	return s[:n]
}

// Len returns the set's cardinality.
//
//jx:hotpath
func (s KeySet) Len() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s KeySet) Empty() bool { return len(s) == 0 }

// Each calls fn for every id in the set in ascending order.
//
//jx:hotpath
func (s KeySet) Each(fn func(id int)) {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// IDs returns the set's ids in ascending order.
func (s KeySet) IDs() []int {
	out := make([]int, 0, s.Len())
	s.Each(func(id int) { out = append(out, id) })
	return out
}

// Clone returns an independent copy of the set.
func (s KeySet) Clone() KeySet {
	return append(KeySet(nil), s...)
}

// Names maps the set back to sorted key names via d.
func (s KeySet) Names(d *Dict) []string {
	out := make([]string, 0, s.Len())
	s.Each(func(id int) { out = append(out, d.Name(id)) })
	sort.Strings(out)
	return out
}

// Contains reports whether id is in the set.
//
//jx:hotpath
func (s KeySet) Contains(id int) bool {
	if id < 0 || id/wordBits >= len(s) {
		return false
	}
	return s[id/wordBits]&(1<<(uint(id)%wordBits)) != 0
}

// SubsetOf reports whether s ⊆ t.
//
//jx:hotpath
func (s KeySet) SubsetOf(t KeySet) bool {
	if len(s) > len(t) {
		return false // normalization: a longer set has a higher id
	}
	for i, w := range s {
		if w&^t[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ t ≠ ∅.
//
//jx:hotpath
func (s KeySet) Intersects(t KeySet) bool {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	for i := 0; i < n; i++ {
		if s[i]&t[i] != 0 {
			return true
		}
	}
	return false
}

// Union returns s ∪ t as a new set.
//
//jx:hotpath
func (s KeySet) Union(t KeySet) KeySet {
	long, short := s, t
	if len(short) > len(long) {
		long, short = short, long
	}
	out := make(KeySet, len(long))
	copy(out, long)
	for i, w := range short {
		out[i] |= w
	}
	return out
}

// Intersect returns s ∩ t as a new set.
//
//jx:hotpath
func (s KeySet) Intersect(t KeySet) KeySet {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	out := make(KeySet, n)
	for i := 0; i < n; i++ {
		out[i] = s[i] & t[i]
	}
	return out.trim()
}

// Minus returns s − t as a new set.
//
//jx:hotpath
func (s KeySet) Minus(t KeySet) KeySet {
	out := make(KeySet, len(s))
	for i, w := range s {
		if i < len(t) {
			w &^= t[i]
		}
		out[i] = w
	}
	return out.trim()
}

// IntersectCount returns |s ∩ t|.
//
//jx:hotpath
func (s KeySet) IntersectCount(t KeySet) int {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	count := 0
	for i := 0; i < n; i++ {
		count += bits.OnesCount64(s[i] & t[i])
	}
	return count
}

// Equal reports set equality.
//
//jx:hotpath
func (s KeySet) Equal(t KeySet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Canon returns a canonical string key for map usage: the little-endian
// bytes of the normalized words.
//
//jx:hotpath
func (s KeySet) Canon() string {
	buf := make([]byte, 0, len(s)*8)
	for _, w := range s {
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(w>>(8*i)))
		}
	}
	//jx:lint-ignore hotpathalloc the string conversion IS the product: one allocation per distinct key set, amortized by caller-side memoization
	return string(buf)
}

// Jaccard returns the Jaccard index |s∩t| / |s∪t| (1 for two empty sets).
//
//jx:hotpath
func (s KeySet) Jaccard(t KeySet) float64 {
	inter := s.IntersectCount(t)
	union := s.Len() + t.Len() - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
