// Package entity implements JXPLAIN's multi-entity discovery (Section 6):
// the Bimax bi-clustering order (Algorithm 6), the naive Bimax clustering
// (Algorithm 7), the GreedyMerge coalescing step (Algorithm 8), a k-means
// baseline used in the Table 3 comparison, and the sparse/dense feature-
// vector encodings of §6.4.
//
// Entity discovery operates on key sets: the set of field names (or array
// indices) present in each tuple-like record at one path. Keys are
// interned into integer ids through a Dict so set operations are cheap.
package entity

import "sort"

// Dict interns key names to dense integer ids.
type Dict struct {
	ids   map[string]int
	names []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict { return &Dict{ids: map[string]int{}} }

// ID returns the id for name, assigning the next id on first use.
func (d *Dict) ID(name string) int {
	if id, ok := d.ids[name]; ok {
		return id
	}
	id := len(d.names)
	d.ids[name] = id
	d.names = append(d.names, name)
	return id
}

// Lookup returns the id for name without assigning, with ok=false if absent.
func (d *Dict) Lookup(name string) (int, bool) {
	id, ok := d.ids[name]
	return id, ok
}

// Name returns the name for id.
func (d *Dict) Name(id int) string { return d.names[id] }

// Len returns the number of interned names.
func (d *Dict) Len() int { return len(d.names) }

// KeySet is a sorted set of interned key ids.
type KeySet []int

// NewKeySet returns a KeySet from arbitrary ids (sorted, deduplicated).
func NewKeySet(ids ...int) KeySet {
	if len(ids) == 0 {
		return KeySet{}
	}
	cp := append([]int(nil), ids...)
	sort.Ints(cp)
	out := cp[:1]
	for _, id := range cp[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return KeySet(out)
}

// KeySetOf interns names into d and returns their KeySet.
func KeySetOf(d *Dict, names ...string) KeySet {
	ids := make([]int, len(names))
	for i, n := range names {
		ids[i] = d.ID(n)
	}
	return NewKeySet(ids...)
}

// Names maps the set back to sorted key names via d.
func (s KeySet) Names(d *Dict) []string {
	out := make([]string, len(s))
	for i, id := range s {
		out[i] = d.Name(id)
	}
	sort.Strings(out)
	return out
}

// Contains reports whether id is in the set.
func (s KeySet) Contains(id int) bool {
	i := sort.SearchInts(s, id)
	return i < len(s) && s[i] == id
}

// SubsetOf reports whether s ⊆ t.
func (s KeySet) SubsetOf(t KeySet) bool {
	if len(s) > len(t) {
		return false
	}
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			i++
			j++
		case s[i] > t[j]:
			j++
		default:
			return false
		}
	}
	return i == len(s)
}

// Intersects reports whether s ∩ t ≠ ∅.
func (s KeySet) Intersects(t KeySet) bool {
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			return true
		case s[i] < t[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Union returns s ∪ t as a new set.
func (s KeySet) Union(t KeySet) KeySet {
	out := make(KeySet, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) || j < len(t) {
		switch {
		case j >= len(t) || (i < len(s) && s[i] < t[j]):
			out = append(out, s[i])
			i++
		case i >= len(s) || s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Minus returns s − t as a new set.
func (s KeySet) Minus(t KeySet) KeySet {
	out := make(KeySet, 0, len(s))
	i, j := 0, 0
	for i < len(s) {
		switch {
		case j >= len(t) || s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			j++
		default:
			i++
			j++
		}
	}
	return out
}

// IntersectCount returns |s ∩ t|.
func (s KeySet) IntersectCount(t KeySet) int {
	n, i, j := 0, 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			n++
			i++
			j++
		case s[i] < t[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// Equal reports set equality.
func (s KeySet) Equal(t KeySet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Canon returns a canonical string key for map usage.
func (s KeySet) Canon() string {
	buf := make([]byte, 0, len(s)*3)
	for _, id := range s {
		for id >= 128 {
			buf = append(buf, byte(id&0x7f)|0x80)
			id >>= 7
		}
		buf = append(buf, byte(id))
	}
	return string(buf)
}

// Jaccard returns the Jaccard index |s∩t| / |s∪t| (1 for two empty sets).
func (s KeySet) Jaccard(t KeySet) float64 {
	inter := s.IntersectCount(t)
	union := len(s) + len(t) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
