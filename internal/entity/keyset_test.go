package entity

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func ks(ids ...int) KeySet { return NewKeySet(ids...) }

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.ID("alpha")
	b := d.ID("beta")
	if a == b {
		t.Error("distinct names must get distinct ids")
	}
	if d.ID("alpha") != a {
		t.Error("repeated name must get the same id")
	}
	if d.Name(a) != "alpha" || d.Name(b) != "beta" {
		t.Error("Name lookup broken")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	if id, ok := d.Lookup("alpha"); !ok || id != a {
		t.Error("Lookup broken")
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Error("Lookup of unknown name should fail")
	}
}

func TestDictSnapshot(t *testing.T) {
	d := NewDict()
	a := d.ID("alpha")
	snap := d.Snapshot()
	b := d.ID("beta") // mutate after the snapshot

	if snap.Len() != 1 {
		t.Errorf("snapshot Len = %d, want 1", snap.Len())
	}
	if id, ok := snap.Lookup("alpha"); !ok || id != a {
		t.Error("snapshot Lookup broken")
	}
	if _, ok := snap.Lookup("beta"); ok {
		t.Error("snapshot must not see names interned after it was taken")
	}
	if snap.Name(a) != "alpha" {
		t.Error("snapshot Name broken")
	}
	if d.Len() != 2 || d.Name(b) != "beta" {
		t.Error("snapshot must not disturb the live dict")
	}
}

func TestNewKeySetDedups(t *testing.T) {
	s := ks(5, 1, 3, 1, 5)
	if !s.Equal(ks(1, 3, 5)) {
		t.Errorf("got %v", s.IDs())
	}
	if s.Len() != 3 {
		t.Errorf("duplicates must collapse: Len = %d", s.Len())
	}
	if ks().Len() != 0 || !ks().Empty() {
		t.Error("empty set")
	}
}

func TestKeySetOfAndNames(t *testing.T) {
	d := NewDict()
	s := KeySetOf(d, "z", "a", "m", "a")
	if s.Len() != 3 {
		t.Fatalf("got %v", s.IDs())
	}
	names := s.Names(d)
	if names[0] != "a" || names[1] != "m" || names[2] != "z" {
		t.Errorf("Names = %v", names)
	}
}

func TestSetOps(t *testing.T) {
	a := ks(1, 2, 3)
	b := ks(2, 3, 4)
	c := ks(5, 6)
	if !ks(2, 3).SubsetOf(a) || a.SubsetOf(ks(2, 3)) {
		t.Error("SubsetOf broken")
	}
	if !a.SubsetOf(a) {
		t.Error("a ⊆ a")
	}
	if !ks().SubsetOf(a) {
		t.Error("∅ ⊆ a")
	}
	if !ks().SubsetOf(ks()) {
		t.Error("∅ ⊆ ∅")
	}
	if !a.Intersects(b) || a.Intersects(c) {
		t.Error("Intersects broken")
	}
	if a.Intersects(ks()) || ks().Intersects(a) {
		t.Error("nothing intersects the empty set")
	}
	if !a.Union(b).Equal(ks(1, 2, 3, 4)) {
		t.Errorf("Union = %v", a.Union(b).IDs())
	}
	if !a.Minus(b).Equal(ks(1)) {
		t.Errorf("Minus = %v", a.Minus(b).IDs())
	}
	if a.IntersectCount(b) != 2 || a.IntersectCount(c) != 0 {
		t.Error("IntersectCount broken")
	}
	if !a.Contains(2) || a.Contains(9) || a.Contains(-1) {
		t.Error("Contains broken")
	}
}

// TestWideKeySets exercises ids beyond word 0 — the boundary bitsets make
// easy to get wrong.
func TestWideKeySets(t *testing.T) {
	wide := ks(0, 63, 64, 65, 127, 128, 500)
	if wide.Len() != 7 {
		t.Fatalf("Len = %d", wide.Len())
	}
	for _, id := range []int{0, 63, 64, 65, 127, 128, 500} {
		if !wide.Contains(id) {
			t.Errorf("missing id %d", id)
		}
	}
	for _, id := range []int{1, 62, 66, 129, 499, 501, 5000} {
		if wide.Contains(id) {
			t.Errorf("spurious id %d", id)
		}
	}
	got := wide.IDs()
	want := []int{0, 63, 64, 65, 127, 128, 500}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v", got)
		}
	}
	// Cross-word subset and minus.
	if !ks(64, 500).SubsetOf(wide) || ks(64, 501).SubsetOf(wide) {
		t.Error("cross-word SubsetOf broken")
	}
	if !wide.Minus(ks(500)).Equal(ks(0, 63, 64, 65, 127, 128)) {
		t.Error("Minus must trim trailing zero words")
	}
	// A narrow set is never a superset of a wider one.
	if wide.SubsetOf(ks(0, 63)) {
		t.Error("wide ⊄ narrow")
	}
	if !ks(0, 63).SubsetOf(wide) {
		t.Error("narrow ⊆ wide")
	}
}

// TestNormalization: operations whose result drops high ids must trim
// trailing zero words so Equal and Canon stay representation-independent.
func TestNormalization(t *testing.T) {
	a := ks(1, 200)
	dropped := a.Minus(ks(200))
	if !dropped.Equal(ks(1)) {
		t.Errorf("Minus result not normalized: %v words", len(dropped))
	}
	if dropped.Canon() != ks(1).Canon() {
		t.Error("Canon differs between equal sets")
	}
	empty := a.Minus(a)
	if !empty.Empty() || !empty.Equal(ks()) || empty.Canon() != ks().Canon() {
		t.Error("s − s must be the canonical empty set")
	}
}

func TestJaccard(t *testing.T) {
	if got := ks(1, 2).Jaccard(ks(2, 3)); got != 1.0/3 {
		t.Errorf("Jaccard = %v", got)
	}
	if ks().Jaccard(ks()) != 1 {
		t.Error("two empty sets have Jaccard 1")
	}
	if ks(1).Jaccard(ks()) != 0 {
		t.Error("disjoint Jaccard 0")
	}
	if ks(1, 200).Jaccard(ks(1, 200)) != 1 {
		t.Error("identical wide sets have Jaccard 1")
	}
}

func TestCanonDistinguishesSets(t *testing.T) {
	pairs := [][2]KeySet{
		{ks(1, 2), ks(12)},
		{ks(63), ks(64)},
		{ks(64, 1), ks(65)},
		{ks(), ks(0)},
		{ks(1000), ks(1, 1000)},
	}
	for _, p := range pairs {
		if p[0].Canon() == p[1].Canon() {
			t.Errorf("canon collision: %v vs %v", p[0].IDs(), p[1].IDs())
		}
	}
	if ks(3, 900).Canon() != ks(900, 3).Canon() {
		t.Error("canon must be order-insensitive (sets are sets)")
	}
}

func randomKeySet(r *rand.Rand, maxID int) KeySet {
	n := r.Intn(8)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = r.Intn(maxID)
	}
	return NewKeySet(ids...)
}

// refSet is the map-based reference model the bitset is checked against.
func refSet(s KeySet) map[int]bool {
	m := map[int]bool{}
	s.Each(func(id int) { m[id] = true })
	return m
}

// TestSetOpsProperties property-checks the bitset operations against the
// reference model, drawing ids across several words (maxID 200 spans word
// boundaries) so cross-word carries and trailing-word trims are hit.
func TestSetOpsProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		maxID := 8 + r.Intn(200) // sometimes single-word, sometimes several
		a := randomKeySet(r, maxID)
		b := randomKeySet(r, maxID)
		ra, rb := refSet(a), refSet(b)

		// Union/Minus/IntersectCount against the model.
		u := a.Union(b)
		ru := refSet(u)
		if len(ru) != len(ra)+len(rb)-a.IntersectCount(b) {
			return false
		}
		for id := range ra {
			if !u.Contains(id) {
				return false
			}
		}
		for id := range rb {
			if !u.Contains(id) {
				return false
			}
		}
		m := a.Minus(b)
		for id := range refSet(m) {
			if !ra[id] || rb[id] {
				return false
			}
		}
		if m.Len() != a.Len()-a.IntersectCount(b) {
			return false
		}

		// Symmetry: intersect and Jaccard are commutative.
		if a.IntersectCount(b) != b.IntersectCount(a) {
			return false
		}
		if a.Intersects(b) != b.Intersects(a) {
			return false
		}
		if a.Jaccard(b) != b.Jaccard(a) {
			return false
		}

		// Subset is antisymmetric up to equality, and agrees with Union.
		if a.SubsetOf(b) && b.SubsetOf(a) && !a.Equal(b) {
			return false
		}
		if a.SubsetOf(b) != a.Union(b).Equal(b) {
			return false
		}
		// a, b ⊆ a∪b; (a−b) ∩ b = ∅.
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			return false
		}
		if a.Minus(b).Intersects(b) {
			return false
		}

		// Canon round-trip: equal canon ⇔ equal sets.
		c := randomKeySet(r, maxID)
		return (a.Canon() == c.Canon()) == a.Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestClone(t *testing.T) {
	a := ks(1, 64, 130)
	c := a.Clone()
	if !c.Equal(a) {
		t.Fatal("clone differs")
	}
	c[0] = 0 // mutate the copy
	if !a.Contains(1) {
		t.Error("mutating a clone must not affect the original")
	}
}
