package entity

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func ks(ids ...int) KeySet { return NewKeySet(ids...) }

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.ID("alpha")
	b := d.ID("beta")
	if a == b {
		t.Error("distinct names must get distinct ids")
	}
	if d.ID("alpha") != a {
		t.Error("repeated name must get the same id")
	}
	if d.Name(a) != "alpha" || d.Name(b) != "beta" {
		t.Error("Name lookup broken")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	if id, ok := d.Lookup("alpha"); !ok || id != a {
		t.Error("Lookup broken")
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Error("Lookup of unknown name should fail")
	}
}

func TestNewKeySetSortsAndDedups(t *testing.T) {
	s := ks(5, 1, 3, 1, 5)
	if !s.Equal(ks(1, 3, 5)) {
		t.Errorf("got %v", s)
	}
	if len(ks()) != 0 {
		t.Error("empty set")
	}
}

func TestKeySetOfAndNames(t *testing.T) {
	d := NewDict()
	s := KeySetOf(d, "z", "a", "m", "a")
	if len(s) != 3 {
		t.Fatalf("got %v", s)
	}
	names := s.Names(d)
	if names[0] != "a" || names[1] != "m" || names[2] != "z" {
		t.Errorf("Names = %v", names)
	}
}

func TestSetOps(t *testing.T) {
	a := ks(1, 2, 3)
	b := ks(2, 3, 4)
	c := ks(5, 6)
	if !ks(2, 3).SubsetOf(a) || a.SubsetOf(ks(2, 3)) {
		t.Error("SubsetOf broken")
	}
	if !a.SubsetOf(a) {
		t.Error("a ⊆ a")
	}
	if !ks().SubsetOf(a) {
		t.Error("∅ ⊆ a")
	}
	if !a.Intersects(b) || a.Intersects(c) {
		t.Error("Intersects broken")
	}
	if !a.Union(b).Equal(ks(1, 2, 3, 4)) {
		t.Errorf("Union = %v", a.Union(b))
	}
	if !a.Minus(b).Equal(ks(1)) {
		t.Errorf("Minus = %v", a.Minus(b))
	}
	if a.IntersectCount(b) != 2 || a.IntersectCount(c) != 0 {
		t.Error("IntersectCount broken")
	}
	if !a.Contains(2) || a.Contains(9) {
		t.Error("Contains broken")
	}
}

func TestJaccard(t *testing.T) {
	if got := ks(1, 2).Jaccard(ks(2, 3)); got != 1.0/3 {
		t.Errorf("Jaccard = %v", got)
	}
	if ks().Jaccard(ks()) != 1 {
		t.Error("two empty sets have Jaccard 1")
	}
	if ks(1).Jaccard(ks()) != 0 {
		t.Error("disjoint Jaccard 0")
	}
}

func TestCanonDistinguishesSets(t *testing.T) {
	// Exercise the varint encoding across the 1-byte boundary.
	pairs := [][2]KeySet{
		{ks(1, 2), ks(12)},
		{ks(127), ks(128)},
		{ks(128, 1), ks(129)},
		{ks(), ks(0)},
		{ks(1000), ks(1, 1000)},
	}
	for _, p := range pairs {
		if p[0].Canon() == p[1].Canon() {
			t.Errorf("canon collision: %v vs %v", p[0], p[1])
		}
	}
	if ks(3, 900).Canon() != ks(900, 3).Canon() {
		t.Error("canon must be order-insensitive (sets are sorted)")
	}
}

func randomKeySet(r *rand.Rand, maxID int) KeySet {
	n := r.Intn(8)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = r.Intn(maxID)
	}
	return NewKeySet(ids...)
}

func TestSetOpsProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomKeySet(r, 20)
		b := randomKeySet(r, 20)
		u := a.Union(b)
		// a, b ⊆ a∪b; (a−b) ∩ b = ∅; |a∩b| + |a−b| = |a|.
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			return false
		}
		if a.Minus(b).Intersects(b) {
			return false
		}
		if a.IntersectCount(b)+len(a.Minus(b)) != len(a) {
			return false
		}
		// Subset ⇒ union is the superset.
		if a.SubsetOf(b) && !a.Union(b).Equal(b) {
			return false
		}
		// Canon round-trip: equal canon ⇔ equal sets.
		c := randomKeySet(r, 20)
		return (a.Canon() == c.Canon()) == a.Equal(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
