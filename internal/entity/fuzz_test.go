package entity

import (
	"sort"
	"testing"
)

// FuzzKeySet model-checks the bitset against a map-of-ids reference: the
// fuzz input is a little program of (op, id) byte pairs mutating two sets,
// and after every step each KeySet observer (Len, Contains, IDs, SubsetOf,
// Intersects, IntersectCount, Equal, Canon, Jaccard) must agree with the
// same question asked of the model, and the normalization invariant (no
// trailing zero words) must survive via a NewKeySet round-trip.
func FuzzKeySet(f *testing.F) {
	f.Add([]byte{0, 3, 1, 66, 2, 0, 3, 0})
	f.Add([]byte{0, 0, 0, 63, 0, 64, 0, 255, 1, 64, 3, 0, 2, 0})
	f.Add([]byte{1, 200, 3, 1, 2, 2})
	f.Fuzz(func(t *testing.T, program []byte) {
		sets := [2]KeySet{NewKeySet(), NewKeySet()}
		models := [2]map[int]bool{{}, {}}
		for i := 0; i+1 < len(program); i += 2 {
			op, id := program[i]%4, int(program[i+1])
			switch op {
			case 0: // rebuild set 0 with id added, exercising NewKeySet
				models[0][id] = true
				sets[0] = NewKeySet(modelIDs(models[0])...)
			case 1: // add id to set 1 through a singleton union
				models[1][id] = true
				sets[1] = sets[1].Union(NewKeySet(id))
			case 2: // set 0 ∪= set 1
				for k := range models[1] {
					models[0][k] = true
				}
				sets[0] = sets[0].Union(sets[1])
			case 3: // set 0 −= set 1
				for k := range models[1] {
					delete(models[0], k)
				}
				sets[0] = sets[0].Minus(sets[1])
			}
			checkAgainstModel(t, sets, models)
		}
	})
}

func modelIDs(m map[int]bool) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func checkAgainstModel(t *testing.T, sets [2]KeySet, models [2]map[int]bool) {
	t.Helper()
	for k := 0; k < 2; k++ {
		s, m := sets[k], models[k]
		if s.Len() != len(m) {
			t.Fatalf("set %d: Len %d, model %d", k, s.Len(), len(m))
		}
		want := modelIDs(m)
		got := s.IDs()
		if len(got) != len(want) {
			t.Fatalf("set %d: IDs %v, model %v", k, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("set %d: IDs %v, model %v", k, got, want)
			}
			if !s.Contains(want[i]) {
				t.Fatalf("set %d: Contains(%d) false, model true", k, want[i])
			}
		}
		if !NewKeySet(got...).Equal(s) {
			t.Fatalf("set %d not normalized: round-trip of %v diverges", k, got)
		}
		if s.Empty() != (len(m) == 0) {
			t.Fatalf("set %d: Empty %v, model size %d", k, s.Empty(), len(m))
		}
	}

	a, b := sets[0], sets[1]
	ma, mb := models[0], models[1]
	inter, union := 0, len(mb)
	subset, equal := true, len(ma) == len(mb)
	for id := range ma {
		if mb[id] {
			inter++
		} else {
			union++
			subset = false
		}
	}
	equal = equal && subset
	if got := a.SubsetOf(b); got != subset {
		t.Fatalf("SubsetOf %v, model %v (%v ⊆ %v)", got, subset, a.IDs(), b.IDs())
	}
	if got := a.Intersects(b); got != (inter > 0) {
		t.Fatalf("Intersects %v, model %v", got, inter > 0)
	}
	if got := a.IntersectCount(b); got != inter {
		t.Fatalf("IntersectCount %d, model %d", got, inter)
	}
	if got := a.Equal(b); got != equal {
		t.Fatalf("Equal %v, model %v", got, equal)
	}
	if got := a.Canon() == b.Canon(); got != equal {
		t.Fatalf("Canon equality %v, Equal %v", got, equal)
	}
	wantJ := 1.0
	if union > 0 {
		wantJ = float64(inter) / float64(union)
	}
	if got := a.Jaccard(b); got != wantJ {
		t.Fatalf("Jaccard %v, model %v", got, wantJ)
	}
}

// FuzzWeightedVsReplicated model-checks the weighted-dedup contract on
// arbitrary key-set bags: the fuzz input is consumed as (setShape, repeat)
// byte pairs — setShape seeds a small key set, repeat its multiplicity —
// and entity discovery over the replicated bag must render byte-identically
// to discovery over its DedupKeySets form, with and without GreedyMerge.
func FuzzWeightedVsReplicated(f *testing.F) {
	f.Add([]byte{3, 2, 7, 1, 3, 4, 0, 2})
	f.Add([]byte{255, 9, 1, 1, 255, 1, 128, 3, 64, 2})
	f.Add([]byte{5, 40, 6, 40, 7, 40}) // crosses indexMinSets
	f.Fuzz(func(t *testing.T, program []byte) {
		var sets []KeySet
		for i := 0; i+1 < len(program) && len(sets) < 300; i += 2 {
			shape, repeat := program[i], int(program[i+1])%8+1
			var ids []int
			for b := 0; b < 8; b++ {
				if shape&(1<<b) != 0 {
					// Spread bits across word boundaries occasionally.
					ids = append(ids, b*(1+int(shape)%17))
				}
			}
			s := NewKeySet(ids...)
			for r := 0; r < repeat; r++ {
				sets = append(sets, s)
			}
		}
		for _, merge := range []bool{false, true} {
			w, toDistinct := DedupKeySets(sets)
			replicated := BimaxNaive(sets)
			if merge {
				replicated = GreedyMerge(replicated)
			}
			weighted := DiscoverEntities(w, merge)
			repl := renderReplicated(replicated, toDistinct)
			wtd := renderWeighted(weighted)
			if repl != wtd {
				t.Fatalf("merge=%v: weighted diverges\nreplicated:\n%s\nweighted:\n%s", merge, repl, wtd)
			}
		}
	})
}
