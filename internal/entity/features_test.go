package entity

import "testing"

func TestFeatureSetDedup(t *testing.T) {
	f := NewFeatureSet(Sparse)
	f.AddNames([]string{"a", "b"})
	f.AddNames([]string{"b", "a"})
	f.AddNames([]string{"a"})
	if f.Distinct() != 2 || f.Total() != 3 {
		t.Errorf("distinct=%d total=%d", f.Distinct(), f.Total())
	}
	if f.Count(0) != 2 || f.Count(1) != 1 {
		t.Errorf("counts wrong")
	}
	ab := KeySetOf(f.Dict, "a", "b")
	if f.IndexOf(ab) != 0 {
		t.Error("IndexOf broken")
	}
	if f.IndexOf(KeySetOf(f.Dict, "zzz")) != -1 {
		t.Error("IndexOf of unknown set should be -1")
	}
}

func TestEncodingString(t *testing.T) {
	if Sparse.String() != "sparse" || Dense.String() != "dense" {
		t.Error("Encoding.String broken")
	}
}

func TestMemoryBytesSparseVsDense(t *testing.T) {
	// Few present features over a large dictionary: sparse wins.
	sparse := NewFeatureSet(Sparse)
	dense := NewFeatureSet(Dense)
	for i := 0; i < 500; i++ {
		sparse.Dict.ID(word(i))
		dense.Dict.ID(word(i))
	}
	for i := 0; i < 100; i++ {
		names := []string{word(i % 500), word((i + 7) % 500)}
		sparse.AddNames(names)
		dense.AddNames(names)
	}
	if sparse.MemoryBytes() >= dense.MemoryBytes() {
		t.Errorf("sparse (%d) should beat dense (%d) on a wide sparse domain",
			sparse.MemoryBytes(), dense.MemoryBytes())
	}

	// Most fields mandatory over a small dictionary: dense wins.
	sp2 := NewFeatureSet(Sparse)
	de2 := NewFeatureSet(Dense)
	names := make([]string, 30)
	for i := range names {
		names[i] = word(i)
	}
	for i := 0; i < 40; i++ {
		sp2.AddNames(append([]string{word(100 + i)}, names...))
		de2.AddNames(append([]string{word(100 + i)}, names...))
	}
	if de2.MemoryBytes() >= sp2.MemoryBytes() {
		t.Errorf("dense (%d) should beat sparse (%d) when fields are mandatory",
			de2.MemoryBytes(), sp2.MemoryBytes())
	}
}

func word(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	out := []byte{}
	for {
		out = append(out, letters[i%26])
		i /= 26
		if i == 0 {
			break
		}
	}
	return string(out)
}

func TestSortBySizeDesc(t *testing.T) {
	f := NewFeatureSet(Sparse)
	f.AddNames([]string{"a"})
	f.AddNames([]string{"a", "b", "c"})
	f.AddNames([]string{"a", "b"})
	order := f.SortBySizeDesc()
	sizes := []int{f.Sets()[order[0]].Len(), f.Sets()[order[1]].Len(), f.Sets()[order[2]].Len()}
	if sizes[0] != 3 || sizes[1] != 2 || sizes[2] != 1 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestFeatureSetEmptyVector(t *testing.T) {
	f := NewFeatureSet(Sparse)
	f.AddNames(nil)
	f.AddNames(nil)
	if f.Distinct() != 1 || f.Total() != 2 {
		t.Error("empty vectors should dedup")
	}
	if f.MemoryBytes() != 0 {
		t.Error("empty sparse vector costs nothing")
	}
}
