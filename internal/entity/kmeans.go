package entity

import "math/rand"

// KMeans clusters key sets into k groups using Lloyd's algorithm over
// binary presence vectors with Euclidean distance — the baseline of the
// Table 3 comparison. The paper notes this baseline needs the true k
// (unavailable in practice) and still starves small entities; it exists to
// reproduce that observation.
//
// dim is the feature-space dimensionality (Dict.Len()). The return value
// assigns each input set a cluster id in [0, k). Clustering is
// deterministic for a given seed.
func KMeans(sets []KeySet, dim, k int, seed int64, maxIter int) []int {
	if k <= 0 {
		panic("entity: KMeans with k <= 0")
	}
	assign := make([]int, len(sets))
	if len(sets) == 0 {
		return assign
	}
	if k > len(sets) {
		k = len(sets)
	}
	r := rand.New(rand.NewSource(seed))

	// k-means++ seeding over the binary vectors.
	centroids := make([][]float64, 0, k)
	first := r.Intn(len(sets))
	centroids = append(centroids, toVector(sets[first], dim))
	dists := make([]float64, len(sets))
	for len(centroids) < k {
		total := 0.0
		for i, s := range sets {
			d := distToNearest(s, centroids)
			dists[i] = d
			total += d
		}
		if total == 0 {
			// All points coincide with centroids; pick arbitrarily.
			centroids = append(centroids, toVector(sets[r.Intn(len(sets))], dim))
			continue
		}
		pick := r.Float64() * total
		idx := 0
		for i, d := range dists {
			pick -= d
			if pick <= 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, toVector(sets[idx], dim))
	}

	for iter := 0; iter < maxIter; iter++ {
		changed := false
		// Assignment step.
		for i, s := range sets {
			best, bestD := 0, sqDist(s, centroids[0])
			for c := 1; c < len(centroids); c++ {
				if d := sqDist(s, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Update step.
		counts := make([]int, len(centroids))
		for c := range centroids {
			for j := range centroids[c] {
				centroids[c][j] = 0
			}
		}
		for i, s := range sets {
			c := assign[i]
			counts[c]++
			s.Each(func(id int) {
				if id < len(centroids[c]) {
					centroids[c][id]++
				}
			})
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				centroids[c] = toVector(sets[r.Intn(len(sets))], dim)
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] /= float64(counts[c])
			}
		}
	}
	return assign
}

func toVector(s KeySet, dim int) []float64 {
	v := make([]float64, dim)
	s.Each(func(id int) {
		if id < dim {
			v[id] = 1
		}
	})
	return v
}

// sqDist computes the squared Euclidean distance between a binary key-set
// vector and a dense centroid without materializing the binary vector:
// Σ_j (x_j − c_j)² = Σ_{j∈s} (1 − c_j)² − c_j² + Σ_j c_j².
func sqDist(s KeySet, centroid []float64) float64 {
	d := 0.0
	for _, c := range centroid {
		d += c * c
	}
	s.Each(func(id int) {
		if id < len(centroid) {
			c := centroid[id]
			d += (1-c)*(1-c) - c*c
		} else {
			d += 1
		}
	})
	return d
}

func distToNearest(s KeySet, centroids [][]float64) float64 {
	best := sqDist(s, centroids[0])
	for _, c := range centroids[1:] {
		if d := sqDist(s, c); d < best {
			best = d
		}
	}
	return best
}
