package entity

import (
	"sort"
	"sync"
)

// Cluster is one discovered entity: a group of input key sets together
// with its maximal element (the union of all member key sets — for
// Bimax-Naive clusters this equals the seed k_max, since all members are
// subsets of the seed; GreedyMerge synthesizes larger maximal elements).
type Cluster struct {
	// Members holds indices into the key-set slice passed to BimaxNaive.
	Members []int
	// Max is the cluster's maximal element.
	Max KeySet
	// Weight is the total record multiplicity of the cluster's members
	// when the clustering ran over weighted (deduplicated) key sets; zero
	// when the input carried no weights. Clustering decisions never depend
	// on it — it exists so per-entity statistics reflect records, not
	// distinct key sets.
	Weight int
}

// indexMinSets is the input size below which the O(n²) reference loop
// beats building the posting index. Both paths produce identical output;
// the constant only trades constant factors.
const indexMinSets = 64

// Bimax implements Algorithm 6: reorder key sets so that similar sets are
// adjacent. Starting from a size-descending order, the algorithm repeatedly
// takes the largest unprocessed set k_max and stably partitions the
// remaining sets into subsets of k_max, overlapping sets, and disjoint
// sets, then advances past the subsets.
//
// The returned slice contains indices into sets, in Bimax order.
func Bimax(sets []KeySet) []int {
	order := sizeDescending(sets)
	bimaxSort(sets, order, nil, nil)
	return order
}

// BimaxNaive implements Algorithm 7: run the Bimax loop, emitting each
// iteration's subset group (the seed k_max and every remaining set
// contained in it) as one cluster.
func BimaxNaive(sets []KeySet) []Cluster {
	return BimaxNaiveWeighted(sets, nil)
}

// BimaxNaiveWeighted is BimaxNaive over deduplicated key sets carrying
// record multiplicities: weights[i] is the number of records whose key set
// is sets[i] (nil means unweighted). The clustering is identical to
// running BimaxNaive over the sets replicated weights[i] times — sizes,
// seeds, and tie-breaks depend only on the distinct sets and their order —
// but costs O(distinct) instead of O(records). Each cluster's Weight is
// the sum of its members' weights.
func BimaxNaiveWeighted(sets []KeySet, weights []int) []Cluster {
	order := sizeDescending(sets)
	var clusters []Cluster
	bimaxSort(sets, order, &clusters, weights)
	return clusters
}

// BimaxNaiveRef is the quadratic reference implementation of Algorithm 7,
// retained for differential tests and the entity scaling benchmark. Output
// is identical to BimaxNaive.
func BimaxNaiveRef(sets []KeySet) []Cluster {
	order := sizeDescending(sets)
	var clusters []Cluster
	bimaxSortRef(sets, order, &clusters, nil)
	return clusters
}

// sizeDescending returns the indices of sets ordered by descending set
// size; ties preserve input order (stable), keeping results deterministic.
func sizeDescending(sets []KeySet) []int {
	sizes := make([]int, len(sets))
	order := make([]int, len(sets))
	for i := range order {
		order[i] = i
		sizes[i] = sets[i].Len()
	}
	sort.SliceStable(order, func(a, b int) bool {
		return sizes[order[a]] > sizes[order[b]]
	})
	return order
}

// bimaxSort runs the shared loop of Algorithms 6 and 7 over order in
// place, choosing between the posting-index walk and the reference scan by
// input size. When clusters is non-nil, each iteration's subset group is
// appended to it as a Cluster (with Weight summed from weights when
// non-nil).
func bimaxSort(sets []KeySet, order []int, clusters *[]Cluster, weights []int) {
	if len(order) < indexMinSets {
		bimaxSortRef(sets, order, clusters, weights)
		return
	}
	bimaxSortIndexed(sets, order, clusters, weights)
}

// bimaxSortRef is the reference O(n²) partition loop: every iteration
// classifies every remaining set against the seed with bitset operations.
func bimaxSortRef(sets []KeySet, order []int, clusters *[]Cluster, weights []int) {
	for i := 0; i < len(order); {
		kmax := sets[order[i]]
		var sub, overlap, disjoint []int
		for _, idx := range order[i:] {
			k := sets[idx]
			switch {
			case k.SubsetOf(kmax):
				sub = append(sub, idx)
			case !k.Intersects(kmax):
				disjoint = append(disjoint, idx)
			default:
				overlap = append(overlap, idx)
			}
		}
		// Rearrange as sub < overlap < disjoint, preserving relative order.
		pos := i
		pos += copy(order[pos:], sub)
		pos += copy(order[pos:], overlap)
		copy(order[pos:], disjoint)
		if clusters != nil {
			*clusters = append(*clusters, Cluster{
				Members: append([]int(nil), sub...),
				Max:     kmax,
				Weight:  weightOf(sub, weights),
			})
		}
		i += len(sub)
	}
}

// bimaxSortIndexed is the sub-quadratic partition loop: the posting index
// yields only the sets sharing a key with the seed (plus empty sets, which
// are subsets of everything); everything else is disjoint and is neither
// tested nor moved. Only the window span up to the last candidate is
// rewritten per iteration, and only candidates pay a SubsetOf test, so
// iterations over mutually disjoint regions of the key space no longer
// touch each other at all. The resulting order — and the emitted clusters
// — are identical to bimaxSortRef.
func bimaxSortIndexed(sets []KeySet, order []int, clusters *[]Cluster, weights []int) {
	ix := NewIndex(sets)
	// pos inverts order: pos[id] is the current position of set id. A set
	// is finalized (left the window) once its position drops below i;
	// finalized sets never re-enter, which licenses posting compaction.
	pos := make([]int32, len(sets))
	for p, id := range order {
		pos[id] = int32(p)
	}
	var cands []int32
	var sub, overlap, buf, keys []int
	for i := 0; i < len(order); {
		seed := order[i]
		kmax := sets[seed]
		win := int32(i)
		cands = ix.Candidates(kmax, func(id int32) bool { return pos[id] >= win }, cands[:0])
		// Window-relative order: the stable partition needs candidates in
		// their current order. Sorting (pos<<32)|id keys through sort.Ints
		// instead of sort.Slice-by-pos avoids the reflective swapper and a
		// per-comparison closure — this sort dominates the loop's profile.
		keys = keys[:0]
		for _, id := range cands {
			keys = append(keys, int(pos[id])<<32|int(id))
		}
		sort.Ints(keys)
		for j, k := range keys {
			cands[j] = int32(k & (1<<32 - 1))
		}
		sub, overlap = sub[:0], overlap[:0]
		for _, id := range cands {
			if sets[id].SubsetOf(kmax) {
				sub = append(sub, int(id))
			} else {
				overlap = append(overlap, int(id))
			}
		}
		if clusters != nil {
			*clusters = append(*clusters, Cluster{
				Members: append([]int(nil), sub...),
				Max:     kmax,
				Weight:  weightOf(sub, weights),
			})
		}
		if len(sub) == 1 && len(overlap) == 0 {
			// The seed matched nothing: the window is unchanged.
			i++
			continue
		}
		// Rewrite order[i..last]: sub, then overlap, then the span's
		// non-candidates in their existing order. Non-candidates after the
		// last candidate are untouched — they are disjoint from the seed
		// and already follow everything that moved, so the full window
		// reads sub < overlap < disjoint exactly as the reference loop
		// leaves it.
		last := int(pos[cands[len(cands)-1]])
		buf = append(append(buf[:0], sub...), overlap...)
		for p := i; p <= last; p++ {
			if id := order[p]; !ix.Marked(id) {
				buf = append(buf, id)
			}
		}
		copy(order[i:last+1], buf)
		for p := i; p <= last; p++ {
			pos[order[p]] = int32(p)
		}
		i += len(sub)
	}
}

func weightOf(members []int, weights []int) int {
	if weights == nil {
		return 0
	}
	w := 0
	for _, m := range members {
		w += weights[m]
	}
	return w
}

// Transpose flips a record × feature incidence matrix: the result has one
// key set per feature id in [0, dim), holding the indices of the records
// containing it. Bimax "sorts field order analogously" to record order
// (§6.2) — running Bimax over the transposed sets yields that column
// ordering.
func Transpose(sets []KeySet, dim int) []KeySet {
	words := (len(sets) + wordBits - 1) / wordBits
	cols := make([]KeySet, dim)
	for ri, ks := range sets {
		ks.Each(func(id int) {
			if id < dim {
				if cols[id] == nil {
					cols[id] = make(KeySet, words)
				}
				cols[id][ri/wordBits] |= 1 << (uint(ri) % wordBits)
			}
		})
	}
	for i, c := range cols {
		if c == nil {
			cols[i] = KeySet{}
		} else {
			cols[i] = c.trim()
		}
	}
	return cols
}

// TransposeParallel is Transpose fanned out over workers. Row stripes are
// aligned to 64-row boundaries, so each worker writes a disjoint word
// range of every column bitset and the shared column storage needs no
// locks; a first (parallel) presence pass determines which columns are
// non-empty so storage is allocated exactly as the serial walk would.
// Output is identical to Transpose.
//
//jx:pool stripes are 64-row aligned, so workers write disjoint words of each column
func TransposeParallel(sets []KeySet, dim, workers int) []KeySet {
	stripes := transposeStripes(len(sets), workers)
	if len(stripes) <= 1 {
		return Transpose(sets, dim)
	}
	// Pass 1: which columns does each stripe touch?
	present := make([][]bool, len(stripes))
	var wg sync.WaitGroup
	for si, st := range stripes {
		wg.Add(1)
		go func(si int, lo, hi int) {
			defer wg.Done()
			p := make([]bool, dim)
			for _, ks := range sets[lo:hi] {
				ks.Each(func(id int) {
					if id < dim {
						p[id] = true
					}
				})
			}
			present[si] = p
		}(si, st[0], st[1])
	}
	wg.Wait()

	words := (len(sets) + wordBits - 1) / wordBits
	cols := make([]KeySet, dim)
	for id := 0; id < dim; id++ {
		for _, p := range present {
			if p[id] {
				cols[id] = make(KeySet, words)
				break
			}
		}
	}
	// Pass 2: fill. Stripe s writes only words [lo/64, hi/64) of each
	// column — disjoint across stripes by the 64-row alignment.
	for _, st := range stripes {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for ri := lo; ri < hi; ri++ {
				sets[ri].Each(func(id int) {
					if id < dim {
						cols[id][ri/wordBits] |= 1 << (uint(ri) % wordBits)
					}
				})
			}
		}(st[0], st[1])
	}
	wg.Wait()
	for i, c := range cols {
		if c == nil {
			cols[i] = KeySet{}
		} else {
			cols[i] = c.trim()
		}
	}
	return cols
}

// transposeStripes splits n rows into up to `workers` stripes aligned to
// 64-row boundaries (so stripes own disjoint bitset words).
func transposeStripes(n, workers int) [][2]int {
	if workers < 1 {
		workers = 1
	}
	per := (n + workers - 1) / workers
	per = (per + wordBits - 1) / wordBits * wordBits
	if per < wordBits {
		per = wordBits
	}
	var stripes [][2]int
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		stripes = append(stripes, [2]int{lo, hi})
	}
	return stripes
}

// BimaxColumns returns the feature ids in Bimax order: features whose
// record sets are subsets of the densest feature's cluster first, then
// overlapping, then disjoint — placing co-occurring fields adjacently,
// which is how the paper renders Figure-style co-occurrence blocks.
func BimaxColumns(sets []KeySet, dim int) []int {
	return Bimax(Transpose(sets, dim))
}

// GreedyMerge implements Algorithm 8: coalesce Bimax-Naive clusters whose
// maximal elements can be covered by unions of other clusters' maximal
// elements. Clusters are processed in reverse insertion order
// (smallest-seeded first); when a candidate's maximal element is fully
// covered by a set of other active clusters, those clusters are absorbed
// into the candidate and the search repeats with the enlarged maximal
// element. Emitted clusters are final and cannot be absorbed later.
//
// The "minimal" cover of the paper is NP-hard; this uses the standard
// greedy approximation, preferring clusters that cover more uncovered keys
// and breaking ties toward earlier Bimax positions (more similar entities).
//
// Cover searches run over an inverted index of the clusters' maximal
// elements with incrementally maintained per-cluster gain counts (see
// coverState); GreedyMergeRef retains the rescanning reference loop.
func GreedyMerge(naive []Cluster) []Cluster {
	if len(naive) < indexMinSets {
		return greedyMerge(naive, findCoverRef)
	}
	cs := newCoverState(naive)
	return greedyMerge(naive, cs.findCover)
}

// GreedyMergeRef is the reference implementation of Algorithm 8 — every
// cover step rescans all active clusters — retained for differential tests
// and the entity scaling benchmark. Output is identical to GreedyMerge.
func GreedyMergeRef(naive []Cluster) []Cluster {
	return greedyMerge(naive, findCoverRef)
}

// greedyMerge is the shared absorption loop, parameterized by the cover
// search. Active clusters' maximal elements never change (only the — by
// then inactive — candidate's Max grows), which is what lets an indexed
// cover search treat the naive maximal elements as immutable.
func greedyMerge(naive []Cluster, findCover func(work []Cluster, active []bool, target KeySet) []int) []Cluster {
	active := make([]bool, len(naive))
	for i := range active {
		active[i] = true
	}
	// Work on copies: Members and Max grow as clusters absorb others.
	work := make([]Cluster, len(naive))
	for i, c := range naive {
		work[i] = Cluster{Members: append([]int(nil), c.Members...), Max: c.Max, Weight: c.Weight}
	}

	var merged []Cluster
	for cand := len(work) - 1; cand >= 0; cand-- {
		if !active[cand] {
			continue
		}
		active[cand] = false // candidate is being finalized
		for {
			cover := findCover(work, active, work[cand].Max)
			if cover == nil {
				break
			}
			for _, ci := range cover {
				active[ci] = false
				work[cand].Members = append(work[cand].Members, work[ci].Members...)
				work[cand].Max = work[cand].Max.Union(work[ci].Max)
				work[cand].Weight += work[ci].Weight
			}
		}
		merged = append(merged, work[cand])
	}
	// Restore insertion order of surviving clusters (merged was built in
	// reverse) so output remains aligned with Bimax similarity order.
	for l, r := 0, len(merged)-1; l < r; l, r = l+1, r-1 {
		merged[l], merged[r] = merged[r], merged[l]
	}
	return merged
}

// findCoverRef greedily searches for a set cover of target among the
// maximal elements of active clusters. It returns nil when no cover exists
// (some key of target appears in no active cluster). Ties between equally
// covering clusters break toward the latest insertion position: the Bimax
// order places similar entities together, so the nearest preceding cluster
// is the most similar one — the property Example 11 relies on.
func findCoverRef(work []Cluster, active []bool, target KeySet) []int {
	uncovered := target.Clone()
	picked := make([]uint64, (len(work)+wordBits-1)/wordBits)
	var cover []int
	for !uncovered.Empty() {
		best, bestGain := -1, 0
		for i := range work {
			if !active[i] || picked[i/wordBits]&(1<<(uint(i)%wordBits)) != 0 {
				continue
			}
			gain := work[i].Max.IntersectCount(uncovered)
			if gain > bestGain || (gain == bestGain && gain > 0 && i > best) {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			return nil // some key cannot be covered
		}
		picked[best/wordBits] |= 1 << (uint(best) % wordBits)
		cover = append(cover, best)
		uncovered = uncovered.Minus(work[best].Max)
	}
	return cover
}

// coverState is the indexed cover search: an inverted index over the naive
// clusters' maximal elements plus reusable gain counters and a picked
// bitmask. Per search, gains[j] is maintained as |Max_j ∩ uncovered| for
// every candidate cluster j — initialized by one posting walk over the
// target's keys and decremented incrementally as picked clusters shrink
// the uncovered set — so each cover step selects the best cluster with an
// integer scan over the candidates instead of re-intersecting every active
// cluster's bitset against the residual.
type coverState struct {
	ix     *Index
	gains  []int
	picked []uint64
	cands  []int32
}

func newCoverState(naive []Cluster) *coverState {
	maxes := make([]KeySet, len(naive))
	for i, c := range naive {
		maxes[i] = c.Max
	}
	return &coverState{
		ix:     NewIndex(maxes),
		gains:  make([]int, len(naive)),
		picked: make([]uint64, (len(naive)+wordBits-1)/wordBits),
		// Non-nil from the start: AddGains only tracks first-touch ids
		// when handed a non-nil dst, and cands[:0] must preserve that.
		cands: make([]int32, 0, len(naive)),
	}
}

// findCover is the indexed equivalent of findCoverRef: same greedy choice,
// same tie-break toward the latest insertion position, identical returned
// covers. Inactive clusters are compacted out of the posting lists as the
// walks encounter them (GreedyMerge never reactivates a cluster).
func (cs *coverState) findCover(work []Cluster, active []bool, target KeySet) []int {
	if target.Empty() {
		return nil
	}
	live := func(id int32) bool { return active[id] }
	cs.cands = cs.ix.AddGains(target, live, 1, cs.gains, cs.cands[:0])
	uncovered := target.Clone()
	var cover []int
	for !uncovered.Empty() {
		best, bestGain := -1, 0
		for _, id := range cs.cands {
			j := int(id)
			if cs.picked[j/wordBits]&(1<<(uint(j)%wordBits)) != 0 {
				continue
			}
			gain := cs.gains[j]
			if gain > bestGain || (gain == bestGain && gain > 0 && j > best) {
				best, bestGain = j, gain
			}
		}
		if best < 0 {
			// Some key cannot be covered. cover still holds the partial
			// picks so the scratch reset below clears their bits.
			break
		}
		cs.picked[best/wordBits] |= 1 << (uint(best) % wordBits)
		cover = append(cover, best)
		// Every candidate's gain shrinks by its overlap with the keys the
		// pick just covered; decrementing along the posting lists of the
		// removed keys applies exactly that.
		removed := uncovered.Intersect(work[best].Max)
		cs.ix.AddGains(removed, live, -1, cs.gains, nil)
		uncovered = uncovered.Minus(work[best].Max)
	}
	// Reset scratch state for the next search.
	for _, id := range cs.cands {
		cs.gains[id] = 0
	}
	for _, j := range cover {
		cs.picked[j/wordBits] &^= 1 << (uint(j) % wordBits)
	}
	if !uncovered.Empty() {
		return nil
	}
	return cover
}
