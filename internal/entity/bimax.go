package entity

import "sort"

// Cluster is one discovered entity: a group of input key sets together
// with its maximal element (the union of all member key sets — for
// Bimax-Naive clusters this equals the seed k_max, since all members are
// subsets of the seed; GreedyMerge synthesizes larger maximal elements).
type Cluster struct {
	// Members holds indices into the key-set slice passed to BimaxNaive.
	Members []int
	// Max is the cluster's maximal element.
	Max KeySet
}

// Bimax implements Algorithm 6: reorder key sets so that similar sets are
// adjacent. Starting from a size-descending order, the algorithm repeatedly
// takes the largest unprocessed set k_max and stably partitions the
// remaining sets into subsets of k_max, overlapping sets, and disjoint
// sets, then advances past the subsets.
//
// The returned slice contains indices into sets, in Bimax order.
func Bimax(sets []KeySet) []int {
	order := sizeDescending(sets)
	bimaxSort(sets, order, nil)
	return order
}

// BimaxNaive implements Algorithm 7: run the Bimax loop, emitting each
// iteration's subset group (the seed k_max and every remaining set
// contained in it) as one cluster.
func BimaxNaive(sets []KeySet) []Cluster {
	order := sizeDescending(sets)
	var clusters []Cluster
	bimaxSort(sets, order, &clusters)
	return clusters
}

// sizeDescending returns the indices of sets ordered by descending set
// size; ties preserve input order (stable), keeping results deterministic.
func sizeDescending(sets []KeySet) []int {
	sizes := make([]int, len(sets))
	order := make([]int, len(sets))
	for i := range order {
		order[i] = i
		sizes[i] = sets[i].Len()
	}
	sort.SliceStable(order, func(a, b int) bool {
		return sizes[order[a]] > sizes[order[b]]
	})
	return order
}

// bimaxSort runs the shared loop of Algorithms 6 and 7 over order in
// place. When clusters is non-nil, each iteration's subset group is
// appended to it as a Cluster.
func bimaxSort(sets []KeySet, order []int, clusters *[]Cluster) {
	for i := 0; i < len(order); {
		kmax := sets[order[i]]
		var sub, overlap, disjoint []int
		for _, idx := range order[i:] {
			k := sets[idx]
			switch {
			case k.SubsetOf(kmax):
				sub = append(sub, idx)
			case !k.Intersects(kmax):
				disjoint = append(disjoint, idx)
			default:
				overlap = append(overlap, idx)
			}
		}
		// Rearrange as sub < overlap < disjoint, preserving relative order.
		pos := i
		pos += copy(order[pos:], sub)
		pos += copy(order[pos:], overlap)
		copy(order[pos:], disjoint)
		if clusters != nil {
			*clusters = append(*clusters, Cluster{
				Members: append([]int(nil), sub...),
				Max:     kmax,
			})
		}
		i += len(sub)
	}
}

// Transpose flips a record × feature incidence matrix: the result has one
// key set per feature id in [0, dim), holding the indices of the records
// containing it. Bimax "sorts field order analogously" to record order
// (§6.2) — running Bimax over the transposed sets yields that column
// ordering.
func Transpose(sets []KeySet, dim int) []KeySet {
	words := (len(sets) + wordBits - 1) / wordBits
	cols := make([]KeySet, dim)
	for ri, ks := range sets {
		ks.Each(func(id int) {
			if id < dim {
				if cols[id] == nil {
					cols[id] = make(KeySet, words)
				}
				cols[id][ri/wordBits] |= 1 << (uint(ri) % wordBits)
			}
		})
	}
	for i, c := range cols {
		if c == nil {
			cols[i] = KeySet{}
		} else {
			cols[i] = c.trim()
		}
	}
	return cols
}

// BimaxColumns returns the feature ids in Bimax order: features whose
// record sets are subsets of the densest feature's cluster first, then
// overlapping, then disjoint — placing co-occurring fields adjacently,
// which is how the paper renders Figure-style co-occurrence blocks.
func BimaxColumns(sets []KeySet, dim int) []int {
	return Bimax(Transpose(sets, dim))
}

// GreedyMerge implements Algorithm 8: coalesce Bimax-Naive clusters whose
// maximal elements can be covered by unions of other clusters' maximal
// elements. Clusters are processed in reverse insertion order
// (smallest-seeded first); when a candidate's maximal element is fully
// covered by a set of other active clusters, those clusters are absorbed
// into the candidate and the search repeats with the enlarged maximal
// element. Emitted clusters are final and cannot be absorbed later.
//
// The "minimal" cover of the paper is NP-hard; this uses the standard
// greedy approximation, preferring clusters that cover more uncovered keys
// and breaking ties toward earlier Bimax positions (more similar entities).
func GreedyMerge(naive []Cluster) []Cluster {
	active := make([]bool, len(naive))
	for i := range active {
		active[i] = true
	}
	// Work on copies: Members and Max grow as clusters absorb others.
	work := make([]Cluster, len(naive))
	for i, c := range naive {
		work[i] = Cluster{Members: append([]int(nil), c.Members...), Max: c.Max}
	}

	var merged []Cluster
	for cand := len(work) - 1; cand >= 0; cand-- {
		if !active[cand] {
			continue
		}
		active[cand] = false // candidate is being finalized
		for {
			cover := findCover(work, active, work[cand].Max)
			if cover == nil {
				break
			}
			for _, ci := range cover {
				active[ci] = false
				work[cand].Members = append(work[cand].Members, work[ci].Members...)
				work[cand].Max = work[cand].Max.Union(work[ci].Max)
			}
		}
		merged = append(merged, work[cand])
	}
	// Restore insertion order of surviving clusters (merged was built in
	// reverse) so output remains aligned with Bimax similarity order.
	for l, r := 0, len(merged)-1; l < r; l, r = l+1, r-1 {
		merged[l], merged[r] = merged[r], merged[l]
	}
	return merged
}

// findCover greedily searches for a set cover of target among the maximal
// elements of active clusters. It returns nil when no cover exists (some
// key of target appears in no active cluster). Ties between equally
// covering clusters break toward the latest insertion position: the Bimax
// order places similar entities together, so the nearest preceding cluster
// is the most similar one — the property Example 11 relies on.
func findCover(work []Cluster, active []bool, target KeySet) []int {
	uncovered := target.Clone()
	var cover []int
	for !uncovered.Empty() {
		best, bestGain := -1, 0
		for i := range work {
			if !active[i] || contains(cover, i) {
				continue
			}
			gain := work[i].Max.IntersectCount(uncovered)
			if gain > bestGain || (gain == bestGain && gain > 0 && i > best) {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			return nil // some key cannot be covered
		}
		cover = append(cover, best)
		uncovered = uncovered.Minus(work[best].Max)
	}
	return cover
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
