package entity

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBimaxIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sets := make([]KeySet, r.Intn(30))
		for i := range sets {
			sets[i] = randomKeySet(r, 12)
		}
		order := Bimax(sets)
		if len(order) != len(sets) {
			return false
		}
		seen := make([]bool, len(sets))
		for _, idx := range order {
			if idx < 0 || idx >= len(sets) || seen[idx] {
				return false
			}
			seen[idx] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBimaxGroupsSubsetsFirst(t *testing.T) {
	d := NewDict()
	big := KeySetOf(d, "a", "b", "c", "d")
	sub := KeySetOf(d, "a", "b")
	overlap := KeySetOf(d, "c", "x", "y")
	disjoint := KeySetOf(d, "p", "q")
	sets := []KeySet{disjoint, overlap, sub, big}
	order := Bimax(sets)
	// big (largest) first, then its subset, then overlap, then disjoint.
	if sets[order[0]].Canon() != big.Canon() {
		t.Errorf("first should be the largest set, got %v", sets[order[0]])
	}
	if sets[order[1]].Canon() != sub.Canon() {
		t.Errorf("second should be the subset, got %v", sets[order[1]])
	}
	if sets[order[2]].Canon() != overlap.Canon() || sets[order[3]].Canon() != disjoint.Canon() {
		t.Errorf("tail order wrong: %v, %v", sets[order[2]], sets[order[3]])
	}
}

func TestBimaxNaiveClustersBySubset(t *testing.T) {
	d := NewDict()
	sets := []KeySet{
		KeySetOf(d, "a", "b", "c"),
		KeySetOf(d, "a", "b"),
		KeySetOf(d, "a"),
		KeySetOf(d, "x", "y"),
		KeySetOf(d, "x"),
	}
	clusters := BimaxNaive(sets)
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters: %+v", len(clusters), clusters)
	}
	if len(clusters[0].Members) != 3 || !clusters[0].Max.Equal(sets[0]) {
		t.Errorf("cluster 0 = %+v", clusters[0])
	}
	if len(clusters[1].Members) != 2 || !clusters[1].Max.Equal(sets[3]) {
		t.Errorf("cluster 1 = %+v", clusters[1])
	}
}

func TestBimaxNaiveEveryInputInExactlyOneCluster(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sets := make([]KeySet, 1+r.Intn(40))
		for i := range sets {
			sets[i] = randomKeySet(r, 10)
		}
		clusters := BimaxNaive(sets)
		seen := make([]bool, len(sets))
		for _, c := range clusters {
			for _, m := range c.Members {
				if seen[m] {
					return false
				}
				seen[m] = true
				// Every member must be a subset of the cluster max.
				if !sets[m].SubsetOf(c.Max) {
					return false
				}
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGreedyMergeExample11(t *testing.T) {
	// Paper Example 11: entities over keys A..E with maximal elements
	// E1:{A,B,E}, E2:{B,C,E}, E3:{C,D,E}, E4:{B,D}. GreedyMerge starts with
	// E4, covers it with E2 ∪ E3, and emits two entities: E1 and {E2,E3,E4}.
	d := NewDict()
	a, b, c, dd, e := d.ID("A"), d.ID("B"), d.ID("C"), d.ID("D"), d.ID("E")
	naive := []Cluster{
		{Members: []int{0}, Max: ks(a, b, e)},
		{Members: []int{1}, Max: ks(b, c, e)},
		{Members: []int{2}, Max: ks(c, dd, e)},
		{Members: []int{3}, Max: ks(b, dd)},
	}
	merged := GreedyMerge(naive)
	if len(merged) != 2 {
		t.Fatalf("got %d entities: %+v", len(merged), merged)
	}
	// One entity must be E1 alone; the other must union E2,E3,E4.
	var e1, joint *Cluster
	for i := range merged {
		if len(merged[i].Members) == 1 {
			e1 = &merged[i]
		} else {
			joint = &merged[i]
		}
	}
	if e1 == nil || joint == nil {
		t.Fatalf("expected one singleton and one merged entity: %+v", merged)
	}
	if !e1.Max.Equal(ks(a, b, e)) {
		t.Errorf("E1 max = %v", e1.Max)
	}
	if !joint.Max.Equal(ks(b, c, dd, e)) {
		t.Errorf("joint max = %v, want {B,C,D,E}", joint.Max)
	}
	if len(joint.Members) != 3 {
		t.Errorf("joint members = %v", joint.Members)
	}
}

func TestGreedyMergeNoSharedKeysNoMerge(t *testing.T) {
	naive := []Cluster{
		{Members: []int{0}, Max: ks(1, 2)},
		{Members: []int{1}, Max: ks(3, 4)},
		{Members: []int{2}, Max: ks(5)},
	}
	merged := GreedyMerge(naive)
	if len(merged) != 3 {
		t.Errorf("disjoint entities must not merge: %+v", merged)
	}
}

func TestGreedyMergeOptionalFieldScenario(t *testing.T) {
	// An entity with keys {id, a, b, c} where a, b, c are optional and no
	// record has all three: Bimax-Naive fragments it; GreedyMerge should
	// reassemble a single entity.
	d := NewDict()
	sets := []KeySet{
		KeySetOf(d, "id", "a", "b"),
		KeySetOf(d, "id", "b", "c"),
		KeySetOf(d, "id", "a", "c"),
		KeySetOf(d, "id", "a"),
		KeySetOf(d, "id", "b"),
		KeySetOf(d, "id", "c"),
		KeySetOf(d, "id"),
	}
	naive := BimaxNaive(sets)
	if len(naive) < 2 {
		t.Fatalf("expected fragmentation, got %d clusters", len(naive))
	}
	merged := GreedyMerge(naive)
	if len(merged) != 1 {
		t.Errorf("GreedyMerge should coalesce into 1 entity, got %d: %+v", len(merged), merged)
	}
	want := KeySetOf(d, "id", "a", "b", "c")
	if !merged[0].Max.Equal(want) {
		t.Errorf("merged max = %v", merged[0].Max)
	}
}

func TestGreedyMergePreservesMembership(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sets := make([]KeySet, 1+r.Intn(40))
		for i := range sets {
			sets[i] = randomKeySet(r, 8)
		}
		naive := BimaxNaive(sets)
		merged := GreedyMerge(naive)
		if len(merged) > len(naive) {
			return false
		}
		seen := make([]bool, len(sets))
		for _, c := range merged {
			for _, m := range c.Members {
				if seen[m] {
					return false
				}
				seen[m] = true
				if !sets[m].SubsetOf(c.Max) {
					return false
				}
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGreedyMergeEmpty(t *testing.T) {
	if got := GreedyMerge(nil); len(got) != 0 {
		t.Error("empty input should give empty output")
	}
}

func TestTranspose(t *testing.T) {
	d := NewDict()
	a, b, c := d.ID("a"), d.ID("b"), d.ID("c")
	sets := []KeySet{ks(a, b), ks(b), ks(b, c)}
	cols := Transpose(sets, d.Len())
	if !cols[a].Equal(ks(0)) || !cols[b].Equal(ks(0, 1, 2)) || !cols[c].Equal(ks(2)) {
		t.Errorf("transpose = %v", cols)
	}
}

func TestTransposeRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		dim := 1 + r.Intn(10)
		sets := make([]KeySet, 1+r.Intn(20))
		for i := range sets {
			sets[i] = randomKeySet(r, dim)
		}
		back := Transpose(Transpose(sets, dim), len(sets))
		for i := range sets {
			if !sets[i].Equal(back[i]) {
				t.Fatalf("transpose not involutive: %v vs %v", sets[i], back[i])
			}
		}
	}
}

func TestBimaxColumnsGroupsCooccurringFields(t *testing.T) {
	d := NewDict()
	// Fields a1,a2 co-occur in entity A's records; b1,b2 in entity B's.
	var sets []KeySet
	for i := 0; i < 10; i++ {
		sets = append(sets, KeySetOf(d, "a1", "a2"))
		sets = append(sets, KeySetOf(d, "b1", "b2"))
	}
	order := BimaxColumns(sets, d.Len())
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	name := func(i int) byte { return d.Name(order[i])[0] }
	// The two fields of each entity must be adjacent.
	if name(0) != name(1) || name(2) != name(3) || name(1) == name(2) {
		t.Errorf("co-occurring fields not adjacent: %v", order)
	}
}

func TestBimaxDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	sets := make([]KeySet, 50)
	for i := range sets {
		sets[i] = randomKeySet(r, 15)
	}
	a := Bimax(sets)
	b := Bimax(sets)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Bimax must be deterministic")
		}
	}
}

// TestFindCoverTieBreak pins the Example 11 tie-break through both cover
// searches: among equally covering clusters, findCover must pick the one
// at the latest insertion position — the nearest preceding cluster in
// Bimax similarity order. For E4:{B,D} the gains over E1:{A,B,E},
// E2:{B,C,E}, E3:{C,D,E} are all 1, so the cover must be E3 then E2
// ([2 1]), never the equally sized [0 2] or [1 2].
func TestFindCoverTieBreak(t *testing.T) {
	d := NewDict()
	a, b, c, dd, e := d.ID("A"), d.ID("B"), d.ID("C"), d.ID("D"), d.ID("E")
	work := []Cluster{
		{Members: []int{0}, Max: ks(a, b, e)},
		{Members: []int{1}, Max: ks(b, c, e)},
		{Members: []int{2}, Max: ks(c, dd, e)},
		{Members: []int{3}, Max: ks(b, dd)},
	}
	active := []bool{true, true, true, false}
	target := work[3].Max
	want := []int{2, 1}

	for name, cover := range map[string][]int{
		"ref":     findCoverRef(work, active, target),
		"indexed": newCoverState(work).findCover(work, active, target),
	} {
		if len(cover) != len(want) {
			t.Fatalf("%s cover = %v, want %v", name, cover, want)
		}
		for i := range want {
			if cover[i] != want[i] {
				t.Fatalf("%s cover = %v, want %v", name, cover, want)
			}
		}
	}
}
