// Package fd mines soft structural functional dependencies between field
// *presence* indicators — the signal behind the paper's §7.3 observation
// that Yelp's hair salons "nearly always have, and are nearly always
// indicated by, the presence of a by_appointment field", and a step toward
// the §9 future-work item of integrating FD-based entity structure into
// JXPLAIN.
//
// A rule A ⇒ B states: records containing field A (almost) always contain
// field B. Rules are mined from the same key sets entity discovery uses,
// with classical support/confidence thresholds; a bidirectional pair
// A ⇒ B and B ⇒ A marks the co-occurring field group of a latent
// sub-entity (the salon attributes).
package fd

import (
	"fmt"
	"sort"

	"jxplain/internal/entity"
)

// Rule is one mined presence dependency A ⇒ B.
type Rule struct {
	// Antecedent and Consequent are field names.
	Antecedent, Consequent string
	// Support is the number of records containing the antecedent.
	Support int
	// Confidence is the fraction of those records also containing the
	// consequent.
	Confidence float64
}

func (r Rule) String() string {
	return fmt.Sprintf("%s ⇒ %s (conf %.3f, support %d)", r.Antecedent, r.Consequent, r.Confidence, r.Support)
}

// Config bounds the mining.
type Config struct {
	// MinSupport is the minimum antecedent occurrence count (default 10).
	MinSupport int
	// MinConfidence is the minimum rule confidence (default 0.95).
	MinConfidence float64
	// SkipUniversal drops rules whose consequent appears in (almost) every
	// record — mandatory fields imply nothing interesting. A consequent
	// present in more than this fraction of all records is skipped
	// (default 0.9).
	SkipUniversal float64
}

func (c Config) withDefaults() Config {
	if c.MinSupport <= 0 {
		c.MinSupport = 10
	}
	if c.MinConfidence <= 0 {
		c.MinConfidence = 0.95
	}
	if c.SkipUniversal <= 0 {
		c.SkipUniversal = 0.9
	}
	return c
}

// Mine extracts presence rules from key sets with multiplicities. keySets
// and counts must be parallel; dict names the features.
func Mine(dict *entity.Dict, keySets []entity.KeySet, counts []int, cfg Config) []Rule {
	cfg = cfg.withDefaults()
	total := 0
	present := make([]int, dict.Len()) // records containing feature i
	pair := map[[2]int]int{}           // records containing both i and j (i < j by id order kept both ways)
	for si, ks := range keySets {
		n := counts[si]
		total += n
		ids := ks.IDs()
		for _, id := range ids {
			if id < len(present) {
				present[id] += n
			}
		}
		for ai := 0; ai < len(ids); ai++ {
			for bi := 0; bi < len(ids); bi++ {
				if ai == bi {
					continue
				}
				pair[[2]int{ids[ai], ids[bi]}] += n
			}
		}
	}

	var rules []Rule
	for key, both := range pair {
		a, b := key[0], key[1]
		supp := present[a]
		if supp < cfg.MinSupport {
			continue
		}
		if total > 0 && float64(present[b])/float64(total) > cfg.SkipUniversal {
			continue
		}
		conf := float64(both) / float64(supp)
		if conf < cfg.MinConfidence {
			continue
		}
		rules = append(rules, Rule{
			Antecedent: dict.Name(a),
			Consequent: dict.Name(b),
			Support:    supp,
			Confidence: conf,
		})
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		if rules[i].Antecedent != rules[j].Antecedent {
			return rules[i].Antecedent < rules[j].Antecedent
		}
		return rules[i].Consequent < rules[j].Consequent
	})
	return rules
}

// MineNames is Mine over raw key-name sets (one per record), interning
// through a fresh dictionary.
func MineNames(records [][]string, cfg Config) []Rule {
	dict := entity.NewDict()
	index := map[string]int{}
	var sets []entity.KeySet
	var counts []int
	for _, names := range records {
		ks := entity.KeySetOf(dict, names...)
		c := ks.Canon()
		if i, ok := index[c]; ok {
			counts[i]++
			continue
		}
		index[c] = len(sets)
		sets = append(sets, ks)
		counts = append(counts, 1)
	}
	return Mine(dict, sets, counts, cfg)
}

// Groups collapses bidirectional rules into co-occurrence groups: fields
// that (almost) always appear together — the latent sub-entity signature.
// Groups of size < 2 are omitted; fields are sorted within each group and
// groups sorted by their first field.
func Groups(rules []Rule) [][]string {
	// Union-find over fields linked by rules in both directions.
	forward := map[[2]string]bool{}
	for _, r := range rules {
		forward[[2]string{r.Antecedent, r.Consequent}] = true
	}
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if parent[x] == "" || parent[x] == x {
			parent[x] = x
			return x
		}
		root := find(parent[x])
		parent[x] = root
		return root
	}
	union := func(a, b string) { parent[find(a)] = find(b) }
	for pairKey := range forward {
		a, b := pairKey[0], pairKey[1]
		if forward[[2]string{b, a}] {
			union(a, b)
		}
	}
	byRoot := map[string][]string{}
	for x := range parent {
		byRoot[find(x)] = append(byRoot[find(x)], x)
	}
	var out [][]string
	for _, group := range byRoot {
		if len(group) < 2 {
			continue
		}
		sort.Strings(group)
		out = append(out, group)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
