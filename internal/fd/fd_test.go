package fd

import (
	"strings"
	"testing"

	"jxplain/internal/dataset"
	"jxplain/internal/jsontype"
)

func TestMineNamesBasicRule(t *testing.T) {
	var records [][]string
	// A implies B (always); B appears alone half the time.
	for i := 0; i < 50; i++ {
		records = append(records, []string{"id", "A", "B"})
		records = append(records, []string{"id", "B"})
		records = append(records, []string{"id", "C"})
	}
	rules := MineNames(records, Config{MinSupport: 10, MinConfidence: 0.95, SkipUniversal: 0.99})
	var found bool
	for _, r := range rules {
		if r.Antecedent == "A" && r.Consequent == "B" {
			found = true
			if r.Confidence != 1 || r.Support != 50 {
				t.Errorf("rule = %+v", r)
			}
		}
		if r.Antecedent == "B" && r.Consequent == "A" {
			t.Error("B ⇒ A has confidence 0.5 and must not be mined")
		}
		if r.Consequent == "id" {
			t.Error("universal consequents must be skipped")
		}
	}
	if !found {
		t.Errorf("A ⇒ B not mined: %v", rules)
	}
}

func TestMineSupportThreshold(t *testing.T) {
	var records [][]string
	for i := 0; i < 5; i++ {
		records = append(records, []string{"rare", "friend"})
	}
	for i := 0; i < 100; i++ {
		records = append(records, []string{"common"})
	}
	rules := MineNames(records, Config{MinSupport: 10})
	for _, r := range rules {
		if r.Antecedent == "rare" {
			t.Errorf("support 5 < 10 must be filtered: %v", r)
		}
	}
}

func TestMineConfidenceThreshold(t *testing.T) {
	var records [][]string
	for i := 0; i < 90; i++ {
		records = append(records, []string{"x", "y"})
	}
	for i := 0; i < 20; i++ {
		records = append(records, []string{"x"})
	}
	strict := MineNames(records, Config{MinSupport: 5, MinConfidence: 0.95})
	for _, r := range strict {
		if r.Antecedent == "x" && r.Consequent == "y" {
			t.Error("confidence ≈0.82 must not pass 0.95")
		}
	}
	loose := MineNames(records, Config{MinSupport: 5, MinConfidence: 0.75})
	found := false
	for _, r := range loose {
		if r.Antecedent == "x" && r.Consequent == "y" {
			found = true
		}
	}
	if !found {
		t.Error("confidence ≈0.82 should pass 0.75")
	}
}

func TestGroups(t *testing.T) {
	rules := []Rule{
		{Antecedent: "a", Consequent: "b", Confidence: 1},
		{Antecedent: "b", Consequent: "a", Confidence: 0.98},
		{Antecedent: "b", Consequent: "c", Confidence: 1},
		{Antecedent: "c", Consequent: "b", Confidence: 1},
		{Antecedent: "x", Consequent: "a", Confidence: 1}, // one-directional: not grouped
	}
	groups := Groups(rules)
	if len(groups) != 1 {
		t.Fatalf("groups = %v", groups)
	}
	if strings.Join(groups[0], ",") != "a,b,c" {
		t.Errorf("group = %v", groups[0])
	}
	if len(Groups(nil)) != 0 {
		t.Error("no rules → no groups")
	}
}

func TestSalonFDOnYelpBusiness(t *testing.T) {
	// The §7.3 scenario: within Yelp business attributes, the salon fields
	// co-occur, and they imply ByAppointmentOnly.
	g, _ := dataset.ByName("yelp-business")
	records := g.Generate(4000, 11)
	var attrKeySets [][]string
	for _, rec := range records {
		attrs := rec.Type.Field("attributes")
		if attrs == nil || attrs.Kind() != jsontype.KindObject {
			continue
		}
		attrKeySets = append(attrKeySets, attrs.Keys())
	}
	rules := MineNames(attrKeySets, Config{MinSupport: 20, MinConfidence: 0.9})
	foundSalonFD := false
	for _, r := range rules {
		if r.Antecedent == "AcceptsInsurance" && r.Consequent == "ByAppointmentOnly" {
			foundSalonFD = true
		}
	}
	if !foundSalonFD {
		t.Errorf("salon FD not mined; rules = %v", rules)
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{Antecedent: "a", Consequent: "b", Support: 10, Confidence: 0.975}
	if !strings.Contains(r.String(), "a ⇒ b") || !strings.Contains(r.String(), "0.975") {
		t.Errorf("String = %q", r.String())
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MinSupport != 10 || c.MinConfidence != 0.95 || c.SkipUniversal != 0.9 {
		t.Errorf("defaults = %+v", c)
	}
}
