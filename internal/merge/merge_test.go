package merge

import (
	"math"
	"strings"
	"testing"

	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
)

func ty(t *testing.T, src string) *jsontype.Type {
	t.Helper()
	typ, err := jsontype.FromJSON([]byte(src))
	if err != nil {
		t.Fatalf("FromJSON(%q): %v", src, err)
	}
	return typ
}

func bagOf(t *testing.T, srcs ...string) *jsontype.Bag {
	t.Helper()
	b := &jsontype.Bag{}
	for _, s := range srcs {
		b.Add(ty(t, s))
	}
	return b
}

func TestExactSchema(t *testing.T) {
	rec := ty(t, `{"ts":7,"event":"login","user":{"geo":[1,2]}}`)
	s := ExactSchema(rec)
	if !s.Accepts(rec) {
		t.Fatal("exact schema must accept its own type")
	}
	// Must reject everything slightly different.
	for _, bad := range []string{
		`{"ts":7,"event":"login"}`,
		`{"ts":7,"event":"login","user":{"geo":[1,2]},"x":1}`,
		`{"ts":7,"event":"login","user":{"geo":[1,2,3]}}`,
		`{"ts":"x","event":"login","user":{"geo":[1,2]}}`,
	} {
		if s.Accepts(ty(t, bad)) {
			t.Errorf("exact schema should reject %s", bad)
		}
	}
	if got := s.LogTypeCount(); got != 0 {
		t.Errorf("exact schema admits one type, got 2^%v", got)
	}
}

func TestNaiveIsLReduction(t *testing.T) {
	bag := bagOf(t,
		`{"a":1}`, `{"a":1}`, `{"a":1,"b":"x"}`, `[1,2]`, `"s"`,
	)
	s := Naive(bag)
	// Admits exactly the distinct input types.
	if got := s.LogTypeCount(); !almostEq(got, 2, 1e-12) { // 4 distinct types
		t.Errorf("L-reduction admits %v bits, want 2", got)
	}
	for _, src := range []string{`{"a":1}`, `{"a":1,"b":"x"}`, `[1,2]`, `"s"`} {
		if !s.Accepts(ty(t, src)) {
			t.Errorf("L-reduction should accept seen type %s", src)
		}
	}
	for _, src := range []string{`{"a":1,"b":"y","c":1}`, `{"b":"x"}`, `[1]`, `true`} {
		if s.Accepts(ty(t, src)) {
			t.Errorf("L-reduction should reject unseen type %s", src)
		}
	}
}

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestKReductionExample1(t *testing.T) {
	// The paper's Figure 1 / Example 1: K-reduction produces one entity with
	// optional user and files, admitting the invalid mixed records.
	bag := bagOf(t,
		`{"ts":7,"event":"login","user":{"name":"bob","geo":[1.1,2.2]}}`,
		`{"ts":8,"event":"serve","files":["a.txt","b.txt"]}`,
	)
	s := K(bag)
	// Training records accepted.
	bag.Each(func(typ *jsontype.Type, _ int) {
		if !s.Accepts(typ) {
			t.Errorf("K-reduction must accept training type %v", typ)
		}
	})
	// And the invalid mixtures too (the imprecision the paper targets).
	both := ty(t, `{"ts":9,"event":"huh","user":{"name":"x","geo":[0,0]},"files":["f"]}`)
	neither := ty(t, `{"ts":10,"event":"wat"}`)
	if !s.Accepts(both) || !s.Accepts(neither) {
		t.Error("K-reduction is expected to admit the mixed records")
	}
	// Arrays always become collections under K: [1.1, 2.2] merges to [ℝ]*,
	// which accepts a 3-element coordinate array.
	threeGeo := ty(t, `{"ts":9,"event":"x","user":{"name":"y","geo":[1,2,3]}}`)
	if !s.Accepts(threeGeo) {
		t.Error("K-reduction treats geo as a collection and accepts length 3")
	}
}

func TestKReductionMandatoryVsOptional(t *testing.T) {
	bag := bagOf(t, `{"a":1,"b":"x"}`, `{"a":2}`, `{"a":3,"c":true}`)
	s := K(bag).(*schema.ObjectTuple)
	if _, isReq := s.Field("a"); !isReq {
		t.Error("a appears everywhere → required")
	}
	if f, isReq := s.Field("b"); f == nil || isReq {
		t.Error("b is optional")
	}
	if f, isReq := s.Field("c"); f == nil || isReq {
		t.Error("c is optional")
	}
}

func TestKReductionMixedKinds(t *testing.T) {
	bag := bagOf(t, `1`, `"s"`, `null`, `true`, `[1]`, `{"a":1}`)
	s := K(bag)
	u, ok := s.(*schema.Union)
	if !ok {
		t.Fatalf("mixed kinds should union, got %T", s)
	}
	// 4 primitives + 1 collection + 1 tuple.
	if len(u.Alts) != 6 {
		t.Errorf("got %d alternatives: %v", len(u.Alts), u)
	}
	out := s.String()
	for _, want := range []string{"null", "𝔹", "ℝ", "𝕊", "[ℝ]*", "{a: ℝ}"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s in %s", want, out)
		}
	}
}

func TestKReductionNestedRecursion(t *testing.T) {
	bag := bagOf(t,
		`{"u":{"x":1}}`,
		`{"u":{"x":2,"y":"s"}}`,
	)
	s := K(bag).(*schema.ObjectTuple)
	u, isReq := s.Field("u")
	if !isReq {
		t.Fatal("u is mandatory")
	}
	inner := u.(*schema.ObjectTuple)
	if _, isReq := inner.Field("x"); !isReq {
		t.Error("u.x is mandatory")
	}
	if f, isReq := inner.Field("y"); f == nil || isReq {
		t.Error("u.y is optional")
	}
}

func TestArrayCollMaxLenAndEmpty(t *testing.T) {
	bag := bagOf(t, `[1,2,3]`, `[]`, `[4]`)
	s := ArrayColl(K, bag).(*schema.ArrayCollection)
	if s.MaxLen != 3 {
		t.Errorf("MaxLen = %d", s.MaxLen)
	}
	emptyBag := bagOf(t, `[]`, `[]`)
	s2 := ArrayColl(K, emptyBag).(*schema.ArrayCollection)
	if s2.MaxLen != 0 || !schema.IsEmpty(s2.Elem) {
		t.Error("all-empty arrays should give empty element schema")
	}
	if !s2.Accepts(ty(t, `[]`)) {
		t.Error("empty collection accepts the empty array")
	}
	if s2.Accepts(ty(t, `[1]`)) {
		t.Error("empty element schema accepts no elements")
	}
}

func TestObjectCollDomainAndValues(t *testing.T) {
	bag := bagOf(t,
		`{"DRUG_A":1,"DRUG_B":2}`,
		`{"DRUG_B":3,"DRUG_C":4}`,
	)
	s := ObjectColl(K, bag).(*schema.ObjectCollection)
	if s.Domain != 3 {
		t.Errorf("Domain = %d, want 3", s.Domain)
	}
	if !s.Accepts(ty(t, `{"DRUG_NEW":9}`)) {
		t.Error("collection generalizes to unseen keys")
	}
	if s.Accepts(ty(t, `{"DRUG_A":"oops"}`)) {
		t.Error("value type is enforced")
	}
	empty := ObjectColl(K, bagOf(t, `{}`)).(*schema.ObjectCollection)
	if empty.Domain != 0 || !schema.IsEmpty(empty.Value) {
		t.Error("empty objects give empty value schema")
	}
}

func TestArrayTupleMerging(t *testing.T) {
	bag := bagOf(t, `[1,2]`, `[3,4,"tag"]`)
	s := ArrayTuple(K, bag).(*schema.ArrayTuple)
	if s.MinLen != 2 || len(s.Elems) != 3 {
		t.Fatalf("MinLen=%d len=%d", s.MinLen, len(s.Elems))
	}
	if !s.Accepts(ty(t, `[5,6]`)) || !s.Accepts(ty(t, `[5,6,"x"]`)) {
		t.Error("tuple with optional suffix should accept both lengths")
	}
	if s.Accepts(ty(t, `[5]`)) || s.Accepts(ty(t, `[5,6,7]`)) {
		t.Error("tuple bounds lengths and position types")
	}
	empty := ArrayTuple(K, bagOf(t, `[]`)).(*schema.ArrayTuple)
	if empty.MinLen != 0 || len(empty.Elems) != 0 {
		t.Error("empty array tuple")
	}
}

func TestPrimitivesDeterministicOrder(t *testing.T) {
	bag := bagOf(t, `"s"`, `1`, `null`, `true`)
	out := Primitives(bag)
	if len(out) != 4 {
		t.Fatalf("got %d", len(out))
	}
	wantKinds := []jsontype.Kind{jsontype.KindNull, jsontype.KindBool, jsontype.KindNumber, jsontype.KindString}
	for i, s := range out {
		if s.(*schema.Primitive).K != wantKinds[i] {
			t.Errorf("position %d: %v", i, s)
		}
	}
}
