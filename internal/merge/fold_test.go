package merge

import (
	"math/rand"
	"testing"
	"testing/quick"

	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
)

// randomFoldType builds bounded random types exercising all kinds.
func randomFoldType(r *rand.Rand, depth int) *jsontype.Type {
	if depth <= 0 || r.Intn(3) == 0 {
		return jsontype.NewPrimitive(jsontype.Kind(r.Intn(4)))
	}
	if r.Intn(2) == 0 {
		n := r.Intn(4)
		elems := make([]*jsontype.Type, n)
		for i := range elems {
			elems[i] = randomFoldType(r, depth-1)
		}
		return jsontype.NewArray(elems)
	}
	keys := []string{"a", "b", "c", "d", "e"}
	var fields []jsontype.Field
	seen := map[string]bool{}
	for i := 0; i < r.Intn(5); i++ {
		k := keys[r.Intn(len(keys))]
		if seen[k] {
			continue
		}
		seen[k] = true
		fields = append(fields, jsontype.Field{Key: k, Type: randomFoldType(r, depth-1)})
	}
	return jsontype.NewObject(fields)
}

func TestFoldKEqualsK(t *testing.T) {
	f := func(seed int64, wRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		types := make([]*jsontype.Type, n)
		bag := &jsontype.Bag{}
		for i := range types {
			types[i] = randomFoldType(r, 3)
			bag.Add(types[i])
		}
		workers := int(wRaw%8) + 1
		direct := schema.Simplify(K(bag))
		folded := schema.Simplify(FoldK(types, workers))
		return schema.Equal(direct, folded)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorCombineAssociativeProperty(t *testing.T) {
	// (a ⊕ b) ⊕ c must equal a ⊕ (b ⊕ c) up to the produced schema.
	f := func(seed int64) bool {
		// Build the same three groups twice (accumulators mutate on Combine).
		state := rand.New(rand.NewSource(seed)).Int63()
		r1 := rand.New(rand.NewSource(state))
		r2 := rand.New(rand.NewSource(state))
		mk1 := func() *Accumulator {
			acc := NewAccumulator()
			for i := 0; i < 1+r1.Intn(10); i++ {
				acc.Add(randomFoldType(r1, 2), 1)
			}
			return acc
		}
		mk2 := func() *Accumulator {
			acc := NewAccumulator()
			for i := 0; i < 1+r2.Intn(10); i++ {
				acc.Add(randomFoldType(r2, 2), 1)
			}
			return acc
		}
		a1, b1, c1 := mk1(), mk1(), mk1()
		a2, b2, c2 := mk2(), mk2(), mk2()
		left := a1.Combine(b1).Combine(c1).Schema()
		right := a2.Combine(b2.Combine(c2)).Schema()
		return schema.Equal(left, right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorCommutativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		state := seed
		mkPair := func() (*Accumulator, *Accumulator) {
			r := rand.New(rand.NewSource(state))
			a, b := NewAccumulator(), NewAccumulator()
			for i := 0; i < 1+r.Intn(10); i++ {
				a.Add(randomFoldType(r, 2), 1)
			}
			for i := 0; i < 1+r.Intn(10); i++ {
				b.Add(randomFoldType(r, 2), 1)
			}
			return a, b
		}
		a1, b1 := mkPair()
		a2, b2 := mkPair()
		return schema.Equal(a1.Combine(b1).Schema(), b2.Combine(a2).Schema())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	acc := NewAccumulator()
	if !acc.Empty() {
		t.Error("fresh accumulator should be empty")
	}
	if !schema.IsEmpty(acc.Schema()) {
		t.Error("empty accumulator produces the empty schema")
	}
	acc.Add(jsontype.Number, 1)
	if acc.Empty() {
		t.Error("accumulator with content is not empty")
	}
}

func TestAccumulatorMultiplicity(t *testing.T) {
	// Adding {"a":1} ×3 and {"a":1,"b":2} ×1 must make b optional.
	acc := NewAccumulator()
	acc.Add(jsontype.MustFromValue(map[string]any{"a": 1}), 3)
	acc.Add(jsontype.MustFromValue(map[string]any{"a": 1, "b": 2}), 1)
	s := acc.Schema().(*schema.ObjectTuple)
	if _, isReq := s.Field("a"); !isReq {
		t.Error("a required")
	}
	if f, isReq := s.Field("b"); f == nil || isReq {
		t.Error("b optional")
	}
}

func TestFoldKEmptyInput(t *testing.T) {
	if !schema.IsEmpty(FoldK(nil, 4)) {
		t.Error("FoldK(nil) should be the empty schema")
	}
}

func TestCombineDisjointKinds(t *testing.T) {
	a := NewAccumulator()
	a.Add(jsontype.MustFromValue([]any{1.0}), 1)
	b := NewAccumulator()
	b.Add(jsontype.MustFromValue(map[string]any{"k": "v"}), 1)
	s := a.Combine(b).Schema()
	if !s.Accepts(jsontype.MustFromValue([]any{2.0})) ||
		!s.Accepts(jsontype.MustFromValue(map[string]any{"k": "w"})) {
		t.Error("combined accumulator should carry both kinds")
	}
}
