package merge

import (
	"sort"

	"jxplain/internal/dist"
	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
)

// Accumulator is the distributable form of the K-reduction. The paper's
// central observation about K-reduction is that it distributes over union:
//
//	merge_K(R₁ ∪ R₂) = merge_K(merge_K(R₁) ∪ merge_K(R₂))
//
// so extraction can run as a partitioned fold with fan-in aggregation — the
// Spark execution model. Accumulator is that fold's state: Add folds in one
// type, Combine merges two accumulators (commutative and associative), and
// Schema renders the result, which is identical to merge.K on the same bag.
//
// The zero value (via NewAccumulator) is an empty accumulator.
type Accumulator struct {
	prims [4]bool // presence of null/bool/number/string
	arr   *arrayAcc
	obj   *objectAcc
}

type arrayAcc struct {
	elem   *Accumulator
	maxLen int
}

type objectAcc struct {
	count  int // number of object-kinded records folded in
	fields map[string]*fieldAcc
}

type fieldAcc struct {
	count int // number of records containing the key
	acc   *Accumulator
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator { return &Accumulator{} }

// Add folds one type occurrence into the accumulator with multiplicity n.
func (a *Accumulator) Add(t *jsontype.Type, n int) {
	switch t.Kind() {
	case jsontype.KindArray:
		if a.arr == nil {
			a.arr = &arrayAcc{elem: NewAccumulator()}
		}
		if t.Len() > a.arr.maxLen {
			a.arr.maxLen = t.Len()
		}
		for _, e := range t.Elems() {
			a.arr.elem.Add(e, n)
		}
	case jsontype.KindObject:
		if a.obj == nil {
			a.obj = &objectAcc{fields: map[string]*fieldAcc{}}
		}
		a.obj.count += n
		for _, f := range t.Fields() {
			fa := a.obj.fields[f.Key]
			if fa == nil {
				fa = &fieldAcc{acc: NewAccumulator()}
				a.obj.fields[f.Key] = fa
			}
			fa.count += n
			fa.acc.Add(f.Type, n)
		}
	default:
		a.prims[t.Kind()] = true
	}
}

// Combine merges other into a (mutating a) and returns a. Combine is
// commutative and associative up to the produced schema. other is
// consumed: its subtree accumulators may be adopted wholesale.
//
//jx:monoid consuming
func (a *Accumulator) Combine(other *Accumulator) *Accumulator {
	for k, p := range other.prims {
		if p {
			a.prims[k] = true
		}
	}
	if other.arr != nil {
		if a.arr == nil {
			a.arr = other.arr
		} else {
			if other.arr.maxLen > a.arr.maxLen {
				a.arr.maxLen = other.arr.maxLen
			}
			a.arr.elem.Combine(other.arr.elem)
		}
	}
	if other.obj != nil {
		if a.obj == nil {
			a.obj = other.obj
		} else {
			a.obj.count += other.obj.count
			for key, ofa := range other.obj.fields {
				fa := a.obj.fields[key]
				if fa == nil {
					a.obj.fields[key] = ofa
					continue
				}
				fa.count += ofa.count
				fa.acc.Combine(ofa.acc)
			}
		}
	}
	return a
}

// Empty reports whether nothing has been folded in.
func (a *Accumulator) Empty() bool {
	return a.arr == nil && a.obj == nil && !a.prims[0] && !a.prims[1] && !a.prims[2] && !a.prims[3]
}

// Schema renders the accumulated K-reduction schema. It is equivalent to
// merge.K over the bag of all types folded in.
func (a *Accumulator) Schema() schema.Schema {
	var alts []schema.Schema
	for k := jsontype.KindNull; k <= jsontype.KindString; k++ {
		if a.prims[k] {
			alts = append(alts, schema.NewPrimitive(k))
		}
	}
	if a.arr != nil {
		elem := schema.Empty()
		if !a.arr.elem.Empty() {
			elem = a.arr.elem.Schema()
		}
		alts = append(alts, &schema.ArrayCollection{Elem: elem, MaxLen: a.arr.maxLen})
	}
	if a.obj != nil {
		keys := make([]string, 0, len(a.obj.fields))
		for k := range a.obj.fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var required, optional []schema.FieldSchema
		for _, key := range keys {
			fa := a.obj.fields[key]
			f := schema.FieldSchema{Key: key, Schema: fa.acc.Schema()}
			if fa.count == a.obj.count {
				required = append(required, f)
			} else {
				optional = append(optional, f)
			}
		}
		alts = append(alts, schema.NewObjectTuple(required, optional))
	}
	return schema.NewUnion(alts...)
}

// FoldK runs the K-reduction as a parallel partitioned fold over types,
// demonstrating the distributed execution shape. The result equals K over
// the same bag for any worker count.
func FoldK(types []*jsontype.Type, workers int) schema.Schema {
	acc := dist.Fold(types, workers,
		NewAccumulator,
		func(a *Accumulator, t *jsontype.Type) *Accumulator { a.Add(t, 1); return a },
		func(a, b *Accumulator) *Accumulator { return a.Combine(b) })
	return acc.Schema()
}
