// Package merge implements the schema merge operators of Sections 2 and 4:
// the L-reduction (Naive), the K-reduction of Baazizi et al. that models
// production schema discovery (K, Algorithms 1–3), the four helper merges
// shared with JXPLAIN (collection/tuple merges for arrays and objects), and
// a distributable fold-based K-reduction (Accumulator) exploiting the
// operator's commutativity and associativity.
package merge

import (
	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
)

// Func is a recursive merge heuristic: it folds a bag of types into a
// schema. Algorithms 2 and 3 are parameterized by such a function.
type Func func(bag *jsontype.Bag) schema.Schema

// Naive implements the L-reduction (merge_naive): the schema is exactly the
// set of distinct types in the input. High precision, no generalization.
func Naive(bag *jsontype.Bag) schema.Schema {
	alts := make([]schema.Schema, 0, bag.Distinct())
	for _, t := range bag.Types() {
		alts = append(alts, ExactSchema(t))
	}
	return schema.NewUnion(alts...)
}

// ExactSchema returns the schema admitting exactly the type t (all object
// fields required, all array positions fixed).
func ExactSchema(t *jsontype.Type) schema.Schema {
	switch t.Kind() {
	case jsontype.KindArray:
		elems := make([]schema.Schema, t.Len())
		for i, e := range t.Elems() {
			elems[i] = ExactSchema(e)
		}
		return schema.NewArrayTuple(elems...)
	case jsontype.KindObject:
		fields := make([]schema.FieldSchema, 0, t.Len())
		for _, f := range t.Fields() {
			fields = append(fields, schema.FieldSchema{Key: f.Key, Schema: ExactSchema(f.Type)})
		}
		return schema.NewObjectTuple(fields, nil)
	default:
		return schema.NewPrimitive(t.Kind())
	}
}

// K implements the K-reduction (Algorithm 1): primitives merge naively,
// arrays always merge as single-entity collections, objects always merge as
// single-entity tuples. This models Spark's JSON data source and Oracle's
// JSON Data Guide.
func K(bag *jsontype.Bag) schema.Schema {
	prims, arrays, objects := bag.SplitKinds()
	alts := Primitives(prims)
	if arrays.Len() > 0 {
		alts = append(alts, ArrayColl(K, arrays))
	}
	if objects.Len() > 0 {
		alts = append(alts, ObjectTuple(K, objects))
	}
	return schema.NewUnion(alts...)
}

// Primitives returns one schema per distinct primitive type in the bag, in
// kind order (null, bool, number, string) for determinism.
func Primitives(bag *jsontype.Bag) []schema.Schema {
	var present [4]bool
	for _, t := range bag.Types() {
		if t.Kind().Primitive() {
			present[t.Kind()] = true
		}
	}
	var out []schema.Schema
	for k := jsontype.KindNull; k <= jsontype.KindString; k++ {
		if present[k] {
			out = append(out, schema.NewPrimitive(k))
		}
	}
	return out
}

// ArrayColl implements merge_array_coll (Algorithm 2): the bag of
// array-kinded types becomes a single ArrayCollection whose element schema
// is the recursive merge of every element of every array. MaxLen records
// the longest observed array for entropy accounting.
func ArrayColl(rec Func, bag *jsontype.Bag) schema.Schema {
	maxLen := 0
	for _, t := range bag.Types() {
		if t.Len() > maxLen {
			maxLen = t.Len()
		}
	}
	elems := bag.Elements()
	elem := schema.Empty()
	if elems.Len() > 0 {
		elem = rec(elems)
	}
	return &schema.ArrayCollection{Elem: elem, MaxLen: maxLen}
}

// ObjectColl is the object analog of Algorithm 2: the bag of object-kinded
// types becomes an ObjectCollection whose value schema is the recursive
// merge of every field value regardless of key. Domain records the active
// key-domain size for entropy accounting.
func ObjectColl(rec Func, bag *jsontype.Bag) schema.Schema {
	domain := map[string]bool{}
	for _, t := range bag.Types() {
		for _, f := range t.Fields() {
			domain[f.Key] = true
		}
	}
	values := bag.FieldValues()
	value := schema.Empty()
	if values.Len() > 0 {
		value = rec(values)
	}
	return &schema.ObjectCollection{Value: value, Domain: len(domain)}
}

// ObjectTuple implements merge_object_tuple (Algorithm 3): nested field
// types are grouped by key and recursively merged; keys present in every
// record (keys_∀) are required, the rest (keys_∃) are optional.
func ObjectTuple(rec Func, bag *jsontype.Bag) schema.Schema {
	keys, groups, present := bag.GroupByKey()
	total := bag.Len()
	var required, optional []schema.FieldSchema
	for i, key := range keys {
		f := schema.FieldSchema{Key: key, Schema: rec(groups[i])}
		if present[i] == total {
			required = append(required, f)
		} else {
			optional = append(optional, f)
		}
	}
	return schema.NewObjectTuple(required, optional)
}

// ArrayTuple is the array analog of Algorithm 3: positions are merged
// independently; the tuple's mandatory prefix is the shortest observed
// array, with longer positions forming the optional suffix.
func ArrayTuple(rec Func, bag *jsontype.Bag) schema.Schema {
	groups, _ := bag.GroupByIndex()
	minLen := -1
	for _, t := range bag.Types() {
		if minLen < 0 || t.Len() < minLen {
			minLen = t.Len()
		}
	}
	if minLen < 0 {
		minLen = 0
	}
	elems := make([]schema.Schema, len(groups))
	for i, g := range groups {
		elems[i] = rec(g)
	}
	return &schema.ArrayTuple{Elems: elems, MinLen: minLen}
}
