package core

import (
	"errors"
	"testing"

	"jxplain/internal/dataset"
	"jxplain/internal/jsontype"
)

// FuzzSketchDecode pins the wire decoder's totality contract: arbitrary
// bytes — truncated, bit-flipped, or adversarially constructed — must
// yield a *SketchFormatError or *SketchVersionError, never a panic, and
// anything that does decode must survive the operations the reducer will
// perform on it (Stats, Finish, re-marshal).
func FuzzSketchDecode(f *testing.F) {
	// Real sketch files as seeds: a full accumulator, a bag-only file
	// (sampling map side), and a bare sketch, over structurally rich data.
	cfg := Default()
	g, ok := dataset.ByName("github")
	if !ok {
		f.Fatal("github dataset missing")
	}
	acc := NewAccumulator(cfg)
	for _, r := range g.Generate(40, 1) {
		acc.Add(r.Type)
	}
	if data, err := acc.Marshal(); err == nil {
		f.Add(data)
		// Single-bit corruptions of a valid file make productive seeds.
		for _, i := range []int{4, 5, 6, len(data) / 2, len(data) - 1} {
			bad := append([]byte(nil), data...)
			bad[i] ^= 0x40
			f.Add(bad)
		}
	}
	sampling := cfg
	sampling.DetectionSample = 0.5
	bagOnly := NewAccumulator(sampling)
	bagOnly.Add(jsontype.MustFromValue(map[string]any{"k": []any{1.0, "s", nil}}))
	if data, err := bagOnly.Marshal(); err == nil {
		f.Add(data)
	}
	s := NewPathSketch()
	s.Add(jsontype.MustFromValue(map[string]any{"a": map[string]any{"b": []any{true}}}))
	if data, err := s.Marshal(); err == nil {
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte("JXSK"))
	f.Add([]byte{'J', 'X', 'S', 'K', SketchFormatVersion, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		checkErr := func(err error) {
			if err == nil {
				return
			}
			var ferr *SketchFormatError
			var verr *SketchVersionError
			if !errors.As(err, &ferr) && !errors.As(err, &verr) {
				t.Fatalf("untyped decode error %T: %v", err, err)
			}
		}

		sketch, err := UnmarshalPathSketch(data)
		checkErr(err)
		if err == nil {
			// A decoded sketch must be fully usable.
			sketch.Stats(Default())
			if _, err := sketch.Marshal(); err != nil {
				t.Fatalf("re-marshal of decoded sketch: %v", err)
			}
		}

		acc, err := UnmarshalAccumulator(data, Default())
		checkErr(err)
		if err == nil {
			acc.Stats()
			acc.Finish()
			if _, err := acc.Marshal(); err != nil {
				t.Fatalf("re-marshal of decoded accumulator: %v", err)
			}
		}
	})
}
