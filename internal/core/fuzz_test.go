package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"jxplain/internal/dataset"
	"jxplain/internal/jsontype"
)

// FuzzSketchDecode pins the wire decoder's totality contract: arbitrary
// bytes — truncated, bit-flipped, or adversarially constructed — must
// yield a *SketchFormatError or *SketchVersionError, never a panic, and
// anything that does decode must survive the operations the reducer will
// perform on it (Stats, Finish, re-marshal).
func FuzzSketchDecode(f *testing.F) {
	// Real sketch files as seeds: a full accumulator, a bag-only file
	// (sampling map side), and a bare sketch, over structurally rich data.
	cfg := Default()
	g, ok := dataset.ByName("github")
	if !ok {
		f.Fatal("github dataset missing")
	}
	acc := NewAccumulator(cfg)
	for _, r := range g.Generate(40, 1) {
		acc.Add(r.Type)
	}
	if data, err := acc.Marshal(); err == nil {
		f.Add(data)
		// Single-bit corruptions of a valid file make productive seeds.
		for _, i := range []int{4, 5, 6, len(data) / 2, len(data) - 1} {
			bad := append([]byte(nil), data...)
			bad[i] ^= 0x40
			f.Add(bad)
		}
	}
	sampling := cfg
	sampling.DetectionSample = 0.5
	bagOnly := NewAccumulator(sampling)
	bagOnly.Add(jsontype.MustFromValue(map[string]any{"k": []any{1.0, "s", nil}}))
	if data, err := bagOnly.Marshal(); err == nil {
		f.Add(data)
	}
	// A bounded-mode accumulator: the weighted reservoir replaces the
	// exact bag, so its snapshot marshals a bag-only file whose counts
	// passed through eviction — a seed shape the exact accumulators above
	// never produce.
	bounded := cfg
	bounded.Bounds = Bounds{ReservoirCapacity: 4}
	res := NewAccumulator(bounded)
	for _, r := range g.Generate(24, 7) {
		res.Add(r.Type)
	}
	if data, err := res.Marshal(); err == nil {
		f.Add(data)
	}
	s := NewPathSketch()
	s.Add(jsontype.MustFromValue(map[string]any{"a": map[string]any{"b": []any{true}}}))
	if data, err := s.Marshal(); err == nil {
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte("JXSK"))
	f.Add([]byte{'J', 'X', 'S', 'K', SketchFormatVersion, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		checkErr := func(err error) {
			if err == nil {
				return
			}
			var ferr *SketchFormatError
			var verr *SketchVersionError
			if !errors.As(err, &ferr) && !errors.As(err, &verr) {
				t.Fatalf("untyped decode error %T: %v", err, err)
			}
		}

		sketch, err := UnmarshalPathSketch(data)
		checkErr(err)
		if err == nil {
			// A decoded sketch must be fully usable.
			sketch.Stats(Default())
			if _, err := sketch.Marshal(); err != nil {
				t.Fatalf("re-marshal of decoded sketch: %v", err)
			}
		}

		acc, err := UnmarshalAccumulator(data, Default())
		checkErr(err)
		if err == nil {
			acc.Stats()
			acc.Finish()
			if _, err := acc.Marshal(); err != nil {
				t.Fatalf("re-marshal of decoded accumulator: %v", err)
			}
		}
	})
}

// FuzzSketchMerge pins the reduce-side contracts on arbitrary byte pairs:
// MergeSketch never panics (its merge-into decoder yields only the typed
// decode errors), and whenever a pair of files merges cleanly, the
// parallel tree reduce produces byte-identical accumulator state to the
// sequential fold.
func FuzzSketchMerge(f *testing.F) {
	cfg := Default()
	mkSeed := func(name string, n int) []byte {
		g, ok := dataset.ByName(name)
		if !ok {
			f.Fatalf("dataset %s missing", name)
		}
		acc := NewAccumulator(cfg)
		for _, r := range g.Generate(n, 1) {
			acc.Add(r.Type)
		}
		data, err := acc.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	a := mkSeed("github", 30)
	b := mkSeed("yelp-business", 30)
	f.Add(a, b)
	f.Add(b, a)
	// Truncations and single-bit corruptions of valid pairs.
	f.Add(a[:len(a)/2], b)
	f.Add(a, b[:5])
	for _, i := range []int{4, 6, len(a) / 2, len(a) - 1} {
		bad := append([]byte(nil), a...)
		bad[i] ^= 0x40
		f.Add(bad, b)
	}
	f.Add([]byte{}, []byte("JXSK"))

	f.Fuzz(func(t *testing.T, a, b []byte) {
		checkErr := func(err error) {
			if err == nil {
				return
			}
			var ferr *SketchFormatError
			var verr *SketchVersionError
			if !errors.As(err, &ferr) && !errors.As(err, &verr) {
				t.Fatalf("untyped merge error %T: %v", err, err)
			}
		}

		seq := NewAccumulator(cfg)
		errA := seq.MergeSketch(a)
		checkErr(errA)
		if errA != nil {
			return // the accumulator is poisoned by contract; stop here
		}
		errB := seq.MergeSketch(b)
		checkErr(errB)
		if errB != nil {
			return
		}

		seqBytes, err := seq.Marshal()
		if err != nil {
			t.Fatalf("re-marshal of merged accumulator: %v", err)
		}
		tree, err := ReduceSketches([][]byte{a, b}, cfg, 2)
		if err != nil {
			t.Fatalf("tree reduce rejects files the sequential fold accepted: %v", err)
		}
		treeBytes, err := tree.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(treeBytes, seqBytes) {
			t.Fatal("tree merge diverges from sequential merge bytes")
		}
	})
}

// FuzzReservoirVsExact pins the bounded accumulator's exact-regime
// contract against the exact Bag oracle: for any record stream, a
// reservoir whose capacity covers every distinct type (and no window or
// decay bound) must be indistinguishable from the exact accumulator —
// identical totals and byte-identical schema. The input is a JSONL
// stream; unparseable lines are skipped, so the fuzzer explores record
// multisets, duplicates, and orderings rather than JSON syntax (the
// decoders have their own fuzz targets).
func FuzzReservoirVsExact(f *testing.F) {
	f.Add([]byte("{\"a\":1}\n{\"b\":\"x\"}\n{\"a\":1}"))
	f.Add([]byte("[1,2,3]\n[\"s\"]\n{\"nested\":{\"k\":[true,null]}}"))
	f.Add([]byte("1\n\"s\"\nnull\ntrue\n{\"a\":{\"b\":{\"c\":1}}}"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var types []*jsontype.Type
		for _, line := range bytes.Split(data, []byte("\n")) {
			var v any
			if json.Unmarshal(line, &v) != nil {
				continue
			}
			ty, err := jsontype.FromValue(v)
			if err != nil {
				continue
			}
			types = append(types, ty)
		}
		if len(types) == 0 {
			return
		}
		cfg := Default()
		cfg.Bounds.ReservoirCapacity = len(types) // ≥ distinct by construction
		exact := NewAccumulator(Default())
		bounded := NewAccumulator(cfg)
		for _, ty := range types {
			exact.Add(ty)
			bounded.Add(ty)
		}
		if bounded.Records() != exact.Records() || bounded.Distinct() != exact.Distinct() {
			t.Fatalf("totals diverge: bounded (%d, %d) vs exact (%d, %d)",
				bounded.Records(), bounded.Distinct(), exact.Records(), exact.Distinct())
		}
		if r := bounded.Reservoir(); r.Evictions() != 0 || r.Dropped() != 0 {
			t.Fatalf("eviction in the covered regime: evictions=%d dropped=%d",
				r.Evictions(), r.Dropped())
		}
		eb, bb := schemaBytes(t, exact.Finish()), schemaBytes(t, bounded.Finish())
		if !bytes.Equal(eb, bb) {
			t.Fatal("covered reservoir diverges from exact Bag schema bytes")
		}
	})
}
