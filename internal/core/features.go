package core

import (
	"jxplain/internal/entity"
	"jxplain/internal/entropy"
	"jxplain/internal/jsontype"
)

// Feature-vector preprocessing (§6.4). Entity discovery partitions a bag
// of tuple-like types by the set of *paths* appearing in each record — not
// just its top-level keys — so entities distinguished only by nested
// structure (e.g. GitHub payloads) still separate. Paths descend through
// tuple-like children; by default they stop at nested-collection
// boundaries (the paper's memory optimization, Figure 5), since paths
// inside a collection (drug names, user ids) are record-unique noise that
// explodes the number of distinct feature vectors.

// subtreeDecision answers tuple/collection for a path relative to the
// partition point ("" is the partition point itself).
type subtreeDecision func(rel string, kind jsontype.Kind) entropy.Decision

// featurePaths returns the feature path set of one type rooted at the
// partition point. The type's own kind decision is known to be Tuple
// (that is why it is being partitioned), so extraction starts at its
// children. When pruneNested is false, paths inside nested collections are
// retained verbatim (concrete keys and indices), reproducing the
// unoptimized preprocessing of Figure 5.
func featurePaths(t *jsontype.Type, decide subtreeDecision, pruneNested bool) []string {
	var out []string
	appendChildFeatures(t, "", decide, pruneNested, &out)
	return out
}

func appendChildFeatures(t *jsontype.Type, rel string, decide subtreeDecision, prune bool, out *[]string) {
	switch t.Kind() {
	case jsontype.KindObject:
		for _, f := range t.Fields() {
			p := childKeyPath(rel, f.Key)
			*out = append(*out, p)
			appendFeatures(f.Type, p, decide, prune, out)
		}
	case jsontype.KindArray:
		for i, e := range t.Elems() {
			p := arrayIndexPath(rel, i)
			*out = append(*out, p)
			appendFeatures(e, p, decide, prune, out)
		}
	default:
		// Primitive kinds have no children, hence no child features.
	}
}

func appendFeatures(t *jsontype.Type, rel string, decide subtreeDecision, prune bool, out *[]string) {
	switch t.Kind() {
	case jsontype.KindObject:
		if decide(rel, jsontype.KindObject) == entropy.Collection {
			if prune {
				return
			}
		}
		appendChildFeatures(t, rel, decide, prune, out)
	case jsontype.KindArray:
		if decide(rel, jsontype.KindArray) == entropy.Collection {
			if prune {
				return
			}
		}
		appendChildFeatures(t, rel, decide, prune, out)
	default:
		// Primitives are leaves: their own path was appended by the
		// parent, and there is nothing below to descend into.
	}
}

// subtreeDecisions walks a bag exactly like CollectPathStats but with
// paths relative to the bag's root, returning the decision map feature
// extraction needs. This is the extra detection pass the recursive
// strategy pays at every partition point (the pipeline reuses pass ①
// instead).
func subtreeDecisions(bag *jsontype.Bag, cfg Config) map[string]pathDecision {
	out := map[string]pathDecision{}
	collectSubtree("", bag, cfg, out)
	return out
}

func collectSubtree(rel string, bag *jsontype.Bag, cfg Config, out map[string]pathDecision) {
	_, arrays, objects := bag.SplitKinds()
	if arrays.Len() > 0 {
		decision, _ := entropy.DetectArrays(arrays, cfg.Detection)
		if !cfg.DetectArrayTuples {
			decision = entropy.Collection
		}
		d := out[rel]
		d.arr, d.hasArr = decision, true
		out[rel] = d
		if decision == entropy.Collection {
			if elems := arrays.Elements(); elems.Len() > 0 {
				collectSubtree(arrayElemPath(rel), elems, cfg, out)
			}
		} else {
			groups, _ := arrays.GroupByIndex()
			for i, g := range groups {
				collectSubtree(arrayIndexPath(rel, i), g, cfg, out)
			}
		}
	}
	if objects.Len() > 0 {
		decision, _ := entropy.DetectObjects(objects, cfg.Detection)
		if !cfg.DetectObjectCollections {
			decision = entropy.Tuple
		}
		d := out[rel]
		d.obj, d.hasObj = decision, true
		out[rel] = d
		if decision == entropy.Collection {
			if values := objects.FieldValues(); values.Len() > 0 {
				collectSubtree(objectValuePath(rel), values, cfg, out)
			}
		} else {
			keys, groups, _ := objects.GroupByKey()
			for i, key := range keys {
				collectSubtree(childKeyPath(rel, key), groups[i], cfg, out)
			}
		}
	}
}

// decisionLookup adapts a decision map into a subtreeDecision. Paths
// missing from the map default to Tuple, which only affects values never
// observed during the decision walk.
func decisionLookup(decisions map[string]pathDecision) subtreeDecision {
	return func(rel string, kind jsontype.Kind) entropy.Decision {
		d, ok := decisions[rel]
		if !ok {
			return entropy.Tuple
		}
		if kind == jsontype.KindArray {
			if d.hasArr {
				return d.arr
			}
			return entropy.Tuple
		}
		if d.hasObj {
			return d.obj
		}
		return entropy.Tuple
	}
}

// BuildFeatureSet materializes the root collection's feature vectors into
// an entity.FeatureSet — the §6.4 preprocessing output — using the given
// encoding and pruning flag. Exposed for the Figure 5 memory experiment
// and for external inspection of the partitioning input.
func BuildFeatureSet(bag *jsontype.Bag, cfg Config, pruneNested bool, enc entity.Encoding) *entity.FeatureSet {
	decisions := subtreeDecisions(bag, cfg)
	decide := decisionLookup(decisions)
	fs := entity.NewFeatureSet(enc)
	bag.Each(func(t *jsontype.Type, n int) {
		if t.Kind() != jsontype.KindObject && t.Kind() != jsontype.KindArray {
			return
		}
		paths := featurePaths(t, decide, pruneNested)
		fs.AddNamesN(paths, n)
	})
	return fs
}
