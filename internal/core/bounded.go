package core

import (
	"jxplain/internal/jsontype"
)

// Bounded-stream operation (Config.Bounds): the accumulator swaps its two
// unbounded structures for capped counterparts —
//
//   - the exact union bag becomes a weighted reservoir over distinct
//     record types (jsontype.ReservoirBag), so pass ②/③ synthesis runs
//     over at most ReservoirCapacity types;
//   - the cumulative pass-① sketch becomes a live epoch plus a ring of
//     serialized closed windows (sketchRing), so detection statistics
//     cover the recent horizon and trie memory is bounded by the
//     horizon's distinct structure;
//
// with optional exponential decay aging both at every rotation. The
// remaining unbounded term is the global type interner, which is
// append-only by design (pointer identity is the bag's currency); its
// per-type footprint is small and flat-RSS claims are made net of it —
// see DESIGN.md "Unbounded streams" and the window benchmark.

// advance moves the bounded stream's record clock forward by n and
// rotates once when the clock passes the cadence. An add is atomic with
// respect to windows — a burst larger than WindowRecords lands in one
// epoch and closes it, rather than padding the ring with empty windows —
// so windows hold *at least* WindowRecords records. A no-op without
// bounds.
func (a *Accumulator) advance(n int) {
	w := a.cfg.Bounds.WindowRecords
	if w <= 0 {
		return
	}
	a.sinceRotate += n
	if a.sinceRotate >= w {
		a.sinceRotate = 0
		a.rotate()
	}
}

// rotate closes the current epoch: with a ring, the live sketch is
// serialized, pushed (evicting the oldest window beyond the width), and
// replaced by a fresh epoch; without one, decay ages the live sketch in
// place. The reservoir decays on every rotation when a factor is set.
func (a *Accumulator) rotate() {
	b := a.cfg.Bounds
	if a.ring != nil {
		closed := a.sketch
		data, _ := closed.Marshal() // in-memory encode; the error leg is vestigial
		a.ring.push(data)
		a.sketch = NewPathSketch()
		if a.onWindowClose != nil {
			a.onWindowClose(a.ring.closed-1, closed.Records(), closed)
		}
	} else if b.hasDecay() && a.sketch != nil {
		//jx:lint-ignore errtotal Decay asserts factor in (0,1) and hasDecay establishes it
		a.sketch.Decay(b.DecayFactor)
	}
	if b.hasDecay() && a.res != nil {
		//jx:lint-ignore errtotal Decay asserts factor in (0,1) and hasDecay establishes it
		a.res.Decay(b.DecayFactor)
	}
}

// OnWindowClose registers a hook called at every ring rotation with the
// window's index (0-based, monotone), its record count, and the closed
// epoch's sketch. The sketch is detached — the accumulator keeps only its
// serialized form — so the hook may derive statistics from it (e.g. a
// windowed drift diff) at leisure, but must not fold more records in.
// Only ring-configured accumulators rotate windows.
func (a *Accumulator) OnWindowClose(fn func(index, records int, sketch *PathSketch)) {
	a.onWindowClose = fn
}

// unionBag returns the bag passes ② and ③ synthesize from: the exact
// union bag, or a snapshot of the reservoir's retained types.
func (a *Accumulator) unionBag() *jsontype.Bag {
	if a.res != nil {
		return a.res.Snapshot()
	}
	return a.bag
}

// statsSketch returns the sketch pass ① derives from: the cumulative live
// sketch, or the tree-reduced rollup of the retained ring windows plus
// the live epoch. Rollup never consumes the live epoch (it folds through
// the copying combine), so more records may be added afterwards.
func (a *Accumulator) statsSketch() *PathSketch {
	if a.ring == nil {
		return a.sketch
	}
	merged, err := a.ring.rollup(a.sketch, a.cfg.StatsWorkers)
	if err != nil {
		// The ring holds only bytes this process serialized itself; a
		// decode failure is memory corruption, not an input condition.
		//jx:lint-ignore errtotal ring windows are self-serialized, decode failure is an internal invariant violation
		panic("core: corrupt self-serialized window: " + err.Error())
	}
	return merged
}

// Reservoir exposes the bounded union's counters (seen, retained,
// dropped, evictions) for observability; nil in exact mode.
func (a *Accumulator) Reservoir() *jsontype.ReservoirBag { return a.res }

// WindowsClosed returns how many windows have rotated into the ring over
// the accumulator's lifetime (0 without a ring).
func (a *Accumulator) WindowsClosed() int {
	if a.ring == nil {
		return 0
	}
	return a.ring.closed
}

// SketchNodes returns the trie node count of the state pass ① would read
// right now — live sketch plus retained windows decoded — which is the
// memory proxy the flat-RSS experiment asserts on. 0 for sampling
// configurations that keep no sketch.
func (a *Accumulator) SketchNodes() int {
	if a.sketch == nil {
		return 0
	}
	return a.statsSketch().Nodes()
}
