package core

import (
	"sort"

	"jxplain/internal/entropy"
	"jxplain/internal/jsontype"
	"jxplain/internal/stats"
)

// statsTrie is the per-partition pass-① state: a trie over *concrete*
// paths (object keys and array positions) carrying the statistics
// Algorithm 5 needs. Every counter is mergeable — record and key-presence
// counts add, length histograms add, the similar-types constraint combines
// through the subsumption rule — which is what lets per-chunk tries fold
// into exactly the statistics one pass over the whole collection would
// have produced (see parallel.go for the fold, wire.go for the
// serialized form).
//
// Node state is deliberately enumerable, not just walkable: the each*
// iterators expose every counter in a deterministic order and the set*
// builders reconstruct a node from those enumerations, so the wire codec
// round-trips a trie without reaching into representation details like
// map layout or accumulator internals.
type statsTrie struct {
	// Object-kinded statistics at this path.
	objCount  int
	keyCounts map[string]int
	objSim    jsontype.SimilarityAccumulator

	// Array-kinded statistics at this path.
	arrCount  int
	lenCounts map[int]int
	arrSim    jsontype.SimilarityAccumulator

	children map[string]*statsTrie // object keys
	elems    []*statsTrie          // array positions
}

// newStatsTrie allocates an empty trie node.
//
//jx:coldpath allocates once per newly observed path node, not per record
func newStatsTrie() *statsTrie { return &statsTrie{} }

//jx:hotpath
func (t *statsTrie) child(key string) *statsTrie {
	if t.children == nil {
		t.children = map[string]*statsTrie{}
	}
	c := t.children[key]
	if c == nil {
		c = newStatsTrie()
		t.children[key] = c
	}
	return c
}

//jx:hotpath
func (t *statsTrie) elem(i int) *statsTrie {
	for len(t.elems) <= i {
		t.elems = append(t.elems, newStatsTrie())
	}
	return t.elems[i]
}

// add folds one value type (with multiplicity n) into the trie.
//
//jx:hotpath
func (t *statsTrie) add(ty *jsontype.Type, n int) {
	switch ty.Kind() {
	case jsontype.KindObject:
		t.objCount += n
		if t.keyCounts == nil {
			t.keyCounts = map[string]int{}
		}
		for _, f := range ty.Fields() {
			t.keyCounts[f.Key] += n
			t.objSim.Add(f.Type)
			t.child(f.Key).add(f.Type, n)
		}
	case jsontype.KindArray:
		t.arrCount += n
		if t.lenCounts == nil {
			t.lenCounts = map[int]int{}
		}
		t.lenCounts[ty.Len()] += n
		for i, e := range ty.Elems() {
			t.arrSim.Add(e)
			t.elem(i).add(e, n)
		}
	default:
		// Primitive occurrences carry no per-node stats of their own;
		// they are counted by the parent's key/length distributions.
	}
}

// combine merges other into t (mutating t). other is consumed: its
// maps and children may be adopted wholesale.
//
//jx:hotpath
//jx:monoid consuming
func (t *statsTrie) combine(other *statsTrie) *statsTrie {
	t.objCount += other.objCount
	if other.keyCounts != nil {
		if t.keyCounts == nil {
			t.keyCounts = other.keyCounts
		} else {
			for k, n := range other.keyCounts {
				t.keyCounts[k] += n
			}
		}
	}
	t.objSim.Combine(&other.objSim)

	t.arrCount += other.arrCount
	if other.lenCounts != nil {
		if t.lenCounts == nil {
			t.lenCounts = other.lenCounts
		} else {
			for l, n := range other.lenCounts {
				t.lenCounts[l] += n
			}
		}
	}
	t.arrSim.Combine(&other.arrSim)

	for k, oc := range other.children {
		if tc, ok := t.children[k]; ok {
			tc.combine(oc)
		} else {
			t.child(k).combine(oc)
		}
	}
	for i, oe := range other.elems {
		t.elem(i).combine(oe)
	}
	return t
}

// combineShared folds other into t while treating other's whole subtree
// as immutable: counters are copied, never adopted. combine's
// map-adoption shortcut is correct for Merge (the argument is consumed)
// but must not be used where the source trie lives on — derive builds
// wildcard merge nodes from live children, and adopting a child's map
// there would let a later fold into the merge node silently corrupt the
// sketch Stats was called on.
//
//jx:monoid
func (t *statsTrie) combineShared(other *statsTrie) *statsTrie {
	t.objCount += other.objCount
	for k, n := range other.keyCounts {
		t.setKeyCount(k, n)
	}
	t.objSim.Combine(&other.objSim)

	t.arrCount += other.arrCount
	for l, n := range other.lenCounts {
		t.setLenCount(l, n)
	}
	t.arrSim.Combine(&other.arrSim)

	for k, oc := range other.children {
		t.child(k).combineShared(oc)
	}
	for i, oe := range other.elems {
		t.elem(i).combineShared(oe)
	}
	return t
}

// decay scales every additive counter by factor (flooring) and compacts
// the subtree: children whose counters and descendants have all decayed
// to zero are unlinked, and trailing zeroed array positions are trimmed,
// so paths that stopped appearing in the stream eventually release their
// nodes instead of pinning the trie forever. The similarity accumulators
// are left untouched — they encode a monotone constraint (a dissimilarity
// once observed cannot be un-observed), not a frequency, so aging them
// would claim evidence the stream never retracted.
func (t *statsTrie) decay(factor float64) {
	t.objCount = int(float64(t.objCount) * factor)
	for k, n := range t.keyCounts {
		if scaled := int(float64(n) * factor); scaled > 0 {
			t.keyCounts[k] = scaled
		} else {
			delete(t.keyCounts, k)
		}
	}
	if len(t.keyCounts) == 0 {
		t.keyCounts = nil
	}
	t.arrCount = int(float64(t.arrCount) * factor)
	for l, n := range t.lenCounts {
		if scaled := int(float64(n) * factor); scaled > 0 {
			t.lenCounts[l] = scaled
		} else {
			delete(t.lenCounts, l)
		}
	}
	if len(t.lenCounts) == 0 {
		t.lenCounts = nil
	}
	for k, c := range t.children {
		c.decay(factor)
		if c.decayedOut() {
			delete(t.children, k)
		}
	}
	if len(t.children) == 0 {
		t.children = nil
	}
	for _, e := range t.elems {
		e.decay(factor)
	}
	for len(t.elems) > 0 && t.elems[len(t.elems)-1].decayedOut() {
		t.elems = t.elems[:len(t.elems)-1]
	}
}

// decayedOut reports whether every counter in the subtree has reached
// zero, licensing compaction.
func (t *statsTrie) decayedOut() bool {
	if t.objCount != 0 || t.arrCount != 0 ||
		len(t.keyCounts) != 0 || len(t.lenCounts) != 0 {
		return false
	}
	for _, c := range t.children {
		if !c.decayedOut() {
			return false
		}
	}
	for _, e := range t.elems {
		if !e.decayedOut() {
			return false
		}
	}
	return true
}

// nodeCount returns the number of trie nodes in the subtree — the memory
// proxy behind the flat-RSS assertions.
func (t *statsTrie) nodeCount() int {
	n := 1
	for _, c := range t.children {
		n += c.nodeCount()
	}
	for _, e := range t.elems {
		n += e.nodeCount()
	}
	return n
}

// ---- enumerable node state (the encode side of the wire codec) ----

// eachKeyCount calls fn for every (key, presence count) pair in sorted
// key order.
func (t *statsTrie) eachKeyCount(fn func(key string, n int)) {
	keys := make([]string, 0, len(t.keyCounts))
	for k := range t.keyCounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fn(k, t.keyCounts[k])
	}
}

// eachLenCount calls fn for every (array length, count) pair in ascending
// length order.
func (t *statsTrie) eachLenCount(fn func(length, n int)) {
	lengths := make([]int, 0, len(t.lenCounts))
	for l := range t.lenCounts {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	for _, l := range lengths {
		fn(l, t.lenCounts[l])
	}
}

// eachChild calls fn for every named child in sorted key order.
func (t *statsTrie) eachChild(fn func(key string, c *statsTrie)) {
	for _, k := range sortedKeys(t.children) {
		fn(k, t.children[k])
	}
}

// ---- node builders (the decode side of the wire codec) ----

// setKeyCount records a key-presence count on a node under construction.
//
//jx:hotpath
func (t *statsTrie) setKeyCount(key string, n int) {
	if t.keyCounts == nil {
		t.keyCounts = map[string]int{}
	}
	t.keyCounts[key] += n
}

// setLenCount records an array-length count on a node under construction.
//
//jx:hotpath
func (t *statsTrie) setLenCount(length, n int) {
	if t.lenCounts == nil {
		t.lenCounts = map[int]int{}
	}
	t.lenCounts[length] += n
}

// attachChild links a decoded child subtree under key.
func (t *statsTrie) attachChild(key string, c *statsTrie) {
	if t.children == nil {
		t.children = map[string]*statsTrie{}
	}
	t.children[key] = c
}

// attachElem appends a decoded subtree at the next array position.
func (t *statsTrie) attachElem(c *statsTrie) {
	t.elems = append(t.elems, c)
}

// ---- evidence derivation ----

// objectEvidence renders the node's object statistics as entropy.Evidence,
// matching entropy.DetectObjects bit for bit.
func (t *statsTrie) objectEvidence() entropy.Evidence {
	// Key order must be pinned before the float64 summation inside Entropy:
	// FP addition is not associative, so map order would leak into the
	// entropy bits (and differ from entropy.DetectObjects).
	weights := make([]float64, 0, len(t.keyCounts))
	t.eachKeyCount(func(_ string, n int) {
		weights = append(weights, float64(n))
	})
	return entropy.Evidence{
		KeyEntropy:   stats.Entropy(weights, float64(t.objCount)),
		Similar:      t.objSim.Similar(),
		Records:      t.objCount,
		DistinctKeys: len(t.keyCounts),
	}
}

// arrayEvidence renders the node's array statistics, matching
// entropy.DetectArrays.
func (t *statsTrie) arrayEvidence() entropy.Evidence {
	weights := make([]float64, 0, len(t.lenCounts))
	t.eachLenCount(func(_, n int) {
		weights = append(weights, float64(n))
	})
	return entropy.Evidence{
		KeyEntropy:   stats.Entropy(weights, float64(t.arrCount)),
		Similar:      t.arrSim.Similar(),
		Records:      t.arrCount,
		DistinctKeys: len(t.lenCounts),
	}
}

// derive walks the aggregated trie top-down, emitting the same PathStat
// rows the sequential CollectPathStats produces.
func (t *statsTrie) derive(path string, cfg Config, out *[]PathStat) {
	if t.arrCount > 0 {
		ev := t.arrayEvidence()
		decision := entropy.Decide(ev, cfg.Detection)
		if !cfg.DetectArrayTuples {
			decision = entropy.Collection
		}
		*out = append(*out, PathStat{
			Path: path, Kind: jsontype.KindArray, Decision: decision, Evidence: ev,
		})
		if decision == entropy.Collection {
			merged := newStatsTrie()
			for _, e := range t.elems {
				merged.combineShared(e)
			}
			if merged.objCount > 0 || merged.arrCount > 0 {
				merged.derive(arrayElemPath(path), cfg, out)
			}
		} else {
			for i, e := range t.elems {
				e.derive(arrayIndexPath(path, i), cfg, out)
			}
		}
	}
	if t.objCount > 0 {
		ev := t.objectEvidence()
		decision := entropy.Decide(ev, cfg.Detection)
		if !cfg.DetectObjectCollections {
			decision = entropy.Tuple
		}
		*out = append(*out, PathStat{
			Path: path, Kind: jsontype.KindObject, Decision: decision, Evidence: ev,
		})
		if decision == entropy.Collection {
			merged := newStatsTrie()
			keys := sortedKeys(t.children)
			for _, k := range keys {
				merged.combineShared(t.children[k])
			}
			if merged.objCount > 0 || merged.arrCount > 0 {
				merged.derive(objectValuePath(path), cfg, out)
			}
		} else {
			for _, k := range sortedKeys(t.children) {
				t.children[k].derive(childKeyPath(path, k), cfg, out)
			}
		}
	}
}

func sortedKeys(m map[string]*statsTrie) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
