package core

import (
	"fmt"

	"jxplain/internal/dist"
)

// SketchMergeError reports which file of a multi-sketch reduction failed,
// wrapping the typed decode error. Drivers that know the files' names can
// translate Index back into one.
//
//jx:totalerror
type SketchMergeError struct {
	Index int   // position of the failing file in the input slice
	Err   error // the *SketchFormatError or *SketchVersionError
}

func (e *SketchMergeError) Error() string { return fmt.Sprintf("sketch %d: %v", e.Index, e.Err) }

func (e *SketchMergeError) Unwrap() error { return e.Err }

// Parallel tree reduction over serialized sketches — the reduce-side
// counterpart of the sharded map phase. A sequential reduce folds sketch
// files one by one into a single accumulator; at 16+ shards that serial
// fold is the Amdahl bottleneck of the whole run. MergeSketches instead
// decodes contiguous *runs* of files in parallel (each run folded
// left-to-right through the merge-into decoder) and then combines the run
// accumulators pairwise, adjacent-first, as a balanced binary tree.
//
// Why this is allowed to parallelize at all: Accumulator.Merge is
// associative in the order-preserving sense pinned by the wire_test merge
// law properties — the bag union presents the left operand's first-seen
// type order followed by the right operand's unseen types, so any
// grouping that keeps operands adjacent and in order,
//
//	(s0 ⊕ s1) ⊕ (s2 ⊕ s3) = s0 ⊕ s1 ⊕ s2 ⊕ s3,
//
// reproduces the sequential fold exactly, bag order included, and with it
// the byte-identical schema. Commuting operands would only preserve the
// multiset and statistics, not the presentation order, which is why the
// tree combines adjacent pairs and never work-steals across the order.

// MergeSketches folds the serialized sketches into a, in order, merging
// them as a balanced binary tree over at most `workers` concurrent
// goroutines (workers <= 0 means one per core). The result is
// byte-identical to calling MergeSketch on each file in sequence, at
// every width and worker count.
//
// Like MergeSketch, a corrupt input aborts the reduction with a
// *SketchMergeError carrying the failing file's index around the typed
// decode error; the accumulator must then be discarded.
func (a *Accumulator) MergeSketches(files [][]byte, workers int) error {
	if workers <= 0 {
		workers = dist.DefaultWorkers()
	}
	if workers == 1 || len(files) < 2 {
		for i, data := range files {
			if err := a.MergeSketch(data); err != nil {
				return &SketchMergeError{Index: i, Err: err}
			}
		}
		return nil
	}

	// Leaf level: contiguous runs of files, one accumulator per run, each
	// folded left-to-right with the merge-into decoder. Decode dominates
	// reduce cost, so the run fold is where the workers earn their keep;
	// runs ≤ workers keeps every leaf busy without oversubscribing.
	runs := workers
	if runs > len(files) {
		runs = len(files)
	}
	accs := make([]*Accumulator, runs)
	errs := make([]error, runs)
	dist.ForEach(runs, runs, func(i int) {
		lo, hi := len(files)*i/runs, len(files)*(i+1)/runs
		acc := NewAccumulator(a.cfg)
		for j := lo; j < hi; j++ {
			if err := acc.MergeSketch(files[j]); err != nil {
				errs[i] = &SketchMergeError{Index: j, Err: err}
				return
			}
		}
		accs[i] = acc
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// An empty reducer adopts the tree result outright instead of walking
	// it a final time; otherwise fold it in like any other operand.
	// Bounded reducers always fold: their reservoir and ring state cannot
	// be adopted wholesale.
	res := treeCombine(accs, workers, func(dst, src *Accumulator) {
		dst.Merge(src)
	})
	if !a.cfg.Bounds.bounded() && a.bag.Len() == 0 && a.bag.Distinct() == 0 {
		a.bag = res.bag
		a.sketch = res.sketch // same configuration, so nil-ness matches
		return nil
	}
	a.Merge(res)
	return nil
}

// treeCombine merges items down to one by folding adjacent pairs in
// parallel rounds — ⌈log2(n)⌉ rounds, each halving the count — and
// returns the survivor (items[0], mutated in place). merge(dst, src) must
// fold src into dst and is only ever called with dst preceding src, so
// order-preserving associativity is all it needs; items must be
// non-empty. Shared by the accumulator reduce above and the sketch-level
// ReducePathSketches (window.go).
func treeCombine[E any](items []E, workers int, merge func(dst, src E)) E {
	for len(items) > 1 {
		half := len(items) / 2
		dist.ForEach(half, workers, func(i int) {
			merge(items[2*i], items[2*i+1])
		})
		next := items[:0]
		for i := 0; i < half; i++ {
			next = append(next, items[2*i])
		}
		if len(items)%2 == 1 {
			next = append(next, items[len(items)-1])
		}
		items = next
	}
	return items[0]
}

// ReduceSketches builds an accumulator for cfg and tree-merges the
// serialized sketches into it — the one-call reduce phase for drivers
// that hold all map outputs in memory.
func ReduceSketches(files [][]byte, cfg Config, workers int) (*Accumulator, error) {
	acc := NewAccumulator(cfg)
	if err := acc.MergeSketches(files, workers); err != nil {
		return nil, err
	}
	return acc, nil
}
