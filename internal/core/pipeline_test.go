package core

import (
	"fmt"
	"math/rand"
	"testing"

	"jxplain/internal/entropy"
	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
)

func TestPipelineEqualsDiscoverHandcrafted(t *testing.T) {
	bags := []*jsontype.Bag{
		bagFrom(t,
			`{"ts":7,"event":"login","user":{"name":"bob","geo":[1.1,2.2]}}`,
			`{"ts":8,"event":"serve","files":["a.txt","b.txt"]}`,
		),
		bagFrom(t, `1`, `"x"`, `null`, `[1,2,3]`, `{"a":true}`),
		bagFrom(t, `{}`, `{}`, `[]`),
	}
	// A pharma-like bag.
	pharma := &jsontype.Bag{}
	for i := 0; i < 50; i++ {
		pharma.Add(ty(t, fmt.Sprintf(`{"counts":{"D%d":1,"D%d":2}}`, i%29, (i+7)%29)))
	}
	bags = append(bags, pharma)

	for bi, bag := range bags {
		for _, cfg := range []Config{Default(), BimaxNaiveConfig(), KReduceConfig()} {
			rec := Discover(bag, cfg)
			pipe := Pipeline(bag, cfg)
			if !schema.Equal(schema.Simplify(rec), schema.Simplify(pipe)) {
				t.Errorf("bag %d cfg %v: pipeline diverges\nrecursive: %s\npipeline:  %s",
					bi, cfg.Partition, rec, pipe)
			}
		}
	}
}

func TestPipelineEqualsDiscoverRandom(t *testing.T) {
	// Random single-entity-style records (no cross-entity complex-field
	// conflicts, per the documented per-path vs per-bag caveat).
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		bag := &jsontype.Bag{}
		n := 5 + r.Intn(30)
		for i := 0; i < n; i++ {
			rec := map[string]any{"id": float64(i)}
			if r.Intn(2) == 0 {
				rec["tags"] = randStringArray(r)
			}
			if r.Intn(3) == 0 {
				rec["geo"] = []any{1.5, 2.5}
			}
			if r.Intn(2) == 0 {
				rec["meta"] = map[string]any{"a": 1.0, "b": "x"}
			}
			bag.Add(jsontype.MustFromValue(rec))
		}
		recSchema := Discover(bag, Default())
		pipeSchema := Pipeline(bag, Default())
		if !schema.Equal(schema.Simplify(recSchema), schema.Simplify(pipeSchema)) {
			t.Fatalf("trial %d: pipeline diverges\n%s\n%s", trial, recSchema, pipeSchema)
		}
	}
}

func randStringArray(r *rand.Rand) []any {
	n := r.Intn(5)
	out := make([]any, n)
	for i := range out {
		out[i] = "t"
	}
	return out
}

func TestPipelineEmptyBag(t *testing.T) {
	if !schema.IsEmpty(Pipeline(&jsontype.Bag{}, Default())) {
		t.Error("empty bag should give the empty schema")
	}
	if !schema.IsEmpty(PipelineTypes(nil, Default())) {
		t.Error("PipelineTypes(nil) should give the empty schema")
	}
}

func TestCollectPathStats(t *testing.T) {
	bag := bagFrom(t,
		`{"ts":1,"user":{"geo":[1.0,2.0]},"tags":["a"]}`,
		`{"ts":2,"user":{"geo":[3.0,4.0]},"tags":["b","c","d"]}`,
		`{"ts":3,"user":{"geo":[5.0,6.0]},"tags":[]}`,
	)
	stats := CollectPathStats(bag, Default())
	byPath := map[string]PathStat{}
	for _, st := range stats {
		byPath[st.Path+"/"+st.Kind.String()] = st
	}
	if st, ok := byPath["$/object"]; !ok || st.Decision != entropy.Tuple {
		t.Errorf("root should be a tuple: %+v", st)
	}
	if st, ok := byPath["$.user.geo/array"]; !ok || st.Decision != entropy.Tuple {
		t.Errorf("geo should be a tuple: %+v", st)
	}
	if st, ok := byPath["$.tags/array"]; !ok || st.Decision != entropy.Collection {
		t.Errorf("tags should be a collection: %+v", st)
	}
}

func TestCollectPathStatsSorted(t *testing.T) {
	bag := bagFrom(t, `{"b":{"x":1},"a":[1,2,3,4]}`, `{"b":{"x":2},"a":[1]}`)
	stats := CollectPathStats(bag, Default())
	for i := 1; i < len(stats); i++ {
		if stats[i].Path < stats[i-1].Path {
			t.Fatalf("stats not sorted: %q after %q", stats[i].Path, stats[i-1].Path)
		}
	}
}

func TestCollectionPathsHelper(t *testing.T) {
	bag := &jsontype.Bag{}
	for i := 0; i < 30; i++ {
		bag.Add(ty(t, fmt.Sprintf(`{"m":{"k%d":1,"k%d":2},"geo":[1.0,2.0]}`, i%19, (i+5)%19)))
	}
	stats := CollectPathStats(bag, Default())
	colls := CollectionPaths(stats)
	entry, ok := colls["$.m"]
	if !ok || !entry[1] {
		t.Errorf("$.m should be an object collection: %v", colls)
	}
	if _, ok := colls["$.geo"]; ok {
		t.Error("$.geo is a tuple, not a collection")
	}
}

func TestPathEscapingNoAliasing(t *testing.T) {
	// {"a.b": 𝕊-collection candidates} and {"a": {"b": …}} must not share
	// decision-map entries.
	bag := &jsontype.Bag{}
	for i := 0; i < 30; i++ {
		bag.Add(ty(t, fmt.Sprintf(`{"a.b":{"k%d":1,"k%d":2}}`, i%17, (i+5)%17)))
		bag.Add(ty(t, `{"a":{"b":{"fixed":1,"also":2}}}`))
	}
	rec := Discover(bag, Default())
	pipe := Pipeline(bag, Default())
	if !schema.Equal(schema.Simplify(rec), schema.Simplify(pipe)) {
		t.Errorf("dotted keys alias paths:\nrecursive: %s\npipeline:  %s", rec, pipe)
	}
	// The dotted-key map is a collection; the nested b is a tuple.
	if !pipe.Accepts(ty(t, `{"a.b":{"brand_new":9}}`)) {
		t.Error("collection under dotted key should generalize")
	}
	if pipe.Accepts(ty(t, `{"a":{"b":{"brand_new":9,"fixed":1,"also":2}}}`)) {
		t.Error("nested tuple must not inherit the collection decision")
	}
}

func TestPipelineMixedKindsAtOnePath(t *testing.T) {
	// A path carrying both arrays and objects exercises the separate
	// per-kind decisions.
	bag := bagFrom(t,
		`{"v":[1,2,3,4,5]}`,
		`{"v":[1]}`,
		`{"v":[2,3]}`,
		`{"v":{"a":1}}`,
		`{"v":{"a":2,"b":3}}`,
	)
	rec := Discover(bag, Default())
	pipe := Pipeline(bag, Default())
	if !schema.Equal(schema.Simplify(rec), schema.Simplify(pipe)) {
		t.Errorf("mixed kinds diverge:\n%s\n%s", rec, pipe)
	}
	if !rec.Accepts(ty(t, `{"v":{"a":9,"b":9}}`)) || !rec.Accepts(ty(t, `{"v":[9,9,9]}`)) {
		t.Error("both kinds should be admitted")
	}
}
