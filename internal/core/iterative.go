package core

import (
	"math/rand"

	"jxplain/internal/dist"
	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
)

// IterativeReport describes one IterativeDiscover run.
type IterativeReport struct {
	// Rounds is the number of discovery rounds executed (≥ 1).
	Rounds int
	// SampleSizes records the training-sample size at each round.
	SampleSizes []int
	// FailuresPerRound records how many held-back records failed
	// validation after each round (the last entry is 0 on convergence).
	FailuresPerRound []int
	// Converged reports whether the final schema validated every record.
	Converged bool
}

// IterativeDiscover implements the sampling mitigation of §4.2: derive a
// schema from a small seed sample, validate the remaining records, fold
// the failures into the sample, and repeat until everything validates or
// maxRounds is exhausted. This makes the multi-pass JXPLAIN affordable on
// large collections while still capturing rare fields.
//
// initialFraction is the seed-sample fraction (clamped to (0, 1]); the
// sample is chosen uniformly with the given seed. Validation runs in
// parallel.
func IterativeDiscover(types []*jsontype.Type, cfg Config, initialFraction float64, maxRounds int, seed int64) (schema.Schema, IterativeReport) {
	var report IterativeReport
	if len(types) == 0 {
		report.Rounds = 1
		report.SampleSizes = []int{0}
		report.FailuresPerRound = []int{0}
		report.Converged = true
		return schema.Empty(), report
	}
	if initialFraction <= 0 || initialFraction > 1 {
		initialFraction = 0.01
	}
	if maxRounds < 1 {
		maxRounds = 1
	}

	r := rand.New(rand.NewSource(seed))
	perm := r.Perm(len(types))
	sampleSize := int(float64(len(types)) * initialFraction)
	if sampleSize < 1 {
		sampleSize = 1
	}

	inSample := make([]bool, len(types))
	sample := make([]*jsontype.Type, 0, sampleSize)
	for _, idx := range perm[:sampleSize] {
		inSample[idx] = true
		sample = append(sample, types[idx])
	}

	var discovered schema.Schema
	for round := 0; round < maxRounds; round++ {
		report.Rounds = round + 1
		report.SampleSizes = append(report.SampleSizes, len(sample))
		discovered = DiscoverTypes(sample, cfg)

		failures := validateRest(types, inSample, discovered)
		report.FailuresPerRound = append(report.FailuresPerRound, len(failures))
		if len(failures) == 0 {
			report.Converged = true
			return discovered, report
		}
		for _, idx := range failures {
			inSample[idx] = true
			sample = append(sample, types[idx])
		}
	}
	// Final convergence check after the last augmentation round.
	discovered = DiscoverTypes(sample, cfg)
	report.Converged = len(validateRest(types, inSample, discovered)) == 0
	return discovered, report
}

// validateRest returns the indices of records outside the sample that the
// schema rejects.
func validateRest(types []*jsontype.Type, inSample []bool, s schema.Schema) []int {
	rejected := dist.Map(types, 0, func(t *jsontype.Type) bool {
		return !s.Accepts(t)
	})
	var out []int
	for i, r := range rejected {
		if r && !inSample[i] {
			out = append(out, i)
		}
	}
	return out
}
