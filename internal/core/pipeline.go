package core

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"jxplain/internal/entropy"
	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
	"jxplain/internal/stats"
)

// Pipeline runs JXPLAIN as the staged three-pass computation of Figure 3:
//
//	pass ① — CollectPathStats walks the data once and fixes, per path,
//	         whether complex values are tuples or collections;
//	pass ② — a second walk precomputes, per tuple path, a deterministic
//	         strategy assigning each observed key set to an entity;
//	pass ③ — the shared synthesizer replays the walk and assembles the
//	         schema, consulting only the precomputed decisions.
//
// The paper decomposes JXPLAIN this way because the heuristics need global
// visibility, breaking the associative-fold structure that lets K-reduction
// distribute; each individual pass, by contrast, is embarrassingly
// parallel.
//
// Pipeline is the reference JXPLAIN of the experiments. It differs from
// the recursive Discover in one semantic detail: pass ① fixes decisions
// per *path*, so values of one path reached through different entities
// share a decision, while Discover re-evaluates the heuristic per
// entity-restricted bag. On single-root-entity data the two are
// structurally identical (pinned by integration tests); under multi-entity
// roots, borderline nested decisions (e.g. short object arrays whose
// length entropy straddles the threshold within one entity) can flip,
// changing the schema's shape but not its validation of the training data.
func Pipeline(bag *jsontype.Bag, cfg Config) schema.Schema {
	acc := NewAccumulator(cfg)
	acc.AddBag(bag)
	return acc.Finish()
}

// PipelineTypes is Pipeline over a slice of record types.
func PipelineTypes(types []*jsontype.Type, cfg Config) schema.Schema {
	return Pipeline(bagOf(types), cfg)
}

// Accumulator is the streaming form of Pipeline: records arrive in chunks
// (bags, types, or decoded values via the facade), pass-① statistics
// accumulate in a mergeable PathSketch as they do, and Finish runs passes
// ② and ③ over the deduplicated union bag. Memory is proportional to the
// collection's *distinct structure* (distinct record types plus distinct
// paths), never to its record count — the property that lets the pipeline
// ingest unbounded streams.
//
// When Config.DetectionSample is in (0, 1) the incremental sketch is
// skipped and pass ① instead samples the accumulated bag at Finish,
// matching the batch Pipeline draw for draw.
//
// Finish does not consume the accumulator: more records may be added and
// Finish called again, which is the natural shape for periodic schema
// snapshots over a live stream. An Accumulator is not safe for concurrent
// use.
type Accumulator struct {
	cfg    Config
	bag    *jsontype.Bag // exact union; nil when a reservoir bounds it
	sketch *PathSketch   // nil when detection sampling defers pass ① to Finish
	memo   *mergeMemo    // pass-③ subtree cache, kept across Finish calls

	// Bounded-stream state (Config.Bounds; see bounded.go).
	res           *jsontype.ReservoirBag // capped union when ReservoirCapacity > 0
	ring          *sketchRing            // closed sketch windows when WindowCount > 0
	sinceRotate   int                    // records since the last rotation
	onWindowClose func(index, records int, sketch *PathSketch)
}

// NewAccumulator returns an empty accumulator for the configuration.
func NewAccumulator(cfg Config) *Accumulator {
	a := &Accumulator{cfg: cfg, memo: newMergeMemo()}
	if cfg.Bounds.ReservoirCapacity > 0 {
		a.res = jsontype.NewReservoirBag(cfg.Bounds.ReservoirCapacity, cfg.Seed)
	} else {
		a.bag = &jsontype.Bag{}
	}
	if !(cfg.DetectionSample > 0 && cfg.DetectionSample < 1) {
		a.sketch = NewPathSketch()
	}
	if cfg.Bounds.WindowRecords > 0 && cfg.Bounds.WindowCount > 0 && a.sketch != nil {
		a.ring = newSketchRing(cfg.Bounds.WindowCount)
	}
	return a
}

// Add folds one record type into the accumulator.
func (a *Accumulator) Add(t *jsontype.Type) { a.AddN(t, 1) }

// AddN folds n occurrences of one record type into the accumulator.
func (a *Accumulator) AddN(t *jsontype.Type, n int) {
	if a.res != nil {
		a.res.AddN(t, n)
	} else {
		a.bag.AddN(t, n)
	}
	if a.sketch != nil {
		a.sketch.AddN(t, n)
	}
	a.advance(n)
}

// AddBag folds one chunk into the accumulator. The chunk bag is not
// retained and may be reused by the caller.
func (a *Accumulator) AddBag(chunk *jsontype.Bag) {
	n := chunk.Len()
	if a.res != nil {
		chunk.Each(func(t *jsontype.Type, c int) { a.res.AddN(t, c) })
	} else {
		a.bag.Merge(chunk)
	}
	if a.sketch != nil {
		if w := effectiveWorkers(a.cfg.StatsWorkers, chunk.Distinct()); w > 1 {
			a.sketch.Merge(sketchFromBag(chunk, w))
		} else {
			a.sketch.AddBag(chunk)
		}
	}
	a.advance(n)
}

// Merge folds another accumulator's state into a — the reduce step of a
// scale-out run, where map workers each fold a shard into an accumulator
// and ship it (usually through the wire format). The result is
// observationally identical to one accumulator having seen both inputs:
// bags merge, and the sketch either merges trie-to-trie or, when other
// carries no sketch (a sampling configuration on the map side), refolds
// other's deduplicated bag. other must not be used afterwards: its trie
// nodes may be adopted by a.
//
// Bounded accumulators merge too — reservoirs combine through their own
// seed-deterministic batch merge (same capacity and seed required), live
// epochs fold trie-to-trie, and other's closed windows are adopted as
// a's most recent (shards carry no global window order, so any adoption
// order is an alignment approximation). A bounded a folds an unbounded
// other through the reservoir; the converse snapshots other's reservoir.
//
//jx:monoid consuming
func (a *Accumulator) Merge(other *Accumulator) {
	if other == nil {
		return
	}
	switch {
	case a.res == nil && other.res == nil:
		a.bag.Merge(other.bag)
	case a.res != nil && other.res != nil:
		a.res.Merge(other.res)
	case a.res != nil:
		other.bag.Each(func(t *jsontype.Type, n int) { a.res.AddN(t, n) })
	default:
		a.bag.Merge(other.res.Snapshot())
	}
	if a.sketch != nil {
		if other.sketch != nil {
			a.sketch.Merge(other.sketch)
		} else {
			a.sketch.AddBag(other.unionBag())
		}
	}
	if a.ring != nil && other.ring != nil {
		for _, w := range other.ring.windows {
			a.ring.push(w)
		}
	}
}

// Records returns the number of record occurrences accumulated — in
// bounded mode, the lifetime count seen, which decay does not rewind.
func (a *Accumulator) Records() int {
	if a.res != nil {
		return int(a.res.Seen())
	}
	return a.bag.Len()
}

// Distinct returns the number of distinct record types accumulated (in
// bounded mode, currently retained).
func (a *Accumulator) Distinct() int {
	if a.res != nil {
		return a.res.Distinct()
	}
	return a.bag.Distinct()
}

// Stats returns the pass-① path statistics over everything accumulated
// (over the retained window horizon, in bounded mode).
func (a *Accumulator) Stats() []PathStat {
	if a.sketch != nil {
		return a.statsSketch().Stats(a.cfg)
	}
	statsBag := SampleBag(a.unionBag(), a.cfg.DetectionSample, a.cfg.Seed)
	if w := effectiveWorkers(a.cfg.StatsWorkers, statsBag.Distinct()); w > 1 {
		return ParallelCollectPathStatsBag(statsBag, w, a.cfg)
	}
	return CollectPathStats(statsBag, a.cfg)
}

// Finish runs passes ② and ③ over the accumulated collection and returns
// the schema (unsimplified, like Pipeline). Subtree results are memoized
// on the accumulator: a later Finish over a grown stream recomputes only
// the subtrees whose bags (or global decisions) actually changed.
func (a *Accumulator) Finish() schema.Schema {
	return synthesize(a.unionBag(), a.Stats(), a.cfg, a.memo)
}

// synthesize runs passes ② and ③ over the full bag, consulting the
// precomputed pass-① statistics. memo may be nil (no caching).
func synthesize(bag *jsontype.Bag, stats []PathStat, cfg Config, memo *mergeMemo) schema.Schema {
	pool := newWorkPool(effectiveWorkers(cfg.SynthWorkers, bag.Distinct()))
	dec := &pipelineDecider{
		cfg:       cfg,
		decisions: decisionMap(stats),
		plans:     map[string]*partitionPlan{},
		pool:      pool,
	}
	dec.collectPlans(RootPath, bag) // pass ②
	if memo != nil {
		// The memo is only sound while the global decisions and plans that
		// shaped its entries still hold; a changed epoch drops the cache.
		memo.validate(dec.epochHash())
	}
	s := &synthesizer{dec: dec, pool: pool, memo: memo}
	return s.merge(RootPath, bag) // pass ③
}

// PipelineChunks runs the staged pipeline over a chunk source: next is
// called repeatedly for the next deduplicated chunk bag and returns
// (nil, nil) when the stream is exhausted. The context is checked between
// chunks; cancellation abandons the stream and returns ctx.Err().
func PipelineChunks(ctx context.Context, next func() (*jsontype.Bag, error), cfg Config) (schema.Schema, error) {
	acc := NewAccumulator(cfg)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		chunk, err := next()
		if err != nil {
			return nil, err
		}
		if chunk == nil {
			break
		}
		acc.AddBag(chunk)
	}
	return acc.Finish(), nil
}

// SampleBag draws a uniform sample of the bag's occurrences: each distinct
// type keeps a Binomial(multiplicity, fraction) share, drawn in O(1) per
// distinct type rather than per occurrence, with at least the guarantee
// that a non-empty bag stays non-empty. Sampling is deterministic for a
// given seed. It is the sampler behind Config.DetectionSample.
func SampleBag(bag *jsontype.Bag, fraction float64, seed int64) *jsontype.Bag {
	r := rand.New(rand.NewSource(seed))
	out := &jsontype.Bag{}
	bag.Each(func(t *jsontype.Type, n int) {
		if kept := stats.Binomial(r, n, fraction); kept > 0 {
			out.AddN(t, kept)
		}
	})
	if out.Len() == 0 && bag.Len() > 0 {
		out.Add(bag.Types()[0])
	}
	return out
}

// pathDecision stores the pass-① outcome for one path, separately for the
// array-kinded and object-kinded values observed there.
type pathDecision struct {
	arr, obj       entropy.Decision
	hasArr, hasObj bool
}

func decisionMap(stats []PathStat) map[string]pathDecision {
	out := map[string]pathDecision{}
	for _, st := range stats {
		d := out[st.Path]
		if st.Kind == jsontype.KindArray {
			d.arr, d.hasArr = st.Decision, true
		} else {
			d.obj, d.hasObj = st.Decision, true
		}
		out[st.Path] = d
	}
	return out
}

// partitionPlan is the pass-② output for one tuple path: a deterministic
// assignment of key sets to entity ids. Key sets are identified by a
// dictionary-independent canonical string so the plan survives across
// passes.
type partitionPlan struct {
	assign map[string]int
	n      int
}

// keySetCanon renders a key-name set canonically (names are already sorted
// for objects via Type.Keys; array index sets are sorted numerically by
// construction order, which is stable).
func keySetCanon(names []string) string {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	return strings.Join(sorted, "\x00")
}

type pipelineDecider struct {
	cfg       Config
	decisions map[string]pathDecision
	pool      *workPool

	// mu guards plans during the concurrent pass-② walk and the
	// plan.assign fallback writes during pass ③; decisions is read-only
	// after construction.
	mu    sync.Mutex
	plans map[string]*partitionPlan
}

func (d *pipelineDecider) arrayDecision(path string, arrays *jsontype.Bag) entropy.Decision {
	if dec, ok := d.decisions[path]; ok && dec.hasArr {
		return dec.arr
	}
	// Unreached in normal operation: fall back to the local heuristic.
	return (&localDecider{cfg: d.cfg}).arrayDecision(path, arrays)
}

func (d *pipelineDecider) objectDecision(path string, objects *jsontype.Bag) entropy.Decision {
	if dec, ok := d.decisions[path]; ok && dec.hasObj {
		return dec.obj
	}
	return (&localDecider{cfg: d.cfg}).objectDecision(path, objects)
}

func (d *pipelineDecider) partitionObjects(path string, objects *jsontype.Bag) []*jsontype.Bag {
	return d.partitionWithPlan("O:"+path, objects, d.featureKeySet(path))
}

func (d *pipelineDecider) partitionArrays(path string, arrays *jsontype.Bag) []*jsontype.Bag {
	return d.partitionWithPlan("A:"+path, arrays, d.featureKeySet(path))
}

// featureKeySet builds the §6.4 deep-path feature extractor for a
// partition point, answering nested tuple/collection questions from the
// pass-① decision map (paths below the partition point are absolute paths
// prefixed by it).
func (d *pipelineDecider) featureKeySet(base string) func(*jsontype.Type) []string {
	decide := func(rel string, kind jsontype.Kind) entropy.Decision {
		dec, ok := d.decisions[base+rel]
		if !ok {
			return entropy.Tuple
		}
		if kind == jsontype.KindArray {
			if dec.hasArr {
				return dec.arr
			}
			return entropy.Tuple
		}
		if dec.hasObj {
			return dec.obj
		}
		return entropy.Tuple
	}
	return func(t *jsontype.Type) []string { return featurePaths(t, decide, true) }
}

func (d *pipelineDecider) partitionWithPlan(planKey string, bag *jsontype.Bag, keySetOf func(*jsontype.Type) []string) []*jsontype.Bag {
	if d.cfg.Partition == SingleEntity || d.cfg.Partition == PerKeySet {
		return partitionBag(bag, keySetOf, d.cfg)
	}
	d.mu.Lock()
	plan := d.plans[planKey]
	d.mu.Unlock()
	if plan == nil {
		// Unreached in normal operation.
		return partitionBag(bag, keySetOf, d.cfg)
	}
	// Feature extraction is the expensive part; do it outside the lock.
	canons := make([]string, bag.Distinct())
	for ti, t := range bag.Types() {
		canons[ti] = keySetCanon(keySetOf(t))
	}
	assignment := make([]int, bag.Distinct())
	d.mu.Lock()
	next := plan.n
	for ti, c := range canons {
		cluster, ok := plan.assign[c]
		if !ok {
			// A key set unseen in pass ② (possible only if the data changed
			// between passes): isolate it as a fresh entity.
			cluster = next
			plan.assign[c] = cluster
			next++
		}
		assignment[ti] = cluster
	}
	d.mu.Unlock()
	typesBySet := make([][]int, bag.Distinct())
	for i := range typesBySet {
		typesBySet[i] = []int{i}
	}
	return groupByAssignment(bag, typesBySet, assignment)
}

// collectPlans is pass ②: walk the data along the pass-① decisions and,
// at every tuple path, precompute the key-set → entity assignment. Child
// subtrees are independent, so with a pool they are walked concurrently —
// entity discovery (Bimax clustering inside buildPlan) dominates pass-②
// cost and every partition point gets its own private key-set dictionary,
// so the fan-out shares nothing but the plans map.
func (d *pipelineDecider) collectPlans(path string, bag *jsontype.Bag) {
	_, arrays, objects := bag.SplitKinds()

	type child struct {
		path string
		bag  *jsontype.Bag
	}
	var children []child

	if arrays.Len() > 0 {
		if d.arrayDecision(path, arrays) == entropy.Collection {
			if elems := arrays.Elements(); elems.Len() > 0 {
				children = append(children, child{arrayElemPath(path), elems})
			}
		} else {
			d.buildPlan("A:"+path, arrays, d.featureKeySet(path))
			groups, _ := arrays.GroupByIndex()
			for i, g := range groups {
				children = append(children, child{arrayIndexPath(path, i), g})
			}
		}
	}
	if objects.Len() > 0 {
		if d.objectDecision(path, objects) == entropy.Collection {
			if values := objects.FieldValues(); values.Len() > 0 {
				children = append(children, child{objectValuePath(path), values})
			}
		} else {
			d.buildPlan("O:"+path, objects, d.featureKeySet(path))
			keys, groups, _ := objects.GroupByKey()
			for i, key := range keys {
				children = append(children, child{childKeyPath(path, key), groups[i]})
			}
		}
	}
	d.pool.forEach(len(children), func(i int) {
		d.collectPlans(children[i].path, children[i].bag)
	})
}

func (d *pipelineDecider) buildPlan(planKey string, bag *jsontype.Bag, keySetOf func(*jsontype.Type) []string) {
	if d.cfg.Partition == SingleEntity || d.cfg.Partition == PerKeySet {
		return // no plan needed
	}
	w, dict, typesBySet := collectKeySets(bag, keySetOf)
	assignment := assignClusters(w, dict, d.cfg)
	plan := &partitionPlan{assign: map[string]int{}}
	for si, cluster := range assignment {
		ti := typesBySet[si][0]
		plan.assign[keySetCanon(keySetOf(bag.Types()[ti]))] = cluster
		if cluster+1 > plan.n {
			plan.n = cluster + 1
		}
	}
	d.mu.Lock()
	d.plans[planKey] = plan
	d.mu.Unlock()
}
