package core

import (
	"math/rand"
	"sort"
	"strings"

	"jxplain/internal/entropy"
	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
)

// Pipeline runs JXPLAIN as the staged three-pass computation of Figure 3:
//
//	pass ① — CollectPathStats walks the data once and fixes, per path,
//	         whether complex values are tuples or collections;
//	pass ② — a second walk precomputes, per tuple path, a deterministic
//	         strategy assigning each observed key set to an entity;
//	pass ③ — the shared synthesizer replays the walk and assembles the
//	         schema, consulting only the precomputed decisions.
//
// The paper decomposes JXPLAIN this way because the heuristics need global
// visibility, breaking the associative-fold structure that lets K-reduction
// distribute; each individual pass, by contrast, is embarrassingly
// parallel.
//
// Pipeline is the reference JXPLAIN of the experiments. It differs from
// the recursive Discover in one semantic detail: pass ① fixes decisions
// per *path*, so values of one path reached through different entities
// share a decision, while Discover re-evaluates the heuristic per
// entity-restricted bag. On single-root-entity data the two are
// structurally identical (pinned by integration tests); under multi-entity
// roots, borderline nested decisions (e.g. short object arrays whose
// length entropy straddles the threshold within one entity) can flip,
// changing the schema's shape but not its validation of the training data.
func Pipeline(bag *jsontype.Bag, cfg Config) schema.Schema {
	statsBag := bag
	if cfg.DetectionSample > 0 && cfg.DetectionSample < 1 {
		statsBag = SampleBag(bag, cfg.DetectionSample, cfg.Seed)
	}
	var stats []PathStat // pass ①
	if cfg.StatsWorkers > 1 {
		stats = ParallelCollectPathStatsBag(statsBag, cfg.StatsWorkers, cfg)
	} else {
		stats = CollectPathStats(statsBag, cfg)
	}
	decisions := decisionMap(stats)
	dec := &pipelineDecider{
		cfg:       cfg,
		decisions: decisions,
		plans:     map[string]*partitionPlan{},
	}
	dec.collectPlans(RootPath, bag) // pass ②
	s := &synthesizer{dec: dec}
	return s.merge(RootPath, bag) // pass ③
}

// PipelineTypes is Pipeline over a slice of record types.
func PipelineTypes(types []*jsontype.Type, cfg Config) schema.Schema {
	return Pipeline(bagOf(types), cfg)
}

// SampleBag draws a uniform sample of the bag's occurrences: each distinct
// type keeps a binomial share of its multiplicity, with at least the
// guarantee that a non-empty bag stays non-empty. It is the sampler behind
// Config.DetectionSample.
func SampleBag(bag *jsontype.Bag, fraction float64, seed int64) *jsontype.Bag {
	r := rand.New(rand.NewSource(seed))
	out := &jsontype.Bag{}
	bag.Each(func(t *jsontype.Type, n int) {
		kept := 0
		for i := 0; i < n; i++ {
			if r.Float64() < fraction {
				kept++
			}
		}
		if kept > 0 {
			out.AddN(t, kept)
		}
	})
	if out.Len() == 0 && bag.Len() > 0 {
		out.Add(bag.Types()[0])
	}
	return out
}

// pathDecision stores the pass-① outcome for one path, separately for the
// array-kinded and object-kinded values observed there.
type pathDecision struct {
	arr, obj       entropy.Decision
	hasArr, hasObj bool
}

func decisionMap(stats []PathStat) map[string]pathDecision {
	out := map[string]pathDecision{}
	for _, st := range stats {
		d := out[st.Path]
		if st.Kind == jsontype.KindArray {
			d.arr, d.hasArr = st.Decision, true
		} else {
			d.obj, d.hasObj = st.Decision, true
		}
		out[st.Path] = d
	}
	return out
}

// partitionPlan is the pass-② output for one tuple path: a deterministic
// assignment of key sets to entity ids. Key sets are identified by a
// dictionary-independent canonical string so the plan survives across
// passes.
type partitionPlan struct {
	assign map[string]int
	n      int
}

// keySetCanon renders a key-name set canonically (names are already sorted
// for objects via Type.Keys; array index sets are sorted numerically by
// construction order, which is stable).
func keySetCanon(names []string) string {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	return strings.Join(sorted, "\x00")
}

type pipelineDecider struct {
	cfg       Config
	decisions map[string]pathDecision
	plans     map[string]*partitionPlan
}

func (d *pipelineDecider) arrayDecision(path string, arrays *jsontype.Bag) entropy.Decision {
	if dec, ok := d.decisions[path]; ok && dec.hasArr {
		return dec.arr
	}
	// Unreached in normal operation: fall back to the local heuristic.
	return (&localDecider{cfg: d.cfg}).arrayDecision(path, arrays)
}

func (d *pipelineDecider) objectDecision(path string, objects *jsontype.Bag) entropy.Decision {
	if dec, ok := d.decisions[path]; ok && dec.hasObj {
		return dec.obj
	}
	return (&localDecider{cfg: d.cfg}).objectDecision(path, objects)
}

func (d *pipelineDecider) partitionObjects(path string, objects *jsontype.Bag) []*jsontype.Bag {
	return d.partitionWithPlan("O:"+path, objects, d.featureKeySet(path))
}

func (d *pipelineDecider) partitionArrays(path string, arrays *jsontype.Bag) []*jsontype.Bag {
	return d.partitionWithPlan("A:"+path, arrays, d.featureKeySet(path))
}

// featureKeySet builds the §6.4 deep-path feature extractor for a
// partition point, answering nested tuple/collection questions from the
// pass-① decision map (paths below the partition point are absolute paths
// prefixed by it).
func (d *pipelineDecider) featureKeySet(base string) func(*jsontype.Type) []string {
	decide := func(rel string, kind jsontype.Kind) entropy.Decision {
		dec, ok := d.decisions[base+rel]
		if !ok {
			return entropy.Tuple
		}
		if kind == jsontype.KindArray {
			if dec.hasArr {
				return dec.arr
			}
			return entropy.Tuple
		}
		if dec.hasObj {
			return dec.obj
		}
		return entropy.Tuple
	}
	return func(t *jsontype.Type) []string { return featurePaths(t, decide, true) }
}

func (d *pipelineDecider) partitionWithPlan(planKey string, bag *jsontype.Bag, keySetOf func(*jsontype.Type) []string) []*jsontype.Bag {
	if d.cfg.Partition == SingleEntity || d.cfg.Partition == PerKeySet {
		return partitionBag(bag, keySetOf, d.cfg)
	}
	plan := d.plans[planKey]
	if plan == nil {
		// Unreached in normal operation.
		return partitionBag(bag, keySetOf, d.cfg)
	}
	next := plan.n
	assignment := make([]int, bag.Distinct())
	for ti, t := range bag.Types() {
		c := keySetCanon(keySetOf(t))
		cluster, ok := plan.assign[c]
		if !ok {
			// A key set unseen in pass ② (possible only if the data changed
			// between passes): isolate it as a fresh entity.
			cluster = next
			plan.assign[c] = cluster
			next++
		}
		assignment[ti] = cluster
	}
	typesBySet := make([][]int, bag.Distinct())
	for i := range typesBySet {
		typesBySet[i] = []int{i}
	}
	return groupByAssignment(bag, typesBySet, assignment)
}

// collectPlans is pass ②: walk the data along the pass-① decisions and,
// at every tuple path, precompute the key-set → entity assignment.
func (d *pipelineDecider) collectPlans(path string, bag *jsontype.Bag) {
	_, arrays, objects := bag.SplitKinds()

	if arrays.Len() > 0 {
		if d.arrayDecision(path, arrays) == entropy.Collection {
			if elems := arrays.Elements(); elems.Len() > 0 {
				d.collectPlans(arrayElemPath(path), elems)
			}
		} else {
			d.buildPlan("A:"+path, arrays, d.featureKeySet(path))
			groups, _ := arrays.GroupByIndex()
			for i, g := range groups {
				d.collectPlans(arrayIndexPath(path, i), g)
			}
		}
	}
	if objects.Len() > 0 {
		if d.objectDecision(path, objects) == entropy.Collection {
			if values := objects.FieldValues(); values.Len() > 0 {
				d.collectPlans(objectValuePath(path), values)
			}
		} else {
			d.buildPlan("O:"+path, objects, d.featureKeySet(path))
			keys, groups, _ := objects.GroupByKey()
			for i, key := range keys {
				d.collectPlans(childKeyPath(path, key), groups[i])
			}
		}
	}
}

func (d *pipelineDecider) buildPlan(planKey string, bag *jsontype.Bag, keySetOf func(*jsontype.Type) []string) {
	if d.cfg.Partition == SingleEntity || d.cfg.Partition == PerKeySet {
		return // no plan needed
	}
	sets, dict, typesBySet := collectKeySets(bag, keySetOf)
	assignment := assignClusters(sets, dict, d.cfg)
	plan := &partitionPlan{assign: map[string]int{}}
	for si, cluster := range assignment {
		ti := typesBySet[si][0]
		plan.assign[keySetCanon(keySetOf(bag.Types()[ti]))] = cluster
		if cluster+1 > plan.n {
			plan.n = cluster + 1
		}
	}
	d.plans[planKey] = plan
}
