package core

import (
	"jxplain/internal/dist"
	"jxplain/internal/jsontype"
)

// PathSketch is the mergeable pass-① state: the per-path statistics
// Algorithm 5 needs (record and key-presence counters, array-length
// histograms, the similar-types constraint), organized as a trie over
// concrete paths. Sketches built over disjoint chunks of a collection and
// folded with Merge carry exactly the statistics a single pass over the
// whole collection would have produced, which is what lets the staged
// pipeline stream: a chunk source accumulates one sketch plus one
// deduplicated bag, so memory is proportional to distinct structure, not
// record count.
//
// The zero value is not ready; use NewPathSketch. A PathSketch is not safe
// for concurrent mutation; build per-worker sketches and Merge them.
type PathSketch struct {
	root    *statsTrie
	records int
}

// NewPathSketch returns an empty sketch.
func NewPathSketch() *PathSketch { return &PathSketch{root: newStatsTrie()} }

// Add folds one record type into the sketch.
//
//jx:hotpath
func (s *PathSketch) Add(t *jsontype.Type) { s.AddN(t, 1) }

// AddN folds n occurrences of one record type into the sketch.
//
//jx:hotpath
func (s *PathSketch) AddN(t *jsontype.Type, n int) {
	s.root.add(t, n)
	s.records += n
}

// AddBag folds every occurrence in the bag into the sketch.
func (s *PathSketch) AddBag(bag *jsontype.Bag) {
	bag.Each(func(t *jsontype.Type, n int) { s.AddN(t, n) })
}

// Merge folds other into s (the monoid operation). other must not be used
// afterwards: its trie nodes may be adopted by s.
//
//jx:hotpath
//jx:monoid consuming
func (s *PathSketch) Merge(other *PathSketch) {
	if other == nil {
		return
	}
	s.root.combine(other.root)
	s.records += other.records
}

// Records returns the number of record occurrences folded in.
func (s *PathSketch) Records() int { return s.records }

// Decay scales every additive counter in the sketch by factor (flooring)
// and compacts subtrees whose counters have all reached zero — the aging
// step of unbounded-stream operation: paths that stop appearing lose
// weight exponentially and eventually release their trie nodes. factor
// must be in (0, 1).
func (s *PathSketch) Decay(factor float64) {
	if !(factor > 0 && factor < 1) {
		panic("core: PathSketch.Decay factor must be in (0, 1)")
	}
	s.root.decay(factor)
	s.records = int(float64(s.records) * factor)
}

// Nodes returns the number of trie nodes held by the sketch — the memory
// proxy the flat-RSS assertions and the window benchmark report.
func (s *PathSketch) Nodes() int { return s.root.nodeCount() }

// Stats derives the pass-① path statistics from the sketch, sorted by
// path. The rows are identical to CollectPathStats over the same records:
// where a node is ruled a collection its children's subtrees are merged
// into one wildcard child, reproducing the paths the sequential walk
// visits. Deriving does not consume the sketch; more records may be added
// and Stats called again.
func (s *PathSketch) Stats(cfg Config) []PathStat { return deriveStats(s.root, cfg) }

// sketchFromBag builds a sketch over the bag, folding in parallel across
// workers when asked (workers <= 1 folds sequentially).
func sketchFromBag(bag *jsontype.Bag, workers int) *PathSketch {
	if workers <= 1 || bag.Distinct() < 2 {
		s := NewPathSketch()
		s.AddBag(bag)
		return s
	}
	idx := make([]int, bag.Distinct())
	for i := range idx {
		idx[i] = i
	}
	return dist.Fold(idx, workers,
		NewPathSketch,
		func(s *PathSketch, i int) *PathSketch {
			s.AddN(bag.Types()[i], bag.Count(i))
			return s
		},
		func(a, b *PathSketch) *PathSketch { a.Merge(b); return a })
}
