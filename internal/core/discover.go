package core

import (
	"strconv"
	"strings"

	"jxplain/internal/entity"
	"jxplain/internal/entropy"
	"jxplain/internal/jsontype"
	"jxplain/internal/merge"
	"jxplain/internal/schema"
)

// Discover runs JXPLAIN's merge (Algorithm 4) over a bag of record types
// and returns the discovered schema. This is the recursive ("naive
// implementation", §4.1) strategy: every nested bag is inspected with full
// visibility of the collection, so the global heuristics apply exactly.
func Discover(bag *jsontype.Bag, cfg Config) schema.Schema {
	s := &synthesizer{dec: &localDecider{cfg: cfg}}
	return s.merge(RootPath, bag)
}

// DiscoverTypes is Discover over a slice of record types.
func DiscoverTypes(types []*jsontype.Type, cfg Config) schema.Schema {
	return Discover(bagOf(types), cfg)
}

func bagOf(types []*jsontype.Type) *jsontype.Bag {
	bag := &jsontype.Bag{}
	for _, t := range types {
		bag.Add(t)
	}
	return bag
}

// RootPath is the path string of the root collection.
const RootPath = "$"

// Path-string construction. Paths identify where a bag of values sits in
// the record structure: object keys append ".key", collection elements
// append "[*]" (arrays) or ".{*}" (objects), and tuple-array positions
// append "[i]". Pass ① of the pipeline keys its decisions by these paths,
// so keys containing path-structural characters are escaped — without
// this, the records {"a.b": x} and {"a": {"b": x}} would alias one path.

func childKeyPath(path, key string) string { return path + "." + escapePathKey(key) }
func arrayElemPath(path string) string     { return path + "[*]" }
func objectValuePath(path string) string   { return path + ".{*}" }
func arrayIndexPath(path string, i int) string {
	return path + "[" + strconv.Itoa(i) + "]"
}

func escapePathKey(key string) string {
	if !strings.ContainsAny(key, `.[\{`) {
		return key
	}
	var b strings.Builder
	for i := 0; i < len(key); i++ {
		switch c := key[i]; c {
		case '.', '[', '\\', '{':
			b.WriteByte('\\')
			b.WriteByte(c)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// decider answers Algorithm 4's two questions — collection or tuple? and
// how do tuples partition into entities? — for the bag of values observed
// at one path. The recursive strategy computes answers on the spot; the
// staged pipeline precomputes them in passes ① and ②.
type decider interface {
	arrayDecision(path string, arrays *jsontype.Bag) entropy.Decision
	objectDecision(path string, objects *jsontype.Bag) entropy.Decision
	partitionObjects(path string, objects *jsontype.Bag) []*jsontype.Bag
	partitionArrays(path string, arrays *jsontype.Bag) []*jsontype.Bag
}

// synthesizer is the shared schema-construction engine (pass ③): it walks
// bags top-down, consults the decider, and assembles the schema grammar.
// With a non-nil pool, sibling subtrees are merged concurrently; results
// are always combined in index order, so the output schema is identical to
// the sequential walk. A non-nil memo caches subtree results across Finish
// calls, keyed by (path, bag content hash).
type synthesizer struct {
	dec  decider
	pool *workPool
	memo *mergeMemo
}

func (s *synthesizer) merge(path string, bag *jsontype.Bag) schema.Schema {
	if s.memo == nil {
		return s.mergeUncached(path, bag)
	}
	key := memoKey{path: path, bag: bagContentHash(bag)}
	if cached, ok := s.memo.get(key); ok {
		return cached
	}
	out := s.mergeUncached(path, bag)
	s.memo.put(key, out)
	return out
}

func (s *synthesizer) mergeUncached(path string, bag *jsontype.Bag) schema.Schema {
	prims, arrays, objects := bag.SplitKinds()
	alts := merge.Primitives(prims)

	if arrays.Len() > 0 {
		if s.dec.arrayDecision(path, arrays) == entropy.Collection {
			alts = append(alts, s.mergeArrayColl(path, arrays))
		} else {
			parts := s.dec.partitionArrays(path, arrays)
			partAlts := make([]schema.Schema, len(parts))
			s.pool.forEach(len(parts), func(i int) {
				partAlts[i] = s.mergeArrayTuple(path, parts[i])
			})
			alts = append(alts, partAlts...)
		}
	}
	if objects.Len() > 0 {
		if s.dec.objectDecision(path, objects) == entropy.Collection {
			alts = append(alts, s.mergeObjectColl(path, objects))
		} else {
			parts := s.dec.partitionObjects(path, objects)
			partAlts := make([]schema.Schema, len(parts))
			s.pool.forEach(len(parts), func(i int) {
				partAlts[i] = s.mergeObjectTuple(path, parts[i])
			})
			alts = append(alts, partAlts...)
		}
	}
	return schema.NewUnion(alts...)
}

// mergeArrayColl is Algorithm 2 with path threading.
func (s *synthesizer) mergeArrayColl(path string, bag *jsontype.Bag) schema.Schema {
	maxLen := 0
	for _, t := range bag.Types() {
		if t.Len() > maxLen {
			maxLen = t.Len()
		}
	}
	elem := schema.Empty()
	if elems := bag.Elements(); elems.Len() > 0 {
		elem = s.merge(arrayElemPath(path), elems)
	}
	return &schema.ArrayCollection{Elem: elem, MaxLen: maxLen}
}

// mergeObjectColl is the object analog of Algorithm 2 with path threading.
func (s *synthesizer) mergeObjectColl(path string, bag *jsontype.Bag) schema.Schema {
	domain := map[string]bool{}
	for _, t := range bag.Types() {
		for _, f := range t.Fields() {
			domain[f.Key] = true
		}
	}
	value := schema.Empty()
	if values := bag.FieldValues(); values.Len() > 0 {
		value = s.merge(objectValuePath(path), values)
	}
	return &schema.ObjectCollection{Value: value, Domain: len(domain)}
}

// mergeObjectTuple is Algorithm 3 with path threading.
func (s *synthesizer) mergeObjectTuple(path string, bag *jsontype.Bag) schema.Schema {
	keys, groups, present := bag.GroupByKey()
	total := bag.Len()
	fields := make([]schema.FieldSchema, len(keys))
	s.pool.forEach(len(keys), func(i int) {
		fields[i] = schema.FieldSchema{Key: keys[i], Schema: s.merge(childKeyPath(path, keys[i]), groups[i])}
	})
	var required, optional []schema.FieldSchema
	for i, f := range fields {
		if present[i] == total {
			required = append(required, f)
		} else {
			optional = append(optional, f)
		}
	}
	return schema.NewObjectTuple(required, optional)
}

// mergeArrayTuple is the array analog of Algorithm 3 with path threading.
func (s *synthesizer) mergeArrayTuple(path string, bag *jsontype.Bag) schema.Schema {
	groups, _ := bag.GroupByIndex()
	minLen := -1
	for _, t := range bag.Types() {
		if minLen < 0 || t.Len() < minLen {
			minLen = t.Len()
		}
	}
	if minLen < 0 {
		minLen = 0
	}
	elems := make([]schema.Schema, len(groups))
	s.pool.forEach(len(groups), func(i int) {
		elems[i] = s.merge(arrayIndexPath(path, i), groups[i])
	})
	return &schema.ArrayTuple{Elems: elems, MinLen: minLen}
}

// localDecider answers on the spot from the bag at hand — the recursive
// strategy of §4.1.
type localDecider struct {
	cfg Config
}

func (d *localDecider) arrayDecision(_ string, arrays *jsontype.Bag) entropy.Decision {
	if !d.cfg.DetectArrayTuples {
		return entropy.Collection
	}
	decision, _ := entropy.DetectArrays(arrays, d.cfg.Detection)
	return decision
}

func (d *localDecider) objectDecision(_ string, objects *jsontype.Bag) entropy.Decision {
	if !d.cfg.DetectObjectCollections {
		return entropy.Tuple
	}
	decision, _ := entropy.DetectObjects(objects, d.cfg.Detection)
	return decision
}

func (d *localDecider) partitionObjects(_ string, objects *jsontype.Bag) []*jsontype.Bag {
	return partitionBag(objects, d.featureKeySet(objects), d.cfg)
}

func (d *localDecider) partitionArrays(_ string, arrays *jsontype.Bag) []*jsontype.Bag {
	return partitionBag(arrays, d.featureKeySet(arrays), d.cfg)
}

// featureKeySet builds the §6.4 feature extractor for a partition point:
// record key sets are the deep path sets of each type, truncated at nested
// collection boundaries. The recursive strategy determines those
// boundaries with an extra detection walk over the bag — the "full second
// pass" overhead the paper attributes to JXPLAIN.
func (d *localDecider) featureKeySet(bag *jsontype.Bag) func(*jsontype.Type) []string {
	decide := decisionLookup(subtreeDecisions(bag, d.cfg))
	return func(t *jsontype.Type) []string { return featurePaths(t, decide, true) }
}

// partitionBag splits a bag of tuple-like types into entity bags according
// to the configured strategy. Partitioning operates on the distinct key
// sets appearing in the bag (Section 6); all types sharing a key set land
// in the same entity.
func partitionBag(bag *jsontype.Bag, keySetOf func(*jsontype.Type) []string, cfg Config) []*jsontype.Bag {
	switch cfg.Partition {
	case SingleEntity:
		return []*jsontype.Bag{bag}
	case PerKeySet:
		return partitionPerKeySet(bag, keySetOf)
	}

	w, dict, typesBySet := collectKeySets(bag, keySetOf)
	assignment := assignClusters(w, dict, cfg)
	return groupByAssignment(bag, typesBySet, assignment)
}

// collectKeySets builds the weighted distinct key sets of a bag — each
// set's weight is its record multiplicity — plus, for each set, the
// indices of the distinct types carrying it.
func collectKeySets(bag *jsontype.Bag, keySetOf func(*jsontype.Type) []string) (entity.Weighted, *entity.Dict, [][]int) {
	dict := entity.NewDict()
	var w entity.Weighted
	setIndex := map[string]int{}
	var typesBySet [][]int
	for ti, t := range bag.Types() {
		ks := entity.KeySetOf(dict, keySetOf(t)...)
		c := ks.Canon()
		si, ok := setIndex[c]
		if !ok {
			si = len(w.Sets)
			setIndex[c] = si
			w.Sets = append(w.Sets, ks)
			w.Weights = append(w.Weights, 0)
			typesBySet = append(typesBySet, nil)
		}
		w.Weights[si] += bag.Count(ti)
		typesBySet[si] = append(typesBySet[si], ti)
	}
	return w, dict, typesBySet
}

// assignClusters maps each distinct key set to a cluster id under the
// configured strategy. Weights ride along for per-entity statistics; no
// strategy's clustering decisions depend on them (entity discovery is
// multiplicity-blind, §6.4).
func assignClusters(w entity.Weighted, dict *entity.Dict, cfg Config) []int {
	assignment := make([]int, len(w.Sets))
	switch cfg.Partition {
	case BimaxNaive, BimaxMerge:
		clusters := entity.DiscoverEntities(w, cfg.Partition == BimaxMerge)
		for ci, c := range clusters {
			for _, m := range c.Members {
				assignment[m] = ci
			}
		}
	case KMeansStrategy:
		k := cfg.KMeansK
		if k <= 0 {
			k = 1
		}
		assignment = entity.KMeans(w.Sets, dict.Len(), k, cfg.Seed, 100)
	}
	return assignment
}

// groupByAssignment materializes entity bags from a cluster assignment
// over distinct key sets.
func groupByAssignment(bag *jsontype.Bag, typesBySet [][]int, assignment []int) []*jsontype.Bag {
	nClusters := 0
	for _, c := range assignment {
		if c+1 > nClusters {
			nClusters = c + 1
		}
	}
	parts := make([]*jsontype.Bag, nClusters)
	for si, cluster := range assignment {
		if parts[cluster] == nil {
			parts[cluster] = &jsontype.Bag{}
		}
		for _, ti := range typesBySet[si] {
			parts[cluster].AddN(bag.Types()[ti], bag.Count(ti))
		}
	}
	out := parts[:0]
	for _, p := range parts {
		if p != nil && p.Len() > 0 {
			out = append(out, p)
		}
	}
	return out
}

func partitionPerKeySet(bag *jsontype.Bag, keySetOf func(*jsontype.Type) []string) []*jsontype.Bag {
	dict := entity.NewDict()
	index := map[string]*jsontype.Bag{}
	var order []*jsontype.Bag
	for ti, t := range bag.Types() {
		c := entity.KeySetOf(dict, keySetOf(t)...).Canon()
		part := index[c]
		if part == nil {
			part = &jsontype.Bag{}
			index[c] = part
			order = append(order, part)
		}
		part.AddN(t, bag.Count(ti))
	}
	return order
}
