package core

import (
	"sort"

	"jxplain/internal/entropy"
	"jxplain/internal/jsontype"
)

// PathStat records the collection-detection evidence for the bag of
// complex-kinded values observed at one path — one row of pass ① (Figure 3)
// and one point of the Figure 4 entropy distribution.
type PathStat struct {
	// Path is the path string ("$", "$.user.geo", "$.files[*]", …).
	Path string
	// Kind is jsontype.KindObject or jsontype.KindArray.
	Kind jsontype.Kind
	// Decision is the heuristic's tuple/collection call at this path.
	Decision entropy.Decision
	// Evidence carries the measured key-space entropy and similarity.
	Evidence entropy.Evidence
}

// CollectPathStats runs pass ① of the staged pipeline: a single top-down
// walk grouping values by path and applying the Section 5 heuristic at
// every complex-kinded path. Descent follows the decisions: below a
// detected collection all elements share one wildcard path; below tuples
// each key (or index) gets its own path. Results are sorted by path.
func CollectPathStats(bag *jsontype.Bag, cfg Config) []PathStat {
	var out []PathStat
	collectStats(RootPath, bag, cfg, &out)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

func collectStats(path string, bag *jsontype.Bag, cfg Config, out *[]PathStat) {
	_, arrays, objects := bag.SplitKinds()

	if arrays.Len() > 0 {
		decision, ev := entropy.DetectArrays(arrays, cfg.Detection)
		if !cfg.DetectArrayTuples {
			decision = entropy.Collection
		}
		*out = append(*out, PathStat{Path: path, Kind: jsontype.KindArray, Decision: decision, Evidence: ev})
		if decision == entropy.Collection {
			if elems := arrays.Elements(); elems.Len() > 0 {
				collectStats(arrayElemPath(path), elems, cfg, out)
			}
		} else {
			groups, _ := arrays.GroupByIndex()
			for i, g := range groups {
				collectStats(arrayIndexPath(path, i), g, cfg, out)
			}
		}
	}

	if objects.Len() > 0 {
		decision, ev := entropy.DetectObjects(objects, cfg.Detection)
		if !cfg.DetectObjectCollections {
			decision = entropy.Tuple
		}
		*out = append(*out, PathStat{Path: path, Kind: jsontype.KindObject, Decision: decision, Evidence: ev})
		if decision == entropy.Collection {
			if values := objects.FieldValues(); values.Len() > 0 {
				collectStats(objectValuePath(path), values, cfg, out)
			}
		} else {
			keys, groups, _ := objects.GroupByKey()
			for i, key := range keys {
				collectStats(childKeyPath(path, key), groups[i], cfg, out)
			}
		}
	}
}

// CollectionPaths returns the set of paths pass ① marks as collections,
// keyed by path string with the kind recorded alongside (a path can host
// both object and array values; they are tracked independently).
func CollectionPaths(stats []PathStat) map[string][2]bool {
	out := map[string][2]bool{}
	for _, st := range stats {
		if st.Decision != entropy.Collection {
			continue
		}
		entry := out[st.Path]
		if st.Kind == jsontype.KindArray {
			entry[0] = true
		} else {
			entry[1] = true
		}
		out[st.Path] = entry
	}
	return out
}
