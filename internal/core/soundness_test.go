package core

import (
	"fmt"
	"math/rand"
	"testing"

	"jxplain/internal/jsontype"
)

// Discovery soundness: whatever the configuration, a discovered schema
// must admit every record it was trained on. This is the invariant the
// whole system hangs on — recall loss is only allowed on *unseen* data.

func soundnessConfigs() []Config {
	kmeans := Default()
	kmeans.Partition = KMeansStrategy
	kmeans.KMeansK = 3
	perKey := Default()
	perKey.Partition = PerKeySet
	lowThreshold := Default()
	lowThreshold.Detection.Threshold = 0.25
	highThreshold := Default()
	highThreshold.Detection.Threshold = 2.5
	sampled := Default()
	sampled.DetectionSample = 0.3
	return []Config{
		Default(), BimaxNaiveConfig(), KReduceConfig(),
		kmeans, perKey, lowThreshold, highThreshold, sampled,
	}
}

// randomSoundnessType builds adversarial records: deep nesting, mixed
// kinds at shared paths, collection-like maps, varying-length arrays,
// nulls everywhere.
func randomSoundnessType(r *rand.Rand, depth int) *jsontype.Type {
	if depth <= 0 || r.Intn(4) == 0 {
		return jsontype.NewPrimitive(jsontype.Kind(r.Intn(4)))
	}
	switch r.Intn(3) {
	case 0:
		n := r.Intn(5)
		elems := make([]*jsontype.Type, n)
		for i := range elems {
			elems[i] = randomSoundnessType(r, depth-1)
		}
		return jsontype.NewArray(elems)
	case 1:
		// Collection-like: many keys, one value shape.
		var fields []jsontype.Field
		seen := map[string]bool{}
		for i := 0; i < r.Intn(6); i++ {
			k := fmt.Sprintf("k%02d", r.Intn(50))
			if seen[k] {
				continue
			}
			seen[k] = true
			fields = append(fields, jsontype.Field{Key: k, Type: jsontype.Number})
		}
		return jsontype.NewObject(fields)
	default:
		var fields []jsontype.Field
		keys := []string{"a", "b", "c", "d", "e", "f"}
		seen := map[string]bool{}
		for i := 0; i < r.Intn(5); i++ {
			k := keys[r.Intn(len(keys))]
			if seen[k] {
				continue
			}
			seen[k] = true
			fields = append(fields, jsontype.Field{Key: k, Type: randomSoundnessType(r, depth-1)})
		}
		return jsontype.NewObject(fields)
	}
}

func TestDiscoverySoundnessProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	configs := soundnessConfigs()
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(50)
		types := make([]*jsontype.Type, n)
		for i := range types {
			types[i] = randomSoundnessType(r, 3)
		}
		for ci, cfg := range configs {
			cfg.Seed = int64(trial)
			for _, discover := range []func([]*jsontype.Type, Config) interface {
				Accepts(*jsontype.Type) bool
			}{
				func(ts []*jsontype.Type, c Config) interface{ Accepts(*jsontype.Type) bool } {
					return DiscoverTypes(ts, c)
				},
				func(ts []*jsontype.Type, c Config) interface{ Accepts(*jsontype.Type) bool } {
					return PipelineTypes(ts, c)
				},
			} {
				s := discover(types, cfg)
				for i, ty := range types {
					if !s.Accepts(ty) {
						t.Fatalf("trial %d cfg %d: schema rejects its own training record %d: %v",
							trial, ci, i, ty)
					}
				}
			}
		}
	}
}
