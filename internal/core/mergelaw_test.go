package core

import (
	"reflect"
	"testing"

	"jxplain/internal/jsontype"
)

// Property tests for the PathSketch monoid (demanded by the mergelaw
// analyzer): folding chunk sketches in any order or grouping must derive
// identical pass-① statistics. Merge consumes its argument, so each
// algebraic expression is built from fresh sketches.

func lawSketchChunks() [][]*jsontype.Type {
	return [][]*jsontype.Type{
		{
			jsontype.MustFromValue(map[string]any{"id": 1.0, "name": "x"}),
			jsontype.MustFromValue(map[string]any{"id": 2.0, "tags": []any{"a", "b"}}),
		},
		{
			jsontype.MustFromValue(map[string]any{"id": 3.0, "name": nil}),
			jsontype.MustFromValue(map[string]any{"k1": []any{1.0, 2.0}, "k2": []any{3.0}}),
		},
		{
			jsontype.MustFromValue(map[string]any{"k3": []any{4.0, 5.0, 6.0}}),
		},
	}
}

func sketchOf(chunk []*jsontype.Type) *PathSketch {
	s := NewPathSketch()
	for _, t := range chunk {
		s.Add(t)
	}
	return s
}

func requireSameSketch(t *testing.T, x, y *PathSketch) {
	t.Helper()
	if x.Records() != y.Records() {
		t.Fatalf("Records: %d vs %d", x.Records(), y.Records())
	}
	cfg := Default()
	if sx, sy := x.Stats(cfg), y.Stats(cfg); !reflect.DeepEqual(sx, sy) {
		t.Fatalf("Stats diverge:\n%v\nvs\n%v", sx, sy)
	}
}

func TestPathSketchMergeCommutativeProperty(t *testing.T) {
	chunks := lawSketchChunks()

	ab := sketchOf(chunks[0])
	ab.Merge(sketchOf(chunks[1])) // a ⊕ b

	ba := sketchOf(chunks[1])
	ba.Merge(sketchOf(chunks[0])) // b ⊕ a

	requireSameSketch(t, ab, ba)
}

func TestPathSketchMergeAssociativeProperty(t *testing.T) {
	chunks := lawSketchChunks()

	left := sketchOf(chunks[0])
	left.Merge(sketchOf(chunks[1]))
	left.Merge(sketchOf(chunks[2])) // (a ⊕ b) ⊕ c

	bc := sketchOf(chunks[1])
	bc.Merge(sketchOf(chunks[2]))
	right := sketchOf(chunks[0])
	right.Merge(bc) // a ⊕ (b ⊕ c)

	requireSameSketch(t, left, right)
}
