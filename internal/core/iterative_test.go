package core

import (
	"fmt"
	"testing"

	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
)

func TestIterativeDiscoverConverges(t *testing.T) {
	// 500 records of one entity; a rare optional field appears in ~2% of
	// them, so a 1% seed sample will likely miss it and need refinement.
	var types []*jsontype.Type
	for i := 0; i < 500; i++ {
		src := fmt.Sprintf(`{"id":%d,"name":"u"}`, i)
		if i%47 == 0 {
			src = fmt.Sprintf(`{"id":%d,"name":"u","rare":true}`, i)
		}
		types = append(types, ty(t, src))
	}
	s, report := IterativeDiscover(types, Default(), 0.01, 10, 1)
	if !report.Converged {
		t.Fatalf("should converge: %+v", report)
	}
	for _, typ := range types {
		if !s.Accepts(typ) {
			t.Fatalf("converged schema rejects %v", typ)
		}
	}
	if report.Rounds < 1 || len(report.SampleSizes) != report.Rounds {
		t.Errorf("report bookkeeping wrong: %+v", report)
	}
	if report.FailuresPerRound[len(report.FailuresPerRound)-1] != 0 {
		t.Errorf("final round should have zero failures: %+v", report)
	}
}

func TestIterativeDiscoverEmptyInput(t *testing.T) {
	s, report := IterativeDiscover(nil, Default(), 0.01, 5, 1)
	if !schema.IsEmpty(s) || !report.Converged {
		t.Error("empty input should converge to the empty schema")
	}
}

func TestIterativeDiscoverBadFractionDefaults(t *testing.T) {
	types := []*jsontype.Type{ty(t, `{"a":1}`), ty(t, `{"a":2}`)}
	s, report := IterativeDiscover(types, Default(), -5, 0, 1)
	if !report.Converged {
		t.Errorf("tiny input should converge: %+v", report)
	}
	if !s.Accepts(types[0]) {
		t.Error("schema must cover the input")
	}
}

func TestIterativeDiscoverSampleGrowsOnFailures(t *testing.T) {
	// Two disjoint entities, one rare: the seed sample catches only the
	// common one and must grow.
	var types []*jsontype.Type
	for i := 0; i < 300; i++ {
		types = append(types, ty(t, fmt.Sprintf(`{"common":%d}`, i)))
	}
	types = append(types, ty(t, `{"rare_entity":"x","other":"y"}`))
	s, report := IterativeDiscover(types, Default(), 0.02, 10, 3)
	if !report.Converged {
		t.Fatalf("should converge: %+v", report)
	}
	if report.Rounds < 2 {
		t.Logf("note: seed sample caught the rare entity by chance (rounds=%d)", report.Rounds)
	}
	if !s.Accepts(types[len(types)-1]) {
		t.Error("rare entity must be covered after refinement")
	}
}
