// Package core implements JXPLAIN itself (Section 4): the ambiguity-aware
// schema discovery algorithm (Algorithm 4) that decides per instance
// whether complex values encode tuples or collections (via the entropy
// heuristics of Section 5) and how many entities a bag of tuples contains
// (via the Bimax machinery of Section 6).
//
// Two equivalent execution strategies are provided: Discover runs the
// straightforward recursive algorithm; Pipeline runs the staged three-pass
// decomposition of Figure 3 (① collection detection, ② partition-strategy
// precomputation, ③ synthesis) that the paper uses to parallelize the
// global heuristics. Both produce identical schemas.
package core

import (
	"jxplain/internal/entropy"
)

// PartitionStrategy selects the multi-entity heuristic applied to bags of
// tuple-like types.
type PartitionStrategy uint8

// The available partitioning strategies.
const (
	// SingleEntity merges every tuple into one entity with optional fields
	// (the K-reduction behavior).
	SingleEntity PartitionStrategy = iota
	// PerKeySet makes one entity per distinct key set (no clustering) —
	// the L-reduction end of the spectrum, modulo value-type merging.
	PerKeySet
	// BimaxNaive clusters key sets with Algorithm 7 only.
	BimaxNaive
	// BimaxMerge clusters with Algorithm 7 and coalesces with the
	// GreedyMerge step (Algorithm 8) — the JXPLAIN default.
	BimaxMerge
	// KMeansStrategy clusters with the k-means baseline (requires KMeansK).
	KMeansStrategy
)

func (p PartitionStrategy) String() string {
	switch p {
	case SingleEntity:
		return "single"
	case PerKeySet:
		return "per-keyset"
	case BimaxNaive:
		return "bimax-naive"
	case BimaxMerge:
		return "bimax-merge"
	case KMeansStrategy:
		return "k-means"
	}
	return "invalid"
}

// Config parameterizes discovery.
type Config struct {
	// Detection configures the Section 5 collection-detection heuristic.
	Detection entropy.Config
	// DetectObjectCollections enables object tuple/collection detection;
	// when false every object bag is treated as tuples (the K-reduction
	// assumption).
	DetectObjectCollections bool
	// DetectArrayTuples enables array tuple/collection detection; when
	// false every array bag is treated as a collection (the K-reduction
	// assumption).
	DetectArrayTuples bool
	// Partition selects the multi-entity heuristic for tuple bags.
	Partition PartitionStrategy
	// KMeansK is the cluster count for KMeansStrategy.
	KMeansK int
	// Seed makes randomized strategies (k-means, detection sampling)
	// deterministic.
	Seed int64
	// DetectionSample, when in (0, 1), makes Pipeline compute the pass-①
	// collection decisions from a uniform sample of the records instead of
	// the full collection — the "entropy approximation" that avoids a full
	// extra pass (§7.4 notes the evaluated system did *not* use it and so
	// paid for a complete second pass; §4.2 observes even a 1% sample is
	// usually almost perfect). 0 or ≥1 means exact detection.
	DetectionSample float64
	// StatsWorkers, when > 1, runs pass ① as a partitioned parallel fold
	// over mergeable per-path statistics (the Spark execution shape)
	// instead of the sequential walk. Results are identical.
	StatsWorkers int
	// SynthWorkers, when > 1, fans passes ② and ③ out over a bounded
	// worker pool: partition plans for sibling subtrees are computed
	// concurrently, and the synthesizer merges sibling child bags in
	// parallel, assembling results in deterministic (index) order. The
	// schema is identical to the sequential run.
	SynthWorkers int
	// Bounds caps the accumulator's state for unbounded streams. The zero
	// value keeps the exact (memory ∝ distinct structure) behavior.
	Bounds Bounds
}

// Bounds configures the sublinear-memory stream mode: a weighted
// reservoir over distinct record types, a ring of closed sketch windows,
// and exponential decay of the retained counters. Any non-zero bound
// trades exactness for a hard cap — see DESIGN.md "Unbounded streams"
// for the tolerance contract. The zero value is fully exact.
type Bounds struct {
	// ReservoirCapacity, when > 0, replaces the exact union bag with a
	// weighted reservoir (Efraimidis–Spirakis priorities, seeded by
	// Config.Seed) retaining at most this many distinct record types;
	// heavier types survive eviction longer. 0 keeps the exact bag.
	ReservoirCapacity int
	// WindowRecords, when > 0, is the stream's rotation cadence: every
	// WindowRecords record occurrences the accumulator closes the current
	// epoch (pushing it into the window ring, or applying decay when no
	// ring is configured). 0 disables rotation, and with it WindowCount
	// and DecayFactor.
	WindowRecords int
	// WindowCount, when > 0, retains that many closed pass-① sketch
	// windows in a ring; statistics are derived from the retained windows
	// plus the live epoch, so decisions track the recent horizon and trie
	// memory is bounded by the horizon's distinct structure. 0 keeps one
	// cumulative sketch.
	WindowCount int
	// DecayFactor, when in (0, 1), multiplies the reservoir counts — and,
	// when no ring is configured, the live sketch's counters — by this
	// factor at every rotation, compacting subtrees that decay to zero.
	DecayFactor float64
}

// bounded reports whether any stream bound is active.
func (b Bounds) bounded() bool { return b.ReservoirCapacity > 0 || b.WindowRecords > 0 }

// hasDecay reports whether rotation applies exponential decay.
func (b Bounds) hasDecay() bool { return b.DecayFactor > 0 && b.DecayFactor < 1 }

// Default returns the full JXPLAIN configuration used in the paper's
// experiments: entropy threshold 1, both detections enabled, Bimax-Merge
// entity discovery.
func Default() Config {
	return Config{
		Detection:               entropy.DefaultConfig(),
		DetectObjectCollections: true,
		DetectArrayTuples:       true,
		Partition:               BimaxMerge,
	}
}

// BimaxNaiveConfig is the "Bimax Naive" system of the experiments: JXPLAIN
// with the naive Bimax clustering (no GreedyMerge).
func BimaxNaiveConfig() Config {
	cfg := Default()
	cfg.Partition = BimaxNaive
	return cfg
}

// KReduceConfig reproduces the K-reduction within the JXPLAIN framework:
// detection disabled (arrays are always collections, objects always
// tuples) and single-entity merging. Discover with this configuration
// produces the same schema as merge.K.
func KReduceConfig() Config {
	return Config{
		Detection:               entropy.DefaultConfig(),
		DetectObjectCollections: false,
		DetectArrayTuples:       false,
		Partition:               SingleEntity,
	}
}
