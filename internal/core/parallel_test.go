package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"jxplain/internal/entity"
	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
)

func pathStatsEqual(a, b []PathStat) string {
	if len(a) != len(b) {
		return fmt.Sprintf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Path != b[i].Path || a[i].Kind != b[i].Kind || a[i].Decision != b[i].Decision {
			return fmt.Sprintf("row %d: %+v vs %+v", i, a[i], b[i])
		}
		if math.Abs(a[i].Evidence.KeyEntropy-b[i].Evidence.KeyEntropy) > 1e-9 ||
			a[i].Evidence.Similar != b[i].Evidence.Similar ||
			a[i].Evidence.Records != b[i].Evidence.Records ||
			a[i].Evidence.DistinctKeys != b[i].Evidence.DistinctKeys {
			return fmt.Sprintf("row %d evidence: %+v vs %+v", i, a[i].Evidence, b[i].Evidence)
		}
	}
	return ""
}

func TestParallelPathStatsMatchesSequential(t *testing.T) {
	bag := bagFrom(t,
		`{"ts":7,"event":"login","user":{"name":"bob","geo":[1.1,2.2]}}`,
		`{"ts":8,"event":"serve","files":["a.txt","b.txt"]}`,
		`{"ts":9,"event":"login","user":{"name":"eve","geo":[3.0,4.5]}}`,
	)
	seq := CollectPathStats(bag, Default())
	par := ParallelCollectPathStats(bag.Types(), 3, Default())
	// bag.Types() is deduplicated; rebuild the full slice for fairness.
	var types []*jsontype.Type
	bag.Each(func(ty *jsontype.Type, n int) {
		for i := 0; i < n; i++ {
			types = append(types, ty)
		}
	})
	par = ParallelCollectPathStats(types, 3, Default())
	if diff := pathStatsEqual(seq, par); diff != "" {
		t.Errorf("parallel diverges: %s", diff)
	}
}

func TestParallelPathStatsCollectionMerging(t *testing.T) {
	// A collection-like object must produce identical wildcard descent.
	var types []*jsontype.Type
	for i := 0; i < 60; i++ {
		src := fmt.Sprintf(`{"m":{"k%d":{"inner":1},"k%d":{"inner":2}}}`, i%31, (i+9)%31)
		types = append(types, ty(t, src))
	}
	bag := &jsontype.Bag{}
	for _, typ := range types {
		bag.Add(typ)
	}
	seq := CollectPathStats(bag, Default())
	for _, workers := range []int{1, 2, 5, 16} {
		par := ParallelCollectPathStats(types, workers, Default())
		if diff := pathStatsEqual(seq, par); diff != "" {
			t.Errorf("workers=%d: %s", workers, diff)
		}
	}
}

func TestParallelPathStatsRandom(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		var types []*jsontype.Type
		n := 5 + r.Intn(60)
		for i := 0; i < n; i++ {
			types = append(types, randomRecord(r))
		}
		bag := &jsontype.Bag{}
		for _, typ := range types {
			bag.Add(typ)
		}
		seq := CollectPathStats(bag, Default())
		par := ParallelCollectPathStats(types, 1+r.Intn(7), Default())
		if diff := pathStatsEqual(seq, par); diff != "" {
			t.Fatalf("trial %d: %s", trial, diff)
		}
	}
}

// randomRecord builds records with mixed tuples, collections, arrays and
// primitives, including conflicting kinds at shared paths.
func randomRecord(r *rand.Rand) *jsontype.Type {
	rec := map[string]any{"id": float64(r.Intn(100))}
	if r.Intn(2) == 0 {
		rec["geo"] = []any{r.Float64(), r.Float64()}
	}
	if r.Intn(3) == 0 {
		m := map[string]any{}
		for i := 0; i < 1+r.Intn(5); i++ {
			m[fmt.Sprintf("key%d", r.Intn(40))] = float64(r.Intn(10))
		}
		rec["counts"] = m
	}
	if r.Intn(3) == 0 {
		tags := make([]any, r.Intn(6))
		for i := range tags {
			tags[i] = "t"
		}
		rec["tags"] = tags
	}
	if r.Intn(4) == 0 {
		rec["mixed"] = []any{1.0, "s", true}[r.Intn(3)]
	}
	if r.Intn(5) == 0 {
		rec["v"] = map[string]any{"a": 1.0}
	} else if r.Intn(5) == 0 {
		rec["v"] = []any{1.0}
	}
	return jsontype.MustFromValue(rec)
}

func TestPipelineWithStatsWorkers(t *testing.T) {
	bag := bagFrom(t,
		`{"ts":7,"event":"login","user":{"name":"bob","geo":[1.1,2.2]}}`,
		`{"ts":8,"event":"serve","files":["a.txt","b.txt"]}`,
		`{"m":{"k1":1,"k2":2}}`,
	)
	serial := Pipeline(bag, Default())
	cfg := Default()
	cfg.StatsWorkers = 4
	parallel := Pipeline(bag, cfg)
	if !schema.Equal(schema.Simplify(serial), schema.Simplify(parallel)) {
		t.Errorf("parallel pass ① changed the schema:\n%s\n%s", serial, parallel)
	}
}

func TestParallelCollectPathStatsBagMatches(t *testing.T) {
	bag := &jsontype.Bag{}
	bag.AddN(ty(t, `{"a":1,"b":"x"}`), 7)
	bag.AddN(ty(t, `{"a":2}`), 3)
	bag.Add(ty(t, `{"c":[1,2,3]}`))
	seq := CollectPathStats(bag, Default())
	par := ParallelCollectPathStatsBag(bag, 3, Default())
	if diff := pathStatsEqual(seq, par); diff != "" {
		t.Errorf("bag variant diverges: %s", diff)
	}
}

func TestBuildFeatureSetDirect(t *testing.T) {
	bag := bagFrom(t,
		`{"a":1,"m":{"k1":1,"k2":2},"geo":[1.0,2.0]}`,
		`{"a":2,"m":{"k3":3},"geo":[3.0,4.0]}`,
		`{"a":3,"m":{"k4":4,"k5":5,"k6":6},"geo":[5.0,6.0]}`,
	)
	pruned := BuildFeatureSet(bag, Default(), true, entity.Sparse)
	raw := BuildFeatureSet(bag, Default(), false, entity.Sparse)
	// With the m collection pruned, all three records share one vector
	// {.a, .m, .geo, .geo[0], .geo[1]}.
	if pruned.Distinct() != 1 {
		t.Errorf("pruned distinct = %d", pruned.Distinct())
	}
	if raw.Distinct() != 3 {
		t.Errorf("raw distinct = %d", raw.Distinct())
	}
	if pruned.MemoryBytes() >= raw.MemoryBytes() {
		t.Error("pruning should reduce memory")
	}
	if pruned.Total() != 3 {
		t.Errorf("total = %d", pruned.Total())
	}
	// Primitive records contribute no vectors.
	primBag := jsontype.NewBag(jsontype.Number, jsontype.String)
	if fs := BuildFeatureSet(primBag, Default(), true, entity.Dense); fs.Total() != 0 {
		t.Error("primitives have no feature vectors")
	}
}

func TestParallelPathStatsEmptyAndPrimitive(t *testing.T) {
	if got := ParallelCollectPathStats(nil, 4, Default()); len(got) != 0 {
		t.Error("no records → no stats")
	}
	prim := []*jsontype.Type{jsontype.Number, jsontype.String}
	if got := ParallelCollectPathStats(prim, 2, Default()); len(got) != 0 {
		t.Error("primitive-only records have no complex paths")
	}
}

func TestParallelPathStatsOnDatasetShapes(t *testing.T) {
	// The detection-disabled configs must also agree.
	cfgs := []Config{Default(), KReduceConfig(), BimaxNaiveConfig()}
	bag := bagFrom(t,
		`{"a":{"x":1},"b":[[1,2],[3,4]],"c":"s"}`,
		`{"a":{"y":2},"b":[[5,6]],"c":"t"}`,
		`{"a":{"z":3},"b":[],"d":null}`,
	)
	var types []*jsontype.Type
	bag.Each(func(typ *jsontype.Type, n int) {
		for i := 0; i < n; i++ {
			types = append(types, typ)
		}
	})
	for _, cfg := range cfgs {
		seq := CollectPathStats(bag, cfg)
		par := ParallelCollectPathStats(types, 4, cfg)
		if diff := pathStatsEqual(seq, par); diff != "" {
			t.Errorf("cfg %v: %s", cfg.Partition, diff)
		}
	}
}

func TestEffectiveWorkersCutover(t *testing.T) {
	cases := []struct{ workers, distinct, want int }{
		{8, 0, 1},
		{8, parallelCutover - 1, 1},
		{8, parallelCutover, 8},
		{8, parallelCutover + 1, 8},
		{1, parallelCutover, 1},
		{0, parallelCutover - 1, 1},
	}
	for _, c := range cases {
		if got := effectiveWorkers(c.workers, c.distinct); got != c.want {
			t.Errorf("effectiveWorkers(%d, %d) = %d, want %d", c.workers, c.distinct, got, c.want)
		}
	}
}

func TestPipelineParallelAboveCutoverMatchesSequential(t *testing.T) {
	// Enough distinct record types to clear the cutover, so the
	// config-driven parallel paths genuinely fan out and must still
	// produce the byte-identical schema.
	if testing.Short() {
		t.Skip("builds a bag above the parallel cutover")
	}
	bag := &jsontype.Bag{}
	for i := 0; i < parallelCutover+16; i++ {
		src := fmt.Sprintf(`{"id":%d,"v%d":1}`, i, i%5000)
		bag.Add(ty(t, src))
	}
	serial := Pipeline(bag, Default())
	cfg := Default()
	cfg.StatsWorkers = 4
	cfg.SynthWorkers = 4
	parallel := Pipeline(bag, cfg)
	if !schema.Equal(serial, parallel) {
		t.Error("parallel synthesis above the cutover changed the schema")
	}
}
