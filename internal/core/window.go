package core

import (
	"jxplain/internal/dist"
)

// Windowed sketch rings: the pass-① state of an unbounded stream, held as
// a fixed ring of per-window PathSketch epochs instead of one
// ever-growing trie. The live epoch accumulates; every WindowRecords
// records it is serialized in the sketch wire format and pushed into the
// ring, evicting the oldest window once the ring is full. Deriving
// statistics rolls the retained windows back up with the same balanced
// tree reduction the sharded reduce phase uses (reduce.go), so the
// decisions always reflect the last `width` windows of the stream —
// retired paths fall out of scope when their windows expire, and memory
// is bounded by the distinct structure of the window horizon, not of the
// whole stream.
//
// Serializing closed windows rather than keeping them as live tries buys
// three things at once: the ring's retained state is a compact flat
// buffer instead of pointer-heavy trie nodes, every window is already a
// snapshot any driver can persist or ship (the PR-6 wire format), and
// per-window drift diffs come free — a closed window decodes to exactly
// the statistics that window observed.

// sketchRing holds the serialized closed windows, oldest first.
type sketchRing struct {
	width   int      // closed windows retained (≥ 1)
	windows [][]byte // serialized epochs, oldest first
	closed  int      // lifetime count of closed windows
}

func newSketchRing(width int) *sketchRing {
	return &sketchRing{width: width}
}

// push retires a serialized epoch into the ring, evicting the oldest
// window beyond the width.
func (g *sketchRing) push(data []byte) {
	g.windows = append(g.windows, data)
	g.closed++
	if len(g.windows) > g.width {
		copy(g.windows, g.windows[1:])
		g.windows[len(g.windows)-1] = nil
		g.windows = g.windows[:len(g.windows)-1]
	}
}

// rollup merges the retained windows and the live epoch into one sketch.
// The closed windows reduce as a balanced tree over the worker pool; the
// live epoch is folded in last through combineShared, treating it as
// immutable so the accumulator can keep appending to it afterwards.
func (g *sketchRing) rollup(live *PathSketch, workers int) (*PathSketch, error) {
	merged, err := ReducePathSketches(g.windows, workers)
	if err != nil {
		return nil, err
	}
	if live != nil {
		merged.root.combineShared(live.root)
		merged.records += live.records
	}
	return merged, nil
}

// ReducePathSketches decodes the serialized sketches and merges them as a
// balanced binary tree over at most `workers` goroutines (≤ 0 means one
// per core) — the PathSketch-level counterpart of
// Accumulator.MergeSketches, sharing its adjacent-pair combine (see
// treeCombine in reduce.go). Statistics derived from the result are
// identical to folding the sketches sequentially. A corrupt input aborts
// with a *SketchMergeError carrying the failing sketch's index.
func ReducePathSketches(files [][]byte, workers int) (*PathSketch, error) {
	if workers <= 0 {
		workers = dist.DefaultWorkers()
	}
	if len(files) == 0 {
		return NewPathSketch(), nil
	}
	sketches := make([]*PathSketch, len(files))
	errs := make([]error, len(files))
	dist.ForEach(len(files), workers, func(i int) {
		s, err := UnmarshalPathSketch(files[i])
		if err != nil {
			errs[i] = &SketchMergeError{Index: i, Err: err}
			return
		}
		sketches[i] = s
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return treeCombine(sketches, workers, func(dst, src *PathSketch) {
		dst.Merge(src)
	}), nil
}
