package core

import (
	"sort"

	"jxplain/internal/dist"
	"jxplain/internal/entropy"
	"jxplain/internal/jsontype"
	"jxplain/internal/stats"
)

// Parallel pass ①. CollectPathStats walks the whole bag sequentially; on a
// cluster (or across cores) the paper instead computes the per-path
// statistics as a partitioned fold with fan-in aggregation, which works
// because every statistic Algorithm 5 needs is mergeable:
//
//   - record and key-presence counters add,
//   - array-length histograms add,
//   - the similar-types constraint combines through the subsumption rule
//     (each partition keeps its maximal type; partitions are jointly
//     similar iff their maximal types are similar).
//
// statsTrie is the per-partition state: a trie over *concrete* paths
// (object keys and array positions) carrying those statistics. After the
// fold, decisions are derived top-down: where a node is ruled a
// collection, its children's subtrees are merged into one wildcard child,
// reproducing exactly the paths and bags the sequential walk would have
// visited.

type statsTrie struct {
	// Object-kinded statistics at this path.
	objCount  int
	keyCounts map[string]int
	objSim    jsontype.SimilarityAccumulator

	// Array-kinded statistics at this path.
	arrCount  int
	lenCounts map[int]int
	arrSim    jsontype.SimilarityAccumulator

	children map[string]*statsTrie // object keys
	elems    []*statsTrie          // array positions
}

// newStatsTrie allocates an empty trie node.
//
//jx:coldpath allocates once per newly observed path node, not per record
func newStatsTrie() *statsTrie { return &statsTrie{} }

//jx:hotpath
func (t *statsTrie) child(key string) *statsTrie {
	if t.children == nil {
		t.children = map[string]*statsTrie{}
	}
	c := t.children[key]
	if c == nil {
		c = newStatsTrie()
		t.children[key] = c
	}
	return c
}

//jx:hotpath
func (t *statsTrie) elem(i int) *statsTrie {
	for len(t.elems) <= i {
		t.elems = append(t.elems, newStatsTrie())
	}
	return t.elems[i]
}

// add folds one value type (with multiplicity n) into the trie.
//
//jx:hotpath
func (t *statsTrie) add(ty *jsontype.Type, n int) {
	switch ty.Kind() {
	case jsontype.KindObject:
		t.objCount += n
		if t.keyCounts == nil {
			t.keyCounts = map[string]int{}
		}
		for _, f := range ty.Fields() {
			t.keyCounts[f.Key] += n
			t.objSim.Add(f.Type)
			t.child(f.Key).add(f.Type, n)
		}
	case jsontype.KindArray:
		t.arrCount += n
		if t.lenCounts == nil {
			t.lenCounts = map[int]int{}
		}
		t.lenCounts[ty.Len()] += n
		for i, e := range ty.Elems() {
			t.arrSim.Add(e)
			t.elem(i).add(e, n)
		}
	}
}

// combine merges other into t (mutating t).
//
//jx:hotpath
func (t *statsTrie) combine(other *statsTrie) *statsTrie {
	t.objCount += other.objCount
	if other.keyCounts != nil {
		if t.keyCounts == nil {
			t.keyCounts = other.keyCounts
		} else {
			for k, n := range other.keyCounts {
				t.keyCounts[k] += n
			}
		}
	}
	t.objSim.Combine(&other.objSim)

	t.arrCount += other.arrCount
	if other.lenCounts != nil {
		if t.lenCounts == nil {
			t.lenCounts = other.lenCounts
		} else {
			for l, n := range other.lenCounts {
				t.lenCounts[l] += n
			}
		}
	}
	t.arrSim.Combine(&other.arrSim)

	for k, oc := range other.children {
		if tc, ok := t.children[k]; ok {
			tc.combine(oc)
		} else {
			t.child(k).combine(oc)
		}
	}
	for i, oe := range other.elems {
		t.elem(i).combine(oe)
	}
	return t
}

// objectEvidence renders the node's object statistics as entropy.Evidence,
// matching entropy.DetectObjects bit for bit.
func (t *statsTrie) objectEvidence() entropy.Evidence {
	// Key order must be pinned before the float64 summation inside Entropy:
	// FP addition is not associative, so map order would leak into the
	// entropy bits (and differ from entropy.DetectObjects).
	keys := make([]string, 0, len(t.keyCounts))
	for k := range t.keyCounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	weights := make([]float64, 0, len(keys))
	for _, k := range keys {
		weights = append(weights, float64(t.keyCounts[k]))
	}
	return entropy.Evidence{
		KeyEntropy:   stats.Entropy(weights, float64(t.objCount)),
		Similar:      t.objSim.Similar(),
		Records:      t.objCount,
		DistinctKeys: len(t.keyCounts),
	}
}

// arrayEvidence renders the node's array statistics, matching
// entropy.DetectArrays.
func (t *statsTrie) arrayEvidence() entropy.Evidence {
	lengths := make([]int, 0, len(t.lenCounts))
	for l := range t.lenCounts {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	weights := make([]float64, 0, len(lengths))
	for _, l := range lengths {
		weights = append(weights, float64(t.lenCounts[l]))
	}
	return entropy.Evidence{
		KeyEntropy:   stats.Entropy(weights, float64(t.arrCount)),
		Similar:      t.arrSim.Similar(),
		Records:      t.arrCount,
		DistinctKeys: len(t.lenCounts),
	}
}

// derive walks the aggregated trie top-down, emitting the same PathStat
// rows the sequential CollectPathStats produces.
func (t *statsTrie) derive(path string, cfg Config, out *[]PathStat) {
	if t.arrCount > 0 {
		ev := t.arrayEvidence()
		decision := entropy.Decide(ev, cfg.Detection)
		if !cfg.DetectArrayTuples {
			decision = entropy.Collection
		}
		*out = append(*out, PathStat{
			Path: path, Kind: jsontype.KindArray, Decision: decision, Evidence: ev,
		})
		if decision == entropy.Collection {
			merged := newStatsTrie()
			for _, e := range t.elems {
				merged.combine(e)
			}
			if merged.objCount > 0 || merged.arrCount > 0 {
				merged.derive(arrayElemPath(path), cfg, out)
			}
		} else {
			for i, e := range t.elems {
				e.derive(arrayIndexPath(path, i), cfg, out)
			}
		}
	}
	if t.objCount > 0 {
		ev := t.objectEvidence()
		decision := entropy.Decide(ev, cfg.Detection)
		if !cfg.DetectObjectCollections {
			decision = entropy.Tuple
		}
		*out = append(*out, PathStat{
			Path: path, Kind: jsontype.KindObject, Decision: decision, Evidence: ev,
		})
		if decision == entropy.Collection {
			merged := newStatsTrie()
			keys := sortedKeys(t.children)
			for _, k := range keys {
				merged.combine(t.children[k])
			}
			if merged.objCount > 0 || merged.arrCount > 0 {
				merged.derive(objectValuePath(path), cfg, out)
			}
		} else {
			for _, k := range sortedKeys(t.children) {
				t.children[k].derive(childKeyPath(path, k), cfg, out)
			}
		}
	}
}

func sortedKeys(m map[string]*statsTrie) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// parallelCutover is the distinct-record-type count below which the
// config-driven parallel paths — the pass-① partitioned fold and the
// pass-②/③ synthesis fan-out — run sequentially. Goroutine fan-out and
// fan-in merging carry a fixed cost per op; on collections with little
// distinct structure that overhead exceeds the fold's work and the
// "parallel" run measures slower than the sequential one (the hotpath
// benchmark showed par_ns_per_op > ns_per_op exactly on the datasets
// whose distinct-type count sits below this bound). Explicit-workers
// entry points (ParallelCollectPathStats and friends) are not gated:
// a caller passing a worker count gets that worker count.
const parallelCutover = 4096

// effectiveWorkers returns the worker count a config-driven site should
// actually use for a collection with the given distinct-type count.
func effectiveWorkers(workers, distinct int) int {
	if distinct < parallelCutover {
		return 1
	}
	return workers
}

// EffectiveWorkers reports the worker count the config-driven pipeline
// stages will actually use for a collection with the given distinct-type
// count — 1 when the collection falls below the parallel cutover.
// Exported for benchmark harnesses that must know whether a "parallel"
// configuration genuinely fans out.
func EffectiveWorkers(workers, distinct int) int {
	return effectiveWorkers(workers, distinct)
}

// ParallelCollectPathStats computes pass ① as a partitioned fold over the
// record types with the given worker count. It produces the same path
// statistics as CollectPathStats on the same data.
func ParallelCollectPathStats(types []*jsontype.Type, workers int, cfg Config) []PathStat {
	sketch := dist.Fold(types, workers,
		NewPathSketch,
		func(s *PathSketch, ty *jsontype.Type) *PathSketch { s.Add(ty); return s },
		func(a, b *PathSketch) *PathSketch { a.Merge(b); return a })
	return sketch.Stats(cfg)
}

// ParallelCollectPathStatsBag is ParallelCollectPathStats over a bag: the
// fold runs over the distinct types, weighting each by its multiplicity.
func ParallelCollectPathStatsBag(bag *jsontype.Bag, workers int, cfg Config) []PathStat {
	return sketchFromBag(bag, workers).Stats(cfg)
}

func deriveStats(root *statsTrie, cfg Config) []PathStat {
	var out []PathStat
	root.derive(RootPath, cfg, &out)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
