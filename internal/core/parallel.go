package core

import (
	"sort"

	"jxplain/internal/dist"
	"jxplain/internal/jsontype"
)

// Parallel pass ①. CollectPathStats walks the whole bag sequentially; on a
// cluster (or across cores) the paper instead computes the per-path
// statistics as a partitioned fold with fan-in aggregation, which works
// because every statistic Algorithm 5 needs is mergeable:
//
//   - record and key-presence counters add,
//   - array-length histograms add,
//   - the similar-types constraint combines through the subsumption rule
//     (each partition keeps its maximal type; partitions are jointly
//     similar iff their maximal types are similar).
//
// statsTrie (statstrie.go) is the per-partition state; this file holds the
// fold drivers and the gate deciding when fanning out is worth it. The
// same mergeability is what the wire format (wire.go) ships across
// processes: a sketch serialized on one machine folds into another
// machine's trie exactly as an in-process Merge would.

// parallelCutover is the distinct-record-type count below which the
// config-driven parallel paths — the pass-① partitioned fold and the
// pass-②/③ synthesis fan-out — run sequentially. Goroutine fan-out and
// fan-in merging carry a fixed cost per op; on collections with little
// distinct structure that overhead exceeds the fold's work and the
// "parallel" run measures slower than the sequential one (the hotpath
// benchmark showed par_ns_per_op > ns_per_op exactly on the datasets
// whose distinct-type count sits below this bound). Explicit-workers
// entry points (ParallelCollectPathStats and friends) are not gated:
// a caller passing a worker count gets that worker count.
const parallelCutover = 4096

// effectiveWorkers returns the worker count a config-driven site should
// actually use for a collection with the given distinct-type count.
func effectiveWorkers(workers, distinct int) int {
	if distinct < parallelCutover {
		return 1
	}
	return workers
}

// EffectiveWorkers reports the worker count the config-driven pipeline
// stages will actually use for a collection with the given distinct-type
// count — 1 when the collection falls below the parallel cutover.
// Exported for benchmark harnesses that must know whether a "parallel"
// configuration genuinely fans out.
func EffectiveWorkers(workers, distinct int) int {
	return effectiveWorkers(workers, distinct)
}

// ParallelCollectPathStats computes pass ① as a partitioned fold over the
// record types with the given worker count. It produces the same path
// statistics as CollectPathStats on the same data.
func ParallelCollectPathStats(types []*jsontype.Type, workers int, cfg Config) []PathStat {
	sketch := dist.Fold(types, workers,
		NewPathSketch,
		func(s *PathSketch, ty *jsontype.Type) *PathSketch { s.Add(ty); return s },
		func(a, b *PathSketch) *PathSketch { a.Merge(b); return a })
	return sketch.Stats(cfg)
}

// ParallelCollectPathStatsBag is ParallelCollectPathStats over a bag: the
// fold runs over the distinct types, weighting each by its multiplicity.
func ParallelCollectPathStatsBag(bag *jsontype.Bag, workers int, cfg Config) []PathStat {
	return sketchFromBag(bag, workers).Stats(cfg)
}

func deriveStats(root *statsTrie, cfg Config) []PathStat {
	var out []PathStat
	root.derive(RootPath, cfg, &out)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
