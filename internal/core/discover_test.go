package core

import (
	"fmt"
	"testing"

	"jxplain/internal/jsontype"
	"jxplain/internal/merge"
	"jxplain/internal/schema"
)

func ty(t *testing.T, src string) *jsontype.Type {
	t.Helper()
	typ, err := jsontype.FromJSON([]byte(src))
	if err != nil {
		t.Fatalf("FromJSON(%q): %v", src, err)
	}
	return typ
}

func bagFrom(t *testing.T, srcs ...string) *jsontype.Bag {
	t.Helper()
	b := &jsontype.Bag{}
	for _, s := range srcs {
		b.Add(ty(t, s))
	}
	return b
}

func TestPartitionStrategyString(t *testing.T) {
	want := map[PartitionStrategy]string{
		SingleEntity: "single", PerKeySet: "per-keyset", BimaxNaive: "bimax-naive",
		BimaxMerge: "bimax-merge", KMeansStrategy: "k-means",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
	if PartitionStrategy(99).String() != "invalid" {
		t.Error("invalid strategy string")
	}
}

func TestDiscoverFigure1PartitionsEntities(t *testing.T) {
	bag := bagFrom(t,
		`{"ts":7,"event":"login","user":{"name":"bob","geo":[1.1,2.2]}}`,
		`{"ts":8,"event":"serve","files":["a.txt","b.txt"]}`,
	)
	s := Discover(bag, Default())

	// Training records accepted.
	bag.Each(func(typ *jsontype.Type, _ int) {
		if !s.Accepts(typ) {
			t.Errorf("must accept training record %v", typ)
		}
	})
	// The invalid mixtures of Example 1 are rejected — the headline claim.
	both := ty(t, `{"ts":9,"event":"huh","user":{"name":"x","geo":[0,0]},"files":["f"]}`)
	neither := ty(t, `{"ts":10,"event":"wat"}`)
	if s.Accepts(both) {
		t.Error("JXPLAIN should reject records mixing login and serve fields")
	}
	if s.Accepts(neither) {
		t.Error("JXPLAIN should reject records missing both entity fields")
	}
	// Two entities in the schema.
	if got := schema.Entities(s); got < 2 {
		t.Errorf("expected ≥2 entities, got %d in %s", got, s)
	}
}

func TestDiscoverGeoTuple(t *testing.T) {
	// Many records with a constant-length numeric geo array: JXPLAIN
	// detects a tuple [ℝ, ℝ]; K-reduce would use [ℝ]*.
	bag := &jsontype.Bag{}
	for i := 0; i < 50; i++ {
		bag.Add(ty(t, `{"id":1,"geo":[1.5,-2.5]}`))
	}
	s := Discover(bag, Default())
	if s.Accepts(ty(t, `{"id":2,"geo":[1,2,3]}`)) {
		t.Errorf("geo tuple should bound length: %s", s)
	}
	if !s.Accepts(ty(t, `{"id":2,"geo":[8.8,9.9]}`)) {
		t.Error("2-element geo must be accepted")
	}
	k := Discover(bag, KReduceConfig())
	if !k.Accepts(ty(t, `{"id":2,"geo":[1,2,3]}`)) {
		t.Error("K-reduce treats geo as a collection")
	}
}

func TestDiscoverCollectionObjectGeneralizes(t *testing.T) {
	// Pharma-style prescription counts: JXPLAIN generalizes to unseen drug
	// keys; K-reduce makes every drug an optional field and rejects new ones.
	bag := &jsontype.Bag{}
	for i := 0; i < 60; i++ {
		src := fmt.Sprintf(`{"npi":1,"counts":{"DRUG_%d":%d,"DRUG_%d":%d}}`,
			i%37, i, (i+11)%37, i+1)
		bag.Add(ty(t, src))
	}
	s := Discover(bag, Default())
	unseen := ty(t, `{"npi":2,"counts":{"BRAND_NEW_DRUG":5}}`)
	if !s.Accepts(unseen) {
		t.Errorf("collection detection should generalize to new keys: %s", s)
	}
	k := Discover(bag, KReduceConfig())
	if k.Accepts(unseen) {
		t.Error("K-reduce cannot generalize to unseen keys")
	}
	// JXPLAIN's schema is also far smaller.
	if schema.Size(s) >= schema.Size(k) {
		t.Errorf("collection schema (%d nodes) should be smaller than tuple schema (%d)",
			schema.Size(s), schema.Size(k))
	}
}

func TestDiscoverTwoLevelNestedCollection(t *testing.T) {
	// Synapse signatures: {url: {key: sig}}.
	bag := &jsontype.Bag{}
	for i := 0; i < 40; i++ {
		src := fmt.Sprintf(`{"sig":{"server%d.org":{"ed25519:%d":"abc"},"host%d.net":{"k%d":"xyz"}}}`,
			i%23, i%17, (i*3)%23, (i*5)%17)
		bag.Add(ty(t, src))
	}
	s := Discover(bag, Default())
	if !s.Accepts(ty(t, `{"sig":{"brand-new.example":{"new-key":"sig"}}}`)) {
		t.Errorf("two-level collection should generalize: %s", s)
	}
	// Both levels detected as collections.
	colls := schema.CountNodes(s, func(n schema.Schema) bool {
		return n.Node() == schema.NodeObjectCollection
	})
	if colls != 2 {
		t.Errorf("expected 2 nested object collections, got %d in %s", colls, s)
	}
}

func TestDiscoverKReduceConfigMatchesMergeK(t *testing.T) {
	bag := bagFrom(t,
		`{"a":1,"b":[1,2],"c":{"x":"s"}}`,
		`{"a":2,"c":{"x":"t","y":true}}`,
		`{"a":3,"b":[],"d":null}`,
		`[{"k":1},{"k":2}]`,
		`"top-level-string"`,
	)
	viaCore := schema.Simplify(Discover(bag, KReduceConfig()))
	viaMerge := schema.Simplify(merge.K(bag))
	if !schema.Equal(viaCore, viaMerge) {
		t.Errorf("KReduceConfig output diverges from merge.K:\n%s\n%s", viaCore, viaMerge)
	}
}

func TestDiscoverEmptyBag(t *testing.T) {
	if !schema.IsEmpty(Discover(&jsontype.Bag{}, Default())) {
		t.Error("empty bag should give the empty schema")
	}
	if !schema.IsEmpty(DiscoverTypes(nil, Default())) {
		t.Error("DiscoverTypes(nil) should give the empty schema")
	}
}

func TestDiscoverPrimitivesOnly(t *testing.T) {
	s := Discover(bagFrom(t, `1`, `"x"`, `null`), Default())
	for _, good := range []string{`2.5`, `"y"`, `null`} {
		if !s.Accepts(ty(t, good)) {
			t.Errorf("should accept %s", good)
		}
	}
	if s.Accepts(ty(t, `true`)) {
		t.Error("bool never seen")
	}
}

func TestDiscoverPerKeySetStrategy(t *testing.T) {
	cfg := Default()
	cfg.Partition = PerKeySet
	bag := bagFrom(t, `{"a":1}`, `{"a":2,"b":3}`, `{"c":"x"}`, `{"a":5}`)
	s := Discover(bag, cfg)
	if got := schema.Entities(s); got != 3 {
		t.Errorf("PerKeySet should give 3 entities, got %d: %s", got, s)
	}
	// Optional-field mixtures rejected: {"a":1,"c":"x"} was never seen.
	if s.Accepts(ty(t, `{"a":1,"c":"x"}`)) {
		t.Error("per-keyset partitioning admits only seen key sets")
	}
}

func TestDiscoverKMeansStrategy(t *testing.T) {
	cfg := Default()
	cfg.Partition = KMeansStrategy
	cfg.KMeansK = 2
	cfg.Seed = 7
	bag := &jsontype.Bag{}
	for i := 0; i < 20; i++ {
		bag.Add(ty(t, `{"a1":1,"a2":2,"a3":3}`))
		bag.Add(ty(t, `{"b1":"x","b2":"y","b3":"z","b4":"w"}`))
	}
	s := Discover(bag, cfg)
	if got := schema.Entities(s); got != 2 {
		t.Errorf("k-means with k=2 on clean clusters: got %d entities: %s", got, s)
	}
	// KMeansK defaulting path (k <= 0 behaves like one cluster).
	cfg.KMeansK = 0
	s2 := Discover(bag, cfg)
	if got := schema.Entities(s2); got != 1 {
		t.Errorf("k<=0 collapses to one entity, got %d", got)
	}
}

func TestDiscoverBimaxMergeCoalescesOptionalFields(t *testing.T) {
	// One true entity with independently-optional fields: Bimax-Naive
	// fragments; GreedyMerge reassembles.
	bag := bagFrom(t,
		`{"id":1,"a":1,"b":1}`,
		`{"id":1,"b":1,"c":1}`,
		`{"id":1,"a":1,"c":1}`,
		`{"id":1,"a":1}`,
		`{"id":1,"c":1}`,
	)
	naiveCfg := BimaxNaiveConfig()
	mergeCfg := Default()
	nNaive := schema.Entities(Discover(bag, naiveCfg))
	nMerge := schema.Entities(Discover(bag, mergeCfg))
	if nMerge != 1 {
		t.Errorf("Bimax-Merge should find 1 entity, got %d", nMerge)
	}
	if nNaive <= nMerge {
		t.Errorf("Bimax-Naive should fragment more (naive=%d merge=%d)", nNaive, nMerge)
	}
	// The merged entity accepts unseen optional-field combinations.
	s := Discover(bag, mergeCfg)
	if !s.Accepts(ty(t, `{"id":2,"a":3,"b":4,"c":5}`)) {
		t.Error("merged entity should accept the full field set")
	}
}

func TestDiscoverNestedEntityPartition(t *testing.T) {
	// GitHub-style: the envelope is uniform; entities live under payload.
	bag := &jsontype.Bag{}
	for i := 0; i < 30; i++ {
		var payload string
		if i%2 == 0 {
			payload = `{"action":"opened","issue_id":5,"labels":["x"]}`
		} else {
			payload = `{"ref":"main","commits":3,"forced":true}`
		}
		bag.Add(ty(t, fmt.Sprintf(`{"type":"e","actor":"u","payload":%s}`, payload)))
	}
	s := Discover(bag, Default())
	// Mixing payload fields across entities must be rejected.
	mixed := ty(t, `{"type":"e","actor":"u","payload":{"action":"opened","ref":"main"}}`)
	if s.Accepts(mixed) {
		t.Errorf("nested entities should partition: %s", s)
	}
	k := Discover(bag, KReduceConfig())
	if !k.Accepts(mixed) {
		t.Error("K-reduce admits the mixed payload")
	}
}

func TestDiscoverRecallOnOptionalFields(t *testing.T) {
	// Records of one entity with optional fields: an unseen combination of
	// seen optional fields must still be accepted (high recall).
	bag := bagFrom(t,
		`{"id":1,"name":"a"}`,
		`{"id":2,"name":"b","opt1":1}`,
		`{"id":3,"name":"c","opt2":"x"}`,
		`{"id":4,"name":"d","opt1":2,"opt2":"y"}`,
		`{"id":5,"name":"e"}`,
	)
	s := Discover(bag, Default())
	for _, good := range []string{
		`{"id":9,"name":"z"}`,
		`{"id":9,"name":"z","opt1":7}`,
		`{"id":9,"name":"z","opt2":"q"}`,
		`{"id":9,"name":"z","opt1":7,"opt2":"q"}`,
	} {
		if !s.Accepts(ty(t, good)) {
			t.Errorf("should accept %s under %s", good, s)
		}
	}
}

func TestDiscoverDeterministic(t *testing.T) {
	bag := bagFrom(t,
		`{"a":1,"b":[1,2],"c":{"x":"s"}}`,
		`{"a":2,"c":{"x":"t","y":true}}`,
		`{"d":[{"k":1},{"k":2,"j":"x"}]}`,
	)
	a := Discover(bag, Default())
	b := Discover(bag, Default())
	if !schema.Equal(a, b) {
		t.Error("Discover must be deterministic")
	}
}
