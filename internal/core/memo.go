package core

import (
	"encoding/binary"
	"hash/fnv"
	"sync"

	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
)

// mergeMemo caches pass-③ results across Finish calls on one Accumulator.
// Keys pair the path with an order-independent content hash of the bag
// merged there: interning gives every distinct type a dense uint64 id, so
// the (id, count) multiset identifies a bag exactly (up to 64-bit mixing).
// Sharing cached schema nodes across results is sound because synthesis
// never mutates a schema after construction and schema.Simplify rebuilds
// rather than mutates.
//
// The memo is only valid for one epoch of global decisions: the pass-①
// decision map and the pass-② partition plans together determine how any
// (path, bag) pair synthesizes. validate drops all entries when that
// epoch hash changes (e.g. new records flipped a tuple/collection decision
// or re-clustered a partition point).
type mergeMemo struct {
	mu    sync.Mutex
	epoch uint64
	m     map[memoKey]schema.Schema
}

type memoKey struct {
	path string
	bag  uint64
}

func newMergeMemo() *mergeMemo {
	return &mergeMemo{m: map[memoKey]schema.Schema{}}
}

// validate keeps the cache when the decision epoch is unchanged and resets
// it otherwise.
func (mm *mergeMemo) validate(epoch uint64) {
	if mm.epoch != epoch {
		mm.epoch = epoch
		mm.m = map[memoKey]schema.Schema{}
	}
}

func (mm *mergeMemo) get(k memoKey) (schema.Schema, bool) {
	mm.mu.Lock()
	s, ok := mm.m[k]
	mm.mu.Unlock()
	return s, ok
}

func (mm *mergeMemo) put(k memoKey, s schema.Schema) {
	mm.mu.Lock()
	mm.m[k] = s
	mm.mu.Unlock()
}

// mix64 is the splitmix64 finalizer — used to whiten per-element hashes
// before the commutative sum that makes bag and epoch hashes
// order-independent.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// bagContentHash folds a bag's (type id, count) pairs into one hash,
// independent of iteration order.
func bagContentHash(bag *jsontype.Bag) uint64 {
	var h uint64 = 0x9E3779B97F4A7C15
	bag.Each(func(t *jsontype.Type, n int) {
		h += mix64(mix64(t.ID()) ^ uint64(n))
	})
	return h
}

// epochHash folds the pass-① decisions and pass-② plans of a decider into
// the memo-invalidation key. Iteration order over the maps is irrelevant:
// each entry is hashed independently and the results summed.
func (d *pipelineDecider) epochHash() uint64 {
	var h uint64
	var buf [16]byte
	for path, dec := range d.decisions {
		e := fnv.New64a()
		e.Write([]byte(path))
		buf[0] = boolByte(dec.hasArr)
		buf[1] = byte(dec.arr)
		buf[2] = boolByte(dec.hasObj)
		buf[3] = byte(dec.obj)
		e.Write(buf[:4])
		h += mix64(e.Sum64())
	}
	for planKey, plan := range d.plans {
		base := fnv.New64a()
		base.Write([]byte(planKey))
		binary.LittleEndian.PutUint64(buf[:8], uint64(plan.n))
		base.Write(buf[:8])
		h += mix64(base.Sum64())
		for canon, cluster := range plan.assign {
			e := fnv.New64a()
			e.Write([]byte(planKey))
			e.Write([]byte{0})
			e.Write([]byte(canon))
			binary.LittleEndian.PutUint64(buf[:8], uint64(cluster))
			e.Write(buf[:8])
			h += mix64(e.Sum64())
		}
	}
	return h
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
