package core

import (
	"fmt"
	"testing"

	"jxplain/internal/jsontype"
	"jxplain/internal/metrics"
	"jxplain/internal/schema"
)

func TestSampleBag(t *testing.T) {
	bag := &jsontype.Bag{}
	bag.AddN(jsontype.Number, 1000)
	bag.AddN(jsontype.String, 1000)
	s := SampleBag(bag, 0.1, 7)
	if s.Len() < 120 || s.Len() > 280 {
		t.Errorf("10%% of 2000 should be ≈200, got %d", s.Len())
	}
	if s.CountOf(jsontype.Number) == 0 || s.CountOf(jsontype.String) == 0 {
		t.Error("both common types should survive sampling")
	}
	// Determinism.
	s2 := SampleBag(bag, 0.1, 7)
	if s.Len() != s2.Len() {
		t.Error("sampling must be deterministic per seed")
	}
}

func TestSampleBagNeverEmpty(t *testing.T) {
	bag := jsontype.NewBag(jsontype.Bool)
	s := SampleBag(bag, 0.0001, 1)
	if s.Len() == 0 {
		t.Error("non-empty bag must stay non-empty")
	}
	if SampleBag(&jsontype.Bag{}, 0.5, 1).Len() != 0 {
		t.Error("empty bag stays empty")
	}
}

// TestSampleBagPinned pins the exact draw for a fixed seed: the binomial
// sampler must stay deterministic across runs and platforms (the
// Config.Seed contract).
func TestSampleBagPinned(t *testing.T) {
	bag := &jsontype.Bag{}
	bag.AddN(jsontype.Number, 1000)
	bag.AddN(jsontype.String, 500)
	bag.AddN(jsontype.Bool, 3)
	s := SampleBag(bag, 0.1, 7)
	got := fmt.Sprintf("%d/%d/%d", s.CountOf(jsontype.Number), s.CountOf(jsontype.String), s.CountOf(jsontype.Bool))
	if want := "116/45/0"; got != want {
		t.Errorf("SampleBag(seed=7) drew %s, want %s", got, want)
	}
}

// TestSampleBagLargeMultiplicity exercises the O(distinct) property: a
// multiplicity in the tens of millions must sample in a handful of draws,
// not one Bernoulli per occurrence, and still land on the right mean.
func TestSampleBagLargeMultiplicity(t *testing.T) {
	bag := &jsontype.Bag{}
	const n = 50_000_000
	bag.AddN(jsontype.Number, n)
	s := SampleBag(bag, 0.001, 11)
	mean := float64(n) * 0.001
	if got := float64(s.CountOf(jsontype.Number)); got < mean*0.95 || got > mean*1.05 {
		t.Errorf("kept %v of %d at p=0.001, want ≈%v", got, n, mean)
	}
}

func TestPipelineWithDetectionSample(t *testing.T) {
	// A pharma-like collection: even a small detection sample should find
	// the collection and keep recall at 1 on seen data.
	var types []*jsontype.Type
	for i := 0; i < 800; i++ {
		src := fmt.Sprintf(`{"counts":{"D%d":1,"D%d":2,"D%d":3}}`, i%97, (i+13)%97, (i+31)%97)
		types = append(types, ty(t, src))
	}
	cfg := Default()
	cfg.DetectionSample = 0.05
	cfg.Seed = 3
	s := PipelineTypes(types, cfg)
	colls := schema.CountNodes(s, func(n schema.Schema) bool {
		return n.Node() == schema.NodeObjectCollection
	})
	if colls == 0 {
		t.Errorf("sampled detection should still find the collection: %s", s)
	}
	if r := metrics.Recall(s, types); r != 1 {
		t.Errorf("recall on training data = %v", r)
	}
	// Exact mode (sample = 0 and >= 1) is unchanged.
	cfg.DetectionSample = 0
	exact0 := PipelineTypes(types, cfg)
	cfg.DetectionSample = 1
	exact1 := PipelineTypes(types, cfg)
	if !schema.Equal(exact0, exact1) {
		t.Error("DetectionSample 0 and 1 must both be exact")
	}
}
