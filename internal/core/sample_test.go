package core

import (
	"fmt"
	"testing"

	"jxplain/internal/jsontype"
	"jxplain/internal/metrics"
	"jxplain/internal/schema"
)

func TestSampleBag(t *testing.T) {
	bag := &jsontype.Bag{}
	bag.AddN(jsontype.Number, 1000)
	bag.AddN(jsontype.String, 1000)
	s := SampleBag(bag, 0.1, 7)
	if s.Len() < 120 || s.Len() > 280 {
		t.Errorf("10%% of 2000 should be ≈200, got %d", s.Len())
	}
	if s.CountOf(jsontype.Number) == 0 || s.CountOf(jsontype.String) == 0 {
		t.Error("both common types should survive sampling")
	}
	// Determinism.
	s2 := SampleBag(bag, 0.1, 7)
	if s.Len() != s2.Len() {
		t.Error("sampling must be deterministic per seed")
	}
}

func TestSampleBagNeverEmpty(t *testing.T) {
	bag := jsontype.NewBag(jsontype.Bool)
	s := SampleBag(bag, 0.0001, 1)
	if s.Len() == 0 {
		t.Error("non-empty bag must stay non-empty")
	}
	if SampleBag(&jsontype.Bag{}, 0.5, 1).Len() != 0 {
		t.Error("empty bag stays empty")
	}
}

func TestPipelineWithDetectionSample(t *testing.T) {
	// A pharma-like collection: even a small detection sample should find
	// the collection and keep recall at 1 on seen data.
	var types []*jsontype.Type
	for i := 0; i < 800; i++ {
		src := fmt.Sprintf(`{"counts":{"D%d":1,"D%d":2,"D%d":3}}`, i%97, (i+13)%97, (i+31)%97)
		types = append(types, ty(t, src))
	}
	cfg := Default()
	cfg.DetectionSample = 0.05
	cfg.Seed = 3
	s := PipelineTypes(types, cfg)
	colls := schema.CountNodes(s, func(n schema.Schema) bool {
		return n.Node() == schema.NodeObjectCollection
	})
	if colls == 0 {
		t.Errorf("sampled detection should still find the collection: %s", s)
	}
	if r := metrics.Recall(s, types); r != 1 {
		t.Errorf("recall on training data = %v", r)
	}
	// Exact mode (sample = 0 and >= 1) is unchanged.
	cfg.DetectionSample = 0
	exact0 := PipelineTypes(types, cfg)
	cfg.DetectionSample = 1
	exact1 := PipelineTypes(types, cfg)
	if !schema.Equal(exact0, exact1) {
		t.Error("DetectionSample 0 and 1 must both be exact")
	}
}
