package core

import "sync"

// workPool bounds the goroutines fanned out by the parallel synthesis
// passes. A nil pool means sequential execution. The pool never blocks
// waiting for a slot: when all slots are busy the work item runs inline on
// the caller's goroutine, which keeps the recursive fan-out deadlock-free
// (a parent holding no slot can always make progress on its own children)
// and caps live goroutines at the configured worker count.
type workPool struct {
	sem chan struct{}
}

// newWorkPool returns a pool with the given parallelism, or nil when
// workers <= 1 (sequential).
func newWorkPool(workers int) *workPool {
	if workers <= 1 {
		return nil
	}
	return &workPool{sem: make(chan struct{}, workers)}
}

// forEach runs fn(0..n-1), concurrently when slots are available, and
// returns once all calls complete. Callers obtain determinism by writing
// results into position i of a pre-sized slice and combining in index
// order after forEach returns.
//
//jx:pool inline-fallback fan-out; callers write results by index per the forEach contract
func (p *workPool) forEach(n int, fn func(i int)) {
	if p == nil || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer func() {
					<-p.sem
					wg.Done()
				}()
				fn(i)
			}(i)
		default:
			fn(i)
		}
	}
	wg.Wait()
}
