package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"jxplain/internal/jsontype"
)

func windowRec(tb testing.TB, i int) *jsontype.Type {
	tb.Helper()
	t, err := jsontype.FromValue(map[string]any{fmt.Sprintf("w%03d", i): 1.0})
	if err != nil {
		tb.Fatalf("windowRec: %v", err)
	}
	return t
}

func boundsConfig(b Bounds) Config {
	cfg := Default()
	cfg.Bounds = b
	return cfg
}

// In the no-eviction, no-window regime a bounded accumulator must be an
// exact accumulator: same schema bytes, same totals.
func TestBoundedAccumulatorExactRegime(t *testing.T) {
	exact := NewAccumulator(Default())
	bounded := NewAccumulator(boundsConfig(Bounds{ReservoirCapacity: 64}))
	for i := 0; i < 200; i++ {
		ty := windowRec(t, i%20)
		exact.AddN(ty, 1+i%3)
		bounded.AddN(ty, 1+i%3)
	}
	if bounded.Records() != exact.Records() || bounded.Distinct() != exact.Distinct() {
		t.Fatalf("totals diverge: bounded (%d, %d) vs exact (%d, %d)",
			bounded.Records(), bounded.Distinct(), exact.Records(), exact.Distinct())
	}
	if !bytes.Equal(schemaBytes(t, bounded.Finish()), schemaBytes(t, exact.Finish())) {
		t.Fatal("schema bytes diverge in the exact regime")
	}
}

// A window ring retains only the recent horizon: paths seen exclusively
// in expired windows drop out of the derived statistics.
func TestWindowRingForgetsRetiredPaths(t *testing.T) {
	acc := NewAccumulator(boundsConfig(Bounds{WindowRecords: 100, WindowCount: 2}))
	old := jsontype.MustFromValue(map[string]any{"retired": map[string]any{"x": 1.0}})
	fresh := jsontype.MustFromValue(map[string]any{"live": map[string]any{"y": "s"}})
	for i := 0; i < 100; i++ {
		acc.Add(old)
	}
	for i := 0; i < 400; i++ {
		acc.Add(fresh)
	}

	if got := acc.WindowsClosed(); got != 5 {
		t.Fatalf("windows closed = %d, want 5", got)
	}
	// Ring of 2 + empty live epoch: the horizon is the last 200 records,
	// all of them fresh.
	if got := acc.statsSketch().Records(); got != 200 {
		t.Fatalf("horizon records = %d, want 200", got)
	}
	for _, st := range acc.Stats() {
		if strings.Contains(st.Path, "retired") {
			t.Fatalf("retired path still in stats: %s", st.Path)
		}
	}
}

func TestWindowCloseHookObservesEveryRotation(t *testing.T) {
	acc := NewAccumulator(boundsConfig(Bounds{WindowRecords: 10, WindowCount: 3}))
	var indices, records []int
	acc.OnWindowClose(func(index, n int, sketch *PathSketch) {
		indices = append(indices, index)
		records = append(records, n)
		if sketch.Records() != n {
			t.Fatalf("window %d: sketch records %d != reported %d", index, sketch.Records(), n)
		}
	})
	for i := 0; i < 45; i++ {
		acc.Add(windowRec(t, i%4))
	}
	if len(indices) != 4 {
		t.Fatalf("hook fired %d times, want 4: %v", len(indices), indices)
	}
	for i, idx := range indices {
		if idx != i || records[i] != 10 {
			t.Fatalf("rotation %d: index=%d records=%d", i, idx, records[i])
		}
	}
}

// Deriving stats from the ring must not consume the live epoch: repeated
// Stats calls interleaved with adds keep working and see the additions.
func TestRingStatsDoNotConsumeLive(t *testing.T) {
	acc := NewAccumulator(boundsConfig(Bounds{WindowRecords: 100, WindowCount: 2}))
	for i := 0; i < 150; i++ {
		acc.Add(windowRec(t, i%7))
	}
	if len(acc.Stats()) == 0 {
		t.Fatal("no stats from ring rollup")
	}
	before := acc.statsSketch().Records()
	for i := 0; i < 30; i++ {
		acc.Add(windowRec(t, i%7))
	}
	after := acc.statsSketch().Records()
	if after != before+30 {
		t.Fatalf("live epoch lost adds across rollup: %d -> %d", before, after)
	}
	if len(acc.Stats()) == 0 {
		t.Fatal("no stats after second rollup")
	}
}

func TestPathSketchDecayCompacts(t *testing.T) {
	s := NewPathSketch()
	heavy := jsontype.MustFromValue(map[string]any{"heavy": map[string]any{"deep": []any{1.0}}})
	light := jsontype.MustFromValue(map[string]any{"light": map[string]any{"deep": []any{"s"}}})
	s.AddN(heavy, 1000)
	s.AddN(light, 1)
	full := s.Nodes()
	s.Decay(0.5)
	if s.Records() != 500 {
		t.Fatalf("records = %d, want 500", s.Records())
	}
	if got := s.Nodes(); got >= full {
		t.Fatalf("decay reclaimed nothing: %d -> %d nodes", full, got)
	}
	for _, st := range s.Stats(Default()) {
		if strings.Contains(st.Path, "light") {
			t.Fatalf("decayed-out path survives: %s", st.Path)
		}
	}
	// Decaying everything to zero compacts down to the bare root.
	for i := 0; i < 20; i++ {
		s.Decay(0.5)
	}
	if got := s.Nodes(); got != 1 {
		t.Fatalf("fully decayed sketch holds %d nodes, want 1", got)
	}
}

// Decay-only mode (rotation cadence without a ring) keeps a churn
// stream's trie bounded: keys that stop appearing decay out.
func TestDecayBoundsChurnTrie(t *testing.T) {
	acc := NewAccumulator(boundsConfig(Bounds{
		ReservoirCapacity: 32, WindowRecords: 100, DecayFactor: 0.5,
	}))
	exact := NewAccumulator(Default())
	for i := 0; i < 3000; i++ {
		ty := windowRec(t, i) // pure churn: every record a fresh key
		acc.Add(ty)
		exact.Add(ty)
		if d := acc.Reservoir().Distinct(); d > 32 {
			t.Fatalf("reservoir over capacity at i=%d: %d", i, d)
		}
	}
	bounded, unbounded := acc.SketchNodes(), exact.SketchNodes()
	// Singleton keys floor to zero at the first rotation after their
	// window, so the live trie tracks the last couple of cadences (~200
	// keys), not the 3000-key history.
	if bounded > 500 {
		t.Fatalf("decayed trie grew to %d nodes", bounded)
	}
	if unbounded < 4*bounded {
		t.Fatalf("exact trie (%d nodes) should dwarf the decayed one (%d)", unbounded, bounded)
	}
	// The bounded accumulator still synthesizes a usable schema.
	if len(schemaBytes(t, acc.Finish())) == 0 {
		t.Fatal("bounded Finish returned empty schema")
	}
}

// ReducePathSketches must reproduce the sequential fold at every worker
// count (the treeCombine order-preservation contract).
func TestReducePathSketchesMatchesSequential(t *testing.T) {
	chunks := lawSketchChunks()
	var files [][]byte
	seq := NewPathSketch()
	for _, chunk := range chunks {
		s := sketchOf(chunk)
		data, err := s.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, data)
		seq.Merge(sketchOf(chunk))
	}
	for _, workers := range []int{1, 2, 4} {
		got, err := ReducePathSketches(files, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		requireSameSketch(t, got, seq)
	}
}

func TestReducePathSketchesEmptyAndCorrupt(t *testing.T) {
	empty, err := ReducePathSketches(nil, 4)
	if err != nil || empty.Records() != 0 {
		t.Fatalf("empty reduce: %v, records=%d", err, empty.Records())
	}
	good, err := sketchOf(lawSketchChunks()[0]).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	_, err = ReducePathSketches([][]byte{good, good, []byte("garbage")}, 2)
	var merr *SketchMergeError
	if !errors.As(err, &merr) || merr.Index != 2 {
		t.Fatalf("want *SketchMergeError{Index: 2}, got %v", err)
	}
}

// A bounded accumulator round-trips through the wire format as its
// snapshot: the retained types survive, and the decoded side keeps
// operating under the same bounds.
func TestBoundedAccumulatorWireSnapshot(t *testing.T) {
	cfg := boundsConfig(Bounds{ReservoirCapacity: 16, WindowRecords: 50, WindowCount: 2})
	acc := NewAccumulator(cfg)
	for i := 0; i < 400; i++ {
		acc.Add(windowRec(t, i%40))
	}
	data, err := acc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalAccumulator(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if back.Distinct() != acc.Distinct() {
		t.Fatalf("distinct diverges after round trip: %d vs %d", back.Distinct(), acc.Distinct())
	}
	if len(schemaBytes(t, back.Finish())) == 0 {
		t.Fatal("decoded bounded accumulator cannot synthesize")
	}
	// And a bounded reducer folds unbounded map outputs within its cap.
	mapSide := NewAccumulator(Default())
	for i := 0; i < 100; i++ {
		mapSide.Add(windowRec(t, 100+i))
	}
	shard, err := mapSide.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	red, err := ReduceSketches([][]byte{shard, data}, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := red.Distinct(); d > 16 {
		t.Fatalf("bounded reducer over capacity: %d", d)
	}
}
