package core

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"

	"jxplain/internal/entity"
	"jxplain/internal/jsontype"
)

// Versioned binary wire format for accumulated discovery state — the
// serialization that turns the pass-① monoid into a *distributed* monoid:
// map workers fold disjoint shards into sketches, ship the bytes, and a
// reducer merges them and runs passes ②/③ once, producing exactly the
// schema a single process would have (the JSONoid/Spark execution shape,
// natively).
//
// Layout (integers are unsigned LEB128 varints unless noted):
//
//	offset 0   magic "JXSK" (4 bytes)
//	offset 4   version byte (currently 1)
//	offset 5   flags byte: bit0 = bag section present,
//	                       bit1 = stats-trie section present
//	then sections, in fixed order, each framed as
//	           tag byte + varint body length + body:
//
//	'K'  key dictionary: count, then count × (length, bytes).
//	     Object keys referenced by the trie, interned to dense ids in
//	     first-appearance order of the (deterministic) encode walk.
//	'T'  type table: the jsontype structural codec (children before
//	     parents; refs 1..4 are the primitive singletons). Types are
//	     re-interned on decode, so pointer-identity equality — Bag dedup,
//	     memo keys, Similar's fast path — survives deserialization.
//	'B'  dedup bag: distinct count, then distinct × (type ref, count).
//	'S'  stats trie: total record count, then the root node, preorder:
//
//	     node := objCount
//	             [objCount>0] key set as a bitset over dictionary ids
//	                          (word count, words as 8-byte LE), then one
//	                          presence count per set bit in ascending id
//	                          order; similarity state (flag byte 0=empty,
//	                          1=max type follows, 2=dissimilar latch)
//	             arrCount
//	             [arrCount>0] length histogram (count, then count ×
//	                          (length, n) ascending); similarity state
//	             child count, then count × (key id, node), key-sorted
//	             elem count, then count × node
//
// Compatibility policy: any change to the layout above bumps the version
// byte, and decoders reject versions they do not know with a typed
// *SketchVersionError — there is no silent misparse path. Section framing
// (tag + length) exists so that a future version can add sections without
// re-deriving the offsets of the existing ones; within version 1 the
// section sequence is fixed and checked.
//
// Decoding is total: corrupt, truncated, or adversarial input yields a
// *SketchFormatError (or *SketchVersionError), never a panic — pinned by
// FuzzSketchDecode.

// sketchMagic brands every sketch file.
const sketchMagic = "JXSK"

// SketchFormatVersion is the wire-format version this build writes and
// the only one it accepts.
const SketchFormatVersion byte = 1

const (
	flagBag  byte = 1 << 0
	flagTrie byte = 1 << 1
)

// Section tags, in file order. The //jx:enum registration means any
// switch dispatching over these must account for every tag (exhausttag),
// so adding a section is lint-visible at every consumer.
//
//jx:enum wire section tags
const (
	secKeys byte = 'K'
	secType byte = 'T'
	secBag  byte = 'B'
	secTrie byte = 'S'
)

// maxTrieDepth bounds decode recursion. Encoded depth equals the maximal
// JSON nesting depth observed, far below this; the bound exists so that
// adversarial input cannot drive unbounded stack growth.
const maxTrieDepth = 100_000

// SketchVersionError reports a sketch whose version byte this build does
// not understand.
//
//jx:totalerror
type SketchVersionError struct {
	Got, Want byte
}

func (e *SketchVersionError) Error() string {
	return fmt.Sprintf("core: sketch format version %d not supported (this build reads version %d)", e.Got, e.Want)
}

// SketchFormatError reports structurally invalid sketch bytes.
//
//jx:totalerror
type SketchFormatError struct {
	Offset int    // byte offset where decoding failed, best effort
	Msg    string // what was wrong
}

func (e *SketchFormatError) Error() string {
	return fmt.Sprintf("core: invalid sketch data at offset %d: %s", e.Offset, e.Msg)
}

func formatErrf(offset int, format string, args ...any) error {
	return &SketchFormatError{Offset: offset, Msg: fmt.Sprintf(format, args...)}
}

// ---- encoding ----

// keyDict interns object keys to dense wire ids.
type keyDict struct {
	ids   map[string]int
	order []string
}

func newKeyDict() *keyDict { return &keyDict{ids: map[string]int{}} }

func (d *keyDict) id(key string) int {
	if id, ok := d.ids[key]; ok {
		return id
	}
	id := len(d.order)
	d.ids[key] = id
	d.order = append(d.order, key)
	return id
}

func (d *keyDict) appendSection(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(d.order)))
	for _, k := range d.order {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
	}
	return buf
}

// sketchEncoder accumulates the shared dictionaries while the bag and
// trie bodies are built, then assembles the framed file. Encoders are
// pooled: a reduce round marshals once per merge step and the dictionary
// maps plus body scratch dominate its allocations, so they are kept warm
// across Marshal calls instead of rebuilt.
type sketchEncoder struct {
	keys  *keyDict
	types *jsontype.TypeEncoder

	// Body scratch buffers, owned by the encoder while pooled. assemble
	// copies them into the exactly-sized output, so releasing the encoder
	// never aliases bytes handed to the caller.
	bagBuf  []byte
	trieBuf []byte
	keysBuf []byte
	typeBuf []byte
}

var sketchEncoderPool = sync.Pool{
	New: func() any {
		return &sketchEncoder{keys: newKeyDict(), types: jsontype.NewTypeEncoder()}
	},
}

func getSketchEncoder() *sketchEncoder {
	return sketchEncoderPool.Get().(*sketchEncoder)
}

// release empties the dictionaries (keeping their capacity) and returns
// the encoder to the pool.
func (e *sketchEncoder) release() {
	clear(e.keys.ids)
	e.keys.order = e.keys.order[:0]
	e.types.Reset()
	sketchEncoderPool.Put(e)
}

// appendSim appends a similarity-accumulator state.
func (e *sketchEncoder) appendSim(buf []byte, sim *jsontype.SimilarityAccumulator) []byte {
	switch {
	case !sim.Similar():
		return append(buf, 2)
	case sim.Max() == nil:
		return append(buf, 0)
	default:
		buf = append(buf, 1)
		return binary.AppendUvarint(buf, e.types.Ref(sim.Max()))
	}
}

// appendNode appends one trie node, preorder.
func (e *sketchEncoder) appendNode(buf []byte, t *statsTrie) []byte {
	buf = binary.AppendUvarint(buf, uint64(t.objCount))
	if t.objCount > 0 {
		ids := make([]int, 0, len(t.keyCounts))
		counts := make(map[int]int, len(t.keyCounts))
		t.eachKeyCount(func(key string, n int) {
			id := e.keys.id(key)
			ids = append(ids, id)
			counts[id] = n
		})
		set := entity.NewKeySet(ids...)
		buf = binary.AppendUvarint(buf, uint64(len(set)))
		for _, w := range set {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
		set.Each(func(id int) {
			buf = binary.AppendUvarint(buf, uint64(counts[id]))
		})
		buf = e.appendSim(buf, &t.objSim)
	}
	buf = binary.AppendUvarint(buf, uint64(t.arrCount))
	if t.arrCount > 0 {
		buf = binary.AppendUvarint(buf, uint64(len(t.lenCounts)))
		t.eachLenCount(func(length, n int) {
			buf = binary.AppendUvarint(buf, uint64(length))
			buf = binary.AppendUvarint(buf, uint64(n))
		})
		buf = e.appendSim(buf, &t.arrSim)
	}
	buf = binary.AppendUvarint(buf, uint64(len(t.children)))
	t.eachChild(func(key string, c *statsTrie) {
		buf = binary.AppendUvarint(buf, uint64(e.keys.id(key)))
		buf = e.appendNode(buf, c)
	})
	buf = binary.AppendUvarint(buf, uint64(len(t.elems)))
	for _, c := range t.elems {
		buf = e.appendNode(buf, c)
	}
	return buf
}

// appendBag appends the dedup-bag body.
func (e *sketchEncoder) appendBag(buf []byte, bag *jsontype.Bag) []byte {
	buf = binary.AppendUvarint(buf, uint64(bag.Distinct()))
	bag.Each(func(t *jsontype.Type, n int) {
		buf = binary.AppendUvarint(buf, e.types.Ref(t))
		buf = binary.AppendUvarint(buf, uint64(n))
	})
	return buf
}

// uvarintLen returns the encoded size of v as an unsigned LEB128 varint.
func uvarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

// framedLen is the on-wire cost of one section: tag byte, body-length
// varint, body.
func framedLen(body []byte) int { return 1 + uvarintLen(uint64(len(body))) + len(body) }

// assemble frames the encoded bodies into the final file bytes. bagBody
// and trieBody may be nil (section absent). The output is allocated once,
// at its exact final size, summed from the section lengths — the returned
// slice is the caller's; none of the encoder's scratch leaks into it.
func (e *sketchEncoder) assemble(bagBody, trieBody []byte) []byte {
	keysBody := e.keys.appendSection(e.keysBuf[:0])
	e.keysBuf = keysBody
	typeBody := e.types.Append(e.typeBuf[:0])
	e.typeBuf = typeBody

	var flags byte
	total := len(sketchMagic) + 2 + framedLen(keysBody) + framedLen(typeBody)
	if bagBody != nil {
		flags |= flagBag
		total += framedLen(bagBody)
	}
	if trieBody != nil {
		flags |= flagTrie
		total += framedLen(trieBody)
	}

	out := make([]byte, 0, total)
	out = append(out, sketchMagic...)
	out = append(out, SketchFormatVersion, flags)
	section := func(tag byte, body []byte) {
		out = append(out, tag)
		out = binary.AppendUvarint(out, uint64(len(body)))
		out = append(out, body...)
	}
	section(secKeys, keysBody)
	section(secType, typeBody)
	if bagBody != nil {
		section(secBag, bagBody)
	}
	if trieBody != nil {
		section(secTrie, trieBody)
	}
	return out
}

// Marshal serializes the sketch in the versioned wire format. The sketch
// is not consumed: more records may be added and Marshal called again.
func (s *PathSketch) Marshal() ([]byte, error) {
	enc := getSketchEncoder()
	defer enc.release()
	trieBody := binary.AppendUvarint(enc.trieBuf[:0], uint64(s.records))
	trieBody = enc.appendNode(trieBody, s.root)
	enc.trieBuf = trieBody
	return enc.assemble(nil, trieBody), nil
}

// Marshal serializes the accumulator's state — the dedup bag and, unless
// detection sampling deferred it, the pass-① sketch — in the versioned
// wire format. The configuration itself is not serialized: a sketch file
// carries data statistics only, and the reducer that resumes from it
// supplies the configuration, so one set of map outputs can be reduced
// under different thresholds.
//
// A bounded accumulator (Config.Bounds) serializes its current snapshot:
// the reservoir's retained types as the bag, and no trie section — a
// rotated or decayed sketch no longer totals to the bag, which the
// decoders rightly reject, so the receiver refolds statistics from the
// snapshot bag instead. Drivers that want the windowed statistics
// themselves should Marshal the rollup sketch (PathSketch.Marshal).
func (a *Accumulator) Marshal() ([]byte, error) {
	enc := getSketchEncoder()
	defer enc.release()
	bagBody := enc.appendBag(enc.bagBuf[:0], a.unionBag())
	enc.bagBuf = bagBody
	var trieBody []byte
	if a.sketch != nil && !a.cfg.Bounds.bounded() {
		trieBody = binary.AppendUvarint(enc.trieBuf[:0], uint64(a.sketch.records))
		trieBody = enc.appendNode(trieBody, a.sketch.root)
		enc.trieBuf = trieBody
	}
	return enc.assemble(bagBody, trieBody), nil
}

// ---- decoding ----

// sketchDecoder carries decode state and the running offset for error
// reporting. Decoders are pooled: the key dictionary, duplicate-entry
// set, and key-set scratch survive across decodes, so the merge-into
// path touches the allocator only for genuinely new trie structure.
type sketchDecoder struct {
	data  []byte
	pos   int
	keys  []string
	types *jsontype.TypeDecoder

	// seen deduplicates bag entries within one file on the merge-into
	// path (the live bag legitimately already holds the file's types, so
	// its own counts cannot serve as the duplicate check). Keyed by
	// intern id — pointer-keyed maps are barred by interncheck.
	seen map[uint64]struct{}
	// setScratch is the merge-into key-set buffer; each node consumes its
	// bitset before recursing, so one buffer serves the whole walk.
	setScratch entity.KeySet
}

var sketchDecoderPool = sync.Pool{New: func() any { return new(sketchDecoder) }}

func getSketchDecoder(data []byte) *sketchDecoder {
	d := sketchDecoderPool.Get().(*sketchDecoder)
	d.data = data
	d.pos = 0
	return d
}

// release drops references into the decoded file and returns the decoder
// to the pool, keeping the reusable scratch capacity.
func (d *sketchDecoder) release() {
	d.data = nil
	d.keys = d.keys[:0]
	d.types = nil
	clear(d.seen)
	sketchDecoderPool.Put(d)
}

func (d *sketchDecoder) errf(format string, args ...any) error {
	return formatErrf(d.pos, format, args...)
}

// The decode hot path reports failures through dedicated cold
// constructors: a //jx:hotpath function passing an int or string to a
// variadic ...any would box it per call site, so each malformed-input
// shape gets a typed, non-variadic helper instead (the scan.go errf
// convention).

//jx:coldpath error construction runs once per malformed input, not per decoded item
func (d *sketchDecoder) varintErr(what string) error {
	return formatErrf(d.pos, "truncated or overlong varint (%s)", what)
}

//jx:coldpath error construction runs once per malformed input, not per decoded item
func (d *sketchDecoder) overflowErr(what string, v uint64) error {
	return formatErrf(d.pos, "%s %d exceeds remaining input (%d bytes)", what, v, len(d.data)-d.pos)
}

//jx:hotpath
func (d *sketchDecoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, d.varintErr(what)
	}
	d.pos += n
	return v, nil
}

// count reads a varint that counts items costing at least minBytes each,
// rejecting counts the remaining input cannot possibly satisfy — the
// guard that keeps corrupt headers from driving giant allocations.
//
//jx:hotpath
func (d *sketchDecoder) count(what string, minBytes int) (int, error) {
	v, err := d.uvarint(what)
	if err != nil {
		return 0, err
	}
	if remaining := len(d.data) - d.pos; v > uint64(remaining/minBytes) {
		return 0, d.overflowErr(what, v)
	}
	return int(v), nil
}

func (d *sketchDecoder) header() (flags byte, err error) {
	if len(d.data) < len(sketchMagic)+2 {
		return 0, formatErrf(0, "input shorter than header (%d bytes)", len(d.data))
	}
	if string(d.data[:len(sketchMagic)]) != sketchMagic {
		return 0, formatErrf(0, "bad magic %q", d.data[:len(sketchMagic)])
	}
	if v := d.data[len(sketchMagic)]; v != SketchFormatVersion {
		return 0, &SketchVersionError{Got: v, Want: SketchFormatVersion}
	}
	flags = d.data[len(sketchMagic)+1]
	d.pos = len(sketchMagic) + 2
	return flags, nil
}

// section checks the tag and enters the section body, returning the
// offset just past it.
func (d *sketchDecoder) section(tag byte) (end int, err error) {
	if d.pos >= len(d.data) {
		return 0, d.errf("missing section %q", tag)
	}
	if got := d.data[d.pos]; got != tag {
		return 0, d.errf("section tag %q where %q expected", got, tag)
	}
	d.pos++
	n, err := d.count(fmt.Sprintf("section %q length", tag), 1)
	if err != nil {
		return 0, err
	}
	return d.pos + n, nil
}

// finishSection validates the decoder consumed exactly the framed length.
func (d *sketchDecoder) finishSection(tag byte, end int) error {
	if d.pos != end {
		return d.errf("section %q body ends at %d, frame says %d", tag, d.pos, end)
	}
	return nil
}

func (d *sketchDecoder) decodeKeys() error {
	end, err := d.section(secKeys)
	if err != nil {
		return err
	}
	n, err := d.count("key count", 1)
	if err != nil {
		return err
	}
	d.keys = d.keys[:0]
	for i := 0; i < n; i++ {
		kl, err := d.count("key length", 1)
		if err != nil {
			return err
		}
		d.keys = append(d.keys, string(d.data[d.pos:d.pos+kl]))
		d.pos += kl
	}
	return d.finishSection(secKeys, end)
}

func (d *sketchDecoder) decodeTypes() error {
	end, err := d.section(secType)
	if err != nil {
		return err
	}
	dec, n, err := jsontype.DecodeTypeTable(d.data[d.pos:end])
	if err != nil {
		return formatErrf(d.pos, "%v", err)
	}
	d.pos += n
	d.types = dec
	return d.finishSection(secType, end)
}

//jx:coldpath error construction runs once per malformed input, not per decoded item
func (d *sketchDecoder) refRangeErr(what string, r uint64) error {
	return formatErrf(d.pos, "type ref %d out of range (%s)", r, what)
}

//jx:coldpath error construction runs once per malformed input, not per decoded item
func (d *sketchDecoder) nilRefErr(what string) error {
	return formatErrf(d.pos, "nil type ref where %s expected", what)
}

//jx:hotpath
func (d *sketchDecoder) typeRef(what string) (*jsontype.Type, error) {
	r, err := d.uvarint(what)
	if err != nil {
		return nil, err
	}
	t, ok := d.types.Lookup(r)
	if !ok {
		return nil, d.refRangeErr(what, r)
	}
	if t == nil {
		return nil, d.nilRefErr(what)
	}
	return t, nil
}

func (d *sketchDecoder) decodeBag() (*jsontype.Bag, error) {
	end, err := d.section(secBag)
	if err != nil {
		return nil, err
	}
	n, err := d.count("bag distinct count", 2)
	if err != nil {
		return nil, err
	}
	bag := &jsontype.Bag{}
	for i := 0; i < n; i++ {
		t, err := d.typeRef("bag type")
		if err != nil {
			return nil, err
		}
		c, err := d.uvarint("bag count")
		if err != nil {
			return nil, err
		}
		if c == 0 || c > uint64(maxInt) {
			return nil, d.errf("bag count %d out of range", c)
		}
		if prev := bag.CountOf(t); prev > 0 {
			return nil, d.errf("duplicate bag entry for type %s", t.Canon())
		}
		if uint64(bag.Len())+c > uint64(maxInt) {
			return nil, d.errf("bag total overflows")
		}
		//jx:lint-ignore errtotal AddN asserts n > 0 and the c == 0 check above establishes it
		bag.AddN(t, int(c))
	}
	return bag, d.finishSection(secBag, end)
}

//jx:coldpath error construction runs once per malformed input, not per decoded item
func (d *sketchDecoder) simTruncErr() error {
	return formatErrf(d.pos, "truncated similarity state")
}

//jx:coldpath error construction runs once per malformed input, not per decoded item
func (d *sketchDecoder) simFlagErr(flag byte) error {
	return formatErrf(d.pos, "invalid similarity flag %d", flag)
}

//jx:hotpath
func (d *sketchDecoder) decodeSim(sim *jsontype.SimilarityAccumulator) error {
	if d.pos >= len(d.data) {
		return d.simTruncErr()
	}
	flag := d.data[d.pos]
	d.pos++
	switch flag {
	case 0:
		*sim = jsontype.RestoreSimilarityAccumulator(nil, true)
	case 1:
		t, err := d.typeRef("similarity max type")
		if err != nil {
			return err
		}
		*sim = jsontype.RestoreSimilarityAccumulator(t, true)
	case 2:
		*sim = jsontype.RestoreSimilarityAccumulator(nil, false)
	default:
		return d.simFlagErr(flag)
	}
	return nil
}

func (d *sketchDecoder) decodeNode(depth int) (*statsTrie, error) {
	if depth > maxTrieDepth {
		return nil, d.errf("trie deeper than %d", maxTrieDepth)
	}
	t := newStatsTrie()
	objCount, err := d.uvarint("object count")
	if err != nil {
		return nil, err
	}
	if objCount > uint64(maxInt) {
		return nil, d.errf("object count %d out of range", objCount)
	}
	t.objCount = int(objCount)
	if t.objCount > 0 {
		words, err := d.count("key-set word count", 8)
		if err != nil {
			return nil, err
		}
		set := make(entity.KeySet, words)
		for i := range set {
			set[i] = binary.LittleEndian.Uint64(d.data[d.pos:])
			d.pos += 8
		}
		if words > 0 && set[words-1] == 0 {
			return nil, d.errf("key-set bitset not normalized (trailing zero word)")
		}
		var countErr error
		set.Each(func(id int) {
			if countErr != nil {
				return
			}
			n, err := d.uvarint("key presence count")
			if err != nil {
				countErr = err
				return
			}
			if id >= len(d.keys) {
				countErr = d.errf("key id %d outside dictionary (%d keys)", id, len(d.keys))
				return
			}
			if n == 0 || n > objCount {
				countErr = d.errf("key presence count %d outside 1..%d", n, objCount)
				return
			}
			t.setKeyCount(d.keys[id], int(n))
		})
		if countErr != nil {
			return nil, countErr
		}
		if err := d.decodeSim(&t.objSim); err != nil {
			return nil, err
		}
	}
	arrCount, err := d.uvarint("array count")
	if err != nil {
		return nil, err
	}
	if arrCount > uint64(maxInt) {
		return nil, d.errf("array count %d out of range", arrCount)
	}
	t.arrCount = int(arrCount)
	if t.arrCount > 0 {
		n, err := d.count("length histogram size", 2)
		if err != nil {
			return nil, err
		}
		prev := -1
		for i := 0; i < n; i++ {
			length, err := d.uvarint("array length")
			if err != nil {
				return nil, err
			}
			c, err := d.uvarint("length count")
			if err != nil {
				return nil, err
			}
			if length > uint64(maxInt) || int(length) <= prev {
				return nil, d.errf("length histogram not strictly ascending at %d", length)
			}
			if c == 0 || c > arrCount {
				return nil, d.errf("length count %d outside 1..%d", c, arrCount)
			}
			prev = int(length)
			t.setLenCount(int(length), int(c))
		}
		if err := d.decodeSim(&t.arrSim); err != nil {
			return nil, err
		}
	}
	nc, err := d.count("child count", 2)
	if err != nil {
		return nil, err
	}
	prevKey := -1
	for i := 0; i < nc; i++ {
		id, err := d.uvarint("child key id")
		if err != nil {
			return nil, err
		}
		if id > uint64(len(d.keys)) || int(id) >= len(d.keys) {
			return nil, d.errf("child key id %d outside dictionary (%d keys)", id, len(d.keys))
		}
		if prevKey >= 0 && d.keys[id] <= d.keys[prevKey] {
			return nil, d.errf("children not key-sorted at id %d", id)
		}
		prevKey = int(id)
		c, err := d.decodeNode(depth + 1)
		if err != nil {
			return nil, err
		}
		t.attachChild(d.keys[id], c)
	}
	ne, err := d.count("elem count", 1)
	if err != nil {
		return nil, err
	}
	for i := 0; i < ne; i++ {
		c, err := d.decodeNode(depth + 1)
		if err != nil {
			return nil, err
		}
		t.attachElem(c)
	}
	return t, nil
}

func (d *sketchDecoder) decodeTrie() (*PathSketch, error) {
	end, err := d.section(secTrie)
	if err != nil {
		return nil, err
	}
	records, err := d.uvarint("record count")
	if err != nil {
		return nil, err
	}
	if records > uint64(maxInt) {
		return nil, d.errf("record count %d out of range", records)
	}
	root, err := d.decodeNode(0)
	if err != nil {
		return nil, err
	}
	if err := d.finishSection(secTrie, end); err != nil {
		return nil, err
	}
	return &PathSketch{root: root, records: int(records)}, nil
}

func (d *sketchDecoder) finish() error {
	if d.pos != len(d.data) {
		return d.errf("%d trailing bytes after final section", len(d.data)-d.pos)
	}
	return nil
}

const maxInt = int(^uint(0) >> 1)

// decodeSketchFile parses a whole sketch file into its (optional)
// components.
func decodeSketchFile(data []byte) (bag *jsontype.Bag, sketch *PathSketch, err error) {
	d := getSketchDecoder(data)
	defer d.release()
	flags, err := d.header()
	if err != nil {
		return nil, nil, err
	}
	if flags&^(flagBag|flagTrie) != 0 {
		return nil, nil, formatErrf(len(sketchMagic)+1, "unknown flag bits %#x", flags)
	}
	if err := d.decodeKeys(); err != nil {
		return nil, nil, err
	}
	if err := d.decodeTypes(); err != nil {
		return nil, nil, err
	}
	if flags&flagBag != 0 {
		if bag, err = d.decodeBag(); err != nil {
			return nil, nil, err
		}
	}
	if flags&flagTrie != 0 {
		if sketch, err = d.decodeTrie(); err != nil {
			return nil, nil, err
		}
	}
	if err := d.finish(); err != nil {
		return nil, nil, err
	}
	return bag, sketch, nil
}

// UnmarshalPathSketch decodes a sketch serialized with PathSketch.Marshal
// (or the trie section of an accumulator file). The result is
// observationally equal to the sketch that was marshaled: identical
// Stats under every configuration, and safe to keep folding into.
func UnmarshalPathSketch(data []byte) (*PathSketch, error) {
	_, sketch, err := decodeSketchFile(data)
	if err != nil {
		return nil, err
	}
	if sketch == nil {
		return nil, formatErrf(len(sketchMagic)+1, "no stats-trie section in input")
	}
	return sketch, nil
}

// UnmarshalAccumulator decodes accumulated discovery state serialized
// with Accumulator.Marshal and resumes it under cfg. The bag section is
// required. When cfg calls for an incremental sketch the serialized trie
// is used if present and rebuilt from the bag otherwise (a fold over
// deduplicated types — same statistics, more CPU); a sampling
// configuration ignores the trie, matching NewAccumulator.
func UnmarshalAccumulator(data []byte, cfg Config) (*Accumulator, error) {
	bag, sketch, err := decodeSketchFile(data)
	if err != nil {
		return nil, err
	}
	if bag == nil {
		return nil, formatErrf(len(sketchMagic)+1, "no bag section in input")
	}
	if sketch != nil && sketch.records != bag.Len() {
		return nil, formatErrf(0, "trie records %d disagree with bag total %d", sketch.records, bag.Len())
	}
	a := NewAccumulator(cfg)
	if a.sketch != nil && sketch != nil && !cfg.Bounds.bounded() {
		a.bag = bag
		a.sketch = sketch
		return a, nil
	}
	// Either the configuration wants no sketch (or bounds it, in which
	// case the bag must replay through the reservoir and window clock), or
	// the file carries none: fold the bag through the ordinary Add path.
	a.AddBag(bag)
	return a, nil
}

// MergeSketch decodes a serialized sketch and folds it into the
// accumulator — the reduce-side step. The result is identical to
// a.Merge(UnmarshalAccumulator(data, cfg)) for the accumulator's own
// configuration, but the decode folds *into* the live state: bag entries
// add straight into the live bag and trie counters accumulate in place,
// so a merge allocates only for structure the accumulator has not seen,
// never for a full intermediate accumulator.
//
// Error contract: the file is validated exactly as UnmarshalAccumulator
// validates it, but when MergeSketch returns an error the accumulator may
// already have absorbed a prefix of the file and must be discarded.
// Reduce drivers own a fresh accumulator per reduction and abort it
// wholesale on a corrupt shard, so there is no partial state to preserve.
func (a *Accumulator) MergeSketch(data []byte) error {
	if a.sketch == nil || a.cfg.Bounds.bounded() {
		// A sampling configuration keeps no live trie to fold into, and a
		// bounded one routes occurrences through the reservoir and the
		// window clock rather than straight into a live bag; either way
		// the file's trie section must still be fully validated (and is
		// then discarded or refolded, matching NewAccumulator). The
		// materializing decoder already does exactly that.
		other, err := UnmarshalAccumulator(data, a.cfg)
		if err != nil {
			return err
		}
		a.Merge(other)
		return nil
	}
	d := getSketchDecoder(data)
	defer d.release()
	return a.mergeSketchFile(d)
}

// mergeSketchFile is the merge-into decode: sections fold directly into
// the live accumulator. Validation mirrors decodeSketchFile +
// UnmarshalAccumulator check for check; only the destination differs.
func (a *Accumulator) mergeSketchFile(d *sketchDecoder) error {
	flags, err := d.header()
	if err != nil {
		return err
	}
	if flags&^(flagBag|flagTrie) != 0 {
		return formatErrf(len(sketchMagic)+1, "unknown flag bits %#x", flags)
	}
	if flags&flagBag == 0 {
		return formatErrf(len(sketchMagic)+1, "no bag section in input")
	}
	if err := d.decodeKeys(); err != nil {
		return err
	}
	if err := d.decodeTypes(); err != nil {
		return err
	}
	fileHasTrie := flags&flagTrie != 0
	bagTotal, err := a.mergeBag(d, fileHasTrie)
	if err != nil {
		return err
	}
	if fileHasTrie {
		if err := a.mergeTrie(d, bagTotal); err != nil {
			return err
		}
	}
	return d.finish()
}

// mergeBag folds the bag section into the live accumulator and returns
// the file's total record count. When the file carries no trie of its
// own, occurrences are folded into the live sketch as well, mirroring
// what UnmarshalAccumulator's AddBag fallback would have produced.
func (a *Accumulator) mergeBag(d *sketchDecoder, fileHasTrie bool) (int, error) {
	end, err := d.section(secBag)
	if err != nil {
		return 0, err
	}
	n, err := d.count("bag distinct count", 2)
	if err != nil {
		return 0, err
	}
	total, err := a.mergeBagEntries(d, n, fileHasTrie)
	if err != nil {
		return 0, err
	}
	return total, d.finishSection(secBag, end)
}

//jx:coldpath error construction runs once per malformed input, not per decoded item
func (d *sketchDecoder) bagCountErr(c uint64) error {
	return formatErrf(d.pos, "bag count %d out of range", c)
}

//jx:coldpath error construction runs once per malformed input, not per decoded item
func (d *sketchDecoder) dupEntryErr(t *jsontype.Type) error {
	return formatErrf(d.pos, "duplicate bag entry for type %s", t.Canon())
}

//jx:coldpath error construction runs once per malformed input, not per decoded item
func (d *sketchDecoder) bagOverflowErr() error {
	return formatErrf(d.pos, "bag total overflows")
}

// mergeBagEntries decodes n (type ref, count) pairs straight into the
// live bag. Duplicate detection runs against this file's entries only —
// the live bag legitimately already contains types the file carries.
//
//jx:hotpath
func (a *Accumulator) mergeBagEntries(d *sketchDecoder, n int, fileHasTrie bool) (int, error) {
	if d.seen == nil {
		d.seen = make(map[uint64]struct{}, n)
	}
	total := 0
	for i := 0; i < n; i++ {
		t, err := d.typeRef("bag type")
		if err != nil {
			return 0, err
		}
		c, err := d.uvarint("bag count")
		if err != nil {
			return 0, err
		}
		if c == 0 || c > uint64(maxInt) {
			return 0, d.bagCountErr(c)
		}
		if _, dup := d.seen[t.ID()]; dup {
			return 0, d.dupEntryErr(t)
		}
		d.seen[t.ID()] = struct{}{}
		if uint64(total)+c > uint64(maxInt) || uint64(a.bag.Len())+c > uint64(maxInt) {
			return 0, d.bagOverflowErr()
		}
		total += int(c)
		//jx:lint-ignore errtotal AddN asserts n > 0 and the c == 0 check above establishes it
		a.bag.AddN(t, int(c))
		if !fileHasTrie && a.sketch != nil {
			a.sketch.AddN(t, int(c))
		}
	}
	return total, nil
}

// mergeTrie folds the stats-trie section into the live sketch, after the
// same records-vs-bag cross check UnmarshalAccumulator applies.
func (a *Accumulator) mergeTrie(d *sketchDecoder, bagTotal int) error {
	end, err := d.section(secTrie)
	if err != nil {
		return err
	}
	records, err := d.uvarint("record count")
	if err != nil {
		return err
	}
	if records > uint64(maxInt) {
		return d.errf("record count %d out of range", records)
	}
	if int(records) != bagTotal {
		return formatErrf(0, "trie records %d disagree with bag total %d", records, bagTotal)
	}
	if err := d.mergeNode(a.sketch.root, 0); err != nil {
		return err
	}
	if err := d.finishSection(secTrie, end); err != nil {
		return err
	}
	a.sketch.records += int(records)
	return nil
}

//jx:coldpath error construction runs once per malformed input, not per decoded item
func (d *sketchDecoder) depthErr() error {
	return formatErrf(d.pos, "trie deeper than %d", maxTrieDepth)
}

//jx:coldpath error construction runs once per malformed input, not per decoded item
func (d *sketchDecoder) rangeErr(what string, v uint64) error {
	return formatErrf(d.pos, "%s %d out of range", what, v)
}

//jx:coldpath error construction runs once per malformed input, not per decoded item
func (d *sketchDecoder) bitsetErr() error {
	return formatErrf(d.pos, "key-set bitset not normalized (trailing zero word)")
}

//jx:coldpath error construction runs once per malformed input, not per decoded item
func (d *sketchDecoder) keyIDErr(id int) error {
	return formatErrf(d.pos, "key id %d outside dictionary (%d keys)", id, len(d.keys))
}

//jx:coldpath error construction runs once per malformed input, not per decoded item
func (d *sketchDecoder) countRangeErr(what string, n, limit uint64) error {
	return formatErrf(d.pos, "%s %d outside 1..%d", what, n, limit)
}

//jx:coldpath error construction runs once per malformed input, not per decoded item
func (d *sketchDecoder) histogramOrderErr(length uint64) error {
	return formatErrf(d.pos, "length histogram not strictly ascending at %d", length)
}

//jx:coldpath error construction runs once per malformed input, not per decoded item
func (d *sketchDecoder) childOrderErr(id uint64) error {
	return formatErrf(d.pos, "children not key-sorted at id %d", id)
}

// mergeNode folds one encoded trie node, preorder, into the live node t.
// It mirrors decodeNode's validations byte for byte; only the destination
// differs — counters accumulate in place (setKeyCount and setLenCount
// add, combine-style) and child nodes materialize only where the live
// trie has none.
//
//jx:hotpath
func (d *sketchDecoder) mergeNode(t *statsTrie, depth int) error {
	if depth > maxTrieDepth {
		return d.depthErr()
	}
	objCount, err := d.uvarint("object count")
	if err != nil {
		return err
	}
	if objCount > uint64(maxInt) {
		return d.rangeErr("object count", objCount)
	}
	t.objCount += int(objCount)
	if objCount > 0 {
		words, err := d.count("key-set word count", 8)
		if err != nil {
			return err
		}
		set := d.setScratch[:0]
		for i := 0; i < words; i++ {
			set = append(set, binary.LittleEndian.Uint64(d.data[d.pos:]))
			d.pos += 8
		}
		d.setScratch = set
		if len(set) > 0 && set[len(set)-1] == 0 {
			return d.bitsetErr()
		}
		var countErr error
		set.Each(func(id int) {
			if countErr != nil {
				return
			}
			n, err := d.uvarint("key presence count")
			if err != nil {
				countErr = err
				return
			}
			if id >= len(d.keys) {
				countErr = d.keyIDErr(id)
				return
			}
			if n == 0 || n > objCount {
				countErr = d.countRangeErr("key presence count", n, objCount)
				return
			}
			t.setKeyCount(d.keys[id], int(n))
		})
		if countErr != nil {
			return countErr
		}
		var sim jsontype.SimilarityAccumulator
		if err := d.decodeSim(&sim); err != nil {
			return err
		}
		t.objSim.Combine(&sim)
	}
	arrCount, err := d.uvarint("array count")
	if err != nil {
		return err
	}
	if arrCount > uint64(maxInt) {
		return d.rangeErr("array count", arrCount)
	}
	t.arrCount += int(arrCount)
	if arrCount > 0 {
		n, err := d.count("length histogram size", 2)
		if err != nil {
			return err
		}
		prev := -1
		for i := 0; i < n; i++ {
			length, err := d.uvarint("array length")
			if err != nil {
				return err
			}
			c, err := d.uvarint("length count")
			if err != nil {
				return err
			}
			if length > uint64(maxInt) || int(length) <= prev {
				return d.histogramOrderErr(length)
			}
			if c == 0 || c > arrCount {
				return d.countRangeErr("length count", c, arrCount)
			}
			prev = int(length)
			t.setLenCount(int(length), int(c))
		}
		var sim jsontype.SimilarityAccumulator
		if err := d.decodeSim(&sim); err != nil {
			return err
		}
		t.arrSim.Combine(&sim)
	}
	nc, err := d.count("child count", 2)
	if err != nil {
		return err
	}
	prevKey := -1
	for i := 0; i < nc; i++ {
		id, err := d.uvarint("child key id")
		if err != nil {
			return err
		}
		if id > uint64(len(d.keys)) || int(id) >= len(d.keys) {
			return d.keyIDErr(int(id))
		}
		if prevKey >= 0 && d.keys[id] <= d.keys[prevKey] {
			return d.childOrderErr(id)
		}
		prevKey = int(id)
		if err := d.mergeNode(t.child(d.keys[id]), depth+1); err != nil {
			return err
		}
	}
	ne, err := d.count("elem count", 1)
	if err != nil {
		return err
	}
	for i := 0; i < ne; i++ {
		if err := d.mergeNode(t.elem(i), depth+1); err != nil {
			return err
		}
	}
	return nil
}
