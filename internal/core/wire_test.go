package core

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"jxplain/internal/dataset"
	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
)

// wireSampleAccumulator folds a slice of the named dataset into a fresh
// accumulator.
func wireSampleAccumulator(t *testing.T, name string, n int, cfg Config) *Accumulator {
	t.Helper()
	g, ok := dataset.ByName(name)
	if !ok {
		t.Fatalf("no dataset %q", name)
	}
	acc := NewAccumulator(cfg)
	for _, r := range g.Generate(n, 1) {
		acc.Add(r.Type)
	}
	return acc
}

func schemaBytes(t *testing.T, s schema.Schema) []byte {
	t.Helper()
	data, err := schema.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestPathSketchWireRoundTrip pins the tentpole property on every dataset:
// Unmarshal(Marshal(s)) is observationally equal to s — identical Stats —
// and stays equal as more records fold into both.
func TestPathSketchWireRoundTrip(t *testing.T) {
	for _, g := range dataset.Registry() {
		records := g.Generate(120, 1)
		s := NewPathSketch()
		for _, r := range records[:100] {
			s.Add(r.Type)
		}
		data, err := s.Marshal()
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		got, err := UnmarshalPathSketch(data)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		requireSameSketch(t, s, got)

		// The decoded sketch must keep folding exactly like the original.
		for _, r := range records[100:] {
			s.Add(r.Type)
			got.Add(r.Type)
		}
		requireSameSketch(t, s, got)

		// And marshal canonically: same state, same bytes.
		re, err := got.Marshal()
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if !bytes.Equal(re, mustMarshalSketch(t, s)) {
			t.Errorf("%s: re-marshal of decoded sketch diverges", g.Name)
		}
	}
}

func mustMarshalSketch(t *testing.T, s *PathSketch) []byte {
	t.Helper()
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestAccumulatorWireRoundTrip checks the full accumulator round trip on
// every dataset: the resumed accumulator synthesizes a byte-identical
// schema and reports identical stats.
func TestAccumulatorWireRoundTrip(t *testing.T) {
	cfg := Default()
	for _, g := range dataset.Registry() {
		acc := NewAccumulator(cfg)
		for _, r := range g.Generate(150, 1) {
			acc.Add(r.Type)
		}
		data, err := acc.Marshal()
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		got, err := UnmarshalAccumulator(data, cfg)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if got.Records() != acc.Records() || got.Distinct() != acc.Distinct() {
			t.Fatalf("%s: counts diverge: %d/%d vs %d/%d",
				g.Name, got.Records(), got.Distinct(), acc.Records(), acc.Distinct())
		}
		if !reflect.DeepEqual(got.Stats(), acc.Stats()) {
			t.Fatalf("%s: stats diverge after round trip", g.Name)
		}
		want := schemaBytes(t, acc.Finish())
		if have := schemaBytes(t, got.Finish()); !bytes.Equal(have, want) {
			t.Errorf("%s: schema diverges after round trip\ngot:  %s\nwant: %s", g.Name, have, want)
		}
	}
}

// TestAccumulatorWireSamplingConfigs covers the sketch-absent corners: a
// sampling map side writes no trie (reducer refolds the bag), and a
// sampling reduce side ignores a present trie — both matching what an
// in-process accumulator with that configuration would hold.
func TestAccumulatorWireSamplingConfigs(t *testing.T) {
	sampling := Default()
	sampling.DetectionSample = 0.5

	// Map side sampled: no trie section on the wire.
	mapAcc := wireSampleAccumulator(t, "github", 100, sampling)
	data, err := mapAcc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	full, err := UnmarshalAccumulator(data, Default())
	if err != nil {
		t.Fatal(err)
	}
	ref := NewAccumulator(Default())
	ref.AddBag(mapAcc.bag)
	if !reflect.DeepEqual(full.Stats(), ref.Stats()) {
		t.Error("bag-only sketch file: rebuilt sketch diverges from refold")
	}

	// Reduce side sampled: trie present on the wire but unused.
	fullAcc := wireSampleAccumulator(t, "github", 100, Default())
	data, err = fullAcc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := UnmarshalAccumulator(data, sampling)
	if err != nil {
		t.Fatal(err)
	}
	refSampled := NewAccumulator(sampling)
	refSampled.AddBag(fullAcc.bag)
	if !reflect.DeepEqual(sampled.Stats(), refSampled.Stats()) {
		t.Error("sampling config: decoded accumulator diverges from refold")
	}
}

// TestAccumulatorMergeSketchEquivalence pins the reduce step: merging a
// *serialized* accumulator is equivalent to merging the in-memory one.
func TestAccumulatorMergeSketchEquivalence(t *testing.T) {
	cfg := Default()
	g, _ := dataset.ByName("yelp-business")
	records := g.Generate(200, 1)

	mkAcc := func(lo, hi int) *Accumulator {
		a := NewAccumulator(cfg)
		for _, r := range records[lo:hi] {
			a.Add(r.Type)
		}
		return a
	}

	viaWire := mkAcc(0, 80)
	shard := mkAcc(80, 200)
	data, err := shard.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := viaWire.MergeSketch(data); err != nil {
		t.Fatal(err)
	}

	inMemory := mkAcc(0, 80)
	inMemory.Merge(mkAcc(80, 200))

	single := mkAcc(0, 200)

	for _, pair := range []struct {
		name string
		acc  *Accumulator
	}{{"in-memory merge", inMemory}, {"single fold", single}} {
		if !reflect.DeepEqual(viaWire.Stats(), pair.acc.Stats()) {
			t.Errorf("stats diverge: serialized merge vs %s", pair.name)
		}
		if !bytes.Equal(schemaBytes(t, viaWire.Finish()), schemaBytes(t, pair.acc.Finish())) {
			t.Errorf("schema diverges: serialized merge vs %s", pair.name)
		}
	}
}

// lawAccumulators builds three fresh shard accumulators for the merge-law
// property tests.
func lawAccumulators(cfg Config) [3]*Accumulator {
	chunks := lawSketchChunks()
	var out [3]*Accumulator
	for i, chunk := range chunks {
		out[i] = NewAccumulator(cfg)
		for _, ty := range chunk {
			out[i].Add(ty)
		}
	}
	return out
}

// requireSameAccumulator checks observational equality up to bag
// *presentation order*: record/distinct counts, the per-type multiset,
// and the pass-① statistics. Schema bytes are deliberately not compared
// here — union alternates follow bag insertion order, so two merge orders
// produce the same schema as a set but may present alternates differently
// (which is why the scale-out reducer merges shards in stream order; see
// requireSameAccumulatorSchema for the order-preserving cases).
func requireSameAccumulator(t *testing.T, x, y *Accumulator) {
	t.Helper()
	if x.Records() != y.Records() || x.Distinct() != y.Distinct() {
		t.Fatalf("counts diverge: %d/%d vs %d/%d", x.Records(), x.Distinct(), y.Records(), y.Distinct())
	}
	x.bag.Each(func(ty *jsontype.Type, n int) {
		if y.bag.CountOf(ty) != n {
			t.Fatalf("multiset diverges at %s: %d vs %d", ty.Canon(), n, y.bag.CountOf(ty))
		}
	})
	if !reflect.DeepEqual(x.Stats(), y.Stats()) {
		t.Fatalf("stats diverge:\n%v\nvs\n%v", x.Stats(), y.Stats())
	}
}

// requireSameAccumulatorSchema additionally pins schema bytes, for merge
// orders that preserve the bag's first-seen order.
func requireSameAccumulatorSchema(t *testing.T, x, y *Accumulator) {
	t.Helper()
	requireSameAccumulator(t, x, y)
	if sx, sy := schemaBytes(t, x.Finish()), schemaBytes(t, y.Finish()); !bytes.Equal(sx, sy) {
		t.Fatalf("schemas diverge:\n%s\nvs\n%s", sx, sy)
	}
}

func TestAccumulatorMergeCommutativeProperty(t *testing.T) {
	cfg := Default()
	a := lawAccumulators(cfg)
	b := lawAccumulators(cfg)

	a[0].Merge(a[1]) // a ⊕ b
	b[1].Merge(b[0]) // b ⊕ a

	requireSameAccumulator(t, a[0], b[1])
}

func TestAccumulatorMergeAssociativeProperty(t *testing.T) {
	cfg := Default()
	l := lawAccumulators(cfg)
	r := lawAccumulators(cfg)

	l[0].Merge(l[1])
	l[0].Merge(l[2]) // (a ⊕ b) ⊕ c

	r[1].Merge(r[2])
	r[0].Merge(r[1]) // a ⊕ (b ⊕ c)

	// Both groupings preserve first-seen order, so even schema bytes agree.
	requireSameAccumulatorSchema(t, l[0], r[0])
}

// TestAccumulatorMergeSerializedCommutativeProperty re-proves the merge
// laws with every operand shipped through the wire format — the algebra
// the scale-out reducer actually relies on: reduce order across sketch
// files must not matter.
func TestAccumulatorMergeSerializedCommutativeProperty(t *testing.T) {
	cfg := Default()
	shards := lawAccumulators(cfg)
	var files [3][]byte
	for i, acc := range shards {
		data, err := acc.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		files[i] = data
	}

	reduce := func(order ...int) *Accumulator {
		acc := NewAccumulator(cfg)
		for _, i := range order {
			if err := acc.MergeSketch(files[i]); err != nil {
				t.Fatal(err)
			}
		}
		return acc
	}

	want := reduce(0, 1, 2)
	for _, order := range [][]int{{0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}} {
		requireSameAccumulator(t, want, reduce(order...))
	}
}

func TestAccumulatorMergeSerializedAssociativeProperty(t *testing.T) {
	cfg := Default()
	shards := lawAccumulators(cfg)
	var files [3][]byte
	for i, acc := range shards {
		data, err := acc.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		files[i] = data
	}

	// (a ⊕ b) ⊕ c, with the intermediate itself crossing the wire.
	left := NewAccumulator(cfg)
	if err := left.MergeSketch(files[0]); err != nil {
		t.Fatal(err)
	}
	if err := left.MergeSketch(files[1]); err != nil {
		t.Fatal(err)
	}
	leftData, err := left.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	outer := NewAccumulator(cfg)
	if err := outer.MergeSketch(leftData); err != nil {
		t.Fatal(err)
	}
	if err := outer.MergeSketch(files[2]); err != nil {
		t.Fatal(err)
	}

	// a ⊕ (b ⊕ c), likewise.
	bc := NewAccumulator(cfg)
	if err := bc.MergeSketch(files[1]); err != nil {
		t.Fatal(err)
	}
	if err := bc.MergeSketch(files[2]); err != nil {
		t.Fatal(err)
	}
	bcData, err := bc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	right := NewAccumulator(cfg)
	if err := right.MergeSketch(files[0]); err != nil {
		t.Fatal(err)
	}
	if err := right.MergeSketch(bcData); err != nil {
		t.Fatal(err)
	}

	requireSameAccumulatorSchema(t, outer, right)
}

// TestSketchWireVersionRejected pins the compatibility contract: any
// unknown version byte yields a typed *SketchVersionError, for both entry
// points.
func TestSketchWireVersionRejected(t *testing.T) {
	acc := wireSampleAccumulator(t, "github", 20, Default())
	data, err := acc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range []byte{0, SketchFormatVersion + 1, 255} {
		bad := append([]byte(nil), data...)
		bad[4] = version
		var verr *SketchVersionError
		if _, err := UnmarshalAccumulator(bad, Default()); !errors.As(err, &verr) {
			t.Fatalf("version %d: got %v, want *SketchVersionError", version, err)
		} else if verr.Got != version || verr.Want != SketchFormatVersion {
			t.Fatalf("version %d: error carries %d/%d", version, verr.Got, verr.Want)
		}
		if _, err := UnmarshalPathSketch(bad); !errors.As(err, &verr) {
			t.Fatalf("version %d (sketch): got %v, want *SketchVersionError", version, err)
		}
	}
}

// TestSketchWireRejectsCorrupt feeds the decoder the corruption classes it
// must reject with a *SketchFormatError and never a panic: truncation at
// every prefix, trailing garbage, bad magic, unknown flags, and missing
// required sections.
func TestSketchWireRejectsCorrupt(t *testing.T) {
	acc := wireSampleAccumulator(t, "twitter", 30, Default())
	data, err := acc.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	decode := func(input []byte) error {
		_, err := UnmarshalAccumulator(input, Default())
		return err
	}

	for i := 0; i < len(data); i++ {
		if err := decode(data[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	if err := decode(append(append([]byte(nil), data...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}

	badMagic := append([]byte(nil), data...)
	badMagic[0] = 'X'
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": badMagic,
	}
	unknownFlags := append([]byte(nil), data...)
	unknownFlags[5] |= 0x80
	cases["unknown flags"] = unknownFlags

	for name, input := range cases {
		err := decode(input)
		var ferr *SketchFormatError
		if !errors.As(err, &ferr) {
			t.Errorf("%s: got %v, want *SketchFormatError", name, err)
		}
	}

	// A bare sketch file has no bag: UnmarshalAccumulator must refuse it,
	// and UnmarshalPathSketch must refuse a bag-only file.
	s := NewPathSketch()
	s.Add(jsontype.MustFromValue(map[string]any{"a": 1.0}))
	sketchOnly, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var ferr *SketchFormatError
	if _, err := UnmarshalAccumulator(sketchOnly, Default()); !errors.As(err, &ferr) {
		t.Errorf("bag-less file: got %v, want *SketchFormatError", err)
	}
	sampling := Default()
	sampling.DetectionSample = 0.5
	bagOnlyAcc := NewAccumulator(sampling)
	bagOnlyAcc.Add(jsontype.MustFromValue(map[string]any{"a": 1.0}))
	bagOnly, err := bagOnlyAcc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalPathSketch(bagOnly); !errors.As(err, &ferr) {
		t.Errorf("trie-less file: got %v, want *SketchFormatError", err)
	}
}

// TestStatsDoesNotMutateSketch is the regression test for the wildcard-
// merge aliasing bug: derive used to build its merged collection nodes
// with the adopting combine, so the first Stats call could splice live
// child maps into scratch nodes and later folds corrupted the sketch.
// Stats must be repeatable and must leave the serialized form untouched.
func TestStatsDoesNotMutateSketch(t *testing.T) {
	for _, g := range dataset.Registry() {
		s := NewPathSketch()
		for _, r := range g.Generate(100, 1) {
			s.Add(r.Type)
		}
		cfg := Default()
		before := mustMarshalSketch(t, s)
		first := s.Stats(cfg)
		second := s.Stats(cfg)
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("%s: Stats not repeatable", g.Name)
		}
		if !bytes.Equal(before, mustMarshalSketch(t, s)) {
			t.Fatalf("%s: Stats mutated the sketch's serialized state", g.Name)
		}
	}
}
