package core

import (
	"bytes"
	"errors"
	"testing"

	"jxplain/internal/dataset"
)

// shardedSketches folds the dataset's records into `shards` contiguous
// map accumulators (cut at the given boundaries, or evenly when nil) and
// returns their serialized sketches in shard order.
func shardedSketches(t *testing.T, g *dataset.Generator, n, shards int, cuts []int, cfg Config) [][]byte {
	t.Helper()
	records := g.Generate(n, 1)
	bounds := cuts
	if bounds == nil {
		for i := 1; i <= shards; i++ {
			bounds = append(bounds, len(records)*i/shards)
		}
	}
	files := make([][]byte, 0, len(bounds))
	start := 0
	for _, end := range bounds {
		acc := NewAccumulator(cfg)
		for _, r := range records[start:end] {
			acc.Add(r.Type)
		}
		data, err := acc.Marshal()
		if err != nil {
			t.Fatalf("%s: marshal shard: %v", g.Name, err)
		}
		files = append(files, data)
		start = end
	}
	return files
}

// TestMergeSketchesTreeEquivalence pins the tentpole property on every
// dataset: the parallel tree reduce is byte-identical to the sequential
// fold — same accumulator bytes, same schema bytes — at every shard
// width and worker count, because adjacent-pair merging preserves
// first-seen type order.
func TestMergeSketchesTreeEquivalence(t *testing.T) {
	cfg := Default()
	for _, g := range dataset.Registry() {
		// The sequential fold is the contract; single-process discovery
		// equals it by the existing MergeSketch equivalence tests.
		single := wireSampleAccumulator(t, g.Name, 160, cfg)
		wantSchema := schemaBytes(t, single.Finish())

		for _, shards := range []int{1, 2, 3, 4, 7, 16, 32} {
			files := shardedSketches(t, g, 160, shards, nil, cfg)

			seq := NewAccumulator(cfg)
			for _, data := range files {
				if err := seq.MergeSketch(data); err != nil {
					t.Fatalf("%s/%d: sequential merge: %v", g.Name, shards, err)
				}
			}
			seqBytes, err := seq.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if got := schemaBytes(t, seq.Finish()); !bytes.Equal(got, wantSchema) {
				t.Fatalf("%s/%d: sequential reduce diverges from single process", g.Name, shards)
			}

			for _, workers := range []int{0, 2, 3, 8} {
				tree, err := ReduceSketches(files, cfg, workers)
				if err != nil {
					t.Fatalf("%s/%d/w%d: %v", g.Name, shards, workers, err)
				}
				treeBytes, err := tree.Marshal()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(treeBytes, seqBytes) {
					t.Fatalf("%s/%d/w%d: tree-reduced accumulator bytes diverge from sequential fold",
						g.Name, shards, workers)
				}
				if got := schemaBytes(t, tree.Finish()); !bytes.Equal(got, wantSchema) {
					t.Fatalf("%s/%d/w%d: tree-reduced schema diverges", g.Name, shards, workers)
				}
			}
		}
	}
}

// TestMergeSketchesUnevenShards covers ragged splits — empty shards
// included — since real stream cuts land wherever the byte quotas fall.
func TestMergeSketchesUnevenShards(t *testing.T) {
	cfg := Default()
	g, ok := dataset.ByName("yelp-business")
	if !ok {
		t.Fatal("yelp-business dataset missing")
	}
	single := wireSampleAccumulator(t, g.Name, 300, cfg)
	want := schemaBytes(t, single.Finish())

	for _, cuts := range [][]int{
		{50, 150, 300},
		{0, 7, 7, 290, 300}, // two empty shards among the cuts
		{299, 300},
	} {
		files := shardedSketches(t, g, 300, 0, cuts, cfg)
		for _, workers := range []int{1, 4} {
			acc, err := ReduceSketches(files, cfg, workers)
			if err != nil {
				t.Fatalf("cuts %v w%d: %v", cuts, workers, err)
			}
			if got := schemaBytes(t, acc.Finish()); !bytes.Equal(got, want) {
				t.Fatalf("cuts %v w%d: schema diverges", cuts, workers)
			}
		}
	}
}

// TestMergeSketchesIntoNonEmpty checks the tree result folds into a
// reducer that already holds records, matching the sequential fold.
func TestMergeSketchesIntoNonEmpty(t *testing.T) {
	cfg := Default()
	g, _ := dataset.ByName("github")
	files := shardedSketches(t, g, 120, 6, nil, cfg)

	seq := wireSampleAccumulator(t, g.Name, 40, cfg)
	for _, data := range files {
		if err := seq.MergeSketch(data); err != nil {
			t.Fatal(err)
		}
	}
	tree := wireSampleAccumulator(t, g.Name, 40, cfg)
	if err := tree.MergeSketches(files, 4); err != nil {
		t.Fatal(err)
	}
	requireSameAccumulatorSchema(t, seq, tree)
}

// TestMergeSketchesError pins the failure contract: the failing file's
// index is reported and the typed decode error survives wrapping, on both
// the sequential and the parallel path.
func TestMergeSketchesError(t *testing.T) {
	cfg := Default()
	g, _ := dataset.ByName("github")
	files := shardedSketches(t, g, 120, 6, nil, cfg)
	files[3] = files[3][:len(files[3])-2] // truncate one shard

	for _, workers := range []int{1, 4} {
		_, err := ReduceSketches(files, cfg, workers)
		if err == nil {
			t.Fatalf("w%d: truncated sketch accepted", workers)
		}
		var ferr *SketchFormatError
		if !errors.As(err, &ferr) {
			t.Fatalf("w%d: untyped error %T: %v", workers, err, err)
		}
		if want := "sketch 3"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Fatalf("w%d: error %q does not name the failing file (%q)", workers, err, want)
		}
	}
}

// TestMarshalExactPreallocation pins assemble's sizing arithmetic: the
// output buffer is allocated once at its exact final size, so length and
// capacity agree (an append that grew the buffer would round the capacity
// up).
func TestMarshalExactPreallocation(t *testing.T) {
	cfg := Default()
	for _, g := range dataset.Registry() {
		acc := wireSampleAccumulator(t, g.Name, 100, cfg)
		data, err := acc.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != cap(data) {
			t.Errorf("%s: Marshal allocated %d bytes for a %d-byte file", g.Name, cap(data), len(data))
		}
	}
}

// TestMergeSketchAllocsNoWorseThanMaterialize guards the merge-into
// decode: folding a sketch into a populated accumulator must not allocate
// more than the old materialize-then-merge path it replaced. (The real
// margin — several-fold — is reported by jxbench -table reduce; the test
// only pins the direction so it stays robust across runtimes.)
func TestMergeSketchAllocsNoWorseThanMaterialize(t *testing.T) {
	cfg := Default()
	g, _ := dataset.ByName("yelp-business")
	base := wireSampleAccumulator(t, g.Name, 200, cfg)
	data, err := base.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	// Warm interner and pools outside the measured runs.
	warm := wireSampleAccumulator(t, g.Name, 200, cfg)
	if err := warm.MergeSketch(data); err != nil {
		t.Fatal(err)
	}

	mergeInto := testing.AllocsPerRun(20, func() {
		acc := wireSampleAccumulator(t, g.Name, 200, cfg)
		if err := acc.MergeSketch(data); err != nil {
			t.Fatal(err)
		}
	})
	materialize := testing.AllocsPerRun(20, func() {
		acc := wireSampleAccumulator(t, g.Name, 200, cfg)
		other, err := UnmarshalAccumulator(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		acc.Merge(other)
	})
	if mergeInto > materialize {
		t.Errorf("merge-into decode allocates more than materialize-then-merge: %.0f vs %.0f allocs/op",
			mergeInto, materialize)
	}
}
