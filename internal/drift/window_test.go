package drift

import (
	"strings"
	"testing"

	"jxplain/internal/core"
	"jxplain/internal/jsontype"
)

func sketchOfValues(t *testing.T, values []any, repeat int) *core.PathSketch {
	t.Helper()
	s := core.NewPathSketch()
	for _, v := range values {
		ty, err := jsontype.FromValue(v)
		if err != nil {
			t.Fatalf("sketchOfValues: %v", err)
		}
		s.AddN(ty, repeat)
	}
	return s
}

func TestWindowMonitorReportsPathMovement(t *testing.T) {
	m := NewWindowMonitor(core.Default())

	w0 := sketchOfValues(t, []any{map[string]any{"user": map[string]any{"id": 1.0}}}, 50)
	if ev := m.ObserveSketch(0, w0.Records(), w0); ev != nil {
		t.Fatalf("first window must prime silently, got %v", ev)
	}
	// Same shape again: nothing moved.
	if ev := m.ObserveSketch(1, w0.Records(), w0); ev != nil {
		t.Fatalf("identical window raised an event: %v", ev)
	}

	// "user" (a stats path: object-kinded) retires; "account" appears.
	w2 := sketchOfValues(t, []any{map[string]any{"account": map[string]any{"geo": []any{1.0, 2.0}}}}, 50)
	ev := m.ObserveSketch(2, w2.Records(), w2)
	if ev == nil {
		t.Fatal("shape change raised no event")
	}
	if ev.Window != 2 || ev.Records != 50 {
		t.Fatalf("event header wrong: %+v", ev)
	}
	var added, removed bool
	for _, c := range ev.Changes {
		added = added || c.Kind == PathAdded
		removed = removed || c.Kind == PathRemoved
	}
	if !added || !removed {
		t.Fatalf("want both added and removed changes, got %v", ev.Changes)
	}
	if m.Events() != 1 {
		t.Fatalf("events=%d, want 1", m.Events())
	}
}

func TestWindowMonitorReportsDecisionFlips(t *testing.T) {
	m := NewWindowMonitor(core.Default())

	// Window A: the root object bags carry two stable keys — a tuple.
	tuples := sketchOfValues(t, []any{
		map[string]any{"a": 1.0, "b": 2.0},
	}, 100)
	// Window B: many disjoint single-key records — key-space entropy
	// pushes the root object to a collection ruling.
	var churn []any
	for _, k := range []string{"k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8"} {
		churn = append(churn, map[string]any{k: 1.0})
	}
	collections := sketchOfValues(t, churn, 20)

	m.ObserveSketch(0, tuples.Records(), tuples)
	ev := m.ObserveSketch(1, collections.Records(), collections)
	if ev == nil {
		t.Fatal("decision flip raised no event")
	}
	var flip *WindowChange
	for i, c := range ev.Changes {
		if c.Kind == DecisionChanged {
			flip = &ev.Changes[i]
		}
	}
	if flip == nil {
		t.Fatalf("no DecisionChanged in %v", ev.Changes)
	}
	if flip.From != "tuple" || flip.To != "collection" {
		t.Fatalf("flip direction wrong: %s → %s", flip.From, flip.To)
	}
	if !strings.Contains(ev.String(), "→") {
		t.Fatalf("rendered event lacks flip detail: %s", ev.String())
	}
}

func TestWindowMonitorBindsToAccumulator(t *testing.T) {
	cfg := core.Default()
	cfg.Bounds = core.Bounds{WindowRecords: 50, WindowCount: 2}
	acc := core.NewAccumulator(cfg)

	m := NewWindowMonitor(cfg)
	var events []*WindowEvent
	m.Bind(acc, func(ev *WindowEvent) { events = append(events, ev) })

	oldShape := jsontype.MustFromValue(map[string]any{"v1": map[string]any{"x": 1.0}})
	newShape := jsontype.MustFromValue(map[string]any{"v2": map[string]any{"y": "s"}})
	for i := 0; i < 100; i++ {
		acc.Add(oldShape) // two identical windows: prime + quiet
	}
	for i := 0; i < 50; i++ {
		acc.Add(newShape) // third window: shape moved
	}
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	if events[0].Window != 2 {
		t.Fatalf("event at window %d, want 2", events[0].Window)
	}
}
