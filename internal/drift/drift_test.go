package drift

import (
	"fmt"
	"strings"
	"testing"

	"jxplain/internal/core"
	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
)

func ty(t *testing.T, src string) *jsontype.Type {
	t.Helper()
	typ, err := jsontype.FromJSON([]byte(src))
	if err != nil {
		t.Fatalf("FromJSON(%q): %v", src, err)
	}
	return typ
}

func baseline(t *testing.T, srcs ...string) schema.Schema {
	t.Helper()
	var types []*jsontype.Type
	for _, s := range srcs {
		types = append(types, ty(t, s))
	}
	return core.DiscoverTypes(types, core.Default())
}

func TestMonitorNoDriftStaysQuiet(t *testing.T) {
	s := baseline(t, `{"a":1,"b":"x"}`, `{"a":2,"b":"y"}`)
	m := NewMonitor(s, Config{Window: 10})
	for i := 0; i < 55; i++ {
		if alert := m.Observe(ty(t, `{"a":9,"b":"z"}`)); alert != nil {
			t.Fatalf("unexpected alert: %v", alert)
		}
	}
	if alert := m.Flush(); alert != nil {
		t.Fatalf("flush should be quiet: %v", alert)
	}
	seen, rejected, alerts := m.Totals()
	if seen != 55 || rejected != 0 || alerts != 0 {
		t.Errorf("totals = %d/%d/%d", seen, rejected, alerts)
	}
}

func TestMonitorDetectsNewField(t *testing.T) {
	s := baseline(t, `{"a":1,"b":"x"}`, `{"a":2,"b":"y"}`)
	m := NewMonitor(s, Config{Window: 20, RejectThreshold: 0.05})
	var alert *Alert
	for i := 0; i < 20; i++ {
		rec := `{"a":1,"b":"x"}`
		if i%4 == 0 { // 25% of the window carries a new field
			rec = `{"a":1,"b":"x","new_field":true}`
		}
		if a := m.Observe(ty(t, rec)); a != nil {
			alert = a
		}
	}
	if alert == nil {
		t.Fatal("expected a drift alert")
	}
	if alert.Rejected != 5 || alert.Records != 20 {
		t.Errorf("alert = %+v", alert)
	}
	found := false
	for _, e := range alert.Edits {
		if e.Op == "add-optional" && e.Detail == "new_field" {
			found = true
		}
	}
	if !found {
		t.Errorf("alert should name the new field: %v", alert.Edits)
	}
	if !strings.Contains(alert.String(), "new_field") {
		t.Error("String() should include the edit")
	}
	if len(alert.Samples) != 5 {
		t.Errorf("samples = %d", len(alert.Samples))
	}
}

func TestMonitorThresholdSuppressesNoise(t *testing.T) {
	s := baseline(t, `{"a":1}`)
	m := NewMonitor(s, Config{Window: 100, RejectThreshold: 0.05})
	// 2% bad records: below the 5% threshold.
	for i := 0; i < 100; i++ {
		rec := `{"a":1}`
		if i%50 == 0 {
			rec = `{"a":"oops"}`
		}
		if alert := m.Observe(ty(t, rec)); alert != nil {
			t.Fatalf("2%% rejects should not alert at 5%% threshold: %v", alert)
		}
	}
}

func TestMonitorFlushPartialWindow(t *testing.T) {
	s := baseline(t, `{"a":1}`)
	m := NewMonitor(s, Config{Window: 1000})
	m.Observe(ty(t, `{"a":1}`))
	m.Observe(ty(t, `{"zzz":true}`))
	alert := m.Flush()
	if alert == nil || alert.Rejected != 1 || alert.Records != 2 {
		t.Fatalf("flush alert = %+v", alert)
	}
	if m.Flush() != nil {
		t.Error("second flush should be a no-op")
	}
}

func TestMonitorRelearnCycle(t *testing.T) {
	s := baseline(t, `{"a":1}`)
	m := NewMonitor(s, Config{Window: 10})
	var alert *Alert
	for i := 0; i < 10; i++ {
		if a := m.Observe(ty(t, `{"a":1,"v2_field":"x"}`)); a != nil {
			alert = a
		}
	}
	if alert == nil {
		t.Fatal("expected alert on schema evolution")
	}
	// Re-learn from the baseline's coverage plus the alert samples.
	types := append([]*jsontype.Type{ty(t, `{"a":1}`)}, alert.Samples...)
	m.SetBaseline(core.DiscoverTypes(types, core.Default()))
	for i := 0; i < 20; i++ {
		if a := m.Observe(ty(t, `{"a":1,"v2_field":"y"}`)); a != nil {
			t.Fatalf("relearned baseline should accept v2 records: %v", a)
		}
	}
	if m.Baseline() == nil {
		t.Error("baseline accessor broken")
	}
}

func TestMonitorKeepRejectedBound(t *testing.T) {
	s := baseline(t, `{"a":1}`)
	m := NewMonitor(s, Config{Window: 50, KeepRejected: 3})
	var alert *Alert
	for i := 0; i < 50; i++ {
		if a := m.Observe(ty(t, fmt.Sprintf(`{"bad%d":1}`, i))); a != nil {
			alert = a
		}
	}
	if alert == nil {
		t.Fatal("expected alert")
	}
	if len(alert.Samples) != 3 {
		t.Errorf("samples should be capped at 3, got %d", len(alert.Samples))
	}
	if alert.Rejected != 50 {
		t.Errorf("Rejected must count every rejection, got %d", alert.Rejected)
	}
}

func TestMonitorAbsorb(t *testing.T) {
	s := baseline(t, `{"a":1}`)
	m := NewMonitor(s, Config{Window: 10})
	var alert *Alert
	for i := 0; i < 10; i++ {
		if a := m.Observe(ty(t, `{"a":1,"evolved":"x"}`)); a != nil {
			alert = a
		}
	}
	if alert == nil {
		t.Fatal("expected alert")
	}
	fused := m.Absorb(alert, core.Default())
	if fused == nil || m.Baseline() != fused {
		t.Fatal("Absorb should install the fused baseline")
	}
	// Both the old and the evolved shapes now validate.
	for _, good := range []string{`{"a":1}`, `{"a":2,"evolved":"y"}`} {
		if !m.Baseline().Accepts(ty(t, good)) {
			t.Errorf("fused baseline should accept %s", good)
		}
	}
	for i := 0; i < 20; i++ {
		if a := m.Observe(ty(t, `{"a":1,"evolved":"z"}`)); a != nil {
			t.Fatalf("no alerts after absorbing: %v", a)
		}
	}
	// Absorbing nil or empty alerts is a no-op.
	if m.Absorb(nil, core.Default()) != m.Baseline() {
		t.Error("Absorb(nil) should be identity")
	}
	if m.Absorb(&Alert{}, core.Default()) != m.Baseline() {
		t.Error("Absorb(empty) should be identity")
	}
}

func TestDiff(t *testing.T) {
	old := baseline(t, `{"a":1,"b":{"x":"s"}}`)
	new := baseline(t, `{"a":1,"b":{"y":"s"},"c":true}`)
	changes := Diff(old, new)
	got := map[string]ChangeKind{}
	for _, c := range changes {
		got[c.Path] = c.Kind
	}
	if got["b.x"] != PathRemoved || got["b.y"] != PathAdded || got["c"] != PathAdded {
		t.Errorf("changes = %v", changes)
	}
	if len(Diff(old, old)) != 0 {
		t.Error("self-diff must be empty")
	}
	if !strings.Contains(changes[0].String(), changes[0].Path) {
		t.Error("Change.String broken")
	}
	if PathAdded.String() != "added" || PathRemoved.String() != "removed" {
		t.Error("ChangeKind.String broken")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Window != 100 || c.KeepRejected != 100 || c.RejectThreshold != 0 {
		t.Errorf("defaults = %+v", c)
	}
	c2 := Config{RejectThreshold: -1}.withDefaults()
	if c2.RejectThreshold != 0 {
		t.Error("negative threshold should clamp to 0")
	}
}
