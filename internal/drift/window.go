package drift

import (
	"fmt"
	"sort"

	"jxplain/internal/core"
)

// Windowed drift: the structural counterpart of the record-level Monitor
// for bounded streams. A stream accumulator running with a window ring
// (core.Bounds) closes a pass-① sketch epoch every WindowRecords records;
// a WindowMonitor diffs consecutive closed windows' derived statistics
// and reports structural movement — paths that appeared, paths that
// retired, and tuple/collection rulings that flipped — without holding
// any schema or record state of its own. Where Monitor answers "does the
// stream still validate against the baseline?", WindowMonitor answers
// "is the stream's shape itself moving?", which is exactly the per-window
// question the ring's serialized epochs make free to ask.

// WindowChange is one structural difference between consecutive windows.
type WindowChange struct {
	// Kind is PathAdded, PathRemoved, or DecisionChanged.
	Kind ChangeKind
	// Path is the kind-qualified stats path the change is anchored at.
	Path string
	// From and To carry the old and new tuple/collection rulings; set
	// only for DecisionChanged.
	From, To string
}

func (c WindowChange) String() string {
	if c.Kind == DecisionChanged {
		return fmt.Sprintf("%-8s %s (%s → %s)", c.Kind, c.Path, c.From, c.To)
	}
	return fmt.Sprintf("%-8s %s", c.Kind, c.Path)
}

// WindowEvent describes the structural movement observed at one closed
// window, relative to the window before it.
type WindowEvent struct {
	// Window is the closed window's 0-based index.
	Window int
	// Records is the closed window's record count.
	Records int
	// Changes are the differences against the previous window, sorted by
	// path then kind.
	Changes []WindowChange
}

// String renders the event for logs.
func (e *WindowEvent) String() string {
	out := fmt.Sprintf("drift: window %d (%d records): %d structural changes",
		e.Window, e.Records, len(e.Changes))
	for _, c := range e.Changes {
		out += "\n  " + c.String()
	}
	return out
}

// WindowMonitor diffs the pass-① statistics of consecutive stream
// windows. Not safe for concurrent use.
type WindowMonitor struct {
	cfg    core.Config
	prev   map[string]string // kind-qualified path -> decision
	primed bool
	events int
}

// NewWindowMonitor returns a monitor deriving each window's statistics
// under cfg (the discovery configuration the stream itself runs with, so
// rulings match what synthesis would do).
func NewWindowMonitor(cfg core.Config) *WindowMonitor {
	return &WindowMonitor{cfg: cfg}
}

// Events returns how many non-empty events the monitor has raised.
func (m *WindowMonitor) Events() int { return m.events }

// ObserveSketch derives the closed window's statistics and diffs them
// against the previous window — the natural callback for
// core.Accumulator.OnWindowClose. The first window primes the baseline
// and returns nil; later windows return nil when nothing moved.
func (m *WindowMonitor) ObserveSketch(index, records int, sketch *core.PathSketch) *WindowEvent {
	return m.ObserveStats(sketch.Stats(m.cfg), index, records)
}

// ObserveStats is ObserveSketch for statistics the caller already
// derived.
func (m *WindowMonitor) ObserveStats(stats []core.PathStat, index, records int) *WindowEvent {
	cur := make(map[string]string, len(stats))
	for _, st := range stats {
		cur[st.Kind.String()+":"+st.Path] = st.Decision.String()
	}
	defer func() { m.prev, m.primed = cur, true }()
	if !m.primed {
		return nil
	}

	var changes []WindowChange
	for path, dec := range cur {
		old, ok := m.prev[path]
		switch {
		case !ok:
			changes = append(changes, WindowChange{Kind: PathAdded, Path: path})
		case old != dec:
			changes = append(changes, WindowChange{Kind: DecisionChanged, Path: path, From: old, To: dec})
		}
	}
	for path := range m.prev {
		if _, ok := cur[path]; !ok {
			changes = append(changes, WindowChange{Kind: PathRemoved, Path: path})
		}
	}
	if len(changes) == 0 {
		return nil
	}
	sort.Slice(changes, func(i, j int) bool {
		if changes[i].Path != changes[j].Path {
			return changes[i].Path < changes[j].Path
		}
		return changes[i].Kind < changes[j].Kind
	})
	m.events++
	return &WindowEvent{Window: index, Records: records, Changes: changes}
}

// Bind registers the monitor on a bounded accumulator's window hook,
// forwarding every non-nil event to onEvent. The accumulator must be
// ring-configured (core.Bounds.WindowCount > 0) for the hook to fire.
func (m *WindowMonitor) Bind(acc *core.Accumulator, onEvent func(*WindowEvent)) {
	acc.OnWindowClose(func(index, records int, sketch *core.PathSketch) {
		if ev := m.ObserveSketch(index, records, sketch); ev != nil && onEvent != nil {
			onEvent(ev)
		}
	})
}
