// Package drift turns discovered schemas into a structural-change monitor
// — the paper's motivating use case (§1): "an operations engineer
// monitoring JSON log data may want to be warned when the structure of
// newly arriving events changes, as this may signify errors, or the
// addition of new event types." Precise schemas are what make this work:
// a permissive K-reduction schema accepts malformed mixtures silently,
// while a JXPLAIN schema flags them.
//
// A Monitor validates a stream against a baseline schema in fixed-size
// windows; when a window's rejection rate crosses the configured
// threshold it raises an Alert carrying the rejection rate, the distinct
// structural repairs (§7.5 edits) explaining the rejections, and the
// offending types, which the caller can feed back into rediscovery.
package drift

import (
	"fmt"
	"sort"

	"jxplain/internal/core"
	"jxplain/internal/jsontype"
	"jxplain/internal/metrics"
	"jxplain/internal/schema"
)

// Config parameterizes a Monitor.
type Config struct {
	// Window is the number of records per evaluation window (default 100).
	Window int
	// RejectThreshold is the window rejection-rate fraction above which an
	// Alert is raised (default 0.01; 0 alerts on any rejection).
	RejectThreshold float64
	// KeepRejected bounds how many rejected types each Alert retains
	// (default 100; the distinct edits are always complete).
	KeepRejected int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 100
	}
	if c.RejectThreshold < 0 {
		c.RejectThreshold = 0
	}
	if c.KeepRejected <= 0 {
		c.KeepRejected = 100
	}
	return c
}

// Alert describes structural drift detected in one window.
type Alert struct {
	// Window is the 0-based index of the closed window.
	Window int
	// Records and Rejected are the window's totals.
	Records, Rejected int
	// RejectRate is Rejected / Records.
	RejectRate float64
	// Edits are the distinct structural repairs explaining the rejections
	// (new fields, missing mandatory fields, widened types, …).
	Edits []metrics.Edit
	// Samples holds up to Config.KeepRejected rejected types.
	Samples []*jsontype.Type
}

// String renders the alert for logs.
func (a *Alert) String() string {
	out := fmt.Sprintf("drift: window %d rejected %d/%d records (%.1f%%); %d structural changes",
		a.Window, a.Rejected, a.Records, 100*a.RejectRate, len(a.Edits))
	for _, e := range a.Edits {
		out += fmt.Sprintf("\n  %-13s %-40s %s", e.Op, e.Path, e.Detail)
	}
	return out
}

// Monitor validates a record stream against a baseline schema. Not safe
// for concurrent use; wrap with a mutex if observed from multiple
// goroutines.
type Monitor struct {
	baseline schema.Schema
	cfg      Config

	window      int
	inWindow    int
	rejectCount int
	rejected    []*jsontype.Type
	editSet     map[string]metrics.Edit
	totalSeen   int
	totalRej    int
	alertCount  int
}

// NewMonitor returns a Monitor watching against the baseline schema.
func NewMonitor(baseline schema.Schema, cfg Config) *Monitor {
	return &Monitor{
		baseline: baseline,
		cfg:      cfg.withDefaults(),
		editSet:  map[string]metrics.Edit{},
	}
}

// Baseline returns the schema currently being enforced.
func (m *Monitor) Baseline() schema.Schema { return m.baseline }

// Totals returns the lifetime observed/rejected record counts and the
// number of alerts raised.
func (m *Monitor) Totals() (seen, rejected, alerts int) {
	return m.totalSeen, m.totalRej, m.alertCount
}

// Observe folds one record into the current window. When the record
// closes a window whose rejection rate exceeds the threshold, the window's
// Alert is returned; otherwise Observe returns nil.
func (m *Monitor) Observe(t *jsontype.Type) *Alert {
	m.totalSeen++
	m.inWindow++
	if !m.baseline.Accepts(t) {
		m.totalRej++
		m.rejectCount++
		if len(m.rejected) < m.cfg.KeepRejected {
			m.rejected = append(m.rejected, t)
		}
		_, edits := metrics.EditsToFullRecall(m.baseline, []*jsontype.Type{t})
		for _, e := range edits {
			m.editSet[e.Op+"\x00"+e.Path+"\x00"+e.Detail] = e
		}
	}
	if m.inWindow < m.cfg.Window {
		return nil
	}
	return m.closeWindow()
}

// Flush closes the current partial window, returning its Alert if the
// threshold is crossed. Useful at stream end.
func (m *Monitor) Flush() *Alert {
	if m.inWindow == 0 {
		return nil
	}
	return m.closeWindow()
}

func (m *Monitor) closeWindow() *Alert {
	records := m.inWindow
	rejected := m.rejectCount
	rate := float64(rejected) / float64(records)
	windowIdx := m.window

	var alert *Alert
	if rejected > 0 && rate > m.cfg.RejectThreshold {
		edits := make([]metrics.Edit, 0, len(m.editSet))
		for _, e := range m.editSet {
			edits = append(edits, e)
		}
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].Path != edits[j].Path {
				return edits[i].Path < edits[j].Path
			}
			return edits[i].Op < edits[j].Op
		})
		alert = &Alert{
			Window:     windowIdx,
			Records:    records,
			Rejected:   rejected,
			RejectRate: rate,
			Edits:      edits,
			Samples:    m.rejected,
		}
		m.alertCount++
	}
	m.window++
	m.inWindow = 0
	m.rejectCount = 0
	m.rejected = nil
	m.editSet = map[string]metrics.Edit{}
	return alert
}

// Absorb folds an alert's structural changes into the baseline: a schema
// is discovered over the alert's rejected samples with the given
// configuration and fused into the current baseline (schema.Fuse), so the
// evolved structure validates from now on without re-reading history. The
// new baseline is returned.
func (m *Monitor) Absorb(alert *Alert, cfg core.Config) schema.Schema {
	if alert == nil || len(alert.Samples) == 0 {
		return m.baseline
	}
	delta := core.DiscoverTypes(alert.Samples, cfg)
	m.SetBaseline(schema.Fuse(m.baseline, delta))
	return m.baseline
}

// SetBaseline replaces the enforced schema (e.g. after rediscovery over an
// Alert's samples) and resets the current window.
func (m *Monitor) SetBaseline(s schema.Schema) {
	m.baseline = s
	m.inWindow = 0
	m.rejectCount = 0
	m.rejected = nil
	m.editSet = map[string]metrics.Edit{}
}
