package drift

import (
	"fmt"
	"sort"

	"jxplain/internal/schema"
)

// Schema diffing: a human-readable structural comparison between two
// discovered schemas (e.g. last week's baseline and a re-learned one),
// reporting added, removed and kind-changed field paths.

// ChangeKind classifies one structural difference.
type ChangeKind uint8

// The change kinds.
const (
	// PathAdded is a field path present only in the new schema.
	PathAdded ChangeKind = iota
	// PathRemoved is a field path present only in the old schema.
	PathRemoved
	// DecisionChanged is a stats path whose tuple/collection ruling
	// flipped between consecutive stream windows (windowed drift only;
	// schema Diff never emits it).
	DecisionChanged
)

func (k ChangeKind) String() string {
	if k == PathAdded {
		return "added"
	}
	if k == DecisionChanged {
		return "decision"
	}
	return "removed"
}

// Change is one structural difference between two schemas.
type Change struct {
	Kind ChangeKind
	Path string
}

func (c Change) String() string { return fmt.Sprintf("%-7s %s", c.Kind, c.Path) }

// Diff compares two schemas by their field-path sets and returns the
// sorted changes. An empty result means the schemas describe the same
// paths (their leaf types may still differ; validate to detect that).
func Diff(old, new schema.Schema) []Change {
	oldPaths := schema.FieldPaths(old)
	newPaths := schema.FieldPaths(new)
	var out []Change
	for p := range newPaths {
		if !oldPaths[p] {
			out = append(out, Change{Kind: PathAdded, Path: p})
		}
	}
	for p := range oldPaths {
		if !newPaths[p] {
			out = append(out, Change{Kind: PathRemoved, Path: p})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
