package unitchecker

import "runtime"

// defaultGOARCH is the architecture the unit is type-checked for when the
// environment does not say otherwise. Vet runs on the host toolchain, so
// the host architecture is the right default.
const defaultGOARCH = runtime.GOARCH
