// Package unitchecker implements cmd/go's (unpublished) vet tool protocol
// for the jxlint analyzers, mirroring golang.org/x/tools/go/analysis/
// unitchecker without the dependency: go vet invokes the tool once per
// compilation unit with the path to a JSON config file describing the
// unit's sources and the export data of its dependencies. The unit is
// parsed and type-checked against that export data (via go/importer's gc
// importer with a custom lookup), the analyzers run, and diagnostics are
// printed to stderr in file:line:col form with a non-zero exit status.
//
// jxlint declares no analysis facts, so the .vetx output cmd/go caches is
// an empty file; dependency units (VetxOnly) return immediately.
package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"jxplain/internal/lint/jxanalysis"
)

// Config is the JSON schema of the file cmd/go passes to the vet tool
// (cmd/go/internal/work.vetConfig). Fields jxlint does not consume are
// listed for documentation and ignored on decode.
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// Run analyzes the unit described by cfgPath and returns the process exit
// code: 0 clean, 1 operational error, 2 diagnostics reported.
func Run(cfgPath string, analyzers []*jxanalysis.Analyzer) int {
	cfg, err := readConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jxlint: %v\n", err)
		return 1
	}
	// Write the (empty — jxlint has no facts) vetx output first so cmd/go
	// can cache the unit regardless of findings.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "jxlint: writing vetx output: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency unit: facts only, and jxlint has none
	}
	diags, err := analyze(cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "jxlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Position, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// A Finding is one diagnostic with its position resolved.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", path, err)
	}
	if cfg.GoFiles == nil && !cfg.VetxOnly {
		return nil, fmt.Errorf("vet config %s has no GoFiles", path)
	}
	return cfg, nil
}

// analyze parses and type-checks the unit, then runs the analyzers.
func analyze(cfg *Config, analyzers []*jxanalysis.Analyzer) ([]Finding, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	imp := &unitImporter{
		gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			file, ok := cfg.PackageFile[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}),
		importMap: cfg.ImportMap,
	}
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion(cfg.GoVersion),
		Sizes:     types.SizesFor("gc", buildArch()),
	}
	pkg := &jxanalysis.Package{Fset: fset, Files: files, Info: jxanalysis.NewInfo()}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, pkg.Info)
	if err != nil {
		return nil, err
	}
	pkg.Types = tpkg
	diags, err := jxanalysis.Run(pkg, analyzers)
	if err != nil {
		return nil, err
	}
	out := make([]Finding, len(diags))
	for i, d := range diags {
		out[i] = Finding{Position: fset.Position(d.Pos), Analyzer: d.Analyzer, Message: d.Message}
	}
	return out, nil
}

// unitImporter maps source-level import paths through cfg.ImportMap before
// delegating to the gc export-data importer.
type unitImporter struct {
	gc        types.Importer
	importMap map[string]string
}

func (im *unitImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := im.importMap[path]; ok {
		path = mapped
	}
	return im.gc.Import(path)
}

// goVersion sanitizes cfg.GoVersion for types.Config: the type checker
// wants a plain language version ("go1.22"), while cmd/go may hand over a
// toolchain version with patch and suffix.
func goVersion(v string) string {
	if v == "" {
		return ""
	}
	parts := strings.SplitN(v, ".", 3)
	if len(parts) >= 2 {
		minor := parts[1]
		if i := strings.IndexFunc(minor, func(r rune) bool { return r < '0' || r > '9' }); i >= 0 {
			minor = minor[:i]
		}
		return parts[0] + "." + minor
	}
	return v
}

func buildArch() string {
	if arch := os.Getenv("GOARCH"); arch != "" {
		return arch
	}
	return defaultGOARCH
}
