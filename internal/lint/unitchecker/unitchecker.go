// Package unitchecker implements cmd/go's (unpublished) vet tool protocol
// for the jxlint analyzers, mirroring golang.org/x/tools/go/analysis/
// unitchecker without the dependency: go vet invokes the tool once per
// compilation unit with the path to a JSON config file describing the
// unit's sources and the export data of its dependencies. The unit is
// parsed and type-checked against that export data (via go/importer's gc
// importer with a custom lookup), the analyzers run, and diagnostics are
// printed to stderr in file:line:col form with a non-zero exit status.
//
// Facts ride the same protocol: before the analyzers run, the .vetx file
// of every dependency (cfg.PackageVetx) is decoded into the unit's fact
// store, and afterwards the store — the unit's own exports plus the
// imported facts, so propagation is transitive — is gob-encoded into
// cfg.VetxOutput, which cmd/go caches next to the export data and feeds
// to dependent units. Dependency units arrive with VetxOnly set; for
// those only the fact-declaring analyzers run (diagnostics discarded),
// and units outside the module under analysis are skipped outright with
// an empty vetx, since the //jx: directives facts are derived from are
// module-local by construction.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"jxplain/internal/lint/jxanalysis"
)

// Config is the JSON schema of the file cmd/go passes to the vet tool
// (cmd/go/internal/work.vetConfig). Fields jxlint does not consume are
// listed for documentation and ignored on decode.
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// Run analyzes the unit described by cfgPath and returns the process exit
// code: 0 clean, 1 operational error, 2 diagnostics reported.
func Run(cfgPath string, analyzers []*jxanalysis.Analyzer) int {
	cfg, err := readConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jxlint: %v\n", err)
		return 1
	}
	if err := jxanalysis.RegisterFactTypes(analyzers); err != nil {
		fmt.Fprintf(os.Stderr, "jxlint: %v\n", err)
		return 1
	}
	// cmd/go caches the unit keyed on the vetx output, so one must be
	// written on every exit path — empty on failure.
	writeVetx := func(data []byte) bool {
		if cfg.VetxOutput == "" {
			return true
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "jxlint: writing vetx output: %v\n", err)
			return false
		}
		return true
	}
	if cfg.VetxOnly {
		// Dependency unit: only facts matter. The //jx: directives facts
		// come from are module-local, so units outside the module export
		// nothing and need not be type-checked at all.
		factAnalyzers := withFacts(analyzers)
		if len(factAnalyzers) == 0 || !moduleLocal(cfg) {
			if !writeVetx(nil) {
				return 1
			}
			return 0
		}
		_, factsData, err := analyze(cfg, factAnalyzers)
		if err != nil {
			if !writeVetx(nil) {
				return 1
			}
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "jxlint: %s: %v\n", cfg.ImportPath, err)
			return 1
		}
		if !writeVetx(factsData) {
			return 1
		}
		return 0
	}
	diags, factsData, err := analyze(cfg, analyzers)
	if err != nil {
		ok := writeVetx(nil)
		if cfg.SucceedOnTypecheckFailure {
			if !ok {
				return 1
			}
			return 0
		}
		fmt.Fprintf(os.Stderr, "jxlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if !writeVetx(factsData) {
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Position, d.Analyzer, d.Message)
	}
	if dir := os.Getenv(DiagDirEnv); dir != "" && len(diags) > 0 {
		if err := writeFindings(dir, cfg.ID, diags); err != nil {
			fmt.Fprintf(os.Stderr, "jxlint: %v\n", err)
			return 1
		}
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// DiagDirEnv names the directory the parent jxlint sets for structured
// output: every unit with findings drops a JSON file there, and the
// parent merges them into one -json or -sarif document after go vet
// returns. The protocol exists because the vet driver runs the tool once
// per compilation unit — no single invocation sees all findings. cmd/go
// does not cache failing vet units, so findings re-emit on every run and
// the merge never reads stale results.
const DiagDirEnv = "JXLINT_DIAG_DIR"

// writeFindings persists one unit's findings under dir. The file name is
// a digest of the unit ID: unique per unit, stable across runs, and free
// of the path separators unit IDs contain.
func writeFindings(dir, unitID string, findings []Finding) error {
	data, err := json.MarshalIndent(findings, "", "\t")
	if err != nil {
		return err
	}
	name := fmt.Sprintf("%x.json", sha256.Sum256([]byte(unitID)))
	return os.WriteFile(filepath.Join(dir, name), data, 0o666)
}

// withFacts filters analyzers down to those that declare fact types —
// the only ones whose results a dependency unit contributes.
func withFacts(analyzers []*jxanalysis.Analyzer) []*jxanalysis.Analyzer {
	var out []*jxanalysis.Analyzer
	for _, a := range analyzers {
		if len(a.FactTypes) > 0 {
			out = append(out, a)
		}
	}
	return out
}

// moduleLocal reports whether the unit belongs to the module under
// analysis (test-variant import paths like "pkg [pkg.test]" share the
// module prefix and qualify).
func moduleLocal(cfg *Config) bool {
	if cfg.ModulePath == "" {
		return false
	}
	return cfg.ImportPath == cfg.ModulePath ||
		strings.HasPrefix(cfg.ImportPath, cfg.ModulePath+"/")
}

// A Finding is one diagnostic with its position resolved.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
	Fix      *FindingFix `json:",omitempty"`
}

// A FindingFix is a SuggestedFix with its edits resolved to byte offsets
// — the coordinate system that survives the JSON round trip through the
// findings protocol and maps directly onto SARIF replacement regions.
type FindingFix struct {
	Message string
	Edits   []FindingEdit
}

// A FindingEdit replaces Length bytes at Offset in Filename with NewText
// (Length 0 inserts).
type FindingEdit struct {
	Filename string
	Offset   int
	Length   int
	NewText  string
}

// resolveFix projects a SuggestedFix into file/offset coordinates. A fix
// with an unresolvable position is dropped (nil) rather than applied at
// a wrong offset.
func resolveFix(fset *token.FileSet, fix *jxanalysis.SuggestedFix) *FindingFix {
	if fix == nil {
		return nil
	}
	out := &FindingFix{Message: fix.Message}
	for _, e := range fix.Edits {
		start, end := fset.Position(e.Pos), fset.Position(e.End)
		if !start.IsValid() || !end.IsValid() || start.Filename != end.Filename || end.Offset < start.Offset {
			return nil
		}
		out.Edits = append(out.Edits, FindingEdit{
			Filename: start.Filename,
			Offset:   start.Offset,
			Length:   end.Offset - start.Offset,
			NewText:  e.NewText,
		})
	}
	return out
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", path, err)
	}
	if cfg.GoFiles == nil && !cfg.VetxOnly {
		return nil, fmt.Errorf("vet config %s has no GoFiles", path)
	}
	return cfg, nil
}

// analyze parses and type-checks the unit, seeds the fact store from the
// dependencies' vetx files, runs the analyzers, and returns the findings
// together with the unit's encoded facts.
func analyze(cfg *Config, analyzers []*jxanalysis.Analyzer) ([]Finding, []byte, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	imp := &unitImporter{
		gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			file, ok := cfg.PackageFile[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}),
		importMap: cfg.ImportMap,
	}
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion(cfg.GoVersion),
		Sizes:     types.SizesFor("gc", buildArch()),
	}
	pkg := &jxanalysis.Package{Fset: fset, Files: files, Info: jxanalysis.NewInfo()}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, pkg.Info)
	if err != nil {
		return nil, nil, err
	}
	pkg.Types = tpkg
	facts := jxanalysis.NewFacts()
	if err := importFacts(cfg, tpkg, facts); err != nil {
		return nil, nil, err
	}
	diags, err := jxanalysis.RunFacts(pkg, analyzers, facts)
	if err != nil {
		return nil, nil, err
	}
	factsData, err := facts.Encode()
	if err != nil {
		return nil, nil, err
	}
	out := make([]Finding, len(diags))
	for i, d := range diags {
		out[i] = Finding{
			Position: fset.Position(d.Pos),
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Fix:      resolveFix(fset, d.SuggestedFix),
		}
	}
	return out, factsData, nil
}

// importFacts decodes each dependency vetx file listed in cfg.PackageVetx
// into the store. Fact objects are resolved against the unit's transitive
// import graph; facts on packages the unit cannot reference are skipped
// by Decode.
func importFacts(cfg *Config, tpkg *types.Package, facts *jxanalysis.Facts) error {
	if len(cfg.PackageVetx) == 0 {
		return nil
	}
	byPath := map[string]*types.Package{}
	indexImports(tpkg, byPath)
	find := func(path string) *types.Package { return byPath[path] }
	paths := make([]string, 0, len(cfg.PackageVetx))
	for p := range cfg.PackageVetx {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		data, err := os.ReadFile(cfg.PackageVetx[p])
		if err != nil {
			return fmt.Errorf("reading facts of %s: %w", p, err)
		}
		if err := facts.Decode(data, find); err != nil {
			return fmt.Errorf("decoding facts of %s: %w", p, err)
		}
	}
	return nil
}

// indexImports maps the transitive imports of pkg (and pkg itself) by
// import path.
func indexImports(pkg *types.Package, byPath map[string]*types.Package) {
	if _, seen := byPath[pkg.Path()]; seen {
		return
	}
	byPath[pkg.Path()] = pkg
	for _, imp := range pkg.Imports() {
		indexImports(imp, byPath)
	}
}

// unitImporter maps source-level import paths through cfg.ImportMap before
// delegating to the gc export-data importer.
type unitImporter struct {
	gc        types.Importer
	importMap map[string]string
}

func (im *unitImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := im.importMap[path]; ok {
		path = mapped
	}
	return im.gc.Import(path)
}

// goVersion sanitizes cfg.GoVersion for types.Config: the type checker
// wants a plain language version ("go1.22"), while cmd/go may hand over a
// toolchain version with patch and suffix.
func goVersion(v string) string {
	if v == "" {
		return ""
	}
	parts := strings.SplitN(v, ".", 3)
	if len(parts) >= 2 {
		minor := parts[1]
		if i := strings.IndexFunc(minor, func(r rune) bool { return r < '0' || r > '9' }); i >= 0 {
			minor = minor[:i]
		}
		return parts[0] + "." + minor
	}
	return v
}

func buildArch() string {
	if arch := os.Getenv("GOARCH"); arch != "" {
		return arch
	}
	return defaultGOARCH
}
