package unitchecker

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"jxplain/internal/lint/analyzers"
	"jxplain/internal/lint/jxanalysis"
)

// TestFactsRoundTripVetProtocol drives the unitchecker the way cmd/go
// does, one vet.cfg per compilation unit, and asserts that an ObjectFact
// exported by the dependency unit (facttest/a, VetxOnly) is imported by
// the dependent unit (facttest/b): b's hot function calling the tagged
// a.Fast stays clean while the call to the untagged a.Alloc is reported.
func TestFactsRoundTripVetProtocol(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module facttest\n\ngo 1.22\n")
	write("a/a.go", `package a

// Fast is verified allocation-free.
//
//jx:hotpath
func Fast(x int) int { return x + 1 }

// Alloc is untagged.
func Alloc(n int) []int { return make([]int, n) }
`)
	write("b/b.go", `package b

import "facttest/a"

// Use relies on a.Fast's AllocFree fact.
//
//jx:hotpath
func Use(x int) int { return a.Fast(x) }

// Bad calls an untagged dependency function.
//
//jx:hotpath
func Bad(n int) []int { return a.Alloc(n) }
`)

	// go list -export compiles the units and reports the export data
	// paths — the same files cmd/go would put in vet.cfg's PackageFile.
	cmd := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Export", "./...")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		msg := ""
		if ee, ok := err.(*exec.ExitError); ok {
			msg = string(ee.Stderr)
		}
		t.Fatalf("go list -export: %v\n%s", err, msg)
	}
	packageFile := map[string]string{}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		var p struct {
			ImportPath string
			Export     string
		}
		if err := dec.Decode(&p); err != nil {
			t.Fatalf("parsing go list output: %v", err)
		}
		if p.Export != "" {
			packageFile[p.ImportPath] = p.Export
		}
	}
	if packageFile["facttest/a"] == "" {
		t.Fatalf("go list produced no export data for facttest/a: %v", packageFile)
	}

	suite := analyzers.All()
	if err := jxanalysis.RegisterFactTypes(suite); err != nil {
		t.Fatal(err)
	}

	// Unit 1: facttest/a as a dependency unit (VetxOnly). Run must exit 0
	// and leave a non-empty vetx carrying the AllocFree fact for Fast.
	vetxA := filepath.Join(dir, "a.vetx")
	cfgA := &Config{
		ID:          "facttest/a",
		Compiler:    "gc",
		Dir:         filepath.Join(dir, "a"),
		ImportPath:  "facttest/a",
		GoFiles:     []string{filepath.Join(dir, "a", "a.go")},
		ModulePath:  "facttest",
		PackageFile: packageFile,
		VetxOnly:    true,
		VetxOutput:  vetxA,
	}
	writeCfg := func(name string, cfg *Config) string {
		t.Helper()
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
		return path
	}
	if code := Run(writeCfg("a.cfg", cfgA), suite); code != 0 {
		t.Fatalf("Run on VetxOnly unit facttest/a exited %d, want 0", code)
	}
	if data, err := os.ReadFile(vetxA); err != nil || len(data) == 0 {
		t.Fatalf("dependency unit wrote no facts: err=%v, %d bytes", err, len(data))
	}

	// Unit 2: facttest/b, consuming a's vetx.
	cfgB := &Config{
		ID:          "facttest/b",
		Compiler:    "gc",
		Dir:         filepath.Join(dir, "b"),
		ImportPath:  "facttest/b",
		GoFiles:     []string{filepath.Join(dir, "b", "b.go")},
		ModulePath:  "facttest",
		PackageFile: packageFile,
		PackageVetx: map[string]string{"facttest/a": vetxA},
		VetxOutput:  filepath.Join(dir, "b.vetx"),
	}
	findings, factsData, err := analyze(cfgB, suite)
	if err != nil {
		t.Fatalf("analyzing facttest/b: %v", err)
	}
	var sawAlloc bool
	for _, f := range findings {
		if strings.Contains(f.Message, "facttest/a.Fast") {
			t.Errorf("a.Fast flagged despite its imported AllocFree fact: %s", f.Message)
		}
		if f.Analyzer == "hotpathcall" && strings.Contains(f.Message, "facttest/a.Alloc") {
			sawAlloc = true
		}
	}
	if !sawAlloc {
		t.Errorf("no hotpathcall finding for the untagged facttest/a.Alloc; findings: %+v", findings)
	}
	// b's own vetx must re-export the imported facts (transitivity) plus
	// b's own: Use and Bad are tagged, so a unit importing b could call
	// them from its hot paths.
	if len(factsData) == 0 {
		t.Fatal("facttest/b encoded no facts")
	}
}

// TestVetxOnlySkipsForeignUnits pins the stdlib gate: a dependency unit
// outside the module under analysis must be skipped without type-checking
// (GoFiles deliberately unreadable) and still write an empty vetx.
func TestVetxOnlySkipsForeignUnits(t *testing.T) {
	dir := t.TempDir()
	vetx := filepath.Join(dir, "fmt.vetx")
	cfg := &Config{
		ID:         "fmt",
		Compiler:   "gc",
		ImportPath: "fmt",
		GoFiles:    []string{filepath.Join(dir, "does-not-exist.go")},
		ModulePath: "facttest",
		VetxOnly:   true,
		VetxOutput: vetx,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fmt.cfg")
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if code := Run(path, analyzers.All()); code != 0 {
		t.Fatalf("Run exited %d on a foreign VetxOnly unit, want 0 (skip)", code)
	}
	if data, err := os.ReadFile(vetx); err != nil || len(data) != 0 {
		t.Fatalf("foreign unit vetx: err=%v, %d bytes, want empty", err, len(data))
	}
}
