// Package coldlib is the dependency side of the hotpathcall fixture: its
// tagged functions export AllocFree/ColdPath facts that example.com/hotcall
// imports through the shared fact store.
package coldlib

// Fast is allocation-free and callable from any hot path.
//
//jx:hotpath
func Fast(x int) int { return x + 1 } // want-fact AllocFree

// Slow allocates, but is a designated cold helper.
//
//jx:coldpath fixture: first-occurrence setup allocates by design
func Slow(n int) []int { return make([]int, n) } // want-fact ColdPath

// Alloc is untagged: hot paths in dependent packages may not call it.
func Alloc(n int) []int { return make([]int, n) }
