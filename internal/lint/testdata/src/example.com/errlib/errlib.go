// Package errlib is the dependency side of the errtotal fixtures: it
// declares the //jx:totalerror type whose TotalError fact importing
// units consume, and a panicking helper whose MayPanic fact must stop
// total functions from calling it.
package errlib

// BadError is the typed failure of this fixture family.
//
//jx:totalerror
type BadError struct{ Msg string } // want-fact TotalError

func (e *BadError) Error() string { return e.Msg }

// New builds a family value; its result type makes it total, and its
// body is panic-free.
func New(msg string) *BadError { return &BadError{Msg: msg} }

// Boom panics unconditionally; the exported MayPanic fact keeps total
// functions in importing packages from calling it.
func Boom() int { // want-fact MayPanic
	panic("boom")
}

// MustSize panics on failure by convention; total callers are stopped by
// the Must prefix alone, no fact needed.
func MustSize(n int) int {
	if n < 0 {
		panic("negative size")
	}
	return n
}
