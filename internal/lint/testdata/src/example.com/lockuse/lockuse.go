// Package lockuse exercises lockcheck: leak-on-path, double-lock,
// unpaired release, read-lock tracking, and the two interprocedural
// checks (self-deadlock through an imported Acquires fact, acquisition
// order inversion against the imported LockOrder fact).
package lockuse

import (
	"errors"
	"sync"

	"example.com/locklib"
)

var errShort = errors.New("short")

type counter struct {
	mu sync.Mutex
	n  int
}

// inc is the preferred shape: defer discharges every exit path.
func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// branchy releases explicitly on each path; no diagnostic.
func (c *counter) branchy(flip bool) {
	c.mu.Lock()
	if flip {
		c.n++
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
}

// maybe locks conditionally but defers the unlock inside the same branch.
func (c *counter) maybe(cond bool) int {
	if cond {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	return c.n
}

// closureCleanup releases through a deferred closure.
func (c *counter) closureCleanup() {
	c.mu.Lock()
	defer func() {
		c.n = 0
		c.mu.Unlock()
	}()
	c.n++
}

// leakOnError forgets the unlock on the early return.
func (c *counter) leakOnError(fail bool) error {
	c.mu.Lock() // want `c\.mu locked in leakOnError may still be held at return`
	if fail {
		return errShort
	}
	c.mu.Unlock()
	return nil
}

// double re-locks the mutex it already holds.
func (c *counter) double() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.mu.Lock() // want `c\.mu may already be held here \(double Lock in double\)`
}

// loopLock re-locks on the second iteration and never releases.
func (c *counter) loopLock(n int) {
	for i := 0; i < n; i++ {
		c.mu.Lock() // want `double Lock in loopLock` `may still be held at return`
	}
}

// release frees a lock this function never takes.
func (c *counter) release() {
	c.mu.Unlock() // want `Unlock of c\.mu in release has no matching Lock in this function`
}

type gauge struct {
	mu sync.RWMutex
	v  int
}

// read pairs RLock with a deferred RUnlock; the read side is tracked
// separately from the write side.
func (g *gauge) read() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

// set takes the write lock while readers are modeled independently.
func (g *gauge) set(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v = v
}

// leakRead forgets the read-side release.
func (g *gauge) leakRead() int {
	g.mu.RLock() // want `g\.mu \(read lock\) locked in leakRead may still be held at return`
	return g.v
}

// goroutineLock is an independent flow unit: the literal balances its own
// lock, and the enclosing function holds nothing.
func (c *counter) goroutineLock() {
	go func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}()
}

// syncToStore calls Put while already holding the same store's lock; the
// callee's Acquires fact crosses the package boundary.
func syncToStore(s *locklib.Store) {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	s.Put("k", 1) // want `call to Put while a example\.com/locklib\.Store\.Mu lock is held`
}

// reorder inverts locklib's established Index-before-Store order.
func reorder(s *locklib.Store, ix *locklib.Index) {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	ix.Mu.Lock() // want `acquiring example\.com/locklib\.Index\.Mu while holding example\.com/locklib\.Store\.Mu inverts the established acquisition order`
	defer ix.Mu.Unlock()
}

// a and b form an in-package order cycle: ab takes a then b, ba takes b
// then a. Each edge's reverse is reachable, so both sites report.
type regA struct{ mu sync.Mutex }

type regB struct{ mu sync.Mutex }

func ab(a *regA, b *regB) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `acquiring example\.com/lockuse\.regB\.mu while holding example\.com/lockuse\.regA\.mu inverts the established acquisition order`
	defer b.mu.Unlock()
}

func ba(a *regA, b *regB) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `acquiring example\.com/lockuse\.regA\.mu while holding example\.com/lockuse\.regB\.mu inverts the established acquisition order`
	defer a.mu.Unlock()
}
