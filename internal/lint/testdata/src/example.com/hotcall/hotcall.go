// Package hotcall exercises the hotpathcall analyzer: in-package and
// cross-package call-graph closure of //jx:hotpath, the //jx:coldpath
// escape, indirect calls, method values, and interface resolution.
package hotcall

import (
	"math/bits"
	"sync"

	"example.com/coldlib"
)

var mu sync.Mutex

// helper is untagged: hot paths may not call it.
func helper(n int) []int { return make([]int, n) }

// inner is hot and callable from hot.
//
//jx:hotpath
func inner(x int) int { return x + 1 }

// setup is a designated in-package cold helper.
//
//jx:coldpath fixture: allocation for never-before-seen structure
func setup(n int) []int { return make([]int, n) }

// badCold is missing its mandatory reason.
//
//jx:coldpath
func badCold() {} // want `//jx:coldpath directive on badCold requires a reason`

// callsHelper calls an untagged in-package function.
//
//jx:hotpath
func callsHelper(n int) []int {
	return helper(n) // want `hot-path function callsHelper calls helper`
}

// outer chains hot to hot, cold, builtins, and intrinsics.
//
//jx:hotpath
func outer(xs []int) int {
	mu.Lock()
	x := inner(len(xs))
	x += bits.OnesCount64(uint64(x))
	if xs == nil {
		x += len(setup(4))
	}
	mu.Unlock()
	return x
}

// crossOK calls a dependency function whose AllocFree fact arrived
// through the shared store.
//
//jx:hotpath
func crossOK(x int) int {
	return coldlib.Fast(x)
}

// crossCold calls a dependency cold helper (ColdPath fact).
//
//jx:hotpath
func crossCold(n int) []int {
	return coldlib.Slow(n)
}

// crossBad calls an untagged dependency function.
//
//jx:hotpath
func crossBad(n int) []int {
	return coldlib.Alloc(n) // want `hot-path function crossBad calls example.com/coldlib\.Alloc`
}

// viaParam invokes a function-typed parameter: the caller's contract.
//
//jx:hotpath
func viaParam(f func() int) int {
	return f()
}

// viaLocal invokes a local function value, which cannot be attributed.
//
//jx:hotpath
func viaLocal() int {
	f := func() int { return 1 }
	return f() // want `calls through function value f`
}

type handlers struct{ fn func() int }

// viaField invokes a function-valued struct field.
//
//jx:hotpath
func viaField(h handlers) int {
	return h.fn() // want `calls through function-valued field fn`
}

type counter struct{ n int }

func (c *counter) bump() { c.n++ }

//jx:hotpath
func (c *counter) tick() { c.n++ }

// escapeMethod lets an untagged method escape as a func value.
//
//jx:hotpath
func escapeMethod(c *counter) func() {
	return c.bump // want `takes a method value of \(\*example.com/hotcall\.counter\)\.bump`
}

// escapeHotMethod escapes a tagged method: allowed.
//
//jx:hotpath
func escapeHotMethod(c *counter) func() {
	return c.tick
}

type summer interface{ Sum(int) int }

type taggedImpl struct{}

// Sum is hot, so interface calls resolving to it are fine.
//
//jx:hotpath
func (taggedImpl) Sum(x int) int { return x }

type untaggedImpl struct{}

func (untaggedImpl) Sum(x int) int { return x * 2 }

// viaInterface calls through an interface with a mixed concrete set: the
// untagged implementation is reported.
//
//jx:hotpath
func viaInterface(s summer) int {
	return s.Sum(3) // want `concrete method \(example.com/hotcall\.untaggedImpl\)\.Sum`
}

type stringer interface{ Str() string }

// viaOpaque calls through an interface nothing in this package implements.
//
//jx:hotpath
func viaOpaque(s stringer) string {
	return s.Str() // want `calls Str through an interface with no in-package implementation`
}

// gmax is a hot generic helper.
//
//jx:hotpath
func gmax[T int | int64](a, b T) T {
	if a > b {
		return a
	}
	return b
}

// useGeneric instantiates and calls a hot generic function.
//
//jx:hotpath
func useGeneric(a, b int) int { return gmax[int](a, b) }
