package mergelawuse

import "testing"

func TestAccCombineCommutativeProperty(t *testing.T) {
	a, b := Acc{n: 1}, Acc{n: 2}
	x, y := a, b
	x.Combine(&b)
	y2 := b
	y2.Combine(&a)
	_ = y
	if x.n != y2.n {
		t.Fatal("Combine is not commutative")
	}
}

func TestAccCombineAssociativeProperty(t *testing.T) {
	mk := func() (Acc, Acc, Acc) { return Acc{n: 1}, Acc{n: 2}, Acc{n: 3} }
	a, b, c := mk()
	b.Combine(&c)
	a.Combine(&b)
	left := a.n
	a2, b2, c2 := mk()
	a2.Combine(&b2)
	a2.Combine(&c2)
	if left != a2.n {
		t.Fatal("Combine is not associative")
	}
}
