// Package mergelawuse is the mergelaw fixture: a monoid merge with no law
// tests, one fully covered by the naming convention, one opted out, and one
// method that merely shares the Merge name.
package mergelawuse

// Sketch merges without any law tests. Both laws are reported on the
// method's line.
type Sketch struct{ n int }

func (s *Sketch) Merge(o *Sketch) { s.n += o.n } // want `Sketch\.Merge is a monoid merge but package mergelawuse has no commutative-law property test` `Sketch\.Merge is a monoid merge but package mergelawuse has no associative-law property test`

// Acc has both property tests in m_test.go; no diagnostics.
type Acc struct{ n int }

func (a *Acc) Combine(o *Acc) { a.n += o.n }

// Quiet is deliberately order-sensitive and opts out.
type Quiet struct{ order []int }

//jx:lint-ignore mergelaw fold order is pinned by the single-threaded driver
func (q *Quiet) Merge(o *Quiet) { q.order = append(q.order, o.order...) }

// NotMonoid's Merge takes a non-receiver parameter; it is not the monoid
// shape and is ignored.
type NotMonoid struct{ n int }

func (n *NotMonoid) Merge(k int) { n.n += k }
