// Package taguse exercises exhausttag: full coverage, the non-strict
// rules for auto-registered enums (any default or any fall-through code
// handles the remainder; a silent end-of-function no-op reports), the
// strict rules for //jx:enum sets (cover all or fail loudly), literal-
// form coverage, in-package registration, and the malformed-directive
// report.
package taguse

import (
	"errors"

	"example.com/taglib"
)

// full covers every member; no default needed.
func full(c taglib.Color) int {
	switch c {
	case taglib.Red:
		return 1
	case taglib.Green:
		return 2
	case taglib.Blue:
		return 3
	}
	return 0
}

// partial misses a member at the end of a void function: an unhandled
// Blue silently does nothing at all.
func partial(c taglib.Color, out *int) {
	switch c { // want `switch over taglib\.Color does not cover Blue and silently falls off the end of the function; cover every member or add a default`
	case taglib.Red:
		*out = 1
	case taglib.Green:
		*out = 2
	}
}

// partialNestedTail ends an if body that ends the function; the
// fall-through is still a silent no-op.
func partialNestedTail(c taglib.Color, out *int) {
	if out != nil {
		switch c { // want `switch over taglib\.Color does not cover Blue, Green and silently falls off the end of the function; cover every member or add a default`
		case taglib.Red:
			*out = 1
		}
	}
}

// partialHandled misses members but the code after the switch is the
// shared handler for the rest — idiomatic, not a finding.
func partialHandled(c taglib.Color) int {
	switch c {
	case taglib.Red:
		return 1
	}
	return 0
}

// partialInLoop misses members inside a loop body; the loop head follows
// the switch, so nothing falls off the function.
func partialInLoop(cs []taglib.Color) int {
	n := 0
	for _, c := range cs {
		switch c {
		case taglib.Red:
			n++
		}
	}
	return n
}

// partialWithError is incomplete but fails loudly in the default.
func partialWithError(c taglib.Color) (int, error) {
	switch c {
	case taglib.Red:
		return 1, nil
	default:
		return 0, errors.New("unhandled color")
	}
}

// partialAnyDefault: on an auto-registered enum any default counts as
// handling the remainder, loud or not.
func partialAnyDefault(c taglib.Color) int {
	switch c {
	case taglib.Red:
		return 1
	default:
		return 0
	}
}

// dispatch switches on a plain byte; the member references find the
// strict set through the imported fact, and coverage is complete.
func dispatch(tag byte) (string, error) {
	switch tag {
	case taglib.SecKeys:
		return "keys", nil
	case taglib.SecTypes:
		return "types", nil
	case taglib.SecBlob:
		return "blob", nil
	}
	return "", errors.New("unknown section")
}

// dispatchShort misses SecBlob; the literal 'T' still covers SecTypes
// because coverage compares constant values. Strict sets report even
// though the fall-through returns an error — the contract is per-switch.
func dispatchShort(tag byte) (string, error) {
	switch tag { // want `switch over taglib section tags does not cover SecBlob and has no default; handle every tag or add a default returning an error`
	case taglib.SecKeys:
		return "keys", nil
	case 'T':
		return "types", nil
	}
	return "", errors.New("unknown section")
}

// dispatchBadDefault has a default that swallows unknown tags; on a
// strict set that hides wire corruption.
func dispatchBadDefault(tag byte) string {
	switch tag {
	case taglib.SecKeys:
		return "keys"
	default: // want `switch over taglib section tags does not cover SecTypes, SecBlob; the default must return an error or panic so unknown tags fail loudly`
		return ""
	}
}

// dispatchPanicDefault fails loudly by panicking; that satisfies the
// strict contract.
func dispatchPanicDefault(tag byte) string {
	switch tag {
	case taglib.SecKeys:
		return "keys"
	case taglib.SecTypes:
		return "types"
	default:
		panic("unknown section")
	}
}

// refKind registers in-package through its own constants.
type refKind int // want-fact EnumMembers

// The codec reference kinds.
const (
	refInline refKind = iota
	refShared
)

// local misses refShared but the default returns an error.
func local(k refKind) error {
	switch k {
	case refInline:
		return nil
	default:
		return errors.New("unhandled ref kind")
	}
}

// The name is missing, so the directive cannot register a set.
//
//jx:enum
const ( // want `malformed //jx:enum directive: the set needs a name \(//jx:enum <name>\)`
	opA = 1
	opB = 2
)
