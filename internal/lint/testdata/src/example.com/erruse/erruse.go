// Package erruse exercises errtotal: membership via result types,
// returned operands, the //jx:total directive, and the receiver closure;
// panic sources via panic calls, Must callees, MayPanic facts, bare type
// asserts, and unguarded indexing with its guard evidence forms.
package erruse

import "example.com/errlib"

// decode is total by result type; the len check dominates the index.
func decode(data []byte) (int, *errlib.BadError) {
	if len(data) == 0 {
		return 0, errlib.New("empty")
	}
	return int(data[0]), nil
}

// badDecode indexes with no guard on any path.
func badDecode(data []byte) (int, *errlib.BadError) {
	return int(data[0]), nil // want `badDecode must be panic-free \(typed error family\) but indexes data without a dominating length check`
}

// sum iterates the base before indexing it: range is guard evidence.
func sum(data []byte) (int, *errlib.BadError) {
	s := 0
	for i := range data {
		s += int(data[i])
	}
	return s, nil
}

// table indexes a base it just built; local provenance is guard evidence.
func table() ([]int, *errlib.BadError) {
	t := make([]int, 4)
	t[0] = 1
	return t, nil
}

// oneNode keeps the guard and the index in a single condition node.
func oneNode(data []byte) (int, *errlib.BadError) {
	if len(data) > 0 && data[0] == 'K' {
		return 1, nil
	}
	return 0, nil
}

// panicky is total by result type but panics on the negative path.
func panicky(x int) *errlib.BadError {
	if x < 0 {
		panic("negative") // want `panicky must be panic-free \(typed error family\) but panics here; return the error instead`
	}
	return nil
}

// viaReturn is declared error but returns a family value, so the operand
// rule pulls it into the total set.
func viaReturn(x int) error {
	if x < 0 {
		return errlib.New("neg")
	}
	_ = errlib.MustSize(x) // want `viaReturn must be panic-free \(typed error family\) but calls MustSize, whose Must prefix implies panic on failure`
	return nil
}

// callBoom trips over the imported MayPanic fact.
func callBoom(x int) *errlib.BadError {
	if x == errlib.Boom() { // want `callBoom must be panic-free \(typed error family\) but calls Boom, which may panic`
		return errlib.New("boom value")
	}
	return nil
}

// widen uses the comma-ok form; no diagnostic.
func widen(v any) (int, *errlib.BadError) {
	n, ok := v.(int)
	if !ok {
		return 0, errlib.New("not int")
	}
	return n, nil
}

// widenBad asserts in the single-value form.
func widenBad(v any) (int, *errlib.BadError) {
	return v.(int), nil // want `widenBad must be panic-free \(typed error family\) but type-asserts without the comma-ok form; a mismatch panics`
}

// reset opts in via the directive even though its signature is erased to
// a plain error.
//
//jx:total
func reset(xs []int) error {
	xs[0] = 0 // want `reset must be panic-free \(typed error family\) but indexes xs without a dominating length check`
	return nil
}

// decoder's errf seeds the receiver closure: every method shares the
// panic-free contract.
type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) errf(msg string) *errlib.BadError { return errlib.New(msg) }

// next guards with the eof check before indexing; no diagnostic.
func (d *decoder) next() (byte, error) {
	if d.pos >= len(d.data) {
		return 0, d.errf("eof")
	}
	b := d.data[d.pos]
	d.pos++
	return b, nil
}

// step indexes without the eof check; the closure rule holds it to the
// contract even though its own signature is a plain error.
func (d *decoder) step() error {
	b := d.data[d.pos] // want `step must be panic-free \(typed error family\) but indexes d\.data without a dominating length check`
	d.pos += int(b)
	return nil
}

// Grow is exported builder API with no error result; the receiver
// closure leaves it outside the total set, so its precondition assert
// and unguarded indexing are its documented contract, not findings.
func (d *decoder) Grow(n int) {
	if n < 0 {
		panic("negative size")
	}
	d.data = append(d.data, make([]byte, n)...)
	d.data[0] = 1
}

// helper is outside the total set: its panic sources are not reported.
func helper(data []byte) int {
	return int(data[0])
}
