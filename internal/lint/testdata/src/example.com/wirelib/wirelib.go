// Package wirelib is the dependency half of the decodebound fixtures:
// decode helpers whose facts — TaintedResult, TaintedParam,
// BoundedResult — the example.com/decodeuse package imports across the
// package boundary.
package wirelib

import "encoding/binary"

// ReadCount hands the raw varint straight to the caller: its first
// result carries wire taint out.
func ReadCount(data []byte) (uint64, int) { // want-fact TaintedResult
	v, n := binary.Uvarint(data)
	return v, n
}

// Alloc sizes a slice from its parameter with no guard, so parameter 0
// is a sink at every call site.
func Alloc(n int) []byte { // want-fact TaintedParam
	return make([]byte, n)
}

// BoundedCount validates the count against the remaining input before
// returning it: wire input read, nothing tainted escapes — the positive
// proof.
func BoundedCount(data []byte) (uint64, bool) { // want-fact BoundedResult
	v, n := binary.Uvarint(data)
	if n <= 0 || v > uint64(len(data)-n) {
		return 0, false
	}
	return v, true
}
