// Package concuse exercises the conccheck analyzer: the //jx:pool gate on
// go statements, the result-writing discipline inside spawned closures,
// and the WaitGroup Add/Done pairing rules.
package concuse

import "sync"

// rogue spawns a goroutine outside any pool helper.
func rogue() {
	go func() {}() // want `go statement in rogue, which is not a //jx:pool helper`
}

// Fan is the canonical pool shape: index-disjoint stores, deferred Done.
//
//jx:pool fixture: workers write out[i] disjointly; Add pairs with deferred Done
func Fan(xs []int) []int {
	out := make([]int, len(xs))
	var wg sync.WaitGroup
	for i, x := range xs {
		wg.Add(1)
		go func(i, x int) {
			defer wg.Done()
			out[i] = x * 2
		}(i, x)
	}
	wg.Wait()
	return out
}

// ChanFan returns results over a channel instead: also sanctioned.
//
//jx:pool fixture: results flow through a buffered channel
func ChanFan(xs []int) []int {
	ch := make(chan int, len(xs))
	for _, x := range xs {
		go func(x int) { ch <- x * 2 }(x)
	}
	out := make([]int, 0, len(xs))
	for range xs {
		out = append(out, <-ch)
	}
	return out
}

// badShared violates the closure discipline in every way at once.
//
//jx:pool fixture: demonstrates shared-write violations
func badShared(xs []int) (int, []int) {
	var sum int
	var count int
	var all []int
	seen := map[int]bool{}
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x int) {
			defer wg.Done()
			sum += x             // want `assigns captured variable sum`
			count++              // want `increments captured variable count`
			all = append(all, x) // want `assigns captured variable all` `appends to captured slice all`
			seen[x] = true       // want `writes captured map seen`
		}(x)
	}
	wg.Wait()
	return sum + count, all
}

// badDone calls Done without defer, so a panic would deadlock Wait.
//
//jx:pool fixture: demonstrates WaitGroup misuse
func badDone(ch chan int, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1) // want `wg\.Add in pool function badDone has no deferred wg\.Done`
		go func() {
			ch <- 1
			wg.Done() // want `wg\.Done in pool function badDone is not deferred`
		}()
	}
	wg.Wait()
}

// notAPool carries the tag but spawns nothing.
//
//jx:pool fixture: mistakenly tagged
func notAPool() {} // want `//jx:pool function notAPool spawns no goroutine; the directive is stale`

//jx:pool
func noReason() { // want `//jx:pool directive on noReason requires a reason`
	go func() {}()
}
