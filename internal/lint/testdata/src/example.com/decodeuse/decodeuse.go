// Package decodeuse exercises decodebound: varint and fixed-width
// sources, byte-read sources, allocation and loop-bound sinks, the
// comparison and min-clamp sanitizers, cross-function taint through
// facts, and the suggested clamp fix.
package decodeuse

import (
	"encoding/binary"

	"example.com/wirelib"
)

type item struct{ key string }

// decodeItems reads a count and sizes the allocation raw: the sink line
// gets the diagnostic and the clamp-template fix.
func decodeItems(data []byte) []item {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil
	}
	items := make([]item, n) // want `allocation size n derives from wire input without a dominating capacity guard` // want-fix `clamp n to the source buffer length above the sink \+"\\tn = min\(n, uint64\(len\(data\)\)\) // jxlint\(decodebound\): clamp template; tighten to the true remaining-input capacity\\n"`
	for i := range items {
		items[i] = item{key: "k"}
	}
	return items
}

// decodeKeys guards the count against the remaining input first: clean,
// and the function earns the positive proof.
func decodeKeys(data []byte) []string { // want-fact BoundedResult
	n, sz := binary.Uvarint(data)
	if sz <= 0 || n > uint64(len(data)) {
		return nil
	}
	return make([]string, n)
}

// decodeClamped uses the exact rewrite the fix engine inserts: the
// min-assignment sanitizes n, so applying the fix resolves the
// diagnostic and -fix is idempotent.
func decodeClamped(data []byte) []byte { // want-fact BoundedResult
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil
	}
	n = min(n, uint64(len(data)))
	return make([]byte, n)
}

// sumN bounds a loop by the raw count.
func sumN(data []byte) uint64 {
	n, _ := binary.Uvarint(data)
	var total uint64
	for i := uint64(0); i < n; i++ { // want `loop bound n derives from wire input without a dominating capacity guard`
		total += i
	}
	return total
}

// visitAll ranges over the raw count.
func visitAll(data []byte) int {
	n, _ := binary.Uvarint(data)
	c := 0
	for range int(n) { // want `range count n derives from wire input without a dominating capacity guard`
		c++
	}
	return c
}

// header taints k through a direct byte read; the fix clamps with the
// plain-int spelling.
func header(data []byte) []uint32 {
	if len(data) == 0 {
		return nil
	}
	k := int(data[0])
	vals := make([]uint32, k) // want `allocation size k derives from wire input without a dominating capacity guard` // want-fix `clamp k to the source buffer length above the sink \+"\\tk = min\(k, len\(data\)\)`
	return vals
}

// readLen taints n through a fixed-width read.
func readLen(b []byte) []byte {
	if len(b) < 4 {
		return nil
	}
	n := binary.BigEndian.Uint32(b)
	return make([]byte, n) // want `allocation size n derives from wire input without a dominating capacity guard`
}

// readAndAlloc gets its count through the wirelib helper: the
// TaintedResult fact carries the taint across the package boundary.
func readAndAlloc(data []byte) []byte {
	v, _ := wirelib.ReadCount(data)
	return make([]byte, v) // want `allocation size v derives from wire input without a dominating capacity guard`
}

// allocRemote reaches wirelib.Alloc's internal sink: the TaintedParam
// fact makes it visible at the call site.
func allocRemote(data []byte) []byte {
	v, _ := wirelib.ReadCount(data)
	return wirelib.Alloc(int(v)) // want `unguarded wire-derived value v passed to Alloc, which uses parameter 0 as an allocation size or loop bound`
}

// decoder mirrors core/wire.go's sketchDecoder shape.
type decoder struct {
	data []byte
	pos  int
}

// uvarint validates the varint width but hands the decoded value out
// raw, so its first result carries taint to every caller.
func (d *decoder) uvarint() (uint64, bool) { // want-fact TaintedResult
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, false
	}
	d.pos += n
	return v, true
}

// decodeEntries is the guard-deleted decoder: wire.go keeps a
// `count > uint64(len(d.data)-d.pos)` check here, and with it removed
// the count sizes the allocation raw.
func (d *decoder) decodeEntries() ([]string, bool) {
	count, ok := d.uvarint()
	if !ok {
		return nil, false
	}
	out := make([]string, 0, count) // want `allocation size count derives from wire input without a dominating capacity guard`
	for len(out) < cap(out) {
		out = append(out, "entry")
	}
	return out, true
}
