// Package plainpkg sits outside detorder's synthesis-package gate: the
// map-range append below would be flagged in a gated package, and must not
// be here.
package plainpkg

func collect(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

var _ = collect
