// Package mergepureuse exercises mergepure: package-state writes,
// non-deterministic sources (direct, transitive, and %p formatting),
// map-order leaks, operand mutation and adoption, the consuming and
// immutable carve-outs, and the tag-suggestion fix for unexported
// merge-shaped methods.
package mergepureuse

import (
	"fmt"
	"math/rand"
	"time"
)

// Sym is interned and never mutated after construction.
//
//jx:immutable
type Sym struct{ name string } // want-fact Immutable

var global int

// Counter merges order-insensitively and shares only immutable
// pointers: clean.
type Counter struct {
	counts map[string]int
	total  int
	sym    *Sym
}

// Merge folds counts; the map-order fold is commutative and the *Sym
// adoption is exempt via //jx:immutable.
func (c *Counter) Merge(other *Counter) {
	for k, v := range other.counts {
		c.counts[k] += v
	}
	c.total += other.total
	c.sym = other.sym
}

// PState writes package state.
type PState struct{ n int }

// Merge bumps a global.
func (p *PState) Merge(other *PState) {
	global++ // want `monoid merge writes package state global`
	p.n += other.n
}

// NDet consults math/rand.
type NDet struct{ n int }

// Combine flips a random coin.
func (d *NDet) Combine(other *NDet) {
	if rand.Int()%2 == 0 { // want `monoid merge calls non-deterministic math/rand\.Int`
		d.n += other.n
	}
}

// PFmt formats a pointer address.
type PFmt struct{ id string }

// Merge bakes an address into the result.
func (k *PFmt) Merge(other *PFmt) {
	k.id = fmt.Sprintf("%p", other) // want `monoid merge calls non-deterministic fmt\.Sprintf with %p`
}

// stamp reaches time.Now, so callers inherit the taint.
func stamp() int { // want-fact Nondet
	return int(time.Now().UnixNano())
}

// TStamp goes non-deterministic one call deep.
type TStamp struct{ n int }

// Merge calls the tainted helper.
func (t *TStamp) Merge(other *TStamp) {
	t.n = stamp() + other.n // want `monoid merge calls non-deterministic example.com/mergepureuse\.stamp`
}

// Mut guts its operand without declaring consumption.
type Mut struct{ n int }

// Merge zeroes the operand the caller still holds.
func (m *Mut) Merge(other *Mut) {
	m.n += other.n
	other.n = 0 // want `monoid merge mutates its operand through other\.n; the caller's sibling subtree still holds it \(tag //jx:monoid consuming if ownership transfer is intended\)`
}

// Mut2 mutates through a callee instead.
type Mut2 struct{ n int }

// reset writes through its receiver.
func (m *Mut2) reset() { // want-fact MutatesParam
	m.n = 0
}

// Merge hands the operand to the mutating method.
func (m *Mut2) Merge(other *Mut2) {
	m.n += other.n
	other.reset() // want `monoid merge passes its operand to reset, which mutates it \(tag //jx:monoid consuming if ownership transfer is intended\)`
}

// Adopt aliases its operand's buffer.
type Adopt struct{ buf []byte }

// Merge keeps a live reference into the operand.
func (a *Adopt) Merge(other *Adopt) {
	a.buf = other.buf // want `monoid merge adopts the mutable reference other\.buf from its operand; mutating the merged receiver later would corrupt the operand too \(copy it, or tag //jx:monoid consuming\)`
}

// Ord builds ordered output from an unordered map.
type Ord struct {
	m     map[string]int
	names []string
	sig   string
}

// Merge leaks iteration order twice.
func (o *Ord) Merge(other *Ord) {
	for k := range other.m {
		o.names = append(o.names, k) // want `monoid merge appends in map iteration order; ordered output from an unordered map differs run to run`
	}
	for k := range other.m {
		o.sig += k // want `monoid merge concatenates strings in map iteration order; ordered output from an unordered map differs run to run`
	}
}

// Pool demonstrates the consuming flavor and the tag suggestion.
type Pool struct {
	items []string
	n     int
}

// absorb owns its operand outright: adoption and mutation are the
// declared protocol.
//
//jx:monoid consuming
func (a *Pool) absorb(other *Pool) {
	a.items = other.items
	other.items = nil
	a.n += other.n
}

func (p *Pool) combineShared(other *Pool) { // want `Pool\.combineShared has the monoid merge shape; tag it //jx:monoid \(or //jx:monoid consuming\) so its purity is checked` // want-fix `tag the method //jx:monoid \+"//jx:monoid\\n"`
	p.n += other.n
}

// add is tagged but does not have the monoid shape.
//
//jx:monoid
func (p *Pool) add(x int) { // want `//jx:monoid on Pool\.add has no effect: a monoid merge takes exactly one parameter of the receiver type`
	p.n += x
}

// keep the helpers alive for the type checker.
var _ = func() {
	p := &Pool{}
	p.absorb(&Pool{})
	p.combineShared(&Pool{})
	p.add(1)
}
