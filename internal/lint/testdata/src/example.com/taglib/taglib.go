// Package taglib is the dependency side of the exhausttag fixtures: a
// named integer enum that registers automatically, and a //jx:enum byte
// group modeled on the wire section tags. Importing switches are checked
// against both via the exported EnumMembers facts.
package taglib

// Color is a named integer enum; its constants register it.
type Color uint8 // want-fact EnumMembers

// The color constants.
const (
	Red Color = iota
	Green
	Blue
)

// The section tags share plain byte values, so only the directive ties
// them into a set.
//
//jx:enum taglib section tags
const (
	SecKeys  byte = 'K' // want-fact EnumMembers
	SecTypes byte = 'T' // want-fact EnumMembers
	SecBlob  byte = 'S' // want-fact EnumMembers
)
