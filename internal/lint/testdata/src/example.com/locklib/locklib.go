// Package locklib is the dependency side of the lockcheck fixtures: its
// functions export Acquires facts, and its two-lock function seeds the
// package LockOrder fact (Index.Mu before Store.Mu) that the importing
// fixture inverts.
package locklib

import "sync"

// Store guards a map with an exported mutex so the importing fixture can
// lock it directly.
type Store struct {
	Mu   sync.Mutex
	data map[string]int
}

// Put acquires the store lock; the fact makes the acquisition visible to
// importing units.
func (s *Store) Put(k string, v int) { // want-fact Acquires
	s.Mu.Lock()
	defer s.Mu.Unlock()
	if s.data == nil {
		s.data = map[string]int{}
	}
	s.data[k] = v
}

// Index is a second lock type so an acquisition order exists.
type Index struct {
	Mu   sync.Mutex
	keys []string
}

// Rebuild establishes the package's order: Index.Mu before Store.Mu.
func (ix *Index) Rebuild(s *Store) { // want-fact Acquires
	ix.Mu.Lock()
	defer ix.Mu.Unlock()
	s.Mu.Lock()
	defer s.Mu.Unlock()
	ix.keys = ix.keys[:0]
	for k := range s.data {
		ix.keys = append(ix.keys, k)
	}
}

// Size acquires through a callee only; the Acquires closure must carry
// Put's lock up to it.
func (s *Store) Size() int { // want-fact Acquires
	s.Put("", 0)
	s.Mu.Lock()
	defer s.Mu.Unlock()
	return len(s.data)
}
