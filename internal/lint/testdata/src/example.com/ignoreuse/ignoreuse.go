// Package ignoreuse exercises the ignoreaudit analyzer: a directive that
// suppresses a live diagnostic is fine, a directive that suppresses
// nothing is itself reported at its own position.
package ignoreuse

import "fmt"

// hotFmt keeps a justified suppression: the fmt reference and the boxing
// of v below are real hotpathalloc diagnostics it silences.
//
//jx:hotpath
func hotFmt(v int) string {
	//jx:lint-ignore hotpathalloc fixture: exercises a used directive
	return fmt.Sprint(v)
}

// coolFmt is not hot, so its directive suppresses nothing.
func coolFmt(v int) string {
	//jx:lint-ignore hotpathalloc fixture: exercises a stale directive // want `ignore directive for hotpathalloc suppresses no diagnostic` // want-fix `delete the stale //jx:lint-ignore directive -"\\t//jx:lint-ignore hotpathalloc fixture: exercises a stale directive`
	return fmt.Sprint(v)
}

// otherAnalyzer names an analyzer that is not part of this run; the audit
// leaves it for a run where that analyzer is active.
func otherAnalyzer(v int) string {
	//jx:lint-ignore detorder fixture: analyzer not in this suite
	return fmt.Sprint(v)
}

// tabbedDirective separates the fields with tabs and runs of spaces; the
// directive must still parse and suppress, exactly as its single-space
// form would.
//
//jx:hotpath
func tabbedDirective(v int) string {
	//jx:lint-ignore	hotpathalloc 	 fixture: tab-separated directive still parses
	return fmt.Sprint(v)
}

// tabbedStale proves the audit echoes the canonical single-space form,
// not the raw tab-ridden text.
func tabbedStale(v int) string {
	//jx:lint-ignore	hotpathalloc		fixture: tabs collapse // want `delete "//jx:lint-ignore hotpathalloc fixture: tabs collapse` // want-fix `delete the stale //jx:lint-ignore directive -"\\t//jx:lint-ignore\\thotpathalloc\\t\\tfixture: tabs collapse`
	return fmt.Sprint(v)
}

// trailingStale hangs the directive off the end of the offending line:
// the deletion fix must remove only the comment span (the -"..." below
// starts at //jx:, not at the line's leading tab), leaving the code on
// the line intact.
func trailingStale(v int) string {
	return fmt.Sprint(v) //jx:lint-ignore hotpathalloc fixture: trailing stale directive // want `ignore directive for hotpathalloc suppresses no diagnostic` // want-fix `delete the stale //jx:lint-ignore directive -"//jx:lint-ignore hotpathalloc fixture: trailing stale directive`
}

// lookalike is prose that happens to share the directive prefix as a
// substring; it is not a directive and must not report as malformed.
func lookalike(v int) string {
	//jx:lint-ignores are audited, so this comment is plain prose
	return fmt.Sprint(v)
}
