// Package interncheckuse is the interncheck fixture: a consumer of the
// fixture jsontype package committing every category of interner violation,
// alongside the legal forms.
package interncheckuse

import (
	"reflect"

	"example.com/internal/jsontype"
)

func fresh() *jsontype.Type {
	return &jsontype.Type{} // want `composite literal bypasses the interner`
}

func freshNew() *jsontype.Type {
	return new(jsontype.Type) // want `new\(jsontype\.Type\) bypasses the interner`
}

var byPointer map[*jsontype.Type]int // want `map keyed on jsontype\.Type`

var byValue map[jsontype.Type]int // want `map keyed on jsontype\.Type`

func deepEq(a, b *jsontype.Type) bool {
	return reflect.DeepEqual(a, b) // want `reflect\.DeepEqual on jsontype\.Type`
}

func deepEqSlices(a, b []*jsontype.Type) bool {
	return reflect.DeepEqual(a, b) // want `reflect\.DeepEqual on jsontype\.Type`
}

func valueEq(a, b jsontype.Type) bool {
	return a == b // want `struct comparison of jsontype\.Type`
}

// ptrEq is the legal equality: pointer identity.
func ptrEq(a, b *jsontype.Type) bool {
	return a == b
}

// keyed is the legal map shape: dense intern ids.
func keyed(m map[uint64]*jsontype.Type, t *jsontype.Type) *jsontype.Type {
	return m[t.ID()]
}

// deepEqInts never reaches a Type; DeepEqual is fine.
func deepEqInts(a, b []int) bool {
	return reflect.DeepEqual(a, b)
}

// scratch shows the escape hatch: the zero value is used as a sentinel and
// never escapes un-interned.
//
//jx:lint-ignore interncheck zero-value sentinel, never escapes un-interned
var scratch = jsontype.Type{}

var _ = scratch
var _ = byPointer
var _ = byValue
var _, _, _, _, _, _ = fresh, freshNew, deepEq, deepEqSlices, valueEq, ptrEq
var _, _ = keyed, deepEqInts
