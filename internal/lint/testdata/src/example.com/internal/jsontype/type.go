// Package jsontype is a fixture standing in for jxplain's
// internal/jsontype: interncheck identifies the owning package by import
// path suffix, so this miniature Type exercises the analyzer without
// importing the real interner.
package jsontype

// Kind discriminates the fixture's type kinds.
type Kind uint8

// Type mirrors the interned node: built only by the owning package,
// compared by pointer identity, keyed by its dense ID.
type Type struct {
	kind Kind
	id   uint64
}

// ID returns the dense intern id.
func (t *Type) ID() uint64 { return t.id }

// NewPrimitive is the fixture's constructor; composite literals inside the
// owning package are legal.
func NewPrimitive(k Kind) *Type { return &Type{kind: k} }
