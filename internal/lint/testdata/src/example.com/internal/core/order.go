// Package core is the detorder fixture: its import path ends in
// internal/core, so it falls inside the analyzer's synthesis-package gate.
package core

import "sort"

func bad(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m { // want `map iteration order flows into slice "out"`
		out = append(out, v)
	}
	return out
}

// sorted is the canonical deterministic shape: collect keys, sort, walk.
func sorted(m map[string]float64) []float64 {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]float64, 0, len(m))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// counts has no slice sink; a commutative sum cannot leak map order.
func counts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// localOnly appends to a slice that dies inside the loop body.
func localOnly(m map[string]int) int {
	for range m {
		var tmp []int
		tmp = append(tmp, 1)
		_ = tmp
	}
	return len(m)
}

// insensitive leaks order into vals but reduces with max; the escape hatch
// records why that is sound.
func insensitive(m map[string]float64) float64 {
	var vals []float64
	//jx:lint-ignore detorder consumer reduces vals with a commutative max
	for _, v := range m {
		vals = append(vals, v)
	}
	best := 0.0
	for _, v := range vals {
		if v > best {
			best = v
		}
	}
	return best
}

var _, _, _, _, _ = bad, sorted, counts, localOnly, insensitive
