// Package hotuse is the hotpathalloc fixture: tagged functions committing
// the forbidden allocations, the non-escaping forms the compiler elides,
// and the escape hatch.
package hotuse

import (
	"encoding/json"
	"fmt"
)

var cache = map[string]int{}

//jx:hotpath
func badFmt(v int) string {
	return fmt.Sprintf("%d", v) // want `references fmt` `boxes int into any`
}

//jx:hotpath
func badExplicitBox(v [2]int) any {
	return any(v) // want `boxes \[2\]int into any`
}

//jx:hotpath
func badAssignBox(v []byte) (out any) {
	out = v // want `boxes \[\]byte into any`
	return out
}

//jx:hotpath
func badReturnBox(s string) any {
	return s // want `boxes string into any`
}

//jx:hotpath
func badDeclBox(v uint64) int {
	var x any = v // want `boxes uint64 into any`
	_ = x
	return 0
}

// okBoxes: constants are materialized statically, pointer-shaped values
// fit in the interface word, interfaces pass through, and spread calls
// forward the slice without boxing elements.
//
//jx:hotpath
func okBoxes(p *int, e error, args []any) []any {
	var x any = 42
	var y any = p
	var z any = e
	f := func(vs ...any) int { return len(vs) }
	f(args...)
	return []any{x, y, z}
}

//jx:hotpath
func badJSON(b []byte) error {
	var v any
	return json.Unmarshal(b, &v) // want `references encoding/json`
}

//jx:hotpath
func badEscape(b []byte) string {
	return string(b) // want `string\(bytes\) conversion escapes`
}

//jx:hotpath
func badMapWrite(b []byte, v int) {
	cache[string(b)] = v // want `string\(bytes\) conversion escapes`
}

// okCompare: comparison operands do not escape.
//
//jx:hotpath
func okCompare(b []byte) bool {
	return string(b) == "null"
}

// okMapRead: a map-read index does not escape.
//
//jx:hotpath
func okMapRead(b []byte) int {
	return cache[string(b)]
}

// coldFmt is untagged; the discipline is opt-in.
func coldFmt(v int) string {
	return fmt.Sprintf("%d", v)
}

//jx:hotpath
func tolerated(b []byte) string {
	//jx:lint-ignore hotpathalloc boot-time configuration parse, runs once
	return string(b)
}

var _, _, _, _ = badFmt, badJSON, badEscape, coldFmt
var _, _, _ = okCompare, okMapRead, tolerated
var _ = badMapWrite
