package lockcheck_test

import (
	"testing"

	"jxplain/internal/lint/analyzers/lockcheck"
	"jxplain/internal/lint/checktest"
)

func TestLockcheck(t *testing.T) {
	checktest.Run(t, "../../testdata/src", "example.com/lockuse", lockcheck.Analyzer)
}
