// Package lockcheck enforces the lock discipline the resident service and
// the parallel reducers depend on: a critical section that leaks its
// mutex on one early return, double-locks its own receiver, or acquires
// two locks in inconsistent order works under light tests and deadlocks
// (or corrupts a sketch) under the heavy-traffic scenario ROADMAP item 2
// targets. The checks are dataflow over the jxanalysis/cfg graph, not
// syntax: facts flow through branches, loops, and defers.
//
// Per function (and per function literal), a forward may-analysis tracks
// the set of held locks, keyed by the lexical rendering of the receiver
// ("mu", "s.mu"):
//
//   - a Lock whose receiver may already be held is a double-lock report;
//   - a lock still held on some path into the function exit — and not
//     released by a defer registered on that path — is a leak report at
//     the Lock site (defer-unlock immediately after Lock is the preferred
//     shape, since it discharges every current and future exit path);
//   - an Unlock of a receiver the function never locks is reported, since
//     the pairing cannot be checked (lock helpers that release a caller's
//     lock need an ignore directive with their justification).
//
// Interprocedural reach rides the facts layer: every function exports the
// type-level lock identities it may acquire — directly or through its
// callees' Acquires facts — and two cross-function checks consume them:
// calling a function that acquires a lock type currently held is a
// possible self-deadlock, and the before→after pairs observed while two
// locks are held feed a package-level LockOrder fact whose transitive
// union must stay acyclic, so a consistent acquisition order is enforced
// before jxserve's sharded locks arrive.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"jxplain/internal/lint/jxanalysis"
	"jxplain/internal/lint/jxanalysis/cfg"
)

// Acquires is the object fact carried by any function that may acquire a
// mutex: the sorted type-level identities ("pkg/path.T.mu" for a field,
// "pkg/path.mu" for a package-level var) of every lock it locks directly
// or through a callee with an Acquires fact.
type Acquires struct{ Locks []string }

// AFact marks Acquires as a fact type.
func (*Acquires) AFact() {}

// LockOrder is the package fact accumulating observed acquisition order:
// an edge A→B records that some function acquired B while holding A. The
// union over a unit and its dependencies must stay acyclic.
type LockOrder struct{ Edges [][2]string }

// AFact marks LockOrder as a fact type.
func (*LockOrder) AFact() {}

// Analyzer is the lockcheck pass.
var Analyzer = &jxanalysis.Analyzer{
	Name:      "lockcheck",
	Doc:       "every Lock released on all exit paths (defer preferred), no double-lock, consistent cross-package acquisition order via Acquires/LockOrder facts",
	Run:       run,
	FactTypes: []jxanalysis.Fact{new(Acquires), new(LockOrder)},
}

// lockOp is one mutex method call found in a leaf node.
type lockOp struct {
	call   *ast.CallExpr
	key    string // lexical receiver rendering, "#r" suffix for read locks
	typeID string // type-level identity, "" when the receiver is a local
	method string // Lock, Unlock, RLock, RUnlock
}

// heldInfo describes one may-held lock.
type heldInfo struct {
	pos      token.Pos // the Lock site, for leak reports
	typeID   string
	deferred bool // an unlock for this key was deferred after the Lock
}

// state is the dataflow fact: may-held locks plus the must-set of keys
// with a deferred unlock registered.
type state struct {
	held     map[string]heldInfo
	deferReg map[string]bool
}

func (s state) clone() state {
	c := state{held: make(map[string]heldInfo, len(s.held)), deferReg: make(map[string]bool, len(s.deferReg))}
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferReg {
		c.deferReg[k] = true
	}
	return c
}

func join(a, b state) state {
	j := state{held: map[string]heldInfo{}, deferReg: map[string]bool{}}
	for k, av := range a.held {
		if bv, ok := b.held[k]; ok {
			// Held on both paths: released only if deferred on both; keep
			// the earlier Lock site for a deterministic report position.
			pos := av.pos
			if bv.pos < pos {
				pos = bv.pos
			}
			j.held[k] = heldInfo{pos: pos, typeID: av.typeID, deferred: av.deferred && bv.deferred}
		} else {
			j.held[k] = av
		}
	}
	for k, bv := range b.held {
		if _, ok := a.held[k]; !ok {
			j.held[k] = bv
		}
	}
	for k := range a.deferReg {
		if b.deferReg[k] {
			j.deferReg[k] = true
		}
	}
	return j
}

func equal(a, b state) bool {
	if len(a.held) != len(b.held) || len(a.deferReg) != len(b.deferReg) {
		return false
	}
	for k, av := range a.held {
		bv, ok := b.held[k]
		if !ok || av != bv {
			return false
		}
	}
	for k := range a.deferReg {
		if !b.deferReg[k] {
			return false
		}
	}
	return true
}

// funcUnit is one flow unit under analysis: a declaration or a literal.
type funcUnit struct {
	name string
	body *ast.BlockStmt
	decl *ast.FuncDecl // nil for literals
}

func run(pass *jxanalysis.Pass) error {
	c := &checker{pass: pass, direct: map[*types.Func][]string{}, calls: map[*types.Func][]*types.Func{}}
	for _, f := range pass.Files {
		if file := pass.Fset.File(f.Pos()); file != nil && strings.HasSuffix(file.Name(), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkUnit(funcUnit{name: fd.Name.Name, body: fd.Body, decl: fd})
			// Literals get their own flow graphs: a goroutine body or a
			// stored closure is not part of the enclosing sequential flow.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && !isDeferredCleanup(fd.Body, lit) {
					c.checkUnit(funcUnit{name: fd.Name.Name + " (func literal)", body: lit.Body})
				}
				return true
			})
		}
	}
	c.exportFacts()
	c.checkOrder()
	return nil
}

// isDeferredCleanup reports whether lit is the immediate operand of a
// defer statement somewhere in body — `defer func() { mu.Unlock() }()`
// releases the enclosing function's lock, so analyzing it as an
// independent unit would misreport an unpaired Unlock.
func isDeferredCleanup(body *ast.BlockStmt, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && ast.Unparen(d.Call.Fun) == ast.Expr(lit) {
			found = true
		}
		return !found
	})
	return found
}

type checker struct {
	pass   *jxanalysis.Pass
	direct map[*types.Func][]string      // function → lock type ids acquired in its body
	calls  map[*types.Func][]*types.Func // function → statically resolved callees
	// edges observed in this package, with the position that created each
	// (first occurrence wins, for deterministic reports).
	edges    [][2]string
	edgePos  map[[2]string]token.Pos
	edgeSeen map[[2]string]bool
}

// checkUnit runs the dataflow over one function body and reports its
// violations.
func (c *checker) checkUnit(u funcUnit) {
	g := cfg.New(u.body)
	transfer := func(b *cfg.Block, in state) state {
		out := in.clone()
		for _, n := range b.Nodes {
			c.applyNode(n, &out, nil)
		}
		return out
	}
	res := cfg.Forward(g, cfg.Problem[state]{
		Entry:    state{held: map[string]heldInfo{}, deferReg: map[string]bool{}},
		Join:     join,
		Equal:    equal,
		Transfer: transfer,
	})

	// Report pass: re-fold each reached block from its in-fact, with the
	// running state visible at every node.
	var obj *types.Func
	if u.decl != nil {
		obj, _ = c.pass.TypesInfo.Defs[u.decl.Name].(*types.Func)
	}
	everLocked := c.lockedKeys(u.body)
	reported := map[string]bool{} // dedupe per key per unit
	for _, b := range g.Blocks {
		if !res.Reached[b.Index] {
			continue
		}
		st := res.In[b.Index].clone()
		for _, n := range b.Nodes {
			c.applyNode(n, &st, func(op lockOp, before state) {
				c.reportOp(u, op, before, everLocked, reported)
			})
			c.checkCalls(u, n, &st, obj)
		}
	}

	// Leak check at the normal exit. The panic exit is exempt: deferred
	// cleanup still runs there, and a panicking path is already outside
	// the lock contract.
	if res.Reached[g.Exit.Index] {
		in := res.In[g.Exit.Index]
		keys := sortedKeys(in.held)
		for _, k := range keys {
			h := in.held[k]
			if h.deferred || in.deferReg[k] {
				continue
			}
			c.pass.Reportf(h.pos, "%s locked in %s may still be held at return; unlock on every path or defer the unlock", displayKey(k), u.name)
		}
	}

	if obj != nil {
		// Only synchronous flow feeds the Acquires fact: a lock taken
		// inside a goroutine or stored closure does not deadlock a caller
		// holding the same lock type.
		ids := map[string]bool{}
		var callees []*types.Func
		ast.Inspect(u.body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if op, ok := c.lockMethod(n); ok {
					if op.typeID != "" && (op.method == "Lock" || op.method == "RLock") {
						ids[op.typeID] = true
					}
					return true
				}
				if fn := c.calleeFunc(n); fn != nil {
					callees = append(callees, fn)
				}
			}
			return true
		})
		c.direct[obj] = setToSorted(ids)
		c.calls[obj] = callees
	}
}

// applyNode folds one leaf node into the state. report, when non-nil, is
// invoked for every lock op with the state *before* the op.
func (c *checker) applyNode(n ast.Node, st *state, report func(lockOp, state)) {
	// Defer statements register exit-time releases.
	if d, ok := n.(*ast.DeferStmt); ok {
		for _, op := range c.deferredUnlocks(d) {
			st.deferReg[op.key] = true
			if h, held := st.held[op.key]; held {
				h.deferred = true
				st.held[op.key] = h
			}
		}
		return
	}
	for _, op := range c.lockOps(n) {
		if report != nil {
			report(op, st.clone())
		}
		switch op.method {
		case "Lock", "RLock":
			st.held[op.key] = heldInfo{pos: op.call.Pos(), typeID: op.typeID, deferred: st.deferReg[op.key]}
		case "Unlock", "RUnlock":
			delete(st.held, op.key)
		}
	}
}

// reportOp emits the per-site diagnostics for one lock operation.
func (c *checker) reportOp(u funcUnit, op lockOp, before state, everLocked map[string]bool, reported map[string]bool) {
	switch op.method {
	case "Lock":
		if _, held := before.held[op.key]; held && !reported["dbl:"+op.key] {
			reported["dbl:"+op.key] = true
			c.pass.Reportf(op.call.Pos(), "%s may already be held here (double Lock in %s); a second Lock on the same mutex deadlocks", displayKey(op.key), u.name)
		}
	case "Unlock", "RUnlock":
		if !everLocked[op.key] && !reported["unl:"+op.key] {
			reported["unl:"+op.key] = true
			lock := strings.TrimSuffix(op.method, "Unlock") + "Lock"
			c.pass.Reportf(op.call.Pos(), "%s of %s in %s has no matching %s in this function; releasing a caller's lock hides the pairing from analysis", op.method, displayKey(op.key), u.name, lock)
		}
	}
}

// checkCalls applies the interprocedural checks at call sites inside one
// leaf node: self-deadlock through a callee's Acquires fact, and
// acquisition-order edges for the LockOrder fact.
func (c *checker) checkCalls(u funcUnit, n ast.Node, st *state, self *types.Func) {
	heldIDs := func() []string {
		ids := map[string]bool{}
		for _, h := range st.held {
			if h.typeID != "" {
				ids[h.typeID] = true
			}
		}
		return setToSorted(ids)
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := c.lockMethod(call); ok {
			if (op.method == "Lock" || op.method == "RLock") && op.typeID != "" {
				for _, a := range heldIDs() {
					if a != op.typeID {
						c.addEdge(a, op.typeID, call.Pos())
					}
				}
			}
			return true
		}
		fn := c.calleeFunc(call)
		if fn == nil || fn == self {
			return true
		}
		var acq Acquires
		if !c.pass.ImportObjectFact(fn, &acq) {
			return true
		}
		held := heldIDs()
		for _, id := range acq.Locks {
			heldToo := false
			for _, a := range held {
				if a == id {
					heldToo = true
				}
			}
			if heldToo {
				c.pass.Reportf(call.Pos(), "call to %s while a %s lock is held; the callee acquires %s too (possible self-deadlock)", fn.Name(), id, id)
				continue
			}
			for _, a := range held {
				c.addEdge(a, id, call.Pos())
			}
		}
		return true
	})
}

func (c *checker) addEdge(a, b string, pos token.Pos) {
	if a == b {
		return // two instances of one lock type carry no order information
	}
	e := [2]string{a, b}
	if c.edgeSeen == nil {
		c.edgeSeen = map[[2]string]bool{}
		c.edgePos = map[[2]string]token.Pos{}
	}
	if c.edgeSeen[e] {
		if pos < c.edgePos[e] {
			c.edgePos[e] = pos
		}
		return
	}
	c.edgeSeen[e] = true
	c.edgePos[e] = pos
	c.edges = append(c.edges, e)
}

// exportFacts closes the in-package call graph over direct acquisitions
// and exports an Acquires fact per acquiring function.
func (c *checker) exportFacts() {
	acq := map[*types.Func]map[string]bool{}
	for fn, ids := range c.direct {
		m := map[string]bool{}
		for _, id := range ids {
			m[id] = true
		}
		// Imported callee facts are already transitive.
		for _, callee := range c.calls[fn] {
			var fact Acquires
			if c.pass.ImportObjectFact(callee, &fact) {
				for _, id := range fact.Locks {
					m[id] = true
				}
			}
		}
		acq[fn] = m
	}
	// In-package closure to fixpoint: callees declared later in the file
	// set, or mutually recursive helpers, settle after a few rounds.
	for changed := true; changed; {
		changed = false
		for fn := range acq {
			for _, callee := range c.calls[fn] {
				cm, ok := acq[callee]
				if !ok {
					continue
				}
				for id := range cm {
					if !acq[fn][id] {
						acq[fn][id] = true
						changed = true
					}
				}
			}
		}
	}
	fns := make([]*types.Func, 0, len(acq))
	for fn := range acq {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
	for _, fn := range fns {
		if len(acq[fn]) == 0 {
			continue
		}
		c.pass.ExportObjectFact(fn, &Acquires{Locks: setToSorted(acq[fn])})
	}
}

// checkOrder merges this unit's acquisition-order edges with the
// LockOrder facts of every transitive import, reports any own edge whose
// reverse is already reachable, and exports the union.
func (c *checker) checkOrder() {
	adj := map[string]map[string]bool{}
	add := func(a, b string) {
		if adj[a] == nil {
			adj[a] = map[string]bool{}
		}
		adj[a][b] = true
	}
	var imported [][2]string
	for _, pkg := range transitiveImports(c.pass.Pkg) {
		var fact LockOrder
		if c.pass.ImportPackageFact(pkg, &fact) {
			imported = append(imported, fact.Edges...)
		}
	}
	for _, e := range imported {
		add(e[0], e[1])
	}
	for _, e := range c.edges {
		add(e[0], e[1])
	}
	for _, e := range c.edges {
		if reaches(adj, e[1], e[0]) {
			c.pass.Reportf(c.edgePos[e], "acquiring %s while holding %s inverts the established acquisition order (%s is taken before %s elsewhere); keep one global lock order", e[1], e[0], e[1], e[0])
		}
	}
	all := append(append([][2]string{}, imported...), c.edges...)
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i][0] != all[j][0] {
			return all[i][0] < all[j][0]
		}
		return all[i][1] < all[j][1]
	})
	dedup := all[:0]
	for i, e := range all {
		if i == 0 || e != all[i-1] {
			dedup = append(dedup, e)
		}
	}
	c.pass.ExportPackageFact(&LockOrder{Edges: dedup})
}

// transitiveImports walks the import graph below pkg in a deterministic
// order.
func transitiveImports(pkg *types.Package) []*types.Package {
	seen := map[*types.Package]bool{}
	var out []*types.Package
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		for _, imp := range p.Imports() {
			if !seen[imp] {
				seen[imp] = true
				out = append(out, imp)
				walk(imp)
			}
		}
	}
	walk(pkg)
	sort.Slice(out, func(i, j int) bool { return out[i].Path() < out[j].Path() })
	return out
}

// reaches reports whether to is reachable from from in adj.
func reaches(adj map[string]map[string]bool, from, to string) bool {
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		for _, next := range sortedKeys(adj[n]) {
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// lockOps finds the mutex method calls directly in one leaf node,
// skipping nested function literals (independent flow units).
func (c *checker) lockOps(n ast.Node) []lockOp {
	var ops []lockOp
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if op, ok := c.lockMethod(call); ok {
				ops = append(ops, op)
			}
		}
		return true
	})
	return ops
}

// deferredUnlocks extracts the unlock operations a defer statement
// registers: `defer mu.Unlock()` directly, or any unlocks inside a
// deferred closure.
func (c *checker) deferredUnlocks(d *ast.DeferStmt) []lockOp {
	if op, ok := c.lockMethod(d.Call); ok {
		if op.method == "Unlock" || op.method == "RUnlock" {
			return []lockOp{op}
		}
		return nil
	}
	lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit)
	if !ok {
		return nil
	}
	var ops []lockOp
	for _, op := range c.lockOps(lit.Body) {
		if op.method == "Unlock" || op.method == "RUnlock" {
			ops = append(ops, op)
		}
	}
	return ops
}

// lockMethod recognizes a sync.Mutex / sync.RWMutex method call and
// resolves its receiver to a lexical key and a type-level identity.
func (c *checker) lockMethod(call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return lockOp{}, false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	recvType := s.Obj().(*types.Func).Type().(*types.Signature).Recv().Type()
	if p, ok := types.Unalias(recvType).(*types.Pointer); ok {
		recvType = p.Elem()
	}
	named, ok := types.Unalias(recvType).(*types.Named)
	if !ok || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return lockOp{}, false
	}
	method := fn.Name()
	switch method {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockOp{}, false // TryLock / RLocker need manual reasoning
	}
	key := renderExpr(sel.X)
	if key == "" {
		return lockOp{}, false
	}
	if method == "RLock" || method == "RUnlock" {
		key += "#r"
	}
	return lockOp{call: call, key: key, typeID: c.typeID(sel.X), method: method}, true
}

// typeID derives the cross-function identity of a lock receiver: the
// owning named type plus field name for struct fields, the package path
// plus name for package-level variables, "" for locals.
func (c *checker) typeID(recv ast.Expr) string {
	switch e := ast.Unparen(recv).(type) {
	case *ast.Ident:
		if v, ok := c.pass.TypesInfo.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.SelectorExpr:
		t := c.pass.TypesInfo.TypeOf(e.X)
		if t == nil {
			return ""
		}
		if p, ok := types.Unalias(t).(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
		}
	}
	return ""
}

// calleeFunc statically resolves a call to a declared function or method;
// indirect calls resolve to nil.
func (c *checker) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := c.pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if s, ok := c.pass.TypesInfo.Selections[fun]; ok {
			if s.Kind() != types.MethodVal {
				return nil
			}
			if _, isIface := types.Unalias(s.Recv()).Underlying().(*types.Interface); isIface {
				return nil
			}
			fn, _ := s.Obj().(*types.Func)
			return fn
		}
		fn, _ := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// lockedKeys collects every receiver key Locked/RLocked anywhere in the
// body (function literals included — a closure may take the lock the
// enclosing function releases).
func (c *checker) lockedKeys(body *ast.BlockStmt) map[string]bool {
	keys := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := c.lockMethod(call); ok && (op.method == "Lock" || op.method == "RLock") {
				keys[op.key] = true
			}
		}
		return true
	})
	return keys
}

func renderExpr(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		prefix := renderExpr(e.X)
		if prefix == "" {
			return ""
		}
		return prefix + "." + e.Sel.Name
	}
	return ""
}

func displayKey(k string) string {
	if r, ok := strings.CutSuffix(k, "#r"); ok {
		return r + " (read lock)"
	}
	return k
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func setToSorted(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
