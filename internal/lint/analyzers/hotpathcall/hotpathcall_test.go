package hotpathcall_test

import (
	"testing"

	"jxplain/internal/lint/analyzers/hotpathcall"
	"jxplain/internal/lint/checktest"
)

func TestHotpathcall(t *testing.T) {
	checktest.Run(t, "../../testdata/src", "example.com/hotcall", hotpathcall.Analyzer)
}
