// Package hotpathcall closes the interprocedural hole hotpathalloc leaves:
// hotpathalloc checks each //jx:hotpath function body in isolation, so a
// tagged function could keep its steady state allocation-free on paper
// while calling an untagged helper that allocates on every record — in the
// same package or two dependency hops away.
//
// hotpathcall enforces the call-graph closure of the tag. A //jx:hotpath
// function may only call:
//
//   - functions that are themselves //jx:hotpath (their bodies are under
//     hotpathalloc's discipline, and hotpathcall exports an AllocFree fact
//     for them so the closure crosses package boundaries through the vet
//     unit protocol);
//   - functions tagged //jx:coldpath <reason> — the designated cold
//     helpers of the hot path (error construction, first-occurrence
//     interning, allocation for never-before-seen structure). The reason
//     is mandatory; a ColdPath fact carries the designation to dependent
//     packages;
//   - a small intrinsic allowlist: builtins plus the handful of stdlib
//     calls the hot path relies on (sync.Pool, sync.Mutex, atomic
//     counters, math/bits, binary.LittleEndian), all allocation-free.
//
// Indirect calls are resolved as far as in-package information allows:
// calls through a function-typed parameter of the hot function (or of a
// function literal inside it) are the caller's responsibility and allowed;
// calls through any other function value are reported. A method value of
// an unqualified method is reported where it is created, because the call
// site can no longer be checked. Calls through an interface are allowed
// only when every package-level concrete type implementing the interface
// has a qualified method — when no in-package implementation exists the
// concrete set is unresolvable and the call is reported.
package hotpathcall

import (
	"go/ast"
	"go/types"
	"strings"

	"jxplain/internal/lint/jxanalysis"
)

// AllocFree marks a function whose steady state is verified allocation-
// free: it carries the //jx:hotpath tag, so hotpathalloc checks its body
// and hotpathcall checks its callees. Exported so dependent packages can
// call it from their own hot paths.
type AllocFree struct{}

// AFact marks AllocFree as a fact type.
func (*AllocFree) AFact() {}

// ColdPath marks a function explicitly designated as a cold-path helper
// (//jx:coldpath <reason>): callable from hot-path functions even though
// it may allocate, because its call sites are off the steady state by
// construction.
type ColdPath struct{}

// AFact marks ColdPath as a fact type.
func (*ColdPath) AFact() {}

// Analyzer is the hotpathcall pass.
var Analyzer = &jxanalysis.Analyzer{
	Name:      "hotpathcall",
	Doc:       "restrict //jx:hotpath functions to calling tagged, //jx:coldpath, or intrinsic callees (transitively, via AllocFree/ColdPath facts)",
	Run:       run,
	FactTypes: []jxanalysis.Fact{new(AllocFree), new(ColdPath)},
}

const (
	hotTag  = "//jx:hotpath"
	coldTag = "//jx:coldpath"
)

// intrinsics are the stdlib functions a hot-path function may call: the
// synchronization and bit-twiddling primitives of the scanner, interner,
// bitset, and wire-codec layers, none of which allocate (AppendUvarint
// writes into the caller's buffer and amortizes exactly like the append
// builtin it wraps).
var intrinsics = map[string]bool{
	"(*sync.Pool).Get":                         true,
	"(*sync.Pool).Put":                         true,
	"(*sync.Mutex).Lock":                       true,
	"(*sync.Mutex).Unlock":                     true,
	"(*sync.RWMutex).RLock":                    true,
	"(*sync.RWMutex).RUnlock":                  true,
	"(*sync/atomic.Uint64).Add":                true,
	"(*sync/atomic.Uint64).Load":               true,
	"(*sync/atomic.Uint64).Store":              true,
	"(*sync/atomic.Int64).Add":                 true,
	"(*sync/atomic.Int64).Load":                true,
	"math/bits.OnesCount64":                    true,
	"math/bits.TrailingZeros64":                true,
	"math/bits.LeadingZeros64":                 true,
	"math/bits.Len64":                          true,
	"(encoding/binary.littleEndian).PutUint64": true,
	"(encoding/binary.littleEndian).Uint64":    true,
	"encoding/binary.Uvarint":                  true,
	"encoding/binary.AppendUvarint":            true,
}

func hotTagged(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotTag || strings.HasPrefix(c.Text, hotTag+" ") {
			return true
		}
	}
	return false
}

// coldTagged reports whether fd carries //jx:coldpath, and whether the
// mandatory reason is present.
func coldTagged(fd *ast.FuncDecl) (tagged, hasReason bool) {
	if fd.Doc == nil {
		return false, false
	}
	for _, c := range fd.Doc.List {
		if c.Text == coldTag {
			return true, false
		}
		if rest, ok := strings.CutPrefix(c.Text, coldTag+" "); ok {
			return true, strings.TrimSpace(rest) != ""
		}
	}
	return false, false
}

func run(pass *jxanalysis.Pass) error {
	var hot []*ast.FuncDecl
	// Classification pass: export facts for every tagged declaration so the
	// closure check below (and dependent units, through the serialized
	// store) resolves callees uniformly through ImportObjectFact.
	for _, f := range pass.Files {
		if file := pass.Fset.File(f.Pos()); file != nil && strings.HasSuffix(file.Name(), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			if hotTagged(fd) {
				pass.ExportObjectFact(obj, &AllocFree{})
				if fd.Body != nil {
					hot = append(hot, fd)
				}
			}
			if tagged, hasReason := coldTagged(fd); tagged {
				if !hasReason {
					pass.Reportf(fd.Pos(), `//jx:coldpath directive on %s requires a reason: "//jx:coldpath <reason>"`, fd.Name.Name)
				}
				pass.ExportObjectFact(obj, &ColdPath{})
			}
		}
	}
	for _, fd := range hot {
		checkBody(pass, fd)
	}
	return nil
}

// qualified reports whether the function object may be called from a
// hot-path function: tagged in this unit or a dependency (AllocFree /
// ColdPath fact), or on the intrinsic allowlist.
func qualified(pass *jxanalysis.Pass, fn *types.Func) bool {
	if pass.ImportObjectFact(fn, &AllocFree{}) || pass.ImportObjectFact(fn, &ColdPath{}) {
		return true
	}
	return intrinsics[fn.FullName()]
}

func checkBody(pass *jxanalysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	// Function-typed parameters of the hot function and of literals inside
	// it: calling them is the caller's contract, not this function's.
	params := map[types.Object]bool{}
	addParams := func(ft *ast.FuncType) {
		if ft.Params == nil {
			return
		}
		for _, field := range ft.Params.List {
			for _, id := range field.Names {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	addParams(fd.Type)

	jxanalysis.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			addParams(n.Type)
		case *ast.CallExpr:
			checkCall(pass, name, n, params)
		case *ast.SelectorExpr:
			checkMethodValue(pass, name, n, stack)
		}
		return true
	})
}

// checkCall validates one call expression inside a hot-path function.
func checkCall(pass *jxanalysis.Pass, hot string, call *ast.CallExpr, params map[types.Object]bool) {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation: f[T](...) — unwrap to the function expression.
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		if _, ok := pass.TypesInfo.Types[idx.X]; ok && isFuncExpr(pass, idx.X) {
			fun = ast.Unparen(idx.X)
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	if tv, ok := pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	switch fun := fun.(type) {
	case *ast.FuncLit:
		return // body is walked as part of the hot function
	case *ast.Ident:
		switch obj := pass.TypesInfo.Uses[fun].(type) {
		case *types.Builtin:
			return
		case *types.Func:
			if !qualified(pass, obj) {
				report(pass, hot, call, obj)
			}
		case *types.Var:
			if !params[obj] {
				pass.Reportf(call.Pos(), "hot-path function %s calls through function value %s; only function-typed parameters may be invoked indirectly", hot, fun.Name)
			}
		case *types.TypeName, nil:
			// conversion to a named type, or unresolved — nothing to check
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				m := sel.Obj().(*types.Func)
				if iface, ok := types.Unalias(sel.Recv()).Underlying().(*types.Interface); ok {
					checkInterfaceCall(pass, hot, call, iface, m)
					return
				}
				if !qualified(pass, m) {
					report(pass, hot, call, m)
				}
			case types.FieldVal:
				pass.Reportf(call.Pos(), "hot-path function %s calls through function-valued field %s; move the indirect call off the tagged path", hot, fun.Sel.Name)
			}
			return
		}
		// Qualified identifier: pkg.F or method expression T.M.
		switch obj := pass.TypesInfo.Uses[fun.Sel].(type) {
		case *types.Func:
			if !qualified(pass, obj) {
				report(pass, hot, call, obj)
			}
		case *types.Var:
			pass.Reportf(call.Pos(), "hot-path function %s calls through function value %s; only function-typed parameters may be invoked indirectly", hot, fun.Sel.Name)
		}
	}
}

// checkInterfaceCall resolves an interface method call against the
// package-level concrete types of the current package. The call is
// qualified only when at least one implementation is found and every
// implementation's method is qualified.
func checkInterfaceCall(pass *jxanalysis.Pass, hot string, call *ast.CallExpr, iface *types.Interface, m *types.Func) {
	scope := pass.Pkg.Scope()
	found := false
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := types.Unalias(tn.Type()).(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
		impl, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		found = true
		if !qualified(pass, impl) {
			pass.Reportf(call.Pos(), "hot-path function %s calls %s through an interface; concrete method %s is neither //jx:hotpath nor //jx:coldpath", hot, m.Name(), impl.FullName())
		}
	}
	if !found {
		pass.Reportf(call.Pos(), "hot-path function %s calls %s through an interface with no in-package implementation; the callee set cannot be verified", hot, m.Name())
	}
}

// checkMethodValue reports the creation of a method value (x.M used as a
// value, not called) of an unqualified method: once the method escapes as
// a func value its call sites can no longer be attributed to the hot path.
func checkMethodValue(pass *jxanalysis.Pass, hot string, sel *ast.SelectorExpr, stack []ast.Node) {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	// In call position the CallExpr case already handles it.
	if len(stack) >= 2 {
		if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == ast.Expr(sel) {
			return
		}
	}
	m := s.Obj().(*types.Func)
	if types.IsInterface(s.Recv()) {
		return // handled (or unresolvable) at the call through the value
	}
	if !qualified(pass, m) {
		pass.Reportf(sel.Pos(), "hot-path function %s takes a method value of %s, which is neither //jx:hotpath nor //jx:coldpath", hot, m.FullName())
	}
}

func report(pass *jxanalysis.Pass, hot string, call *ast.CallExpr, fn *types.Func) {
	pass.Reportf(call.Pos(), "hot-path function %s calls %s, which is neither //jx:hotpath, //jx:coldpath, nor an intrinsic; tag the callee or move the call off the hot path", hot, callee(pass, fn))
}

// callee names fn compactly: bare name in-package, full name across
// packages.
func callee(pass *jxanalysis.Pass, fn *types.Func) string {
	if fn.Pkg() == pass.Pkg {
		return fn.Name()
	}
	return fn.FullName()
}

func isFuncExpr(pass *jxanalysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := types.Unalias(t).Underlying().(*types.Signature)
	return ok
}
