package detorder_test

import (
	"testing"

	"jxplain/internal/lint/analyzers/detorder"
	"jxplain/internal/lint/checktest"
)

func TestDetorder(t *testing.T) {
	checktest.Run(t, "../../testdata/src", "example.com/internal/core", detorder.Analyzer)
}

// TestDetorderUngatedPackage verifies packages outside the synthesis gate
// are not analyzed: plainpkg commits the map-range append shape and has no
// want expectations, so any diagnostic fails the test.
func TestDetorderUngatedPackage(t *testing.T) {
	checktest.Run(t, "../../testdata/src", "example.com/plainpkg", detorder.Analyzer)
}
