// Package detorder guards the byte-equivalence guarantee of the synthesis
// pipeline: golden schemas are byte-identical across runs and across
// SynthWorkers settings only if no Go map iteration order ever leaks into
// output. Inside the synthesis packages the analyzer flags a range over a
// map that appends to a slice declared outside the loop without a
// subsequent sort in the same function — the shape by which map order
// reaches Union child ordering, fan-in slices, and ultimately the encoded
// schema. Order-insensitive consumers can say so with
// //jx:lint-ignore detorder <reason>.
package detorder

import (
	"go/ast"
	"go/types"
	"strings"

	"jxplain/internal/lint/jxanalysis"
)

// Analyzer is the detorder pass.
var Analyzer = &jxanalysis.Analyzer{
	Name: "detorder",
	Doc:  "flag map iteration feeding slices without a deterministic sort in the synthesis packages",
	Run:  run,
}

// pkgSuffixes gates the analyzer to the packages whose output feeds the
// golden byte-equivalence suite.
var pkgSuffixes = []string{
	"internal/core",
	"internal/entity",
	"internal/entropy",
	"internal/merge",
	"internal/schema",
	"internal/jsontype",
}

func gated(pkgPath string) bool {
	p := strings.TrimSuffix(pkgPath, "_test")
	for _, s := range pkgSuffixes {
		if strings.HasSuffix(p, s) {
			return true
		}
	}
	return false
}

func run(pass *jxanalysis.Pass) error {
	if !gated(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if file := pass.Fset.File(f.Pos()); file != nil && strings.HasSuffix(file.Name(), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

func checkFunc(pass *jxanalysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := types.Unalias(t).Underlying().(*types.Map); !isMap {
			return true
		}
		for _, sink := range appendSinks(pass, rng) {
			if !sortedLater(pass, fd, rng, sink) {
				pass.Reportf(rng.Pos(), "map iteration order flows into slice %q with no deterministic sort before use; schema output must not depend on map order", sink.Name())
				break // one diagnostic per range statement
			}
		}
		return true
	})
}

// appendSinks returns the slice variables declared outside the range loop
// that receive append results inside its body.
func appendSinks(pass *jxanalysis.Pass, rng *ast.RangeStmt) []*types.Var {
	var sinks []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isAppend(pass, call) || i >= len(assign.Lhs) {
				continue
			}
			v := lvalueVar(pass, assign.Lhs[i])
			if v == nil || seen[v] {
				continue
			}
			// Only variables that outlive the loop can leak its order.
			if v.Pos() >= rng.Pos() && v.Pos() < rng.End() {
				continue
			}
			seen[v] = true
			sinks = append(sinks, v)
		}
		return true
	})
	return sinks
}

func isAppend(pass *jxanalysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, builtin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return builtin
}

// lvalueVar resolves the variable assigned through expr (x or *x).
func lvalueVar(pass *jxanalysis.Pass, expr ast.Expr) *types.Var {
	switch e := expr.(type) {
	case *ast.Ident:
		v, _ := pass.TypesInfo.ObjectOf(e).(*types.Var)
		return v
	case *ast.StarExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			v, _ := pass.TypesInfo.ObjectOf(id).(*types.Var)
			return v
		}
	}
	return nil
}

// sortedLater reports whether fd contains a sort/slices call mentioning v
// at or after the range statement.
func sortedLater(pass *jxanalysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, v *types.Var) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.Pos() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		x, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[x].(*types.PkgName)
		if !ok {
			return true
		}
		if path := pkgName.Imported().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentions(pass, arg, v) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func mentions(pass *jxanalysis.Pass, expr ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == v {
			found = true
			return false
		}
		return !found
	})
	return found
}
