// Package decodebound is a taint analysis for the wire-decode trust
// boundary: a count or length read from serialized input must pass a
// dominating capacity guard before it sizes an allocation or bounds a
// loop. core/wire.go's sketch decoder and jsontype/codec.go's type-table
// decoder consume bytes produced by *other processes* (cmd/jxshard map
// workers, snapshot files); a decoder that trusts an attacker-chosen
// count with `make([]T, n)` turns a 16-byte sketch into a multi-gigabyte
// allocation, and one that trusts a loop bound spins until OOM. The
// FuzzSketchDecode corpus probes this probabilistically; decodebound
// proves it per sink.
//
// The analysis is a forward dataflow over the jxanalysis/cfg graph with
// a per-variable taint lattice:
//
//   - Sources: the first result of binary.Uvarint/Varint, the results of
//     binary.LittleEndian/BigEndian.UintNN, any byte read data[i] from a
//     []byte, and calls to functions carrying a TaintedResult fact (so
//     helpers like readUvarint and the sketchDecoder uvarint/section
//     methods compose across function and package boundaries).
//   - Sinks: make() size/capacity arguments, for-loop upper bounds, and
//     range-over-int operands — plus arguments passed at a parameter
//     position carrying a TaintedParam fact, which makes a helper's
//     internal sink visible at every call site.
//   - Sanitizers: a comparison mentioning the tainted value (the
//     `v > uint64(remaining/minBytes)` decode idiom) clears its taint on
//     the paths downstream of the comparison node, and an assignment
//     from the min/max builtins clears it outright (the clamp idiom the
//     suggested fix inserts). Like errtotal's guard evidence, the
//     sanitizer is generous — any comparison counts, equality included —
//     so the analyzer errs toward false negatives, never toward noise on
//     the hot decode path.
//
// Taint is tracked per render string ("n", "d.pos") with a label mask:
// one wire label plus one label per integer parameter. Parameter labels
// reaching a sink become the function's TaintedParam fact; wire labels
// reaching a return become TaintedResult; a function that read wire
// input but let neither escape earns BoundedResult — the machine-checked
// form of "this helper validates before it trusts". Facts ride the .vetx
// protocol, so the interprocedural closure crosses packages exactly as
// hotpathcall's does. Function literals are independent flow units and
// are skipped, and in-package summaries reach a fixpoint over a few
// bounded rounds before diagnostics are emitted.
//
// When the unguarded value is a plain local with a known source buffer,
// the diagnostic carries a suggested fix inserting a clamp above the
// sink — `n = min(n, uint64(len(data)))` — which compiles, genuinely
// bounds the allocation, and (being a min-assignment) sanitizes n, so
// applying the fix resolves the diagnostic and -fix is idempotent.
package decodebound

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"jxplain/internal/lint/jxanalysis"
	"jxplain/internal/lint/jxanalysis/cfg"
)

// TaintedResult marks a function whose result positions (Mask bit i =
// result i) carry wire-derived values to the caller unguarded.
type TaintedResult struct{ Mask uint64 }

// AFact marks TaintedResult as a fact type.
func (*TaintedResult) AFact() {}

// TaintedParam marks a function that uses parameter positions (Mask bit
// i = parameter i) as an allocation size or loop bound without a
// dominating guard: passing a tainted value there is a sink.
type TaintedParam struct{ Mask uint64 }

// AFact marks TaintedParam as a fact type.
func (*TaintedParam) AFact() {}

// BoundedResult marks a function that reads wire input but bounds it
// before anything escapes: no tainted result, no tainted-param sink.
// The d.count(...) guard helpers earn it; it is the positive proof the
// decode conventions were written to provide.
type BoundedResult struct{}

// AFact marks BoundedResult as a fact type.
func (*BoundedResult) AFact() {}

// Analyzer is the decodebound pass.
var Analyzer = &jxanalysis.Analyzer{
	Name:      "decodebound",
	Doc:       "wire-derived counts must pass a dominating capacity guard before sizing an allocation or bounding a loop",
	Run:       run,
	FactTypes: []jxanalysis.Fact{new(TaintedResult), new(TaintedParam), new(BoundedResult)},
}

const wireBit uint64 = 1

// paramBit returns the lattice label of parameter i (0-based);
// parameters beyond 62 share the last label, which only ever
// over-approximates.
func paramBit(i int) uint64 {
	if i > 62 {
		i = 62
	}
	return 1 << (uint(i) + 1)
}

// paramMask projects a lattice mask down to 0-based parameter index bits
// (the encoding TaintedParam uses).
func paramMask(mask uint64) uint64 { return mask >> 1 }

// taintVal is one variable's taint: the label mask and, when the taint
// came straight off a wire buffer, that buffer's render — the handle the
// suggested clamp fix needs for its len(...) bound.
type taintVal struct {
	mask uint64
	buf  string
}

type taint map[string]taintVal

func cloneTaint(t taint) taint {
	c := make(taint, len(t))
	for k, v := range t {
		c[k] = v
	}
	return c
}

// joinTaint unions label masks per variable (may-taint); disagreeing
// source buffers collapse to "" so the join is monotone.
func joinTaint(a, b taint) taint {
	j := cloneTaint(a)
	for k, bv := range b {
		av, ok := j[k]
		if !ok {
			j[k] = bv
			continue
		}
		if av.buf != bv.buf {
			av.buf = ""
		}
		av.mask |= bv.mask
		j[k] = av
	}
	return j
}

func equalTaint(a, b taint) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		if bv, ok := b[k]; !ok || av != bv {
			return false
		}
	}
	return true
}

// summary is one function's interprocedural behavior, accumulated while
// its CFG is walked and compared across fixpoint rounds.
type summary struct {
	taintedParams  uint64 // 0-based parameter index bits reaching a sink
	taintedResults uint64 // result index bits carrying wire taint out
	sawWire        bool   // read a wire source (directly or via a tainted callee)
	wireSink       bool   // let a wire-tainted value reach a sink
}

type checker struct {
	pass      *jxanalysis.Pass
	summaries map[*types.Func]*summary
	cur       *summary // summary of the function being analyzed
}

// maxRounds bounds the in-package fixpoint: each round propagates
// summaries one call level, and the decode helper chains in this module
// are at most a few levels deep. The lattice is monotone, so stopping
// early only loses precision, never soundness of what was found.
const maxRounds = 5

func run(pass *jxanalysis.Pass) error {
	c := &checker{pass: pass, summaries: map[*types.Func]*summary{}}
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		if file := pass.Fset.File(f.Pos()); file != nil && strings.HasSuffix(file.Name(), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}

	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, fd := range decls {
			fn := c.funcObj(fd)
			if fn == nil {
				continue
			}
			sum := c.analyze(fd, false)
			if prev := c.summaries[fn]; prev == nil || *prev != *sum {
				c.summaries[fn] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	for _, fd := range decls {
		fn := c.funcObj(fd)
		if fn == nil {
			continue
		}
		sum := c.summaries[fn]
		if sum.taintedResults != 0 {
			c.pass.ExportObjectFact(fn, &TaintedResult{Mask: sum.taintedResults})
		}
		if sum.taintedParams != 0 {
			c.pass.ExportObjectFact(fn, &TaintedParam{Mask: sum.taintedParams})
		}
		if sum.sawWire && !sum.wireSink && sum.taintedResults == 0 && sum.taintedParams == 0 {
			c.pass.ExportObjectFact(fn, &BoundedResult{})
		}
	}

	for _, fd := range decls {
		c.analyze(fd, true)
	}
	return nil
}

// analyze solves the taint dataflow over one function. With report set,
// sinks produce diagnostics; either way the function's summary is
// (re)accumulated and returned.
func (c *checker) analyze(fd *ast.FuncDecl, report bool) *summary {
	c.cur = &summary{}
	entry := taint{}
	if fn := c.funcObj(fd); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok {
			for i := 0; i < sig.Params().Len(); i++ {
				p := sig.Params().At(i)
				if p.Name() != "" && p.Name() != "_" && integerish(p.Type()) {
					entry[p.Name()] = taintVal{mask: paramBit(i)}
				}
			}
		}
	}
	g := cfg.New(fd.Body)
	res := cfg.Forward(g, cfg.Problem[taint]{
		Entry: entry,
		Join:  joinTaint,
		Equal: equalTaint,
		Transfer: func(b *cfg.Block, in taint) taint {
			out := cloneTaint(in)
			for _, n := range b.Nodes {
				c.applyNode(b, n, out, false)
			}
			return out
		},
	})
	for _, b := range g.Blocks {
		if !res.Reached[b.Index] {
			continue
		}
		st := cloneTaint(res.In[b.Index])
		for _, n := range b.Nodes {
			c.applyNode(b, n, st, report)
		}
	}
	return c.cur
}

func (c *checker) funcObj(fd *ast.FuncDecl) *types.Func {
	fn, _ := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	return fn
}

// applyNode updates st across one CFG node, reporting sinks when report
// is set and accumulating the current function's summary either way.
// Head blocks carry exactly one node — the loop condition or range
// operand — so sinks there are loop bounds; everywhere else the node is
// walked for calls (make sinks, tainted-param sinks), comparisons
// (sanitizers), and returns, and then the node's assignment effect is
// applied.
func (c *checker) applyNode(b *cfg.Block, n ast.Node, st taint, report bool) {
	switch b.Kind {
	case "range.head":
		if x, ok := n.(ast.Expr); ok && integerish(c.pass.TypesInfo.TypeOf(x)) {
			c.sink(x, token.NoPos, st, report, "range count")
		}
		c.sanitizeMentions(n, st)
		return
	case "for.head":
		cond, _ := n.(ast.Expr)
		if cmp, ok := ast.Unparen(cond).(*ast.BinaryExpr); ok {
			var bound ast.Expr
			switch cmp.Op {
			case token.LSS, token.LEQ:
				bound = cmp.Y
			case token.GTR, token.GEQ:
				bound = cmp.X
			}
			// A bound phrased in terms of len/cap is capacity-derived by
			// construction (`for pos < len(data)`), never a sink.
			if bound != nil && !mentionsLenCap(bound) {
				c.sink(bound, token.NoPos, st, report, "loop bound")
			}
		}
		c.sanitizeMentions(n, st)
		return
	}
	inspect(n, func(m ast.Node) {
		switch m := m.(type) {
		case *ast.CallExpr:
			c.checkCall(m, n.Pos(), st, report)
		case *ast.BinaryExpr:
			if isComparison(m.Op) {
				c.sanitizeMentions(m, st)
			}
		case *ast.ReturnStmt:
			for j, r := range m.Results {
				if j > 62 {
					break
				}
				if c.exprTaint(r, st).mask&wireBit != 0 {
					c.cur.taintedResults |= 1 << uint(j)
				}
			}
		}
	})
	switch s := n.(type) {
	case *ast.AssignStmt:
		c.applyAssign(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.applyValueSpec(vs, st)
				}
			}
		}
	}
}

// checkCall reports make() size arguments and tainted-param positions of
// the (statically resolved) callee as sinks.
func (c *checker) checkCall(call *ast.CallExpr, anchor token.Pos, st taint, report bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if bi, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			if bi.Name() == "make" {
				for _, a := range call.Args[1:] {
					c.sink(a, anchor, st, report, "allocation size")
				}
			}
			return
		}
	}
	fn := calleeFunc(c.pass, call)
	if fn == nil {
		return
	}
	tp := c.calleeParamMask(fn)
	if tp == 0 {
		return
	}
	for i, a := range call.Args {
		if i > 62 {
			break
		}
		if tp&(1<<uint(i)) == 0 {
			continue
		}
		tv := c.exprTaint(a, st)
		c.cur.taintedParams |= paramMask(tv.mask)
		if tv.mask&wireBit != 0 {
			c.cur.wireSink = true
		}
		if report && tv.mask&wireBit != 0 {
			c.pass.Reportf(a.Pos(), "unguarded wire-derived value %s passed to %s, which uses parameter %d as an allocation size or loop bound", describe(a), fn.Name(), i)
		}
	}
}

// sink evaluates e at a sink position. Wire taint reports (with a clamp
// fix when anchor is set and the value is a plain local with a known
// source buffer); parameter labels flow into the TaintedParam summary.
func (c *checker) sink(e ast.Expr, anchor token.Pos, st taint, report bool, what string) {
	tv := c.exprTaint(e, st)
	c.cur.taintedParams |= paramMask(tv.mask)
	if tv.mask&wireBit == 0 {
		return
	}
	c.cur.wireSink = true
	if !report {
		return
	}
	msg := fmt.Sprintf("%s %s derives from wire input without a dominating capacity guard", what, describe(e))
	if fix := c.clampFix(e, tv, anchor); fix != nil {
		c.pass.ReportFixf(e.Pos(), fix, "%s", msg)
		return
	}
	c.pass.Reportf(e.Pos(), "%s", msg)
}

// clampFix builds the bound-guard template: insert, directly above the
// sink statement, `v = min(v, T(len(buf)))` — which compiles (the module
// is go 1.22), truly bounds the allocation by the source buffer length,
// and as a min-assignment sanitizes v, so the next run is clean and -fix
// is idempotent. Only emitted for a bare variable whose source buffer is
// known; anything cleverer is left to the human the diagnostic points at.
func (c *checker) clampFix(e ast.Expr, tv taintVal, anchor token.Pos) *jxanalysis.SuggestedFix {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || tv.buf == "" || !anchor.IsValid() {
		return nil
	}
	if _, ok := c.pass.TypesInfo.Uses[id].(*types.Var); !ok {
		return nil
	}
	t := c.pass.TypesInfo.TypeOf(id)
	if t == nil {
		return nil
	}
	var clamp string
	if types.Identical(t, types.Typ[types.Int]) {
		clamp = fmt.Sprintf("%s = min(%s, len(%s))", id.Name, id.Name, tv.buf)
	} else {
		ts := types.TypeString(t, types.RelativeTo(c.pass.Pkg))
		clamp = fmt.Sprintf("%s = min(%s, %s(len(%s)))", id.Name, id.Name, ts, tv.buf)
	}
	return &jxanalysis.SuggestedFix{
		Message: fmt.Sprintf("clamp %s to the source buffer length above the sink", id.Name),
		Edits: []jxanalysis.TextEdit{jxanalysis.InsertBeforeLine(c.pass.Fset, anchor,
			clamp+" // jxlint(decodebound): clamp template; tighten to the true remaining-input capacity\n")},
	}
}

// applyAssign applies an assignment's taint effect.
func (c *checker) applyAssign(s *ast.AssignStmt, st taint) {
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
		var tvs []taintVal
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			tvs = c.callResultTaints(call, len(s.Lhs), st)
		}
		for i, lhs := range s.Lhs {
			key := render(lhs)
			if key == "" || key == "_" {
				continue
			}
			var tv taintVal
			if tvs != nil {
				tv = tvs[i]
			}
			setTaint(st, key, tv)
		}
		return
	}
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		key := render(lhs)
		if key == "" || key == "_" {
			continue
		}
		tv := c.exprTaint(s.Rhs[i], st)
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			// op-assign reads the old value too: union.
			if old, ok := st[key]; ok {
				if old.buf != tv.buf {
					tv.buf = ""
				}
				tv.mask |= old.mask
			}
		}
		setTaint(st, key, tv)
	}
}

func (c *checker) applyValueSpec(vs *ast.ValueSpec, st taint) {
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		var tvs []taintVal
		if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
			tvs = c.callResultTaints(call, len(vs.Names), st)
		}
		for i, name := range vs.Names {
			var tv taintVal
			if tvs != nil {
				tv = tvs[i]
			}
			setTaint(st, name.Name, tv)
		}
		return
	}
	for i, name := range vs.Names {
		var tv taintVal
		if i < len(vs.Values) {
			tv = c.exprTaint(vs.Values[i], st)
		}
		setTaint(st, name.Name, tv)
	}
}

func setTaint(st taint, key string, tv taintVal) {
	if tv.mask == 0 {
		delete(st, key)
		return
	}
	st[key] = tv
}

// callResultTaints evaluates a multi-result call on the right of a tuple
// assignment: binary.Uvarint/Varint taint their first result with the
// argument buffer as provenance; otherwise the callee's TaintedResult
// mask (summary in-package, fact across packages) decides per position.
func (c *checker) callResultTaints(call *ast.CallExpr, nresults int, st taint) []taintVal {
	out := make([]taintVal, nresults)
	fn := calleeFunc(c.pass, call)
	if fn == nil {
		return out
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" && (fn.Name() == "Uvarint" || fn.Name() == "Varint") {
		c.cur.sawWire = true
		buf := ""
		if len(call.Args) == 1 {
			buf = bufRoot(call.Args[0])
		}
		out[0] = taintVal{mask: wireBit, buf: buf}
		return out
	}
	mask := c.calleeResultMask(fn)
	for j := range out {
		if j <= 62 && mask&(1<<uint(j)) != 0 {
			c.cur.sawWire = true
			out[j] = taintVal{mask: wireBit}
		}
	}
	return out
}

// exprTaint evaluates an expression's taint under st. Calls do not
// propagate argument taint (only source calls and TaintedResult callees
// produce taint); conversions are transparent; len/cap/min/max results
// are trusted by definition.
func (c *checker) exprTaint(e ast.Expr, st taint) taintVal {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return st[e.Name]
	case *ast.SelectorExpr:
		if key := render(e); key != "" {
			return st[key]
		}
		return taintVal{}
	case *ast.BinaryExpr:
		if isComparison(e.Op) || e.Op == token.LAND || e.Op == token.LOR {
			return taintVal{}
		}
		a, b := c.exprTaint(e.X, st), c.exprTaint(e.Y, st)
		switch {
		case a.buf == b.buf:
		case a.buf == "":
			a.buf = b.buf
		case b.buf != "":
			a.buf = ""
		}
		a.mask |= b.mask
		return a
	case *ast.UnaryExpr:
		return c.exprTaint(e.X, st)
	case *ast.IndexExpr:
		if isByteSlice(c.pass.TypesInfo.TypeOf(e.X)) {
			c.cur.sawWire = true
			return taintVal{mask: wireBit, buf: bufRoot(e.X)}
		}
		return taintVal{}
	case *ast.CallExpr:
		return c.callTaint(e, st)
	}
	return taintVal{}
}

func (c *checker) callTaint(call *ast.CallExpr, st taint) taintVal {
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return c.exprTaint(call.Args[0], st)
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			return taintVal{} // len/cap are capacity facts; min/max are clamps
		}
	}
	fn := calleeFunc(c.pass, call)
	if fn == nil {
		return taintVal{}
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" && strings.HasPrefix(fn.Name(), "Uint") {
		c.cur.sawWire = true
		buf := ""
		if len(call.Args) > 0 {
			buf = bufRoot(call.Args[0])
		}
		return taintVal{mask: wireBit, buf: buf}
	}
	if c.calleeResultMask(fn)&1 != 0 {
		c.cur.sawWire = true
		return taintVal{mask: wireBit}
	}
	return taintVal{}
}

// calleeResultMask consults this run's in-package summaries first (the
// fixpoint may not have exported facts yet), then imported facts.
func (c *checker) calleeResultMask(fn *types.Func) uint64 {
	if s, ok := c.summaries[fn]; ok {
		return s.taintedResults
	}
	var f TaintedResult
	if c.pass.ImportObjectFact(fn, &f) {
		return f.Mask
	}
	return 0
}

func (c *checker) calleeParamMask(fn *types.Func) uint64 {
	if s, ok := c.summaries[fn]; ok {
		return s.taintedParams
	}
	var f TaintedParam
	if c.pass.ImportObjectFact(fn, &f) {
		return f.Mask
	}
	return 0
}

// sanitizeMentions clears the taint of every rendered variable mentioned
// under n — the generous comparison sanitizer.
func (c *checker) sanitizeMentions(n ast.Node, st taint) {
	inspect(n, func(m ast.Node) {
		if e, ok := m.(ast.Expr); ok {
			if key := render(e); key != "" {
				delete(st, key)
			}
		}
	})
}

// bufRoot strips index and slice layers off a buffer expression:
// d.data[d.pos:] and data[i] both root at the buffer whose len() the
// clamp fix wants.
func bufRoot(e ast.Expr) string {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return render(e)
		}
	}
}

// render flattens an ident or selector path to its source spelling
// ("n", "d.pos") — the key space the taint map is tracked over.
func render(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		prefix := render(e.X)
		if prefix == "" {
			return ""
		}
		return prefix + "." + e.Sel.Name
	}
	return ""
}

func describe(e ast.Expr) string {
	if r := renderDeep(e); r != "" {
		return r
	}
	return "value"
}

// renderDeep is render, additionally seeing through single-argument
// conversions so int(n) describes as n.
func renderDeep(e ast.Expr) string {
	e = ast.Unparen(e)
	if r := render(e); r != "" {
		return r
	}
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		return renderDeep(call.Args[0])
	}
	return ""
}

func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

func mentionsLenCap(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				found = true
			}
		}
		return !found
	})
	return found
}

func integerish(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// calleeFunc statically resolves a call's target, skipping interface
// methods (dynamic dispatch has no single summary).
func calleeFunc(pass *jxanalysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[fun]; ok {
			if s.Kind() != types.MethodVal {
				return nil
			}
			if _, isIface := types.Unalias(s.Recv()).Underlying().(*types.Interface); isIface {
				return nil
			}
			fn, _ := s.Obj().(*types.Func)
			return fn
		}
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// inspect walks n in source order, skipping nested function literals
// (independent flow units).
func inspect(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		visit(m)
		return true
	})
}
