package decodebound_test

import (
	"testing"

	"jxplain/internal/lint/analyzers/decodebound"
	"jxplain/internal/lint/checktest"
)

func TestDecodebound(t *testing.T) {
	checktest.Run(t, "../../testdata/src", "example.com/decodeuse", decodebound.Analyzer)
}
