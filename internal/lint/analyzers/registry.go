// Package analyzers registers the jxlint analyzer suite.
package analyzers

import (
	"jxplain/internal/lint/analyzers/conccheck"
	"jxplain/internal/lint/analyzers/decodebound"
	"jxplain/internal/lint/analyzers/detorder"
	"jxplain/internal/lint/analyzers/errtotal"
	"jxplain/internal/lint/analyzers/exhausttag"
	"jxplain/internal/lint/analyzers/hotpathalloc"
	"jxplain/internal/lint/analyzers/hotpathcall"
	"jxplain/internal/lint/analyzers/ignoreaudit"
	"jxplain/internal/lint/analyzers/interncheck"
	"jxplain/internal/lint/analyzers/lockcheck"
	"jxplain/internal/lint/analyzers/mergelaw"
	"jxplain/internal/lint/analyzers/mergepure"
	"jxplain/internal/lint/jxanalysis"
)

// All returns the full jxlint suite in a stable order.
func All() []*jxanalysis.Analyzer {
	return []*jxanalysis.Analyzer{
		interncheck.Analyzer,
		hotpathalloc.Analyzer,
		hotpathcall.Analyzer,
		detorder.Analyzer,
		mergelaw.Analyzer,
		mergepure.Analyzer,
		conccheck.Analyzer,
		lockcheck.Analyzer,
		errtotal.Analyzer,
		exhausttag.Analyzer,
		decodebound.Analyzer,
		ignoreaudit.Analyzer,
	}
}
