// Package errtotal enforces totality on the typed-error decode surface:
// a function that reports failure through the sketch error family
// (*SketchFormatError, *SketchVersionError, *SketchMergeError — any type
// carrying a //jx:totalerror directive) promises that malformed input
// surfaces as an error value, never as a panic. A decoder that panics on
// a truncated sketch takes the whole reducer down with it; ROADMAP item 5
// (resumable decode of unbounded streams) leans on this contract.
//
// A function is in the total set when any of the following hold:
//
//   - a declared result type is (a pointer to) a //jx:totalerror type;
//   - a return statement's operand has such a static type, so functions
//     declared `error` that build family values are covered;
//   - its doc comment carries a bare //jx:total directive (opt-in for
//     functions whose failure type is erased earlier than their body);
//   - its receiver type has another total method and it is unexported or
//     declares an error result — the decode helpers share one receiver
//     and one contract, so the closure rule holds all of them to it
//     without viral propagation through plain calls. Exported methods
//     with no error result stay outside the closure: they are builder
//     API whose panics are documented preconditions, not decode paths.
//
// Inside a total function every path must be panic-free: no panic call,
// no call to a Must-prefixed function or to a function carrying a
// MayPanic fact (exported here for every function that panics directly,
// so the reach is cross-package), no single-form type assertion, and no
// slice/array indexing whose base lacks a dominating guard. Guardedness
// is a must-path forward dataflow over the jxanalysis/cfg graph: a
// len(base) mention, a range over the base, a locally-constructed base
// (make or a composite literal), or a checked call taking the base (the
// d.count(...) decode idiom) marks the base guarded on the paths the
// evidence dominates; an unguarded index reports once per base.
package errtotal

import (
	"go/ast"
	"go/types"
	"strings"

	"jxplain/internal/lint/jxanalysis"
	"jxplain/internal/lint/jxanalysis/cfg"
)

// TotalError marks a type declared with //jx:totalerror: functions
// producing it are held to the panic-free contract, across packages.
type TotalError struct{}

// AFact marks TotalError as a fact type.
func (*TotalError) AFact() {}

// MayPanic marks a function that contains a direct panic call, so total
// functions in importing packages cannot call it.
type MayPanic struct{}

// AFact marks MayPanic as a fact type.
func (*MayPanic) AFact() {}

// Analyzer is the errtotal pass.
var Analyzer = &jxanalysis.Analyzer{
	Name:      "errtotal",
	Doc:       "functions returning a //jx:totalerror type are panic-free on all paths: no panic/Must*/MayPanic calls, no bare type asserts, no unguarded indexing",
	Run:       run,
	FactTypes: []jxanalysis.Fact{new(TotalError), new(MayPanic)},
}

const (
	typeDirective = "//jx:totalerror"
	funcDirective = "//jx:total"
)

type checker struct {
	pass *jxanalysis.Pass
}

func run(pass *jxanalysis.Pass) error {
	c := &checker{pass: pass}
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		if file := pass.Fset.File(f.Pos()); file != nil && strings.HasSuffix(file.Name(), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				c.registerTotalTypes(d)
			case *ast.FuncDecl:
				if d.Body != nil {
					decls = append(decls, d)
				}
			}
		}
	}

	// MayPanic facts first, so in-package calls resolve during checking.
	for _, fd := range decls {
		if fn := c.funcObj(fd); fn != nil && directPanic(fd.Body) {
			c.pass.ExportObjectFact(fn, &MayPanic{})
		}
	}

	total := map[*ast.FuncDecl]bool{}
	for _, fd := range decls {
		if c.isSeedTotal(fd) {
			total[fd] = true
		}
	}
	// Receiver closure: one total method pulls its siblings into the set.
	// The closure only reaches methods that are unexported or return an
	// error — those are the decode helpers sharing the receiver's
	// contract. An exported method without an error result is builder
	// API; its panics are documented preconditions, not decode failures.
	totalRecv := map[string]bool{}
	for fd := range total {
		if r := recvTypeName(c.pass, fd); r != "" {
			totalRecv[r] = true
		}
	}
	for _, fd := range decls {
		if r := recvTypeName(c.pass, fd); r != "" && totalRecv[r] {
			if fd.Name.IsExported() && !returnsErrorResult(c.pass, fd) {
				continue
			}
			total[fd] = true
		}
	}

	for _, fd := range decls {
		if total[fd] {
			c.checkTotal(fd)
		}
	}
	return nil
}

// registerTotalTypes exports TotalError for every type in d whose doc
// (on the decl or the spec) carries the //jx:totalerror directive.
func (c *checker) registerTotalTypes(d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		if !hasDirective(d.Doc, typeDirective) && !hasDirective(ts.Doc, typeDirective) {
			continue
		}
		if tn, ok := c.pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
			c.pass.ExportObjectFact(tn, &TotalError{})
		}
	}
}

func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, l := range doc.List {
		fields := strings.Fields(l.Text)
		if len(fields) > 0 && fields[0] == directive {
			return true
		}
	}
	return false
}

// isSeedTotal applies the three direct membership rules.
// returnsErrorResult reports whether fd declares a result implementing
// the error interface.
func returnsErrorResult(pass *jxanalysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, field := range fd.Type.Results.List {
		if t := pass.TypesInfo.TypeOf(field.Type); t != nil && types.Implements(t, errType) {
			return true
		}
	}
	return false
}

func (c *checker) isSeedTotal(fd *ast.FuncDecl) bool {
	if hasDirective(fd.Doc, funcDirective) {
		return true
	}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			if c.isFamily(c.pass.TypesInfo.TypeOf(field.Type)) {
				return true
			}
		}
	}
	seed := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if seed {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, res := range ret.Results {
				if c.isFamily(c.pass.TypesInfo.TypeOf(res)) {
					seed = true
				}
			}
		}
		return true
	})
	return seed
}

// isFamily reports whether t is (a pointer to) a type carrying the
// TotalError fact — exported by this unit or imported from a dependency.
func (c *checker) isFamily(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	var fact TotalError
	return c.pass.ImportObjectFact(named.Obj(), &fact)
}

func (c *checker) funcObj(fd *ast.FuncDecl) *types.Func {
	fn, _ := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	return fn
}

// recvTypeName renders fd's receiver type name, "" for plain functions.
func recvTypeName(pass *jxanalysis.Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return ""
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// directPanic reports whether body contains a panic call outside nested
// function literals.
func directPanic(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				found = true
			}
		}
		return true
	})
	return found
}

// guards is the dataflow fact: the set of guarded base renders. The join
// is intersection — evidence must dominate the index.
type guards map[string]bool

func cloneGuards(g guards) guards {
	c := make(guards, len(g))
	for k := range g {
		c[k] = true
	}
	return c
}

func joinGuards(a, b guards) guards {
	j := guards{}
	for k := range a {
		if b[k] {
			j[k] = true
		}
	}
	return j
}

func equalGuards(a, b guards) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func isGuarded(g guards, root string) bool {
	if g[root] {
		return true
	}
	for k := range g {
		if strings.HasPrefix(root, k+".") {
			return true
		}
	}
	return false
}

// checkTotal runs the guard dataflow over one total function and reports
// every way it can panic.
func (c *checker) checkTotal(fd *ast.FuncDecl) {
	name := fd.Name.Name
	g := cfg.New(fd.Body)
	transfer := func(b *cfg.Block, in guards) guards {
		out := cloneGuards(in)
		for _, n := range b.Nodes {
			c.applyNode(b, n, out, "")
		}
		return out
	}
	res := cfg.Forward(g, cfg.Problem[guards]{
		Entry:    guards{},
		Join:     joinGuards,
		Equal:    equalGuards,
		Transfer: transfer,
	})
	for _, b := range g.Blocks {
		if !res.Reached[b.Index] {
			continue
		}
		st := cloneGuards(res.In[b.Index])
		for _, n := range b.Nodes {
			c.applyNode(b, n, st, name)
		}
	}
}

// applyNode folds one leaf node into the guard state; when name is
// non-empty it also reports the panic sources the node contains.
func (c *checker) applyNode(b *cfg.Block, n ast.Node, st guards, name string) {
	// The range head's only node is the range operand: iterating the base
	// guards indexing it in the loop body.
	if b.Kind == "range.head" {
		if r := render(n.(ast.Expr)); r != "" {
			st[r] = true
		}
		return
	}
	// Node-local len evidence first, so `len(data) > 0 && data[0] == x`
	// in one condition node does not report.
	lenRoots := map[string]bool{}
	inspect(n, func(m ast.Node) {
		if call, ok := m.(*ast.CallExpr); ok && len(call.Args) == 1 {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "len" {
				if r := render(call.Args[0]); r != "" {
					lenRoots[r] = true
				}
			}
		}
	})
	for r := range lenRoots {
		st[r] = true
	}

	inspect(n, func(m ast.Node) {
		switch m := m.(type) {
		case *ast.IndexExpr:
			c.checkIndex(m, st, name)
		case *ast.TypeAssertExpr:
			if name != "" && m.Type != nil && !commaOKAssert(n, m) {
				c.pass.Reportf(m.Pos(), "%s must be panic-free (typed error family) but type-asserts without the comma-ok form; a mismatch panics", name)
			}
		case *ast.CallExpr:
			c.checkCall(m, st, name)
		case *ast.AssignStmt:
			// A base assigned from make(...) or a composite literal has
			// known local provenance.
			fresh := false
			for _, rhs := range m.Rhs {
				switch e := ast.Unparen(rhs).(type) {
				case *ast.CompositeLit:
					fresh = true
				case *ast.CallExpr:
					if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "make" {
						fresh = true
					}
				}
			}
			if fresh {
				for _, lhs := range m.Lhs {
					if r := render(lhs); r != "" {
						st[r] = true
					}
				}
			}
		}
	})
}

// checkIndex reports an unguarded slice/array index and then marks the
// base guarded, so one unchecked base reports once, not per use.
func (c *checker) checkIndex(idx *ast.IndexExpr, st guards, name string) {
	t := c.pass.TypesInfo.TypeOf(idx.X)
	if t == nil {
		return
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	switch types.Unalias(t).Underlying().(type) {
	case *types.Slice, *types.Array:
	default:
		return // map and string indexing are out of scope
	}
	root := render(idx.X)
	if root == "" {
		return
	}
	if !isGuarded(st, root) && name != "" {
		c.pass.Reportf(idx.Pos(), "%s must be panic-free (typed error family) but indexes %s without a dominating length check", name, root)
	}
	st[root] = true
}

// checkCall reports panic sources at call sites and records checked-call
// guard evidence.
func (c *checker) checkCall(call *ast.CallExpr, st guards, name string) {
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "panic":
			if name != "" {
				c.pass.Reportf(call.Pos(), "%s must be panic-free (typed error family) but panics here; return the error instead", name)
			}
			return
		case "len", "cap", "make", "append", "copy", "new", "min", "max", "delete":
			return // builtins carry no guard or panic semantics we track
		}
	}
	fn := calleeFunc(c.pass, call)
	if name != "" && fn != nil {
		if strings.HasPrefix(fn.Name(), "Must") {
			c.pass.Reportf(call.Pos(), "%s must be panic-free (typed error family) but calls %s, whose Must prefix implies panic on failure", name, fn.Name())
		} else {
			var fact MayPanic
			if c.pass.ImportObjectFact(fn, &fact) {
				c.pass.Reportf(call.Pos(), "%s must be panic-free (typed error family) but calls %s, which may panic", name, fn.Name())
			}
		}
	}
	// A call taking the base (argument or receiver) is checked-call
	// evidence: the d.count(...) decode idiom validates before indexing.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if r := render(sel.X); r != "" {
			st[r] = true
		}
	}
	for _, arg := range call.Args {
		if r := render(arg); r != "" {
			st[r] = true
		}
	}
}

// commaOKAssert reports whether assert appears in a two-value context
// within node: `v, ok := x.(T)` or a two-value return/if-init form.
func commaOKAssert(node ast.Node, assert *ast.TypeAssertExpr) bool {
	ok := false
	ast.Inspect(node, func(n ast.Node) bool {
		if as, isAssign := n.(*ast.AssignStmt); isAssign && len(as.Lhs) == 2 && len(as.Rhs) == 1 {
			if ast.Unparen(as.Rhs[0]) == ast.Expr(assert) {
				ok = true
			}
		}
		if vs, isSpec := n.(*ast.ValueSpec); isSpec && len(vs.Names) == 2 && len(vs.Values) == 1 {
			if ast.Unparen(vs.Values[0]) == ast.Expr(assert) {
				ok = true
			}
		}
		return !ok
	})
	return ok
}

// calleeFunc statically resolves a call target.
func calleeFunc(pass *jxanalysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[fun]; ok {
			if s.Kind() != types.MethodVal {
				return nil
			}
			if _, isIface := types.Unalias(s.Recv()).Underlying().(*types.Interface); isIface {
				return nil
			}
			fn, _ := s.Obj().(*types.Func)
			return fn
		}
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// inspect walks n in source order, skipping nested function literals
// (independent flow units).
func inspect(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		visit(m)
		return true
	})
}

func render(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		prefix := render(e.X)
		if prefix == "" {
			return ""
		}
		return prefix + "." + e.Sel.Name
	}
	return ""
}
