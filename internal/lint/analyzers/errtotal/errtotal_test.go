package errtotal_test

import (
	"testing"

	"jxplain/internal/lint/analyzers/errtotal"
	"jxplain/internal/lint/checktest"
)

func TestErrtotal(t *testing.T) {
	checktest.Run(t, "../../testdata/src", "example.com/erruse", errtotal.Analyzer)
}
