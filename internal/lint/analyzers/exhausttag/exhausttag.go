// Package exhausttag keeps tag dispatch total: a switch over a wire
// section tag, a jsontype.Kind, or any other registered constant set is
// checked against the full declared member list, so adding a seventh
// Kind or a new wire section is a lint-visible event at every switch
// that fails to account for it.
//
// Two declaration forms register a set, both exported as EnumMembers
// facts so switches in importing packages are checked against the full
// set — and the two forms carry different strictness:
//
//   - a const declaration whose doc comment carries //jx:enum <name>
//     registers its constants as a strict set even when they are untyped
//     or share a plain byte type (the wire section tags); the fact rides
//     on each member, so any case expression naming a member finds the
//     set. Strict sets are dispatch-only by the author's declaration:
//     every switch must cover every member or carry a default that fails
//     loudly (returns an error or panics), so an unknown tag surfaces as
//     a decode failure instead of silently falling through.
//   - a named type whose underlying type is an integer kind registers
//     automatically when the package declares two or more constants of
//     it; the fact rides on the type name. Auto-registered sets are
//     non-strict: subset switches with a shared fall-through tail are
//     idiomatic Go ("handle the composite kinds here, primitives below"),
//     so a default clause of any shape counts as handling the remainder,
//     and so does any code following the switch. What still reports is
//     the silent no-op: a default-less incomplete switch whose
//     fall-through falls off the end of the function, where an unhandled
//     member does nothing at all.
//
// A switch is checked when its tag expression has a registered type or
// any of its case expressions resolves to a registered member. Coverage
// is by constant value, so aliases and literal forms ('K' for secKeys)
// count.
package exhausttag

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"jxplain/internal/lint/jxanalysis"
)

// EnumMembers is the fact describing one registered constant set. Names
// and Values are parallel; Values hold the exact constant representation
// so coverage can be compared across literal forms. Strict marks the
// //jx:enum directive sets, whose switches must fail loudly on unknown
// members.
type EnumMembers struct {
	Enum   string
	Names  []string
	Values []string
	Strict bool
}

// AFact marks EnumMembers as a fact type.
func (*EnumMembers) AFact() {}

// Analyzer is the exhausttag pass.
var Analyzer = &jxanalysis.Analyzer{
	Name:      "exhausttag",
	Doc:       "switches over registered tag sets (named integer enums, //jx:enum const groups) account for every member",
	Run:       run,
	FactTypes: []jxanalysis.Fact{new(EnumMembers)},
}

const enumDirective = "//jx:enum"

func run(pass *jxanalysis.Pass) error {
	c := &checker{pass: pass}
	c.registerNamedEnums()
	for _, f := range pass.Files {
		if file := pass.Fset.File(f.Pos()); file != nil && strings.HasSuffix(file.Name(), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			if gd, ok := decl.(*ast.GenDecl); ok {
				c.registerDirectiveEnums(gd)
			}
		}
	}
	for _, f := range pass.Files {
		if file := pass.Fset.File(f.Pos()); file != nil && strings.HasSuffix(file.Name(), "_test.go") {
			continue
		}
		// Each function body is walked with function-tail tracking; the
		// walker does not descend into nested FuncLits, which Inspect
		// hands over as bodies of their own.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					c.walkStmts(n.Body.List, true)
				}
			case *ast.FuncLit:
				c.walkStmts(n.Body.List, true)
			}
			return true
		})
	}
	return nil
}

// walkStmts visits a statement list looking for tagged switches. tail
// reports whether control falls off the end of the function when it
// falls off the end of this list — the property that turns a default-less
// incomplete switch over a non-strict set into a silent no-op.
func (c *checker) walkStmts(list []ast.Stmt, tail bool) {
	for i, s := range list {
		c.walkStmt(s, tail && i == len(list)-1)
	}
}

func (c *checker) walkStmt(s ast.Stmt, tail bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.walkStmts(s.List, tail)
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, tail)
	case *ast.IfStmt:
		// The last statement of either branch falls to after the if,
		// which is the end of the function exactly when the if is last.
		c.walkStmt(s.Body, tail)
		if s.Else != nil {
			c.walkStmt(s.Else, tail)
		}
	case *ast.ForStmt:
		// The loop head follows every statement in the body.
		c.walkStmts(s.Body.List, false)
	case *ast.RangeStmt:
		c.walkStmts(s.Body.List, false)
	case *ast.SwitchStmt:
		if s.Tag != nil {
			c.checkSwitch(s, tail)
		}
		for _, stmt := range s.Body.List {
			if cc, ok := stmt.(*ast.CaseClause); ok {
				// A case body falls to after the switch, not to the
				// next case, so it inherits the switch's own tail.
				c.walkStmts(cc.Body, tail)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, stmt := range s.Body.List {
			if cc, ok := stmt.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, tail)
			}
		}
	case *ast.SelectStmt:
		for _, stmt := range s.Body.List {
			if cc, ok := stmt.(*ast.CommClause); ok {
				c.walkStmts(cc.Body, tail)
			}
		}
	}
}

type checker struct {
	pass *jxanalysis.Pass
}

// registerNamedEnums exports an EnumMembers fact for every named integer
// type of this package with at least two package-level constants.
func (c *checker) registerNamedEnums() {
	scope := c.pass.Pkg.Scope()
	byType := map[*types.TypeName][]*types.Const{}
	for _, name := range scope.Names() {
		cn, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := types.Unalias(cn.Type()).(*types.Named)
		if !ok || named.Obj().Pkg() != c.pass.Pkg {
			continue
		}
		basic, ok := named.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsInteger == 0 {
			continue
		}
		byType[named.Obj()] = append(byType[named.Obj()], cn)
	}
	tns := make([]*types.TypeName, 0, len(byType))
	for tn := range byType {
		tns = append(tns, tn)
	}
	sort.Slice(tns, func(i, j int) bool { return tns[i].Name() < tns[j].Name() })
	for _, tn := range tns {
		consts := byType[tn]
		if len(consts) < 2 {
			continue
		}
		fact := &EnumMembers{Enum: c.pass.Pkg.Name() + "." + tn.Name()}
		for _, cn := range consts {
			fact.Names = append(fact.Names, cn.Name())
			fact.Values = append(fact.Values, cn.Val().ExactString())
		}
		c.pass.ExportObjectFact(tn, fact)
	}
}

// registerDirectiveEnums exports an EnumMembers fact on each constant of
// a //jx:enum-tagged const declaration.
func (c *checker) registerDirectiveEnums(gd *ast.GenDecl) {
	if gd.Tok != token.CONST {
		return
	}
	name, tagged := enumName(gd.Doc)
	if !tagged {
		return
	}
	if name == "" {
		c.pass.Reportf(gd.Pos(), "malformed %s directive: the set needs a name (//jx:enum <name>)", enumDirective)
		return
	}
	fact := &EnumMembers{Enum: name, Strict: true}
	var objs []*types.Const
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, id := range vs.Names {
			cn, ok := c.pass.TypesInfo.Defs[id].(*types.Const)
			if !ok {
				continue
			}
			fact.Names = append(fact.Names, cn.Name())
			fact.Values = append(fact.Values, cn.Val().ExactString())
			objs = append(objs, cn)
		}
	}
	if len(objs) < 2 {
		c.pass.Reportf(gd.Pos(), "%s %s declares fewer than two constants; a tag set needs members to dispatch over", enumDirective, name)
		return
	}
	for _, cn := range objs {
		c.pass.ExportObjectFact(cn, fact)
	}
}

// enumName extracts the set name from a //jx:enum directive line.
func enumName(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, l := range doc.List {
		fields := strings.Fields(l.Text)
		if len(fields) > 0 && fields[0] == enumDirective {
			return strings.Join(fields[1:], " "), true
		}
	}
	return "", false
}

// checkSwitch applies the coverage rule to one tagged switch. tail
// reports whether the switch's fall-through reaches the end of the
// enclosing function with no further statement at any nesting level.
func (c *checker) checkSwitch(sw *ast.SwitchStmt, tail bool) {
	fact, ok := c.setFor(sw)
	if !ok {
		return
	}
	covered := map[string]bool{}
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			if tv, ok := c.pass.TypesInfo.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	var missing []string
	for i, v := range fact.Values {
		if !covered[v] {
			missing = append(missing, fact.Names[i])
		}
	}
	if len(missing) == 0 {
		return
	}
	list := strings.Join(missing, ", ")
	if fact.Strict {
		switch {
		case defaultClause == nil:
			c.pass.Reportf(sw.Pos(), "switch over %s does not cover %s and has no default; handle every tag or add a default returning an error", fact.Enum, list)
		case !failsLoudly(c.pass.TypesInfo, defaultClause):
			c.pass.Reportf(defaultClause.Pos(), "switch over %s does not cover %s; the default must return an error or panic so unknown tags fail loudly", fact.Enum, list)
		}
		return
	}
	// Non-strict set: a default of any shape handles the remainder, and
	// so does code after the switch (the fall-through is the shared
	// tail for unlisted members). Only the silent no-op at the end of a
	// function is worth reporting.
	if defaultClause == nil && tail {
		c.pass.Reportf(sw.Pos(), "switch over %s does not cover %s and silently falls off the end of the function; cover every member or add a default", fact.Enum, list)
	}
}

// setFor resolves the registered set a switch dispatches over: by the tag
// expression's named type, or by any case expression naming a member.
func (c *checker) setFor(sw *ast.SwitchStmt) (*EnumMembers, bool) {
	if t := c.pass.TypesInfo.TypeOf(sw.Tag); t != nil {
		if named, ok := types.Unalias(t).(*types.Named); ok {
			var fact EnumMembers
			if c.pass.ImportObjectFact(named.Obj(), &fact) {
				return &fact, true
			}
		}
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			var obj types.Object
			switch e := ast.Unparen(e).(type) {
			case *ast.Ident:
				obj = c.pass.TypesInfo.Uses[e]
			case *ast.SelectorExpr:
				obj = c.pass.TypesInfo.Uses[e.Sel]
			}
			cn, ok := obj.(*types.Const)
			if !ok {
				continue
			}
			var fact EnumMembers
			if c.pass.ImportObjectFact(cn, &fact) {
				return &fact, true
			}
		}
	}
	return nil, false
}

// failsLoudly reports whether the default clause makes an unknown member
// observable: it returns an error-typed value or panics somewhere in its
// body.
func failsLoudly(info *types.Info, cc *ast.CaseClause) bool {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	found := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						found = true
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if t := info.TypeOf(r); t != nil && types.Implements(t, errType) {
						found = true
					}
				}
			}
			return true
		})
	}
	return found
}
