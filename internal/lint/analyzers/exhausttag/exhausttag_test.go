package exhausttag_test

import (
	"testing"

	"jxplain/internal/lint/analyzers/exhausttag"
	"jxplain/internal/lint/checktest"
)

func TestExhausttag(t *testing.T) {
	checktest.Run(t, "../../testdata/src", "example.com/taguse", exhausttag.Analyzer)
}
