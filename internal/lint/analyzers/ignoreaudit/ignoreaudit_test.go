package ignoreaudit_test

import (
	"testing"

	"jxplain/internal/lint/analyzers/hotpathalloc"
	"jxplain/internal/lint/analyzers/ignoreaudit"
	"jxplain/internal/lint/checktest"
	"jxplain/internal/lint/jxanalysis"
)

// The audit only activates alongside the analyzer whose directives it
// validates, so the fixture runs as a suite.
func TestIgnoreaudit(t *testing.T) {
	checktest.RunSuite(t, "../../testdata/src", "example.com/ignoreuse",
		[]*jxanalysis.Analyzer{hotpathalloc.Analyzer, ignoreaudit.Analyzer})
}
