// Package ignoreaudit reports //jx:lint-ignore directives that suppress
// nothing. The escape hatch exists so a deliberate violation can be
// waved through with a stated reason, but once the offending code is
// rewritten the directive lingers and quietly disables the analyzer for
// whatever lands on that line next. This pass makes stale suppressions
// an error, so the set of ignores in the tree is always the set of
// live, justified exceptions.
//
// The check itself lives in the jxanalysis framework (RunFacts): only
// the driver knows, after applying Filter, which directives matched a
// diagnostic and which went unused. This analyzer is the opt-in switch —
// its presence in the run (under jxanalysis.IgnoreAuditName) activates
// the audit — and its Run contributes nothing directly.
//
// Directives in _test.go files are exempt, because several analyzers
// skip test files and suppressions there cannot be validated. A
// directive naming an analyzer excluded from the current run (e.g. via
// -hotpathalloc=false) is exempt too.
package ignoreaudit

import "jxplain/internal/lint/jxanalysis"

// Analyzer is the ignoreaudit pass.
var Analyzer = &jxanalysis.Analyzer{
	Name: jxanalysis.IgnoreAuditName,
	Doc:  "report //jx:lint-ignore directives that suppress no diagnostic",
	Run:  func(*jxanalysis.Pass) error { return nil },
}
