package hotpathalloc_test

import (
	"testing"

	"jxplain/internal/lint/analyzers/hotpathalloc"
	"jxplain/internal/lint/checktest"
)

func TestHotpathalloc(t *testing.T) {
	checktest.Run(t, "../../testdata/src", "example.com/hotuse", hotpathalloc.Analyzer)
}
