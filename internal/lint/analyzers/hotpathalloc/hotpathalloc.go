// Package hotpathalloc guards the allocation discipline of the scanner /
// interner / synthesis hot path. Functions tagged with a
//
//	//jx:hotpath
//
// directive in their doc comment may not:
//
//   - reference the fmt or encoding/json packages (formatting and token
//     decoding are exactly the per-record allocations the byte scanner
//     removed; error paths belong in small untagged helpers);
//   - perform a string([]byte) conversion that escapes. The compiler
//     elides the copy when the conversion is immediately used as a map
//     index being read or as a comparison operand, so those forms are
//     allowed; anything else allocates a string per call and must either
//     go through a cache (see typeScanner.keys) or move off the tagged
//     path;
//   - box a non-pointer value into an interface. Converting an int, a
//     slice, or a struct to interface{}/any (explicitly, as a call
//     argument, in an assignment, or in a return) heap-allocates the
//     boxed copy. Pointer-shaped values (pointers, channels, maps,
//     funcs) fit in the interface word and constants are materialized
//     statically, so those are allowed.
//
// The tag is opt-in and package-agnostic: annotate the functions whose
// steady state must stay allocation-free, and the analyzer keeps them
// honest as the code grows.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"jxplain/internal/lint/jxanalysis"
)

// Analyzer is the hotpathalloc pass.
var Analyzer = &jxanalysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid fmt/encoding/json references, escaping string(bytes) conversions, and interface boxing in //jx:hotpath functions",
	Run:  run,
}

const tag = "//jx:hotpath"

// forbiddenImports are the packages a hot-path function may not touch.
var forbiddenImports = map[string]string{
	"fmt":           "fmt",
	"encoding/json": "encoding/json",
}

func tagged(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == tag || strings.HasPrefix(c.Text, tag+" ") {
			return true
		}
	}
	return false
}

func run(pass *jxanalysis.Pass) error {
	for _, f := range pass.Files {
		if file := pass.Fset.File(f.Pos()); file != nil && strings.HasSuffix(file.Name(), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !tagged(fd) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

func checkBody(pass *jxanalysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	jxanalysis.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			x, ok := n.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[x].(*types.PkgName)
			if !ok {
				return true
			}
			if path, bad := forbiddenImports[pkgName.Imported().Path()]; bad {
				pass.Reportf(n.Pos(), "hot-path function %s references %s; move the cold path into an untagged helper", name, path)
			}
		case *ast.CallExpr:
			checkConversion(pass, n, name, stack)
			checkCallBoxing(pass, n, name)
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					reportBoxing(pass, rhs, pass.TypesInfo.TypeOf(n.Lhs[i]), name)
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				t := pass.TypesInfo.TypeOf(n.Type)
				for _, v := range n.Values {
					reportBoxing(pass, v, t, name)
				}
			}
		case *ast.ReturnStmt:
			results := enclosingResults(pass, fd, stack)
			if results != nil && len(n.Results) == results.Len() {
				for i, r := range n.Results {
					reportBoxing(pass, r, results.At(i).Type(), name)
				}
			}
		}
		return true
	})
}

// checkCallBoxing flags arguments boxed into interface parameters and
// explicit conversions to an interface type. Spread calls (f(xs...)) pass
// the slice through without boxing its elements, so they are skipped.
func checkCallBoxing(pass *jxanalysis.Pass, call *ast.CallExpr, fn string) {
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			reportBoxing(pass, call.Args[0], tv.Type, fn)
		}
		return
	}
	if call.Ellipsis.IsValid() {
		return
	}
	t := pass.TypesInfo.TypeOf(call.Fun)
	if t == nil {
		return
	}
	sig, ok := types.Unalias(t).Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			slice, ok := types.Unalias(sig.Params().At(np - 1).Type()).Underlying().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		reportBoxing(pass, arg, pt, fn)
	}
}

// reportBoxing reports e when assigning it to dst boxes a non-pointer
// value into an interface.
func reportBoxing(pass *jxanalysis.Pass, e ast.Expr, dst types.Type, fn string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil { // constants are materialized statically
		return
	}
	src := tv.Type
	if src == nil || types.IsInterface(src) || pointerShaped(src) {
		return
	}
	if b, ok := types.Unalias(src).Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	pass.Reportf(e.Pos(), "hot-path function %s boxes %s into %s; boxing heap-allocates — keep the value concrete or pass a pointer",
		fn, types.TypeString(src, types.RelativeTo(pass.Pkg)), types.TypeString(dst, types.RelativeTo(pass.Pkg)))
}

// pointerShaped reports whether values of t fit in the interface data
// word without allocating.
func pointerShaped(t types.Type) bool {
	switch u := types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// enclosingResults returns the result tuple of the innermost function
// enclosing the statement whose ancestor stack is given.
func enclosingResults(pass *jxanalysis.Pass, fd *ast.FuncDecl, stack []ast.Node) *types.Tuple {
	for i := len(stack) - 1; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok {
			if sig, ok := types.Unalias(pass.TypesInfo.TypeOf(lit)).(*types.Signature); ok {
				return sig.Results()
			}
			return nil
		}
	}
	if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		return obj.Type().(*types.Signature).Results()
	}
	return nil
}

// checkConversion flags string(b []byte) conversions in contexts where the
// result escapes (i.e. everywhere except map-read indexing and
// comparisons, which the compiler keeps allocation-free).
func checkConversion(pass *jxanalysis.Pass, call *ast.CallExpr, fn string, stack []ast.Node) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dst, ok := types.Unalias(tv.Type).Underlying().(*types.Basic)
	if !ok || dst.Kind() != types.String {
		return
	}
	src := pass.TypesInfo.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	slice, ok := types.Unalias(src).Underlying().(*types.Slice)
	if !ok {
		return
	}
	elem, ok := types.Unalias(slice.Elem()).Underlying().(*types.Basic)
	if !ok || elem.Kind() != types.Byte && elem.Kind() != types.Uint8 {
		return
	}
	if nonEscapingContext(pass, call, stack) {
		return
	}
	pass.Reportf(call.Pos(), "string(bytes) conversion escapes in hot-path function %s; cache the string or restructure so the conversion stays a map index / comparison", fn)
}

// nonEscapingContext reports whether the conversion's immediate use is one
// the compiler optimizes to skip the copy: a comparison operand, or the
// index of a map *read*.
func nonEscapingContext(pass *jxanalysis.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	parent := stack[len(stack)-2]
	switch p := parent.(type) {
	case *ast.BinaryExpr:
		switch p.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			return true
		}
	case *ast.IndexExpr:
		if p.Index != call {
			return false
		}
		t := pass.TypesInfo.TypeOf(p.X)
		if t == nil {
			return false
		}
		if _, isMap := types.Unalias(t).Underlying().(*types.Map); !isMap {
			return false
		}
		// A map index on the left of an assignment stores the key.
		if len(stack) >= 3 {
			if assign, ok := stack[len(stack)-3].(*ast.AssignStmt); ok {
				for _, lhs := range assign.Lhs {
					if lhs == ast.Expr(p) {
						return false
					}
				}
			}
		}
		return true
	}
	return false
}
