// Package mergepure proves the purity side of the monoid contract that
// mergelaw tests behaviorally: a Merge/Combine used to fold
// per-partition sketches must be a pure, deterministic function of its
// two operands. The reduce pipeline calls these merges from worker
// goroutines, across tree-reduction levels, and in shard order chosen by
// the scheduler, so a merge that writes package state races, one that
// consults a non-deterministic source (time, rand, pointer formatting)
// breaks replayability, one that copies map iteration order into ordered
// output makes two identical runs disagree, and one that mutates or
// aliases its operand corrupts the sibling subtree that still holds a
// reference — the combineShared aliasing bug class, now proven absent.
//
// Checked methods are the exported Merge/Combine monoid shapes (single
// parameter of the receiver type, mergelaw's convention) plus any method
// tagged //jx:monoid. The directive takes an optional argument:
//
//	//jx:monoid            — non-consuming: the operand must survive intact
//	//jx:monoid consuming  — the merge owns its operand and may gut it
//
// A consuming merge may mutate and adopt from its operand (callers
// promise never to reuse it — the tree reducer's discard-after-combine
// protocol), but package-state writes, non-determinism, and map-order
// leaks are violations for both flavors. An unexported monoid-shaped
// method whose name contains "merge" or "combine" must be tagged one way
// or the other; the diagnostic carries a fix inserting //jx:monoid.
//
// Interprocedural reasoning rides object facts: MutatesParam and
// AdoptsParam summarize what a callee does to each argument position
// (receiver is position 0), Nondet marks functions that transitively
// reach a non-deterministic source, and Immutable marks types tagged
// //jx:immutable — a pointer to an immutable type is safe to adopt, the
// carve-out that lets merges share interned jsontype.Type pointers
// without copying. Function literals are independent flow units and are
// not analyzed.
package mergepure

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"jxplain/internal/lint/jxanalysis"
)

// MutatesParam marks a function that writes through argument position i
// (Mask bit i; the receiver is position 0, parameters start at 1).
type MutatesParam struct{ Mask uint64 }

// AFact marks MutatesParam as a fact type.
func (*MutatesParam) AFact() {}

// AdoptsParam marks a function that stores a mutable reference rooted in
// argument position i (same encoding) into state that outlives the call.
type AdoptsParam struct{ Mask uint64 }

// AFact marks AdoptsParam as a fact type.
func (*AdoptsParam) AFact() {}

// Nondet marks a function that (transitively) consults a
// non-deterministic source: time, math/rand, crypto/rand, or pointer
// formatting.
type Nondet struct{}

// AFact marks Nondet as a fact type.
func (*Nondet) AFact() {}

// Immutable marks a type tagged //jx:immutable: its values are never
// mutated after construction, so sharing pointers to them is not
// aliasing in any observable sense.
type Immutable struct{}

// AFact marks Immutable as a fact type.
func (*Immutable) AFact() {}

// Analyzer is the mergepure pass.
var Analyzer = &jxanalysis.Analyzer{
	Name:      "mergepure",
	Doc:       "monoid merges must be pure and deterministic: no package state, no nondeterminism, no map-order leaks, no operand mutation or aliasing",
	Run:       run,
	FactTypes: []jxanalysis.Fact{new(MutatesParam), new(AdoptsParam), new(Nondet), new(Immutable)},
}

const (
	monoidDirective    = "//jx:monoid"
	immutableDirective = "//jx:immutable"
)

var mergeNames = map[string]bool{"Merge": true, "Combine": true}

// behavior is one function's side-effect summary, the in-package
// precursor of the MutatesParam/AdoptsParam/Nondet facts.
type behavior struct {
	mutates uint64
	adopts  uint64
	nondet  bool
}

type checker struct {
	pass      *jxanalysis.Pass
	behaviors map[*types.Func]*behavior
}

// maxRounds bounds the in-package behavior fixpoint; helper chains in
// this module are shallow and the masks only grow.
const maxRounds = 5

func run(pass *jxanalysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "_test") || strings.HasSuffix(pass.Pkg.Name(), "_test") {
		return nil // external test packages declare no production merges
	}
	c := &checker{pass: pass, behaviors: map[*types.Func]*behavior{}}
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		if file := pass.Fset.File(f.Pos()); file != nil && strings.HasSuffix(file.Name(), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					decls = append(decls, d)
				}
			case *ast.GenDecl:
				c.registerImmutableTypes(d)
			}
		}
	}

	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, fd := range decls {
			fn := c.funcObj(fd)
			if fn == nil {
				continue
			}
			b := c.analyzeBehavior(fd)
			if prev := c.behaviors[fn]; prev == nil || *prev != *b {
				c.behaviors[fn] = b
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, fd := range decls {
		fn := c.funcObj(fd)
		if fn == nil {
			continue
		}
		b := c.behaviors[fn]
		if b.mutates != 0 {
			c.pass.ExportObjectFact(fn, &MutatesParam{Mask: b.mutates})
		}
		if b.adopts != 0 {
			c.pass.ExportObjectFact(fn, &AdoptsParam{Mask: b.adopts})
		}
		if b.nondet {
			c.pass.ExportObjectFact(fn, &Nondet{})
		}
	}

	for _, fd := range decls {
		c.classify(fd)
	}
	return nil
}

// registerImmutableTypes exports Immutable for every type whose doc (on
// the decl or the spec) carries //jx:immutable.
func (c *checker) registerImmutableTypes(d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		if !hasDirective(d.Doc, immutableDirective) && !hasDirective(ts.Doc, immutableDirective) {
			continue
		}
		if tn, ok := c.pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
			c.pass.ExportObjectFact(tn, &Immutable{})
		}
	}
}

// classify decides whether fd is a checked merge (and which flavor), a
// merge-like method that must be tagged, or out of scope.
func (c *checker) classify(fd *ast.FuncDecl) {
	tagged, consuming := c.monoidTag(fd.Doc)
	fn := c.funcObj(fd)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		if tagged {
			c.pass.Reportf(fd.Pos(), "%s on %s has no effect: the monoid contract applies to methods merging two values of one type", monoidDirective, fd.Name.Name)
		}
		return
	}
	shape := monoidShape(sig)
	switch {
	case tagged:
		if !shape {
			c.pass.Reportf(fd.Pos(), "%s on %s.%s has no effect: a monoid merge takes exactly one parameter of the receiver type", monoidDirective, recvName(sig), fd.Name.Name)
			return
		}
		c.checkMerge(fd, sig, consuming)
	case shape && mergeNames[fd.Name.Name]:
		c.checkMerge(fd, sig, false)
	case shape && !fd.Name.IsExported() && mergeish(fd.Name.Name):
		fix := &jxanalysis.SuggestedFix{
			Message: "tag the method " + monoidDirective,
			Edits: []jxanalysis.TextEdit{
				jxanalysis.InsertBeforeLine(c.pass.Fset, fd.Pos(), monoidDirective+"\n"),
			},
		}
		c.pass.ReportFixf(fd.Pos(), fix, "%s.%s has the monoid merge shape; tag it %s (or %s consuming) so its purity is checked", recvName(sig), fd.Name.Name, monoidDirective, monoidDirective)
	}
}

// checkMerge reports every purity violation in one checked merge body.
func (c *checker) checkMerge(fd *ast.FuncDecl, sig *types.Signature, consuming bool) {
	recv := sig.Recv()
	operand := sig.Params().At(0)
	inspect(fd.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				c.checkWrite(lhs, operand, consuming)
				// := binds locals, and adoption needs a destination that
				// outlives the call, so only plain assignments are candidates.
				if !consuming && n.Tok != token.DEFINE && i < len(n.Rhs) {
					c.checkAdoption(lhs, n.Rhs[i], recv, operand)
				}
			}
		case *ast.IncDecStmt:
			c.checkWrite(n.X, operand, consuming)
		case *ast.CallExpr:
			c.checkCallEffects(n, operand, consuming)
		case *ast.RangeStmt:
			c.checkMapOrder(n)
		}
	})
}

// checkWrite reports lhs if it writes package state (always a violation)
// or through the operand (a violation for non-consuming merges).
func (c *checker) checkWrite(lhs ast.Expr, operand *types.Var, consuming bool) {
	obj := c.rootObj(lhs)
	if obj == nil {
		return
	}
	if isPkgLevelVar(obj) {
		c.pass.Reportf(lhs.Pos(), "monoid merge writes package state %s; merges run concurrently across reduce workers and must touch only their two operands", obj.Name())
		return
	}
	if !consuming && obj == operand && writesThrough(lhs) {
		c.pass.Reportf(lhs.Pos(), "monoid merge mutates its operand through %s; the caller's sibling subtree still holds it (tag %s consuming if ownership transfer is intended)", describe(lhs), monoidDirective)
	}
}

// checkAdoption reports a non-consuming merge that stores a mutable
// reference rooted in its operand into the receiver or package state:
// later mutation through the receiver would alias the operand.
func (c *checker) checkAdoption(lhs, rhs ast.Expr, recv, operand *types.Var) {
	if c.rootObj(rhs) != operand {
		return
	}
	t := c.pass.TypesInfo.TypeOf(rhs)
	if !c.mutableRef(t) {
		return
	}
	dst := c.rootObj(lhs)
	if dst == recv || isPkgLevelVar(dst) {
		c.pass.Reportf(rhs.Pos(), "monoid merge adopts the mutable reference %s from its operand; mutating the merged receiver later would corrupt the operand too (copy it, or tag %s consuming)", describe(rhs), monoidDirective)
	}
}

// checkCallEffects reports nondeterministic callees and calls that hand
// the operand to a position the callee mutates or adopts from.
func (c *checker) checkCallEffects(call *ast.CallExpr, operand *types.Var, consuming bool) {
	if path, name, ok := c.nondetCall(call); ok {
		c.pass.Reportf(call.Pos(), "monoid merge calls non-deterministic %s.%s; two replicas folding the same sketches must produce identical bytes", path, name)
		return
	}
	fn := calleeFunc(c.pass, call)
	if fn == nil {
		return
	}
	mut, adopt := c.calleeEffects(fn)
	if mut == 0 && adopt == 0 {
		return
	}
	report := func(pos token.Pos, what string) {
		c.pass.Reportf(pos, "monoid merge passes its operand to %s, which %s it (tag %s consuming if ownership transfer is intended)", fn.Name(), what, monoidDirective)
	}
	if !consuming {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && c.rootObj(sel.X) == operand {
			if mut&1 != 0 {
				report(call.Pos(), "mutates")
			} else if adopt&1 != 0 {
				report(call.Pos(), "adopts from")
			}
		}
		for i, arg := range call.Args {
			if i > 61 {
				break
			}
			if c.rootObj(arg) != operand {
				continue
			}
			if mut&(1<<uint(i+1)) != 0 {
				report(arg.Pos(), "mutates")
			} else if adopt&(1<<uint(i+1)) != 0 {
				report(arg.Pos(), "adopts from")
			}
		}
	}
	// A mutating method invoked on package state is a package-state write
	// whatever the flavor.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && mut&1 != 0 {
		if obj := c.rootObj(sel.X); isPkgLevelVar(obj) {
			c.pass.Reportf(call.Pos(), "monoid merge writes package state %s via %s; merges run concurrently across reduce workers and must touch only their two operands", obj.Name(), fn.Name())
		}
	}
}

// checkMapOrder reports ordered output built inside a range over a map:
// appends and string concatenation observe the randomized iteration
// order. Order-insensitive folds (map writes, numeric sums) pass.
func (c *checker) checkMapOrder(rs *ast.RangeStmt) {
	t := c.pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	inspect(rs.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					c.pass.Reportf(n.Pos(), "monoid merge appends in map iteration order; ordered output from an unordered map differs run to run")
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if bt, ok := c.pass.TypesInfo.TypeOf(n.Lhs[0]).Underlying().(*types.Basic); ok && bt.Info()&types.IsString != 0 {
					c.pass.Reportf(n.Pos(), "monoid merge concatenates strings in map iteration order; ordered output from an unordered map differs run to run")
				}
			}
		}
	})
}

// analyzeBehavior computes fd's side-effect summary over the tracked
// argument positions (receiver 0, parameters from 1). Only positions
// whose static type can share state with the caller are tracked.
func (c *checker) analyzeBehavior(fd *ast.FuncDecl) *behavior {
	b := &behavior{}
	fn := c.funcObj(fd)
	if fn == nil {
		return b
	}
	sig := fn.Type().(*types.Signature)
	bits := map[types.Object]uint64{}
	if r := sig.Recv(); r != nil && sharedType(r.Type()) {
		bits[r] = 1
	}
	for i := 0; i < sig.Params().Len() && i < 62; i++ {
		if p := sig.Params().At(i); sharedType(p.Type()) {
			bits[p] = 1 << uint(i+1)
		}
	}
	inspect(fd.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if writesThrough(lhs) {
					b.mutates |= bits[c.rootObj(lhs)]
				}
				if n.Tok != token.DEFINE && i < len(n.Rhs) {
					src := bits[c.rootObj(n.Rhs[i])]
					if src != 0 && c.mutableRef(c.pass.TypesInfo.TypeOf(n.Rhs[i])) && c.outlivesCall(n.Lhs[i], bits) {
						b.adopts |= src
					}
				}
			}
		case *ast.IncDecStmt:
			if writesThrough(n.X) {
				b.mutates |= bits[c.rootObj(n.X)]
			}
		case *ast.CallExpr:
			if _, _, ok := c.nondetCall(n); ok {
				b.nondet = true
				return
			}
			fn := calleeFunc(c.pass, n)
			if fn == nil {
				return
			}
			mut, adopt := c.calleeEffects(fn)
			if c.transitiveNondet(fn) {
				b.nondet = true
			}
			if mut == 0 && adopt == 0 {
				return
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				src := bits[c.rootObj(sel.X)]
				if mut&1 != 0 {
					b.mutates |= src
				}
				if adopt&1 != 0 {
					b.adopts |= src
				}
			}
			for i, arg := range n.Args {
				if i > 61 {
					break
				}
				src := bits[c.rootObj(arg)]
				if src == 0 {
					continue
				}
				if mut&(1<<uint(i+1)) != 0 {
					b.mutates |= src
				}
				if adopt&(1<<uint(i+1)) != 0 {
					b.adopts |= src
				}
			}
		}
	})
	return b
}

// outlivesCall reports whether the destination lvalue survives the call:
// a tracked shared argument position or a package-level variable.
func (c *checker) outlivesCall(lhs ast.Expr, bits map[types.Object]uint64) bool {
	obj := c.rootObj(lhs)
	if obj == nil {
		return false
	}
	return bits[obj] != 0 || isPkgLevelVar(obj)
}

// calleeEffects consults this run's in-package behaviors first, then
// imported facts.
func (c *checker) calleeEffects(fn *types.Func) (mutates, adopts uint64) {
	if b, ok := c.behaviors[fn]; ok {
		return b.mutates, b.adopts
	}
	var m MutatesParam
	if c.pass.ImportObjectFact(fn, &m) {
		mutates = m.Mask
	}
	var a AdoptsParam
	if c.pass.ImportObjectFact(fn, &a) {
		adopts = a.Mask
	}
	return mutates, adopts
}

func (c *checker) transitiveNondet(fn *types.Func) bool {
	if b, ok := c.behaviors[fn]; ok {
		return b.nondet
	}
	var nd Nondet
	return c.pass.ImportObjectFact(fn, &nd)
}

// nondetPkgs are the packages whose call results differ run to run.
var nondetPkgs = map[string]bool{
	"time":         true,
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// nondetCall reports a direct non-deterministic call: anything from the
// nondet packages, a transitively Nondet callee, or fmt formatting with a
// literal %p verb (pointer addresses differ per process).
func (c *checker) nondetCall(call *ast.CallExpr) (pkg, name string, ok bool) {
	fn := calleeFunc(c.pass, call)
	if fn == nil || fn.Pkg() == nil {
		return "", "", false
	}
	if nondetPkgs[fn.Pkg().Path()] {
		return fn.Pkg().Path(), fn.Name(), true
	}
	if fn.Pkg().Path() == "fmt" {
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.BasicLit); ok && lit.Kind == token.STRING && strings.Contains(lit.Value, "%p") {
				return "fmt", fn.Name() + " with %p", true
			}
		}
	}
	if c.transitiveNondet(fn) {
		return fn.Pkg().Path(), fn.Name(), true
	}
	return "", "", false
}

// mutableRef reports whether values of t share state when copied:
// pointers (except to //jx:immutable types), slices, maps, and channels.
func (c *checker) mutableRef(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		if named := namedOf(u.Elem()); named != nil {
			var im Immutable
			if c.pass.ImportObjectFact(named.Obj(), &im) {
				return false
			}
		}
		return true
	case *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// monoidTag parses the //jx:monoid directive off a doc comment.
func (c *checker) monoidTag(doc *ast.CommentGroup) (tagged, consuming bool) {
	if doc == nil {
		return false, false
	}
	for _, l := range doc.List {
		fields := strings.Fields(l.Text)
		if len(fields) > 0 && fields[0] == monoidDirective {
			return true, len(fields) > 1 && fields[1] == "consuming"
		}
	}
	return false, false
}

func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, l := range doc.List {
		fields := strings.Fields(l.Text)
		if len(fields) > 0 && fields[0] == directive {
			return true
		}
	}
	return false
}

// monoidShape reports the mergelaw shape: a method with exactly one
// parameter of the receiver's own named type.
func monoidShape(sig *types.Signature) bool {
	if sig.Recv() == nil || sig.Params().Len() != 1 {
		return false
	}
	recv := namedOf(sig.Recv().Type())
	param := namedOf(sig.Params().At(0).Type())
	return recv != nil && recv == param
}

func recvName(sig *types.Signature) string {
	if named := namedOf(sig.Recv().Type()); named != nil {
		return named.Obj().Name()
	}
	return "receiver"
}

func mergeish(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "merge") || strings.Contains(lower, "combine")
}

func namedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

// sharedType reports whether an argument of type t can expose caller
// state to the callee (so writes through it matter to the caller).
func sharedType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// writesThrough reports whether lhs writes through its root variable
// (field, element, or pointee) rather than rebinding it.
func writesThrough(lhs ast.Expr) bool {
	switch ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

func isPkgLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// rootObj resolves the base object an lvalue or reference expression is
// rooted in: x.y[i].z roots at x, pkg.Var roots at Var. Expressions
// rooted in call results or literals resolve to nil.
func (c *checker) rootObj(e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := c.pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return c.pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if _, isPkg := c.pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
					return c.pass.TypesInfo.Uses[x.Sel]
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func describe(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if prefix := describe(e.X); prefix != "" {
			return prefix + "." + e.Sel.Name
		}
	case *ast.IndexExpr:
		if prefix := describe(e.X); prefix != "" {
			return prefix + "[...]"
		}
	case *ast.StarExpr:
		return describe(e.X)
	case *ast.UnaryExpr:
		return describe(e.X)
	}
	return "the expression"
}

func (c *checker) funcObj(fd *ast.FuncDecl) *types.Func {
	fn, _ := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	return fn
}

// calleeFunc statically resolves a call's target, skipping interface
// methods (dynamic dispatch has no single summary).
func calleeFunc(pass *jxanalysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[fun]; ok {
			if s.Kind() != types.MethodVal {
				return nil
			}
			if _, isIface := types.Unalias(s.Recv()).Underlying().(*types.Interface); isIface {
				return nil
			}
			fn, _ := s.Obj().(*types.Func)
			return fn
		}
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// inspect walks n in source order, skipping nested function literals
// (independent flow units).
func inspect(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		visit(m)
		return true
	})
}
