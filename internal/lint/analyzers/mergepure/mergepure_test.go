package mergepure_test

import (
	"testing"

	"jxplain/internal/lint/analyzers/mergepure"
	"jxplain/internal/lint/checktest"
)

func TestMergepure(t *testing.T) {
	checktest.Run(t, "../../testdata/src", "example.com/mergepureuse", mergepure.Analyzer)
}
