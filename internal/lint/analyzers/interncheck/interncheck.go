// Package interncheck enforces the hash-consing invariant of
// internal/jsontype: every Type is built by the interner, so *jsontype.Type
// equality IS pointer identity and the dense intern id is the only legal
// map key. Outside the owning package the analyzer therefore rejects
//
//   - composite literals (jsontype.Type{...}, &jsontype.Type{...}) and
//     new(jsontype.Type): a Type that did not pass through the interner
//     silently breaks pointer equality everywhere downstream;
//   - map types keyed on Type or *Type: keys must be the dense Type.ID()
//     (pointer keys would work but make hash layouts address-dependent and
//     hide accidental non-interned construction; the hot-path tables all
//     key on uint64 ids);
//   - reflect.DeepEqual on anything containing a Type: DeepEqual walks the
//     struct (including the canon cache) — interning makes it both wrong in
//     spirit and needlessly deep. Pointer comparison is the legal equality;
//   - struct comparison (== / !=) of Type values: only *pointers* may be
//     compared.
package interncheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"jxplain/internal/lint/jxanalysis"
)

// Analyzer is the interncheck pass.
var Analyzer = &jxanalysis.Analyzer{
	Name: "interncheck",
	Doc:  "enforce that jsontype.Type is only built by the interner and compared by pointer identity",
	Run:  run,
}

// typePkgSuffix identifies the package owning the interned Type; matching
// by suffix keeps the analyzer testable against fixture packages.
const typePkgSuffix = "internal/jsontype"

func ownsType(pkgPath string) bool {
	return strings.HasSuffix(strings.TrimSuffix(pkgPath, "_test"), typePkgSuffix)
}

// isType reports whether t is the interned Type (after unaliasing).
func isType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Type" && obj.Pkg() != nil && ownsType(obj.Pkg().Path())
}

// isTypeOrPointer reports whether t is Type or *Type.
func isTypeOrPointer(t types.Type) bool {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		return isType(ptr.Elem())
	}
	return isType(t)
}

// containsType reports whether t reaches a Type value through pointers,
// slices, arrays, maps, or struct fields — the shapes reflect.DeepEqual
// would walk into.
func containsType(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if isType(t) {
		return true
	}
	switch u := types.Unalias(t).Underlying().(type) {
	case *types.Pointer:
		return containsType(u.Elem(), seen)
	case *types.Slice:
		return containsType(u.Elem(), seen)
	case *types.Array:
		return containsType(u.Elem(), seen)
	case *types.Map:
		return containsType(u.Key(), seen) || containsType(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsType(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

func run(pass *jxanalysis.Pass) error {
	if ownsType(pass.Pkg.Path()) {
		return nil // the interner implementation itself is exempt
	}
	for _, f := range pass.Files {
		if file := pass.Fset.File(f.Pos()); file != nil && strings.HasSuffix(file.Name(), "_test.go") {
			continue // the invariant guards production code
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if isType(pass.TypesInfo.TypeOf(n)) {
					pass.Reportf(n.Pos(), "jsontype.Type composite literal bypasses the interner; construct types with jsontype.NewObject/NewArray/NewPrimitive")
				}
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.MapType:
				if tv, ok := pass.TypesInfo.Types[n.Key]; ok && isTypeOrPointer(tv.Type) {
					pass.Reportf(n.Pos(), "map keyed on jsontype.Type makes layout address-dependent; key on the dense Type.ID() instead")
				}
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					if isType(pass.TypesInfo.TypeOf(n.X)) || isType(pass.TypesInfo.TypeOf(n.Y)) {
						pass.Reportf(n.OpPos, "struct comparison of jsontype.Type values; interned types are compared by pointer identity (compare *Type, not Type)")
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *jxanalysis.Pass, call *ast.CallExpr) {
	// new(jsontype.Type)
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "new" && len(call.Args) == 1 {
		if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
			if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.IsType() && isType(tv.Type) {
				pass.Reportf(call.Pos(), "new(jsontype.Type) bypasses the interner; construct types with jsontype.NewObject/NewArray/NewPrimitive")
			}
		}
		return
	}
	// reflect.DeepEqual(x, y) where either side contains a Type.
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "DeepEqual" {
		return
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[x].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "reflect" {
		return
	}
	for _, arg := range call.Args {
		if t := pass.TypesInfo.TypeOf(arg); t != nil && containsType(t, map[types.Type]bool{}) {
			pass.Reportf(call.Pos(), "reflect.DeepEqual on jsontype.Type walks interned nodes; interned types are compared by pointer identity (== on *Type, or Type.ID())")
			return
		}
	}
}
