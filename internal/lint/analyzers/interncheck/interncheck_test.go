package interncheck_test

import (
	"testing"

	"jxplain/internal/lint/analyzers/interncheck"
	"jxplain/internal/lint/checktest"
)

func TestInterncheck(t *testing.T) {
	checktest.Run(t, "../../testdata/src", "example.com/interncheckuse", interncheck.Analyzer)
}

// TestInterncheckOwningPackage verifies the owning package (which must
// build Types from literals) is exempt.
func TestInterncheckOwningPackage(t *testing.T) {
	checktest.Run(t, "../../testdata/src", "example.com/internal/jsontype", interncheck.Analyzer)
}
