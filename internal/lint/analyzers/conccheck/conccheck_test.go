package conccheck_test

import (
	"testing"

	"jxplain/internal/lint/analyzers/conccheck"
	"jxplain/internal/lint/checktest"
)

func TestConccheck(t *testing.T) {
	checktest.Run(t, "../../testdata/src", "example.com/concuse", conccheck.Analyzer)
}
