// Package conccheck enforces the goroutine discipline the deterministic
// pipeline depends on. PR 2/4 made every parallel stage fan in through
// bounded pool helpers (dist.Map/Fold/ForEach, core's inline-fallback
// workPool, the word-striped TransposeParallel, the ingest worker pool);
// determinism then rests on two structural properties: goroutines are
// spawned only inside those helpers, and spawned closures communicate
// results exclusively through index-disjoint slice stores or channels —
// never through a shared append, map write, or captured-variable
// assignment, whose interleavings would leak scheduling into output.
//
// The discipline is declared with a doc-comment directive:
//
//	//jx:pool <reason>
//
// A `go` statement outside a //jx:pool function is reported. Inside a pool
// function, each spawned closure is checked: assignments to captured
// variables, writes to captured maps, appends to captured slices, and
// captured-counter increments are reported (index stores into captured
// slices are the sanctioned result channel — disjointness is the helper's
// documented contract). Every sync.WaitGroup with an Add call must also
// have a Done deferred (directly or inside a deferred closure), and a
// Done that is not deferred is reported — a panic between Add and a bare
// Done would deadlock Wait. A //jx:pool tag on a function that spawns no
// goroutine is stale and reported, mirroring ignoreaudit.
package conccheck

import (
	"go/ast"
	"go/types"
	"strings"

	"jxplain/internal/lint/jxanalysis"
)

// Analyzer is the conccheck pass.
var Analyzer = &jxanalysis.Analyzer{
	Name: "conccheck",
	Doc:  "allow go statements only in //jx:pool helpers whose goroutines write results index-disjointly or via channels, with deferred WaitGroup.Done",
	Run:  run,
}

const poolTag = "//jx:pool"

// poolTagged reports whether fd carries //jx:pool and whether the
// mandatory reason is present.
func poolTagged(fd *ast.FuncDecl) (tagged, hasReason bool) {
	if fd.Doc == nil {
		return false, false
	}
	for _, c := range fd.Doc.List {
		if c.Text == poolTag {
			return true, false
		}
		if rest, ok := strings.CutPrefix(c.Text, poolTag+" "); ok {
			return true, strings.TrimSpace(rest) != ""
		}
	}
	return false, false
}

func run(pass *jxanalysis.Pass) error {
	for _, f := range pass.Files {
		if file := pass.Fset.File(f.Pos()); file != nil && strings.HasSuffix(file.Name(), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			pooled, hasReason := poolTagged(fd)
			if pooled && !hasReason {
				pass.Reportf(fd.Pos(), `//jx:pool directive on %s requires a reason: "//jx:pool <reason>"`, fd.Name.Name)
			}
			spawns := checkFunc(pass, fd, pooled)
			if pooled && spawns == 0 {
				pass.Reportf(fd.Pos(), "//jx:pool function %s spawns no goroutine; the directive is stale", fd.Name.Name)
			}
		}
	}
	return nil
}

// checkFunc walks one function, reporting go statements when the function
// is not pooled and goroutine discipline violations when it is. It returns
// the number of go statements seen.
func checkFunc(pass *jxanalysis.Pass, fd *ast.FuncDecl, pooled bool) int {
	name := fd.Name.Name
	spawns := 0
	jxanalysis.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			spawns++
			if !pooled {
				pass.Reportf(n.Pos(), "go statement in %s, which is not a //jx:pool helper; spawn goroutines only in approved pool functions", name)
				return true
			}
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				checkSpawnedClosure(pass, name, lit)
			}
		case *ast.CallExpr:
			if pooled {
				checkWaitGroupCall(pass, name, n, stack)
			}
		}
		return true
	})
	if pooled {
		checkAddDonePairing(pass, fd)
	}
	return spawns
}

// localTo reports whether obj is declared inside the node span [lo, hi) —
// parameters and locals of a closure fall inside its FuncLit span.
func localTo(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()
}

// checkSpawnedClosure enforces the result-writing discipline inside one
// `go func(...){...}` closure.
func checkSpawnedClosure(pass *jxanalysis.Pass, pool string, lit *ast.FuncLit) {
	objOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[id]
	}
	captured := func(e ast.Expr) (types.Object, bool) {
		obj := objOf(e)
		if v, ok := obj.(*types.Var); ok && !localTo(v, lit) {
			return obj, true
		}
		return nil, false
	}
	jxanalysis.WalkStack(lit.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				switch lhs := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					if obj, ok := captured(lhs); ok && obj.Name() != "_" {
						pass.Reportf(lhs.Pos(), "goroutine in pool function %s assigns captured variable %s; return results through an index-disjoint slice store or a channel", pool, obj.Name())
					}
				case *ast.IndexExpr:
					t := pass.TypesInfo.TypeOf(lhs.X)
					if t == nil {
						continue
					}
					if _, isMap := types.Unalias(t).Underlying().(*types.Map); !isMap {
						continue // slice/array index store: the sanctioned channel
					}
					if obj, ok := captured(lhs.X); ok {
						pass.Reportf(lhs.Pos(), "goroutine in pool function %s writes captured map %s; map writes are not index-disjoint — use a slice or a channel", pool, obj.Name())
					}
				}
			}
		case *ast.IncDecStmt:
			if obj, ok := captured(n.X); ok {
				pass.Reportf(n.Pos(), "goroutine in pool function %s increments captured variable %s; use an index-disjoint slice store or a channel", pool, obj.Name())
			}
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok || len(n.Args) == 0 {
				return true
			}
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
				return true
			}
			target := ast.Unparen(n.Args[0])
			if sl, ok := target.(*ast.SliceExpr); ok {
				target = ast.Unparen(sl.X)
			}
			if obj, ok := captured(target); ok {
				pass.Reportf(n.Pos(), "goroutine in pool function %s appends to captured slice %s; appends race — write by index or send on a channel", pool, obj.Name())
			}
		}
		return true
	})
}

// receiverString renders the receiver of a WaitGroup method call ("wg",
// "s.done") so Add and Done sites can be paired lexically. Unrenderable
// receivers return "".
func receiverString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		prefix := receiverString(e.X)
		if prefix == "" {
			return ""
		}
		return prefix + "." + e.Sel.Name
	}
	return ""
}

// waitGroupMethod returns the receiver rendering when call is
// sync.WaitGroup.Add / .Done / .Wait, with the method name.
func waitGroupMethod(pass *jxanalysis.Pass, call *ast.CallExpr) (recv, method string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", ""
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	recvType := s.Recv()
	if p, ok := types.Unalias(recvType).(*types.Pointer); ok {
		recvType = p.Elem()
	}
	named, ok := types.Unalias(recvType).(*types.Named)
	if !ok || named.Obj().Name() != "WaitGroup" {
		return "", ""
	}
	return receiverString(sel.X), fn.Name()
}

// checkWaitGroupCall reports a WaitGroup.Done that is not deferred.
func checkWaitGroupCall(pass *jxanalysis.Pass, pool string, call *ast.CallExpr, stack []ast.Node) {
	recv, method := waitGroupMethod(pass, call)
	if method != "Done" {
		return
	}
	for _, anc := range stack {
		if _, ok := anc.(*ast.DeferStmt); ok {
			return
		}
	}
	pass.Reportf(call.Pos(), "%s.Done in pool function %s is not deferred; a panic between Add and Done would deadlock Wait", recv, pool)
}

// checkAddDonePairing requires, for every WaitGroup receiving an Add in
// the pool function, at least one Done under a defer on the same receiver.
func checkAddDonePairing(pass *jxanalysis.Pass, fd *ast.FuncDecl) {
	type addSite struct {
		pos  ast.Node
		recv string
	}
	var adds []addSite
	deferredDone := map[string]bool{}
	jxanalysis.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method := waitGroupMethod(pass, call)
		if recv == "" {
			return true
		}
		switch method {
		case "Add":
			adds = append(adds, addSite{pos: call, recv: recv})
		case "Done":
			for _, anc := range stack {
				if _, ok := anc.(*ast.DeferStmt); ok {
					deferredDone[recv] = true
					break
				}
			}
		}
		return true
	})
	for _, a := range adds {
		if !deferredDone[a.recv] {
			pass.Reportf(a.pos.Pos(), "%s.Add in pool function %s has no deferred %s.Done; pair every Add with a deferred Done", a.recv, fd.Name.Name, a.recv)
		}
	}
}
