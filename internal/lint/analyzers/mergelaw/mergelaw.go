// Package mergelaw enforces the algebra behind streaming discovery: the
// chunked / parallel pipeline is correct only because its per-partition
// states (jsontype.Bag, core.PathSketch, merge.Accumulator,
// jsontype.SimilarityAccumulator) fold with a commutative, associative
// merge — the same monoid bet JSONoid makes for scalability. The laws are
// not checkable statically, but their *tests* are: for every exported
// method Merge(T) or Combine(T) on a type T, the analyzer demands, by
// naming convention, a commutativity and an associativity property test
// (a Test function whose name contains the type name and "Commutative" /
// "Associative"). A merge that is deliberately order-sensitive can opt out
// with //jx:lint-ignore mergelaw <reason>.
package mergelaw

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"jxplain/internal/lint/jxanalysis"
)

// Analyzer is the mergelaw pass.
var Analyzer = &jxanalysis.Analyzer{
	Name: "mergelaw",
	Doc:  "require commutativity/associativity property tests for every Merge/Combine monoid operation",
	Run:  run,
}

var mergeNames = map[string]bool{"Merge": true, "Combine": true}

var testFuncRx = regexp.MustCompile(`func\s+(Test[A-Za-z0-9_]*)\s*\(`)

func run(pass *jxanalysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "_test") || strings.HasSuffix(pass.Pkg.Name(), "_test") {
		return nil // external test packages declare no production types
	}
	testNames, err := collectTestNames(pass)
	if err != nil {
		return err
	}
	for _, f := range pass.Files {
		if file := pass.Fset.File(f.Pos()); file != nil && strings.HasSuffix(file.Name(), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !mergeNames[fd.Name.Name] {
				continue
			}
			recv := monoidReceiver(pass, fd)
			if recv == nil {
				continue
			}
			checkLaws(pass, fd, recv, testNames)
		}
	}
	return nil
}

// monoidReceiver returns the receiver's named type when fd has the monoid
// shape: method Merge/Combine whose single parameter is the receiver type
// itself (T or *T).
func monoidReceiver(pass *jxanalysis.Pass, fd *ast.FuncDecl) *types.Named {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	if sig.Recv() == nil || sig.Params().Len() != 1 {
		return nil
	}
	recv := namedOf(sig.Recv().Type())
	param := namedOf(sig.Params().At(0).Type())
	if recv == nil || recv != param {
		return nil
	}
	return recv
}

func namedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

func checkLaws(pass *jxanalysis.Pass, fd *ast.FuncDecl, recv *types.Named, testNames []string) {
	typeName := recv.Obj().Name()
	method := fd.Name.Name
	for _, law := range []string{"Commutative", "Associative"} {
		if hasLawTest(testNames, typeName, law) {
			continue
		}
		pass.Reportf(fd.Pos(), "%s.%s is a monoid merge but package %s has no %s-law property test (want a Test function whose name contains %q and %q)",
			typeName, method, pass.Pkg.Name(), strings.ToLower(law), typeName, law)
	}
}

func hasLawTest(testNames []string, typeName, law string) bool {
	// "Commutative" tests are often named with the verb ("Commutes"); match
	// on the shared stem.
	stem := strings.TrimSuffix(law, "ative") // Commut / Associ
	for _, name := range testNames {
		if strings.Contains(name, typeName) && strings.Contains(name, stem) {
			return true
		}
	}
	return false
}

// collectTestNames gathers Test function names from the unit's own test
// files (go vet analyzes the test-augmented package) and, as a fallback
// for drivers that load packages without test files, from *_test.go files
// in the package directory.
func collectTestNames(pass *jxanalysis.Pass) ([]string, error) {
	var names []string
	sawTestFile := false
	dir := ""
	for _, f := range pass.Files {
		file := pass.Fset.File(f.Pos())
		if file == nil {
			continue
		}
		if dir == "" {
			dir = filepath.Dir(file.Name())
		}
		if !strings.HasSuffix(file.Name(), "_test.go") {
			continue
		}
		sawTestFile = true
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && strings.HasPrefix(fd.Name.Name, "Test") {
				names = append(names, fd.Name.Name)
			}
		}
	}
	if sawTestFile || dir == "" {
		return names, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		// The unit may be compiled from a location the driver cannot
		// re-read (e.g. a cache); treat as having no test files rather
		// than failing the whole analysis.
		return names, nil
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		for _, m := range testFuncRx.FindAllStringSubmatch(string(data), -1) {
			names = append(names, m[1])
		}
	}
	return names, nil
}
