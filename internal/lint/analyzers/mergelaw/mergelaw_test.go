package mergelaw_test

import (
	"testing"

	"jxplain/internal/lint/analyzers/mergelaw"
	"jxplain/internal/lint/checktest"
)

func TestMergelaw(t *testing.T) {
	checktest.Run(t, "../../testdata/src", "example.com/mergelawuse", mergelaw.Analyzer)
}
