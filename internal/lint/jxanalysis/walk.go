package jxanalysis

import "go/ast"

// WalkStack traverses root in depth-first order, calling fn for every node
// with the stack of its ancestors: stack[0] is root and
// stack[len(stack)-1] is the node itself. Returning false skips the node's
// children. The stack slice is reused between calls; callers must not
// retain it.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(n, stack) {
			// Children are skipped, so Inspect will not deliver the
			// balancing nil; pop now.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}
