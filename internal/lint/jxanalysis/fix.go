package jxanalysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// A TextEdit is one span replacement inside a fixture or product file:
// the bytes in [Pos, End) are replaced by NewText. Pos == End inserts.
// Edits within one SuggestedFix must not overlap; drivers applying fixes
// across analyzers additionally drop whole fixes whose edits overlap a
// fix already applied, so -fix never produces garbled output.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// A SuggestedFix is a mechanical rewrite an analyzer believes resolves
// its diagnostic: applying the edits must make the diagnostic disappear
// on the next run (the -fix idempotence contract), and must leave the
// program compiling. Analyzers only attach fixes they can guarantee
// both properties for; anything judgement-shaped stays a plain
// diagnostic.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// ReportFixf records a diagnostic at pos carrying a suggested fix.
func (p *Pass) ReportFixf(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:          pos,
		Analyzer:     p.Analyzer.Name,
		Message:      fmt.Sprintf(format, args...),
		SuggestedFix: fix,
	})
}

// InsertBeforeLine returns an insertion edit placing text (which should
// end in a newline) on its own line directly above the line containing
// pos, indented like that line. Indentation is reconstructed as one tab
// per leading column, matching gofmt-formatted sources; fixture and
// product files are both gofmt-clean, so the reconstruction is exact
// wherever fixes are emitted.
func InsertBeforeLine(fset *token.FileSet, pos token.Pos, text string) TextEdit {
	position := fset.Position(pos)
	tf := fset.File(pos)
	start := tf.LineStart(position.Line)
	indent := ""
	for i := 1; i < position.Column; i++ {
		indent += "\t"
	}
	return TextEdit{Pos: start, End: start, NewText: indent + text}
}

// deleteDirectiveFix builds the stale-ignore deletion fix: when the
// directive comment starts its line (nothing but indentation before it),
// the whole line goes, trailing newline included; a directive trailing
// code on a shared line is deleted comment-only, leaving the code
// intact. file is the AST the directive was parsed from — ownership of
// the line is decided by whether any code token ends on it before the
// comment.
func deleteDirectiveFix(fset *token.FileSet, file *ast.File, d *directive) *SuggestedFix {
	pos, end := d.pos, d.end
	tf := fset.File(pos)
	if tf != nil && file != nil && ownsLine(fset, file, pos) {
		line := fset.Position(pos).Line
		pos = tf.LineStart(line)
		if line < tf.LineCount() {
			end = tf.LineStart(line + 1)
		}
	}
	return &SuggestedFix{
		Message: fmt.Sprintf("delete the stale %s directive", ignorePrefix),
		Edits:   []TextEdit{{Pos: pos, End: end}},
	}
}

// ownsLine reports whether no code token of file ends on pos's line
// before pos — i.e. the comment at pos is preceded only by whitespace.
func ownsLine(fset *token.FileSet, file *ast.File, pos token.Pos) bool {
	line := fset.Position(pos).Line
	lineStart := fset.File(pos).LineStart(line)
	owns := true
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || !owns {
			return false
		}
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		if n.End() <= lineStart || n.Pos() >= pos {
			return false // entirely before the line or after the comment
		}
		if n.End() <= pos && fset.Position(n.End()).Line == line {
			// A node ending on the line before the comment: code precedes
			// it, so the comment shares the line.
			owns = false
			return false
		}
		return true
	})
	return owns
}
