package jxanalysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// A Fact is a typed message an analyzer attaches to a types.Object or a
// package during one pass and reads back — possibly in a different
// compilation unit — during a later pass. Facts are how interprocedural
// results cross package boundaries under the go vet protocol: the driver
// serializes every fact of a unit (gob) into the unit's .vetx output next
// to the gc export data, and dependent units decode it before their
// analyzers run. Mirrors golang.org/x/tools/go/analysis.Fact.
//
// A fact type must be a pointer, must be gob-encodable, and must be
// declared in Analyzer.FactTypes so drivers can register it. Object facts
// can be serialized only for package-level objects and for methods of
// package-level named types; facts on other objects still work within the
// in-memory store of a single driver run but do not cross units.
type Fact interface {
	// AFact is a marker method; it has no behavior.
	AFact()
}

// Facts is a fact store shared by every analyzer of one driver run. The
// vet driver seeds it from the .vetx files of the unit's dependencies; the
// fixture driver (checktest) shares one store across the fixture's
// packages, analyzed in dependency order.
type Facts struct {
	objects  map[types.Object]map[reflect.Type]Fact
	packages map[*types.Package]map[reflect.Type]Fact
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts {
	return &Facts{
		objects:  map[types.Object]map[reflect.Type]Fact{},
		packages: map[*types.Package]map[reflect.Type]Fact{},
	}
}

// An ObjectFact is one (object, fact) pair from the store.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

func (f *Facts) setObject(obj types.Object, fact Fact) {
	m := f.objects[obj]
	if m == nil {
		m = map[reflect.Type]Fact{}
		f.objects[obj] = m
	}
	m[reflect.TypeOf(fact)] = fact
}

// getObject copies the stored fact of fact's type into fact and reports
// whether one was present.
func (f *Facts) getObject(obj types.Object, fact Fact) bool {
	stored, ok := f.objects[obj][reflect.TypeOf(fact)]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

func (f *Facts) setPackage(pkg *types.Package, fact Fact) {
	m := f.packages[pkg]
	if m == nil {
		m = map[reflect.Type]Fact{}
		f.packages[pkg] = m
	}
	m[reflect.TypeOf(fact)] = fact
}

func (f *Facts) getPackage(pkg *types.Package, fact Fact) bool {
	stored, ok := f.packages[pkg][reflect.TypeOf(fact)]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// ObjectFacts returns every object fact in the store in a deterministic
// order (package path, object key, fact type name).
func (f *Facts) ObjectFacts() []ObjectFact {
	var out []ObjectFact
	for obj, m := range f.objects {
		for _, fact := range m {
			out = append(out, ObjectFact{Object: obj, Fact: fact})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := pkgPathOf(out[i].Object), pkgPathOf(out[j].Object)
		if pi != pj {
			return pi < pj
		}
		ki, _ := objectKey(out[i].Object)
		kj, _ := objectKey(out[j].Object)
		if ki != kj {
			return ki < kj
		}
		return factName(out[i].Fact) < factName(out[j].Fact)
	})
	return out
}

func pkgPathOf(obj types.Object) string {
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// FactName returns the bare type name of a fact ("AllocFree" for
// *hotpathcall.AllocFree) — the name // want-fact expectations use.
func FactName(fact Fact) string { return factName(fact) }

func factName(fact Fact) string {
	t := reflect.TypeOf(fact)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

// RegisterFactTypes registers every fact type declared by the analyzers
// with gob, and validates that each is a pointer. Drivers that serialize
// facts must call it before Encode/Decode.
func RegisterFactTypes(analyzers []*Analyzer) error {
	for _, a := range analyzers {
		for _, fact := range a.FactTypes {
			if reflect.TypeOf(fact).Kind() != reflect.Pointer {
				return fmt.Errorf("analyzer %s: fact type %T is not a pointer", a.Name, fact)
			}
			gob.Register(fact)
		}
	}
	return nil
}

// objectKey returns the serializable within-package name of obj: the bare
// name for package-level objects, "Recv.Name" for methods of package-level
// named types. The second result is false for objects that cannot cross
// units (locals, closures, methods of unnamed types).
func objectKey(obj types.Object) (string, bool) {
	pkg := obj.Pkg()
	if pkg == nil {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			t := recv.Type()
			if p, ok := types.Unalias(t).(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := types.Unalias(t).(*types.Named)
			if !ok {
				return "", false
			}
			return named.Obj().Name() + "." + fn.Name(), true
		}
	}
	if obj.Parent() != pkg.Scope() {
		return "", false
	}
	return obj.Name(), true
}

// lookupObject resolves a key produced by objectKey inside pkg.
func lookupObject(pkg *types.Package, key string) types.Object {
	if recv, method, ok := strings.Cut(key, "."); ok {
		tn, okT := pkg.Scope().Lookup(recv).(*types.TypeName)
		if !okT {
			return nil
		}
		named, okN := types.Unalias(tn.Type()).(*types.Named)
		if !okN {
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == method {
				return m
			}
		}
		return nil
	}
	return pkg.Scope().Lookup(key)
}

// gobFact is the serialized form of one fact. Object is "" for package
// facts. The concrete fact type must be gob-registered on both ends
// (RegisterFactTypes).
type gobFact struct {
	PkgPath string
	Object  string
	Fact    Fact
}

// Encode serializes every serializable fact in the store — the unit's own
// exports and the facts imported from its dependencies, so propagation is
// transitive without re-reading upstream units.
func (f *Facts) Encode() ([]byte, error) {
	var gfs []gobFact
	for _, of := range f.ObjectFacts() {
		key, ok := objectKey(of.Object)
		if !ok {
			continue
		}
		gfs = append(gfs, gobFact{PkgPath: pkgPathOf(of.Object), Object: key, Fact: of.Fact})
	}
	pkgs := make([]*types.Package, 0, len(f.packages))
	for pkg := range f.packages {
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path() < pkgs[j].Path() })
	for _, pkg := range pkgs {
		names := make([]string, 0, len(f.packages[pkg]))
		byName := map[string]Fact{}
		for _, fact := range f.packages[pkg] {
			n := factName(fact)
			names = append(names, n)
			byName[n] = fact
		}
		sort.Strings(names)
		for _, n := range names {
			gfs = append(gfs, gobFact{PkgPath: pkg.Path(), Fact: byName[n]})
		}
	}
	if len(gfs) == 0 {
		return nil, nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gfs); err != nil {
		return nil, fmt.Errorf("encoding facts: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode merges serialized facts into the store. find maps a package path
// to its type-checked *types.Package; facts whose package or object cannot
// be resolved are skipped (the current unit cannot reference them anyway).
func (f *Facts) Decode(data []byte, find func(path string) *types.Package) error {
	if len(data) == 0 {
		return nil
	}
	var gfs []gobFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&gfs); err != nil {
		return fmt.Errorf("decoding facts: %w", err)
	}
	for _, gf := range gfs {
		pkg := find(gf.PkgPath)
		if pkg == nil {
			continue
		}
		if gf.Object == "" {
			f.setPackage(pkg, gf.Fact)
			continue
		}
		if obj := lookupObject(pkg, gf.Object); obj != nil {
			f.setObject(obj, gf.Fact)
		}
	}
	return nil
}
