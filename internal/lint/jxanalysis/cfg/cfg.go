// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and solves forward dataflow problems over them — the
// foundation of jxlint's v3 analyzers (lockcheck, errtotal, exhausttag).
//
// The graph decomposes a body into basic blocks of *leaf* nodes:
// statements that transfer no control themselves (assignments, calls,
// sends, declarations) plus the condition expressions of branches. A
// block never contains a node with a nested statement list, so a transfer
// function can fold a block's Nodes front to back without re-entering
// control flow. Edges cover the structured constructs — if/else,
// for/range loops (with break, continue, and labels), expression and type
// switches (with fallthrough), select, goto — plus the two abnormal
// exits: every return statement jumps to the distinguished Exit block and
// every explicit panic(...) statement jumps to the distinguished Panic
// block. Defer statements stay in their block (their flow effect is
// analyzer-specific: a deferred unlock releases at *both* exits) and are
// additionally collected on the Graph in lexical order.
//
// The package is deliberately syntactic: it needs no *types.Info, so the
// checktest fixture loader and the vet driver can both hand bodies to it,
// and the printer output (String) is stable for golden tests.
package cfg

import (
	"go/ast"
	"go/token"
)

// A Block is one basic block: a maximal sequence of leaf nodes with a
// single entry and a single set of successor edges.
type Block struct {
	Index int        // position in Graph.Blocks, stable across builds
	Kind  string     // "entry", "exit", "panic", or the construct that opened it ("if.then", "for.head", ...)
	Nodes []ast.Node // leaf statements and condition expressions, in execution order
	Succs []*Block
}

// addSucc appends s to b's successors, once.
func (b *Block) addSucc(s *Block) {
	for _, have := range b.Succs {
		if have == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	Blocks []*Block // Blocks[0] is Entry; Exit and Panic are members too
	Entry  *Block
	Exit   *Block // reached by return statements and by falling off the end
	Panic  *Block // reached by explicit panic(...) statements
	Defers []*ast.DeferStmt
}

// New builds the control-flow graph of body. A nil body yields a trivial
// entry→exit graph.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.g.Panic = b.newBlock("panic")
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(b.g.Exit)
	b.resolveGotos()
	return b.g
}

// target is one enclosing breakable/continuable construct.
type target struct {
	label          string // "" for the implicit nearest target
	brk, cont      *Block // cont is nil for switch/select
	breakable      bool
	fallthroughTo  *Block // next case clause body, for fallthrough
}

type builder struct {
	g       *Graph
	cur     *Block // nil after an unconditional jump: code that follows is unreachable
	targets []target
	labels  map[string]*Block
	gotos   []pendingGoto
	// label to attach to the construct opened by the next loop/switch
	// statement (set by LabeledStmt).
	pendingLabel string
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// block returns the current block, starting a fresh unreachable one if
// control cannot reach this point (code after return/panic/goto); the
// graph keeps such blocks so the printer shows dead statements.
func (b *builder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *builder) emit(n ast.Node) { b.block().Nodes = append(b.block().Nodes, n) }

// jump terminates the current block with an edge to to.
func (b *builder) jump(to *Block) {
	if b.cur != nil {
		b.cur.addSucc(to)
		b.cur = nil
	}
}

// startAfter opens a new block of the given kind as the successor of the
// current one.
func (b *builder) startAfter(kind string) *Block {
	blk := b.newBlock(kind)
	b.jump(blk)
	b.cur = blk
	return blk
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// isPanicCall recognizes an explicit panic(...) call expression. The
// check is syntactic; a shadowed panic identifier is treated as the
// builtin, which errs on the conservative side for every analyzer.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.ReturnStmt:
		b.emit(s)
		b.jump(b.g.Exit)
	case *ast.ExprStmt:
		b.emit(s)
		if isPanicCall(s.X) {
			b.jump(b.g.Panic)
		}
	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.emit(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case nil:
	default:
		// Leaf statements: assign, incdec, send, go, empty, decl.
		if _, ok := s.(*ast.EmptyStmt); ok {
			return
		}
		b.emit(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.emit(s.Cond)
	head := b.block()
	b.cur = nil

	then := b.newBlock("if.then")
	head.addSucc(then)
	b.cur = then
	b.stmtList(s.Body.List)
	thenEnd := b.cur

	var elseEnd *Block
	if s.Else != nil {
		els := b.newBlock("if.else")
		head.addSucc(els)
		b.cur = els
		b.stmt(s.Else)
		elseEnd = b.cur
	}

	join := b.newBlock("if.join")
	if s.Else == nil {
		head.addSucc(join)
	}
	if thenEnd != nil {
		thenEnd.addSucc(join)
	}
	if elseEnd != nil {
		elseEnd.addSucc(join)
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.startAfter("for.head")
	if s.Cond != nil {
		b.emit(s.Cond)
	}
	exit := b.newBlock("for.exit")
	if s.Cond != nil {
		head.addSucc(exit)
	}

	body := b.newBlock("for.body")
	head.addSucc(body)
	b.cur = body

	// continue runs the post statement; give it its own block so the back
	// edge is head ← post ← body.
	post := b.newBlock("for.post")
	b.pushTarget(target{label: label, brk: exit, cont: post, breakable: true})
	b.stmtList(s.Body.List)
	b.popTarget()
	b.jump(post)
	b.cur = post
	if s.Post != nil {
		b.stmt(s.Post)
	}
	b.jump(head)
	b.cur = exit
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	// The head's single leaf is the range operand: analyzers that care
	// about what is being iterated (errtotal's bounds guards) read it via
	// the "range.head" block kind; the key/value assignment carries no
	// flow effect any current analysis needs.
	head := b.startAfter("range.head")
	head.Nodes = append(head.Nodes, s.X)
	exit := b.newBlock("range.exit")
	head.addSucc(exit)

	body := b.newBlock("range.body")
	head.addSucc(body)
	b.cur = body
	b.pushTarget(target{label: label, brk: exit, cont: head, breakable: true})
	b.stmtList(s.Body.List)
	b.popTarget()
	b.jump(head)
	b.cur = exit
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.emit(s.Tag)
	}
	head := b.block()
	b.cur = nil
	join := b.newBlock("switch.join")
	b.caseClauses(s.Body.List, head, join, label, "case")
	b.cur = join
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.emit(s.Assign)
	head := b.block()
	b.cur = nil
	join := b.newBlock("typeswitch.join")
	b.caseClauses(s.Body.List, head, join, label, "typecase")
	b.cur = join
}

// caseClauses wires the clause bodies of a switch: head branches to every
// clause (and to join when there is no default), each clause falls out to
// join, and fallthrough jumps to the next clause's body block.
func (b *builder) caseClauses(clauses []ast.Stmt, head, join *Block, label, kind string) {
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blocks[i] = b.newBlock(kind)
		head.addSucc(blocks[i])
	}
	if !hasDefault {
		head.addSucc(join)
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.emit(e)
		}
		var ft *Block
		if i+1 < len(blocks) {
			ft = blocks[i+1]
		}
		b.pushTarget(target{label: label, brk: join, breakable: true, fallthroughTo: ft})
		b.stmtList(cc.Body)
		b.popTarget()
		b.jump(join)
	}
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.block()
	b.cur = nil
	join := b.newBlock("select.join")
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		blk := b.newBlock("comm")
		head.addSucc(blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.pushTarget(target{label: label, brk: join, breakable: true})
		b.stmtList(cc.Body)
		b.popTarget()
		b.jump(join)
	}
	b.cur = join
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	switch s.Stmt.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// The construct consumes the label for break/continue resolution.
		b.pendingLabel = s.Label.Name
		b.labelHere(s.Label.Name)
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	default:
		b.labelHere(s.Label.Name)
		b.stmt(s.Stmt)
	}
}

// labelHere binds a goto label to a fresh block at the current point.
func (b *builder) labelHere(name string) {
	blk := b.startAfter("label." + name)
	if b.labels == nil {
		b.labels = map[string]*Block{}
	}
	b.labels[name] = blk
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.breakable && (label == "" || t.label == label) {
				b.jump(t.brk)
				return
			}
		}
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.cont != nil && (label == "" || t.label == label) {
				b.jump(t.cont)
				return
			}
		}
	case token.FALLTHROUGH:
		for i := len(b.targets) - 1; i >= 0; i-- {
			if ft := b.targets[i].fallthroughTo; ft != nil {
				b.jump(ft)
				return
			}
		}
	case token.GOTO:
		if blk, ok := b.labels[label]; ok {
			b.jump(blk)
			return
		}
		// Forward goto: patch once the label block exists.
		b.gotos = append(b.gotos, pendingGoto{from: b.block(), label: label})
		b.cur = nil
	}
}

func (b *builder) resolveGotos() {
	for _, g := range b.gotos {
		if blk, ok := b.labels[g.label]; ok {
			g.from.addSucc(blk)
		} else {
			// Undeclared label: the program does not compile; fall to exit
			// so the graph stays connected for best-effort printing.
			g.from.addSucc(b.g.Exit)
		}
	}
}

func (b *builder) pushTarget(t target) { b.targets = append(b.targets, t) }
func (b *builder) popTarget()          { b.targets = b.targets[:len(b.targets)-1] }

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}
