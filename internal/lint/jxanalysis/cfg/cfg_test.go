package cfg_test

import (
	"flag"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"jxplain/internal/lint/jxanalysis/cfg"
)

var update = flag.Bool("update", false, "rewrite the golden CFG files")

// TestPrinterGolden pins the printed CFG of every function in the fixture
// file against a golden rendering. The fixture covers loops (plain,
// range, labeled, with break/continue), defers, panic edges, switches
// with fallthrough, and goto, so a change to block construction or edge
// wiring shows up as a readable text diff rather than a silent analyzer
// behavior shift.
func TestPrinterGolden(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("testdata", "fixture.go.src"), nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		t.Run(fd.Name.Name, func(t *testing.T) {
			got := cfg.New(fd.Body).Text(fset)
			golden := filepath.Join("testdata", fd.Name.Name+".cfg")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run go test ./internal/lint/jxanalysis/cfg -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("CFG for %s diverges from golden\ngot:\n%swant:\n%s", fd.Name.Name, got, want)
			}
		})
	}
}

// TestForwardReachingDefs exercises the generic solver on a loop: a
// may-analysis collecting which variables have been assigned must reach a
// fixpoint that includes assignments on the back edge.
func TestForwardReachingDefs(t *testing.T) {
	src := `package p
func f(xs []int) int {
	sum := 0
	for i := 0; i < len(xs); i++ {
		sum += xs[i]
		if sum > 10 {
			tail := 1
			sum += tail
		}
	}
	return sum
}`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := f.Decls[0].(*ast.FuncDecl).Body
	g := cfg.New(body)

	assigned := func(b *cfg.Block, in map[string]bool) map[string]bool {
		out := map[string]bool{}
		for k := range in {
			out[k] = true
		}
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					out[id.Name] = true
				}
			}
		}
		return out
	}
	res := cfg.Forward(g, cfg.Problem[map[string]bool]{
		Entry: map[string]bool{},
		Join: func(a, b map[string]bool) map[string]bool {
			u := map[string]bool{}
			for k := range a {
				u[k] = true
			}
			for k := range b {
				u[k] = true
			}
			return u
		},
		Equal: func(a, b map[string]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: assigned,
	})

	if !res.Reached[g.Exit.Index] {
		t.Fatal("exit block not reached")
	}
	in := res.In[g.Exit.Index]
	for _, name := range []string{"sum", "i", "tail"} {
		if !in[name] {
			t.Errorf("assignment of %s did not reach exit; in-fact: %v", name, in)
		}
	}
}
