package cfg

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// String renders the graph for golden tests and debugging: one line per
// block, in block order, with its kind, its leaf nodes in compressed
// source form, and its successor indices. fset may be nil; it only
// improves node rendering (a nil fset still prints valid syntax).
//
//	b0 entry: [n := len(xs)] → b3
//	b3 for.head: [i < n] → b4 b5
//	...
//	b1 exit
//	b2 panic
func (g *Graph) String() string { return g.text(nil) }

// Text is String with position-aware rendering against fset.
func (g *Graph) Text(fset *token.FileSet) string { return g.text(fset) }

func (g *Graph) text(fset *token.FileSet) string {
	if fset == nil {
		fset = token.NewFileSet()
	}
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s", b.Index, b.Kind)
		if len(b.Nodes) > 0 {
			sb.WriteString(": [")
			for i, n := range b.Nodes {
				if i > 0 {
					sb.WriteString("; ")
				}
				sb.WriteString(renderNode(fset, n))
			}
			sb.WriteString("]")
		}
		if len(b.Succs) > 0 {
			sb.WriteString(" →")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// renderNode prints one leaf node as a single line, collapsing any
// internal whitespace runs (a leaf may still contain a multi-line
// function literal).
func renderNode(fset *token.FileSet, n ast.Node) string {
	var sb strings.Builder
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&sb, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	return strings.Join(strings.Fields(sb.String()), " ")
}
