package cfg

// A Problem is one forward dataflow analysis: a lattice of facts F with a
// join, an entry fact, and a per-block transfer function. The lattice
// must have finite height (Join must converge) — every jxlint analyzer
// uses finite sets over identifiers, which do.
//
// Transfer folds a block's Nodes front to back and must not mutate its
// input; it returns the block's out-fact. Join combines the out-facts of
// a block's predecessors; it is only called with facts of reached blocks,
// so there is no explicit bottom element.
type Problem[F any] struct {
	Entry    F
	Join     func(a, b F) F
	Equal    func(a, b F) bool
	Transfer func(b *Block, in F) F
}

// A Result holds the fixpoint: In[i] and Out[i] are the facts at entry to
// and exit from Blocks[i]; Reached[i] is false for blocks no path from
// Entry reaches (their facts are the zero F and must be ignored).
type Result[F any] struct {
	In, Out []F
	Reached []bool
}

// Forward solves p over g with a worklist iteration to fixpoint.
func Forward[F any](g *Graph, p Problem[F]) *Result[F] {
	n := len(g.Blocks)
	r := &Result[F]{In: make([]F, n), Out: make([]F, n), Reached: make([]bool, n)}
	r.In[g.Entry.Index] = p.Entry
	r.Reached[g.Entry.Index] = true

	work := []*Block{g.Entry}
	queued := make([]bool, n)
	queued[g.Entry.Index] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		out := p.Transfer(b, r.In[b.Index])
		r.Out[b.Index] = out
		for _, s := range b.Succs {
			next := out
			if r.Reached[s.Index] {
				next = p.Join(r.In[s.Index], out)
				if p.Equal(next, r.In[s.Index]) {
					continue
				}
			}
			r.In[s.Index] = next
			r.Reached[s.Index] = true
			if !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return r
}
