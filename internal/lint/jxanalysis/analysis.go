// Package jxanalysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer is a named check
// that runs over one type-checked package (a Pass) and reports
// position-tagged Diagnostics. The module deliberately has no external
// dependencies, so the handful of framework concepts jxlint needs —
// analyzers, passes, diagnostics, an ancestor-stack AST walker, and the
// //jx:lint-ignore suppression directive — are implemented here on top of
// go/ast and go/types alone.
//
// The analyzers themselves live under internal/lint/analyzers; the drivers
// (the go vet -vettool protocol and the analysistest-style fixture runner)
// live in internal/lint/unitchecker and internal/lint/checktest.
package jxanalysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check. Name identifies it in diagnostics and in
// //jx:lint-ignore directives; Doc says what invariant it enforces.
// FactTypes declares the Fact types the analyzer exports or imports; an
// analyzer with facts also runs over dependency units (facts-only, no
// diagnostics) so its results reach dependents.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass) error
	FactTypes []Fact
}

// A Pass is one analyzer's view of one type-checked compilation unit.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
	facts *Facts
}

// ExportObjectFact attaches fact to obj, which must belong to the package
// under analysis. The driver serializes it with the unit so dependent
// units can import it.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("%s: ExportObjectFact on object %v outside package %v", p.Analyzer.Name, obj, p.Pkg))
	}
	p.facts.setObject(obj, fact)
}

// ImportObjectFact copies the fact of fact's type attached to obj — by
// this unit or by a dependency unit — into fact, reporting whether one
// exists.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.facts.getObject(obj, fact)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.facts.setPackage(p.Pkg, fact)
}

// ImportPackageFact copies pkg's fact of fact's type into fact, reporting
// whether one exists.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	return p.facts.getPackage(pkg, fact)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation. SuggestedFix, when non-nil, is
// a mechanical rewrite that resolves it (see fix.go); drivers surface it
// through -fix, the findings protocol, and SARIF fixes objects.
type Diagnostic struct {
	Pos          token.Pos
	Analyzer     string
	Message      string
	SuggestedFix *SuggestedFix
}

// Package bundles a parsed, type-checked compilation unit — the input the
// drivers hand to Run.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// IgnoreAuditName is the name of the ignoreaudit analyzer. Its check is
// implemented here rather than in its Run function because only the
// framework knows, after Filter, which //jx:lint-ignore directives
// suppressed a diagnostic and which went stale.
const IgnoreAuditName = "ignoreaudit"

// Run executes the analyzers over pkg with a fresh fact store. See
// RunFacts.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunFacts(pkg, analyzers, NewFacts())
}

// RunFacts executes the analyzers over pkg against the shared fact store,
// applies the //jx:lint-ignore directives, audits them when the
// ignoreaudit analyzer is active, and returns the surviving diagnostics in
// a deterministic order (position, then analyzer, then message).
func RunFacts(pkg *Package, analyzers []*Analyzer, facts *Facts) ([]Diagnostic, error) {
	var diags []Diagnostic
	active := map[string]bool{}
	for _, a := range analyzers {
		active[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
			facts:     facts,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	diags, directives := filterTrack(pkg.Fset, pkg.Files, diags)
	if active[IgnoreAuditName] {
		byFile := map[string]*ast.File{}
		for _, f := range pkg.Files {
			if tf := pkg.Fset.File(f.Pos()); tf != nil {
				byFile[tf.Name()] = f
			}
		}
		for _, dir := range directives {
			// Directives in test files are exempt: several analyzers skip
			// _test.go, so suppressions there cannot be validated. A
			// directive naming an analyzer not in this run is skipped too —
			// it may be validated by a run with that analyzer enabled.
			if strings.HasSuffix(dir.file, "_test.go") || !active[dir.analyzer] || dir.used {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:          dir.pos,
				Analyzer:     IgnoreAuditName,
				Message:      fmt.Sprintf("ignore directive for %s suppresses no diagnostic; delete %q or fix the reason", dir.analyzer, dir.normalized()),
				SuggestedFix: deleteDirectiveFix(pkg.Fset, byFile[dir.file], dir),
			})
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
