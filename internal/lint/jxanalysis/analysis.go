// Package jxanalysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer is a named check
// that runs over one type-checked package (a Pass) and reports
// position-tagged Diagnostics. The module deliberately has no external
// dependencies, so the handful of framework concepts jxlint needs —
// analyzers, passes, diagnostics, an ancestor-stack AST walker, and the
// //jx:lint-ignore suppression directive — are implemented here on top of
// go/ast and go/types alone.
//
// The analyzers themselves live under internal/lint/analyzers; the drivers
// (the go vet -vettool protocol and the analysistest-style fixture runner)
// live in internal/lint/unitchecker and internal/lint/checktest.
package jxanalysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one static check. Name identifies it in diagnostics and in
// //jx:lint-ignore directives; Doc says what invariant it enforces.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked compilation unit.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Package bundles a parsed, type-checked compilation unit — the input the
// drivers hand to Run.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// Run executes the analyzers over pkg, applies the //jx:lint-ignore
// directives, and returns the surviving diagnostics in a deterministic
// order (position, then analyzer, then message).
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	diags = Filter(pkg.Fset, pkg.Files, diags)
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
