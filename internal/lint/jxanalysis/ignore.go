package jxanalysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The escape hatch: a comment of the form
//
//	//jx:lint-ignore <analyzer> <reason>
//
// suppresses diagnostics from <analyzer> reported on the same line as the
// directive or on the line directly below it (so the directive can trail
// the offending statement or sit on its own line above it). The reason is
// mandatory: an intentional violation must say why it is intentional, and
// a directive without a reason is itself reported. When the ignoreaudit
// analyzer is active, a well-formed directive that suppresses nothing is
// reported too, so stale escape hatches cannot accumulate.
const ignorePrefix = "//jx:lint-ignore"

type ignoreKey struct {
	file string
	line int
}

// directive is one parsed //jx:lint-ignore comment and whether it
// suppressed at least one diagnostic. analyzer and reason are the
// normalized fields: whitespace runs (spaces or tabs) between the
// directive parts collapse, so the audit can echo the directive in a
// canonical form regardless of how it was typed.
type directive struct {
	pos      token.Pos
	end      token.Pos // end of the comment, for the deletion fix
	file     string
	line     int
	analyzer string
	reason   string
	used     bool
}

// normalized renders the directive in its canonical single-space form.
func (d *directive) normalized() string {
	return ignorePrefix + " " + d.analyzer + " " + d.reason
}

// Filter applies the //jx:lint-ignore directives found in files to diags:
// suppressed diagnostics are dropped, and malformed directives are
// reported as diagnostics of the pseudo-analyzer "jxlint".
func Filter(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	kept, _ := filterTrack(fset, files, diags)
	return kept
}

// filterTrack is Filter, also returning every well-formed directive with
// its usage state so the framework can audit stale suppressions.
func filterTrack(fset *token.FileSet, files []*ast.File, diags []Diagnostic) ([]Diagnostic, []*directive) {
	index := map[ignoreKey]map[string][]*directive{}
	var directives []*directive
	var kept []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				// The prefix must end at a word boundary: a comment like
				// //jx:lint-ignored is some other text, not a directive.
				// Any run of spaces or tabs before and between the fields
				// is tolerated and normalized away.
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					kept = append(kept, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "jxlint",
						Message:  `malformed ignore directive: want "//jx:lint-ignore <analyzer> <reason>"`,
					})
					continue
				}
				pos := fset.Position(c.Pos())
				d := &directive{
					pos:      c.Pos(),
					end:      c.End(),
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
				}
				directives = append(directives, d)
				key := ignoreKey{pos.Filename, pos.Line}
				if index[key] == nil {
					index[key] = map[string][]*directive{}
				}
				index[key][fields[0]] = append(index[key][fields[0]], d)
			}
		}
	}
	suppress := func(key ignoreKey, analyzer string) bool {
		ds := index[key][analyzer]
		for _, d := range ds {
			d.used = true
		}
		return len(ds) > 0
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if suppress(ignoreKey{pos.Filename, pos.Line}, d.Analyzer) ||
			suppress(ignoreKey{pos.Filename, pos.Line - 1}, d.Analyzer) {
			continue
		}
		kept = append(kept, d)
	}
	return kept, directives
}
