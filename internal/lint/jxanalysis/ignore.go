package jxanalysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The escape hatch: a comment of the form
//
//	//jx:lint-ignore <analyzer> <reason>
//
// suppresses diagnostics from <analyzer> reported on the same line as the
// directive or on the line directly below it (so the directive can trail
// the offending statement or sit on its own line above it). The reason is
// mandatory: an intentional violation must say why it is intentional, and
// a directive without a reason is itself reported.
const ignorePrefix = "//jx:lint-ignore"

type ignoreKey struct {
	file string
	line int
}

// Filter applies the //jx:lint-ignore directives found in files to diags:
// suppressed diagnostics are dropped, and malformed directives are
// reported as diagnostics of the pseudo-analyzer "jxlint".
func Filter(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	index := map[ignoreKey]map[string]bool{}
	var kept []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(c.Text, ignorePrefix))
				if len(fields) < 2 {
					kept = append(kept, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "jxlint",
						Message:  `malformed ignore directive: want "//jx:lint-ignore <analyzer> <reason>"`,
					})
					continue
				}
				pos := fset.Position(c.Pos())
				key := ignoreKey{pos.Filename, pos.Line}
				if index[key] == nil {
					index[key] = map[string]bool{}
				}
				index[key][fields[0]] = true
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if index[ignoreKey{pos.Filename, pos.Line}][d.Analyzer] ||
			index[ignoreKey{pos.Filename, pos.Line - 1}][d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
