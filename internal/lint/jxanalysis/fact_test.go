package jxanalysis

import (
	"go/token"
	"go/types"
	"testing"
)

type testFact struct{ N int }

func (*testFact) AFact() {}

type otherFact struct{}

func (*otherFact) AFact() {}

type valueFact struct{}

func (valueFact) AFact() {}

// buildPkg constructs a synthetic package with a package-level function F
// and a method T.M — the two serializable object shapes.
func buildPkg() (*types.Package, *types.Func, *types.Func) {
	pkg := types.NewPackage("example.com/p", "p")
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	fn := types.NewFunc(token.NoPos, pkg, "F", sig)
	pkg.Scope().Insert(fn)
	tn := types.NewTypeName(token.NoPos, pkg, "T", nil)
	named := types.NewNamed(tn, types.NewStruct(nil, nil), nil)
	pkg.Scope().Insert(tn)
	recv := types.NewVar(token.NoPos, pkg, "r", named)
	msig := types.NewSignatureType(recv, nil, nil, nil, nil, false)
	m := types.NewFunc(token.NoPos, pkg, "M", msig)
	named.AddMethod(m)
	return pkg, fn, m
}

func TestFactRoundTrip(t *testing.T) {
	reg := []*Analyzer{{Name: "test", FactTypes: []Fact{new(testFact), new(otherFact)}}}
	if err := RegisterFactTypes(reg); err != nil {
		t.Fatal(err)
	}
	pkg, fn, m := buildPkg()
	src := NewFacts()
	src.setObject(fn, &testFact{N: 7})
	src.setObject(m, &testFact{N: 9})
	src.setPackage(pkg, &otherFact{})
	// A fact on a local cannot cross units and must be dropped by Encode.
	local := types.NewVar(token.NoPos, pkg, "local", types.Typ[types.Int])
	src.setObject(local, &testFact{N: 1})

	data, err := src.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("Encode returned no data for a non-empty store")
	}

	// Decode against a fresh reconstruction of the package, the way a
	// dependent unit sees it through export data: distinct objects, same
	// paths and names.
	pkg2, fn2, m2 := buildPkg()
	dst := NewFacts()
	find := func(path string) *types.Package {
		if path == pkg2.Path() {
			return pkg2
		}
		return nil
	}
	if err := dst.Decode(data, find); err != nil {
		t.Fatal(err)
	}
	var got testFact
	if !dst.getObject(fn2, &got) || got.N != 7 {
		t.Errorf("fact on F: got (%v, %+v), want N=7", dst.getObject(fn2, &got), got)
	}
	if !dst.getObject(m2, &got) || got.N != 9 {
		t.Errorf("fact on T.M: got (%v, %+v), want N=9", dst.getObject(m2, &got), got)
	}
	var op otherFact
	if !dst.getPackage(pkg2, &op) {
		t.Error("package fact did not round-trip")
	}
	if n := len(dst.ObjectFacts()); n != 2 {
		t.Errorf("decoded %d object facts, want 2 (the local-variable fact must not serialize)", n)
	}
}

func TestFactGetCopies(t *testing.T) {
	pkg, fn, _ := buildPkg()
	_ = pkg
	f := NewFacts()
	f.setObject(fn, &testFact{N: 3})
	var a, b testFact
	f.getObject(fn, &a)
	a.N = 99
	f.getObject(fn, &b)
	if b.N != 3 {
		t.Errorf("stored fact mutated through an imported copy: N=%d, want 3", b.N)
	}
}

func TestEncodeEmpty(t *testing.T) {
	data, err := NewFacts().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if data != nil {
		t.Errorf("empty store encoded to %d bytes, want nil", len(data))
	}
	if err := NewFacts().Decode(nil, func(string) *types.Package { return nil }); err != nil {
		t.Errorf("decoding nil data: %v", err)
	}
}

func TestRegisterFactTypesRejectsNonPointer(t *testing.T) {
	err := RegisterFactTypes([]*Analyzer{{Name: "bad", FactTypes: []Fact{valueFact{}}}})
	if err == nil {
		t.Fatal("RegisterFactTypes accepted a non-pointer fact type")
	}
}

func TestFactName(t *testing.T) {
	if got := FactName(&testFact{}); got != "testFact" {
		t.Errorf("FactName = %q, want testFact", got)
	}
}
