// Package loader parses and type-checks fixture packages for the
// analysistest-style harness (internal/lint/checktest) without shelling
// out to the go tool: fixture-local imports are resolved recursively from
// a GOPATH-like source root, everything else (the standard library) goes
// through go/importer's source importer. The vet driver does not use this
// loader — it type-checks against the export data cmd/go hands it.
package loader

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"jxplain/internal/lint/jxanalysis"
)

// Load parses and type-checks the package at root/path (and, recursively,
// any imports also located under root). Test files (_test.go) are included
// in the package, mirroring how go vet analyzes the test-augmented unit.
func Load(root, path string) (*jxanalysis.Package, error) {
	im := &fixtureImporter{
		root:  root,
		fset:  token.NewFileSet(),
		cache: map[string]*entry{},
	}
	im.std = importer.ForCompiler(im.fset, "source", nil)
	e, err := im.load(path)
	if err != nil {
		return nil, err
	}
	return &jxanalysis.Package{Fset: im.fset, Files: e.files, Types: e.pkg, Info: e.info}, nil
}

// LoadAll is Load, additionally returning the fixture-local packages the
// main package (transitively) imports, in dependency order: each package
// appears after everything it imports, so a driver can analyze the slice
// front to back and have every fact available when its importer runs.
// All packages share one FileSet.
func LoadAll(root, path string) (main *jxanalysis.Package, deps []*jxanalysis.Package, err error) {
	im := &fixtureImporter{
		root:  root,
		fset:  token.NewFileSet(),
		cache: map[string]*entry{},
	}
	im.std = importer.ForCompiler(im.fset, "source", nil)
	e, err := im.load(path)
	if err != nil {
		return nil, nil, err
	}
	for _, d := range im.order {
		if d == e {
			continue
		}
		deps = append(deps, &jxanalysis.Package{Fset: im.fset, Files: d.files, Types: d.pkg, Info: d.info})
	}
	return &jxanalysis.Package{Fset: im.fset, Files: e.files, Types: e.pkg, Info: e.info}, deps, nil
}

type entry struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type fixtureImporter struct {
	root  string
	fset  *token.FileSet
	std   types.Importer
	cache map[string]*entry
	order []*entry // fixture packages in completion (dependency) order
}

// Import resolves an import path: fixture packages from the source root,
// anything else from the standard library.
func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(im.root, path)); err == nil && st.IsDir() {
		e, err := im.load(path)
		if err != nil {
			return nil, err
		}
		return e.pkg, nil
	}
	return im.std.Import(path)
}

func (im *fixtureImporter) load(path string) (*entry, error) {
	if e, ok := im.cache[path]; ok {
		if e == nil {
			return nil, fmt.Errorf("loader: import cycle through %s", path)
		}
		return e, nil
	}
	im.cache[path] = nil // cycle marker
	dir := filepath.Join(im.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range entries {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".go") && !strings.HasPrefix(de.Name(), ".") {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := jxanalysis.NewInfo()
	conf := types.Config{Importer: im}
	pkg, err := conf.Check(path, im.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", path, err)
	}
	e := &entry{pkg: pkg, files: files, info: info}
	im.cache[path] = e
	im.order = append(im.order, e)
	return e, nil
}
