// Package checktest is a miniature of golang.org/x/tools/go/analysis/
// analysistest: it loads a fixture package from a testdata source root,
// runs analyzers over it (including the //jx:lint-ignore filtering, so
// fixtures exercise the escape hatch end-to-end), and compares the
// diagnostics against "// want" expectations embedded in the fixture.
//
// An expectation is a comment on the offending line of the form
//
//	// want "regexp"
//	// want "regexp-1" "regexp-2"
//
// Each quoted pattern must match the message of exactly one diagnostic
// reported on that line; diagnostics with no matching expectation, and
// expectations with no matching diagnostic, fail the test.
//
// Fact-declaring analyzers are additionally run over the fixture's
// in-fixture dependency packages first (dependency order, shared fact
// store, diagnostics discarded), so cross-package fixtures see the same
// fact flow as the vet driver. Exported facts can be pinned with
//
//	// want-fact AllocFree
//	// want-fact AllocFree ColdPath
//
// on the declaration line: each named fact type must be attached to an
// object declared on that line. The check is one-way — facts without a
// want-fact comment are not errors.
//
// SuggestedFix edits can be pinned with
//
//	// want-fix "regexp"
//
// on the diagnostic's line: the pattern must match the canonical
// rendering of exactly one fix-carrying diagnostic reported there. A fix
// renders as its message followed by each edit as -"deleted"+"inserted"
// (insertion-only edits render as +"...", deletions as -"...", both
// strings Go-quoted), so an expectation can pin the exact bytes a -fix
// run would write. Like want-fact, the check is one-way: fixes without a
// want-fix comment are not errors, but every want-fix must match.
//
// One comment may stack several markers — e.g.
//
//	x := f() // want "msg" // want-fix `\+"//jx:monoid\\n"`
//
// each marker claims the text to its right, scanning right to left.
package checktest

import (
	"go/token"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"jxplain/internal/lint/jxanalysis"
	"jxplain/internal/lint/loader"
)

type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

type factExpectation struct {
	file    string
	line    int
	name    string
	matched bool
}

type fixExpectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads root/path and checks analyzer's diagnostics against the
// fixture's // want comments.
func Run(t *testing.T, root, path string, analyzer *jxanalysis.Analyzer) {
	t.Helper()
	RunSuite(t, root, path, []*jxanalysis.Analyzer{analyzer})
}

// RunSuite is Run for a set of analyzers sharing one pass — the form the
// ignoreaudit fixtures need (the audit activates only when ignoreaudit
// runs alongside the analyzer whose directive it validates) and the form
// cross-package fact fixtures need.
func RunSuite(t *testing.T, root, path string, suite []*jxanalysis.Analyzer) {
	t.Helper()
	main, deps, err := loader.LoadAll(root, path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	facts := jxanalysis.NewFacts()
	factSuite := make([]*jxanalysis.Analyzer, 0, len(suite))
	for _, a := range suite {
		if len(a.FactTypes) > 0 {
			factSuite = append(factSuite, a)
		}
	}
	for _, dep := range deps {
		if len(factSuite) == 0 {
			break
		}
		if _, err := jxanalysis.RunFacts(dep, factSuite, facts); err != nil {
			t.Fatalf("running fact analyzers on dependency %s: %v", dep.Types.Path(), err)
		}
	}
	diags, err := jxanalysis.RunFacts(main, suite, facts)
	if err != nil {
		t.Fatalf("running suite on %s: %v", path, err)
	}

	expects, factExpects, fixExpects := collectExpectations(t, main, deps)

	for _, d := range diags {
		pos := main.Fset.Position(d.Pos)
		if !claim(expects, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic [%s] %s", pos, d.Analyzer, d.Message)
		}
		if d.SuggestedFix != nil {
			claimFix(fixExpects, pos, renderFix(t, main.Fset, d.SuggestedFix))
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", e.file, e.line, e.raw)
		}
	}
	for _, e := range fixExpects {
		if !e.matched {
			t.Errorf("%s:%d: no suggested fix matched want-fix %q", e.file, e.line, e.raw)
		}
	}

	for _, of := range facts.ObjectFacts() {
		pos := main.Fset.Position(of.Object.Pos())
		name := jxanalysis.FactName(of.Fact)
		for _, fe := range factExpects {
			if fe.file == pos.Filename && fe.line == pos.Line && fe.name == name {
				fe.matched = true
			}
		}
	}
	for _, fe := range factExpects {
		if !fe.matched {
			t.Errorf("%s:%d: no exported fact matched want-fact %s", fe.file, fe.line, fe.name)
		}
	}
}

// collectExpectations scans the main package for // want and // want-fix
// comments and the whole fixture (main and dependencies — facts cross
// packages) for // want-fact comments.
func collectExpectations(t *testing.T, main *jxanalysis.Package, deps []*jxanalysis.Package) ([]*expectation, []*factExpectation, []*fixExpectation) {
	t.Helper()
	var expects []*expectation
	var factExpects []*factExpectation
	var fixExpects []*fixExpectation
	scan := func(pkg *jxanalysis.Package, wantDiags bool) {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					full := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					pos := pkg.Fset.Position(c.Pos())
					// Markers may trail other comments or each other in one
					// line comment — e.g. a //jx:lint-ignore directive whose
					// own position an ignoreaudit fixture asserts on, or a
					// want beside a want-fix. Each "// want" claims the text
					// to its right, scanning right to left so every stacked
					// marker is seen exactly once.
					for {
						i := strings.LastIndex(full, "// want")
						text := full
						if i >= 0 {
							text = strings.TrimSpace(strings.TrimPrefix(full[i:], "//"))
							full = strings.TrimSpace(full[:i])
						}
						switch {
						case strings.HasPrefix(text, "want-fact "):
							for _, name := range strings.Fields(strings.TrimPrefix(text, "want-fact ")) {
								factExpects = append(factExpects, &factExpectation{
									file: pos.Filename, line: pos.Line, name: name,
								})
							}
						case wantDiags && strings.HasPrefix(text, "want-fix "):
							for _, raw := range splitQuoted(t, pos, strings.TrimPrefix(text, "want-fix ")) {
								rx, err := regexp.Compile(raw)
								if err != nil {
									t.Fatalf("%s: bad want-fix pattern %q: %v", pos, raw, err)
								}
								fixExpects = append(fixExpects, &fixExpectation{
									file: pos.Filename, line: pos.Line, rx: rx, raw: raw,
								})
							}
						case wantDiags && strings.HasPrefix(text, "want "):
							for _, raw := range splitQuoted(t, pos, strings.TrimPrefix(text, "want ")) {
								rx, err := regexp.Compile(raw)
								if err != nil {
									t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
								}
								expects = append(expects, &expectation{
									file: pos.Filename, line: pos.Line, rx: rx, raw: raw,
								})
							}
						}
						if i < 0 || full == "" {
							break // leftmost segment consumed; the rest is prose
						}
					}
				}
			}
		}
	}
	scan(main, true)
	for _, dep := range deps {
		scan(dep, false) // dependency diagnostics are discarded; only facts matter
	}
	return expects, factExpects, fixExpects
}

// renderFix renders a SuggestedFix in the canonical form want-fix
// patterns match: the message, then each edit as -"deleted"+"inserted"
// with the deleted bytes read back from the fixture source.
func renderFix(t *testing.T, fset *token.FileSet, fix *jxanalysis.SuggestedFix) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(fix.Message)
	for _, e := range fix.Edits {
		sb.WriteByte(' ')
		start, end := fset.Position(e.Pos), fset.Position(e.End)
		if end.Offset > start.Offset {
			data, err := os.ReadFile(start.Filename)
			if err != nil || end.Offset > len(data) {
				t.Fatalf("reading fix source %s: %v", start.Filename, err)
			}
			sb.WriteString("-" + strconv.Quote(string(data[start.Offset:end.Offset])))
		}
		if e.NewText != "" {
			sb.WriteString("+" + strconv.Quote(e.NewText))
		}
	}
	return sb.String()
}

func claimFix(expects []*fixExpectation, pos token.Position, rendered string) bool {
	for _, e := range expects {
		if !e.matched && e.file == pos.Filename && e.line == pos.Line && e.rx.MatchString(rendered) {
			e.matched = true
			return true
		}
	}
	return false
}

func claim(expects []*expectation, pos token.Position, msg string) bool {
	for _, e := range expects {
		if !e.matched && e.file == pos.Filename && e.line == pos.Line && e.rx.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// splitQuoted parses a sequence of Go-quoted strings.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		quoted, rest, err := quotedPrefix(s)
		if err != nil {
			t.Fatalf("%s: malformed want comment near %q: %v", pos, s, err)
		}
		unquoted, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s: malformed want pattern %q: %v", pos, quoted, err)
		}
		out = append(out, unquoted)
		s = rest
	}
}

func quotedPrefix(s string) (quoted, rest string, err error) {
	prefix, err := strconv.QuotedPrefix(s)
	if err != nil {
		return "", "", err
	}
	return prefix, s[len(prefix):], nil
}
