// Package checktest is a miniature of golang.org/x/tools/go/analysis/
// analysistest: it loads a fixture package from a testdata source root,
// runs one analyzer over it (including the //jx:lint-ignore filtering, so
// fixtures exercise the escape hatch end-to-end), and compares the
// diagnostics against "// want" expectations embedded in the fixture.
//
// An expectation is a comment on the offending line of the form
//
//	// want "regexp"
//	// want "regexp-1" "regexp-2"
//
// Each quoted pattern must match the message of exactly one diagnostic
// reported on that line; diagnostics with no matching expectation, and
// expectations with no matching diagnostic, fail the test.
package checktest

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"jxplain/internal/lint/jxanalysis"
	"jxplain/internal/lint/loader"
)

type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads root/path and checks analyzer's diagnostics against the
// fixture's // want comments.
func Run(t *testing.T, root, path string, analyzer *jxanalysis.Analyzer) {
	t.Helper()
	pkg, err := loader.Load(root, path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	diags, err := jxanalysis.Run(pkg, []*jxanalysis.Analyzer{analyzer})
	if err != nil {
		t.Fatalf("running %s on %s: %v", analyzer.Name, path, err)
	}

	var expects []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, raw := range splitQuoted(t, pos, strings.TrimPrefix(text, "want ")) {
					rx, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
					}
					expects = append(expects, &expectation{
						file: pos.Filename, line: pos.Line, rx: rx, raw: raw,
					})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !claim(expects, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", e.file, e.line, e.raw)
		}
	}
}

func claim(expects []*expectation, pos token.Position, msg string) bool {
	for _, e := range expects {
		if !e.matched && e.file == pos.Filename && e.line == pos.Line && e.rx.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// splitQuoted parses a sequence of Go-quoted strings.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		quoted, rest, err := quotedPrefix(s)
		if err != nil {
			t.Fatalf("%s: malformed want comment near %q: %v", pos, s, err)
		}
		unquoted, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s: malformed want pattern %q: %v", pos, quoted, err)
		}
		out = append(out, unquoted)
		s = rest
	}
}

func quotedPrefix(s string) (quoted, rest string, err error) {
	prefix, err := strconv.QuotedPrefix(s)
	if err != nil {
		return "", "", err
	}
	return prefix, s[len(prefix):], nil
}
