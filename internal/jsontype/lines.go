package jsontype

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"jxplain/internal/dist"
)

// DecodeLines derives structural types from newline-delimited JSON
// (JSONL): one document per non-blank line, decoded in parallel across the
// given worker count (<= 0 uses all cores). Type extraction is the
// scan-heavy first step of discovery, and JSONL's framing makes it
// embarrassingly parallel — unlike the general concatenated-JSON stream
// DecodeAll accepts.
//
// Errors carry the 1-based line number of the offending document.
func DecodeLines(r io.Reader, workers int) ([]*Type, error) {
	type line struct {
		number int
		data   []byte
	}
	var lines []line
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<26)
	n := 0
	for scanner.Scan() {
		n++
		data := scanner.Bytes()
		if len(bytes.TrimSpace(data)) == 0 {
			continue
		}
		lines = append(lines, line{number: n, data: append([]byte(nil), data...)})
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}

	type result struct {
		t   *Type
		err error
	}
	results := dist.Map(lines, workers, func(l line) result {
		t, err := FromJSON(l.data)
		if err != nil {
			return result{err: fmt.Errorf("line %d: %w", l.number, err)}
		}
		return result{t: t}
	})
	out := make([]*Type, len(results))
	for i, res := range results {
		if res.err != nil {
			return nil, res.err
		}
		out[i] = res.t
	}
	return out, nil
}
