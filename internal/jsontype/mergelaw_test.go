package jsontype

import "testing"

// Property tests for the monoid laws behind the mergeable-sketch pipeline
// (and demanded by the mergelaw analyzer): Bag.Merge and
// SimilarityAccumulator.Combine must be commutative and associative so
// chunked / parallel folds reach the same state regardless of fold shape.

func lawTypes() []*Type {
	return []*Type{
		MustFromValue(map[string]any{"id": 1.0, "name": "x"}),
		MustFromValue(map[string]any{"id": 2.0, "tags": []any{"a", "b"}}),
		MustFromValue([]any{1.0, "s", nil}),
		MustFromValue("plain"),
		MustFromValue(map[string]any{"id": nil}),
	}
}

func lawBags() (a, b, c *Bag) {
	ts := lawTypes()
	a = NewBag(ts[0], ts[1], ts[0])
	b = NewBag(ts[1], ts[2], ts[2], ts[3])
	c = NewBag(ts[4], ts[0])
	return
}

// requireSameMultiset asserts x and y contain the same types with the same
// multiplicities (insertion order aside).
func requireSameMultiset(t *testing.T, x, y *Bag) {
	t.Helper()
	if x.Len() != y.Len() || x.Distinct() != y.Distinct() {
		t.Fatalf("multiset mismatch: len %d vs %d, distinct %d vs %d",
			x.Len(), y.Len(), x.Distinct(), y.Distinct())
	}
	for i, ty := range x.Types() {
		if got, want := y.CountOf(ty), x.Count(i); got != want {
			t.Fatalf("multiplicity of %s: %d vs %d", ty, got, want)
		}
	}
}

// requireSameBag asserts x and y agree including insertion order.
func requireSameBag(t *testing.T, x, y *Bag) {
	t.Helper()
	requireSameMultiset(t, x, y)
	for i, ty := range x.Types() {
		if y.Types()[i] != ty {
			t.Fatalf("insertion order diverges at %d: %s vs %s", i, y.Types()[i], ty)
		}
	}
}

func TestBagMergeCommutativeProperty(t *testing.T) {
	a1, b1, _ := lawBags()
	a2, b2, _ := lawBags()
	a1.Merge(b1) // a ⊕ b
	b2.Merge(a2) // b ⊕ a
	requireSameMultiset(t, a1, b2)
}

func TestBagMergeAssociativeProperty(t *testing.T) {
	a1, b1, c1 := lawBags()
	a1.Merge(b1)
	a1.Merge(c1) // (a ⊕ b) ⊕ c

	a2, b2, c2 := lawBags()
	b2.Merge(c2)
	a2.Merge(b2) // a ⊕ (b ⊕ c)

	requireSameBag(t, a1, a2)
}

func lawAccumulators(ts []*Type) []*SimilarityAccumulator {
	accs := make([]*SimilarityAccumulator, 0, len(ts))
	for _, ty := range ts {
		acc := &SimilarityAccumulator{}
		acc.Add(ty)
		accs = append(accs, acc)
	}
	return accs
}

// requireSameAccumulator compares observable state; interning makes Max
// comparison a pointer check.
func requireSameAccumulator(t *testing.T, x, y *SimilarityAccumulator) {
	t.Helper()
	if x.Similar() != y.Similar() {
		t.Fatalf("Similar: %v vs %v", x.Similar(), y.Similar())
	}
	if x.Max() != y.Max() {
		t.Fatalf("Max: %s vs %s", x.Max(), y.Max())
	}
}

func TestSimilarityAccumulatorCombineCommutativeProperty(t *testing.T) {
	// Similar trio (objects with overlapping keys and a null wildcard) and a
	// dissimilar pair (object vs string): the laws must hold on both sides
	// of the latch.
	similar := []*Type{
		MustFromValue(map[string]any{"a": 1.0}),
		MustFromValue(map[string]any{"b": "s"}),
		MustFromValue(map[string]any{"a": nil, "c": true}),
	}
	dissimilar := []*Type{
		MustFromValue(map[string]any{"a": 1.0}),
		MustFromValue("plain"),
	}
	for _, ts := range [][]*Type{similar, dissimilar} {
		x1 := lawAccumulators(ts)
		x2 := lawAccumulators(ts)
		x1[0].Combine(x1[1])
		x2[1].Combine(x2[0])
		requireSameAccumulator(t, x1[0], x2[1])
	}
}

func TestSimilarityAccumulatorCombineAssociativeProperty(t *testing.T) {
	ts := []*Type{
		MustFromValue(map[string]any{"a": 1.0}),
		MustFromValue(map[string]any{"b": "s"}),
		MustFromValue(map[string]any{"a": nil, "c": true}),
	}
	x := lawAccumulators(ts)
	x[0].Combine(x[1])
	x[0].Combine(x[2]) // (x ⊕ y) ⊕ z

	y := lawAccumulators(ts)
	y[1].Combine(y[2])
	y[0].Combine(y[1]) // x ⊕ (y ⊕ z)

	requireSameAccumulator(t, x[0], y[0])
}
