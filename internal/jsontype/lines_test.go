package jsontype

import (
	"fmt"
	"strings"
	"testing"
)

func TestDecodeLinesBasic(t *testing.T) {
	input := "{\"a\":1}\n\n  \n{\"a\":2,\"b\":\"x\"}\n[1,2]\n"
	types, err := DecodeLines(strings.NewReader(input), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(types) != 3 {
		t.Fatalf("got %d types", len(types))
	}
	if !Equal(types[0], obj("a", Number)) ||
		!Equal(types[1], obj("a", Number, "b", String)) ||
		!Equal(types[2], arr(Number, Number)) {
		t.Errorf("types = %v", types)
	}
}

func TestDecodeLinesReportsLineNumber(t *testing.T) {
	input := "{\"a\":1}\n{broken\n{\"a\":2}\n"
	_, err := DecodeLines(strings.NewReader(input), 4)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line 2", err)
	}
}

func TestDecodeLinesMatchesDecodeAll(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&b, `{"id":%d,"tags":["a","b"],"geo":[1.5,2.5]}`+"\n", i)
	}
	viaLines, err := DecodeLines(strings.NewReader(b.String()), 8)
	if err != nil {
		t.Fatal(err)
	}
	viaStream, err := DecodeAll(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(viaLines) != len(viaStream) {
		t.Fatalf("lengths differ: %d vs %d", len(viaLines), len(viaStream))
	}
	for i := range viaLines {
		if !Equal(viaLines[i], viaStream[i]) {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestDecodeLinesEmpty(t *testing.T) {
	types, err := DecodeLines(strings.NewReader(""), 3)
	if err != nil || len(types) != 0 {
		t.Errorf("empty input: %v %v", types, err)
	}
}

func TestDecodeLinesTrailingContentOnLine(t *testing.T) {
	// Two documents on one line violate JSONL.
	if _, err := DecodeLines(strings.NewReader(`{"a":1} {"b":2}`), 1); err == nil {
		t.Error("two documents per line should fail")
	}
}
