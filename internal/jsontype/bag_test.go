package jsontype

import "testing"

func TestBagAddAndCounts(t *testing.T) {
	b := NewBag(Number, Number, String)
	if b.Len() != 3 {
		t.Errorf("Len = %d, want 3", b.Len())
	}
	if b.Distinct() != 2 {
		t.Errorf("Distinct = %d, want 2", b.Distinct())
	}
	if b.CountOf(Number) != 2 || b.CountOf(String) != 1 || b.CountOf(Bool) != 0 {
		t.Error("CountOf broken")
	}
	b.AddN(Bool, 5)
	if b.Len() != 8 || b.CountOf(Bool) != 5 {
		t.Error("AddN broken")
	}
}

func TestBagAddNPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddN(t, 0) should panic")
		}
	}()
	(&Bag{}).AddN(Number, 0)
}

func TestBagDeduplicatesStructurally(t *testing.T) {
	b := &Bag{}
	b.Add(obj("a", Number, "b", String))
	b.Add(obj("b", String, "a", Number))
	if b.Distinct() != 1 || b.Len() != 2 {
		t.Errorf("structural dedup failed: distinct=%d len=%d", b.Distinct(), b.Len())
	}
}

func TestBagInsertionOrderPreserved(t *testing.T) {
	b := NewBag(String, Number, Bool, Number)
	types := b.Types()
	if types[0] != String || types[1] != Number || types[2] != Bool {
		t.Errorf("insertion order not preserved: %v", types)
	}
	if b.Count(1) != 2 {
		t.Errorf("Count(1) = %d, want 2", b.Count(1))
	}
}

func TestBagAddBagAndEach(t *testing.T) {
	a := NewBag(Number, Number)
	c := NewBag(Number, String)
	a.AddBag(c)
	if a.Len() != 4 || a.CountOf(Number) != 3 || a.CountOf(String) != 1 {
		t.Error("AddBag broken")
	}
	total := 0
	a.Each(func(_ *Type, n int) { total += n })
	if total != 4 {
		t.Errorf("Each total = %d, want 4", total)
	}
}

func TestSplitKinds(t *testing.T) {
	b := NewBag(Number, Null, arr(Number), obj("a", String), arr(String), Bool)
	prims, arrays, objects := b.SplitKinds()
	if prims.Len() != 3 || arrays.Len() != 2 || objects.Len() != 1 {
		t.Errorf("SplitKinds: %d/%d/%d, want 3/2/1", prims.Len(), arrays.Len(), objects.Len())
	}
}

func TestElements(t *testing.T) {
	b := &Bag{}
	b.Add(arr(Number, String))
	b.AddN(arr(Number), 2)
	el := b.Elements()
	if el.Len() != 4 || el.CountOf(Number) != 3 || el.CountOf(String) != 1 {
		t.Errorf("Elements: len=%d num=%d str=%d", el.Len(), el.CountOf(Number), el.CountOf(String))
	}
}

func TestFieldValues(t *testing.T) {
	b := &Bag{}
	b.Add(obj("a", Number, "b", String))
	b.AddN(obj("c", Number), 3)
	fv := b.FieldValues()
	if fv.Len() != 5 || fv.CountOf(Number) != 4 || fv.CountOf(String) != 1 {
		t.Error("FieldValues broken")
	}
}

func TestGroupByKey(t *testing.T) {
	b := &Bag{}
	b.AddN(obj("a", Number, "b", String), 2)
	b.Add(obj("a", Null, "c", Bool))
	keys, groups, present := b.GroupByKey()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
	if present[0] != 3 || present[1] != 2 || present[2] != 1 {
		t.Errorf("present = %v", present)
	}
	if groups[0].CountOf(Number) != 2 || groups[0].CountOf(Null) != 1 {
		t.Error("group for key a wrong")
	}
}

func TestGroupByIndex(t *testing.T) {
	b := &Bag{}
	b.AddN(arr(Number, Number), 2)
	b.Add(arr(String, Number, Bool))
	groups, present := b.GroupByIndex()
	if len(groups) != 3 {
		t.Fatalf("got %d positions, want 3", len(groups))
	}
	if present[0] != 3 || present[1] != 3 || present[2] != 1 {
		t.Errorf("present = %v", present)
	}
	if groups[0].CountOf(Number) != 2 || groups[0].CountOf(String) != 1 {
		t.Error("group 0 wrong")
	}
	if groups[2].CountOf(Bool) != 1 {
		t.Error("group 2 wrong")
	}
}

func TestGroupByIndexEmpty(t *testing.T) {
	b := NewBag(arr())
	groups, present := b.GroupByIndex()
	if len(groups) != 0 || len(present) != 0 {
		t.Error("empty arrays should produce no positions")
	}
}
