package jsontype

import (
	"strings"
	"testing"
)

func codecSampleTypes(t *testing.T) []*Type {
	t.Helper()
	docs := []string{
		`null`,
		`true`,
		`3.5`,
		`"s"`,
		`[]`,
		`{}`,
		`[1, "a", null]`,
		`{"id": 1, "name": "x"}`,
		`{"id": 1, "geo": [1.0, 2.0], "tags": ["a"], "meta": {"k": {"deep": [[true]]}}}`,
		`{"a\\b": 1, "c:d": "x", "e,f": [1], "g{h}": {"i[j]": null}}`,
	}
	out := make([]*Type, len(docs))
	for i, doc := range docs {
		ty, err := FromJSON([]byte(doc))
		if err != nil {
			t.Fatalf("FromJSON(%s): %v", doc, err)
		}
		out[i] = ty
	}
	return out
}

// TestTypeCodecRoundTripIdentity pins the codec's defining property: a
// decoded reference resolves to the *same pointer* as the encoded type,
// because decoding re-interns every entry. Pointer identity — not just
// structural equality — is what Bag dedup and the merge memo rely on.
func TestTypeCodecRoundTripIdentity(t *testing.T) {
	types := codecSampleTypes(t)
	enc := NewTypeEncoder()
	refs := make([]uint64, len(types))
	for i, ty := range types {
		refs[i] = enc.Ref(ty)
	}
	data := enc.Append(nil)

	dec, n, err := DecodeTypeTable(data)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(data) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(data))
	}
	for i, ty := range types {
		got, err := dec.Type(refs[i])
		if err != nil {
			t.Fatal(err)
		}
		if got != ty {
			t.Errorf("type %d (%s): decoded to a different pointer (canon %q vs %q)",
				i, ty, got.Canon(), ty.Canon())
		}
	}
}

// TestTypeCodecSharedSubtreesEncodedOnce checks the table dedups repeated
// subtrees through the ref map.
func TestTypeCodecSharedSubtreesEncodedOnce(t *testing.T) {
	inner := MustFromValue(map[string]any{"x": 1.0, "y": 2.0})
	a := NewArray([]*Type{inner, inner})
	b := NewObject([]Field{{Key: "p", Type: inner}, {Key: "q", Type: a}})

	enc := NewTypeEncoder()
	enc.Ref(a)
	enc.Ref(b)
	// inner, a, b: exactly three complex entries despite four references.
	if enc.Len() != 3 {
		t.Fatalf("table has %d entries, want 3", enc.Len())
	}
}

// TestTypeCodecNilAndPrimitiveRefs checks the reserved reference space.
func TestTypeCodecNilAndPrimitiveRefs(t *testing.T) {
	enc := NewTypeEncoder()
	if r := enc.Ref(nil); r != 0 {
		t.Errorf("nil ref = %d, want 0", r)
	}
	prims := []*Type{Null, Bool, Number, String}
	for i, p := range prims {
		if r := enc.Ref(p); r != uint64(i)+1 {
			t.Errorf("%s ref = %d, want %d", p, enc.Ref(p), i+1)
		}
	}
	if enc.Len() != 0 {
		t.Fatalf("primitives must not occupy table entries, got %d", enc.Len())
	}
	data := enc.Append(nil)
	dec, _, err := DecodeTypeTable(data)
	if err != nil {
		t.Fatal(err)
	}
	if ty, err := dec.Type(0); err != nil || ty != nil {
		t.Errorf("Type(0) = %v, %v; want nil, nil", ty, err)
	}
	for i, p := range prims {
		ty, err := dec.Type(uint64(i) + 1)
		if err != nil || ty != p {
			t.Errorf("Type(%d) = %v, %v; want %s", i+1, ty, err, p)
		}
	}
}

// TestTypeCodecRejectsMalformed feeds the decoder the corruption classes
// it must reject without panicking.
func TestTypeCodecRejectsMalformed(t *testing.T) {
	enc := NewTypeEncoder()
	enc.Ref(MustFromValue(map[string]any{"a": 1.0, "b": []any{"x"}}))
	valid := enc.Append(nil)

	// Truncations at every prefix length.
	for i := 0; i < len(valid); i++ {
		if _, _, err := DecodeTypeTable(valid[:i]); err == nil {
			// A prefix may still parse as a shorter valid table only if the
			// consumed length is reported; DecodeTypeTable of a strict prefix
			// of a table with entries must fail or consume fewer bytes.
			dec, n, _ := DecodeTypeTable(valid[:i])
			if dec != nil && n > i {
				t.Fatalf("truncated input at %d consumed %d bytes", i, n)
			}
		}
	}

	cases := map[string][]byte{
		"bad kind":         {1, 9, 0},
		"forward ref":      {2, byte(KindArray), 1, 6},          // entry 0 referencing entry 1
		"self ref":         {1, byte(KindArray), 1, 5},          // entry 0 referencing itself
		"nil child":        {1, byte(KindArray), 1, 0},          // ref 0 as a child
		"huge count":       {1, byte(KindArray), 255, 255, 127}, // element count beyond input
		"table too big":    {255, 255, 255, 127},
		"primitive entry":  {1, byte(KindNull)},
		"unsorted keys":    {1, byte(KindObject), 2, 1, 'b', 1, 1, 'a', 1},
		"duplicate keys":   {1, byte(KindObject), 2, 1, 'a', 1, 1, 'a', 1},
		"key past end":     {1, byte(KindObject), 1, 200, 'a'},
		"overlong varint":  append([]byte{}, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80),
		"out of range ref": nil, // handled below via dec.Type
	}
	for name, data := range cases {
		if data == nil {
			continue
		}
		if _, _, err := DecodeTypeTable(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}

	dec, _, err := DecodeTypeTable([]byte{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Type(firstComplexRef); err == nil {
		t.Error("out-of-range ref resolved without error")
	}
}

// TestRestoreSimilarityAccumulator checks the restore constructor against
// live accumulators in all three observable states.
func TestRestoreSimilarityAccumulator(t *testing.T) {
	a := MustFromValue(map[string]any{"x": 1.0})
	b := MustFromValue(map[string]any{"y": "s"})
	c := MustFromValue([]any{1.0})

	var live SimilarityAccumulator
	live.Add(a)
	live.Add(b)
	restored := RestoreSimilarityAccumulator(live.Max(), live.Similar())
	if restored.Similar() != live.Similar() || restored.Max() != live.Max() {
		t.Fatal("similar-state restore diverges")
	}
	// Both must keep evolving identically.
	live.Add(c)
	restored.Add(c)
	if restored.Similar() != live.Similar() || restored.Max() != live.Max() {
		t.Fatal("restored accumulator diverges after further adds")
	}

	empty := RestoreSimilarityAccumulator(nil, true)
	if !empty.Similar() || empty.Max() != nil {
		t.Fatal("empty restore diverges")
	}
	bad := RestoreSimilarityAccumulator(nil, false)
	if bad.Similar() || bad.Max() != nil {
		t.Fatal("dissimilar restore diverges")
	}
	var combined SimilarityAccumulator
	combined.Add(a)
	combined.Combine(&bad)
	if combined.Similar() {
		t.Fatal("dissimilar restore must latch through Combine")
	}
}

// TestTypeCodecCanonStability re-encodes a decoded table and checks the
// bytes are identical — the codec is canonical for a given insertion
// order.
func TestTypeCodecCanonStability(t *testing.T) {
	types := codecSampleTypes(t)
	enc := NewTypeEncoder()
	for _, ty := range types {
		enc.Ref(ty)
	}
	data := enc.Append(nil)
	dec, _, err := DecodeTypeTable(data)
	if err != nil {
		t.Fatal(err)
	}
	re := NewTypeEncoder()
	for _, ty := range dec.table {
		re.Ref(ty)
	}
	got := re.Append(nil)
	if string(got) != string(data) {
		t.Fatalf("re-encode diverges:\n% x\nvs\n% x", got, data)
	}
	if strings.Contains(string(data), "\x00\x00\x00\x00\x00\x00\x00\x00") {
		t.Log("table contains a zero run (informational)")
	}
}
