package jsontype

import (
	"strings"
	"testing"
)

func mustFromJSON(t *testing.T, s string) *Type {
	t.Helper()
	ty, err := FromJSON([]byte(s))
	if err != nil {
		t.Fatalf("FromJSON(%q): %v", s, err)
	}
	return ty
}

func TestFromJSONPrimitives(t *testing.T) {
	cases := map[string]*Type{
		"null":    Null,
		"true":    Bool,
		"false":   Bool,
		"3.25":    Number,
		"-17":     Number,
		`"hello"`: String,
		`""`:      String,
	}
	for src, want := range cases {
		if got := mustFromJSON(t, src); !Equal(got, want) {
			t.Errorf("FromJSON(%s) = %v, want %v", src, got, want)
		}
	}
}

func TestFromJSONComplex(t *testing.T) {
	got := mustFromJSON(t, `{"ts":7,"event":"login","user":{"name":"bob","geo":[1.5,-2.5]}}`)
	want := obj("ts", Number, "event", String,
		"user", obj("name", String, "geo", arr(Number, Number)))
	if !Equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestFromJSONEmptyContainers(t *testing.T) {
	if got := mustFromJSON(t, `[]`); got.Kind() != KindArray || got.Len() != 0 {
		t.Errorf("empty array: %v", got)
	}
	if got := mustFromJSON(t, `{}`); got.Kind() != KindObject || got.Len() != 0 {
		t.Errorf("empty object: %v", got)
	}
}

func TestFromJSONDuplicateKeysLastWins(t *testing.T) {
	got := mustFromJSON(t, `{"a":1,"a":"x"}`)
	if !Equal(got, obj("a", String)) {
		t.Errorf("duplicate keys: got %v, want {a: 𝕊}", got)
	}
}

func TestFromJSONErrors(t *testing.T) {
	for _, src := range []string{``, `{`, `[1,`, `{"a"}`, `1 2`, `tru`} {
		if _, err := FromJSON([]byte(src)); err == nil {
			t.Errorf("FromJSON(%q) should fail", src)
		}
	}
}

func TestDecodeAll(t *testing.T) {
	input := "{\"a\":1}\n{\"a\":2,\"b\":\"x\"}\n[1,2]\n\"s\"\n"
	types, err := DecodeAll(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(types) != 4 {
		t.Fatalf("got %d types, want 4", len(types))
	}
	if !Equal(types[0], obj("a", Number)) ||
		!Equal(types[1], obj("a", Number, "b", String)) ||
		!Equal(types[2], arr(Number, Number)) ||
		!Equal(types[3], String) {
		t.Errorf("DecodeAll mismatch: %v", types)
	}
}

func TestDecodeAllEmpty(t *testing.T) {
	types, err := DecodeAll(strings.NewReader("  \n "))
	if err != nil || len(types) != 0 {
		t.Errorf("empty stream: %v, %v", types, err)
	}
}

func TestFromValue(t *testing.T) {
	v := map[string]any{
		"n":   nil,
		"b":   true,
		"f":   1.5,
		"i":   int(3),
		"s":   "x",
		"arr": []any{1.0, "y"},
		"o":   map[string]any{"k": false},
	}
	got, err := FromValue(v)
	if err != nil {
		t.Fatal(err)
	}
	want := obj("n", Null, "b", Bool, "f", Number, "i", Number, "s", String,
		"arr", arr(Number, String), "o", obj("k", Bool))
	if !Equal(got, want) {
		t.Errorf("FromValue = %v, want %v", got, want)
	}
}

func TestFromValueUnsupported(t *testing.T) {
	if _, err := FromValue(struct{}{}); err == nil {
		t.Error("FromValue(struct{}{}) should fail")
	}
	if _, err := FromValue([]any{struct{}{}}); err == nil {
		t.Error("nested unsupported value should fail")
	}
	if _, err := FromValue(map[string]any{"k": struct{}{}}); err == nil {
		t.Error("nested unsupported value should fail")
	}
}

func TestMustFromValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFromValue should panic on unsupported input")
		}
	}()
	MustFromValue(make(chan int))
}

func TestFromJSONAgreesWithFromValue(t *testing.T) {
	src := `{"a":[1,{"b":null}],"c":"x","d":[[true]]}`
	viaJSON := mustFromJSON(t, src)
	viaValue := MustFromValue(map[string]any{
		"a": []any{1.0, map[string]any{"b": nil}},
		"c": "x",
		"d": []any{[]any{true}},
	})
	if !Equal(viaJSON, viaValue) {
		t.Errorf("FromJSON %v != FromValue %v", viaJSON, viaValue)
	}
}
