package jsontype

import (
	"encoding/binary"
	"fmt"
)

// Structural type codec. Serialized discovery state (sketch files, the
// jxshard map output) must reference types without leaking intern ids —
// ids are dense per-process counters that depend on intern order, so two
// workers observing the same structure assign different ids. The codec
// therefore writes types *structurally*, as a table in which children
// precede their parents, and writes references as table positions. On
// decode every entry is rebuilt through NewArray/NewObject, i.e.
// re-interned into the receiving process's table, so pointer-identity
// equality (and everything built on it: Bag dedup keys, memo keys,
// Similar's fast path) holds across the wire exactly as it does
// in-process.
//
// Reference space:
//
//	0        nil (no type)
//	1 .. 4   the primitive singletons Null, Bool, Number, String
//	5 ..     complex table entries, in table order
//
// Table entry layout (all integers unsigned varints):
//
//	kind byte (KindArray | KindObject)
//	array:  n, then n child refs
//	object: n, then n × (key length, key bytes, child ref)
//
// Child refs always point at primitives or *earlier* table entries;
// object keys are strictly increasing within an entry (Type.Fields is
// key-sorted). The decoder rejects violations of either property, which
// is what keeps it total on corrupt input: NewObject panics on duplicate
// keys, so the decoder must never reach it with any.

// firstComplexRef is the reference of table entry 0.
const firstComplexRef = 5

// primitiveRef returns the wire reference of a primitive kind (1..4).
func primitiveRef(k Kind) uint64 { return uint64(k) + 1 }

// TypeEncoder accumulates a structural type table. The zero value is not
// ready; use NewTypeEncoder.
type TypeEncoder struct {
	refs  map[*Type]uint64
	order []*Type // complex types, children before parents
}

// NewTypeEncoder returns an empty encoder.
func NewTypeEncoder() *TypeEncoder {
	return &TypeEncoder{refs: map[*Type]uint64{}}
}

// Ref interns t (and, transitively, its children) into the table and
// returns its wire reference. Ref is idempotent: interning makes repeated
// subtrees the same pointer, so each distinct subtree is encoded once.
// A nil type encodes as reference 0.
func (e *TypeEncoder) Ref(t *Type) uint64 {
	if t == nil {
		return 0
	}
	if t.Kind().Primitive() {
		return primitiveRef(t.Kind())
	}
	if r, ok := e.refs[t]; ok {
		return r
	}
	// Children first: their refs must be smaller than the parent's.
	switch t.Kind() {
	case KindArray:
		for _, c := range t.Elems() {
			e.Ref(c)
		}
	case KindObject:
		for _, f := range t.Fields() {
			e.Ref(f.Type)
		}
	}
	r := uint64(len(e.order)) + firstComplexRef
	e.refs[t] = r
	e.order = append(e.order, t)
	return r
}

// Len returns the number of complex table entries interned so far.
func (e *TypeEncoder) Len() int { return len(e.order) }

// Reset empties the encoder for reuse, keeping the allocated table
// capacity — the hook that lets callers pool encoders across Marshal
// calls instead of rebuilding the ref map every time.
func (e *TypeEncoder) Reset() {
	clear(e.refs)
	e.order = e.order[:0]
}

// refOf resolves an already-interned type (or primitive) to its wire
// reference without mutating the table.
func (e *TypeEncoder) refOf(t *Type) uint64 {
	if t.Kind().Primitive() {
		return primitiveRef(t.Kind())
	}
	return e.refs[t]
}

// Append serializes the table section onto buf and returns the extended
// slice.
func (e *TypeEncoder) Append(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(e.order)))
	for _, t := range e.order {
		buf = append(buf, byte(t.Kind()))
		switch t.Kind() {
		case KindArray:
			buf = binary.AppendUvarint(buf, uint64(len(t.Elems())))
			for _, c := range t.Elems() {
				buf = binary.AppendUvarint(buf, e.refOf(c))
			}
		case KindObject:
			buf = binary.AppendUvarint(buf, uint64(len(t.Fields())))
			for _, f := range t.Fields() {
				buf = binary.AppendUvarint(buf, uint64(len(f.Key)))
				buf = append(buf, f.Key...)
				buf = binary.AppendUvarint(buf, e.refOf(f.Type))
			}
		}
	}
	return buf
}

// TypeDecoder resolves wire references against a decoded type table.
type TypeDecoder struct {
	table []*Type
}

// DecodeTypeTable decodes a table section from the front of data,
// re-interning every entry, and returns the decoder plus the number of
// bytes consumed. It never panics: malformed input (truncation, forward
// or out-of-range references, unsorted or duplicate object keys,
// primitive kinds in the table) yields an error.
func DecodeTypeTable(data []byte) (*TypeDecoder, int, error) {
	pos := 0
	n, err := readUvarint(data, &pos, "type table length")
	if err != nil {
		return nil, 0, err
	}
	// Each entry costs at least one kind byte plus one varint byte.
	if n > uint64(len(data)-pos) {
		return nil, 0, fmt.Errorf("jsontype: type table claims %d entries with %d bytes left", n, len(data)-pos)
	}
	d := &TypeDecoder{table: make([]*Type, 0, n)}
	for i := uint64(0); i < n; i++ {
		if pos >= len(data) {
			return nil, 0, fmt.Errorf("jsontype: type table truncated at entry %d", i)
		}
		kind := Kind(data[pos])
		pos++
		switch kind {
		case KindArray:
			m, err := readUvarint(data, &pos, "array length")
			if err != nil {
				return nil, 0, err
			}
			if m > uint64(len(data)-pos) {
				return nil, 0, fmt.Errorf("jsontype: array entry claims %d elements with %d bytes left", m, len(data)-pos)
			}
			elems := make([]*Type, m)
			for j := range elems {
				c, err := d.readRef(data, &pos, uint64(i))
				if err != nil {
					return nil, 0, err
				}
				elems[j] = c
			}
			d.table = append(d.table, NewArray(elems))
		case KindObject:
			m, err := readUvarint(data, &pos, "field count")
			if err != nil {
				return nil, 0, err
			}
			if m > uint64(len(data)-pos) {
				return nil, 0, fmt.Errorf("jsontype: object entry claims %d fields with %d bytes left", m, len(data)-pos)
			}
			fields := make([]Field, m)
			prev := ""
			for j := range fields {
				kl, err := readUvarint(data, &pos, "key length")
				if err != nil {
					return nil, 0, err
				}
				if kl > uint64(len(data)-pos) {
					return nil, 0, fmt.Errorf("jsontype: key length %d exceeds %d remaining bytes", kl, len(data)-pos)
				}
				key := string(data[pos : pos+int(kl)])
				pos += int(kl)
				if j > 0 && key <= prev {
					return nil, 0, fmt.Errorf("jsontype: object keys not strictly sorted (%q after %q)", key, prev)
				}
				prev = key
				c, err := d.readRef(data, &pos, uint64(i))
				if err != nil {
					return nil, 0, err
				}
				fields[j] = Field{Key: key, Type: c}
			}
			d.table = append(d.table, NewObject(fields))
		default:
			return nil, 0, fmt.Errorf("jsontype: invalid kind byte %d in type table", kind)
		}
	}
	return d, pos, nil
}

// readRef reads one child reference for table entry `entry`, enforcing
// the children-before-parents invariant.
func (d *TypeDecoder) readRef(data []byte, pos *int, entry uint64) (*Type, error) {
	r, err := readUvarint(data, pos, "type ref")
	if err != nil {
		return nil, err
	}
	if r == 0 {
		return nil, fmt.Errorf("jsontype: nil ref as child of table entry %d", entry)
	}
	if r >= firstComplexRef && r-firstComplexRef >= entry {
		return nil, fmt.Errorf("jsontype: forward ref %d in table entry %d", r, entry)
	}
	return d.Type(r)
}

// Type resolves a wire reference. Reference 0 resolves to nil.
func (d *TypeDecoder) Type(ref uint64) (*Type, error) {
	t, ok := d.Lookup(ref)
	if !ok {
		return nil, fmt.Errorf("jsontype: type ref %d out of range (table has %d entries)", ref, len(d.table))
	}
	return t, nil
}

// primitiveForRef maps wire references 1..4 to the primitive singletons,
// in Kind order (the same mapping primitiveRef writes).
var primitiveForRef = [...]*Type{Null, Bool, Number, String}

// Lookup resolves a wire reference without constructing an error value:
// the resolution step on the sketch merge-into path, where the reference
// is almost always valid and the caller supplies its own typed error.
// Reference 0 resolves to (nil, true).
//
//jx:hotpath
func (d *TypeDecoder) Lookup(ref uint64) (*Type, bool) {
	switch {
	case ref == 0:
		return nil, true
	case ref < firstComplexRef:
		return primitiveForRef[ref-1], true
	case ref-firstComplexRef < uint64(len(d.table)):
		return d.table[ref-firstComplexRef], true
	}
	return nil, false
}

// readUvarint reads one unsigned varint at *pos, advancing it.
func readUvarint(data []byte, pos *int, what string) (uint64, error) {
	v, n := binary.Uvarint(data[*pos:])
	if n <= 0 {
		return 0, fmt.Errorf("jsontype: truncated or overlong varint (%s) at offset %d", what, *pos)
	}
	*pos += n
	return v, nil
}

// RestoreSimilarityAccumulator rebuilds a SimilarityAccumulator from its
// observable state — the maximal type (nil when nothing was added) and the
// pairwise-similarity verdict — as reported by Max and Similar. Once a
// bag of additions has latched dissimilar, its maximal type no longer
// influences any observable behavior (Max returns nil, Similar returns
// false, and Combine only propagates the latch), so (max, similar)
// round-trips the accumulator exactly.
//
//jx:hotpath
func RestoreSimilarityAccumulator(max *Type, similar bool) SimilarityAccumulator {
	if !similar {
		return SimilarityAccumulator{dissimilar: true}
	}
	return SimilarityAccumulator{max: max}
}
