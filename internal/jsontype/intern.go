package jsontype

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// Hash-consing interner. Every complex Type is registered in a sharded
// global table at construction, keyed by a 64-bit structural hash (FNV-1a
// over the kind, the child type ids, and — for objects — the field keys).
// Child ids are unique by induction (children are interned before their
// parent), so the hash covers the whole subtree in O(direct children)
// work; hash collisions are resolved by a shallow structural scan of the
// bucket, which again only compares child *pointers*.
//
// Consequences the rest of the system builds on:
//
//   - Equal is pointer identity,
//   - Bag and memo tables key on the dense uint64 id instead of the
//     canonical string,
//   - repeated records allocate no new type nodes — only the first
//     occurrence of each distinct subtree costs a node.
//
// The table is append-only and safe for concurrent use (the ingest worker
// pool decodes in parallel). It grows with the distinct structure observed
// over the process lifetime — the same asymptote as any single retained
// Bag — and is never reset: released types would otherwise be re-interned
// as fresh pointers while stale pointers to the old nodes survive,
// silently breaking pointer equality.

const internShardCount = 64 // power of two; shard = hash & (count-1)

type internShard struct {
	mu sync.Mutex
	m  map[uint64][]*Type // structural hash -> bucket
}

var (
	internShards [internShardCount]internShard
	internNextID atomic.Uint64 // ids 1..4 are the primitive singletons
)

func init() {
	for i := range internShards {
		internShards[i].m = make(map[uint64][]*Type)
	}
	internNextID.Store(4)
}

// newPrimitiveSingleton builds one of the four primitive singletons with a
// fixed id and a pre-cached canonical form. Kinds are 0..3, ids 1..4.
func newPrimitiveSingleton(k Kind, canon string) *Type {
	t := &Type{kind: k, hash: hashPrimitive(k), id: uint64(k) + 1}
	t.canon.Store(&canon)
	return t
}

// FNV-1a 64-bit.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

//jx:hotpath
func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

//jx:hotpath
func fnvUint64(h uint64, v uint64) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	for _, b := range buf {
		h = fnvByte(h, b)
	}
	return h
}

//jx:hotpath
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

//jx:hotpath
func hashPrimitive(k Kind) uint64 {
	return fnvByte(fnvOffset, byte(k))
}

//jx:hotpath
func hashArray(elems []*Type) uint64 {
	h := fnvByte(fnvOffset, byte(KindArray))
	for _, e := range elems {
		h = fnvUint64(h, e.id)
	}
	return h
}

//jx:hotpath
func hashObject(fields []Field) uint64 {
	h := fnvByte(fnvOffset, byte(KindObject))
	for _, f := range fields {
		// NUL-terminated key then child id; a key containing NUL can at
		// worst alias another hash input, which the bucket scan resolves.
		h = fnvString(h, f.Key)
		h = fnvByte(h, 0)
		h = fnvUint64(h, f.Type.id)
	}
	return h
}

// internArray returns the canonical *Type for the array [elems...]. The
// slice is retained on a miss.
//
//jx:hotpath
func internArray(elems []*Type) *Type { return internArraySlice(elems, false) }

// internArrayScratch is internArray for callers reusing a scratch buffer:
// the slice is copied on a miss and never retained, so the caller may
// overwrite it immediately — this is what keeps the scanner's steady state
// allocation-free once the distinct types have been seen.
//
//jx:hotpath
func internArrayScratch(elems []*Type) *Type { return internArraySlice(elems, true) }

//jx:hotpath
func internArraySlice(elems []*Type, scratch bool) *Type {
	h := hashArray(elems)
	shard := &internShards[h&(internShardCount-1)]
	shard.mu.Lock()
	for _, c := range shard.m[h] {
		if c.kind == KindArray && sameElems(c.elems, elems) {
			shard.mu.Unlock()
			return c
		}
	}
	if scratch {
		elems = append([]*Type(nil), elems...)
	}
	t := &Type{kind: KindArray, elems: elems, hash: h, id: internNextID.Add(1)}
	shard.m[h] = append(shard.m[h], t)
	shard.mu.Unlock()
	return t
}

// internObject returns the canonical *Type for the key-sorted fields. The
// slice is retained on a miss.
//
//jx:hotpath
func internObject(fields []Field) *Type { return internObjectSlice(fields, false) }

// internObjectScratch is internObject with copy-on-miss semantics (see
// internArrayScratch).
//
//jx:hotpath
func internObjectScratch(fields []Field) *Type { return internObjectSlice(fields, true) }

//jx:hotpath
func internObjectSlice(fields []Field, scratch bool) *Type {
	h := hashObject(fields)
	shard := &internShards[h&(internShardCount-1)]
	shard.mu.Lock()
	for _, c := range shard.m[h] {
		if c.kind == KindObject && sameFields(c.fields, fields) {
			shard.mu.Unlock()
			return c
		}
	}
	if scratch {
		fields = append([]Field(nil), fields...)
	}
	t := &Type{kind: KindObject, fields: fields, hash: h, id: internNextID.Add(1)}
	shard.m[h] = append(shard.m[h], t)
	shard.mu.Unlock()
	return t
}

// sameElems compares two child lists by pointer — sound because children
// are already interned.
//
//jx:hotpath
func sameElems(a, b []*Type) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

//jx:hotpath
func sameFields(a, b []Field) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Type != b[i].Type {
			return false
		}
	}
	return true
}

// InternedTypes reports the number of distinct complex types interned so
// far (primitives excluded) — an observability hook for memory accounting.
func InternedTypes() uint64 { return internNextID.Load() - 4 }
