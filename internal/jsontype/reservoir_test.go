package jsontype

import (
	"fmt"
	"reflect"
	"testing"
)

// entriesOf snapshots the retained (canon, count) sequence in first-seen
// order.
func entriesOf(r *ReservoirBag) []string {
	var out []string
	r.Each(func(t *Type, n int) {
		out = append(out, fmt.Sprintf("%s×%d", t.Canon(), n))
	})
	return out
}

// multisetOf snapshots the retained (canon, count) pairs order-blind.
func multisetOf(r *ReservoirBag) map[string]int {
	out := map[string]int{}
	r.Each(func(t *Type, n int) { out[t.Canon()] += n })
	return out
}

func churnType(tb testing.TB, i int) *Type {
	tb.Helper()
	t, err := FromValue(map[string]any{fmt.Sprintf("k%03d", i): 1.0})
	if err != nil {
		tb.Fatalf("churnType: %v", err)
	}
	return t
}

func TestReservoirExactWhileUnderCapacity(t *testing.T) {
	exact := &Bag{}
	res := NewReservoirBag(64, 7)
	for i := 0; i < 32; i++ {
		ty := churnType(t, i%8)
		exact.AddN(ty, 1+i%3)
		res.AddN(ty, 1+i%3)
	}
	if res.Evictions() != 0 || res.Dropped() != 0 {
		t.Fatalf("no eviction expected: evictions=%d dropped=%d", res.Evictions(), res.Dropped())
	}
	if res.Len() != exact.Len() || res.Distinct() != exact.Distinct() {
		t.Fatalf("totals diverge: res (%d, %d) vs exact (%d, %d)",
			res.Len(), res.Distinct(), exact.Len(), exact.Distinct())
	}
	snap := res.Snapshot()
	for i, ty := range exact.Types() {
		if snap.Types()[i] != ty || snap.Count(i) != exact.Count(i) {
			t.Fatalf("entry %d diverges: %s×%d vs %s×%d", i,
				snap.Types()[i].Canon(), snap.Count(i), ty.Canon(), exact.Count(i))
		}
	}
}

func TestReservoirBoundsDistinctTypes(t *testing.T) {
	res := NewReservoirBag(16, 1)
	for i := 0; i < 5000; i++ {
		res.Add(churnType(t, i))
		if res.Distinct() > 16 {
			t.Fatalf("capacity exceeded at i=%d: distinct=%d", i, res.Distinct())
		}
	}
	if res.Seen() != 5000 {
		t.Fatalf("seen=%d, want 5000", res.Seen())
	}
	if got := int64(res.Len()) + res.Dropped(); got != res.Seen() {
		t.Fatalf("conservation violated: retained %d + dropped %d != seen %d",
			res.Len(), res.Dropped(), res.Seen())
	}
}

func TestReservoirWeightProtectsHeavyTypes(t *testing.T) {
	res := NewReservoirBag(8, 42)
	heavy := churnType(t, 9999)
	res.AddN(heavy, 100000)
	for i := 0; i < 2000; i++ {
		res.Add(churnType(t, i))
	}
	if got := res.Snapshot().CountOf(heavy); got != 100000 {
		t.Fatalf("heavy type lost or miscounted: count=%d", got)
	}
}

func TestReservoirDeterministicReplay(t *testing.T) {
	run := func() []string {
		res := NewReservoirBag(32, 3)
		for i := 0; i < 3000; i++ {
			res.AddN(churnType(t, i%700), 1+i%5)
		}
		return entriesOf(res)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay diverged:\n%v\nvs\n%v", a, b)
	}
}

func TestReservoirDecayAgesOutDeadTypes(t *testing.T) {
	res := NewReservoirBag(8, 5)
	dead := churnType(t, 1)
	live := churnType(t, 2)
	res.AddN(dead, 3)
	res.AddN(live, 1000)
	for i := 0; i < 3; i++ {
		res.Decay(0.5)
		res.AddN(live, 1000)
	}
	if res.Snapshot().CountOf(dead) != 0 {
		t.Fatalf("dead type still resident after decay: %v", entriesOf(res))
	}
	if res.Snapshot().CountOf(live) == 0 {
		t.Fatal("live type decayed away")
	}
	if res.Distinct() != 1 {
		t.Fatalf("distinct=%d, want 1", res.Distinct())
	}
}

func TestReservoirDecayFreesCapacity(t *testing.T) {
	res := NewReservoirBag(4, 5)
	for i := 0; i < 4; i++ {
		res.Add(churnType(t, i))
	}
	// Freshly-seen singletons survive the first decay at count 1; a full
	// idle interval ages them out.
	if aged := res.Decay(0.5); aged != 0 {
		t.Fatalf("aged=%d, want 0 (touched entries floor at 1)", aged)
	}
	if res.Distinct() != 4 {
		t.Fatalf("distinct=%d, want 4", res.Distinct())
	}
	if aged := res.Decay(0.5); aged != 4 {
		t.Fatalf("aged=%d, want 4 (idle singletons floor to zero)", aged)
	}
	fresh := churnType(t, 100)
	res.AddN(fresh, 2)
	if res.Snapshot().CountOf(fresh) != 2 {
		t.Fatal("freed capacity not reusable")
	}
}

func TestReservoirMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on capacity mismatch")
		}
	}()
	NewReservoirBag(4, 1).Merge(NewReservoirBag(8, 1))
}

// ---- merge-law property tests (mergelaw analyzer convention) ----
//
// Like Bag.Merge, the reservoir merge is commutative on the retained
// (type, count) multiset — selection compares combined weights and
// seed-deterministic priorities, never arrival sides — while the
// presentation order follows the receiver's first-seen order. The
// associativity test additionally pins full equality (order included) in
// the no-eviction regime, where a ReservoirBag must behave as an exact
// Bag; under eviction, regrouping may lose different occurrences of
// types that are ultimately evicted anyway, which is the documented
// approximation (see DESIGN.md "Unbounded streams").

func lawReservoirChunks(tb testing.TB) [][]*Type {
	var chunks [][]*Type
	for c := 0; c < 3; c++ {
		var chunk []*Type
		for i := 0; i < 12; i++ {
			chunk = append(chunk, churnType(tb, c*7+i))
		}
		chunks = append(chunks, chunk)
	}
	return chunks
}

func reservoirOf(chunk []*Type, capacity int) *ReservoirBag {
	r := NewReservoirBag(capacity, 11)
	for i, t := range chunk {
		r.AddN(t, 1+i%4)
	}
	return r
}

func TestReservoirBagMergeCommutativeProperty(t *testing.T) {
	chunks := lawReservoirChunks(t)
	for _, capacity := range []int{8, 64} { // eviction and no-eviction regimes
		ab := reservoirOf(chunks[0], capacity)
		ab.Merge(reservoirOf(chunks[1], capacity))

		ba := reservoirOf(chunks[1], capacity)
		ba.Merge(reservoirOf(chunks[0], capacity))

		if ma, mb := multisetOf(ab), multisetOf(ba); !reflect.DeepEqual(ma, mb) {
			t.Fatalf("capacity %d: retained multisets diverge:\n%v\nvs\n%v", capacity, ma, mb)
		}
		if ab.Seen() != ba.Seen() || ab.Len() != ba.Len() {
			t.Fatalf("capacity %d: totals diverge", capacity)
		}
	}
}

func TestReservoirBagMergeAssociativeProperty(t *testing.T) {
	chunks := lawReservoirChunks(t)
	const capacity = 64 // ≥ total distinct: exact-Bag regime, order included

	left := reservoirOf(chunks[0], capacity)
	left.Merge(reservoirOf(chunks[1], capacity))
	left.Merge(reservoirOf(chunks[2], capacity)) // (a ⊕ b) ⊕ c

	bc := reservoirOf(chunks[1], capacity)
	bc.Merge(reservoirOf(chunks[2], capacity))
	right := reservoirOf(chunks[0], capacity)
	right.Merge(bc) // a ⊕ (b ⊕ c)

	if ea, eb := entriesOf(left), entriesOf(right); !reflect.DeepEqual(ea, eb) {
		t.Fatalf("groupings diverge:\n%v\nvs\n%v", ea, eb)
	}
}
