// Package jsontype implements the structural type system for JSON values
// described in Section 2 of "Reducing Ambiguity in Json Schema Discovery"
// (SIGMOD 2021). A Type describes the shape of a single JSON value:
// primitives are atomic kinds; arrays carry one element type per position;
// objects carry a key-sorted list of field types.
//
// Types are immutable once built. Canonical string forms make structural
// equality, hashing, and deduplication cheap, which the schema extractors
// rely on heavily (L-reduction is literally a set of canonical types).
package jsontype

import (
	"sort"
	"strings"
)

// Kind enumerates the six JSON kinds of Figure 2: the four primitive kinds
// (null, boolean, number, string) and the two complex kinds (array, object).
type Kind uint8

// The six JSON kinds.
const (
	KindNull Kind = iota
	KindBool
	KindNumber
	KindString
	KindArray
	KindObject
)

// Primitive reports whether the kind is one of null, bool, number, string.
func (k Kind) Primitive() bool { return k <= KindString }

// Complex reports whether the kind is array or object.
func (k Kind) Complex() bool { return k >= KindArray }

// String returns the conventional name of the kind. Complex kinds use the
// paper's calligraphic A / O abbreviations spelled out.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	case KindArray:
		return "array"
	case KindObject:
		return "object"
	}
	return "invalid"
}

// Field is a single key → type mapping inside an object type.
type Field struct {
	Key  string
	Type *Type
}

// Type is the structural type of one JSON value (Figure 2):
//
//	τ := 𝔹 | ℝ | 𝕊 | null | [τ₁,…,τₙ] | {k₁:τ₁,…,kₙ:τₙ}
//
// For objects, Fields is sorted by key and keys are unique. For arrays,
// Elems holds one type per position. Primitive types carry no children.
//
// A Type must be treated as immutable; types are shared across records and
// schema nodes.
type Type struct {
	kind   Kind
	elems  []*Type // array positions
	fields []Field // object fields, key-sorted
	canon  string  // cached canonical form
}

// Singleton primitive types. Primitives are interned: NewPrimitive always
// returns one of these four.
var (
	Null   = &Type{kind: KindNull, canon: "n"}
	Bool   = &Type{kind: KindBool, canon: "b"}
	Number = &Type{kind: KindNumber, canon: "r"}
	String = &Type{kind: KindString, canon: "s"}
)

// NewPrimitive returns the interned primitive type for kind k.
// It panics if k is a complex kind.
func NewPrimitive(k Kind) *Type {
	switch k {
	case KindNull:
		return Null
	case KindBool:
		return Bool
	case KindNumber:
		return Number
	case KindString:
		return String
	}
	panic("jsontype: NewPrimitive called with complex kind " + k.String())
}

// NewArray returns the array type [elems...]. The slice is retained;
// callers must not mutate it afterwards.
func NewArray(elems []*Type) *Type {
	t := &Type{kind: KindArray, elems: elems}
	t.canon = t.buildCanon()
	return t
}

// NewObject returns the object type with the given fields. The slice is
// retained and sorted in place by key; callers must not mutate it
// afterwards. Duplicate keys are not permitted and panic, mirroring the
// JSON RFC's recommendation that keys be unique.
func NewObject(fields []Field) *Type {
	sort.Slice(fields, func(i, j int) bool { return fields[i].Key < fields[j].Key })
	for i := 1; i < len(fields); i++ {
		if fields[i].Key == fields[i-1].Key {
			panic("jsontype: duplicate object key " + fields[i].Key)
		}
	}
	t := &Type{kind: KindObject, fields: fields}
	t.canon = t.buildCanon()
	return t
}

// Kind returns the kind of the type.
func (t *Type) Kind() Kind { return t.kind }

// Len returns the number of fields (objects) or positions (arrays).
// It is 0 for primitives.
func (t *Type) Len() int {
	if t.kind == KindArray {
		return len(t.elems)
	}
	return len(t.fields)
}

// Elem returns the element type at array position i.
func (t *Type) Elem(i int) *Type { return t.elems[i] }

// Elems returns the array's element types. The returned slice must not be
// mutated.
func (t *Type) Elems() []*Type { return t.elems }

// Fields returns the object's key-sorted fields. The returned slice must
// not be mutated.
func (t *Type) Fields() []Field { return t.fields }

// Field returns the type mapped under key, or nil if the key is absent.
func (t *Type) Field(key string) *Type {
	i := sort.Search(len(t.fields), func(i int) bool { return t.fields[i].Key >= key })
	if i < len(t.fields) && t.fields[i].Key == key {
		return t.fields[i].Type
	}
	return nil
}

// HasField reports whether the object type maps key.
func (t *Type) HasField(key string) bool { return t.Field(key) != nil }

// Keys returns the object's keys in sorted order (keys(τ) in the paper).
// For arrays it returns nil; array "keys" are the indices 0..Len-1.
func (t *Type) Keys() []string {
	if t.kind != KindObject {
		return nil
	}
	keys := make([]string, len(t.fields))
	for i, f := range t.fields {
		keys[i] = f.Key
	}
	return keys
}

// KeySet returns the object's keys as a set.
func (t *Type) KeySet() map[string]bool {
	set := make(map[string]bool, len(t.fields))
	for _, f := range t.fields {
		set[f.Key] = true
	}
	return set
}

// Canon returns the canonical string form of the type. Two types are
// structurally equal iff their canonical forms are equal, so Canon doubles
// as a hash key for type deduplication.
func (t *Type) Canon() string { return t.canon }

// Equal reports structural equality.
func Equal(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	return a.canon == b.canon
}

func (t *Type) buildCanon() string {
	var b strings.Builder
	t.writeCanon(&b)
	return b.String()
}

func (t *Type) writeCanon(b *strings.Builder) {
	switch t.kind {
	case KindNull:
		b.WriteByte('n')
	case KindBool:
		b.WriteByte('b')
	case KindNumber:
		b.WriteByte('r')
	case KindString:
		b.WriteByte('s')
	case KindArray:
		b.WriteByte('[')
		for i, e := range t.elems {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(e.canon)
		}
		b.WriteByte(']')
	case KindObject:
		b.WriteByte('{')
		for i, f := range t.fields {
			if i > 0 {
				b.WriteByte(',')
			}
			writeCanonKey(b, f.Key)
			b.WriteByte(':')
			b.WriteString(f.Type.canon)
		}
		b.WriteByte('}')
	}
}

// writeCanonKey escapes the characters that are structural in canonical
// forms so that distinct key sets can never collide.
func writeCanonKey(b *strings.Builder, key string) {
	if !strings.ContainsAny(key, `\:,{}[]`) {
		b.WriteString(key)
		return
	}
	for i := 0; i < len(key); i++ {
		switch c := key[i]; c {
		case '\\', ':', ',', '{', '}', '[', ']':
			b.WriteByte('\\')
			b.WriteByte(c)
		default:
			b.WriteByte(c)
		}
	}
}

// String renders the type in the paper's notation, e.g.
// {event: 𝕊, geo: [ℝ, ℝ], ts: ℝ}.
func (t *Type) String() string {
	var b strings.Builder
	t.writeString(&b)
	return b.String()
}

func (t *Type) writeString(b *strings.Builder) {
	switch t.kind {
	case KindNull:
		b.WriteString("null")
	case KindBool:
		b.WriteString("𝔹")
	case KindNumber:
		b.WriteString("ℝ")
	case KindString:
		b.WriteString("𝕊")
	case KindArray:
		b.WriteByte('[')
		for i, e := range t.elems {
			if i > 0 {
				b.WriteString(", ")
			}
			e.writeString(b)
		}
		b.WriteByte(']')
	case KindObject:
		b.WriteByte('{')
		for i, f := range t.fields {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.Key)
			b.WriteString(": ")
			f.Type.writeString(b)
		}
		b.WriteByte('}')
	}
}

// Depth returns the nesting depth of the type: 1 for primitives, 1 + max
// child depth for complex types (an empty array or object has depth 1).
func (t *Type) Depth() int {
	max := 0
	switch t.kind {
	case KindArray:
		for _, e := range t.elems {
			if d := e.Depth(); d > max {
				max = d
			}
		}
	case KindObject:
		for _, f := range t.fields {
			if d := f.Type.Depth(); d > max {
				max = d
			}
		}
	default:
		return 1
	}
	return 1 + max
}

// Size returns the total number of type nodes in the tree, counting t.
func (t *Type) Size() int {
	n := 1
	switch t.kind {
	case KindArray:
		for _, e := range t.elems {
			n += e.Size()
		}
	case KindObject:
		for _, f := range t.fields {
			n += f.Type.Size()
		}
	}
	return n
}
