// Package jsontype implements the structural type system for JSON values
// described in Section 2 of "Reducing Ambiguity in Json Schema Discovery"
// (SIGMOD 2021). A Type describes the shape of a single JSON value:
// primitives are atomic kinds; arrays carry one element type per position;
// objects carry a key-sorted list of field types.
//
// Types are immutable and hash-consed: the constructors intern every type
// through a sharded global table keyed by a 64-bit structural hash, so
// structurally equal types are the *same pointer*. Equality is pointer
// identity, deduplication keys are dense uint64 ids, and the canonical
// string form — which the pre-interning implementation rebuilt on every
// hot-path comparison — is computed lazily, only when something actually
// prints or serializes a type.
package jsontype

import (
	"sort"
	"strings"
	"sync/atomic"
)

// Kind enumerates the six JSON kinds of Figure 2: the four primitive kinds
// (null, boolean, number, string) and the two complex kinds (array, object).
type Kind uint8

// The six JSON kinds.
const (
	KindNull Kind = iota
	KindBool
	KindNumber
	KindString
	KindArray
	KindObject
)

// Primitive reports whether the kind is one of null, bool, number, string.
func (k Kind) Primitive() bool { return k <= KindString }

// Complex reports whether the kind is array or object.
func (k Kind) Complex() bool { return k >= KindArray }

// String returns the conventional name of the kind. Complex kinds use the
// paper's calligraphic A / O abbreviations spelled out.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	case KindArray:
		return "array"
	case KindObject:
		return "object"
	}
	return "invalid"
}

// Field is a single key → type mapping inside an object type.
type Field struct {
	Key  string
	Type *Type
}

// Type is the structural type of one JSON value (Figure 2):
//
//	τ := 𝔹 | ℝ | 𝕊 | null | [τ₁,…,τₙ] | {k₁:τ₁,…,kₙ:τₙ}
//
// For objects, Fields is sorted by key and keys are unique. For arrays,
// Elems holds one type per position. Primitive types carry no children.
//
// Every Type is interned (see intern.go): structurally equal types are the
// same pointer, so a Type must never be mutated after construction.
//
//jx:immutable
type Type struct {
	kind   Kind
	elems  []*Type                // array positions
	fields []Field                // object fields, key-sorted
	hash   uint64                 // structural hash (intern bucket key)
	id     uint64                 // dense unique id, assigned at intern time
	canon  atomic.Pointer[string] // lazily built canonical form
}

// Singleton primitive types. Primitives are interned: NewPrimitive always
// returns one of these four.
var (
	Null   = newPrimitiveSingleton(KindNull, "n")
	Bool   = newPrimitiveSingleton(KindBool, "b")
	Number = newPrimitiveSingleton(KindNumber, "r")
	String = newPrimitiveSingleton(KindString, "s")
)

// NewPrimitive returns the interned primitive type for kind k.
// It panics if k is a complex kind.
func NewPrimitive(k Kind) *Type {
	switch k {
	case KindNull:
		return Null
	case KindBool:
		return Bool
	case KindNumber:
		return Number
	case KindString:
		return String
	}
	panic("jsontype: NewPrimitive called with complex kind " + k.String())
}

// NewArray returns the interned array type [elems...]. The slice may be
// retained; callers must not mutate it afterwards.
func NewArray(elems []*Type) *Type {
	return internArray(elems)
}

// NewObject returns the interned object type with the given fields. The
// slice is sorted in place by key and may be retained; callers must not
// mutate it afterwards. Duplicate keys are not permitted and panic,
// mirroring the JSON RFC's recommendation that keys be unique.
func NewObject(fields []Field) *Type {
	sort.Slice(fields, func(i, j int) bool { return fields[i].Key < fields[j].Key })
	for i := 1; i < len(fields); i++ {
		if fields[i].Key == fields[i-1].Key {
			panic("jsontype: duplicate object key " + fields[i].Key)
		}
	}
	return internObject(fields)
}

// Kind returns the kind of the type.
//
//jx:hotpath
func (t *Type) Kind() Kind { return t.kind }

// Len returns the number of fields (objects) or positions (arrays).
// It is 0 for primitives.
//
//jx:hotpath
func (t *Type) Len() int {
	if t.kind == KindArray {
		return len(t.elems)
	}
	return len(t.fields)
}

// Elem returns the element type at array position i.
//
//jx:hotpath
func (t *Type) Elem(i int) *Type { return t.elems[i] }

// Elems returns the array's element types. The returned slice must not be
// mutated.
//
//jx:hotpath
func (t *Type) Elems() []*Type { return t.elems }

// Fields returns the object's key-sorted fields. The returned slice must
// not be mutated.
//
//jx:hotpath
func (t *Type) Fields() []Field { return t.fields }

// Field returns the type mapped under key, or nil if the key is absent.
func (t *Type) Field(key string) *Type {
	i := sort.Search(len(t.fields), func(i int) bool { return t.fields[i].Key >= key })
	if i < len(t.fields) && t.fields[i].Key == key {
		return t.fields[i].Type
	}
	return nil
}

// HasField reports whether the object type maps key.
func (t *Type) HasField(key string) bool { return t.Field(key) != nil }

// Keys returns the object's keys in sorted order (keys(τ) in the paper).
// For arrays it returns nil; array "keys" are the indices 0..Len-1.
func (t *Type) Keys() []string {
	if t.kind != KindObject {
		return nil
	}
	keys := make([]string, len(t.fields))
	for i, f := range t.fields {
		keys[i] = f.Key
	}
	return keys
}

// KeySet returns the object's keys as a set.
func (t *Type) KeySet() map[string]bool {
	set := make(map[string]bool, len(t.fields))
	for _, f := range t.fields {
		set[f.Key] = true
	}
	return set
}

// ID returns the type's dense unique intern id (1-based). Two types have
// the same id iff they are the same pointer, so ids are collision-free
// deduplication keys — this is what Bag keys on. Ids are stable for the
// life of the process but depend on intern order, so they must never leak
// into serialized output.
//
//jx:hotpath
func (t *Type) ID() uint64 { return t.id }

// Hash returns the 64-bit structural hash the interner bucketed the type
// under. Unlike ID it is a hash — equal types share it, unequal types
// almost always differ — useful for composing set-level memo keys.
func (t *Type) Hash() uint64 { return t.hash }

// Canon returns the canonical string form of the type. Two types are
// structurally equal iff their canonical forms are equal. The form is
// built lazily on first call and cached; interning keeps it off the hot
// path entirely (deduplication uses ids, not strings).
func (t *Type) Canon() string {
	if p := t.canon.Load(); p != nil {
		return *p
	}
	var b strings.Builder
	t.writeCanon(&b)
	s := b.String()
	t.canon.Store(&s)
	return s
}

// Equal reports structural equality. Interning makes this pointer
// identity.
func Equal(a, b *Type) bool { return a == b }

func (t *Type) writeCanon(b *strings.Builder) {
	if p := t.canon.Load(); p != nil {
		b.WriteString(*p)
		return
	}
	switch t.kind {
	case KindNull:
		b.WriteByte('n')
	case KindBool:
		b.WriteByte('b')
	case KindNumber:
		b.WriteByte('r')
	case KindString:
		b.WriteByte('s')
	case KindArray:
		b.WriteByte('[')
		for i, e := range t.elems {
			if i > 0 {
				b.WriteByte(',')
			}
			e.writeCanon(b)
		}
		b.WriteByte(']')
	case KindObject:
		b.WriteByte('{')
		for i, f := range t.fields {
			if i > 0 {
				b.WriteByte(',')
			}
			writeCanonKey(b, f.Key)
			b.WriteByte(':')
			f.Type.writeCanon(b)
		}
		b.WriteByte('}')
	}
}

// writeCanonKey escapes the characters that are structural in canonical
// forms so that distinct key sets can never collide.
func writeCanonKey(b *strings.Builder, key string) {
	if !strings.ContainsAny(key, `\:,{}[]`) {
		b.WriteString(key)
		return
	}
	for i := 0; i < len(key); i++ {
		switch c := key[i]; c {
		case '\\', ':', ',', '{', '}', '[', ']':
			b.WriteByte('\\')
			b.WriteByte(c)
		default:
			b.WriteByte(c)
		}
	}
}

// String renders the type in the paper's notation, e.g.
// {event: 𝕊, geo: [ℝ, ℝ], ts: ℝ}.
func (t *Type) String() string {
	var b strings.Builder
	t.writeString(&b)
	return b.String()
}

func (t *Type) writeString(b *strings.Builder) {
	switch t.kind {
	case KindNull:
		b.WriteString("null")
	case KindBool:
		b.WriteString("𝔹")
	case KindNumber:
		b.WriteString("ℝ")
	case KindString:
		b.WriteString("𝕊")
	case KindArray:
		b.WriteByte('[')
		for i, e := range t.elems {
			if i > 0 {
				b.WriteString(", ")
			}
			e.writeString(b)
		}
		b.WriteByte(']')
	case KindObject:
		b.WriteByte('{')
		for i, f := range t.fields {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.Key)
			b.WriteString(": ")
			f.Type.writeString(b)
		}
		b.WriteByte('}')
	}
}

// Depth returns the nesting depth of the type: 1 for primitives, 1 + max
// child depth for complex types (an empty array or object has depth 1).
func (t *Type) Depth() int {
	max := 0
	switch t.kind {
	case KindArray:
		for _, e := range t.elems {
			if d := e.Depth(); d > max {
				max = d
			}
		}
	case KindObject:
		for _, f := range t.fields {
			if d := f.Type.Depth(); d > max {
				max = d
			}
		}
	default:
		return 1
	}
	return 1 + max
}

// Size returns the total number of type nodes in the tree, counting t.
func (t *Type) Size() int {
	n := 1
	switch t.kind {
	case KindArray:
		for _, e := range t.elems {
			n += e.Size()
		}
	case KindObject:
		for _, f := range t.fields {
			n += f.Type.Size()
		}
	}
	return n
}
