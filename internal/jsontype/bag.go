package jsontype

import "sort"

// Bag is a multiset of types, the unit of input to every merge operator in
// the paper (ℛ in Algorithms 1-4). The zero value is an empty bag.
//
// Bags deduplicate structurally equal types and track multiplicities, so
// a million identical records cost one tree plus a counter. Insertion
// order of distinct types is preserved, which keeps extraction
// deterministic.
type Bag struct {
	types  []*Type
	counts []int
	index  map[uint64]int // intern id -> position in types
	total  int
}

// NewBag returns a bag containing the given types (each with
// multiplicity 1 per occurrence).
func NewBag(types ...*Type) *Bag {
	b := &Bag{}
	for _, t := range types {
		b.Add(t)
	}
	return b
}

// Add inserts one occurrence of t.
//
//jx:hotpath
func (b *Bag) Add(t *Type) { b.AddN(t, 1) }

// AddN inserts n occurrences of t. n must be positive.
//
//jx:hotpath
func (b *Bag) AddN(t *Type, n int) {
	if n <= 0 {
		panic("jsontype: Bag.AddN with non-positive count")
	}
	if b.index == nil {
		b.index = make(map[uint64]int)
	}
	if i, ok := b.index[t.ID()]; ok {
		b.counts[i] += n
	} else {
		b.index[t.ID()] = len(b.types)
		b.types = append(b.types, t)
		b.counts = append(b.counts, n)
	}
	b.total += n
}

// AddBag inserts every occurrence in other.
func (b *Bag) AddBag(other *Bag) { b.Merge(other) }

// Merge folds every occurrence of other into b, preserving other's
// insertion order for types b has not seen. Merge is the monoid operation
// that makes bags mergeable sketches: chunked ingestion builds one bag per
// chunk and folds them, so memory tracks distinct structure rather than
// record count. other is not modified; sharing *Type values is safe
// because types are immutable.
func (b *Bag) Merge(other *Bag) {
	if other == nil {
		return
	}
	for i, t := range other.types {
		b.AddN(t, other.counts[i])
	}
}

// Len returns the total number of occurrences in the bag.
//
//jx:hotpath
func (b *Bag) Len() int { return b.total }

// Distinct returns the number of distinct types in the bag.
func (b *Bag) Distinct() int { return len(b.types) }

// Types returns the distinct types in insertion order. The returned slice
// must not be mutated.
func (b *Bag) Types() []*Type { return b.types }

// Count returns the multiplicity of the i-th distinct type.
func (b *Bag) Count(i int) int { return b.counts[i] }

// CountOf returns the multiplicity of t (0 if absent).
func (b *Bag) CountOf(t *Type) int {
	if b.index == nil {
		return 0
	}
	if i, ok := b.index[t.ID()]; ok {
		return b.counts[i]
	}
	return 0
}

// Each calls fn for every distinct type with its multiplicity.
func (b *Bag) Each(fn func(t *Type, n int)) {
	for i, t := range b.types {
		fn(t, b.counts[i])
	}
}

// SplitKinds partitions the bag into primitives, arrays and objects,
// the first step of Algorithms 1 and 4.
func (b *Bag) SplitKinds() (prims, arrays, objects *Bag) {
	prims, arrays, objects = &Bag{}, &Bag{}, &Bag{}
	for i, t := range b.types {
		switch t.Kind() {
		case KindArray:
			arrays.AddN(t, b.counts[i])
		case KindObject:
			objects.AddN(t, b.counts[i])
		default:
			prims.AddN(t, b.counts[i])
		}
	}
	return prims, arrays, objects
}

// Elements returns a bag of every array element across the bag
// ({τ.k | k ∈ keys(τ), τ ∈ ℛ} for array-kinded ℛ; Algorithm 2).
func (b *Bag) Elements() *Bag {
	out := &Bag{}
	for i, t := range b.types {
		for _, e := range t.Elems() {
			out.AddN(e, b.counts[i])
		}
	}
	return out
}

// FieldValues returns a bag of every object field value across the bag,
// regardless of key (used when objects are merged as collections).
func (b *Bag) FieldValues() *Bag {
	out := &Bag{}
	for i, t := range b.types {
		for _, f := range t.Fields() {
			out.AddN(f.Type, b.counts[i])
		}
	}
	return out
}

// GroupByKey returns, for each key appearing in any object of the bag, the
// bag of types found under that key, plus the number of records containing
// the key. Keys are returned in sorted order for determinism.
func (b *Bag) GroupByKey() (keys []string, groups []*Bag, present []int) {
	byKey := map[string]*Bag{}
	presentBy := map[string]int{}
	for i, t := range b.types {
		for _, f := range t.Fields() {
			g := byKey[f.Key]
			if g == nil {
				g = &Bag{}
				byKey[f.Key] = g
			}
			g.AddN(f.Type, b.counts[i])
			presentBy[f.Key] += b.counts[i]
		}
	}
	keys = make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	groups = make([]*Bag, len(keys))
	present = make([]int, len(keys))
	for i, k := range keys {
		groups[i] = byKey[k]
		present[i] = presentBy[k]
	}
	return keys, groups, present
}

// GroupByIndex returns, for each array position occurring in any array of
// the bag, the bag of types at that position and the number of arrays long
// enough to have it. The slices are indexed by position 0..maxLen-1.
func (b *Bag) GroupByIndex() (groups []*Bag, present []int) {
	maxLen := 0
	for _, t := range b.types {
		if t.Len() > maxLen {
			maxLen = t.Len()
		}
	}
	groups = make([]*Bag, maxLen)
	present = make([]int, maxLen)
	for i := range groups {
		groups[i] = &Bag{}
	}
	for i, t := range b.types {
		for p, e := range t.Elems() {
			groups[p].AddN(e, b.counts[i])
			present[p] += b.counts[i]
		}
	}
	return groups, present
}
