package jsontype

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimilarNullWildcard(t *testing.T) {
	for _, ty := range []*Type{Bool, Number, String, arr(Number), obj("a", String)} {
		if !Similar(Null, ty) || !Similar(ty, Null) {
			t.Errorf("null should be similar to %v", ty)
		}
	}
	if !Similar(Null, Null) {
		t.Error("null ≈ null")
	}
}

func TestSimilarPrimitives(t *testing.T) {
	if !Similar(Number, Number) || !Similar(String, String) || !Similar(Bool, Bool) {
		t.Error("primitives should be self-similar")
	}
	if Similar(Number, String) || Similar(Bool, Number) {
		t.Error("distinct primitive kinds are dissimilar")
	}
	if Similar(Number, arr(Number)) || Similar(obj("a", Number), String) {
		t.Error("primitive vs complex are dissimilar")
	}
	if Similar(arr(Number), obj("a", Number)) {
		t.Error("array vs object are dissimilar")
	}
}

func TestSimilarObjectsSharedKeys(t *testing.T) {
	a := obj("x", Number, "y", String)
	b := obj("y", String, "z", Bool)
	if !Similar(a, b) {
		t.Error("objects with compatible shared keys should be similar")
	}
	c := obj("y", Number)
	if Similar(a, c) {
		t.Error("conflicting shared key should be dissimilar")
	}
	// Disjoint key sets are vacuously similar.
	if !Similar(obj("p", Number), obj("q", arr(String))) {
		t.Error("disjoint objects are vacuously similar")
	}
}

func TestSimilarArraysPrefix(t *testing.T) {
	if !Similar(arr(Number, Number), arr(Number)) {
		t.Error("shared positions match ⇒ similar")
	}
	if Similar(arr(Number, String), arr(Number, Number)) {
		t.Error("conflicting position ⇒ dissimilar")
	}
	if !Similar(arr(), arr(Number, String)) {
		t.Error("empty array is vacuously similar")
	}
	if !Similar(arr(Null, String), arr(Number)) {
		t.Error("null element is a wildcard")
	}
}

func TestSimilarNested(t *testing.T) {
	a := obj("u", obj("geo", arr(Number, Number)))
	b := obj("u", obj("geo", arr(Number), "name", String))
	if !Similar(a, b) {
		t.Error("nested compatible objects should be similar")
	}
	c := obj("u", obj("geo", arr(String)))
	if Similar(a, c) {
		t.Error("nested conflict should be dissimilar")
	}
}

func TestSimilarityNotTransitiveButSubsumptive(t *testing.T) {
	// Paper: two objects with a dissimilar field can each be similar to an
	// object omitting this field.
	a := obj("shared", Number, "x", Number)
	b := obj("shared", Number, "x", String)
	c := obj("shared", Number)
	if !Similar(a, c) || !Similar(b, c) {
		t.Fatal("a≈c and b≈c should hold")
	}
	if Similar(a, b) {
		t.Fatal("a and b are dissimilar")
	}
	// The accumulator must catch a,b dissimilarity even with c in between.
	var acc SimilarityAccumulator
	acc.Add(a)
	acc.Add(c)
	if acc.Add(b) {
		t.Error("accumulator missed the a/b conflict")
	}
	if acc.Similar() {
		t.Error("accumulator should have latched dissimilar")
	}
	if acc.Max() != nil {
		t.Error("Max should be nil after dissimilarity")
	}
}

func TestSimilarityAccumulatorMax(t *testing.T) {
	var acc SimilarityAccumulator
	if !acc.Similar() {
		t.Error("empty accumulator is vacuously similar")
	}
	acc.Add(obj("a", Number))
	acc.Add(obj("b", String))
	acc.Add(obj("a", Null, "c", Bool))
	if !acc.Similar() {
		t.Fatal("all inputs pairwise similar")
	}
	want := obj("a", Number, "b", String, "c", Bool)
	if !Equal(acc.Max(), want) {
		t.Errorf("Max = %v, want %v", acc.Max(), want)
	}
}

func TestSimilarityAccumulatorCombine(t *testing.T) {
	// Split a similar set across two accumulators: combined stays similar
	// with the unioned max.
	var a, b SimilarityAccumulator
	a.Add(obj("x", Number))
	a.Add(obj("y", String))
	b.Add(obj("z", Bool))
	a.Combine(&b)
	if !a.Similar() || !Equal(a.Max(), obj("x", Number, "y", String, "z", Bool)) {
		t.Errorf("combine of similar halves: similar=%v max=%v", a.Similar(), a.Max())
	}

	// Conflicting halves latch dissimilar.
	var c, d SimilarityAccumulator
	c.Add(obj("k", Number))
	d.Add(obj("k", String))
	c.Combine(&d)
	if c.Similar() {
		t.Error("conflicting maxima must combine to dissimilar")
	}

	// Combining with an empty accumulator is the identity.
	var e, empty SimilarityAccumulator
	e.Add(obj("q", Number))
	e.Combine(&empty)
	if !e.Similar() || !Equal(e.Max(), obj("q", Number)) {
		t.Error("combine with empty should not change state")
	}
	var f SimilarityAccumulator
	f.Combine(&e)
	if !f.Similar() || !Equal(f.Max(), obj("q", Number)) {
		t.Error("empty.Combine(x) should take x's state")
	}

	// A dissimilar side poisons the result regardless of order.
	var g, h SimilarityAccumulator
	g.Add(Number)
	g.Add(String) // dissimilar
	h.Add(Bool)
	h.Combine(&g)
	if h.Similar() {
		t.Error("dissimilar operand must poison the combination")
	}
}

func TestCombineMatchesSequentialProperty(t *testing.T) {
	// Splitting a stream of adds across accumulators and combining must
	// agree with adding everything to one accumulator.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		types := make([]*Type, n)
		for i := range types {
			types[i] = randomType(r, 2)
		}
		var whole SimilarityAccumulator
		for _, ty := range types {
			whole.Add(ty)
		}
		cut := 1 + r.Intn(n-1)
		var left, right SimilarityAccumulator
		for _, ty := range types[:cut] {
			left.Add(ty)
		}
		for _, ty := range types[cut:] {
			right.Add(ty)
		}
		left.Combine(&right)
		return left.Similar() == whole.Similar()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUnion(t *testing.T) {
	cases := []struct{ a, b, want *Type }{
		{Null, Number, Number},
		{String, Null, String},
		{Number, Number, Number},
		{arr(Number), arr(Number, String), arr(Number, String)},
		{arr(Null, String), arr(Number), arr(Number, String)},
		{obj("a", Number), obj("b", String), obj("a", Number, "b", String)},
		{obj("a", Null), obj("a", Bool), obj("a", Bool)},
		{
			obj("u", obj("x", Number)),
			obj("u", obj("y", String)),
			obj("u", obj("x", Number, "y", String)),
		},
	}
	for _, c := range cases {
		if got := Union(c.a, c.b); !Equal(got, c.want) {
			t.Errorf("Union(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// randomType builds a bounded random type for property tests.
func randomType(r *rand.Rand, depth int) *Type {
	if depth <= 0 || r.Intn(3) == 0 {
		return NewPrimitive(Kind(r.Intn(4)))
	}
	if r.Intn(2) == 0 {
		n := r.Intn(4)
		elems := make([]*Type, n)
		for i := range elems {
			elems[i] = randomType(r, depth-1)
		}
		return NewArray(elems)
	}
	n := r.Intn(4)
	fields := make([]Field, 0, n)
	seen := map[string]bool{}
	keys := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < n; i++ {
		k := keys[r.Intn(len(keys))]
		if seen[k] {
			continue
		}
		seen[k] = true
		fields = append(fields, Field{Key: k, Type: randomType(r, depth-1)})
	}
	return NewObject(fields)
}

func TestSimilarSymmetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomType(r, 3), randomType(r, 3)
		return Similar(a, b) == Similar(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimilarReflexiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomType(r, 3)
		return Similar(a, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnionSubsumptionProperty(t *testing.T) {
	// If a ≈ b, then both a and b are similar to Union(a, b), and the union
	// is idempotent on equal inputs.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomType(r, 3), randomType(r, 3)
		if !Similar(a, b) {
			return true
		}
		u := Union(a, b)
		return Similar(a, u) && Similar(b, u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUnionCommutesUnderSimilarityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomType(r, 3), randomType(r, 3)
		if !Similar(a, b) {
			return true
		}
		return Equal(Union(a, b), Union(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSubsumesMatchesUnionProperty(t *testing.T) {
	// For similar a, b: Subsumes(a, b) ⟺ Union(a, b) == a.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomType(r, 3), randomType(r, 3)
		if !Similar(a, b) {
			return true
		}
		return Subsumes(a, b) == Equal(Union(a, b), a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

func TestSubsumesBasics(t *testing.T) {
	if !Subsumes(Number, Null) || Subsumes(Null, Number) {
		t.Error("null subsumption broken")
	}
	if !Subsumes(arr(Number, String), arr(Number)) {
		t.Error("prefix arrays are subsumed")
	}
	if Subsumes(arr(Number), arr(Number, String)) {
		t.Error("longer arrays are not subsumed")
	}
	if !Subsumes(obj("a", Number, "b", String), obj("b", String)) {
		t.Error("key subsets are subsumed")
	}
	if Subsumes(obj("a", Number), obj("a", Number, "c", Bool)) {
		t.Error("extra keys are not subsumed")
	}
}

func TestCanonRoundTripProperty(t *testing.T) {
	// Two independently generated types are Equal iff their canon matches
	// (canon is injective on structure).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomType(r, 3), randomType(r, 3)
		return (a.Canon() == b.Canon()) == Equal(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
