package jsontype

import (
	"math"
	"sort"
)

// ReservoirBag is a bounded-capacity Bag: a multiset over at most
// `capacity` distinct types, maintained as a weighted reservoir in the
// style of Efraimidis–Spirakis A-ES sampling. Where Bag grows O(distinct)
// forever, a ReservoirBag holds the `capacity` distinct types with the
// strongest priorities and sheds the rest, which is what lets an
// accumulator ingest an unbounded stream at flat memory.
//
// Each distinct type t carries a priority key u_t^(1/w_t), where w_t is
// the multiplicity observed while resident and u_t ∈ (0,1) is a uniform
// derived deterministically from the type's canonical structure and the
// reservoir seed — not from a stateful RNG. Determinism is the point:
// replaying a stream reproduces the identical reservoir (and identical
// schema bytes downstream), and two reservoirs built over shards of a
// stream merge into a state that does not depend on which shard was the
// receiver. Heavier types get keys closer to 1 and so survive eviction
// longer, the "weighted" in weighted reservoir.
//
// Exactness contract (pinned by FuzzReservoirVsExact): while no eviction
// has occurred — capacity ≥ distinct types observed — a ReservoirBag is
// bit-for-bit an exact Bag: same types, same counts, same first-seen
// order. After eviction it is an approximation; Dropped and Evictions
// report how much of the stream fell outside the reservoir.
//
// The zero value is not valid; use NewReservoirBag. Not safe for
// concurrent use.
type ReservoirBag struct {
	capacity int
	seed     int64

	entries  []reservoirEntry // slot-addressed; freed slots recycled
	free     []int            // recycled slots
	index    map[uint64]int   // intern id -> slot
	heap     []int            // min-heap of active slots, weakest key at root
	pos      []int            // slot -> heap position
	nextSeq  uint64           // admission order, survives slot recycling
	total    int              // retained occurrences
	seen     int64            // occurrences offered, retained or not
	dropped  int64            // occurrences lost to rejection or eviction
	evicted  int              // eviction count
}

type reservoirEntry struct {
	t       *Type
	count   int
	lnU     float64 // ln u_t, negative, fixed per (structure, seed)
	seq     uint64  // admission order among current residents
	touched bool    // saw an occurrence since the previous Decay
}

// NewReservoirBag returns an empty reservoir holding at most capacity
// distinct types. capacity must be positive.
func NewReservoirBag(capacity int, seed int64) *ReservoirBag {
	if capacity <= 0 {
		panic("jsontype: NewReservoirBag with non-positive capacity")
	}
	return &ReservoirBag{
		capacity: capacity,
		seed:     seed,
		index:    make(map[uint64]int),
	}
}

// reservoirLnU derives the deterministic uniform behind a type's priority:
// an FNV-1a hash of the canonical structure, finalized with a
// splitmix64-style mix of the seed so distinct seeds draw independent
// reservoirs. The canonical string — not the intern id or the structural
// hash — is what makes the draw stable across processes and runs: intern
// ids depend on interning order, which the decode worker pool does not
// pin.
func reservoirLnU(t *Type, seed int64) float64 {
	h := fnvString(fnvOffset, t.Canon())
	h ^= uint64(seed)
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	u := (float64(h>>11) + 0.5) / (1 << 53) // strictly inside (0, 1)
	return math.Log(u)
}

// key is the A-ES priority ln(u)/w in log space: negative, with heavier
// or luckier types closer to zero. The weakest resident (most negative
// key) is the eviction candidate.
//
//jx:hotpath
func (r *ReservoirBag) key(slot int) float64 {
	e := &r.entries[slot]
	return e.lnU / float64(e.count)
}

// Add inserts one occurrence of t.
//
//jx:hotpath
func (r *ReservoirBag) Add(t *Type) { r.AddN(t, 1) }

// AddN inserts n occurrences of t. n must be positive. The steady-state
// path — an occurrence of a resident type — is a map probe, a counter
// bump, and a heap repair, with no allocation.
//
//jx:hotpath
func (r *ReservoirBag) AddN(t *Type, n int) {
	if n <= 0 {
		panic("jsontype: ReservoirBag.AddN with non-positive count")
	}
	r.seen += int64(n)
	if slot, ok := r.index[t.ID()]; ok {
		r.entries[slot].count += n
		r.entries[slot].touched = true
		r.total += n
		// The key only strengthened; restore heap order downward.
		r.siftDown(r.pos[slot])
		return
	}
	r.admit(t, n)
}

// admit handles a first occurrence: insert while below capacity,
// otherwise challenge the weakest resident.
//
//jx:coldpath runs once per distinct type reaching the reservoir, not per record
func (r *ReservoirBag) admit(t *Type, n int) {
	lnU := reservoirLnU(t, r.seed)
	if len(r.heap) >= r.capacity {
		weak := r.heap[0]
		// Ties (a 64-bit collision of the underlying uniforms) keep the
		// resident, deterministically.
		if lnU/float64(n) <= r.key(weak) {
			r.dropped += int64(n)
			return
		}
		r.dropped += int64(r.entries[weak].count)
		r.total -= r.entries[weak].count
		r.evicted++
		r.removeSlot(weak)
	}
	slot := r.allocSlot(reservoirEntry{t: t, count: n, lnU: lnU, seq: r.nextSeq, touched: true})
	r.nextSeq++
	r.index[t.ID()] = slot
	r.total += n
	r.heapPush(slot)
}

func (r *ReservoirBag) allocSlot(e reservoirEntry) int {
	if n := len(r.free); n > 0 {
		slot := r.free[n-1]
		r.free = r.free[:n-1]
		r.entries[slot] = e
		return slot
	}
	r.entries = append(r.entries, e)
	r.pos = append(r.pos, -1)
	return len(r.entries) - 1
}

func (r *ReservoirBag) removeSlot(slot int) {
	delete(r.index, r.entries[slot].t.ID())
	r.heapRemove(r.pos[slot])
	r.entries[slot] = reservoirEntry{}
	r.free = append(r.free, slot)
}

// ---- min-heap over active slots, keyed by r.key ----

//jx:hotpath
func (r *ReservoirBag) heapPush(slot int) {
	r.heap = append(r.heap, slot)
	r.pos[slot] = len(r.heap) - 1
	r.siftUp(len(r.heap) - 1)
}

//jx:hotpath
func (r *ReservoirBag) heapRemove(i int) {
	last := len(r.heap) - 1
	r.swap(i, last)
	r.pos[r.heap[last]] = -1
	r.heap = r.heap[:last]
	if i < last {
		r.siftDown(i)
		r.siftUp(i)
	}
}

//jx:hotpath
func (r *ReservoirBag) swap(i, j int) {
	r.heap[i], r.heap[j] = r.heap[j], r.heap[i]
	r.pos[r.heap[i]] = i
	r.pos[r.heap[j]] = j
}

//jx:hotpath
func (r *ReservoirBag) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if r.key(r.heap[i]) >= r.key(r.heap[parent]) {
			return
		}
		r.swap(i, parent)
		i = parent
	}
}

//jx:hotpath
func (r *ReservoirBag) siftDown(i int) {
	for {
		left, right := 2*i+1, 2*i+2
		min := i
		if left < len(r.heap) && r.key(r.heap[left]) < r.key(r.heap[min]) {
			min = left
		}
		if right < len(r.heap) && r.key(r.heap[right]) < r.key(r.heap[min]) {
			min = right
		}
		if min == i {
			return
		}
		r.swap(i, min)
		i = min
	}
}

// ---- merge ----

// Merge folds every retained occurrence of other into r — the bounded
// counterpart of Bag.Merge. The operation is symmetric in the retained
// multiset: entries from both sides are combined (weights of common types
// add, priorities recomputed from combined weights) and the strongest
// `capacity` survive, so a ⊕ b and b ⊕ a retain identical (type, count)
// multisets; only the first-seen presentation order follows the receiver,
// exactly as Bag.Merge orders its union. Both reservoirs must share
// capacity and seed. other is not modified.
func (r *ReservoirBag) Merge(other *ReservoirBag) {
	if other == nil {
		return
	}
	if other.capacity != r.capacity || other.seed != r.seed {
		panic("jsontype: ReservoirBag.Merge with mismatched capacity or seed")
	}
	r.seen += other.seen
	r.dropped += other.dropped
	r.evicted += other.evicted

	// Fold other's entries in its admission order: common types combine
	// counts (key strengthens), novel types run the usual admission
	// challenge — but against the *combined* population, so first gather
	// everything, then select survivors symmetrically.
	merged := r.activeEntries()
	byID := make(map[uint64]int, len(merged)+other.Distinct())
	for i, e := range merged {
		byID[e.t.ID()] = i
	}
	other.each(func(e reservoirEntry) {
		if i, ok := byID[e.t.ID()]; ok {
			merged[i].count += e.count
		} else {
			byID[e.t.ID()] = len(merged)
			merged = append(merged, e)
		}
	})

	if len(merged) > r.capacity {
		drop := weakestEntries(merged, len(merged)-r.capacity)
		kept := merged[:0]
		for i, e := range merged {
			if drop[i] {
				r.dropped += int64(e.count)
				r.evicted++
			} else {
				kept = append(kept, e)
			}
		}
		merged = kept
	}
	r.rebuild(merged)
}

// weakestEntries marks the k weakest entries of the combined population
// by A-ES key, ties broken by canonical structure (never by position, so
// the selection is independent of merge order).
func weakestEntries(entries []reservoirEntry, k int) map[int]bool {
	order := make([]int, len(entries))
	for i := range order {
		order[i] = i
	}
	keyOf := func(e reservoirEntry) float64 { return e.lnU / float64(e.count) }
	// Partial selection is overkill; a full sort on a cold path keeps the
	// tie-break logic in one place.
	sort.Slice(order, func(a, b int) bool {
		ka, kb := keyOf(entries[order[a]]), keyOf(entries[order[b]])
		if ka != kb {
			return ka < kb
		}
		return entries[order[a]].t.Canon() < entries[order[b]].t.Canon()
	})
	drop := make(map[int]bool, k)
	for _, i := range order[:k] {
		drop[i] = true
	}
	return drop
}

// rebuild resets the reservoir to exactly the given entries, reassigning
// admission order to the slice order.
func (r *ReservoirBag) rebuild(entries []reservoirEntry) {
	r.entries = r.entries[:0]
	r.free = r.free[:0]
	r.heap = r.heap[:0]
	r.pos = r.pos[:0]
	r.index = make(map[uint64]int, len(entries))
	r.nextSeq = 0
	r.total = 0
	for _, e := range entries {
		e.seq = r.nextSeq
		r.nextSeq++
		slot := r.allocSlot(e)
		r.index[e.t.ID()] = slot
		r.total += e.count
		r.heapPush(slot)
	}
}

// ---- decay ----

// Decay multiplies every retained count by factor (0 < factor < 1),
// flooring, and removes types whose count reaches zero — the aging step
// that lets dead types leave the reservoir instead of pinning a slot with
// stale weight. A type that saw an occurrence since the previous Decay is
// never removed: its count floors at 1 and only a full idle interval ages
// it out. Without that floor, a rotation on a stream of mostly-singleton
// types would empty the reservoir wholesale (every count-1 entry flooring
// to zero at once) and synthesis over the snapshot would collapse to the
// bottom schema. Returns the number of types aged out entirely. Decayed
// occurrences are forgotten, not counted as dropped: they were retained
// and have simply expired.
func (r *ReservoirBag) Decay(factor float64) int {
	if !(factor > 0 && factor < 1) {
		panic("jsontype: ReservoirBag.Decay factor must be in (0, 1)")
	}
	aged := 0
	kept := r.activeEntries()
	out := kept[:0]
	for _, e := range kept {
		e.count = int(float64(e.count) * factor)
		if e.touched && e.count == 0 {
			e.count = 1
		}
		if e.count == 0 {
			aged++
			continue
		}
		e.touched = false
		out = append(out, e)
	}
	r.rebuild(out)
	return aged
}

// ---- enumeration (the Bag read contract) ----

// activeEntries returns the live entries in admission (first-seen) order.
func (r *ReservoirBag) activeEntries() []reservoirEntry {
	out := make([]reservoirEntry, 0, len(r.heap))
	for _, slot := range r.heap {
		out = append(out, r.entries[slot])
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	return out
}

func (r *ReservoirBag) each(fn func(reservoirEntry)) {
	for _, e := range r.activeEntries() {
		fn(e)
	}
}

// Each calls fn for every retained distinct type with its multiplicity,
// in first-seen order — the same enumeration contract as Bag.Each.
func (r *ReservoirBag) Each(fn func(t *Type, n int)) {
	r.each(func(e reservoirEntry) { fn(e.t, e.count) })
}

// Len returns the retained occurrence count.
func (r *ReservoirBag) Len() int { return r.total }

// Distinct returns the number of retained distinct types.
func (r *ReservoirBag) Distinct() int { return len(r.heap) }

// Capacity returns the reservoir's distinct-type bound.
func (r *ReservoirBag) Capacity() int { return r.capacity }

// Seen returns the lifetime occurrence count offered to the reservoir,
// retained or not.
func (r *ReservoirBag) Seen() int64 { return r.seen }

// Dropped returns the occurrences lost to admission rejection or
// eviction.
func (r *ReservoirBag) Dropped() int64 { return r.dropped }

// Evictions returns how many resident types have been evicted.
func (r *ReservoirBag) Evictions() int { return r.evicted }

// Snapshot materializes the retained multiset as an exact Bag in
// first-seen order — the hand-off to passes ② and ③, which consume the
// ordinary Bag contract.
func (r *ReservoirBag) Snapshot() *Bag {
	out := &Bag{}
	r.Each(func(t *Type, n int) { out.AddN(t, n) })
	return out
}
