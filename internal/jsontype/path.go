package jsontype

import (
	"strconv"
	"strings"
)

// Step is one component of a Path: an object key, a fixed array index, or
// a wildcard standing for "any element of a collection at this point".
type Step struct {
	// Key is the object key, valid when Index < 0 and !Wildcard.
	Key string
	// Index is the array position, valid when >= 0.
	Index int
	// Wildcard marks a collection step (any key / any position), written *.
	Wildcard bool
}

// KeyStep returns a Step selecting object key k.
func KeyStep(k string) Step { return Step{Key: k, Index: -1} }

// IndexStep returns a Step selecting array position i.
func IndexStep(i int) Step { return Step{Index: i} }

// WildcardStep returns the collection-element step.
func WildcardStep() Step { return Step{Index: -1, Wildcard: true} }

func (s Step) String() string {
	switch {
	case s.Wildcard:
		return "[*]"
	case s.Index >= 0:
		return "[" + strconv.Itoa(s.Index) + "]"
	default:
		return "." + s.Key
	}
}

// Path is a sequence of steps from the root of a record to a nested value,
// denoted 𝐩 in the paper. The empty path denotes the root. Paths are
// treated as immutable: Child returns a fresh path.
type Path []Step

// Root is the empty path.
var Root = Path{}

// Child returns p extended by step s, without aliasing p's backing array.
func (p Path) Child(s Step) Path {
	out := make(Path, len(p)+1)
	copy(out, p)
	out[len(p)] = s
	return out
}

// Key returns p extended by an object key step.
func (p Path) Key(k string) Path { return p.Child(KeyStep(k)) }

// Index returns p extended by an array index step.
func (p Path) Index(i int) Path { return p.Child(IndexStep(i)) }

// Wildcard returns p extended by a collection-element step.
func (p Path) Wildcard() Path { return p.Child(WildcardStep()) }

// String renders the path in JSONPath-like notation: $.user.geo[0].
func (p Path) String() string {
	var b strings.Builder
	b.WriteByte('$')
	for _, s := range p {
		b.WriteString(s.String())
	}
	return b.String()
}

// Equal reports whether two paths are identical.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}
