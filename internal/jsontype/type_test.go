package jsontype

import (
	"sort"
	"strings"
	"testing"
)

func obj(pairs ...any) *Type {
	if len(pairs)%2 != 0 {
		panic("obj: odd number of arguments")
	}
	fields := make([]Field, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		fields = append(fields, Field{Key: pairs[i].(string), Type: pairs[i+1].(*Type)})
	}
	return NewObject(fields)
}

func arr(elems ...*Type) *Type { return NewArray(elems) }

func TestKindPredicates(t *testing.T) {
	prims := []Kind{KindNull, KindBool, KindNumber, KindString}
	for _, k := range prims {
		if !k.Primitive() {
			t.Errorf("%v should be primitive", k)
		}
		if k.Complex() {
			t.Errorf("%v should not be complex", k)
		}
	}
	for _, k := range []Kind{KindArray, KindObject} {
		if k.Primitive() {
			t.Errorf("%v should not be primitive", k)
		}
		if !k.Complex() {
			t.Errorf("%v should be complex", k)
		}
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindNull: "null", KindBool: "bool", KindNumber: "number",
		KindString: "string", KindArray: "array", KindObject: "object",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(99).String() != "invalid" {
		t.Errorf("invalid kind should stringify as invalid")
	}
}

func TestPrimitiveInterning(t *testing.T) {
	if NewPrimitive(KindNumber) != Number {
		t.Error("NewPrimitive(KindNumber) is not the interned Number")
	}
	if NewPrimitive(KindNull) != Null || NewPrimitive(KindBool) != Bool || NewPrimitive(KindString) != String {
		t.Error("primitive interning broken")
	}
}

func TestNewPrimitivePanicsOnComplex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPrimitive(KindArray) should panic")
		}
	}()
	NewPrimitive(KindArray)
}

func TestObjectFieldsSorted(t *testing.T) {
	o := obj("z", Number, "a", String, "m", Bool)
	keys := o.Keys()
	if !sort.StringsAreSorted(keys) {
		t.Errorf("object keys not sorted: %v", keys)
	}
	if got := o.Field("a"); got != String {
		t.Errorf("Field(a) = %v, want string", got)
	}
	if got := o.Field("z"); got != Number {
		t.Errorf("Field(z) = %v, want number", got)
	}
	if o.Field("missing") != nil {
		t.Error("Field(missing) should be nil")
	}
	if !o.HasField("m") || o.HasField("q") {
		t.Error("HasField broken")
	}
}

func TestDuplicateKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate key should panic")
		}
	}()
	obj("a", Number, "a", String)
}

func TestCanonEquality(t *testing.T) {
	a := obj("ts", Number, "event", String, "user", obj("name", String, "geo", arr(Number, Number)))
	b := obj("user", obj("geo", arr(Number, Number), "name", String), "event", String, "ts", Number)
	if a.Canon() != b.Canon() {
		t.Errorf("key order should not affect canon:\n%s\n%s", a.Canon(), b.Canon())
	}
	if !Equal(a, b) {
		t.Error("Equal should hold for structurally equal types")
	}
	c := obj("ts", String, "event", String)
	if Equal(a, c) {
		t.Error("Equal should fail for different types")
	}
	if Equal(a, nil) || Equal(nil, a) {
		t.Error("Equal with nil should be false")
	}
	if !Equal(nil, nil) {
		// nil == nil via pointer comparison
		t.Error("Equal(nil, nil) should be true")
	}
}

func TestCanonDistinguishesShapes(t *testing.T) {
	cases := []*Type{
		Null, Bool, Number, String,
		arr(), arr(Number), arr(Number, Number), arr(String),
		obj(), obj("a", Number), obj("a", String), obj("b", Number),
		obj("a", arr(Number)), obj("a", obj("b", Number)),
		arr(obj("a", Number)), arr(arr(Number)),
	}
	seen := map[string]*Type{}
	for _, c := range cases {
		if prev, ok := seen[c.Canon()]; ok {
			t.Errorf("canon collision between %v and %v: %q", prev, c, c.Canon())
		}
		seen[c.Canon()] = c
	}
}

func TestCanonKeyEscaping(t *testing.T) {
	// A key containing canon-structural characters must not collide with a
	// structurally different object.
	a := obj("a:b", Number)
	b := obj("a", obj("b", Number))
	if a.Canon() == b.Canon() {
		t.Errorf("escaping failed: %q == %q", a.Canon(), b.Canon())
	}
	c := obj(`x\y`, Number)
	d := obj(`x,y`, Number)
	if c.Canon() == d.Canon() {
		t.Error("escaped keys collide")
	}
}

func TestTypeString(t *testing.T) {
	ty := obj("event", String, "geo", arr(Number, Number), "ok", Bool, "x", Null)
	s := ty.String()
	for _, want := range []string{"event: 𝕊", "geo: [ℝ, ℝ]", "ok: 𝔹", "x: null"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestDepthAndSize(t *testing.T) {
	cases := []struct {
		t           *Type
		depth, size int
	}{
		{Number, 1, 1},
		{arr(), 1, 1},
		{obj(), 1, 1},
		{arr(Number), 2, 2},
		{obj("a", Number, "b", String), 2, 3},
		{obj("a", arr(obj("b", Number))), 4, 4},
	}
	for _, c := range cases {
		if got := c.t.Depth(); got != c.depth {
			t.Errorf("%v.Depth() = %d, want %d", c.t, got, c.depth)
		}
		if got := c.t.Size(); got != c.size {
			t.Errorf("%v.Size() = %d, want %d", c.t, got, c.size)
		}
	}
}

func TestLenElemFields(t *testing.T) {
	a := arr(Number, String)
	if a.Len() != 2 || a.Elem(0) != Number || a.Elem(1) != String {
		t.Error("array accessors broken")
	}
	if len(a.Elems()) != 2 {
		t.Error("Elems broken")
	}
	o := obj("k", Bool)
	if o.Len() != 1 || len(o.Fields()) != 1 {
		t.Error("object accessors broken")
	}
	if Number.Len() != 0 {
		t.Error("primitive Len should be 0")
	}
	if o.Keys() == nil || a.Keys() != nil {
		t.Error("Keys: objects return keys, arrays return nil")
	}
	ks := o.KeySet()
	if !ks["k"] || len(ks) != 1 {
		t.Error("KeySet broken")
	}
}
