package jsontype

// Similar implements the type similarity rule of Section 5.2:
//
//	τ₁ ≈ τ₂ ≜  true                      if τ₁ = null or τ₂ = null
//	           τ₁ = τ₂                   if kind(τ₁) ∈ {𝔹, ℝ, 𝕊}
//	           ∀i: τ₁.i ≈ τ₂.i           for i ∈ keys(τ₁) ∩ keys(τ₂)
//
// Null is similar to anything; primitives are similar only to themselves
// (and null); like-kinded complex types are similar when nested values at
// shared keys/positions are similar; differently-kinded complex types (or
// a complex vs. a non-null primitive) are dissimilar.
//
//jx:hotpath
func Similar(a, b *Type) bool {
	if a == b {
		return true // interning: identical pointers are identical types
	}
	if a.Kind() == KindNull || b.Kind() == KindNull {
		return true
	}
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case KindBool, KindNumber, KindString:
		return true // same primitive kind ⇒ same type
	case KindArray:
		n := min(len(a.elems), len(b.elems))
		for i := 0; i < n; i++ {
			if !Similar(a.elems[i], b.elems[i]) {
				return false
			}
		}
		return true
	case KindObject:
		// Walk the two key-sorted field lists in lockstep.
		i, j := 0, 0
		for i < len(a.fields) && j < len(b.fields) {
			switch {
			case a.fields[i].Key < b.fields[j].Key:
				i++
			case a.fields[i].Key > b.fields[j].Key:
				j++
			default:
				if !Similar(a.fields[i].Type, b.fields[j].Type) {
					return false
				}
				i++
				j++
			}
		}
		return true
	}
	return false
}

// SimilarityAccumulator exploits the subsumption property of ≈ (Section
// 5.2): a linear scan can maintain a maximal type that unions all fields
// encountered so far; a new type is pairwise-similar to every previous type
// iff it is similar to this maximal type. The accumulator therefore decides
// "are all types in this bag pairwise similar?" in one pass.
//
// The zero value is ready to use.
type SimilarityAccumulator struct {
	max        *Type
	dissimilar bool
}

// Add folds t into the accumulator and reports whether the set observed so
// far is still pairwise similar. Once dissimilarity is detected the
// accumulator latches false.
//
//jx:hotpath
func (s *SimilarityAccumulator) Add(t *Type) bool {
	if s.dissimilar {
		return false
	}
	if s.max == nil {
		s.max = t
		return true
	}
	if !Similar(s.max, t) {
		s.dissimilar = true
		return false
	}
	// Fast path: most values repeat shapes already folded in; skip the
	// Union allocation when t adds no structure to the maximal type.
	if !Subsumes(s.max, t) {
		s.max = Union(s.max, t)
	}
	return true
}

// Subsumes reports whether b adds no structure to a — i.e. Union(a, b)
// would equal a — for *similar* a and b. Null is subsumed by anything
// non-null; a primitive subsumes its own kind; an array subsumes shorter
// similar prefixes; an object subsumes similar key subsets. Behavior for
// dissimilar inputs is unspecified.
//
//jx:hotpath
func Subsumes(a, b *Type) bool {
	if a == b {
		return true // interning: Union(a, a) = a
	}
	if b.Kind() == KindNull {
		return true // Union(a, null) = a
	}
	if a.Kind() == KindNull {
		return false // Union(null, b) = b ≠ null
	}
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case KindBool, KindNumber, KindString:
		return true
	case KindArray:
		if len(b.elems) > len(a.elems) {
			return false
		}
		for i, e := range b.elems {
			if !Subsumes(a.elems[i], e) {
				return false
			}
		}
		return true
	case KindObject:
		i := 0
		for _, bf := range b.fields {
			for i < len(a.fields) && a.fields[i].Key < bf.Key {
				i++
			}
			if i >= len(a.fields) || a.fields[i].Key != bf.Key {
				return false
			}
			if !Subsumes(a.fields[i].Type, bf.Type) {
				return false
			}
			i++
		}
		return true
	}
	return false
}

// Combine folds another accumulator into s, as if every type added to
// other had been added to s. Subsumption makes this sound: each side's
// types are similar to its own maximal type, so the union is pairwise
// similar iff both sides are internally similar and the two maximal types
// are similar to each other. Combine makes the accumulator usable as the
// per-partition state of a parallel fold.
//
//jx:hotpath
func (s *SimilarityAccumulator) Combine(other *SimilarityAccumulator) {
	if other.dissimilar {
		s.dissimilar = true
		return
	}
	if s.dissimilar || other.max == nil {
		return
	}
	if s.max == nil {
		s.max = other.max
		return
	}
	if !Similar(s.max, other.max) {
		s.dissimilar = true
		return
	}
	s.max = Union(s.max, other.max)
}

// Similar reports whether every type added so far is pairwise similar.
// An empty accumulator is vacuously similar.
func (s *SimilarityAccumulator) Similar() bool { return !s.dissimilar }

// Max returns the maximal (unioned) type accumulated so far, or nil if no
// type has been added or dissimilarity was detected.
func (s *SimilarityAccumulator) Max() *Type {
	if s.dissimilar {
		return nil
	}
	return s.max
}

// Union combines two similar types into their least upper bound: fields and
// positions present in either side appear in the result; shared keys are
// unioned recursively; null yields to the other side. For dissimilar inputs
// the result is unspecified but total (the non-null, first-argument kind
// wins), so callers should check Similar first when it matters.
//
//jx:coldpath allocates only when a new maximal shape appears; steady state hits Subsumes
func Union(a, b *Type) *Type {
	if a == b {
		return a
	}
	if a.Kind() == KindNull {
		return b
	}
	if b.Kind() == KindNull {
		return a
	}
	if a.Kind() != b.Kind() {
		return a
	}
	switch a.Kind() {
	case KindBool, KindNumber, KindString:
		return a
	case KindArray:
		long, short := a.elems, b.elems
		if len(short) > len(long) {
			long, short = short, long
		}
		elems := make([]*Type, len(long))
		for i := range long {
			if i < len(short) {
				elems[i] = Union(long[i], short[i])
			} else {
				elems[i] = long[i]
			}
		}
		return NewArray(elems)
	case KindObject:
		fields := make([]Field, 0, len(a.fields)+len(b.fields))
		i, j := 0, 0
		for i < len(a.fields) || j < len(b.fields) {
			switch {
			case j >= len(b.fields) || (i < len(a.fields) && a.fields[i].Key < b.fields[j].Key):
				fields = append(fields, a.fields[i])
				i++
			case i >= len(a.fields) || a.fields[i].Key > b.fields[j].Key:
				fields = append(fields, b.fields[j])
				j++
			default:
				fields = append(fields, Field{
					Key:  a.fields[i].Key,
					Type: Union(a.fields[i].Type, b.fields[j].Type),
				})
				i++
				j++
			}
		}
		return NewObject(fields)
	}
	return a
}

//jx:hotpath
func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
