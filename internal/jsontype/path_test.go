package jsontype

import "testing"

func TestPathString(t *testing.T) {
	p := Root.Key("user").Key("geo").Index(0)
	if got := p.String(); got != "$.user.geo[0]" {
		t.Errorf("Path.String() = %q", got)
	}
	q := Root.Key("files").Wildcard()
	if got := q.String(); got != "$.files[*]" {
		t.Errorf("Path.String() = %q", got)
	}
	if Root.String() != "$" {
		t.Errorf("Root.String() = %q", Root.String())
	}
}

func TestPathChildDoesNotAlias(t *testing.T) {
	base := Root.Key("a")
	p := base.Key("b")
	q := base.Key("c")
	if p.String() != "$.a.b" || q.String() != "$.a.c" {
		t.Errorf("Child aliased backing array: %s, %s", p, q)
	}
}

func TestPathEqual(t *testing.T) {
	a := Root.Key("x").Index(1)
	b := Root.Key("x").Index(1)
	c := Root.Key("x").Index(2)
	d := Root.Key("x").Wildcard()
	if !a.Equal(b) {
		t.Error("equal paths should compare equal")
	}
	if a.Equal(c) || a.Equal(d) || a.Equal(Root) {
		t.Error("distinct paths should not compare equal")
	}
}

func TestStepString(t *testing.T) {
	if KeyStep("k").String() != ".k" ||
		IndexStep(3).String() != "[3]" ||
		WildcardStep().String() != "[*]" {
		t.Error("Step.String broken")
	}
}
