package jsontype

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// FromValue derives the structural type of a decoded JSON value as produced
// by encoding/json (nil, bool, float64/json.Number, string, []any,
// map[string]any). Integers (int, int64) are accepted as numbers for
// convenience when building values programmatically.
func FromValue(v any) (*Type, error) {
	switch x := v.(type) {
	case nil:
		return Null, nil
	case bool:
		return Bool, nil
	case float64, json.Number, int, int64, float32:
		return Number, nil
	case string:
		return String, nil
	case []any:
		elems := make([]*Type, len(x))
		for i, e := range x {
			t, err := FromValue(e)
			if err != nil {
				return nil, err
			}
			elems[i] = t
		}
		return NewArray(elems), nil
	case map[string]any:
		fields := make([]Field, 0, len(x))
		for k, e := range x {
			t, err := FromValue(e)
			if err != nil {
				return nil, err
			}
			fields = append(fields, Field{Key: k, Type: t})
		}
		return NewObject(fields), nil
	}
	return nil, fmt.Errorf("jsontype: unsupported value of type %T", v)
}

// MustFromValue is FromValue but panics on error; intended for tests and
// examples building records from literals.
func MustFromValue(v any) *Type {
	t, err := FromValue(v)
	if err != nil {
		panic(err)
	}
	return t
}

// FromJSON derives the structural type of a single JSON document. Trailing
// content after the first value is an error.
func FromJSON(data []byte) (*Type, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	t, err := decodeType(dec)
	if err != nil {
		return nil, err
	}
	if dec.More() {
		return nil, fmt.Errorf("jsontype: trailing content after JSON value")
	}
	return t, nil
}

// DecodeAll derives the structural types of a stream of whitespace- or
// newline-separated JSON documents (JSONL and concatenated JSON both work).
func DecodeAll(r io.Reader) ([]*Type, error) {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<16))
	dec.UseNumber()
	var out []*Type
	for dec.More() {
		t, err := decodeType(dec)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}

// decodeType consumes one JSON value from dec and returns its type without
// materializing the value itself (strings and numbers are discarded as soon
// as their kind is known).
func decodeType(dec *json.Decoder) (*Type, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	return typeFromToken(dec, tok)
}

func typeFromToken(dec *json.Decoder, tok json.Token) (*Type, error) {
	switch t := tok.(type) {
	case nil:
		return Null, nil
	case bool:
		return Bool, nil
	case json.Number, float64:
		return Number, nil
	case string:
		return String, nil
	case json.Delim:
		switch t {
		case '[':
			var elems []*Type
			for dec.More() {
				e, err := decodeType(dec)
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
			}
			if _, err := dec.Token(); err != nil { // consume ']'
				return nil, err
			}
			return NewArray(elems), nil
		case '{':
			var fields []Field
			seen := map[string]int{} // duplicate keys: last wins, per encoding/json
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return nil, err
				}
				key, ok := keyTok.(string)
				if !ok {
					return nil, fmt.Errorf("jsontype: non-string object key %v", keyTok)
				}
				val, err := decodeType(dec)
				if err != nil {
					return nil, err
				}
				if i, dup := seen[key]; dup {
					fields[i].Type = val
					continue
				}
				seen[key] = len(fields)
				fields = append(fields, Field{Key: key, Type: val})
			}
			if _, err := dec.Token(); err != nil { // consume '}'
				return nil, err
			}
			return NewObject(fields), nil
		}
	}
	return nil, fmt.Errorf("jsontype: unexpected token %v", tok)
}
