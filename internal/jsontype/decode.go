package jsontype

import (
	"encoding/json"
	"fmt"
	"io"
)

// FromValue derives the structural type of a decoded JSON value as produced
// by encoding/json (nil, bool, float64/json.Number, string, []any,
// map[string]any). Integers (int, int64) are accepted as numbers for
// convenience when building values programmatically.
func FromValue(v any) (*Type, error) {
	switch x := v.(type) {
	case nil:
		return Null, nil
	case bool:
		return Bool, nil
	case float64, json.Number, int, int64, float32:
		return Number, nil
	case string:
		return String, nil
	case []any:
		elems := make([]*Type, len(x))
		for i, e := range x {
			t, err := FromValue(e)
			if err != nil {
				return nil, err
			}
			elems[i] = t
		}
		return NewArray(elems), nil
	case map[string]any:
		fields := make([]Field, 0, len(x))
		//jx:lint-ignore detorder field order is erased before escape: NewObject sorts and canonicalizes
		for k, e := range x {
			t, err := FromValue(e)
			if err != nil {
				return nil, err
			}
			fields = append(fields, Field{Key: k, Type: t})
		}
		return NewObject(fields), nil
	}
	return nil, fmt.Errorf("jsontype: unsupported value of type %T", v)
}

// MustFromValue is FromValue but panics on error; intended for tests and
// examples building records from literals.
func MustFromValue(v any) *Type {
	t, err := FromValue(v)
	if err != nil {
		panic(err)
	}
	return t
}

// FromJSON derives the structural type of a single JSON document. Trailing
// content after the first value is an error. Decoding goes through the
// allocation-free scanner (scan.go): repeated structure costs no heap
// allocation once interned.
func FromJSON(data []byte) (*Type, error) {
	return scanOne(data)
}

// DecodeAll derives the structural types of a stream of whitespace- or
// newline-separated JSON documents (JSONL and concatenated JSON both work).
// The stream is read fully into memory and scanned in place.
func DecodeAll(r io.Reader) ([]*Type, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return scanAll(data, nil)
}
