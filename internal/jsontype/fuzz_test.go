package jsontype

import (
	"bytes"
	"encoding/json"
	"testing"
	"unicode/utf8"
)

// FuzzFromJSON exercises the type extractor against arbitrary bytes: it
// must never panic, and whenever it succeeds the result must be internally
// consistent (valid canon, stable re-extraction).
func FuzzFromJSON(f *testing.F) {
	seeds := []string{
		`null`, `true`, `3.5`, `"s"`, `[]`, `{}`,
		`{"ts":7,"event":"login","user":{"name":"bob","geo":[1.1,2.2]}}`,
		`[[[[1]]]]`, `{"a":{"b":{"c":{"d":null}}}}`,
		`{"a":1,"a":"x"}`, `[1,"two",true,null,{},[]]`,
		`{"esc":"esc","k:ey":1,"k,ey":2}`,
		`{`, `}`, `[1,`, `"unterminated`, `nul`, `1e999`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ty, err := FromJSON(data)
		if err != nil {
			return
		}
		if ty == nil {
			t.Fatal("nil type without error")
		}
		// Canon must be non-empty and stable.
		if ty.Canon() == "" {
			t.Fatal("empty canon")
		}
		// Re-parsing the same bytes must give a structurally equal type.
		ty2, err2 := FromJSON(data)
		if err2 != nil || !Equal(ty, ty2) {
			t.Fatalf("re-extraction diverged: %v vs %v (%v)", ty, ty2, err2)
		}
		// String rendering must terminate and be non-empty.
		if ty.String() == "" {
			t.Fatal("empty String()")
		}
	})
}

// FuzzScan is the differential test for the byte scanner: on every input
// encoding/json accepts, the scanner must also accept and derive exactly
// the type FromValue derives from the decoded value (same interned
// pointer). On inputs the oracle rejects the scanner may still accept —
// it is deliberately lenient inside numbers — but must not panic.
//
// Inputs with invalid UTF-8 are exempt from the comparison: encoding/json
// rewrites invalid bytes in strings to U+FFFD, while the scanner treats
// object keys as raw bytes; discovery never depends on that distinction.
func FuzzScan(f *testing.F) {
	seeds := []string{
		`null`, `true`, `false`, `0`, `-1.5e3`, `"s"`, `[]`, `{}`,
		`{"ts":7,"event":"login","user":{"name":"bob","geo":[1.1,2.2]}}`,
		`{"a":1,"a":"x","a":null}`,
		`{"escA":"v","plain":[true,null]}`,
		`[{"k":1},{"k":2,"j":[]}]`,
		` { "padded" : [ 1 , 2 ] } `,
		`{"":0}`, `[[[[1]]]]`,
		`01`, `1e999`, `{"a":`, `"unterminated`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if !utf8.Valid(data) {
			if _, err := FromJSON(data); err == nil {
				return // lenient acceptance is fine; no oracle to compare
			}
			return
		}
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			// Oracle rejects: the scanner may be more lenient (numbers) but
			// must stay total.
			_, _ = FromJSON(data)
			return
		}
		got, err := FromJSON(data)
		if err != nil {
			t.Fatalf("oracle accepts %q, scanner rejects: %v", data, err)
		}
		want, err := FromValue(v)
		if err != nil {
			t.Fatalf("FromValue on oracle output of %q: %v", data, err)
		}
		if got != want {
			t.Fatalf("scanner/oracle type mismatch for %q: %v vs %v", data, got, want)
		}
	})
}

// FuzzDecodeAll exercises the multi-document decoder.
func FuzzDecodeAll(f *testing.F) {
	f.Add([]byte("{\"a\":1}\n{\"a\":2}"))
	f.Add([]byte(`1 2 3 [] {} "x"`))
	f.Add([]byte("\n\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		types, _ := DecodeAll(bytes.NewReader(data))
		for _, ty := range types {
			if ty == nil {
				t.Fatal("nil type in successful prefix")
			}
		}
	})
}
