package jsontype

import (
	"bytes"
	"testing"
)

// FuzzFromJSON exercises the type extractor against arbitrary bytes: it
// must never panic, and whenever it succeeds the result must be internally
// consistent (valid canon, stable re-extraction).
func FuzzFromJSON(f *testing.F) {
	seeds := []string{
		`null`, `true`, `3.5`, `"s"`, `[]`, `{}`,
		`{"ts":7,"event":"login","user":{"name":"bob","geo":[1.1,2.2]}}`,
		`[[[[1]]]]`, `{"a":{"b":{"c":{"d":null}}}}`,
		`{"a":1,"a":"x"}`, `[1,"two",true,null,{},[]]`,
		`{"esc":"esc","k:ey":1,"k,ey":2}`,
		`{`, `}`, `[1,`, `"unterminated`, `nul`, `1e999`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ty, err := FromJSON(data)
		if err != nil {
			return
		}
		if ty == nil {
			t.Fatal("nil type without error")
		}
		// Canon must be non-empty and stable.
		if ty.Canon() == "" {
			t.Fatal("empty canon")
		}
		// Re-parsing the same bytes must give a structurally equal type.
		ty2, err2 := FromJSON(data)
		if err2 != nil || !Equal(ty, ty2) {
			t.Fatalf("re-extraction diverged: %v vs %v (%v)", ty, ty2, err2)
		}
		// String rendering must terminate and be non-empty.
		if ty.String() == "" {
			t.Fatal("empty String()")
		}
	})
}

// FuzzDecodeAll exercises the multi-document decoder.
func FuzzDecodeAll(f *testing.F) {
	f.Add([]byte("{\"a\":1}\n{\"a\":2}"))
	f.Add([]byte(`1 2 3 [] {} "x"`))
	f.Add([]byte("\n\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		types, _ := DecodeAll(bytes.NewReader(data))
		for _, ty := range types {
			if ty == nil {
				t.Fatal("nil type in successful prefix")
			}
		}
	})
}
